package rtbh

import (
	"runtime"
	"time"

	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/collateral"
	"repro/internal/analysis/dropstats"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/load"
	"repro/internal/analysis/mitigation"
	"repro/internal/analysis/pipeline"
	"repro/internal/analysis/protomix"
	"repro/internal/analysis/timealign"
	"repro/internal/analysis/usecase"
	"repro/internal/analysis/visibility"
	"repro/internal/obs"
	"repro/internal/radviz"
	"repro/internal/stats"
)

// MetricsRegistry is the observability registry (see internal/obs): a
// named collection of counters, gauges, histograms and span timers that
// renders to a human text table or stable JSON. Aliased so consumers need
// no internal imports.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's state.
type MetricsSnapshot = obs.Snapshot

// NewMetricsRegistry returns an empty metrics registry, ready to pass as
// Options.Metrics or to SimulateObserved.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Public aliases so report consumers need no internal imports.
type (
	// Event is a merged RTBH event.
	Event = events.Event
	// SweepPoint is one merge-threshold sweep result (Fig 10).
	SweepPoint = events.SweepPoint
	// LoadResult is the Fig 3 outcome.
	LoadResult = load.Result
	// VisibilityResult is the Fig 4 outcome.
	VisibilityResult = visibility.Result
	// TimeAlignResult is the Fig 2 outcome.
	TimeAlignResult = timealign.Result
	// LengthStat is one Fig 5 row.
	LengthStat = dropstats.LengthStat
	// EventDropStat is one event's efficacy tally (serving layer).
	EventDropStat = dropstats.EventStat
	// SourceBehaviour is one Fig 7 row.
	SourceBehaviour = dropstats.SourceBehaviour
	// SourceClasses is the Fig 7 summary.
	SourceClasses = dropstats.SourceClasses
	// TopSourceTypes is the Fig 8 outcome.
	TopSourceTypes = dropstats.TopSourceTypes
	// Verdict is a per-event anomaly verdict.
	Verdict = anomaly.Verdict
	// ClassCounts is the Table 2 outcome.
	ClassCounts = anomaly.ClassCounts
	// ProtocolShares is the §5.4 transport mix.
	ProtocolShares = protomix.ProtocolShares
	// Participation is one Fig 15 CDF.
	Participation = protomix.Participation
	// AttackScale summarizes per-event source diversity.
	AttackScale = protomix.AttackScale
	// HostProfile is one profiled blackholed host (Figs 16-17).
	HostProfile = hosts.Profile
	// WhitelistCoverage quantifies the §7.2 whitelisting claim.
	WhitelistCoverage = hosts.Coverage
	// TypeTable is the Table 4 outcome.
	TypeTable = hosts.TypeTable
	// CollateralResult is the Fig 18 outcome.
	CollateralResult = collateral.Result
	// MitigationResult is the Table 5 outcome (RTBH vs FlowSpec).
	MitigationResult = mitigation.Result
	// MitigationPhaseStat is one Table 5 row.
	MitigationPhaseStat = mitigation.PhaseStat
	// MitigationPrefixStat is the per-victim-prefix Table 5 detail.
	MitigationPrefixStat = mitigation.PrefixStat
	// MitigationCounter is a dropped/forwarded traffic tally.
	MitigationCounter = mitigation.Counter
	// UseCaseResult is the Fig 19 outcome.
	UseCaseResult = usecase.Result
	// UseCaseClass is a Fig 19 classification label.
	UseCaseClass = usecase.Class
	// ECDF is an empirical CDF.
	ECDF = stats.ECDF
	// RadVizPoint is a projected Fig 16 coordinate.
	RadVizPoint = radviz.Point
)

// Options tune the analysis; DefaultOptions matches the paper.
type Options struct {
	// Delta is the event merge threshold (paper: 10 minutes).
	Delta time.Duration
	// Threshold is the EWMA anomaly threshold in standard deviations
	// (paper: 2.5).
	Threshold float64
	// MinActiveDays is the host-profiling criterion (paper: 20).
	MinActiveDays int
	// OffsetStep is the Fig 2 grid resolution.
	OffsetStep time.Duration
	// SweepDeltas are the Fig 10 thresholds.
	SweepDeltas []time.Duration
	// TopSources is the Fig 7/8 population size (paper: 100).
	TopSources int
	// VisibilityInterval is the Fig 4 sampling interval.
	VisibilityInterval time.Duration
	// MinEventPkts excludes events with fewer samples from the Fig 6
	// per-event drop-rate CDFs.
	MinEventPkts int64
	// Workers is the number of parallel pipeline shards: 0 selects
	// runtime.GOMAXPROCS, 1 runs the plain sequential pipeline. Both
	// paths produce byte-identical reports (see DESIGN.md, "Parallel
	// pipeline").
	Workers int
	// Metrics, when non-nil, receives the analysis observability metrics
	// ("pipeline.*", "dropstats.*", "analysis.*"; see DESIGN.md,
	// "Observability"). A registry instruments a single Analyze call:
	// pass a fresh registry per run and snapshot after Analyze returns.
	Metrics *MetricsRegistry
}

// DefaultOptions returns the paper's parameterization.
func DefaultOptions() Options {
	sweep := make([]time.Duration, 0, 60)
	for m := 1; m <= 60; m++ {
		sweep = append(sweep, time.Duration(m)*time.Minute)
	}
	return Options{
		Delta:              events.DefaultDelta,
		Threshold:          anomaly.DefaultThreshold,
		MinActiveDays:      hosts.MinActiveDays,
		OffsetStep:         10 * time.Millisecond,
		SweepDeltas:        sweep,
		TopSources:         100,
		VisibilityInterval: 30 * time.Minute,
		MinEventPkts:       10,
	}
}

// Report carries the regenerated result of every figure and table in the
// paper's evaluation. Field names follow the paper's numbering; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
type Report struct {
	// Cleaning/attribution counters (§3.1).
	TotalRecords, InternalRecords, AttributedRecords, DroppedRecords int64

	// Events are the merged RTBH events at Options.Delta.
	Events []*Event
	// Verdicts are the per-event anomaly verdicts (same order).
	Verdicts []Verdict

	// Fig2: control/data clock offset MLE.
	Fig2 *TimeAlignResult
	// Fig3: parallel-RTBH load series.
	Fig3 *LoadResult
	// Fig4: targeted-announcement visibility quantiles.
	Fig4 *VisibilityResult
	// Fig5: drop rates by prefix length; Fig5AvgPkts/Bytes are the
	// dashed averages.
	Fig5         []LengthStat
	Fig5AvgPkts  float64
	Fig5AvgBytes float64
	// Fig6: per-event drop-rate CDFs for /24 and /32.
	Fig6Slash24 *ECDF
	Fig6Slash32 *ECDF
	// EventDrops are the per-event efficacy tallies behind Fig 6, sorted
	// by event ID (events without attributed traffic have no row). The
	// looking-glass serving layer (internal/serve) joins them against
	// Events and Verdicts for its per-event view.
	EventDrops []EventDropStat
	// Fig7: top source behaviour and its classification.
	Fig7        []SourceBehaviour
	Fig7Classes SourceClasses
	// Fig8: PeeringDB types of the top sources.
	Fig8 TopSourceTypes
	// Fig10: merge-threshold sweep; Fig10LowerBound is delta=infinity.
	Fig10           []SweepPoint
	Fig10LowerBound float64
	// Fig11: cumulative distribution of pre-RTBH slots with data.
	Fig11PreDataSlots []int
	Fig11NoData       int
	// Fig12: anomaly (level, offset) points across all events.
	Fig12 []anomaly.Anomaly
	// Fig13: per-feature anomaly amplification factors (events with a
	// defined factor), plus the share of events whose last slot is the
	// window maximum.
	Fig13            [anomaly.NumFeatures][]float64
	Fig13LastSlotMax float64
	// Fig14: per-event filterable shares and the fully-filterable rate.
	Fig14                []float64
	Fig14FullyFilterable float64
	// Fig15: AS participation in amplification events.
	Fig15Origin   Participation
	Fig15Handover Participation
	Fig15Scale    AttackScale
	// Fig16: RadViz projection of host profiles (same order as Fig17).
	Fig16 []RadVizPoint
	// Fig17: host profiles with top-port variation and classification.
	Fig17 []HostProfile
	// Fig18: collateral damage.
	Fig18 *CollateralResult
	// Fig19: use-case classification.
	Fig19 *UseCaseResult
	// Table5: RTBH-vs-FlowSpec mitigation comparison, measured from the
	// data plane against the FlowSpec signaling stream. Always non-nil;
	// Measured() is false on datasets without fine-grained mitigation.
	Table5 *MitigationResult
	// Table2: pre-RTBH event classes.
	Table2 ClassCounts
	// Table3: distribution of distinct amplification protocols per
	// anomaly event with data; Table3Events is the population size.
	Table3       [6]float64
	Table3Events int
	// Table4: host population types.
	Table4 TypeTable
	// Whitelist is the §7.2 extension: per-host share of daily incoming
	// traffic a top-port whitelist built from earlier days would pass.
	Whitelist []WhitelistCoverage
	// Protocol mix over anomaly events with data (§5.4).
	ProtoShares ProtocolShares
	// EventsWithData counts events with any during-event samples (§5.4
	// reports 29%).
	EventsWithData int
	// AnomalyAndData counts events with both a preceding anomaly and
	// during-event data (§5.4 reports 18% of all).
	AnomalyAndData int
}

// stageTimers are the per-stage span timers shared by both Analyze paths;
// all fields are nil when the run is not instrumented.
type stageTimers struct {
	observe, compose *obs.Timer
}

// newStageTimers registers the stage timers (and the dataset-level
// control-plane gauge) when reg is non-nil.
func newStageTimers(reg *MetricsRegistry, d *Dataset) stageTimers {
	if reg == nil {
		return stageTimers{}
	}
	reg.GaugeFunc("analysis.control_updates", func() int64 { return int64(len(d.Updates)) })
	return stageTimers{
		observe: reg.Timer("pipeline.observe"),
		compose: reg.Timer("analysis.compose"),
	}
}

// span runs fn as one timed span of t (t may be nil).
func span(t *obs.Timer, fn func() error) error {
	if t == nil {
		return fn()
	}
	sp := t.Start()
	defer sp.End()
	return fn()
}

// Analyze streams the archive through the single-pass operator pipeline
// and composes the report. With Options.Workers != 1 the pass runs on
// the sharded parallel pipeline; the report is byte-identical either way,
// and identical to what the online analyzer's Snapshot produces over the
// same stream (see DESIGN.md, "Incremental analysis").
func (d *Dataset) Analyze(opts Options) (*Report, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return d.analyzeSequential(opts)
	}
	pp, err := pipeline.NewParallel(d.Meta, d.Updates, opts.Delta, workers)
	if err != nil {
		return nil, err
	}
	pp.BindFlow(mitigation.NewIndex(d.FlowUpdates, d.Meta.End))
	if opts.Metrics != nil {
		pp.Instrument(opts.Metrics)
	}
	tm := newStageTimers(opts.Metrics, d)
	if err := span(tm.observe, func() error { return pp.RunBatches(d.EachFlowBatch) }); err != nil {
		return nil, err
	}
	var report *Report
	_ = span(tm.compose, func() error { report = composeReport(d.Meta, d.Updates, pp.Pipeline(), opts); return nil })
	return report, nil
}

// analyzeSequential is the single-goroutine reference path (-workers=1).
func (d *Dataset) analyzeSequential(opts Options) (*Report, error) {
	p, err := pipeline.New(d.Meta, d.Updates, opts.Delta)
	if err != nil {
		return nil, err
	}
	p.BindFlow(mitigation.NewIndex(d.FlowUpdates, d.Meta.End))
	if opts.Metrics != nil {
		p.RegisterMetrics(opts.Metrics)
	}
	tm := newStageTimers(opts.Metrics, d)
	err = span(tm.observe, func() error {
		return d.EachFlowBatch(func(b *recordBatch) error {
			p.ObserveBatch(b)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	var report *Report
	_ = span(tm.compose, func() error { report = composeReport(d.Meta, d.Updates, p, opts); return nil })
	return report, nil
}

// Re-exported use-case classes (Fig 19).
const (
	UseCaseOther                    = usecase.ClassOther
	UseCaseInfrastructureProtection = usecase.ClassInfrastructureProtection
	UseCaseSquattingProtection      = usecase.ClassSquattingProtection
	UseCaseZombie                   = usecase.ClassZombie
	UseCaseContentBlocking          = usecase.ClassContentBlocking
)
