package rtbh

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md for the experiment index). A shared world is simulated
// and analyzed once; each benchmark then times the computation behind its
// figure and reports the figure's headline numbers as custom metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction run.
//
// Scale is selectable via RTBH_BENCH_SCALE=test|bench|full (default:
// test). The bench scale takes a few minutes of setup; full reproduces
// the paper's 104-day period.

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/load"
	"repro/internal/analysis/pipeline"
	"repro/internal/analysis/usecase"
	"repro/internal/analysis/visibility"
	"repro/internal/ipfix"
	"repro/internal/radviz"
)

var bench struct {
	once   sync.Once
	ds     *Dataset
	pipe   *pipeline.Pipeline
	report *Report
	opts   Options
	err    error
}

func benchSetup(b *testing.B) (*Dataset, *pipeline.Pipeline, *Report, Options) {
	b.Helper()
	bench.once.Do(func() {
		var cfg Config
		switch os.Getenv("RTBH_BENCH_SCALE") {
		case "full":
			cfg = DefaultConfig()
		case "bench":
			cfg = BenchConfig()
		default:
			cfg = TestConfig()
		}
		dir, err := os.MkdirTemp("", "rtbh-bench-*")
		if err != nil {
			bench.err = err
			return
		}
		if _, err := Simulate(cfg, dir); err != nil {
			bench.err = err
			return
		}
		ds, err := OpenDataset(dir)
		if err != nil {
			bench.err = err
			return
		}
		opts := DefaultOptions()
		p, err := pipeline.New(ds.Meta, ds.Updates, opts.Delta)
		if err != nil {
			bench.err = err
			return
		}
		if err := ds.EachFlow(func(rec *FlowRecord) error { p.Observe(rec); return nil }); err != nil {
			bench.err = err
			return
		}
		report, err := ds.Analyze(opts)
		if err != nil {
			bench.err = err
			return
		}
		bench.ds, bench.pipe, bench.report, bench.opts = ds, p, report, opts
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return bench.ds, bench.pipe, bench.report, bench.opts
}

// BenchmarkFig2TimeOffset regenerates the control/data clock-offset MLE
// (paper: 99.36% overlap at -0.04s; here +40ms recovers the injected
// -40ms data-plane skew).
func BenchmarkFig2TimeOffset(b *testing.B) {
	_, p, _, opts := benchSetup(b)
	var res *TimeAlignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = p.Align.Estimate(opts.OffsetStep)
	}
	b.ReportMetric(res.BestOffset.Seconds()*1000, "best_offset_ms")
	b.ReportMetric(100*res.BestOverlap, "overlap_pct")
}

// BenchmarkFig3RTBHLoad regenerates the parallel-RTBH load series
// (paper: 1,107 parallel on average, at most 1,400).
func BenchmarkFig3RTBHLoad(b *testing.B) {
	ds, _, _, _ := benchSetup(b)
	var res *LoadResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = load.Compute(ds.Updates, ds.Meta.Start, ds.Meta.End)
	}
	b.ReportMetric(res.AvgActive, "avg_active")
	b.ReportMetric(float64(res.MaxActive), "max_active")
	b.ReportMetric(float64(res.MaxMessagesPerMinute), "max_msgs_per_min")
}

// BenchmarkFig4Visibility regenerates the targeted-announcement
// visibility quantiles (paper: median peer missed up to 6.2%).
func BenchmarkFig4Visibility(b *testing.B) {
	ds, _, _, opts := benchSetup(b)
	peers := make([]uint32, 0, len(ds.Meta.MemberByMAC))
	for _, asn := range ds.Meta.MemberByMAC {
		peers = append(peers, asn)
	}
	var res *VisibilityResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = visibility.Compute(ds.Updates, peers, ds.Meta.Start, ds.Meta.End, opts.VisibilityInterval)
	}
	b.ReportMetric(100*res.PeakP50, "peak_median_hidden_pct")
	b.ReportMetric(100*res.PeakMax, "peak_max_hidden_pct")
}

// BenchmarkFig5DropByPrefixLen regenerates drop rates by prefix length
// (paper: /32 drops ~50% of packets, 44% of bytes).
func BenchmarkFig5DropByPrefixLen(b *testing.B) {
	_, p, _, _ := benchSetup(b)
	var rows []LengthStat
	var avgP, avgB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = p.Drop.ByLength()
		avgP, avgB = p.Drop.AverageDropRate()
	}
	for _, row := range rows {
		if row.PrefixLen == 32 {
			b.ReportMetric(100*row.DropRatePkts(), "drop32_pkts_pct")
		}
	}
	b.ReportMetric(100*avgP, "avg_drop_pkts_pct")
	b.ReportMetric(100*avgB, "avg_drop_bytes_pct")
}

// BenchmarkFig6DropRateCDF regenerates the per-event drop-rate CDFs
// (paper: /32 quartiles 30/53/88%, /24 median 97%).
func BenchmarkFig6DropRateCDF(b *testing.B) {
	_, p, _, opts := benchSetup(b)
	var c32, c24 *ECDF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c32 = p.Drop.DropRateCDF(32, opts.MinEventPkts)
		c24 = p.Drop.DropRateCDF(24, opts.MinEventPkts)
	}
	if c32.Len() > 0 {
		b.ReportMetric(100*c32.Quantile(0.5), "median32_pct")
	}
	if c24.Len() > 0 {
		b.ReportMetric(100*c24.Quantile(0.5), "median24_pct")
	}
}

// BenchmarkFig7Top100SourceASes regenerates the top-source behaviour
// classes (paper: 32 acceptors, 55 rejectors, 13 inconsistent).
func BenchmarkFig7Top100SourceASes(b *testing.B) {
	_, p, _, opts := benchSetup(b)
	var cls SourceClasses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls = p.Drop.ClassifyTopSources(opts.TopSources)
	}
	b.ReportMetric(float64(cls.Acceptors), "acceptors")
	b.ReportMetric(float64(cls.Rejectors), "rejectors")
	b.ReportMetric(float64(cls.Inconsistent), "inconsistent")
}

// BenchmarkFig8PeeringDBTypes regenerates the organization types of the
// top sources (paper: NSPs dominate the non-acceptors).
func BenchmarkFig8PeeringDBTypes(b *testing.B) {
	ds, p, _, opts := benchSetup(b)
	var tt TopSourceTypes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt = p.Drop.TypesOfTopSources(opts.TopSources, ds.Meta.PDB)
	}
	b.ReportMetric(float64(tt.NonAcceptors["NSP"]), "nsp_non_acceptors")
}

// BenchmarkFig10MergeThreshold regenerates the merge-threshold sweep
// (paper: 400k announcements -> 34k events = 8.5% at delta 10min).
func BenchmarkFig10MergeThreshold(b *testing.B) {
	ds, _, _, _ := benchSetup(b)
	deltas := []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute, time.Hour}
	var points []SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, _ = events.Sweep(ds.Updates, deltas, ds.Meta.End)
	}
	for _, pt := range points {
		if pt.Delta == 10*time.Minute {
			b.ReportMetric(100*pt.Fraction, "events_per_announcement_pct")
		}
	}
}

// BenchmarkFig12AnomalyOffsets runs the full five-feature EWMA detection
// over every event's 72-hour pre-window — the computational heart of
// Figs 11-13 and Table 2.
func BenchmarkFig12AnomalyOffsets(b *testing.B) {
	ds, p, _, opts := benchSetup(b)
	var vs []Verdict
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs = p.Anomaly.Analyze(p.Events, ds.Meta.End, opts.Threshold)
	}
	b.StopTimer()
	near, total := 0, 0
	for i := range vs {
		for _, a := range vs[i].Anomalies {
			total++
			if a.SlotsBefore <= 2 {
				near++
			}
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(near)/float64(total), "anomalies_within10min_pct")
	}
}

// BenchmarkFig11PreRTBHVisibility derives the pre-window data-sparsity
// distribution (paper: 46% of windows without any samples).
func BenchmarkFig11PreRTBHVisibility(b *testing.B) {
	_, _, r, _ := benchSetup(b)
	var noData, withData int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noData, withData = 0, 0
		for j := range r.Verdicts {
			if r.Verdicts[j].HasPreData {
				withData++
			} else {
				noData++
			}
		}
	}
	b.ReportMetric(100*float64(noData)/float64(maxI(noData+withData, 1)), "no_data_pct")
}

// BenchmarkFig13AmplificationFactor derives the last-slot amplification
// factors (paper: multiples up to 800).
func BenchmarkFig13AmplificationFactor(b *testing.B) {
	_, _, r, _ := benchSetup(b)
	var maxF float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxF = 0
		for j := range r.Verdicts {
			if f := r.Verdicts[j].AmpFactor[anomaly.FeatPackets]; f > maxF {
				maxF = f
			}
		}
	}
	b.ReportMetric(maxF, "max_amp_factor")
}

// BenchmarkTable2PreRTBHClasses tallies the Table 2 classes
// (paper: 46% / 27% / 27%).
func BenchmarkTable2PreRTBHClasses(b *testing.B) {
	_, _, r, _ := benchSetup(b)
	var c ClassCounts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = anomaly.Classify(r.Verdicts)
	}
	t := float64(maxI(c.Total(), 1))
	b.ReportMetric(100*float64(c.NoData)/t, "no_data_pct")
	b.ReportMetric(100*float64(c.DataAnomaly10Min)/t, "anomaly10min_pct")
}

// anomalyAndDataIDs recomputes the §5.4 event population.
func anomalyAndDataIDs(r *Report) []int {
	var ids []int
	for i := range r.Verdicts {
		if r.Verdicts[i].Within10Min && r.Verdicts[i].HasEventData {
			ids = append(ids, r.Verdicts[i].EventID)
		}
	}
	return ids
}

// BenchmarkTable3AmpProtocols regenerates the protocols-per-event
// distribution (paper: 1-2 protocols dominate at 40%+45%).
func BenchmarkTable3AmpProtocols(b *testing.B) {
	_, p, r, _ := benchSetup(b)
	ids := anomalyAndDataIDs(r)
	var dist [6]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist, _ = p.Proto.ProtocolCountDist(ids)
	}
	b.ReportMetric(100*dist[1], "one_protocol_pct")
	b.ReportMetric(100*dist[2], "two_protocols_pct")
}

// BenchmarkFig14FineGrainedFiltering regenerates the port-list filtering
// potential (paper: 90% of events fully coverable).
func BenchmarkFig14FineGrainedFiltering(b *testing.B) {
	_, p, r, _ := benchSetup(b)
	ids := anomalyAndDataIDs(r)
	var share float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		share = p.Proto.FullyFilterableShare(ids)
	}
	b.ReportMetric(100*share, "fully_filterable_pct")
}

// BenchmarkFig15ASParticipation regenerates the amplification-source
// participation CDFs (paper: top origin AS in 60% of events).
func BenchmarkFig15ASParticipation(b *testing.B) {
	_, p, r, _ := benchSetup(b)
	ids := anomalyAndDataIDs(r)
	var origin Participation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin = p.Proto.OriginParticipation(ids)
	}
	if len(origin.Top10) > 0 {
		b.ReportMetric(100*origin.Top10[0], "top_origin_participation_pct")
	}
	b.ReportMetric(float64(origin.ASes), "origin_ases")
}

// BenchmarkFig16RadViz projects all host profiles (paper: client-like
// mass dominates).
func BenchmarkFig16RadViz(b *testing.B) {
	_, _, r, _ := benchSetup(b)
	proj := radviz.New(hosts.NumFeatures)
	var pt RadVizPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range r.Fig17 {
			pt = proj.Project(r.Fig17[j].Features[:])
		}
	}
	_ = pt
	b.ReportMetric(float64(len(r.Fig17)), "hosts_projected")
}

// BenchmarkFig17PortVariation rebuilds the host profiles from the raw
// aggregates (paper: >4k clients, ~1k servers).
func BenchmarkFig17PortVariation(b *testing.B) {
	_, p, _, opts := benchSetup(b)
	var profiles []HostProfile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiles = p.ComposeProfiles(opts.MinActiveDays)
	}
	servers, clients := 0, 0
	for i := range profiles {
		switch profiles[i].Kind {
		case hosts.KindServer:
			servers++
		case hosts.KindClient:
			clients++
		}
	}
	b.ReportMetric(float64(clients), "clients")
	b.ReportMetric(float64(servers), "servers")
}

// BenchmarkTable4HostASTypes joins host profiles against the routing
// table and PeeringDB (paper: clients 60% Cable/DSL, servers 34% Content).
func BenchmarkTable4HostASTypes(b *testing.B) {
	ds, _, r, _ := benchSetup(b)
	var tt TypeTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt = hosts.Types(r.Fig17, ds.Meta.IP2AS, ds.Meta.PDB)
	}
	b.ReportMetric(100*tt.ClientTypes["Cable/DSL/ISP"], "client_cable_dsl_pct")
	b.ReportMetric(100*tt.ServerTypes["Content"], "server_content_pct")
}

// BenchmarkFig18CollateralDamage materializes the pending per-event cells
// against the server profiles and summarizes the collateral-damage counts
// (paper: up to 10^6 packets, ~300 events).
func BenchmarkFig18CollateralDamage(b *testing.B) {
	_, p, _, opts := benchSetup(b)
	profiles := p.ComposeProfiles(opts.MinActiveDays)
	var res *CollateralResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = p.ComposeCollateral(profiles).Result()
	}
	b.ReportMetric(float64(res.Events), "events_with_damage")
	b.ReportMetric(float64(res.MaxAll), "max_damage_pkts")
}

// BenchmarkFig19UseCaseClasses classifies all events into use cases
// (paper: 27% DDoS, 13% zombies, ~60% other).
func BenchmarkFig19UseCaseClasses(b *testing.B) {
	ds, p, r, _ := benchSetup(b)
	var res *UseCaseResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = usecase.Classify(p.Events, r.Verdicts, ds.Meta.End)
	}
	b.ReportMetric(100*res.Shares[UseCaseInfrastructureProtection], "infrastructure_pct")
	b.ReportMetric(100*res.Shares[UseCaseZombie], "zombie_pct")
	b.ReportMetric(100*res.Shares[UseCaseOther], "other_pct")
}

// BenchmarkTable1UseCaseMatrix touches the static expectations table
// (descriptive; included for completeness of the experiment index).
func BenchmarkTable1UseCaseMatrix(b *testing.B) {
	benchSetup(b)
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(usecase.Table1)
	}
	b.ReportMetric(float64(n), "rows")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationMergeDelta compares event counts at alternative merge
// thresholds: too small splits mitigations, too large fuses incidents.
func BenchmarkAblationMergeDelta(b *testing.B) {
	ds, _, _, _ := benchSetup(b)
	for _, delta := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour} {
		b.Run(delta.String(), func(b *testing.B) {
			var evs []*Event
			for i := 0; i < b.N; i++ {
				evs = events.Merge(ds.Updates, delta, ds.Meta.End)
			}
			b.ReportMetric(float64(len(evs)), "events")
		})
	}
}

// BenchmarkAblationThreshold compares the anomaly classification at the
// paper's 2.5 sigma against the extreme 10 sigma it reports as stable.
func BenchmarkAblationThreshold(b *testing.B) {
	ds, p, _, _ := benchSetup(b)
	for _, thr := range []float64{2.5, 10} {
		b.Run(thrName(thr), func(b *testing.B) {
			var vs []Verdict
			for i := 0; i < b.N; i++ {
				vs = p.Anomaly.Analyze(p.Events, ds.Meta.End, thr)
			}
			c := anomaly.Classify(vs)
			b.ReportMetric(100*float64(c.DataAnomaly10Min)/float64(maxI(c.Total(), 1)), "anomaly10min_pct")
		})
	}
}

func thrName(t float64) string {
	if t == 2.5 {
		return "2.5sd"
	}
	return "10sd"
}

// BenchmarkAblationSamplingRate re-simulates a small world at different
// sampling rates and reports how many events remain visible on the data
// plane — the paper's core measurement caveat.
func BenchmarkAblationSamplingRate(b *testing.B) {
	for _, rate := range []int64{1000, 10000, 100000} {
		b.Run(rateName(rate), func(b *testing.B) {
			var visible float64
			for i := 0; i < b.N; i++ {
				visible = eventVisibilityAtRate(b, rate)
			}
			b.ReportMetric(100*visible, "events_with_predata_pct")
		})
	}
}

func rateName(r int64) string {
	switch r {
	case 1000:
		return "1:1000"
	case 10000:
		return "1:10000"
	default:
		return "1:100000"
	}
}

func eventVisibilityAtRate(b *testing.B, rate int64) float64 {
	b.Helper()
	cfg := TestConfig()
	cfg.Days = 14
	cfg.EventsTotal = 300
	cfg.UniqueVictims = 150
	cfg.Members = 60
	cfg.RTBHUsers = 12
	cfg.VictimOriginASes = 16
	cfg.RemoteOriginASes = 200
	cfg.SamplingRate = rate
	dir, err := os.MkdirTemp("", "rtbh-ablate-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := Simulate(cfg, dir); err != nil {
		b.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SweepDeltas = nil
	opts.OffsetStep = 100 * time.Millisecond
	r, err := ds.Analyze(opts)
	if err != nil {
		b.Fatal(err)
	}
	withData := 0
	for i := range r.Verdicts {
		if r.Verdicts[i].HasPreData {
			withData++
		}
	}
	return float64(withData) / float64(maxI(len(r.Verdicts), 1))
}

// BenchmarkSimulate measures end-to-end dataset generation at a small
// scale (per-iteration full simulation).
func BenchmarkSimulate(b *testing.B) {
	cfg := TestConfig()
	cfg.Days = 10
	cfg.EventsTotal = 200
	cfg.UniqueVictims = 100
	cfg.Members = 50
	cfg.RTBHUsers = 10
	cfg.VictimOriginASes = 12
	cfg.RemoteOriginASes = 150
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "rtbh-simbench-*")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(cfg, dir); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// BenchmarkAnalyzeFull measures the complete single-pass analysis over
// the shared dataset.
func BenchmarkAnalyzeFull(b *testing.B) {
	ds, _, _, opts := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Analyze(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineSnapshot contrasts the online analyzer's incremental
// snapshot against a cold batch re-analysis of the same streams, at two
// stream lengths with the event population held fixed. Everything past
// the ~73h seal horizon is folded into compact operator state and the
// raw records released, so a snapshot clones that state and replays
// only the horizon-sized tail: doubling the stream length roughly
// doubles the cold cost while the incremental cost stays flat —
// sub-linear in total stream length. retained_records (vs
// total_records) is the steady-state memory bound, which depends on the
// horizon, not on how long the run has streamed.
func BenchmarkOnlineSnapshot(b *testing.B) {
	for _, days := range []int{14, 28} {
		b.Run(fmt.Sprintf("days=%d", days), func(b *testing.B) {
			benchOnlineSnapshot(b, days)
		})
	}
}

func benchOnlineSnapshot(b *testing.B, days int) {
	cfg := TestConfig()
	cfg.Days = days
	cfg.EventsTotal = 300
	cfg.UniqueVictims = 150
	cfg.Members = 60
	cfg.RTBHUsers = 12
	cfg.VictimOriginASes = 16
	cfg.RemoteOriginASes = 200
	dir, err := os.MkdirTemp("", "rtbh-online-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := Simulate(cfg, dir); err != nil {
		b.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SweepDeltas = nil
	opts.OffsetStep = 100 * time.Millisecond
	opts.Workers = 1

	reg := NewMetricsRegistry()
	a := NewOnlineAnalyzer(ds.Meta)
	a.RegisterMetrics(reg)
	for i := range ds.Updates {
		a.ObserveControl(ds.Updates[i])
	}
	if err := ds.EachFlow(func(rec *FlowRecord) error { a.ObserveFlow(rec); return nil }); err != nil {
		b.Fatal(err)
	}
	if _, err := a.Snapshot(opts); err != nil { // seal everything eligible once
		b.Fatal(err)
	}
	_, total := a.Counts()
	retained := reg.Snapshot().Gauge("online.retained_flows")

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Snapshot(opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(retained), "retained_records")
		b.ReportMetric(float64(total), "total_records")
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ds.Analyze(opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(total), "total_records")
	})
}

// benchFlows caches the shared dataset's flow archive in memory, chunked
// into dispatch-sized record batches, so the pipeline benchmarks time
// aggregation, not file decoding. Each batch holds one permanent
// reference so the runner's retain/release cycles never recycle it.
var benchFlows struct {
	once    sync.Once
	total   int
	batches []*recordBatch
	err     error
}

func loadBenchFlows(b *testing.B, ds *Dataset) (int, []*recordBatch) {
	b.Helper()
	benchFlows.once.Do(func() {
		var recs []FlowRecord
		benchFlows.err = ds.EachFlow(func(rec *FlowRecord) error {
			recs = append(recs, *rec)
			return nil
		})
		benchFlows.total = len(recs)
		for i := 0; i < len(recs); i += pipeline.DefaultBatchSize {
			j := i + pipeline.DefaultBatchSize
			if j > len(recs) {
				j = len(recs)
			}
			bb := &recordBatch{Recs: recs[i:j]}
			bb.Retain() // permanent reference: keep out of the pool
			benchFlows.batches = append(benchFlows.batches, bb)
		}
	})
	if benchFlows.err != nil {
		b.Fatal(benchFlows.err)
	}
	return benchFlows.total, benchFlows.batches
}

// runPipelineBench times the streaming pass over the in-memory archive at
// the given worker count (0 = sequential pipeline, no dispatch layer),
// through the batch contract the production drivers use. Besides
// records/s it reports allocs/record over the observation phase alone
// (pipeline construction excluded) — the steady-state figure the batch
// path is designed to hold at ~0.
func runPipelineBench(b *testing.B, workers int) {
	ds, _, _, opts := benchSetup(b)
	total, batches := loadBenchFlows(b, ds)
	src := func(fn ipfix.BatchSink) error {
		for _, bb := range batches {
			if err := fn(bb); err != nil {
				return err
			}
		}
		return nil
	}
	var ms runtime.MemStats
	var observeMallocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers == 0 {
			p, err := pipeline.New(ds.Meta, ds.Updates, opts.Delta)
			if err != nil {
				b.Fatal(err)
			}
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			for _, bb := range batches {
				p.ObserveBatch(bb)
			}
			runtime.ReadMemStats(&ms)
			observeMallocs += ms.Mallocs - before
		} else {
			pp, err := pipeline.NewParallel(ds.Meta, ds.Updates, opts.Delta, workers)
			if err != nil {
				b.Fatal(err)
			}
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			if err := pp.RunBatches(src); err != nil {
				b.Fatal(err)
			}
			runtime.ReadMemStats(&ms)
			observeMallocs += ms.Mallocs - before
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/secs, "records/s")
	}
	if n := total * b.N; n > 0 {
		b.ReportMetric(float64(observeMallocs)/float64(n), "allocs/record")
	}
}

// BenchmarkPipelineSequential is the single-pass baseline: the plain
// Pipeline with no sharding or dispatch overhead.
func BenchmarkPipelineSequential(b *testing.B) { runPipelineBench(b, 0) }

// BenchmarkPipelineParallel times the sharded runner across worker
// counts. workers=1 isolates the dispatch overhead; higher counts show
// the scaling headroom (bounded by GOMAXPROCS on the machine).
func BenchmarkPipelineParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runPipelineBench(b, workers)
		})
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
