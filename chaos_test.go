package rtbh_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

// chaosConfig is a shrunk world: big enough that every profile's faults
// actually fire (hundreds of control updates, hundreds of export
// datagrams), small enough that the full seeds × profiles matrix stays
// race-test friendly.
func chaosConfig() rtbh.Config {
	cfg := rtbh.TestConfig()
	cfg.Seed = 0xC4A05
	cfg.Days = 12
	cfg.Members = 60
	cfg.RTBHUsers = 12
	cfg.VictimOriginASes = 20
	cfg.RemoteOriginASes = 400
	cfg.EventsTotal = 250
	cfg.UniqueVictims = 120
	cfg.MeanAmplifiersPerAttack = 40
	// FlowSpec signaling rides the same impaired sessions: the chaos
	// matrix must also preserve the fine-grained mitigation measurement.
	cfg.MitigationPolicy = "escalate"
	return cfg
}

// renderReport flattens a report to comparable bytes (same shape as the
// clean parity test uses).
func renderReport(rep *rtbh.Report) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "records %d/%d/%d/%d events %d\n",
		rep.TotalRecords, rep.InternalRecords,
		rep.AttributedRecords, rep.DroppedRecords, len(rep.Events))
	textreport.RenderAll(&buf, rep)
	return buf.Bytes()
}

// chaosOutcome is everything one chaos live run leaves behind.
type chaosOutcome struct {
	snap    *rtbh.MetricsSnapshot
	total   int64  // online Final's TotalRecords
	report  []byte // rendered online Final
	offline []byte // rendered batch analysis of the live dataset dir
	updates []byte // updates.mrt
	flows   []byte // flows.ipfix
	journal string
}

// runChaosLive executes one live run under (seed, profile) and gathers
// the outcome. On test failure the metrics snapshot is written to
// $CHAOS_METRICS_DIR for CI artifact upload.
func runChaosLive(t *testing.T, cfg rtbh.Config, seed uint64, profile string, opts rtbh.Options) *chaosOutcome {
	t.Helper()
	dir := t.TempDir()
	reg := rtbh.NewMetricsRegistry()
	lr, err := rtbh.NewLiveRun(cfg, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.EnableChaos(seed, profile); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dumpChaosMetrics(t, reg, profile, seed) })
	if _, err := lr.Run(context.Background()); err != nil {
		t.Fatalf("live run under %s/seed %d: %v", profile, seed, err)
	}
	if lr.Interrupted() {
		t.Fatal("uninterrupted chaos run reports Interrupted")
	}

	out := &chaosOutcome{journal: lr.ChaosJournal()}
	snap := reg.Snapshot()
	out.snap = &snap

	rep, err := lr.Analyzer().Final(opts)
	if err != nil {
		t.Fatal(err)
	}
	out.total = rep.TotalRecords
	out.report = renderReport(rep)

	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatalf("chaos dataset unloadable: %v", err)
	}
	offRep, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	out.offline = renderReport(offRep)

	if out.updates, err = os.ReadFile(filepath.Join(dir, rtbh.FileUpdates)); err != nil {
		t.Fatal(err)
	}
	if out.flows, err = os.ReadFile(filepath.Join(dir, rtbh.FileFlows)); err != nil {
		t.Fatal(err)
	}
	return out
}

// dumpChaosMetrics writes the snapshot to $CHAOS_METRICS_DIR when the
// test failed — the CI chaos-soak step uploads that directory as an
// artifact so a red run ships its own reconciliation evidence.
func dumpChaosMetrics(t *testing.T, reg *rtbh.MetricsRegistry, profile string, seed uint64) {
	t.Helper()
	dir := os.Getenv("CHAOS_METRICS_DIR")
	if dir == "" || !t.Failed() {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos metrics dump: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("metrics-%s-seed%d.json", profile, seed))
	f, err := os.Create(path)
	if err != nil {
		t.Logf("chaos metrics dump: %v", err)
		return
	}
	defer f.Close()
	snap := reg.Snapshot()
	if err := snap.WriteJSON(f); err != nil {
		t.Logf("chaos metrics dump: %v", err)
		return
	}
	t.Logf("metrics snapshot written to %s", path)
}

// TestChaosLiveParity is the chaos-soak matrix: for each impairment
// profile and chaos seed, the PR 3 invariants must survive injected
// faults — the control plane stays byte-identical to the batch run
// (sessions re-establish, the sequencer restores total order), the
// online report equals the batch report modulo exactly the drops the
// collector accounted for, and every injected fault reconciles against
// an observed recovery counter.
func TestChaosLiveParity(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a chaos matrix through live transports")
	}
	cfg := chaosConfig()
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond

	// Batch reference, once for the whole matrix.
	batchDir := t.TempDir()
	if _, err := rtbh.Simulate(cfg, batchDir); err != nil {
		t.Fatal(err)
	}
	batchUpdates, err := os.ReadFile(filepath.Join(batchDir, rtbh.FileUpdates))
	if err != nil {
		t.Fatal(err)
	}
	batchFlows, err := os.ReadFile(filepath.Join(batchDir, rtbh.FileFlows))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(batchDir)
	if err != nil {
		t.Fatal(err)
	}
	batchRep, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	batchRendered := renderReport(batchRep)

	// headline: the fault class that must demonstrably fire per profile.
	matrix := []struct {
		profile  string
		headline string
	}{
		{"lossy-udp", "faultnet.udp.dropped_datagrams"},
		{"flapping-tcp", "faultnet.tcp.kills"},
		{"partition-heal", "faultnet.udp.partitions"},
	}
	for _, mcase := range matrix {
		for _, seed := range []uint64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", mcase.profile, seed), func(t *testing.T) {
				out := runChaosLive(t, cfg, seed, mcase.profile, opts)
				snap := out.snap
				counter := func(name string) int64 {
					t.Helper()
					if !snap.Has(name) {
						t.Fatalf("metric %s not registered", name)
					}
					return snap.Counter(name)
				}

				if v := counter(mcase.headline); v == 0 {
					t.Errorf("profile %s injected no %s faults — the soak tested nothing", mcase.profile, mcase.headline)
				}

				// Control-plane parity survives every profile: the MRT
				// archive is byte-identical to the batch run even across
				// session kills and reconnects.
				if !bytes.Equal(out.updates, batchUpdates) {
					t.Errorf("updates.mrt differs from batch under %s (batch %d bytes, live %d)",
						mcase.profile, len(batchUpdates), len(out.updates))
				}

				// Transport reconciliation: injected == observed, exactly.
				if kills, rec := counter("faultnet.tcp.kills"), counter("live.bgp.reconnects"); rec != kills {
					t.Errorf("reconnects %d != injected kills %d", rec, kills)
				}
				wantDropped := counter("faultnet.udp.dropped_records") + counter("faultnet.udp.reorder_late_records")
				if got := counter("live.ipfix.dropped_records"); got != wantDropped {
					t.Errorf("collector accounted %d dropped records, injected %d", got, wantDropped)
				}
				wantLate := counter("faultnet.udp.duplicated") + counter("faultnet.udp.reorder_late_datagrams")
				if got := counter("live.ipfix.late_msgs"); got != wantLate {
					t.Errorf("late msgs %d, want %d (dups + late reorders)", got, wantLate)
				}
				for _, name := range []string{
					"live.ipfix.dropped_datagrams", // queue shedding would double-count drops
					"live.ipfix.decode_errors",
					"live.bgp.hold_expiries",
					"live.bgp.restart_flushes", // every kill must heal within tolerance
				} {
					if v := counter(name); v != 0 {
						t.Errorf("%s = %d, want 0", name, v)
					}
				}
				if def, rec := counter("live.bgp.restarts_deferred"), counter("live.bgp.restarts_recovered"); def != rec {
					t.Errorf("restarts deferred %d != recovered %d", def, rec)
				}
				if sent, del := counter("live.bgp.updates_sent"), counter("live.bgp.updates_delivered"); sent != del {
					t.Errorf("updates sent %d != delivered %d", sent, del)
				}
				exported := counter("live.ipfix.exported_records")
				if col := counter("live.ipfix.collected_records"); col+wantDropped != exported {
					t.Errorf("collected %d + dropped %d != exported %d", col, wantDropped, exported)
				}

				// The online report must equal the batch analysis of the
				// live run's own dataset (online == offline over the same
				// collected stream)...
				if !bytes.Equal(out.report, out.offline) {
					t.Errorf("online report differs from offline analysis of the live dataset")
				}
				// ...and differ from the full batch report by exactly the
				// accounted drops.
				if out.total+wantDropped != batchRep.TotalRecords {
					t.Errorf("live TotalRecords %d + dropped %d != batch TotalRecords %d",
						out.total, wantDropped, batchRep.TotalRecords)
				}
				if wantDropped == 0 {
					// No data-plane loss (e.g. flapping-tcp): the whole
					// dataset and report must match the batch run outright.
					if !bytes.Equal(out.flows, batchFlows) {
						t.Errorf("flows.ipfix differs from batch despite zero drops")
					}
					if !bytes.Equal(out.report, batchRendered) {
						t.Errorf("report differs from batch despite zero drops")
					}
				}
			})
		}
	}
}

// TestChaosDeterminism runs each profile twice with the same chaos seed:
// the fault journals, archives and final reports must be byte-identical
// — the "-chaos-seed reproduces the failure" guarantee.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each chaos profile twice")
	}
	cfg := chaosConfig()
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond
	for _, profile := range []string{"lossy-udp", "flapping-tcp", "partition-heal"} {
		t.Run(profile, func(t *testing.T) {
			a := runChaosLive(t, cfg, 1, profile, opts)
			b := runChaosLive(t, cfg, 1, profile, opts)
			if a.journal != b.journal {
				t.Errorf("same seed, different fault journals:\n-- run 1 --\n%s\n-- run 2 --\n%s", a.journal, b.journal)
			}
			if a.journal == "" {
				t.Error("empty fault journal: nothing was injected")
			}
			if !bytes.Equal(a.updates, b.updates) {
				t.Error("same seed, different updates.mrt")
			}
			if !bytes.Equal(a.flows, b.flows) {
				t.Error("same seed, different flows.ipfix")
			}
			if !bytes.Equal(a.report, b.report) {
				t.Error("same seed, different final reports")
			}
		})
	}
}
