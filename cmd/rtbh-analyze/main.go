// Command rtbh-analyze runs the paper's full analysis pipeline over a
// dataset directory produced by rtbh-sim (or any dataset in the same
// format) and prints every reproduced figure and table with the paper's
// reported values alongside.
//
// Usage:
//
//	rtbh-analyze -data DIR [-delta 10m] [-threshold 2.5] [-min-days 20]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

func main() {
	data := flag.String("data", "dataset", "dataset directory (from rtbh-sim)")
	delta := flag.Duration("delta", 10*time.Minute, "RTBH event merge threshold")
	threshold := flag.Float64("threshold", 2.5, "EWMA anomaly threshold in standard deviations")
	minDays := flag.Int("min-days", 20, "minimum active days for host profiling")
	offsetStep := flag.Duration("offset-step", 10*time.Millisecond, "time-offset MLE grid step")
	workers := flag.Int("workers", 0, "parallel pipeline shards (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	ds, err := rtbh.OpenDataset(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
		os.Exit(1)
	}
	opts := rtbh.DefaultOptions()
	opts.Delta = *delta
	opts.Threshold = *threshold
	opts.MinActiveDays = *minDays
	opts.OffsetStep = *offsetStep
	opts.Workers = *workers

	start := time.Now()
	report, err := ds.Analyze(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "analysis finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(w, "records: %d total, %d internal (cleaned), %d attributed to blackholed prefixes, %d dropped\n",
		report.TotalRecords, report.InternalRecords, report.AttributedRecords, report.DroppedRecords)
	fmt.Fprintf(w, "control plane: %d updates -> %d RTBH events at delta %v\n\n",
		len(ds.Updates), len(report.Events), *delta)
	textreport.RenderAll(w, report)
}
