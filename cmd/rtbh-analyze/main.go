// Command rtbh-analyze runs the paper's full analysis pipeline over a
// dataset directory produced by rtbh-sim (or any dataset in the same
// format) and prints every reproduced figure and table with the paper's
// reported values alongside.
//
// Usage:
//
//	rtbh-analyze -data DIR [-delta 10m] [-threshold 2.5] [-min-days 20]
//	             [-metrics PATH] [-pprof ADDR]
//
// With -metrics, a JSON snapshot of the analysis observability metrics
// (pipeline stage counters and timers, dropstats totals) is written after
// the run; "-" writes to stderr. The snapshot's counters reconcile
// exactly with the printed report (see DESIGN.md, "Observability"). With
// -pprof, net/http/pprof and a live /metrics endpoint are served on the
// given address for profiling long runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	rtbh "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/textreport"
)

func main() {
	data := flag.String("data", "dataset", "dataset directory (from rtbh-sim)")
	delta := flag.Duration("delta", 10*time.Minute, "RTBH event merge threshold")
	threshold := flag.Float64("threshold", 2.5, "EWMA anomaly threshold in standard deviations")
	minDays := flag.Int("min-days", 20, "minimum active days for host profiling")
	offsetStep := flag.Duration("offset-step", 10*time.Millisecond, "time-offset MLE grid step")
	workers := flag.Int("workers", 0, "parallel pipeline shards (0 = GOMAXPROCS, 1 = sequential)")
	metricsOut := flag.String("metrics", "", `write a JSON metrics snapshot to this path after the analysis ("-" for stderr)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	if err := cliutil.CheckWorkers(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckDatasetDir(*data, rtbh.FileMetadata); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
		os.Exit(2)
	}

	var reg *rtbh.MetricsRegistry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = rtbh.NewMetricsRegistry()
	}
	if *pprofAddr != "" {
		if err := obs.StartDebugServer(*pprofAddr, reg); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
			os.Exit(1)
		}
	}

	ds, err := rtbh.OpenDataset(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
		os.Exit(1)
	}
	opts := rtbh.DefaultOptions()
	opts.Delta = *delta
	opts.Threshold = *threshold
	opts.MinActiveDays = *minDays
	opts.OffsetStep = *offsetStep
	opts.Workers = *workers
	opts.Metrics = reg

	start := time.Now()
	report, err := ds.Analyze(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "analysis finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(w, "records: %d total, %d internal (cleaned), %d attributed to blackholed prefixes, %d dropped\n",
		report.TotalRecords, report.InternalRecords, report.AttributedRecords, report.DroppedRecords)
	fmt.Fprintf(w, "control plane: %d updates -> %d RTBH events at delta %v\n\n",
		len(ds.Updates), len(report.Events), *delta)
	textreport.RenderAll(w, report)

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-analyze: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the registry snapshot as JSON to path ("-" = stderr,
// so the report on stdout stays machine-separable from the metrics).
func writeMetrics(reg *rtbh.MetricsRegistry, path string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
