// Command rtbh-benchgate gates CI on benchmark throughput. It parses a
// `go test -json -bench` stream, prints the headline series (records/s
// and allocs/record for the batch-path benchmarks), and exits non-zero
// if any benchmark gated by the checked-in baseline regressed past the
// budget.
//
// Usage:
//
//	rtbh-benchgate -in BENCH_pr10.json -baseline bench_baseline.json \
//	               [-headline BENCH_pr10_headline.json]
//
// "-" for -in reads the stream from stdin, so the gate can also sit at
// the end of a pipe: go test -json -bench=. ./... | rtbh-benchgate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchgate"
)

func main() {
	in := flag.String("in", "-", `go test -json stream to gate ("-" = stdin)`)
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in throughput baseline")
	headlineOut := flag.String("headline", "", "also write the headline series as JSON to this path")
	flag.Parse()

	if err := run(*in, *baselinePath, *headlineOut); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(in, baselinePath, headlineOut string) error {
	var src io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	results, err := benchgate.ParseGoTestJSON(src)
	if err != nil {
		return err
	}

	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	bl, err := benchgate.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		return err
	}

	head := benchgate.Headline(results)
	if len(head) == 0 {
		return fmt.Errorf("no records/s benchmarks in the stream (did the bench step run?)")
	}
	fmt.Println("headline series:")
	for _, r := range head {
		fmt.Printf("  %-45s %12.0f records/s  %8.2f allocs/record\n",
			r.Name, r.Metrics["records/s"], r.Metrics["allocs/record"])
	}
	if headlineOut != "" {
		f, err := os.Create(headlineOut)
		if err != nil {
			return err
		}
		if err := benchgate.WriteHeadline(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if fails := benchgate.Check(results, bl); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		return fmt.Errorf("%d benchmark gate(s) failed", len(fails))
	}
	fmt.Printf("bench gate passed: %d benchmark(s) within %g%% of baseline\n",
		len(bl.RecordsPerSec), bl.MaxRegression*100)
	return nil
}
