// Command rtbh-experiments regenerates individual figures and tables of
// the paper. It either analyzes an existing dataset directory or, with
// -simulate, generates one on the fly.
//
// Usage:
//
//	rtbh-experiments -run fig6                 # one experiment
//	rtbh-experiments -run fig2,fig5,table3     # several
//	rtbh-experiments -run all -simulate bench  # everything, fresh world
//	rtbh-experiments -ixps 3 -simulate test    # federated world, merged report
//	rtbh-experiments -list                     # available experiments
//
// With -ixps N (N > 1) the world is federated across N exchanges: each
// exchange observes only its members' control messages and traffic, the
// per-exchange snapshots are merged through the federation coordinator,
// and the report adds the cross-exchange leakage view. An existing
// federated dataset is analyzed with -data DIR where DIR holds the
// ixp0..ixpN-1 subdirectories SimulateFederated writes.
//
// With -metrics, one JSON snapshot spanning the whole run — the simulated
// world's route-server and fabric counters (when -simulate) plus the
// analysis pipeline counters and stage timers — is written at the end
// ("-" for stderr).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	rtbh "repro"
	"repro/internal/cliutil"
	"repro/internal/textreport"
)

func main() {
	runIDs := flag.String("run", "all", "comma-separated experiment ids (fig2..fig19, table1..table5) or 'all'")
	data := flag.String("data", "", "dataset directory; empty means -simulate")
	simulate := flag.String("simulate", "test", "simulate a fresh world at this scale (test, bench, full, or a traffic multiplier like 50 = the full world at paper magnitudes) when -data is empty")
	trafficScale := flag.Float64("traffic-scale", 0, "override the traffic-magnitude multiplier for -simulate (0 keeps the scale default)")
	seed := flag.Uint64("seed", 0, "override scenario seed for -simulate")
	mitigation := flag.String("mitigation", "", `fine-grained mitigation policy for -simulate: "flowspec", "escalate" or "mixed" (empty keeps pure RTBH; see table5)`)
	list := flag.Bool("list", false, "list available experiments and exit")
	workers := flag.Int("workers", 0, "parallel pipeline shards (0 = GOMAXPROCS, 1 = sequential)")
	ixps := flag.Int("ixps", 1, "federate the world across this many exchanges (with -data, the directory holds ixp0..ixpN-1 datasets)")
	metricsOut := flag.String("metrics", "", `write a JSON metrics snapshot to this path after the run ("-" for stderr)`)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *list {
		for _, e := range textreport.All() {
			fmt.Fprintf(w, "%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	// Validate every input before the (potentially minutes-long)
	// simulate/analyze phases: a typoed experiment id must fail now.
	if err := cliutil.CheckWorkers(*workers); err != nil {
		usageFail(err)
	}
	if err := cliutil.CheckIXPs(*ixps); err != nil {
		usageFail(err)
	}
	var knownIDs []string
	for _, e := range textreport.All() {
		knownIDs = append(knownIDs, e.ID)
	}
	selected, err := cliutil.CheckRunIDs(*runIDs, knownIDs)
	if err != nil {
		usageFail(err)
	}
	if *data != "" {
		if *ixps > 1 {
			for i := 0; i < *ixps; i++ {
				if err := cliutil.CheckDatasetDir(rtbh.IXPDir(*data, i), rtbh.FileMetadata); err != nil {
					usageFail(err)
				}
			}
		} else if err := cliutil.CheckDatasetDir(*data, rtbh.FileMetadata); err != nil {
			usageFail(err)
		}
	}

	var reg *rtbh.MetricsRegistry
	if *metricsOut != "" {
		reg = rtbh.NewMetricsRegistry()
	}

	dir := *data
	if dir == "" {
		world, worldTraffic, err := cliutil.ParseScale(*simulate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-experiments: %v\n", err)
			os.Exit(2)
		}
		var cfg rtbh.Config
		switch world {
		case "test":
			cfg = rtbh.TestConfig()
		case "bench":
			cfg = rtbh.BenchConfig()
		case "full":
			cfg = rtbh.DefaultConfig()
		}
		cfg.TrafficScale = worldTraffic
		if worldTraffic != 0 {
			// The paper configuration: sampling coarsens with the traffic
			// so the sampled stream stays scale-1 sized (see ParseScale).
			cfg.SamplingRate = int64(float64(cfg.SamplingRate)*worldTraffic + 0.5)
		}
		if err := cliutil.CheckTrafficScale(*trafficScale); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-experiments: %v\n", err)
			os.Exit(2)
		}
		if *trafficScale != 0 {
			cfg.TrafficScale = *trafficScale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		cfg.MitigationPolicy = *mitigation
		if err := cfg.Validate(); err != nil {
			usageFail(err)
		}
		tmp, err := os.MkdirTemp("", "rtbh-exp-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(tmp)
		fmt.Fprintf(os.Stderr, "simulating %s-scale world into %s ...\n", *simulate, tmp)
		start := time.Now()
		if *ixps > 1 {
			cfg.IXPs = *ixps
			if _, err := rtbh.SimulateFederated(cfg, tmp); err != nil {
				fail(err)
			}
		} else if _, err := rtbh.SimulateObserved(cfg, tmp, reg); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "simulation done in %v\n", time.Since(start).Round(time.Millisecond))
		dir = tmp
	}

	start := time.Now()
	opts := rtbh.DefaultOptions()
	opts.Workers = *workers

	var report *rtbh.Report
	var fed *rtbh.FederatedReport
	if *ixps > 1 {
		dirs := make([]string, *ixps)
		for i := range dirs {
			dirs[i] = rtbh.IXPDir(dir, i)
		}
		var err error
		if fed, err = rtbh.AnalyzeFederated(dirs, opts); err != nil {
			fail(err)
		}
		report = fed.Global
	} else {
		ds, err := rtbh.OpenDataset(dir)
		if err != nil {
			fail(err)
		}
		opts.Metrics = reg
		if report, err = ds.Analyze(opts); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "analysis done in %v\n", time.Since(start).Round(time.Millisecond))

	switch {
	case fed != nil && selected == nil:
		textreport.RenderFederation(w, fed)
	case selected == nil:
		textreport.RenderAll(w, report)
	default:
		for _, id := range selected {
			e, _ := textreport.ByID(id)
			textreport.RenderOne(w, report, e)
		}
	}

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fail(err)
		}
	}
}

// writeMetrics dumps the registry snapshot as JSON to path ("-" = stderr).
func writeMetrics(reg *rtbh.MetricsRegistry, path string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rtbh-experiments: %v\n", err)
	os.Exit(1)
}

// usageFail reports an invalid invocation (exit code 2, like flag
// parsing errors).
func usageFail(err error) {
	fmt.Fprintf(os.Stderr, "rtbh-experiments: %v\n", err)
	os.Exit(2)
}
