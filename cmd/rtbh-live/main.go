// Command rtbh-live runs the simulation in live streaming mode: every
// control update crosses a real BGP-over-TCP session to the route
// server, every sampled flow record is exported as IPFIX over UDP to a
// collector, and an online analyzer accumulates both streams
// incrementally. At the end the same dataset files as rtbh-sim are on
// disk (byte-identical for the same configuration) and the final report
// — computed online, without re-reading the archives — is printed.
//
// Usage:
//
//	rtbh-live -out DIR [-scale test|bench|full|MULTIPLIER] [-seed N] [-days N]
//	          [-traffic-scale X]
//	          [-snapshot-every 30s] [-report=false] [-metrics PATH]
//	          [-pprof ADDR] [-chaos-profile NAME] [-chaos-seed N]
//	          [-ixps N] [-snapshot-chaos-profile NAME]
//	          [-serve ADDR] [-serve-max-age 5s] [-serve-history 5m]
//	          [-serve-history-depth 288]
//	          [-detect] [-detect-threshold PPS] [-detect-window D]
//	          [-detect-cooldown D]
//
// With -detect, a streaming DRDoS detector rides the collected flow
// stream: when a victim's estimated packet rate crosses
// -detect-threshold over a -detect-window, the detector originates an
// RTBH /32 for the victim through the route server as its own
// mitigation peer, and withdraws it after -detect-cooldown of quiet.
// The closed-loop detections (with per-attack announce and first-drop
// stamps) are scored against the scenario's ground truth after the run
// and exposed at /api/detections while it streams. Detection is
// single-exchange only: -detect with -ixps > 1 is rejected.
//
// With -serve, a looking-glass HTTP server (internal/serve) exposes the
// online analyzer's state as JSON while the run streams: /api/health,
// /api/summary, /api/events, /api/active, /api/collateral,
// /api/usecases, /api/victims, /api/history. Requests are served from a
// TTL snapshot cache (-serve-max-age, per-request ?maxAge= override)
// and a rolling history ring (-serve-history cadence, -serve-history-depth
// entries) so queries never block ingest. Serving is single-exchange
// only: -serve with -ixps > 1 is rejected.
//
// With -ixps N (N > 1) the run federates across N exchanges: each has
// its own route server, fabric, BGP sessions and IPFIX export, writes a
// standalone dataset into OUT/ixp<i>, and accumulates its own online
// analyzer. At the end the per-exchange snapshots cross the federation
// TCP transport — impaired by -snapshot-chaos-profile when set — and
// the merged federated report is printed.
//
// With -chaos-profile, a seeded fault-injection plan (internal/faultnet)
// impairs the live transports — connection kills, handshake resets and
// write stalls on the BGP sessions; drops, duplicates, reorders, delays
// and partitions on the IPFIX export — while the run still drains to a
// fully reconciled dataset. The same -chaos-seed injects a byte-identical
// fault schedule on every run.
//
// SIGINT/SIGTERM interrupt the run gracefully: dispatch stops, the
// in-flight streams drain, the archives hold the delivered prefix of
// the run, and the report covers exactly that prefix. With
// -snapshot-every, a partial analysis snapshot is printed periodically
// while the run is streaming.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rtbh "repro"
	"repro/internal/cliutil"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/textreport"
)

func main() {
	out := flag.String("out", "dataset", "output directory for the dataset files")
	scale := flag.String("scale", "test", "world scale: test, bench, full, or a traffic multiplier (e.g. 50 = the full 104-day world at the paper's absolute traffic magnitudes)")
	trafficScale := flag.Float64("traffic-scale", 0, "override the traffic-magnitude multiplier on any world scale (0 keeps the scale default)")
	seed := flag.Uint64("seed", 0, "override the scenario seed (0 keeps the scale default)")
	days := flag.Int("days", 0, "override the measurement-period length in days (0 keeps the scale default)")
	snapEvery := flag.Duration("snapshot-every", 0, "print a partial analysis snapshot at this interval (0 disables)")
	report := flag.Bool("report", true, "print the online analyzer's final report")
	workers := flag.Int("workers", 0, "parallel pipeline shards for the report (0 = GOMAXPROCS)")
	metricsOut := flag.String("metrics", "", `write a JSON metrics snapshot to this path after the run ("-" for stderr)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	chaosProfile := flag.String("chaos-profile", "",
		fmt.Sprintf("inject transport faults from this profile (%s; empty disables)", strings.Join(rtbh.ChaosProfiles(), ", ")))
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the fault-injection schedule (same seed, same faults)")
	ixps := flag.Int("ixps", 1, "federate the live run across this many exchanges (datasets land in OUT/ixp0..ixpN-1)")
	snapChaos := flag.String("snapshot-chaos-profile", "",
		"with -ixps > 1, impair the snapshot transport with this fault profile (empty disables)")
	serveAddr := flag.String("serve", "", "serve the looking-glass JSON API on this address while the run streams (e.g. :8080)")
	serveMaxAge := flag.Duration("serve-max-age", serve.DefaultMaxAge,
		"default snapshot TTL for looking-glass queries (per-request ?maxAge= overrides; 0 snapshots on every request)")
	serveHistory := flag.Duration("serve-history", serve.DefaultHistoryInterval,
		"looking-glass history capture cadence")
	serveHistoryDepth := flag.Int("serve-history-depth", serve.DefaultHistoryDepth,
		"how many periodic snapshots the looking-glass history ring retains")
	detectOn := flag.Bool("detect", false, "run the closed-loop DRDoS detector: originate RTBH for detected victims through the route server")
	detectThreshold := flag.Float64("detect-threshold", 0,
		"estimated packet rate (pps) over the detection window that fires a detection (0 derives detect.DefaultThreshold x the traffic scale)")
	detectWindow := flag.Duration("detect-window", detect.DefaultWindow,
		"sliding window the detector rates victims over")
	detectCooldown := flag.Duration("detect-cooldown", detect.DefaultCooldown,
		"quiet time after the last hot window before the blackhole is withdrawn")
	mitigation := flag.String("mitigation", "", `fine-grained mitigation policy: "flowspec", "escalate" or "mixed" (empty keeps pure RTBH; see the table5 report section)`)
	flag.Parse()

	world, worldTraffic, err := cliutil.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
		os.Exit(2)
	}
	var cfg rtbh.Config
	switch world {
	case "test":
		cfg = rtbh.TestConfig()
	case "bench":
		cfg = rtbh.BenchConfig()
	case "full":
		cfg = rtbh.DefaultConfig()
	}
	cfg.TrafficScale = worldTraffic
	if worldTraffic != 0 {
		// The paper configuration: sampling coarsens with the traffic so
		// the sampled stream stays scale-1 sized (see ParseScale).
		cfg.SamplingRate = int64(float64(cfg.SamplingRate)*worldTraffic + 0.5)
	}
	if err := cliutil.CheckTrafficScale(*trafficScale); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
		os.Exit(2)
	}
	if *trafficScale != 0 {
		cfg.TrafficScale = *trafficScale
	}
	if err := cliutil.CheckDays(*days); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckWorkers(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckIXPs(*ixps); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
		os.Exit(2)
	}
	// The default 0 disables periodic snapshots; only an explicitly set
	// cadence must be a positive duration. Tuning flags for a disabled
	// detector are a mistake worth stopping on too.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "snapshot-every":
			if err := cliutil.CheckSnapshotEvery(*snapEvery); err != nil {
				fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
				os.Exit(2)
			}
		case "detect-threshold", "detect-window", "detect-cooldown":
			if !*detectOn {
				fmt.Fprintf(os.Stderr, "rtbh-live: -%s is set but the detector is off; add -detect\n", f.Name)
				os.Exit(2)
			}
		}
	})
	if *detectOn {
		if err := cliutil.CheckDetect(*detectThreshold, *detectWindow, *detectCooldown); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
		if *ixps > 1 {
			fmt.Fprintf(os.Stderr, "rtbh-live: -detect supports a single exchange; drop -ixps or the -detect flag\n")
			os.Exit(2)
		}
	}
	if *serveAddr != "" {
		if err := cliutil.CheckServeAddr(*serveAddr); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
		if err := cliutil.CheckServeMaxAge(*serveMaxAge); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
		if err := cliutil.CheckServeHistory(*serveHistory, *serveHistoryDepth); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
		if *ixps > 1 {
			fmt.Fprintf(os.Stderr, "rtbh-live: -serve supports a single exchange; drop -ixps or the -serve flag\n")
			os.Exit(2)
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *days != 0 {
		cfg.Days = *days
	}
	cfg.MitigationPolicy = *mitigation
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
		os.Exit(2)
	}

	reg := rtbh.NewMetricsRegistry()
	if *pprofAddr != "" {
		if err := obs.StartDebugServer(*pprofAddr, reg); err != nil {
			fail(err)
		}
	}

	if *ixps > 1 {
		runFederated(cfg, *out, reg, *ixps, *workers, *report, *chaosProfile, *chaosSeed, *snapChaos, *metricsOut)
		return
	}

	lr, err := rtbh.NewLiveRun(cfg, *out, reg)
	if err != nil {
		fail(err)
	}
	if *chaosProfile != "" {
		if err := lr.EnableChaos(*chaosSeed, *chaosProfile); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
	}
	if *detectOn {
		err := lr.EnableDetector(detect.Config{
			Threshold: *detectThreshold,
			Window:    *detectWindow,
			Cooldown:  *detectCooldown,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := rtbh.DefaultOptions()
	opts.Workers = *workers

	if *serveAddr != "" {
		maxAge := *serveMaxAge
		if maxAge == 0 {
			maxAge = -1 // explicit 0 disables default caching; serve treats 0 as "use default"
		}
		scfg := serve.Config{
			Source:          lr.Analyzer(),
			Options:         opts,
			MaxAge:          maxAge,
			HistoryInterval: *serveHistory,
			HistoryDepth:    *serveHistoryDepth,
			Info: map[string]string{
				"scale":         *scale,
				"seed":          fmt.Sprintf("%d", cfg.Seed),
				"days":          fmt.Sprintf("%d", cfg.Days),
				"chaos_profile": *chaosProfile,
				"out":           *out,
			},
			Metrics: reg,
		}
		if det := lr.Detector(); det != nil {
			scfg.Detections = det.Status
		}
		srv, err := serve.New(scfg)
		if err != nil {
			fail(err)
		}
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		go srv.RunHistory(ctx.Done())
		fmt.Fprintf(os.Stderr, "looking glass: http://%s/api/health\n", bound)
	}

	if *snapEvery > 0 {
		go snapshotLoop(ctx, lr.Analyzer(), opts, *snapEvery)
	}

	start := time.Now()
	sum, err := lr.Run(ctx)
	if err != nil {
		fail(err)
	}
	stop() // a second signal past this point kills the process normally

	verb := "completed"
	if lr.Interrupted() {
		verb = "interrupted; drained gracefully —"
	}
	fmt.Printf("live run %s in %v, dataset written to %s\n", verb, time.Since(start).Round(time.Millisecond), *out)
	fmt.Printf("period: %s + %d days, seed %d, sampling 1:%d\n",
		cfg.Start.Format("2006-01-02"), cfg.Days, cfg.Seed, cfg.SamplingRate)
	fmt.Printf("control plane: %d messages over BGP/TCP (%d announcements, %d withdrawals)\n",
		sum.ControlMsgs, sum.Announcements, sum.Withdrawals)
	fmt.Printf("data plane: %d flow records over IPFIX/UDP (%d packets offered, %d dropped)\n",
		sum.FlowRecords, sum.PacketsIn, sum.PacketsDropped)
	if *chaosProfile != "" {
		fmt.Printf("chaos: profile %s, seed %d — injected faults reconciled (faultnet.* in the metrics snapshot)\n",
			*chaosProfile, *chaosSeed)
	}
	if *detectOn {
		st := lr.Detector().Status()
		fmt.Printf("detector: %d detections, %d still blackholed, %d flow records scored\n",
			len(st.Detections), st.Active, st.Records)
		fmt.Print(lr.EvaluateDetections(*detectWindow).Render())
	}

	if *report {
		rep, err := lr.Analyzer().Final(opts)
		if err != nil {
			fail(err)
		}
		w := bufio.NewWriter(os.Stdout)
		fmt.Fprintf(w, "\nonline analyzer final report (%d events):\n\n", len(rep.Events))
		textreport.RenderAll(w, rep)
		w.Flush()
	}

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fail(err)
		}
	}
}

// runFederated is the -ixps > 1 path: one live exchange per IXP, a
// standalone dataset per exchange under OUT/ixp<i>, and a federated
// report merged over the snapshot transport. Periodic snapshots
// (-snapshot-every) are not printed in federated mode.
func runFederated(cfg rtbh.Config, out string, reg *rtbh.MetricsRegistry, ixps, workers int,
	report bool, chaosProfile string, chaosSeed uint64, snapChaos, metricsOut string) {
	cfg.IXPs = ixps
	flr, err := rtbh.NewFederatedLiveRun(cfg, out, reg)
	if err != nil {
		fail(err)
	}
	if chaosProfile != "" {
		if err := flr.EnableChaos(chaosSeed, chaosProfile); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
	}
	if snapChaos != "" {
		if err := flr.EnableSnapshotChaos(chaosSeed, snapChaos); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	sum, err := flr.Run(ctx)
	if err != nil {
		fail(err)
	}
	stop()

	verb := "completed"
	if flr.Interrupted() {
		verb = "interrupted; drained gracefully —"
	}
	fmt.Printf("federated live run %s in %v across %d exchanges, datasets written under %s\n",
		verb, time.Since(start).Round(time.Millisecond), sum.IXPs, out)
	fmt.Printf("period: %s + %d days, seed %d, sampling 1:%d, multi-homed members: %d\n",
		cfg.Start.Format("2006-01-02"), cfg.Days, cfg.Seed, cfg.SamplingRate, len(sum.MultiHomedMembers))
	for i := 0; i < sum.IXPs; i++ {
		fmt.Printf("ixp%d: %d control messages, %d flow records (%d packets offered, %d dropped)\n",
			i, sum.ControlMsgs[i], sum.FlowRecords[i], sum.PacketsIn[i], sum.PacketsDropped[i])
	}

	if report {
		opts := rtbh.DefaultOptions()
		opts.Workers = workers
		fr, err := flr.Report(opts)
		if err != nil {
			fail(err)
		}
		w := bufio.NewWriter(os.Stdout)
		fmt.Fprintln(w)
		textreport.RenderFederation(w, fr)
		w.Flush()
	}

	if metricsOut != "" {
		if err := writeMetrics(reg, metricsOut); err != nil {
			fail(err)
		}
	}
}

// snapshotLoop periodically prints a one-line partial analysis snapshot
// while the run is streaming.
func snapshotLoop(ctx context.Context, a *rtbh.OnlineAnalyzer, opts rtbh.Options, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		updates, flows := a.Counts()
		rep, err := a.Snapshot(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-live: snapshot: %v\n", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "snapshot: %d control updates, %d flow records -> %d events, %d attributed records\n",
			updates, flows, len(rep.Events), rep.AttributedRecords)
	}
}

// writeMetrics dumps the registry snapshot as JSON to path ("-" = stderr).
func writeMetrics(reg *rtbh.MetricsRegistry, path string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rtbh-live: %v\n", err)
	os.Exit(1)
}
