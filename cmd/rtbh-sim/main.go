// Command rtbh-sim generates a synthetic IXP blackholing dataset: an MRT
// archive of the route server's BGP feed, an IPFIX archive of 1:N sampled
// flow records, the member/interface metadata, the IP-to-AS table, a
// PeeringDB snapshot, and the ground truth of the planned scenario.
//
// Usage:
//
//	rtbh-sim -out DIR [-scale test|bench|full|MULTIPLIER] [-seed N] [-days N]
//	         [-traffic-scale X] [-metrics PATH] [-pprof ADDR]
//
// A numeric -scale selects the full 104-day world at that
// traffic-magnitude multiplier AND coarsens the 1:N sampling by the
// same factor: -scale 50 restores the paper's absolute attack rates and
// host baselines (≈50x the documented scaled-down defaults) at 1:500000
// sampling, so every estimated rate lands at paper magnitude while the
// sampled record stream — and the run time — stays at the scale-1 size.
// -traffic-scale applies the raw traffic multiplier to any named world
// size without touching the sampling (e.g. -scale test -traffic-scale
// 50 for a smoke world with 50x the sampled volume).
//
// With -metrics, a JSON snapshot of the route server's and the fabric's
// observability metrics is written after the run ("-" for stderr); the
// fabric gauges match the printed summary exactly. With -pprof, the
// net/http/pprof and live /metrics endpoints are served on the given
// address.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	rtbh "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	out := flag.String("out", "dataset", "output directory for the dataset files")
	scale := flag.String("scale", "test", "world scale: test, bench, full, or a traffic multiplier (e.g. 50 = the full 104-day world at the paper's absolute traffic magnitudes)")
	trafficScale := flag.Float64("traffic-scale", 0, "override the traffic-magnitude multiplier on any world scale (0 keeps the scale default)")
	seed := flag.Uint64("seed", 0, "override the scenario seed (0 keeps the scale default)")
	days := flag.Int("days", 0, "override the measurement-period length in days (0 keeps the scale default)")
	mitigation := flag.String("mitigation", "", `fine-grained mitigation policy: "flowspec", "escalate" or "mixed" (empty keeps pure RTBH)`)
	metricsOut := flag.String("metrics", "", `write a JSON metrics snapshot to this path after the run ("-" for stderr)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	world, worldTraffic, err := cliutil.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
		os.Exit(2)
	}
	var cfg rtbh.Config
	switch world {
	case "test":
		cfg = rtbh.TestConfig()
	case "bench":
		cfg = rtbh.BenchConfig()
	case "full":
		cfg = rtbh.DefaultConfig()
	}
	cfg.TrafficScale = worldTraffic
	if worldTraffic != 0 {
		// The paper configuration: sampling coarsens with the traffic so
		// the sampled stream stays scale-1 sized (see ParseScale).
		cfg.SamplingRate = int64(float64(cfg.SamplingRate)*worldTraffic + 0.5)
	}
	if err := cliutil.CheckDays(*days); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckTrafficScale(*trafficScale); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *days != 0 {
		cfg.Days = *days
	}
	if *trafficScale != 0 {
		cfg.TrafficScale = *trafficScale
	}
	cfg.MitigationPolicy = *mitigation
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
		os.Exit(2)
	}

	var reg *rtbh.MetricsRegistry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = rtbh.NewMetricsRegistry()
	}
	if *pprofAddr != "" {
		if err := obs.StartDebugServer(*pprofAddr, reg); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	sum, err := rtbh.SimulateObserved(cfg, *out, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset written to %s in %v\n", *out, time.Since(start).Round(time.Millisecond))
	fmt.Printf("period: %s + %d days, seed %d, sampling 1:%d, traffic x%g\n",
		cfg.Start.Format("2006-01-02"), cfg.Days, cfg.Seed, cfg.SamplingRate, cfg.Scale())
	fmt.Printf("members: %d, blackholed hosts: %d, RTBH events: %d\n",
		sum.Members, sum.Hosts, sum.Events)
	fmt.Printf("control plane: %d messages (%d announcements, %d withdrawals)\n",
		sum.ControlMsgs, sum.Announcements, sum.Withdrawals)
	fmt.Printf("data plane: %d sampled flow records (%d packets offered, %d dropped)\n",
		sum.FlowRecords, sum.PacketsIn, sum.PacketsDropped)

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "rtbh-sim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the registry snapshot as JSON to path ("-" = stderr).
func writeMetrics(reg *rtbh.MetricsRegistry, path string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
