package rtbh

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/ip2as"
	"repro/internal/ipfix"
	"repro/internal/peeringdb"
	"repro/internal/scenario"
)

// Dataset is a loaded measurement dataset: the parsed control plane, the
// side tables, and a re-iterable flow-record source. Flow records are
// streamed, never held in memory, so full paper-scale datasets analyze in
// bounded space.
type Dataset struct {
	Meta    *analysis.Metadata
	Updates []analysis.ControlUpdate
	// FlowUpdates is the FlowSpec signaling stream extracted from the
	// same control-plane archive (empty for datasets without fine-grained
	// mitigation).
	FlowUpdates []analysis.FlowUpdate
	// Truth is the simulator's ground truth if present (nil otherwise);
	// analysis never consumes it, the experiment harness does.
	Truth *scenario.GroundTruth

	eachBatch func(fn ipfix.BatchSink) error
}

// OpenDataset loads the dataset written by Simulate from dir.
func OpenDataset(dir string) (*Dataset, error) {
	var dm datasetMeta
	if err := readJSON(filepath.Join(dir, FileMetadata), &dm); err != nil {
		return nil, err
	}
	meta := &analysis.Metadata{
		SamplingRate: dm.SamplingRate,
		TrafficScale: dm.TrafficScale,
		Start:        dm.Start,
		End:          dm.End,
		MemberByMAC:  make(map[ipfix.MAC]uint32, len(dm.Members)),
		BlackholeMAC: dm.BlackholeMAC,
		InternalMACs: make(map[ipfix.MAC]bool, len(dm.InternalMACs)),
	}
	for _, m := range dm.Members {
		meta.MemberByMAC[m.MAC] = m.ASN
	}
	for _, mac := range dm.InternalMACs {
		meta.InternalMACs[mac] = true
	}

	tblFile, err := os.Open(filepath.Join(dir, FileIP2AS))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	meta.IP2AS, err = ip2as.ReadJSON(tblFile)
	tblFile.Close()
	if err != nil {
		return nil, err
	}

	pdbFile, err := os.Open(filepath.Join(dir, FilePDB))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	meta.PDB, err = peeringdb.ReadJSON(pdbFile)
	pdbFile.Close()
	if err != nil {
		return nil, err
	}

	mrtFile, err := os.Open(filepath.Join(dir, FileUpdates))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	updates, flowUpdates, err := analysis.ParseMRTAll(mrtFile)
	mrtFile.Close()
	if err != nil {
		return nil, err
	}

	ds := &Dataset{
		Meta:        meta,
		Updates:     updates,
		FlowUpdates: flowUpdates,
		eachBatch: func(fn ipfix.BatchSink) error {
			f, err := os.Open(filepath.Join(dir, FileFlows))
			if err != nil {
				return fmt.Errorf("rtbh: %w", err)
			}
			defer f.Close()
			rd := ipfix.NewReader(f)
			for {
				b := ipfix.GetBatch()
				if err := rd.NextBatch(b); err != nil {
					b.Release()
					if errors.Is(err, io.EOF) {
						return nil
					}
					return err
				}
				err := fn(b)
				b.Release()
				if err != nil {
					return err
				}
			}
		},
	}

	// Ground truth is optional: a real-world dataset would not have one.
	if tf, err := os.Open(filepath.Join(dir, FileTruth)); err == nil {
		truth, terr := scenario.ReadTruthJSON(tf)
		tf.Close()
		if terr != nil {
			return nil, terr
		}
		ds.Truth = truth
	}
	return ds, nil
}

// NewDataset builds an in-memory dataset (tests, examples) from parsed
// parts. flows must remain unmodified for the dataset's lifetime. Set
// Dataset.FlowUpdates afterwards to attach a FlowSpec signaling stream.
func NewDataset(meta *analysis.Metadata, updates []analysis.ControlUpdate, flows []ipfix.FlowRecord) *Dataset {
	return &Dataset{
		Meta:    meta,
		Updates: updates,
		eachBatch: func(fn ipfix.BatchSink) error {
			const chunk = 1024
			for off := 0; off < len(flows); off += chunk {
				end := off + chunk
				if end > len(flows) {
					end = len(flows)
				}
				b := ipfix.GetBatch()
				b.Recs = append(b.Recs, flows[off:end]...)
				err := fn(b)
				b.Release()
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// EachFlow streams the flow records to fn; callable repeatedly.
func (d *Dataset) EachFlow(fn func(*ipfix.FlowRecord) error) error {
	return d.eachBatch(ipfix.EachRecord(fn))
}

// EachFlowBatch streams the flow records to fn in batches — one batch
// per archived IPFIX message for on-disk datasets — handing each batch
// per the ipfix.RecordBatch contract; callable repeatedly. This is the
// hot-path seam: the pooled batches make a full pass allocation-free per
// record.
func (d *Dataset) EachFlowBatch(fn ipfix.BatchSink) error {
	return d.eachBatch(fn)
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("rtbh: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("rtbh: parsing %s: %w", path, err)
	}
	return nil
}
