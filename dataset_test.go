package rtbh

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// smallDataset simulates a tiny world into a fresh directory.
func smallDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Days = 6
	cfg.EventsTotal = 80
	cfg.UniqueVictims = 40
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 100
	if _, err := Simulate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSimulateWritesAllFiles(t *testing.T) {
	dir := smallDataset(t)
	for _, name := range []string{
		FileUpdates, FileFlows, FileMetadata, FileIP2AS, FilePDB, FileTruth,
	} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestOpenDatasetWithoutGroundTruth(t *testing.T) {
	// A real-world dataset has no truth.json; analysis must still work.
	dir := smallDataset(t)
	if err := os.Remove(filepath.Join(dir, FileTruth)); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Truth != nil {
		t.Fatal("phantom ground truth")
	}
	opts := DefaultOptions()
	opts.SweepDeltas = nil
	opts.OffsetStep = 200 * time.Millisecond
	if _, err := ds.Analyze(opts); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDatasetMissingFiles(t *testing.T) {
	dir := smallDataset(t)
	for _, name := range []string{FileMetadata, FileIP2AS, FilePDB, FileUpdates} {
		broken := t.TempDir()
		// Copy everything except one file.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() == name {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(broken, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := OpenDataset(broken); err == nil {
			t.Fatalf("OpenDataset succeeded without %s", name)
		}
	}
}

func TestOpenDatasetCorruptMetadata(t *testing.T) {
	dir := smallDataset(t)
	if err := os.WriteFile(filepath.Join(dir, FileMetadata), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir); err == nil {
		t.Fatal("corrupt metadata accepted")
	}
}

func TestSimulateRejectsInvalidConfig(t *testing.T) {
	cfg := TestConfig()
	cfg.Days = 0
	if _, err := Simulate(cfg, t.TempDir()); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEachFlowRepeatable(t *testing.T) {
	dir := smallDataset(t)
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	count := func() (n int64) {
		ds.EachFlow(func(*FlowRecord) error { n++; return nil })
		return
	}
	a, b := count(), count()
	if a == 0 || a != b {
		t.Fatalf("EachFlow not repeatable: %d vs %d", a, b)
	}
}

func TestInMemoryDataset(t *testing.T) {
	dir := smallDataset(t)
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	var flows []FlowRecord
	ds.EachFlow(func(r *FlowRecord) error { flows = append(flows, *r); return nil })

	mem := NewDataset(ds.Meta, ds.Updates, flows)
	opts := DefaultOptions()
	opts.SweepDeltas = nil
	opts.OffsetStep = 200 * time.Millisecond
	r1, err := mem.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	// In-memory and file-backed datasets must agree exactly.
	if r1.TotalRecords != r2.TotalRecords || r1.DroppedRecords != r2.DroppedRecords {
		t.Fatalf("record counters differ: %d/%d vs %d/%d",
			r1.TotalRecords, r1.DroppedRecords, r2.TotalRecords, r2.DroppedRecords)
	}
	if len(r1.Events) != len(r2.Events) || r1.Table2 != r2.Table2 {
		t.Fatalf("analysis differs: %d/%d events, %+v vs %+v",
			len(r1.Events), len(r2.Events), r1.Table2, r2.Table2)
	}
}
