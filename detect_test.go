package rtbh_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/bgp"
	"repro/internal/detect"
)

// detectEvalSlack is the truth-matching slack for detection scoring: a
// window that closes just after the last attack packet still describes
// the attack, so an extra detection window absorbs the trailing edge.
const detectEvalSlack = detect.DefaultWindow + time.Minute

// runDetectLive executes one live run with the closed-loop detector
// armed (and, optionally, a chaos profile) and returns the run plus its
// dataset directory.
func runDetectLive(t *testing.T, cfg rtbh.Config, reg *rtbh.MetricsRegistry, chaosProfile string, chaosSeed uint64) (*rtbh.LiveRun, string) {
	t.Helper()
	dir := t.TempDir()
	lr, err := rtbh.NewLiveRun(cfg, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if chaosProfile != "" {
		if err := lr.EnableChaos(chaosSeed, chaosProfile); err != nil {
			t.Fatal(err)
		}
	}
	if err := lr.EnableDetector(detect.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := lr.Run(context.Background()); err != nil {
		t.Fatalf("live run with detector: %v", err)
	}
	if lr.Interrupted() {
		t.Fatal("uninterrupted run reports Interrupted")
	}
	return lr, dir
}

// TestDetectClosedLoop is the end-to-end mitigation test: a seeded world
// streams through the live transports with the detector armed, and
// afterwards the detection log must score against the scenario's ground
// truth (precision >= 0.9, recall >= 0.8), every detection's RTBH
// announcement must be visible in the written MRT archive as an update
// from the mitigation peer, and the online report must equal the batch
// analysis of the run's own dataset.
func TestDetectClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a full world through live transports")
	}
	cfg := chaosConfig()
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond

	reg := rtbh.NewMetricsRegistry()
	lr, dir := runDetectLive(t, cfg, reg, "", 0)

	st := lr.Detector().Status()
	if len(st.Detections) == 0 {
		t.Fatal("no detections fired over a world with seeded attacks")
	}

	// Score against ground truth; the rendered table is the per-attack
	// mitigation-latency report (onset -> detection -> announcement ->
	// first fabric drop).
	ev := lr.EvaluateDetections(detectEvalSlack)
	t.Logf("closed-loop evaluation:\n%s", ev.Render())
	if ev.Precision < 0.9 {
		t.Errorf("precision %.3f < 0.9 (%d false positives)", ev.Precision, ev.FalsePositives)
	}
	if ev.Recall < 0.8 {
		t.Errorf("recall %.3f < 0.8 (%d of %d attacks missed)", ev.Recall, ev.Attacks-ev.DetectedAtk, ev.Attacks)
	}
	drops := 0
	for _, a := range ev.PerAttack {
		if a.HasDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no attack shows a first fabric drop after its announcement — the loop never closed")
	}

	// Every detection reached the route server: its announcement (and,
	// once withdrawn, its withdrawal) must be in the archived MRT stream
	// under the mitigation peer's ASN.
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	announced := map[string]int{}
	withdrawn := map[string]int{}
	for i := range ds.Updates {
		u := &ds.Updates[i]
		if u.Peer != detect.PeerASN {
			continue
		}
		if u.Announce {
			announced[u.Prefix.String()]++
		} else {
			withdrawn[u.Prefix.String()]++
		}
	}
	for _, d := range st.Detections {
		p := bgp.HostPrefix(d.Victim).String()
		if d.AnnouncedAt.IsZero() {
			t.Errorf("detection %d (%s) was never announced", d.ID, p)
		}
		if announced[p] == 0 {
			t.Errorf("detection %d: no announcement for %s from peer %d in the MRT archive", d.ID, p, detect.PeerASN)
		}
		if !d.Active() && withdrawn[p] == 0 {
			t.Errorf("detection %d: withdrawn in the log but no withdrawal for %s in the MRT archive", d.ID, p)
		}
	}

	// Detector metrics agree with the log.
	snap := reg.Snapshot()
	if got := snap.Counter("detect.detections"); got != int64(len(st.Detections)) {
		t.Errorf("detect.detections = %d, want %d", got, len(st.Detections))
	}
	var nAnnounced int64
	for i := range announced {
		nAnnounced += int64(announced[i])
	}
	if got := snap.Counter("detect.announcements"); got != nAnnounced {
		t.Errorf("detect.announcements = %d, %d announcements archived", got, nAnnounced)
	}

	// Online == offline over the run's own archived stream, with the
	// detector's updates part of both.
	onRep, err := lr.Analyzer().Final(opts)
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(onRep), renderReport(offRep)) {
		t.Error("online report differs from batch analysis of the run's own dataset")
	}
}

// TestDetectChaosSoak runs the detector under the lossy-udp fault
// profile with a fixed seed: the loop must still close (detections fire,
// announcements archive) while the transport reconciliation stays exact
// — every dropped record accounted, online equal to the batch analysis
// of the written dataset.
func TestDetectChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a chaos world through live transports")
	}
	cfg := chaosConfig()
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond

	reg := rtbh.NewMetricsRegistry()
	lr, dir := runDetectLive(t, cfg, reg, "lossy-udp", 1)
	snap := reg.Snapshot()

	if v := snap.Counter("faultnet.udp.dropped_datagrams"); v == 0 {
		t.Error("lossy-udp injected no drops — the soak tested nothing")
	}
	wantDropped := snap.Counter("faultnet.udp.dropped_records") + snap.Counter("faultnet.udp.reorder_late_records")
	exported := snap.Counter("live.ipfix.exported_records")
	if col := snap.Counter("live.ipfix.collected_records"); col+wantDropped != exported {
		t.Errorf("collected %d + dropped %d != exported %d", col, wantDropped, exported)
	}

	st := lr.Detector().Status()
	if len(st.Detections) == 0 {
		t.Fatal("no detections fired under lossy-udp")
	}
	// The detector scores only the collected stream, so its record count
	// must reconcile exactly with the collector's.
	if col := snap.Counter("live.ipfix.collected_records"); st.Records != col {
		t.Errorf("detector scored %d records, collector delivered %d", st.Records, col)
	}
	ev := lr.EvaluateDetections(detectEvalSlack)
	t.Logf("chaos-soak evaluation:\n%s", ev.Render())
	if ev.Precision < 0.9 {
		t.Errorf("precision %.3f < 0.9 under lossy-udp", ev.Precision)
	}
	if ev.Recall < 0.8 {
		t.Errorf("recall %.3f < 0.8 under lossy-udp", ev.Recall)
	}

	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	onRep, err := lr.Analyzer().Final(opts)
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(onRep), renderReport(offRep)) {
		t.Error("online report differs from batch analysis of the chaos run's own dataset")
	}
}

// BenchmarkDetectIngest measures the flow-ingest path with the detector
// off and on over the same pre-simulated record stream: the per-record
// detector overhead (two sketch updates, a gated window scan) must stay
// within noise of the analyzer-only baseline.
func BenchmarkDetectIngest(b *testing.B) {
	dir := b.TempDir()
	cfg := goldenConfig()
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		b.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		b.Fatal(err)
	}
	var flows []rtbh.FlowRecord
	if err := ds.EachFlow(func(rec *rtbh.FlowRecord) error {
		flows = append(flows, *rec)
		return nil
	}); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, withDetector bool) {
		for i := 0; i < b.N; i++ {
			a := rtbh.NewOnlineAnalyzer(ds.Meta)
			var det *detect.Detector
			if withDetector {
				det, err = detect.New(detect.Config{
					SamplingRate: ds.Meta.SamplingRate,
					BlackholeMAC: ds.Meta.BlackholeMAC,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for j := range flows {
				a.ObserveFlow(&flows[j])
				if det != nil {
					det.ObserveFlow(&flows[j])
				}
			}
			if det != nil && len(det.Tick(ds.Meta.End)) == 0 {
				b.Fatal("detector ingest produced no actions")
			}
		}
		b.ReportMetric(float64(len(flows))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("detector-off", func(b *testing.B) { run(b, false) })
	b.Run("detector-on", func(b *testing.B) { run(b, true) })
}
