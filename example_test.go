package rtbh_test

import (
	"fmt"
	"log"
	"os"

	rtbh "repro"
)

// Example demonstrates the complete workflow: simulate a miniature IXP
// world, open the resulting dataset the way an analyst would, and run the
// paper's full pipeline.
func Example() {
	dir, err := os.MkdirTemp("", "rtbh-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := rtbh.TestConfig()
	cfg.Days = 6
	cfg.EventsTotal = 80
	cfg.UniqueVictims = 40
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 100

	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		log.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ds.Analyze(rtbh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Everything is deterministic: same seed, same numbers.
	off := report.Fig2.BestOffset.Milliseconds()
	fmt.Printf("events reconstructed: %v\n", len(report.Events) > 0)
	fmt.Printf("clock offset near +40ms: %v\n", off > 0 && off < 100)
	// Output:
	// events reconstructed: true
	// clock offset near +40ms: true
}

// ExampleOnlineAnalyzer feeds the measurement streams record by record —
// the way live mode delivers them — takes a partial snapshot mid-stream,
// and shows that the final online report matches the batch analysis of
// the same archive. Snapshots stay cheap regardless of stream length:
// records behind the seal horizon are folded into compact operator state
// and released (see DESIGN.md, "Incremental analysis").
func ExampleOnlineAnalyzer() {
	dir, err := os.MkdirTemp("", "rtbh-online-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := rtbh.TestConfig()
	cfg.Days = 6
	cfg.EventsTotal = 80
	cfg.UniqueVictims = 40
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 100
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		log.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}

	opts := rtbh.DefaultOptions()
	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	for _, u := range ds.Updates {
		a.ObserveControl(u)
	}
	flows := 0
	if err := ds.EachFlow(func(rec *rtbh.FlowRecord) error {
		a.ObserveFlow(rec)
		flows++
		if flows == 5000 { // mid-stream: snapshot without stopping ingest
			partial, err := a.Snapshot(opts)
			if err != nil {
				return err
			}
			fmt.Printf("partial snapshot covers the 5000 records fed: %v\n",
				partial.TotalRecords == 5000)
			fmt.Printf("partial snapshot has events: %v\n", len(partial.Events) > 0)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	final, err := a.Final(opts)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := ds.Analyze(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final == batch: %v\n",
		final.TotalRecords == batch.TotalRecords &&
			final.AttributedRecords == batch.AttributedRecords &&
			len(final.Events) == len(batch.Events))
	// Output:
	// partial snapshot covers the 5000 records fed: true
	// partial snapshot has events: true
	// final == batch: true
}
