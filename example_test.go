package rtbh_test

import (
	"fmt"
	"log"
	"os"

	rtbh "repro"
)

// Example demonstrates the complete workflow: simulate a miniature IXP
// world, open the resulting dataset the way an analyst would, and run the
// paper's full pipeline.
func Example() {
	dir, err := os.MkdirTemp("", "rtbh-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := rtbh.TestConfig()
	cfg.Days = 6
	cfg.EventsTotal = 80
	cfg.UniqueVictims = 40
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 100

	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		log.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ds.Analyze(rtbh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Everything is deterministic: same seed, same numbers.
	off := report.Fig2.BestOffset.Milliseconds()
	fmt.Printf("events reconstructed: %v\n", len(report.Events) > 0)
	fmt.Printf("clock offset near +40ms: %v\n", off > 0 && off < 100)
	// Output:
	// events reconstructed: true
	// clock offset near +40ms: true
}
