// DDoS mitigation under the microscope: pick the largest attack-driven
// RTBH event of a simulated world and walk through its lifecycle the way
// the paper's §5 does — preceding anomaly, reaction latency, the on-off
// re-announcement pattern, per-peer acceptance, and the resulting drop
// rate.
//
//	go run ./examples/ddos-mitigation
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	rtbh "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "rtbh-ddos-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := rtbh.TestConfig()
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		log.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ds.Analyze(rtbh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Find the event with the most during-event traffic among those with
	// a preceding anomaly — the biggest mitigated attack in the dataset.
	best := -1
	var bestPkts int64
	for i := range report.Verdicts {
		v := &report.Verdicts[i]
		if v.Within10Min && v.EventPackets > bestPkts {
			best, bestPkts = i, v.EventPackets
		}
	}
	if best < 0 {
		log.Fatal("no attack-driven events found")
	}
	v := &report.Verdicts[best]
	var ev *rtbh.Event
	for _, e := range report.Events {
		if e.ID == v.EventID {
			ev = e
		}
	}

	fmt.Printf("largest mitigated attack: prefix %v, announced by AS%d\n", ev.Prefix, ev.Peer)
	fmt.Printf("  sampled packets during the event: %d (~%d on the wire at 1:%d)\n",
		v.EventPackets, v.EventPackets*ds.Meta.SamplingRate, ds.Meta.SamplingRate)

	fmt.Println("\npre-RTBH window (72h before the first announcement):")
	fmt.Printf("  slots with traffic: %d\n", v.PreDataSlots)
	for _, a := range v.Anomalies {
		fmt.Printf("  anomaly %2d slots (%v) before the announcement, level %d/5\n",
			a.SlotsBefore, time.Duration(a.SlotsBefore)*5*time.Minute, a.Level)
	}
	if v.AmpFactor[0] > 0 {
		fmt.Printf("  anomaly amplification factor (packets): %.0fx over the window mean\n",
			v.AmpFactor[0])
	} else {
		fmt.Println("  amplification factor undefined: the attack onset fell into the")
		fmt.Println("  announcement's own five-minute slot (sub-slot reaction time)")
	}

	fmt.Println("\non-off signaling pattern (paper Fig 9):")
	end := ds.Meta.End
	fmt.Printf("  %d announcements merged into one event of %v\n",
		ev.Announcements, ev.Duration(end).Round(time.Minute))
	for i, ep := range ev.Episodes {
		if i >= 6 {
			fmt.Printf("  ... %d more episodes\n", len(ev.Episodes)-6)
			break
		}
		wd := "active at period end"
		if !ep.Withdraw.IsZero() {
			wd = ep.Withdraw.Format("15:04:05")
		}
		fmt.Printf("  episode %d: announced %s, withdrawn %s\n",
			i+1, ep.Announce.Format("15:04:05"), wd)
	}

	fmt.Println("\nmitigation effectiveness across all /32 blackholes (paper Fig 6):")
	fmt.Printf("  per-event drop rate quartiles: %.0f%% / %.0f%% / %.0f%% (paper: 30/53/88)\n",
		100*report.Fig6Slash32.Quantile(0.25),
		100*report.Fig6Slash32.Quantile(0.50),
		100*report.Fig6Slash32.Quantile(0.75))
	fmt.Printf("  peers accepting host routes (top sources): %d of %d — the rest keep forwarding\n",
		report.Fig7Classes.Acceptors,
		report.Fig7Classes.Acceptors+report.Fig7Classes.Rejectors+report.Fig7Classes.Inconsistent)
}
