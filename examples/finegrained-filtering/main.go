// Fine-grained filtering what-if (paper §5.5 / Fig 14): compare RTBH —
// which drops everything toward the victim, legitimate traffic included —
// with filtering on the known UDP amplification port list, which drops
// only attack traffic.
//
//	go run ./examples/finegrained-filtering
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	rtbh "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "rtbh-filter-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	if _, err := rtbh.Simulate(rtbh.TestConfig(), dir); err != nil {
		log.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ds.Analyze(rtbh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack events analyzed: %d\n\n", len(report.Fig14))

	fmt.Println("option A - RTBH (what operators deploy today):")
	fmt.Println("  drops 100% of traffic toward the victim, attack and legitimate alike")
	fmt.Printf("  measured collateral damage: %d events hit legitimate service ports,\n",
		report.Fig18.Events)
	fmt.Printf("  worst case %d sampled packets of legitimate-looking traffic discarded\n\n",
		report.Fig18.MaxAll)

	fmt.Println("option B - filtering the known UDP amplification port list:")
	shares := append([]float64(nil), report.Fig14...)
	sort.Float64s(shares)
	fully, partial := 0, 0
	for _, s := range shares {
		switch {
		case s >= 0.99:
			fully++
		case s >= 0.5:
			partial++
		}
	}
	fmt.Printf("  events fully mitigated:      %d (%.0f%%, paper: 90%%)\n",
		fully, 100*float64(fully)/float64(len(shares)))
	fmt.Printf("  events mitigated >=50%%:      %d\n", partial+fully)
	fmt.Printf("  events hard to mitigate:     %d (random/rotating ports, multiple transports)\n",
		len(shares)-partial-fully)
	fmt.Println("  collateral damage:           none - legitimate flows never use amplification source ports")

	fmt.Println("\nper-event share of attack packets matching the port list:")
	fmt.Println("  quantile share")
	for _, q := range []float64{0.05, 0.10, 0.25, 0.50} {
		idx := int(q * float64(len(shares)-1))
		fmt.Printf("  %.2f %.3f\n", q, shares[idx])
	}

	fmt.Println("\nwhy source blacklisting does NOT work instead (paper Fig 15):")
	fmt.Printf("  %d origin ASes host amplifiers; on average %.0f amplifiers per attack\n",
		report.Fig15Origin.ASes, report.Fig15Scale.MeanAmplifiers)
	fmt.Printf("  the most active AS appears in %.0f%% of attacks - but contributes\n",
		100*report.Fig15Origin.Top10[0])
	fmt.Println("  only a small traffic share; blocking networks cannot keep up")
}
