// FlowSpec vs RTBH: the paper names BGP FlowSpec among the fine-grained
// alternatives to blackholing (§1) and shows that port-based filtering
// could fully cover ~90% of attacks (§5.5, Fig 14). This example stages
// the same amplification attack twice against a simulated route server
// and switching fabric — once mitigated by a classic /32 RTBH, once by a
// FlowSpec discard rule for the amplification source ports — and compares
// attack suppression and collateral damage.
//
//	go run ./examples/flowspec-vs-rtbh
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bgp"
	"repro/internal/fabric"
	"repro/internal/ipfix"
	"repro/internal/netgen"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

const (
	rsASN    = 64500
	victimAS = 100 // announces the mitigation
	attackAS = 200 // hands the attack into the IXP
	clientAS = 300 // hands legitimate client traffic into the IXP
)

var victimIP = func() uint32 {
	a, err := bgp.ParseAddr("203.0.113.80")
	if err != nil {
		panic(err)
	}
	return a
}()

// outcome tallies one mitigation run.
type outcome struct {
	attackDropped, attackForwarded int
	legitDropped, legitForwarded   int
}

func main() {
	rtbh := runScenario(func(rs *routeserver.Server) error {
		// Classic mitigation: a /32 blackhole. Everything toward the
		// victim dies at peers that accept host routes.
		_, err := rs.Process(time.Unix(0, 0), victimAS, &bgp.Update{
			Attrs: bgp.PathAttrs{
				ASPath:      []uint32{victimAS},
				NextHop:     routeserver.BlackholeNextHop,
				Communities: bgp.Communities{bgp.Blackhole},
			},
			NLRI: []bgp.Prefix{bgp.HostPrefix(victimIP)},
		})
		return err
	})

	flowspec := runScenario(func(rs *routeserver.Server) error {
		// Fine-grained mitigation: discard only UDP from the
		// amplification source ports used by the attack.
		return rs.ProcessFlowSpec(time.Unix(0, 0), victimAS, &bgp.FlowSpecUpdate{
			Announced: []*bgp.FlowRule{{
				Dst:      bgp.HostPrefix(victimIP),
				HasDst:   true,
				Protos:   []uint8{netgen.ProtoUDP},
				SrcPorts: []uint16{123, 389}, // NTP + cLDAP, as detected
			}},
			ExtComms: []bgp.ExtCommunity{bgp.TrafficRateDiscard},
		})
	})

	fmt.Println("same attack (NTP+cLDAP amplification) plus ongoing legitimate web traffic:")
	fmt.Println()
	print("RTBH /32 blackhole", rtbh)
	fmt.Println()
	print("FlowSpec port-list discard", flowspec)
	fmt.Println()
	fmt.Println("takeaway (paper §5.5/§7.2): port-based filtering suppresses the attack")
	fmt.Println("as effectively as blackholing while keeping the victim reachable —")
	fmt.Println("RTBH completes the denial of service on the mitigating peers.")
}

func print(name string, o outcome) {
	fmt.Printf("%s:\n", name)
	total := o.attackDropped + o.attackForwarded
	fmt.Printf("  attack traffic suppressed:    %4.0f%% (%d of %d sampled packets)\n",
		100*float64(o.attackDropped)/float64(total), o.attackDropped, total)
	legit := o.legitDropped + o.legitForwarded
	fmt.Printf("  legitimate traffic delivered: %4.0f%% (%d of %d sampled packets)\n",
		100*float64(o.legitForwarded)/float64(legit), o.legitForwarded, legit)
}

func runScenario(mitigate func(*routeserver.Server) error) outcome {
	rs := routeserver.New(rsASN, 1)
	peers := map[uint32]routeserver.Policy{
		victimAS: routeserver.DefaultPolicy(),
		attackAS: {Standard: routeserver.AcceptFull, Host: routeserver.AcceptFull, FlowSpec: routeserver.AcceptFull},
		clientAS: {Standard: routeserver.AcceptFull, Host: routeserver.AcceptFull, FlowSpec: routeserver.AcceptFull},
	}
	for asn, pol := range peers {
		if err := rs.AddPeer(routeserver.Peer{ASN: asn, IP: asn, Policy: pol}); err != nil {
			log.Fatal(err)
		}
	}

	var o outcome
	fb, err := fabric.New(rs, 1 /* sample everything */, stats.NewRNG(42), ipfix.EachRecord(func(r *ipfix.FlowRecord) error {
		dropped := r.DstMAC == fabric.BlackholeMAC
		attack := r.Proto == netgen.ProtoUDP && netgen.IsAmplificationPort(r.Proto, r.SrcPort)
		switch {
		case attack && dropped:
			o.attackDropped++
		case attack:
			o.attackForwarded++
		case dropped:
			o.legitDropped++
		default:
			o.legitForwarded++
		}
		return nil
	}))
	if err != nil {
		log.Fatal(err)
	}
	if err := mitigate(rs); err != nil {
		log.Fatal(err)
	}

	rng := stats.NewRNG(7)
	start := time.Unix(1000, 0)

	// The attack: two amplification vectors at 10k packets total.
	vec := &netgen.AmplificationVector{
		Protocol: mustProto(123),
		Reflectors: []netgen.Reflector{
			{IP: 0x50000001, OriginAS: 9000, HandoverAS: attackAS},
			{IP: 0x50000002, OriginAS: 9001, HandoverAS: attackAS},
		},
	}
	vec2 := &netgen.AmplificationVector{
		Protocol:   mustProto(389),
		Reflectors: []netgen.Reflector{{IP: 0x50000003, OriginAS: 9002, HandoverAS: attackAS}},
	}
	var batches []fabric.Batch
	batches = vec.Batches(batches, start, time.Minute, 100, victimIP, victimAS, rng)
	batches = vec2.Batches(batches, start, time.Minute, 66, victimIP, victimAS, rng)

	// Legitimate clients keep talking to the victim's web service.
	batches = append(batches, fabric.Batch{
		Time: start, Duration: time.Minute,
		IngressAS: clientAS, EgressAS: victimAS,
		SrcIP: 0x60000001, DstIP: victimIP,
		SrcPort: 0, DstPort: 443, Proto: netgen.ProtoTCP,
		PacketSize: 600, Packets: 2000,
		VaryPorts: func(r *stats.RNG) (uint16, uint16) {
			return netgen.EphemeralPort(r), 443
		},
	})

	for i := range batches {
		if err := fb.Inject(&batches[i]); err != nil {
			log.Fatal(err)
		}
	}
	return o
}

func mustProto(port uint16) netgen.AmpProtocol {
	p, ok := netgen.AmpProtocolByPort(port)
	if !ok {
		log.Fatalf("no amplification protocol on port %d", port)
	}
	return p
}
