// The full IMC'19 study in miniature: simulate a measurement period,
// round-trip the datasets through their on-disk formats (MRT control
// plane, IPFIX data plane), run the complete analysis, and print every
// figure and table next to the paper's reported values.
//
// Scale is selectable; "bench" takes ~1 minute, "full" reproduces the
// paper's 104-day period and takes several minutes.
//
//	go run ./examples/ixp-study [-scale test|bench|full] [-keep DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

func main() {
	scale := flag.String("scale", "test", "test, bench, or full (the paper's scale)")
	keep := flag.String("keep", "", "keep the dataset in this directory instead of a temp dir")
	flag.Parse()

	var cfg rtbh.Config
	switch *scale {
	case "test":
		cfg = rtbh.TestConfig()
	case "bench":
		cfg = rtbh.BenchConfig()
	case "full":
		cfg = rtbh.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	dir := *keep
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rtbh-study-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Printf("simulating %d days, %d members, ~%d RTBH events ...\n",
		cfg.Days, cfg.Members, cfg.EventsTotal)
	t0 := time.Now()
	sum, err := rtbh.Simulate(cfg, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v: %d BGP messages, %d flow records\n",
		time.Since(t0).Round(time.Second), sum.ControlMsgs, sum.FlowRecords)

	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyzing ...")
	t0 = time.Now()
	report, err := ds.Analyze(rtbh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v\n\n", time.Since(t0).Round(time.Second))

	textreport.RenderAll(os.Stdout, report)
}
