// Quickstart: simulate a small IXP blackholing world, run the paper's
// analysis pipeline, and print the headline findings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	rtbh "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "rtbh-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A miniature world: 30 days, 120 members, ~900 RTBH events.
	cfg := rtbh.TestConfig()
	fmt.Println("simulating ...")
	sum, err := rtbh.Simulate(cfg, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d members, %d RTBH events, %d BGP messages, %d sampled flow records\n",
		sum.Members, sum.Events, sum.ControlMsgs, sum.FlowRecords)

	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyzing ...")
	report, err := ds.Analyze(rtbh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's three headline findings, reproduced:
	fmt.Println()
	fmt.Println("1. Only a third of RTBH events look like DDoS mitigation:")
	total := float64(report.Table2.Total())
	fmt.Printf("   anomaly <=10min before event: %.0f%% (paper: 27%%)\n",
		100*float64(report.Table2.DataAnomaly10Min)/total)
	fmt.Printf("   no traffic at all in 72h pre-window: %.0f%% (paper: 46%%)\n",
		100*float64(report.Table2.NoData)/total)

	fmt.Println("2. Host (/32) blackholes drop only about half the traffic:")
	for _, row := range report.Fig5 {
		// Skip lengths with too few samples at this miniature scale.
		if row.TotalPkts() < 1000 {
			continue
		}
		if row.PrefixLen == 32 {
			fmt.Printf("   /32 drop rate: %.0f%% of packets (paper: ~50%%)\n", 100*row.DropRatePkts())
		}
		if row.PrefixLen == 24 {
			fmt.Printf("   /24 drop rate: %.0f%% of packets (paper: 93-99%%)\n", 100*row.DropRatePkts())
		}
	}

	fmt.Println("3. Port-list filtering would mitigate most attacks without collateral damage:")
	fmt.Printf("   events fully coverable by the UDP amplification port list: %.0f%% (paper: 90%%)\n",
		100*report.Fig14FullyFilterable)
	fmt.Printf("   events with collateral damage under RTBH: %d\n", report.Fig18.Events)
}
