package rtbh

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis/pipeline"
	"repro/internal/federation"
	"repro/internal/ipfix"
	"repro/internal/mrt"
	"repro/internal/scenario"
)

// IXPDir names the per-exchange dataset subdirectory of a federated
// dataset: <dir>/ixp0, <dir>/ixp1, ...
func IXPDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("ixp%d", i))
}

// FederatedSummary reports what a federated simulation produced.
type FederatedSummary struct {
	IXPs              int
	MultiHomedMembers []uint32
	Events            int
	Hosts             int
	Members           int
	Announcements     int
	Withdrawals       int
	// Per-exchange measurement volumes, indexed by IXP.
	ControlMsgs    []int
	FlowRecords    []int64
	PacketsIn      []int64
	PacketsDropped []int64
}

// SimulateFederated plans the world once and runs it across
// cfg.IXPs exchanges, writing one complete standalone dataset per
// exchange into dir/ixp<i>. Each dataset carries the full member table
// (every exchange knows the shared member universe) but only the
// control messages and flow records observed at that exchange. With
// cfg.IXPs <= 1 the single dataset written to dir/ixp0 is
// byte-identical to what Simulate writes.
func SimulateFederated(cfg Config, dir string) (*FederatedSummary, error) {
	w, err := scenario.Plan(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.IXPs
	if n < 1 {
		n = 1
	}

	type ixpFiles struct {
		mrtFile, flowFile *os.File
		mrtW              *mrt.Writer
		flowW             *ipfix.Writer
	}
	files := make([]*ixpFiles, n)
	sinks := make([]scenario.Sinks, n)
	defer func() {
		for _, f := range files {
			if f == nil {
				continue
			}
			f.mrtFile.Close()
			f.flowFile.Close()
		}
	}()
	for i := 0; i < n; i++ {
		sub := IXPDir(dir, i)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("rtbh: %w", err)
		}
		f := &ixpFiles{}
		if f.mrtFile, err = os.Create(filepath.Join(sub, FileUpdates)); err != nil {
			return nil, fmt.Errorf("rtbh: %w", err)
		}
		files[i] = f
		if f.flowFile, err = os.Create(filepath.Join(sub, FileFlows)); err != nil {
			return nil, fmt.Errorf("rtbh: %w", err)
		}
		f.mrtW = mrt.NewWriter(f.mrtFile)
		f.flowW = ipfix.NewWriter(f.flowFile, 1)
		mrtW := f.mrtW
		sinks[i] = scenario.Sinks{
			Control: func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
				rec := mrt.Record{
					Timestamp: ts, PeerAS: peerAS, LocalAS: uint32(w.RSASN),
					PeerIP: peerIP, LocalIP: w.RSIP, Message: msg,
				}
				_ = mrtW.WriteRecord(&rec)
			},
			Flow: f.flowW.WriteBatch,
		}
	}

	res, err := scenario.RunFederated(w, sinks)
	if err != nil {
		return nil, err
	}
	for i, f := range files {
		if err := f.mrtW.Flush(); err != nil {
			return nil, fmt.Errorf("rtbh: flushing MRT for IXP %d: %w", i, err)
		}
		if err := f.flowW.Flush(); err != nil {
			return nil, fmt.Errorf("rtbh: flushing IPFIX for IXP %d: %w", i, err)
		}
		sub := IXPDir(dir, i)
		if err := writeJSON(filepath.Join(sub, FileMetadata), metaOf(w)); err != nil {
			return nil, err
		}
		if err := writeFile(filepath.Join(sub, FileIP2AS), w.IP2AS.WriteJSON); err != nil {
			return nil, err
		}
		if err := writeFile(filepath.Join(sub, FilePDB), w.PDB.WriteJSON); err != nil {
			return nil, err
		}
		if err := writeFile(filepath.Join(sub, FileTruth), scenario.Truth(w).WriteJSON); err != nil {
			return nil, err
		}
	}

	sum := &FederatedSummary{
		IXPs:              res.Federation.N,
		MultiHomedMembers: res.Federation.MultiHomedMembers(),
		Events:            len(w.Events),
		Hosts:             len(w.Hosts),
		Members:           len(w.Members),
		Announcements:     res.Announcements,
		Withdrawals:       res.Withdrawals,
		ControlMsgs:       res.ControlMsgs,
		FlowRecords:       res.FlowRecords,
	}
	for _, st := range res.FabricStats {
		sum.PacketsIn = append(sum.PacketsIn, st.PacketsIn)
		sum.PacketsDropped = append(sum.PacketsDropped, st.PacketsDropped)
	}
	return sum, nil
}

// IXPReport is one exchange's view within a federated report.
type IXPReport struct {
	IXP int
	// ClockOffset is the skew the exchange declared in its snapshot.
	ClockOffset time.Duration
	// Report is the full analysis over this exchange's measurements
	// alone, in its local event numbering.
	Report *Report
}

// FederatedReport combines the exchanges' views.
type FederatedReport struct {
	// Global is the analysis over the union control plane and the folded
	// operator state — what a single exchange observing everything would
	// have reported.
	Global *Report
	// PerIXP lists each exchange's standalone report.
	PerIXP []*IXPReport
	// Cross joins every exchange's during-event traffic against the
	// union event structure: which attacks one exchange dropped while
	// another delivered.
	Cross *federation.CrossView
}

// snapshotDataset reduces one opened dataset to a federation snapshot:
// a sequential (non-speculative) pipeline pass over its flows, then the
// marshaled state. The sequential pass keeps per-stream observation
// order identical to a union pass, which makes the canonical state
// encoding a fingerprint the parity tests compare directly.
func snapshotDataset(ds *Dataset, ixp int, seq uint64, opts Options) (*federation.Snapshot, error) {
	p, err := pipeline.New(ds.Meta, ds.Updates, opts.Delta)
	if err != nil {
		return nil, err
	}
	err = ds.EachFlowBatch(func(b *recordBatch) error {
		p.ObserveBatch(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	state, err := p.MarshalState()
	if err != nil {
		return nil, err
	}
	return &federation.Snapshot{IXP: ixp, Seq: seq, Updates: ds.Updates, State: state}, nil
}

// AnalyzeFederated opens the per-exchange datasets in dirs, reduces
// each to a snapshot, and merges them through the federation
// coordinator — round-tripping every snapshot through its wire encoding
// exactly as a distributed deployment would. The returned global report
// over N partitioned datasets is identical to Analyze over the
// equivalent single dataset (see DESIGN.md, "Federation").
func AnalyzeFederated(dirs []string, opts Options) (*FederatedReport, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("rtbh: no federated dataset directories")
	}
	datasets := make([]*Dataset, len(dirs))
	for i, dir := range dirs {
		ds, err := OpenDataset(dir)
		if err != nil {
			return nil, err
		}
		datasets[i] = ds
	}

	coord := federation.NewCoordinator(datasets[0].Meta, opts.Delta)
	for i, ds := range datasets {
		snap, err := snapshotDataset(ds, i, 1, opts)
		if err != nil {
			return nil, err
		}
		frame, err := snap.MarshalBinary()
		if err != nil {
			return nil, err
		}
		if err := coord.OfferBytes(frame); err != nil {
			return nil, err
		}
	}
	merged, err := coord.Merge()
	if err != nil {
		return nil, err
	}
	return composeFederatedReport(merged, datasets, opts)
}

// composeFederatedReport renders a merged federation state: the global
// report, the per-IXP reports, and — when flow sources are available —
// the cross-IXP traffic join.
func composeFederatedReport(merged *federation.MergedState, datasets []*Dataset, opts Options) (*FederatedReport, error) {
	fr := &FederatedReport{
		Global: composeReport(merged.Meta, merged.Updates, merged.Pipeline, opts),
	}
	for _, v := range merged.IXPs {
		fr.PerIXP = append(fr.PerIXP, &IXPReport{
			IXP:         v.IXP,
			ClockOffset: v.ClockOffset,
			Report:      composeReport(merged.Meta, v.Updates, v.Pipeline, opts),
		})
	}
	if len(merged.IXPs) > 1 && datasets != nil {
		sources := make(map[int]federation.FlowSource)
		for _, v := range merged.IXPs {
			if v.IXP >= 0 && v.IXP < len(datasets) && datasets[v.IXP] != nil {
				sources[v.IXP] = datasets[v.IXP].EachFlow
			}
		}
		cross, err := merged.Cross(sources)
		if err != nil {
			return nil, err
		}
		fr.Cross = cross
	}
	return fr, nil
}
