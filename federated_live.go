package rtbh

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/fabric"
	"repro/internal/faultnet"
	"repro/internal/federation"
	"repro/internal/ipfix"
	"repro/internal/live"
	"repro/internal/mrt"
	"repro/internal/routeserver"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// FederatedLiveRun is the live-mode counterpart of SimulateFederated:
// the planned world runs across cfg.IXPs exchanges, each with its own
// route server, fabric and live transports — every control update
// crosses that exchange's BGP-over-TCP sessions, every sampled flow
// record its IPFIX-over-UDP export — and each exchange accumulates its
// streams in its own OnlineAnalyzer while writing a standalone dataset
// into dir/ixp<i>.
//
// After Run, Report reduces each analyzer to a federation snapshot and
// ships it over the federation TCP transport to an in-process
// coordinator, exactly as distributed instances would; the merged
// report is identical to AnalyzeFederated over the written archives
// (see DESIGN.md, "Federation").
type FederatedLiveRun struct {
	cfg       Config
	dir       string
	reg       *MetricsRegistry
	w         *scenario.World
	fed       *scenario.Federation
	analyzers []*OnlineAnalyzer
	lms       []*live.Metrics
	plans     []*faultnet.Plan
	snapPlan  *faultnet.Plan

	ran         bool
	interrupted bool
}

// NewFederatedLiveRun plans the world described by cfg and its
// federation, and prepares one online analyzer per exchange. Nothing is
// written and no sockets open until Run. When reg is non-nil, exchange
// 0 registers its transport, route-server, fabric and analyzer metrics
// on it (one exchange only — the metric names are global).
func NewFederatedLiveRun(cfg Config, dir string, reg *MetricsRegistry) (*FederatedLiveRun, error) {
	w, err := scenario.Plan(cfg)
	if err != nil {
		return nil, err
	}
	fed := scenario.PlanFederation(w)
	flr := &FederatedLiveRun{
		cfg: cfg,
		dir: dir,
		reg: reg,
		w:   w,
		fed: fed,
	}
	meta := analysisMeta(w)
	for i := 0; i < fed.N; i++ {
		lm := live.NewMetrics()
		a := NewOnlineAnalyzer(meta)
		if reg != nil && i == 0 {
			lm.Register(reg)
			a.RegisterMetrics(reg)
		}
		flr.lms = append(flr.lms, lm)
		flr.analyzers = append(flr.analyzers, a)
	}
	return flr, nil
}

// IXPs returns the number of exchanges in the federation.
func (flr *FederatedLiveRun) IXPs() int { return flr.fed.N }

// Analyzer returns exchange i's online analyzer.
func (flr *FederatedLiveRun) Analyzer(i int) *OnlineAnalyzer { return flr.analyzers[i] }

// EnableChaos arms per-exchange fault-injection plans for the live
// transports: exchange i's sessions and export path are impaired by the
// profile's schedule seeded with seed+i, so every exchange flaps
// independently but deterministically. Call before Run.
func (flr *FederatedLiveRun) EnableChaos(seed uint64, profile string) error {
	if flr.ran {
		return fmt.Errorf("rtbh: federated live run already executed")
	}
	p, err := faultnet.ParseProfile(profile)
	if err != nil {
		return err
	}
	flr.plans = make([]*faultnet.Plan, flr.fed.N)
	for i := range flr.plans {
		flr.plans[i] = faultnet.NewPlan(seed+uint64(i), p)
	}
	if flr.reg != nil {
		flr.plans[0].M.Register(flr.reg)
	}
	return nil
}

// EnableSnapshotChaos arms a fault-injection plan on the snapshot
// transport alone: every federation.Send from Report dials through the
// profile's connection middleware, so snapshot frames are truncated and
// connections cut deterministically while the coordinator still
// converges through retransmits and Seq dedup. Call before Report.
func (flr *FederatedLiveRun) EnableSnapshotChaos(seed uint64, profile string) error {
	p, err := faultnet.ParseProfile(profile)
	if err != nil {
		return err
	}
	flr.snapPlan = faultnet.NewPlan(seed, p)
	return nil
}

// Interrupted reports whether Run ended early because its context was
// cancelled.
func (flr *FederatedLiveRun) Interrupted() bool { return flr.interrupted }

// Run drives the planned world through every exchange's live
// transports and writes one standalone dataset per exchange into
// dir/ixp<i> — the same files SimulateFederated writes, byte-identical
// for the same Config. It returns after all exchanges' streams have
// drained and reconciled and the archives are flushed.
func (flr *FederatedLiveRun) Run(ctx context.Context) (*FederatedSummary, error) {
	if flr.ran {
		return nil, fmt.Errorf("rtbh: federated live run already executed")
	}
	flr.ran = true
	w, fed := flr.w, flr.fed
	n := fed.N

	type ixpState struct {
		mrtFile, flowFile *os.File
		mrtW              *mrt.Writer
		flowW             *ipfix.Writer
		runner            *live.Runner
		rs                *routeserver.Server
		fb                *fabric.Fabric
		rsMu              sync.Mutex
		flowCount         int64
	}
	ixps := make([]*ixpState, n)
	defer func() {
		for _, s := range ixps {
			if s == nil {
				continue
			}
			if s.runner != nil {
				s.runner.Shutdown() //nolint:errcheck // best-effort cleanup
			}
			s.mrtFile.Close()
			s.flowFile.Close()
		}
	}()

	for i := 0; i < n; i++ {
		sub := IXPDir(flr.dir, i)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("rtbh: %w", err)
		}
		s := &ixpState{}
		var err error
		if s.mrtFile, err = os.Create(filepath.Join(sub, FileUpdates)); err != nil {
			return nil, fmt.Errorf("rtbh: %w", err)
		}
		ixps[i] = s
		if s.flowFile, err = os.Create(filepath.Join(sub, FileFlows)); err != nil {
			return nil, fmt.Errorf("rtbh: %w", err)
		}
		s.mrtW = mrt.NewWriter(s.mrtFile)
		s.flowW = ipfix.NewWriter(s.flowFile, 1)

		analyzer := flr.analyzers[i]
		deliver := func(ts time.Time, peer uint32, upd *bgp.Update) error {
			s.rsMu.Lock()
			_, err := s.rs.Process(ts, peer, upd)
			s.rsMu.Unlock()
			if err != nil {
				return err
			}
			analyzer.ObserveUpdate(ts, peer, upd)
			return nil
		}
		onPeerFlush := func(peer uint32) {
			s.rsMu.Lock()
			s.rs.PeerDown(peer)
			s.rsMu.Unlock()
		}
		flowSink := func(b *ipfix.RecordBatch) error {
			if err := s.flowW.WriteBatch(b); err != nil {
				return err
			}
			analyzer.ObserveFlowBatch(b)
			return nil
		}
		rcfg := live.RunnerConfig{}
		if flr.plans != nil {
			rcfg.Fault = flr.plans[i]
			rcfg.Session = live.SessionConfig{
				HoldTime:     30 * time.Second,
				ReconnectMin: 2 * time.Millisecond,
				ReconnectMax: 50 * time.Millisecond,
			}
		}
		if s.runner, err = live.NewRunner(ctx, rcfg, flr.lms[i], deliver, onPeerFlush, flowSink); err != nil {
			return nil, err
		}
	}

	st, driveErr := scenario.Drive(w, func(fabricRNG *stats.RNG) (scenario.Executor, error) {
		src, err := fabric.NewSampleSource(w.Cfg.SamplingRate, fabricRNG)
		if err != nil {
			return nil, err
		}
		exs := make([]scenario.Executor, n)
		for i := 0; i < n; i++ {
			s := ixps[i]
			mrtW := s.mrtW
			if s.rs, err = scenario.NewRouteServer(w); err != nil {
				return nil, err
			}
			s.rs.SetCollector(func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
				rec := mrt.Record{
					Timestamp: ts, PeerAS: peerAS, LocalAS: uint32(w.RSASN),
					PeerIP: peerIP, LocalIP: w.RSIP, Message: msg,
				}
				// Write errors surface at Flush below, as in Simulate.
				_ = mrtW.WriteRecord(&rec)
			})
			runner := s.runner
			if s.fb, err = fabric.NewWithSource(s.rs, src, func(b *ipfix.RecordBatch) error {
				s.flowCount += int64(b.Len())
				return runner.ExportFlowBatch(b)
			}); err != nil {
				return nil, err
			}
			s.fb.ClockOffset = fed.ClockOffsets[i]
			if flr.reg != nil && i == 0 {
				s.rs.RegisterMetrics(flr.reg)
				s.fb.RegisterMetrics(flr.reg)
			}
			runner.SetRouteServerASN(uint32(w.RSASN))
			exs[i] = liveExecutor{r: runner, fb: s.fb}
		}
		return &federatedLiveExecutor{fed: fed, exs: exs}, nil
	})
	if driveErr != nil {
		if !errors.Is(driveErr, context.Canceled) && !errors.Is(driveErr, context.DeadlineExceeded) {
			return nil, driveErr
		}
		flr.interrupted = true
	}
	if st == nil {
		st = &scenario.DriveStats{}
	}

	// Drain and reconcile every exchange — even on an interrupted run —
	// so each archive and its analyzer agree on the delivered prefix.
	for i, s := range ixps {
		if err := s.runner.Drain(); err != nil {
			return nil, fmt.Errorf("rtbh: IXP %d: %w", i, err)
		}
		if err := s.runner.Reconcile(); err != nil {
			return nil, fmt.Errorf("rtbh: IXP %d: %w", i, err)
		}
		if err := s.runner.Shutdown(); err != nil {
			return nil, fmt.Errorf("rtbh: IXP %d: %w", i, err)
		}
	}

	sum := &FederatedSummary{
		IXPs:              n,
		MultiHomedMembers: fed.MultiHomedMembers(),
		Events:            len(w.Events),
		Hosts:             len(w.Hosts),
		Members:           len(w.Members),
		Announcements:     st.Announcements,
		Withdrawals:       st.Withdrawals,
	}
	for i, s := range ixps {
		if err := s.mrtW.Flush(); err != nil {
			return nil, fmt.Errorf("rtbh: flushing MRT for IXP %d: %w", i, err)
		}
		if err := s.flowW.Flush(); err != nil {
			return nil, fmt.Errorf("rtbh: flushing IPFIX for IXP %d: %w", i, err)
		}
		sub := IXPDir(flr.dir, i)
		if err := writeJSON(filepath.Join(sub, FileMetadata), metaOf(w)); err != nil {
			return nil, err
		}
		if err := writeFile(filepath.Join(sub, FileIP2AS), w.IP2AS.WriteJSON); err != nil {
			return nil, err
		}
		if err := writeFile(filepath.Join(sub, FilePDB), w.PDB.WriteJSON); err != nil {
			return nil, err
		}
		if err := writeFile(filepath.Join(sub, FileTruth), scenario.Truth(w).WriteJSON); err != nil {
			return nil, err
		}
		fst := s.fb.Stats()
		sum.ControlMsgs = append(sum.ControlMsgs, s.rs.MessagesProcessed())
		sum.FlowRecords = append(sum.FlowRecords, s.flowCount)
		sum.PacketsIn = append(sum.PacketsIn, fst.PacketsIn)
		sum.PacketsDropped = append(sum.PacketsDropped, fst.PacketsDropped)
	}
	return sum, nil
}

// Report federates the online analyzers: each exchange's state is
// reduced to a snapshot (OnlineAnalyzer.FederationState), shipped over
// the federation TCP transport to an in-process coordinator — through
// the snapshot-chaos middleware when armed — and merged. The cross-IXP
// view re-streams the flow archives Run wrote. Call after Run; the
// result is identical to AnalyzeFederated over the same directories.
func (flr *FederatedLiveRun) Report(opts Options) (*FederatedReport, error) {
	if !flr.ran {
		return nil, fmt.Errorf("rtbh: federated live run has not executed")
	}
	meta := analysisMeta(flr.w)
	coord := federation.NewCoordinator(meta, opts.Delta)
	srv, err := federation.Serve("127.0.0.1:0", coord)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	attempts := 3
	for i, a := range flr.analyzers {
		snap, err := a.FederationState(i, 1, flr.fed.ClockOffsets[i])
		if err != nil {
			return nil, err
		}
		var wrap func(c net.Conn) net.Conn
		if flr.snapPlan != nil {
			// Each exchange's snapshot stream draws its own deterministic
			// schedule; the reset-free progress guarantee bounds retries.
			wrap = flr.snapPlan.TCP(uint32(i)).Wrap
			attempts = 6
		}
		if err := federation.Send(srv.Addr(), snap, wrap, attempts); err != nil {
			return nil, err
		}
	}
	if got := coord.Snapshots(); got != flr.fed.N {
		return nil, fmt.Errorf("rtbh: coordinator holds %d snapshots, want %d", got, flr.fed.N)
	}
	merged, err := coord.Merge()
	if err != nil {
		return nil, err
	}

	datasets := make([]*Dataset, flr.fed.N)
	for i := range datasets {
		ds, err := OpenDataset(IXPDir(flr.dir, i))
		if err != nil {
			return nil, err
		}
		datasets[i] = ds
	}
	return composeFederatedReport(merged, datasets, opts)
}

// federatedLiveExecutor routes the driver's total order across the
// per-exchange live executors: control to the announcing member's home
// exchange, batches wherever the federation anchors them (the
// per-exchange barrier in liveExecutor.Inject still guarantees that
// exchange's control plane is current before its fabric forwards).
type federatedLiveExecutor struct {
	fed *scenario.Federation
	exs []scenario.Executor
}

func (e *federatedLiveExecutor) Control(ts time.Time, peerAS uint32, upd *bgp.Update) error {
	return e.exs[e.fed.Home(peerAS)].Control(ts, peerAS, upd)
}

func (e *federatedLiveExecutor) Inject(b *fabric.Batch) error {
	return e.exs[e.fed.DispatchIXP(b)].Inject(b)
}
