package rtbh_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

// federationOptions mirrors the golden test's parameterization so the
// N=1 federated rendering is comparable against the same fixture.
func federationOptions() rtbh.Options {
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond
	return opts
}

// renderGolden renders a report exactly as the golden fixture is built.
func renderGolden(r *rtbh.Report) []byte {
	var buf bytes.Buffer
	textreport.RenderAll(&buf, r)
	return buf.Bytes()
}

// TestFederatedParityGolden runs the golden world through the
// federation machinery with a single exchange: the simulated dataset,
// the snapshot wire round trip, the coordinator merge, and the rendered
// global report must all collapse to exactly the single-IXP pipeline —
// byte-identical to the checked-in golden fixture.
func TestFederatedParityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes a full test-scale world")
	}
	cfg := goldenConfig()
	cfg.IXPs = 1
	dir := t.TempDir()
	sum, err := rtbh.SimulateFederated(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.IXPs != 1 {
		t.Fatalf("summary reports %d IXPs, want 1", sum.IXPs)
	}

	fr, err := rtbh.AnalyzeFederated([]string{rtbh.IXPDir(dir, 0)}, federationOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenReport)
	if err != nil {
		t.Fatalf("%v (run TestGoldenEndToEnd with -update to create the fixture)", err)
	}
	if got := renderGolden(fr.Global); !bytes.Equal(got, want) {
		diffLines(t, want, got)
		t.Fatal("N=1 federated global report does not match the golden fixture")
	}
	if len(fr.PerIXP) != 1 {
		t.Fatalf("got %d per-IXP reports, want 1", len(fr.PerIXP))
	}
	if got := renderGolden(fr.PerIXP[0].Report); !bytes.Equal(got, want) {
		diffLines(t, want, got)
		t.Fatal("N=1 per-IXP report does not match the golden fixture")
	}
	if fr.Cross != nil {
		t.Fatal("single-exchange federation should produce no cross view")
	}
}

// TestFederatedParityUnion partitions the golden world across three
// exchanges with disjoint member subsets and merges the three datasets
// back through the coordinator: the global report must be byte-identical
// to analyzing the union (single-IXP) dataset of the same world.
func TestFederatedParityUnion(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes two full test-scale worlds")
	}
	opts := federationOptions()

	unionDir := t.TempDir()
	if _, err := rtbh.Simulate(goldenConfig(), unionDir); err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(unionDir)
	if err != nil {
		t.Fatal(err)
	}
	unionOpts := opts
	unionOpts.Workers = 1
	unionReport, err := ds.Analyze(unionOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderGolden(unionReport)

	cfg := goldenConfig()
	cfg.IXPs = 3
	fedDir := t.TempDir()
	sum, err := rtbh.SimulateFederated(cfg, fedDir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.IXPs != 3 {
		t.Fatalf("summary reports %d IXPs, want 3", sum.IXPs)
	}
	var total int64
	for i, n := range sum.FlowRecords {
		if n == 0 {
			t.Errorf("IXP %d observed no flow records", i)
		}
		total += n
	}

	dirs := []string{rtbh.IXPDir(fedDir, 0), rtbh.IXPDir(fedDir, 1), rtbh.IXPDir(fedDir, 2)}
	fr, err := rtbh.AnalyzeFederated(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderGolden(fr.Global); !bytes.Equal(got, want) {
		diffLines(t, want, got)
		t.Fatal("N=3 federated global report does not match the union analysis")
	}
	if fr.Global.TotalRecords != total {
		t.Errorf("global report counts %d records, datasets hold %d", fr.Global.TotalRecords, total)
	}
	if len(fr.PerIXP) != 3 {
		t.Fatalf("got %d per-IXP reports, want 3", len(fr.PerIXP))
	}
	if fr.Cross == nil {
		t.Fatal("multi-exchange federation should produce a cross view")
	}
	// Disjoint member subsets: every event's traffic is observed only at
	// its own exchange, so nothing leaks across.
	if fr.Cross.ForeignPkts != 0 {
		t.Errorf("disjoint federation delivered %d foreign packets, want 0", fr.Cross.ForeignPkts)
	}
	if fr.Cross.DroppedPkts == 0 {
		t.Error("cross view saw no during-event drops")
	}
}

// TestFederatedMultiHomed turns on multi-homing: selected members
// connect at two exchanges while signaling RTBH only at their home, so
// the secondary exchange keeps delivering attack traffic the home
// exchange drops. The cross view must surface that leakage.
func TestFederatedMultiHomed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes a full test-scale world")
	}
	cfg := goldenConfig()
	cfg.IXPs = 3
	cfg.MultiHomedShare = 0.6
	cfg.IXPClockSkewStep = 2 * time.Millisecond
	dir := t.TempDir()
	sum, err := rtbh.SimulateFederated(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.MultiHomedMembers) == 0 {
		t.Fatal("no members were multi-homed at share 0.6")
	}

	fr, err := rtbh.AnalyzeFederated([]string{
		rtbh.IXPDir(dir, 0), rtbh.IXPDir(dir, 1), rtbh.IXPDir(dir, 2),
	}, federationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Cross == nil {
		t.Fatal("no cross view")
	}
	if fr.Cross.ForeignPkts == 0 {
		t.Error("multi-homed federation shows no foreign-delivered packets")
	}
	if fr.Cross.LeakedEvents == 0 {
		t.Error("multi-homed federation shows no leaked events")
	}
	if fr.Cross.ForeignShare <= 0 || fr.Cross.ForeignShare >= 1 {
		t.Errorf("foreign share = %v, want in (0, 1)", fr.Cross.ForeignShare)
	}
	// Every exchange still composes a full standalone report.
	for i, r := range fr.PerIXP {
		if r.Report.Fig2 == nil || r.Report.TotalRecords == 0 {
			t.Errorf("IXP %d report is incomplete", i)
		}
	}
}

// runFederatedLive drives one federated live run to completion and
// returns its report alongside the batch AnalyzeFederated result over
// the archives the run wrote — the two views every live-parity test
// compares.
func runFederatedLive(t *testing.T, cfg rtbh.Config, dir, snapChaosProfile string) (*rtbh.FederatedReport, *rtbh.FederatedReport) {
	t.Helper()
	flr, err := rtbh.NewFederatedLiveRun(cfg, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snapChaosProfile != "" {
		if err := flr.EnableSnapshotChaos(cfg.Seed+7, snapChaosProfile); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := flr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if flr.Interrupted() {
		t.Fatal("uninterrupted federated run reports Interrupted")
	}
	if sum.IXPs != cfg.IXPs {
		t.Fatalf("summary reports %d IXPs, want %d", sum.IXPs, cfg.IXPs)
	}

	opts := federationOptions()
	live, err := flr.Report(opts)
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, cfg.IXPs)
	for i := range dirs {
		dirs[i] = rtbh.IXPDir(dir, i)
	}
	batch, err := rtbh.AnalyzeFederated(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return live, batch
}

// TestLiveFederatedParity is the federated live guarantee: a run whose
// exchanges each stream over their own BGP/TCP sessions and IPFIX/UDP
// export writes archives byte-identical to SimulateFederated's, and the
// report merged from the online analyzers' snapshots — shipped over the
// federation TCP transport — renders byte-identical to the batch
// AnalyzeFederated over those archives.
func TestLiveFederatedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a federated test-scale world through live transports")
	}
	cfg := goldenConfig()
	cfg.IXPs = 3

	batchDir, liveDir := t.TempDir(), t.TempDir()
	if _, err := rtbh.SimulateFederated(cfg, batchDir); err != nil {
		t.Fatal(err)
	}
	live, batch := runFederatedLive(t, cfg, liveDir, "")

	// Each exchange's archives must match the batch simulation's bytes.
	for i := 0; i < cfg.IXPs; i++ {
		for _, name := range []string{rtbh.FileUpdates, rtbh.FileFlows} {
			want, err := os.ReadFile(filepath.Join(rtbh.IXPDir(batchDir, i), name))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(rtbh.IXPDir(liveDir, i), name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("ixp%d %s differs: batch %d bytes, live %d bytes", i, name, len(want), len(got))
			}
		}
	}

	if got, want := renderGolden(live.Global), renderGolden(batch.Global); !bytes.Equal(got, want) {
		diffLines(t, want, got)
		t.Fatal("live federated global report does not match batch AnalyzeFederated")
	}
	if len(live.PerIXP) != len(batch.PerIXP) {
		t.Fatalf("live has %d per-IXP reports, batch %d", len(live.PerIXP), len(batch.PerIXP))
	}
	for i := range live.PerIXP {
		if got, want := renderGolden(live.PerIXP[i].Report), renderGolden(batch.PerIXP[i].Report); !bytes.Equal(got, want) {
			diffLines(t, want, got)
			t.Fatalf("live per-IXP report %d does not match batch", i)
		}
	}
}

// TestChaosFederatedSnapshotTransport impairs the snapshot transport
// with the flapping-tcp profile: frames are truncated mid-write and
// connections cut, yet retransmission plus the coordinator's Seq dedup
// still converge on the same merged report a clean transport produces.
func TestChaosFederatedSnapshotTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a federated test-scale world through live transports")
	}
	cfg := goldenConfig()
	cfg.IXPs = 3
	cfg.MultiHomedShare = 0.5

	live, batch := runFederatedLive(t, cfg, t.TempDir(), "flapping-tcp")
	if got, want := renderGolden(live.Global), renderGolden(batch.Global); !bytes.Equal(got, want) {
		diffLines(t, want, got)
		t.Fatal("global report merged over a chaotic snapshot transport diverges")
	}
	if live.Cross == nil || batch.Cross == nil {
		t.Fatal("missing cross view")
	}
	if live.Cross.ForeignPkts != batch.Cross.ForeignPkts ||
		live.Cross.LeakedEvents != batch.Cross.LeakedEvents {
		t.Errorf("cross view diverges: live foreign=%d leaked=%d, batch foreign=%d leaked=%d",
			live.Cross.ForeignPkts, live.Cross.LeakedEvents,
			batch.Cross.ForeignPkts, batch.Cross.LeakedEvents)
	}
}
