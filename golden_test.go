package rtbh_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden fixtures from the current output")

const goldenReport = "testdata/golden/report.txt"

// goldenConfig is the fixed world behind the golden fixture. The seed is
// pinned independently of TestConfig so fixture churn is always a
// deliberate -update, never a side effect of tweaking the test defaults.
func goldenConfig() rtbh.Config {
	cfg := rtbh.TestConfig()
	cfg.Seed = 0x601D5EED
	return cfg
}

// TestGoldenEndToEnd drives the full chain — route server and fabric
// simulation, dataset round trip, single-pass analysis, text rendering —
// and byte-compares the rendered report against the checked-in fixture,
// for the sequential runner and the sharded parallel runner alike. On
// the way it reconciles every layer's metrics snapshot with the ground
// truth next to it: the fabric gauges against the simulation summary,
// and the pipeline counters against the report the analyst sees.
func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes a full test-scale world")
	}
	dir := t.TempDir()
	simReg := rtbh.NewMetricsRegistry()
	sum, err := rtbh.SimulateObserved(goldenConfig(), dir, simReg)
	if err != nil {
		t.Fatal(err)
	}
	simSnap := simReg.Snapshot()

	// Layer 1: the fabric's and route server's metrics must agree exactly
	// with the summary the simulator reports.
	simChecks := []struct {
		name string
		want int64
	}{
		{"fabric.packets_in", sum.PacketsIn},
		{"fabric.packets_dropped", sum.PacketsDropped},
		{"fabric.records_sampled", sum.FlowRecords},
	}
	for _, c := range simChecks {
		if got := simSnap.Gauge(c.name); got != c.want {
			t.Errorf("%s = %d, summary says %d", c.name, got, c.want)
		}
	}
	if got := simSnap.Counter("routeserver.updates"); got != int64(sum.ControlMsgs) {
		t.Errorf("routeserver.updates = %d, summary says %d", got, sum.ControlMsgs)
	}
	if got := simSnap.Counter("routeserver.rtbh.announced_prefixes"); got != int64(sum.Announcements) {
		t.Errorf("routeserver.rtbh.announced_prefixes = %d, summary says %d", got, sum.Announcements)
	}
	withdrawn := simSnap.Counter("routeserver.rtbh.withdrawn_prefixes") +
		simSnap.Counter("routeserver.rtbh.withdrawn_noop")
	if withdrawn != int64(sum.Withdrawals) {
		t.Errorf("withdrawn_prefixes+noop = %d, summary says %d", withdrawn, sum.Withdrawals)
	}

	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}

	workerCounts := []int{1, 3}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 3 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := rtbh.NewMetricsRegistry()
			opts := rtbh.DefaultOptions()
			opts.OffsetStep = 20 * time.Millisecond
			opts.Workers = workers
			opts.Metrics = reg
			report, err := ds.Analyze(opts)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			textreport.RenderAll(&buf, report)
			got := buf.Bytes()

			if *updateGolden && workers == 1 {
				if err := os.MkdirAll(filepath.Dir(goldenReport), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenReport, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", goldenReport, len(got))
			}
			want, err := os.ReadFile(goldenReport)
			if err != nil {
				t.Fatalf("%v (run with -update to create the fixture)", err)
			}
			if !bytes.Equal(got, want) {
				diffLines(t, want, got)
				t.Fatalf("rendered report does not match %s (run with -update after intended changes)", goldenReport)
			}

			reconcile(t, reg.Snapshot(), simSnap, report, len(ds.Updates), workers)
		})
	}
}

// reconcile cross-checks one analysis metrics snapshot against the report
// composed in the same run and against the simulation-side snapshot. This
// is the acceptance bar for the observability layer: metrics are not
// decoration, they must equal the report's numbers.
func reconcile(t *testing.T, snap, simSnap rtbh.MetricsSnapshot, report *rtbh.Report, updates, workers int) {
	t.Helper()
	checks := []struct {
		name string
		want int64
	}{
		{"pipeline.records.total", report.TotalRecords},
		{"pipeline.records.internal", report.InternalRecords},
		{"pipeline.records.attributed", report.AttributedRecords},
		{"pipeline.records.dropped", report.DroppedRecords},
		{"pipeline.events", int64(len(report.Events))},
		{"analysis.control_updates", int64(updates)},
	}
	for _, c := range checks {
		if got := snap.Gauge(c.name); got != c.want {
			t.Errorf("workers=%d: %s = %d, report says %d", workers, c.name, got, c.want)
		}
	}

	// Records the fabric emitted with the blackhole MAC are exactly the
	// records the pipeline counts as dropped: the two snapshots were taken
	// on opposite sides of the serialized dataset.
	if sim, ana := simSnap.Gauge("fabric.records_dropped_sampled"), snap.Gauge("pipeline.records.dropped"); sim != ana {
		t.Errorf("workers=%d: fabric dropped-sampled %d != pipeline dropped %d", workers, sim, ana)
	}

	// The dropstats gauges must equal the Fig 5 rows summed.
	var fig5 rtbh.LengthStat
	for i := range report.Fig5 {
		fig5.DroppedPkts += report.Fig5[i].DroppedPkts
		fig5.ForwardedPkts += report.Fig5[i].ForwardedPkts
		fig5.DroppedBytes += report.Fig5[i].DroppedBytes
		fig5.ForwardedBytes += report.Fig5[i].ForwardedBytes
	}
	dropChecks := []struct {
		name string
		want int64
	}{
		{"dropstats.dropped_pkts", fig5.DroppedPkts},
		{"dropstats.forwarded_pkts", fig5.ForwardedPkts},
		{"dropstats.dropped_bytes", fig5.DroppedBytes},
		{"dropstats.forwarded_bytes", fig5.ForwardedBytes},
	}
	for _, c := range dropChecks {
		if got := snap.Gauge(c.name); got != c.want {
			t.Errorf("workers=%d: %s = %d, Fig5 sums to %d", workers, c.name, got, c.want)
		}
	}

	// Stage timers fired once each; the parallel runner also accounts
	// every record to a shard and counts its merges.
	for _, name := range []string{"pipeline.observe", "analysis.compose"} {
		tv, ok := snap.Timers[name]
		if !ok || tv.Count != 1 {
			t.Errorf("workers=%d: timer %s = %+v, want exactly one span", workers, name, tv)
		}
	}
	if workers > 1 {
		var sharded int64
		for i := 0; i < workers; i++ {
			sharded += snap.Counter(fmt.Sprintf("pipeline.shard.%02d.records", i))
		}
		// The single pass feeds every record to its destination shard, and
		// to a second shard when the source hashes apart (the role split in
		// parallel.go). So the entry sum is bounded by 1x..2x the record
		// total.
		if lo, hi := report.TotalRecords, 2*report.TotalRecords; sharded < lo || sharded > hi {
			t.Errorf("workers=%d: shard counters sum to %d, want within [%d, %d]", workers, sharded, lo, hi)
		}
		if got := snap.Counter("pipeline.merges"); got != int64(workers) {
			t.Errorf("workers=%d: pipeline.merges = %d, want %d", workers, got, workers)
		}
		if got := snap.Gauge("pipeline.workers"); got != int64(workers) {
			t.Errorf("workers=%d: pipeline.workers gauge = %d", workers, got)
		}
	}
}

// diffLines reports the first diverging line between two renderings.
func diffLines(t *testing.T, want, got []byte) {
	t.Helper()
	wantLines, gotLines := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := range wantLines {
		if i >= len(gotLines) || !bytes.Equal(wantLines[i], gotLines[i]) {
			var g []byte
			if i < len(gotLines) {
				g = gotLines[i]
			}
			t.Errorf("first divergence at line %d:\nfixture: %s\ngot:     %s", i+1, wantLines[i], g)
			return
		}
	}
	t.Errorf("output has %d extra lines beyond the fixture", len(gotLines)-len(wantLines))
}
