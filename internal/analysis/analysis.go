// Package analysis provides the shared vocabulary of the measurement
// pipeline that reproduces the paper's study: parsed control-plane
// updates, dataset metadata (member router MACs, IP-to-AS mapping,
// PeeringDB), time slotting, and bounded distinct counters used by the
// streaming aggregators.
//
// The pipeline mirrors the paper's methodology:
//
//	control plane (MRT)  -> events:    RTBH events via 10-minute merge
//	                        load:      parallel-RTBH time series (Fig 3)
//	                        visibility: per-peer filtered shares (Fig 4)
//	data plane (IPFIX)   -> pipeline:  two streaming passes feeding
//	                        timealign, dropstats, anomaly, protomix,
//	                        hosts, collateral
//	both                 -> usecase:   event classification (Fig 19)
package analysis

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/ipfix"
	"repro/internal/mrt"
	"repro/internal/peeringdb"
)

// SlotDuration is the analysis time-slot size (the paper aggregates the
// data plane into five-minute slots).
const SlotDuration = 5 * time.Minute

// Slot returns the global slot index of t.
func Slot(t time.Time) int64 { return t.Unix() / int64(SlotDuration/time.Second) }

// SlotStart returns the start time of slot index s.
func SlotStart(s int64) time.Time {
	return time.Unix(s*int64(SlotDuration/time.Second), 0).UTC()
}

// Day returns the UTC day index of t relative to start.
func Day(start, t time.Time) int {
	return int(t.Sub(start) / (24 * time.Hour))
}

// ControlUpdate is one RTBH signaling action extracted from the
// control-plane archive.
type ControlUpdate struct {
	Time     time.Time
	Peer     uint32 // announcing route-server client
	Prefix   bgp.Prefix
	Announce bool
	OriginAS uint32 // rightmost AS_PATH hop (announcements only)
	// Communities carried on announcements; used to derive per-peer
	// visibility of targeted blackholes.
	Communities bgp.Communities
}

// ExpandUpdate appends the RTBH control updates carried by one BGP
// UPDATE to dst: withdrawals first (they qualify unconditionally — they
// carry no attributes), then the announced prefixes, which must carry
// the BLACKHOLE community to qualify. This is the single definition of
// what counts as RTBH signaling, shared by the batch MRT parser and the
// live mode's online analyzer.
func ExpandUpdate(dst []ControlUpdate, ts time.Time, peer uint32, upd *bgp.Update) []ControlUpdate {
	for _, p := range upd.Withdrawn {
		dst = append(dst, ControlUpdate{
			Time: ts, Peer: peer, Prefix: p, Announce: false,
		})
	}
	if len(upd.NLRI) > 0 && upd.Attrs.Communities.HasBlackhole() {
		for _, p := range upd.NLRI {
			dst = append(dst, ControlUpdate{
				Time: ts, Peer: peer, Prefix: p, Announce: true,
				OriginAS:    upd.Attrs.OriginAS(),
				Communities: upd.Attrs.Communities.Clone(),
			})
		}
	}
	return dst
}

// SortUpdates sorts control updates by time, keeping the relative order
// of equal timestamps (the order the route server processed them in).
func SortUpdates(us []ControlUpdate) {
	sort.SliceStable(us, func(i, j int) bool { return us[i].Time.Before(us[j].Time) })
}

// FlowUpdate is one FlowSpec signaling action extracted from the
// control-plane archive: a member announcing or withdrawing a
// fine-grained discard rule through the route server (the paper's §5.5
// mitigation alternative to RTBH).
type FlowUpdate struct {
	Time     time.Time
	Peer     uint32 // announcing route-server client
	Rule     *bgp.FlowRule
	Announce bool
}

// ExpandFlowSpec appends the FlowSpec actions carried by one BGP UPDATE
// to dst: nothing unless the update carries FlowSpec NLRI (RTBH updates
// pass through untouched), withdrawals first. Announcements qualify only
// with the traffic-rate-0 (discard) action — mirroring what the route
// server installs. Malformed FlowSpec attributes are skipped rather than
// fatal: the archive may interleave foreign multiprotocol updates the
// analysis does not model, exactly like ParseMRT skips non-RTBH routes.
func ExpandFlowSpec(dst []FlowUpdate, ts time.Time, peer uint32, upd *bgp.Update) []FlowUpdate {
	fsu, isFS, err := bgp.FlowSpecFromUpdate(upd)
	if err != nil || !isFS {
		return dst
	}
	for _, r := range fsu.Withdrawn {
		dst = append(dst, FlowUpdate{Time: ts, Peer: peer, Rule: r, Announce: false})
	}
	if fsu.Discards() {
		for _, r := range fsu.Announced {
			dst = append(dst, FlowUpdate{Time: ts, Peer: peer, Rule: r, Announce: true})
		}
	}
	return dst
}

// SortFlowUpdates sorts FlowSpec updates by time, keeping the relative
// order of equal timestamps.
func SortFlowUpdates(us []FlowUpdate) {
	sort.SliceStable(us, func(i, j int) bool { return us[i].Time.Before(us[j].Time) })
}

// ParseMRT extracts RTBH control updates from an MRT stream written by
// the collector. Non-UPDATE records are skipped; see ExpandUpdate for
// what qualifies. The result is sorted by time.
func ParseMRT(r io.Reader) ([]ControlUpdate, error) {
	out, _, err := ParseMRTAll(r)
	return out, err
}

// ParseMRTAll extracts both signaling streams from an MRT archive: the
// RTBH control updates and the FlowSpec rule actions, each sorted by
// time. The same UPDATE never contributes to both — FlowSpec updates
// carry no IPv4 NLRI and no BLACKHOLE community, so ExpandUpdate yields
// nothing for them, and vice versa.
func ParseMRTAll(r io.Reader) ([]ControlUpdate, []FlowUpdate, error) {
	rd := mrt.NewReader(r)
	var out []ControlUpdate
	var flows []FlowUpdate
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		upd, isUpdate, err := rec.DecodeUpdate()
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: record at %v: %w", rec.Timestamp, err)
		}
		if !isUpdate {
			continue
		}
		out = ExpandUpdate(out, rec.Timestamp, rec.PeerAS, upd)
		flows = ExpandFlowSpec(flows, rec.Timestamp, rec.PeerAS, upd)
	}
	SortUpdates(out)
	SortFlowUpdates(flows)
	return out, flows, nil
}

// Metadata carries the side tables the analysis joins against, mirroring
// the sources the paper uses: the IXP's interface database (MAC->member),
// routing tables (IP->origin AS) and PeeringDB.
type Metadata struct {
	// SamplingRate is the data plane's 1:N sampling denominator.
	SamplingRate int64
	// TrafficScale is the dataset's traffic-magnitude multiplier relative
	// to the repo's scaled-down defaults (zero means 1; ~50 is paper
	// magnitude). Volume-calibrated thresholds derive from it via Scale.
	TrafficScale float64
	// Start/End bound the measurement period.
	Start, End time.Time
	// MemberByMAC maps router MACs on the peering LAN to member ASNs.
	MemberByMAC map[ipfix.MAC]uint32
	// BlackholeMAC is the non-forwarding MAC implementing the drops.
	BlackholeMAC ipfix.MAC
	// InternalMACs identify IXP-internal systems whose flows are removed
	// during cleaning.
	InternalMACs map[ipfix.MAC]bool
	// IP2AS resolves origin ASes of traffic sources.
	IP2AS *ip2as.Table
	// PDB is the PeeringDB registry.
	PDB *peeringdb.Registry
}

// Validate reports missing mandatory metadata.
func (m *Metadata) Validate() error {
	switch {
	case m.SamplingRate < 1:
		return fmt.Errorf("analysis: sampling rate %d", m.SamplingRate)
	case len(m.MemberByMAC) == 0:
		return fmt.Errorf("analysis: no member MAC table")
	case m.BlackholeMAC == 0:
		return fmt.Errorf("analysis: blackhole MAC unset")
	case m.Start.IsZero() || !m.End.After(m.Start):
		return fmt.Errorf("analysis: invalid period %v..%v", m.Start, m.End)
	}
	return nil
}

// Scale returns the effective traffic-magnitude multiplier, normalizing
// the zero value (metadata predating the knob) to 1.
func (m *Metadata) Scale() float64 {
	if m.TrafficScale == 0 {
		return 1
	}
	return m.TrafficScale
}

// CalibratedSamplingRate is the 1:N sampling denominator at which the
// repo's sampled-count constants (anomaly.MinMagnitude) were tuned;
// every shipped world preset samples at this rate unless a numeric
// -scale coarsens it together with the traffic multiplier.
const CalibratedSamplingRate = 10000

// MagnitudeScale returns the factor by which per-slot *sampled* packet
// counts exceed the calibration point (TrafficScale 1 at 1:10000
// sampling): traffic multiplies sampled counts linearly, a coarser
// sampling denominator divides them, so the paper configuration
// (`-scale 50` = 50x traffic at 1:500000) leaves sampled magnitudes —
// and the constants derived from them — exactly where scale 1 put
// them. Scale-1 datasets always return 1: their constants are the
// calibration itself whatever their sampling rate (the sampling-rate
// ablation deliberately sweeps the denominator and must not have its
// thresholds re-derived under it).
func (m *Metadata) MagnitudeScale() float64 {
	s := m.Scale()
	if s == 1 {
		return 1
	}
	return s * CalibratedSamplingRate / float64(m.SamplingRate)
}

// MemberOf resolves a router MAC to its member ASN (0 if unknown).
func (m *Metadata) MemberOf(mac ipfix.MAC) uint32 { return m.MemberByMAC[mac] }

// IsInternal reports whether the record touches an internal system.
func (m *Metadata) IsInternal(rec *ipfix.FlowRecord) bool {
	return m.InternalMACs[rec.SrcMAC] || m.InternalMACs[rec.DstMAC]
}
