package analysis

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/ipfix"
	"repro/internal/mrt"
)

func TestSlotHelpers(t *testing.T) {
	t0 := time.Date(2018, 10, 1, 12, 2, 30, 0, time.UTC)
	s := Slot(t0)
	start := SlotStart(s)
	if t0.Before(start) || !t0.Before(start.Add(SlotDuration)) {
		t.Fatalf("slot %d start %v does not contain %v", s, start, t0)
	}
	if Slot(start) != s || Slot(start.Add(SlotDuration-time.Second)) != s {
		t.Fatal("slot boundaries wrong")
	}
	if Slot(start.Add(SlotDuration)) != s+1 {
		t.Fatal("next slot wrong")
	}
	base := time.Date(2018, 9, 26, 0, 0, 0, 0, time.UTC)
	if Day(base, base.Add(25*time.Hour)) != 1 || Day(base, base) != 0 {
		t.Fatal("Day wrong")
	}
}

func TestParseMRT(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	enc := func(u *bgp.Update) []byte {
		b, err := bgp.EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	t0 := time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	// Announcement with blackhole community.
	w.WriteRecord(&mrt.Record{
		Timestamp: t0, PeerAS: 100,
		Message: enc(&bgp.Update{
			Attrs: bgp.PathAttrs{
				ASPath: []uint32{100, 777}, NextHop: 1,
				Communities: bgp.Communities{bgp.Blackhole, bgp.MakeCommunity(0, 300)},
			},
			NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
		}),
	})
	// Non-blackhole announcement: skipped.
	w.WriteRecord(&mrt.Record{
		Timestamp: t0.Add(time.Second), PeerAS: 100,
		Message: enc(&bgp.Update{
			Attrs: bgp.PathAttrs{ASPath: []uint32{100}, NextHop: 1},
			NLRI:  []bgp.Prefix{bgp.MustParsePrefix("198.51.100.0/24")},
		}),
	})
	// Keepalive: skipped.
	w.WriteRecord(&mrt.Record{Timestamp: t0.Add(2 * time.Second), PeerAS: 100, Message: bgp.EncodeKeepalive()})
	// Withdraw.
	w.WriteRecord(&mrt.Record{
		Timestamp: t0.Add(3 * time.Second), PeerAS: 100,
		Message: enc(&bgp.Update{Withdrawn: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")}}),
	})
	w.Flush()

	us, err := ParseMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 2 {
		t.Fatalf("updates = %d, want 2 (announce + withdraw)", len(us))
	}
	if !us[0].Announce || us[0].OriginAS != 777 || us[0].Peer != 100 {
		t.Fatalf("announce = %+v", us[0])
	}
	if !us[0].Communities.Contains(bgp.MakeCommunity(0, 300)) {
		t.Fatal("targeting community lost")
	}
	if us[1].Announce || us[1].Prefix.Len != 32 {
		t.Fatalf("withdraw = %+v", us[1])
	}
	if us[1].Time.Before(us[0].Time) {
		t.Fatal("updates not sorted")
	}
}

func TestMetadataValidate(t *testing.T) {
	good := Metadata{
		SamplingRate: 10000,
		Start:        time.Unix(0, 0),
		End:          time.Unix(1000, 0),
		MemberByMAC:  map[ipfix.MAC]uint32{1: 100},
		BlackholeMAC: 2,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SamplingRate = 0
	if bad.Validate() == nil {
		t.Fatal("rate 0 accepted")
	}
	bad = good
	bad.MemberByMAC = nil
	if bad.Validate() == nil {
		t.Fatal("empty MAC table accepted")
	}
	bad = good
	bad.End = bad.Start
	if bad.Validate() == nil {
		t.Fatal("empty period accepted")
	}
}

func TestMetadataHelpers(t *testing.T) {
	m := Metadata{
		MemberByMAC:  map[ipfix.MAC]uint32{10: 100},
		InternalMACs: map[ipfix.MAC]bool{99: true},
	}
	if m.MemberOf(10) != 100 || m.MemberOf(11) != 0 {
		t.Fatal("MemberOf wrong")
	}
	if !m.IsInternal(&ipfix.FlowRecord{DstMAC: 99}) {
		t.Fatal("internal dst not detected")
	}
	if !m.IsInternal(&ipfix.FlowRecord{SrcMAC: 99}) {
		t.Fatal("internal src not detected")
	}
	if m.IsInternal(&ipfix.FlowRecord{SrcMAC: 10, DstMAC: 10}) {
		t.Fatal("member traffic flagged internal")
	}
}

func TestBoundedSetExactThenSaturates(t *testing.T) {
	s := NewBoundedSet(4)
	for i := 0; i < 4; i++ {
		s.Add(uint64(i))
		s.Add(uint64(i)) // duplicates must not count
	}
	if s.Count() != 4 || !s.Exact() {
		t.Fatalf("count = %d exact = %v", s.Count(), s.Exact())
	}
	s.Add(99)
	s.Add(99) // after saturation duplicates DO count (documented overcount)
	if s.Exact() {
		t.Fatal("saturated set claims exact")
	}
	if s.Count() != 6 {
		t.Fatalf("saturated count = %d", s.Count())
	}
}

func TestBoundedSetZeroValue(t *testing.T) {
	var s BoundedSet
	for i := 0; i < 100; i++ {
		s.Add(uint64(i))
	}
	if s.Count() < DefaultBoundedCap {
		t.Fatalf("zero-value count = %d", s.Count())
	}
}

func TestBoundedSetNeverUndercounts(t *testing.T) {
	f := func(keys []uint64) bool {
		s := NewBoundedSet(8)
		distinct := map[uint64]bool{}
		for _, k := range keys {
			s.Add(k)
			distinct[k] = true
		}
		if len(distinct) <= 8 {
			return s.Count() == len(distinct)
		}
		return s.Count() >= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopCounter(t *testing.T) {
	c := NewTopCounter(4)
	c.Add(80, 10)
	c.Add(443, 30)
	c.Add(80, 25)
	key, count, ok := c.Top()
	if !ok || key != 80 || count != 35 {
		t.Fatalf("Top = %d %d %v", key, count, ok)
	}
	// Tie resolves to smaller key.
	c2 := NewTopCounter(4)
	c2.Add(9, 5)
	c2.Add(3, 5)
	if k, _, _ := c2.Top(); k != 3 {
		t.Fatalf("tie key = %d", k)
	}
	// Overflow keys dropped, existing still counted.
	c3 := NewTopCounter(2)
	c3.Add(1, 1)
	c3.Add(2, 1)
	c3.Add(3, 100)
	if c3.Len() != 2 {
		t.Fatalf("len = %d", c3.Len())
	}
	if _, _, ok := NewTopCounter(2).Top(); ok {
		t.Fatal("empty counter has a top")
	}
}

func TestHash64Distinctness(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint32(0); a < 30; a++ {
		for c := uint16(0); c < 30; c++ {
			h := Hash64(a, a+1, c, c+1, 17)
			if seen[h] {
				t.Fatalf("collision at %d %d", a, c)
			}
			seen[h] = true
		}
	}
}
