// Package anomaly implements the paper's pre-RTBH traffic analysis
// (§5.2-§5.4): per-prefix five-minute feature series, the five-feature
// EWMA detector (24-hour window, 2.5 standard deviations), the
// classification of pre-RTBH windows (Table 2), anomaly levels and
// offsets (Fig 12), and the anomaly amplification factor (Fig 13).
//
// The five features are (i) packets, (ii) flows, (iii) unique source
// addresses, (iv) unique destination ports, (v) non-TCP flows.
package anomaly

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/events"
	"repro/internal/bgp"
	"repro/internal/stats"
)

// NumFeatures is the number of traffic features observed.
const NumFeatures = 5

// Feature indices.
const (
	FeatPackets = iota
	FeatFlows
	FeatSrcIPs
	FeatDstPorts
	FeatNonTCP
)

// FeatureNames are the display names of the five features.
var FeatureNames = [NumFeatures]string{"packets", "flows", "src-ips", "dst-ports", "non-tcp-flows"}

// Detector parameters (paper §5.3).
const (
	// Span is the EWMA span: 288 five-minute slots = 24 hours.
	Span = 288
	// DefaultThreshold is the anomaly threshold in standard deviations.
	DefaultThreshold = 2.5
	// MinMagnitude is the minimum feature value for a slot to count as
	// anomalous, calibrated to TrafficScale 1. The paper's vantage point
	// carries enough baseline traffic that the EWMA's standard deviation
	// absorbs isolated samples; at this reproduction's scaled-down
	// volumes a lone sampled packet in an otherwise empty window would
	// trivially exceed mean + 2.5*SD, so anomalies must additionally be
	// supported by a handful of samples (see DESIGN.md, substitutions).
	// Sampled feature magnitudes grow linearly with the sampled-volume
	// scale (traffic multiplier x sampling-denominator ratio — see
	// analysis.Metadata.MagnitudeScale), so the support floor scales
	// linearly too — see MinMagnitudeAt.
	MinMagnitude = 4
)

// MinMagnitudeAt derives the anomaly support floor for a dataset's
// sampled-magnitude scale (analysis.Metadata.MagnitudeScale, NOT the
// raw traffic multiplier: the paper configuration coarsens sampling in
// step with traffic, leaving sampled counts — and this floor — at their
// scale-1 values): MinMagnitude at scale 1, growing linearly with the
// sampled volumes, and never below the scale-1 floor — sub-scale worlds
// still need a handful of samples before a slot counts.
func MinMagnitudeAt(scale float64) float64 {
	if scale <= 1 {
		return MinMagnitude
	}
	return MinMagnitude * scale
}

// slotKey identifies one prefix's five-minute slot.
type slotKey struct {
	prefix bgp.Prefix
	slot   int64
}

// slotFeat accumulates one slot's features; unique counts are bounded
// (saturation happens far above any detection threshold).
type slotFeat struct {
	packets  uint32
	nonTCP   uint32
	flows    analysis.BoundedSet
	srcIPs   analysis.BoundedSet
	dstPorts analysis.BoundedSet
}

// Aggregator collects per-slot features during the streaming pass. Feed
// it only records whose (prefix, time) the events index deems interesting
// (pre-window or event window); everything else is wasted memory.
type Aggregator struct {
	slots map[slotKey]*slotFeat
}

// New returns an empty aggregator.
func New() *Aggregator {
	return &Aggregator{slots: make(map[slotKey]*slotFeat)}
}

// Add accumulates one sampled packet into the feature slot of prefix.
func (a *Aggregator) Add(prefix bgp.Prefix, t time.Time, srcIP uint32, srcPort, dstPort uint16, proto uint8, pkts int64) {
	key := slotKey{prefix: prefix, slot: analysis.Slot(t)}
	sf := a.slots[key]
	if sf == nil {
		sf = &slotFeat{}
		a.slots[key] = sf
	}
	sf.packets += uint32(pkts)
	if proto != 6 {
		sf.nonTCP += uint32(pkts)
	}
	sf.flows.Add(analysis.Hash64(srcIP, 0, srcPort, dstPort, proto))
	sf.srcIPs.Add(uint64(srcIP))
	sf.dstPorts.Add(uint64(dstPort))
}

// Slots returns the number of populated feature slots.
func (a *Aggregator) Slots() int { return len(a.slots) }

// Merge folds o's feature slots into a. Slots present in only one
// aggregator are adopted; colliding slots sum their counters and merge
// their bounded distinct sets. The parallel pipeline shards records so
// that all samples of one (prefix, slot) land in one shard, making the
// merged state identical to a sequential pass. o must not be used
// afterwards.
func (a *Aggregator) Merge(o *Aggregator) {
	for k, osf := range o.slots {
		sf := a.slots[k]
		if sf == nil {
			a.slots[k] = osf
			continue
		}
		sf.packets += osf.packets
		sf.nonTCP += osf.nonTCP
		sf.flows.Merge(&osf.flows)
		sf.srcIPs.Merge(&osf.srcIPs)
		sf.dstPorts.Merge(&osf.dstPorts)
	}
}

// Snapshot returns an independent deep copy of the aggregator; further
// Adds on either side do not affect the other (Operator contract in
// internal/analysis).
func (a *Aggregator) Snapshot() *Aggregator {
	s := New()
	for k, sf := range a.slots {
		s.slots[k] = &slotFeat{
			packets:  sf.packets,
			nonTCP:   sf.nonTCP,
			flows:    sf.flows.Clone(),
			srcIPs:   sf.srcIPs.Clone(),
			dstPorts: sf.dstPorts.Clone(),
		}
	}
	return s
}

// features returns the five feature values of a slot (zeros if empty).
func (a *Aggregator) features(prefix bgp.Prefix, slot int64) [NumFeatures]float64 {
	sf := a.slots[slotKey{prefix: prefix, slot: slot}]
	if sf == nil {
		return [NumFeatures]float64{}
	}
	return [NumFeatures]float64{
		FeatPackets:  float64(sf.packets),
		FeatFlows:    float64(sf.flows.Count()),
		FeatSrcIPs:   float64(sf.srcIPs.Count()),
		FeatDstPorts: float64(sf.dstPorts.Count()),
		FeatNonTCP:   float64(sf.nonTCP),
	}
}

// Anomaly is one detected anomalous slot in a pre-RTBH window.
type Anomaly struct {
	// SlotsBefore is the distance to the event start in slots (1 = the
	// slot immediately preceding the first announcement).
	SlotsBefore int
	// Level is the number of features anomalous in the slot (1..5).
	Level int
}

// Verdict is the per-event outcome of the pre-RTBH analysis.
type Verdict struct {
	EventID int
	// HasPreData reports whether any sample appeared in the 72-hour
	// pre-window; PreDataSlots counts the slots with samples (Fig 11).
	HasPreData   bool
	PreDataSlots int
	// Anomalies lists anomalous slots (Fig 12).
	Anomalies []Anomaly
	// Within10Min / Within1Hour report an anomaly at most 10 minutes /
	// 1 hour before the event (Table 2, §5.3).
	Within10Min bool
	Within1Hour bool
	// AmpFactor is the last pre-event slot's value divided by the
	// pre-window mean, per feature (Fig 13); zero when undefined.
	AmpFactor [NumFeatures]float64
	// LastSlotIsMax reports whether the last slot holds the window
	// maximum of the packets feature (§5.3 reports 15% of cases).
	LastSlotIsMax bool
	// HasEventData reports samples during the merged event window;
	// EventPackets counts them (§5.4).
	HasEventData bool
	EventPackets int64
}

// Analyze runs the detector for every event at traffic scale 1.
// threshold is in standard deviations (the paper uses 2.5 and reports
// stability up to 10).
func (a *Aggregator) Analyze(evs []*events.Event, periodEnd time.Time, threshold float64) []Verdict {
	return a.AnalyzeScaled(evs, periodEnd, threshold, 1)
}

// AnalyzeScaled is Analyze with the dataset's sampled-magnitude scale
// (analysis.Metadata.MagnitudeScale), which sets the anomaly support
// floor (MinMagnitudeAt): the EWMA threshold is relative (standard
// deviations) and needs no scaling, the absolute magnitude floor does.
func (a *Aggregator) AnalyzeScaled(evs []*events.Event, periodEnd time.Time, threshold, scale float64) []Verdict {
	minMag := MinMagnitudeAt(scale)
	verdicts := make([]Verdict, 0, len(evs))
	detectors := [NumFeatures]*stats.EWMA{}
	for f := range detectors {
		detectors[f] = stats.NewEWMA(Span, threshold)
	}
	preSlots := int64(events.PreWindow / analysis.SlotDuration)

	for _, e := range evs {
		v := Verdict{EventID: e.ID}
		startSlot := analysis.Slot(e.Start())
		endSlot := analysis.Slot(e.End(periodEnd))
		for f := range detectors {
			detectors[f].Reset()
		}

		var sum [NumFeatures]float64
		var last [NumFeatures]float64
		var maxPackets float64
		// A burst keeps the detector firing for its whole duration, so
		// contiguous anomalous slots are reported as one anomaly: its
		// nearest slot and its maximum level. Per-slot 10-minute/1-hour
		// flags are unaffected.
		runLevel, runNearest := 0, 0
		flushRun := func() {
			if runLevel > 0 {
				v.Anomalies = append(v.Anomalies, Anomaly{SlotsBefore: runNearest, Level: runLevel})
				runLevel = 0
			}
		}
		// The scan includes the announcement's own slot (offset 0): the
		// attack traffic preceding a fast-reaction announcement often
		// lands in the same five-minute slot as the announcement itself.
		for s := startSlot - preSlots; s <= startSlot; s++ {
			feats := a.features(e.Prefix, s)
			slotsBefore := int(startSlot - s)
			level := 0
			for f := range feats {
				if detectors[f].Observe(feats[f]) && feats[f] >= minMag {
					level++
				}
				if s < startSlot {
					sum[f] += feats[f]
				}
			}
			if s < startSlot {
				if feats[FeatPackets] > 0 {
					v.PreDataSlots++
				}
				if feats[FeatPackets] > maxPackets {
					maxPackets = feats[FeatPackets]
				}
			}
			if level > 0 {
				if level > runLevel {
					runLevel = level
				}
				runNearest = slotsBefore
				if slotsBefore*int(analysis.SlotDuration/time.Minute) <= 10 {
					v.Within10Min = true
				}
				if slotsBefore*int(analysis.SlotDuration/time.Minute) <= 60 {
					v.Within1Hour = true
				}
			} else {
				flushRun()
			}
			if s == startSlot-1 {
				last = feats
			}
		}
		flushRun()
		v.HasPreData = v.PreDataSlots > 0
		for f := range sum {
			mean := sum[f] / float64(preSlots)
			if mean > 0 && last[f] > 0 {
				v.AmpFactor[f] = last[f] / mean
			}
		}
		v.LastSlotIsMax = last[FeatPackets] > 0 && last[FeatPackets] >= maxPackets

		for s := startSlot; s <= endSlot; s++ {
			f := a.features(e.Prefix, s)
			if f[FeatPackets] > 0 {
				v.HasEventData = true
				v.EventPackets += int64(f[FeatPackets])
			}
		}
		verdicts = append(verdicts, v)
	}
	return verdicts
}

// ClassCounts is the Table 2 summary.
type ClassCounts struct {
	// NoData: no samples in the pre-window.
	NoData int
	// DataNoAnomaly: samples but no anomaly within 10 minutes.
	DataNoAnomaly int
	// DataAnomaly10Min: anomaly at most 10 minutes before the event.
	DataAnomaly10Min int
}

// Total returns the event count.
func (c ClassCounts) Total() int { return c.NoData + c.DataNoAnomaly + c.DataAnomaly10Min }

// Classify tallies verdicts into the Table 2 classes.
func Classify(vs []Verdict) ClassCounts {
	var c ClassCounts
	for i := range vs {
		switch {
		case !vs[i].HasPreData:
			c.NoData++
		case vs[i].Within10Min:
			c.DataAnomaly10Min++
		default:
			c.DataNoAnomaly++
		}
	}
	return c
}
