package anomaly

import (
	"testing"
	"time"

	"repro/internal/analysis"
	aevents "repro/internal/analysis/events"
	"repro/internal/bgp"
)

var (
	prefix = bgp.MustParsePrefix("203.0.113.5/32")
	pEnd   = time.Date(2019, 1, 11, 0, 0, 0, 0, time.UTC)
)

// eventAt builds a one-episode event starting at start.
func eventAt(start time.Time, dur time.Duration) *aevents.Event {
	return &aevents.Event{
		ID:            7,
		Prefix:        prefix,
		Peer:          100,
		Episodes:      []aevents.Episode{{Announce: start, Withdraw: start.Add(dur)}},
		Announcements: 1,
	}
}

// fill adds baseline samples: one packet every stride slots across the
// pre-window.
func fill(a *Aggregator, start time.Time, stride int) {
	preSlots := int(aevents.PreWindow / analysis.SlotDuration)
	for s := 0; s < preSlots; s += stride {
		t := start.Add(-aevents.PreWindow).Add(time.Duration(s) * analysis.SlotDuration)
		a.Add(prefix, t, 0x01020304, 44444, 80, 6, 1)
	}
}

func TestNoPreDataClass(t *testing.T) {
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	vs := a.Analyze([]*aevents.Event{eventAt(start, time.Hour)}, pEnd, DefaultThreshold)
	if len(vs) != 1 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	v := vs[0]
	if v.HasPreData || v.Within10Min || v.HasEventData {
		t.Fatalf("quiet event verdict = %+v", v)
	}
	c := Classify(vs)
	if c.NoData != 1 || c.Total() != 1 {
		t.Fatalf("classes = %+v", c)
	}
}

func TestAttackSpikeDetectedWithin10Min(t *testing.T) {
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	fill(a, start, 30) // sparse baseline so the EWMA has variance
	// Attack burst in the two slots right before the event: many packets,
	// many sources, many ports, UDP.
	for slot := 1; slot <= 2; slot++ {
		tb := start.Add(-time.Duration(slot) * analysis.SlotDuration)
		for i := 0; i < 200; i++ {
			a.Add(prefix, tb, uint32(0x0a000000+i), 123, uint16(1024+i), 17, 1)
		}
	}
	vs := a.Analyze([]*aevents.Event{eventAt(start, time.Hour)}, pEnd, DefaultThreshold)
	v := vs[0]
	if !v.HasPreData || !v.Within10Min || !v.Within1Hour {
		t.Fatalf("verdict = %+v", v)
	}
	// The burst must push all five features to anomalous in some slot.
	maxLevel := 0
	for _, an := range v.Anomalies {
		if an.Level > maxLevel {
			maxLevel = an.Level
		}
	}
	if maxLevel < NumFeatures-1 {
		t.Fatalf("max anomaly level = %d", maxLevel)
	}
	// Amplification factor of the packets feature must be large (Fig 13).
	if v.AmpFactor[FeatPackets] < 20 {
		t.Fatalf("amplification factor = %v", v.AmpFactor[FeatPackets])
	}
	if !v.LastSlotIsMax {
		t.Fatal("last slot should hold the window maximum")
	}
	if c := Classify(vs); c.DataAnomaly10Min != 1 {
		t.Fatalf("classes = %+v", c)
	}
}

func TestSteadyTrafficNoAnomaly(t *testing.T) {
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	// Constant traffic: 3 packets every slot, identical flow signature.
	preSlots := int(aevents.PreWindow / analysis.SlotDuration)
	for s := 0; s < preSlots; s++ {
		tb := start.Add(-aevents.PreWindow).Add(time.Duration(s) * analysis.SlotDuration)
		for i := 0; i < 3; i++ {
			a.Add(prefix, tb, 0x01020304, 40000, 443, 6, 1)
		}
	}
	vs := a.Analyze([]*aevents.Event{eventAt(start, time.Hour)}, pEnd, DefaultThreshold)
	v := vs[0]
	if !v.HasPreData {
		t.Fatal("no pre data")
	}
	if v.Within10Min {
		t.Fatalf("steady traffic flagged anomalous: %+v", v.Anomalies)
	}
	if c := Classify(vs); c.DataNoAnomaly != 1 {
		t.Fatalf("classes = %+v", c)
	}
}

func TestAnomalyOutside10MinWindow(t *testing.T) {
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	fill(a, start, 30)
	// Burst 30 minutes (6 slots) before the event.
	tb := start.Add(-6 * analysis.SlotDuration)
	for i := 0; i < 200; i++ {
		a.Add(prefix, tb, uint32(0x0a000000+i), 123, uint16(1024+i), 17, 1)
	}
	vs := a.Analyze([]*aevents.Event{eventAt(start, time.Hour)}, pEnd, DefaultThreshold)
	v := vs[0]
	if v.Within10Min {
		t.Fatal("anomaly wrongly within 10 minutes")
	}
	if !v.Within1Hour {
		t.Fatal("anomaly not within 1 hour")
	}
}

func TestEventDataCounted(t *testing.T) {
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	during := start.Add(30 * time.Minute)
	for i := 0; i < 5; i++ {
		a.Add(prefix, during, 1, 123, 9999, 17, 1)
	}
	vs := a.Analyze([]*aevents.Event{eventAt(start, time.Hour)}, pEnd, DefaultThreshold)
	if !vs[0].HasEventData || vs[0].EventPackets != 5 {
		t.Fatalf("event data = %+v", vs[0])
	}
}

func TestHigherThresholdDetectsRealBursts(t *testing.T) {
	// §5.3: results stable even at 10*SD for genuine bursts.
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	fill(a, start, 30)
	tb := start.Add(-analysis.SlotDuration)
	for i := 0; i < 500; i++ {
		a.Add(prefix, tb, uint32(i), 123, uint16(i), 17, 1)
	}
	ev := eventAt(start, time.Hour)
	for _, thr := range []float64{2.5, 10} {
		vs := a.Analyze([]*aevents.Event{ev}, pEnd, thr)
		if !vs[0].Within10Min {
			t.Fatalf("burst missed at threshold %v", thr)
		}
	}
}

func TestNoDetectionDuringWarmup(t *testing.T) {
	// A burst older than 48h falls into the detector's warm-up (the
	// first 24h of the 72h window have no full window) and must not fire.
	a := New()
	start := time.Date(2018, 10, 20, 12, 0, 0, 0, time.UTC)
	tb := start.Add(-aevents.PreWindow).Add(2 * time.Hour)
	for i := 0; i < 500; i++ {
		a.Add(prefix, tb, uint32(i), 123, uint16(i), 17, 1)
	}
	vs := a.Analyze([]*aevents.Event{eventAt(start, time.Hour)}, pEnd, DefaultThreshold)
	if len(vs[0].Anomalies) != 0 {
		t.Fatalf("warm-up burst detected: %+v", vs[0].Anomalies)
	}
	if !vs[0].HasPreData {
		t.Fatal("burst samples not counted as pre data")
	}
}

func TestSlotsAccounting(t *testing.T) {
	a := New()
	if a.Slots() != 0 {
		t.Fatal("fresh aggregator has slots")
	}
	now := time.Unix(1e9, 0)
	a.Add(prefix, now, 1, 2, 3, 17, 1)
	a.Add(prefix, now.Add(time.Second), 1, 2, 3, 17, 1) // same slot
	a.Add(prefix, now.Add(analysis.SlotDuration), 1, 2, 3, 17, 1)
	if a.Slots() != 2 {
		t.Fatalf("slots = %d", a.Slots())
	}
}
