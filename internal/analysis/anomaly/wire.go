package anomaly

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// wireVersion is the anomaly snapshot codec version.
const wireVersion = 1

// MarshalBinary encodes the per-slot features canonically: slots sorted
// by (prefix address, prefix length, slot index), each with its packet
// counters and the three bounded feature sets.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(wireVersion)
	keys := make([]slotKey, 0, len(a.slots))
	for k := range a.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.prefix.Addr != b.prefix.Addr {
			return a.prefix.Addr < b.prefix.Addr
		}
		if a.prefix.Len != b.prefix.Len {
			return a.prefix.Len < b.prefix.Len
		}
		return a.slot < b.slot
	})
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		sf := a.slots[k]
		w.Uvarint(uint64(k.prefix.Addr))
		w.Byte(k.prefix.Len)
		w.Varint(k.slot)
		w.Uvarint(uint64(sf.packets))
		w.Uvarint(uint64(sf.nonTCP))
		sf.flows.EncodeWire(w)
		sf.srcIPs.EncodeWire(w)
		sf.dstPorts.EncodeWire(w)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded
// snapshot. On error the aggregator is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(wireVersion)
	// One slot needs at least addr+len+slot+packets+nonTCP plus three
	// minimal sets (3 bytes each).
	n := r.Count(14)
	slots := make(map[slotKey]*slotFeat, n)
	for i := 0; i < n; i++ {
		var k slotKey
		addr, plen := r.U32(), r.Byte()
		if plen > 32 {
			return fmt.Errorf("anomaly: prefix length %d > 32", plen)
		}
		k.prefix = bgp.MakePrefix(addr, plen)
		k.slot = r.Varint()
		sf := &slotFeat{
			packets: r.U32(),
			nonTCP:  r.U32(),
		}
		sf.flows.DecodeWire(r)
		sf.srcIPs.DecodeWire(r)
		sf.dstPorts.DecodeWire(r)
		if r.Err() != nil {
			break
		}
		slots[k] = sf
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("anomaly: %w", err)
	}
	a.slots = slots
	return nil
}
