package analysis

// BoundedSet counts distinct uint64 keys exactly up to its capacity and
// saturates beyond it. The streaming aggregators track per-slot feature
// cardinalities (unique sources, ports, flows) whose anomaly signal lives
// entirely in the low range — a saturated counter is already far above any
// detection threshold — so a small exact set beats a probabilistic sketch
// here: zero error where it matters, tiny fixed memory where it doesn't.
//
// The zero value is ready to use with DefaultBoundedCap capacity.
type BoundedSet struct {
	keys      []uint64
	saturated uint32
	cap       int
}

// DefaultBoundedCap is the capacity used by the zero value.
const DefaultBoundedCap = 32

// NewBoundedSet returns a set with the given capacity (minimum 1).
func NewBoundedSet(capacity int) *BoundedSet {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedSet{cap: capacity}
}

// Add inserts key. Once the capacity is exceeded, every further Add
// counts as distinct (an overestimate that only occurs far above any
// detection threshold).
func (s *BoundedSet) Add(key uint64) {
	if s.cap == 0 {
		s.cap = DefaultBoundedCap
	}
	if s.saturated > 0 {
		s.saturated++
		return
	}
	for _, k := range s.keys {
		if k == key {
			return
		}
	}
	if len(s.keys) >= s.cap {
		s.saturated = 1
		return
	}
	s.keys = append(s.keys, key)
}

// Count returns the (possibly saturated) distinct count.
func (s *BoundedSet) Count() int { return len(s.keys) + int(s.saturated) }

// Merge folds o into s: o's recorded keys are replayed as Adds and o's
// saturated tail carries over. The result is exact whenever neither set
// saturated and the union fits the capacity; beyond that it inherits
// Add's saturation overestimate. The parallel pipeline only merges sets
// whose key populations are disjoint by shard routing, where Merge
// reproduces the sequential outcome exactly.
func (s *BoundedSet) Merge(o *BoundedSet) {
	for _, k := range o.keys {
		s.Add(k)
	}
	s.saturated += o.saturated
}

// Exact reports whether the count is exact (the set never saturated).
func (s *BoundedSet) Exact() bool { return s.saturated == 0 }

// Clone returns an independent copy of the set: further Adds on either
// side do not affect the other. Used by the copy-on-snapshot path of the
// incremental operators (see the Operator contract in this package).
func (s *BoundedSet) Clone() BoundedSet {
	return BoundedSet{
		keys:      append([]uint64(nil), s.keys...),
		saturated: s.saturated,
		cap:       s.cap,
	}
}

// Hash64 mixes up to four 16-bit fields and two 32-bit fields into a
// 64-bit key for BoundedSet (a splitmix-style finalizer).
func Hash64(a, b uint32, c, d uint16, e uint8) uint64 {
	x := uint64(a)<<32 | uint64(b)
	x ^= uint64(c)<<16 | uint64(d)<<32 | uint64(e)<<48
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TopCounter tracks per-key packet counts for a bounded number of keys,
// used for daily top-port detection. When full, unseen keys are dropped —
// acceptable because the top port accumulates counts from the first
// samples of the day onward and host-level port diversity within a single
// day is small for exactly the stable hosts the detection is after.
type TopCounter struct {
	keys   []uint32
	counts []uint64
	cap    int
}

// NewTopCounter returns a counter holding at most capacity keys.
func NewTopCounter(capacity int) *TopCounter {
	if capacity < 1 {
		capacity = 1
	}
	return &TopCounter{cap: capacity}
}

// Add accumulates n into key's count.
func (c *TopCounter) Add(key uint32, n uint64) {
	for i, k := range c.keys {
		if k == key {
			c.counts[i] += n
			return
		}
	}
	if len(c.keys) < c.cap {
		c.keys = append(c.keys, key)
		c.counts = append(c.counts, n)
	}
}

// Merge folds o's counts into c, replaying them as Adds. Exact whenever
// the union of keys fits the capacity; beyond that it inherits Add's
// drop-unseen behaviour. As with BoundedSet.Merge, the parallel pipeline
// only merges counters fed from disjoint shards.
func (c *TopCounter) Merge(o *TopCounter) {
	for i, k := range o.keys {
		c.Add(k, o.counts[i])
	}
}

// Top returns the key with the highest count and that count; ok is false
// for an empty counter. Ties resolve to the smallest key for determinism.
func (c *TopCounter) Top() (key uint32, count uint64, ok bool) {
	if len(c.keys) == 0 {
		return 0, 0, false
	}
	best := 0
	for i := 1; i < len(c.keys); i++ {
		if c.counts[i] > c.counts[best] ||
			(c.counts[i] == c.counts[best] && c.keys[i] < c.keys[best]) {
			best = i
		}
	}
	return c.keys[best], c.counts[best], true
}

// Clone returns an independent copy of the counter.
func (c *TopCounter) Clone() *TopCounter {
	return &TopCounter{
		keys:   append([]uint32(nil), c.keys...),
		counts: append([]uint64(nil), c.counts...),
		cap:    c.cap,
	}
}

// Len returns the number of tracked keys.
func (c *TopCounter) Len() int { return len(c.keys) }

// Entries returns the tracked keys and their counts (shared slices; the
// caller must not modify them).
func (c *TopCounter) Entries() ([]uint32, []uint64) { return c.keys, c.counts }
