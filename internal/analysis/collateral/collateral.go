// Package collateral quantifies the collateral damage of RTBH mitigation
// (paper §6.3, Fig 18): packets addressed to detected servers' stable
// service ports while an RTBH event for the server was in progress —
// legitimate-looking traffic that blackholing discards along with the
// attack. Counts are reported absolutely (the paper deliberately avoids
// relative shares, which attack volume would dwarf).
package collateral

import (
	"sort"

	"repro/internal/analysis/hosts"
)

// Aggregator counts during-event packets to server top ports. It runs as
// a second streaming pass, after host profiling has produced the server
// top-port lists.
type Aggregator struct {
	// topPorts maps server IP -> set of proto<<16|port top ports.
	topPorts map[uint32]map[uint32]bool
	// perEvent tallies per event ID.
	perEvent map[int]*counts
}

type counts struct {
	all, dropped int64
}

// New builds an aggregator for the detected server profiles.
func New(profiles []hosts.Profile) *Aggregator {
	a := &Aggregator{
		topPorts: make(map[uint32]map[uint32]bool),
		perEvent: make(map[int]*counts),
	}
	for i := range profiles {
		p := &profiles[i]
		if p.Kind != hosts.KindServer || len(p.TopPorts) == 0 {
			continue
		}
		set := make(map[uint32]bool, len(p.TopPorts))
		for _, tp := range p.TopPorts {
			set[tp] = true
		}
		a.topPorts[p.IP] = set
	}
	return a
}

// Servers returns the number of servers under observation.
func (a *Aggregator) Servers() int { return len(a.topPorts) }

// Add inspects one sampled packet observed during eventID's window toward
// dstIP. Packets to a detected server's top ports count as (worst-case)
// collateral damage; dropped marks packets the blackhole discarded.
func (a *Aggregator) Add(eventID int, dstIP uint32, dstPort uint16, proto uint8, dropped bool, pkts int64) {
	set := a.topPorts[dstIP]
	if set == nil || !set[uint32(proto)<<16|uint32(dstPort)] {
		return
	}
	c := a.perEvent[eventID]
	if c == nil {
		c = &counts{}
		a.perEvent[eventID] = c
	}
	c.all += pkts
	if dropped {
		c.dropped += pkts
	}
}

// Merge folds o's per-event damage tallies into a, summing colliding
// events. Both aggregators must have been built from the same profiles.
// o must not be used afterwards.
func (a *Aggregator) Merge(o *Aggregator) {
	for id, oc := range o.perEvent {
		c := a.perEvent[id]
		if c == nil {
			a.perEvent[id] = oc
			continue
		}
		c.all += oc.all
		c.dropped += oc.dropped
	}
}

// Snapshot returns an independent deep copy of the aggregator (Operator
// contract in internal/analysis). The top-port sets are shared — they are
// immutable after New.
func (a *Aggregator) Snapshot() *Aggregator {
	s := &Aggregator{
		topPorts: a.topPorts,
		perEvent: make(map[int]*counts, len(a.perEvent)),
	}
	for id, c := range a.perEvent {
		cp := *c
		s.perEvent[id] = &cp
	}
	return s
}

// AddCounts folds pre-tallied packet counts for one (event, dstIP, port)
// cell, applying the same top-port filter as Add. Pending.Materialize
// uses this to replay the compact during-event tallies once the server
// profiles — and therefore the top-port sets — are known.
func (a *Aggregator) AddCounts(eventID int, dstIP uint32, portKey uint32, all, dropped int64) {
	set := a.topPorts[dstIP]
	if set == nil || !set[portKey] {
		return
	}
	c := a.perEvent[eventID]
	if c == nil {
		c = &counts{}
		a.perEvent[eventID] = c
	}
	c.all += all
	c.dropped += dropped
}

// Pending accumulates during-event traffic toward blackholed destinations
// *before* the server profiles exist, keyed by (event, dstIP,
// proto<<16|port). It is the compact per-event aggregate that lets the
// pipeline run in a single pass: whether a packet counts as collateral
// damage depends only on these coordinates, never on arrival order, so
// tallying now and filtering against the top-port sets at compose time
// (Materialize) is exact. State is bounded by the distinct (event, host,
// port) combinations with during-event traffic — far below the raw record
// count — and is what the online analyzer retains for open events.
//
// Cells are stored two-level — event ID, then dstIP<<32|proto<<16|port —
// so the hot Add resolves the event once per run of same-event records
// (the lastID memo) and probes a single integer-keyed map per record.
type Pending struct {
	cells map[int]map[uint64]*counts
	n     int

	// lastID/lastInner memoize the inner map of the most recent Add;
	// attributed records arrive in long same-event runs.
	lastID    int
	lastInner map[uint64]*counts
}

// NewPending returns an empty pending store.
func NewPending() *Pending {
	return &Pending{cells: make(map[int]map[uint64]*counts)}
}

// cellKey packs (dstIP, proto, dstPort) into the inner map key.
func cellKey(dstIP uint32, dstPort uint16, proto uint8) uint64 {
	return uint64(dstIP)<<32 | uint64(proto)<<16 | uint64(dstPort)
}

// Add tallies one sampled packet observed during eventID's window toward
// dstIP on (proto, dstPort).
func (p *Pending) Add(eventID int, dstIP uint32, dstPort uint16, proto uint8, dropped bool, pkts int64) {
	inner := p.lastInner
	if inner == nil || p.lastID != eventID {
		inner = p.cells[eventID]
		if inner == nil {
			inner = make(map[uint64]*counts)
			p.cells[eventID] = inner
		}
		p.lastID, p.lastInner = eventID, inner
	}
	key := cellKey(dstIP, dstPort, proto)
	c := inner[key]
	if c == nil {
		c = &counts{}
		inner[key] = c
		p.n++
	}
	c.all += pkts
	if dropped {
		c.dropped += pkts
	}
}

// Merge folds o's cells into p, summing colliding cells. Exact regardless
// of sharding: cell sums are commutative. o must not be used afterwards:
// p may adopt its internal structures.
func (p *Pending) Merge(o *Pending) {
	for id, oinner := range o.cells {
		inner := p.cells[id]
		if inner == nil {
			p.cells[id] = oinner
			p.n += len(oinner)
			continue
		}
		for k, oc := range oinner {
			c := inner[k]
			if c == nil {
				inner[k] = oc
				p.n++
				continue
			}
			c.all += oc.all
			c.dropped += oc.dropped
		}
	}
	// Adopted maps may have replaced the memoized inner map.
	p.lastInner = nil
}

// Snapshot returns an independent deep copy (Operator contract in
// internal/analysis).
func (p *Pending) Snapshot() *Pending {
	s := NewPending()
	s.n = p.n
	for id, inner := range p.cells {
		si := make(map[uint64]*counts, len(inner))
		for k, c := range inner {
			cp := *c
			si[k] = &cp
		}
		s.cells[id] = si
	}
	return s
}

// Len returns the number of tally cells retained.
func (p *Pending) Len() int { return p.n }

// Materialize filters the pending tallies through agg's top-port sets,
// producing the same per-event damage counters a dedicated second pass
// over the raw records would have.
func (p *Pending) Materialize(agg *Aggregator) {
	for id, inner := range p.cells {
		for k, c := range inner {
			agg.AddCounts(id, uint32(k>>32), uint32(k&0xffffffff), c.all, c.dropped)
		}
	}
}

// Result is the Fig 18 outcome.
type Result struct {
	// Events is the number of RTBH events with collateral damage.
	Events int
	// AllPkts / DroppedPkts hold the per-event packet counts (sampled)
	// to server top ports, sorted ascending: the two Fig 18 curves.
	AllPkts     []int64
	DroppedPkts []int64
	// MaxAll is the worst per-event damage observed.
	MaxAll int64
}

// Result summarizes the accumulated damage.
func (a *Aggregator) Result() *Result {
	res := &Result{}
	for _, c := range a.perEvent {
		res.Events++
		res.AllPkts = append(res.AllPkts, c.all)
		if c.dropped > 0 {
			res.DroppedPkts = append(res.DroppedPkts, c.dropped)
		}
		if c.all > res.MaxAll {
			res.MaxAll = c.all
		}
	}
	sort.Slice(res.AllPkts, func(i, j int) bool { return res.AllPkts[i] < res.AllPkts[j] })
	sort.Slice(res.DroppedPkts, func(i, j int) bool { return res.DroppedPkts[i] < res.DroppedPkts[j] })
	return res
}
