package collateral

import (
	"testing"

	"repro/internal/analysis/hosts"
	"repro/internal/netgen"
)

const serverIP = 0x0b000001

func serverProfile() hosts.Profile {
	return hosts.Profile{
		IP:       serverIP,
		Kind:     hosts.KindServer,
		TopPorts: []uint32{uint32(netgen.ProtoTCP)<<16 | 443},
	}
}

func TestCollateralCountsTopPortTrafficOnly(t *testing.T) {
	a := New([]hosts.Profile{serverProfile(), {IP: 99, Kind: hosts.KindClient}})
	if a.Servers() != 1 {
		t.Fatalf("servers = %d", a.Servers())
	}
	// Top-port traffic during event 1: 5 dropped, 3 forwarded.
	for i := 0; i < 5; i++ {
		a.Add(1, serverIP, 443, netgen.ProtoTCP, true, 1)
	}
	for i := 0; i < 3; i++ {
		a.Add(1, serverIP, 443, netgen.ProtoTCP, false, 1)
	}
	// Attack traffic on other ports must not count.
	a.Add(1, serverIP, 40000, netgen.ProtoUDP, true, 100)
	// Same port number under UDP is a different service.
	a.Add(1, serverIP, 443, netgen.ProtoUDP, true, 100)
	// Traffic to a non-server host never counts.
	a.Add(1, 99, 443, netgen.ProtoTCP, true, 100)

	res := a.Result()
	if res.Events != 1 {
		t.Fatalf("events = %d", res.Events)
	}
	if len(res.AllPkts) != 1 || res.AllPkts[0] != 8 {
		t.Fatalf("all = %v", res.AllPkts)
	}
	if len(res.DroppedPkts) != 1 || res.DroppedPkts[0] != 5 {
		t.Fatalf("dropped = %v", res.DroppedPkts)
	}
	if res.MaxAll != 8 {
		t.Fatalf("max = %d", res.MaxAll)
	}
}

func TestResultSorted(t *testing.T) {
	a := New([]hosts.Profile{serverProfile()})
	a.Add(1, serverIP, 443, netgen.ProtoTCP, false, 9)
	a.Add(2, serverIP, 443, netgen.ProtoTCP, false, 3)
	a.Add(3, serverIP, 443, netgen.ProtoTCP, false, 6)
	res := a.Result()
	if res.Events != 3 {
		t.Fatalf("events = %d", res.Events)
	}
	if res.AllPkts[0] != 3 || res.AllPkts[1] != 6 || res.AllPkts[2] != 9 {
		t.Fatalf("not sorted: %v", res.AllPkts)
	}
	if len(res.DroppedPkts) != 0 {
		t.Fatalf("dropped = %v", res.DroppedPkts)
	}
}

func TestServersWithoutTopPortsIgnored(t *testing.T) {
	a := New([]hosts.Profile{{IP: serverIP, Kind: hosts.KindServer}})
	if a.Servers() != 0 {
		t.Fatal("top-port-less server registered")
	}
}
