package collateral

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
)

// Snapshot codec versions of the two collateral operators.
const (
	aggWireVersion     = 1
	pendingWireVersion = 1
)

// MarshalBinary encodes the aggregator canonically: the server top-port
// sets sorted by IP (ports ascending), then the per-event tallies sorted
// by event ID.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(aggWireVersion)
	ips := make([]uint32, 0, len(a.topPorts))
	for ip := range a.topPorts {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	w.Uvarint(uint64(len(ips)))
	for _, ip := range ips {
		set := a.topPorts[ip]
		ports := make([]uint32, 0, len(set))
		for p := range set {
			ports = append(ports, p)
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		w.Uvarint(uint64(ip))
		w.Uvarint(uint64(len(ports)))
		for _, p := range ports {
			w.Uvarint(uint64(p))
		}
	}
	ids := make([]int, 0, len(a.perEvent))
	for id := range a.perEvent {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		c := a.perEvent[id]
		w.Uvarint(uint64(id))
		w.Varint(c.all)
		w.Varint(c.dropped)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded
// snapshot. On error the aggregator is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(aggWireVersion)
	nServers := r.Count(2)
	topPorts := make(map[uint32]map[uint32]bool, nServers)
	for i := 0; i < nServers; i++ {
		ip := r.U32()
		nPorts := r.Count(1)
		set := make(map[uint32]bool, nPorts)
		for j := 0; j < nPorts; j++ {
			set[r.U32()] = true
		}
		if r.Err() != nil {
			break
		}
		topPorts[ip] = set
	}
	nEvents := r.Count(3)
	perEvent := make(map[int]*counts, nEvents)
	for i := 0; i < nEvents; i++ {
		id := r.Int()
		perEvent[id] = &counts{all: r.Varint(), dropped: r.Varint()}
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("collateral: %w", err)
	}
	a.topPorts = topPorts
	a.perEvent = perEvent
	return nil
}

// MarshalBinary encodes the pending store canonically: cells sorted by
// (event ID, destination, port key) — the packed inner key sorts
// exactly by (destination, port key), so the byte stream is unchanged
// from the flat-keyed encoding.
func (p *Pending) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(pendingWireVersion)
	ids := make([]int, 0, len(p.cells))
	for id := range p.cells {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uvarint(uint64(p.n))
	var inner []uint64
	for _, id := range ids {
		cells := p.cells[id]
		inner = inner[:0]
		for k := range cells {
			inner = append(inner, k)
		}
		sort.Slice(inner, func(i, j int) bool { return inner[i] < inner[j] })
		for _, k := range inner {
			c := cells[k]
			w.Uvarint(uint64(id))
			w.Uvarint(uint64(uint32(k >> 32)))
			w.Uvarint(uint64(uint32(k & 0xffffffff)))
			w.Varint(c.all)
			w.Varint(c.dropped)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the pending store's state with the decoded
// snapshot. On error the store is left unchanged.
func (p *Pending) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(pendingWireVersion)
	n := r.Count(5)
	cells := make(map[int]map[uint64]*counts)
	for i := 0; i < n; i++ {
		id := r.Int()
		dstIP := r.U32()
		portKey := r.U32()
		c := &counts{all: r.Varint(), dropped: r.Varint()}
		if r.Err() != nil {
			break
		}
		inner := cells[id]
		if inner == nil {
			inner = make(map[uint64]*counts)
			cells[id] = inner
		}
		inner[uint64(dstIP)<<32|uint64(portKey)] = c
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("collateral: pending: %w", err)
	}
	p.cells = cells
	p.n = n
	p.lastInner = nil
	return nil
}

// RemapEvents rewrites the cell keys through m (old event ID -> new
// ID), summing cells that land on the same new key. Every present event
// must be mapped.
func (p *Pending) RemapEvents(m map[int]int) error {
	out := make(map[int]map[uint64]*counts, len(p.cells))
	n := 0
	for id, inner := range p.cells {
		nid, ok := m[id]
		if !ok {
			return fmt.Errorf("collateral: pending: no mapping for event %d", id)
		}
		dst := out[nid]
		if dst == nil {
			out[nid] = inner
			n += len(inner)
			continue
		}
		for k, c := range inner {
			if cur := dst[k]; cur != nil {
				cur.all += c.all
				cur.dropped += c.dropped
			} else {
				dst[k] = c
				n++
			}
		}
	}
	p.cells = out
	p.n = n
	p.lastInner = nil
	return nil
}
