package analysis_test

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/collateral"
	"repro/internal/analysis/dropstats"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/mitigation"
	"repro/internal/analysis/protomix"
	"repro/internal/analysis/timealign"
	"repro/internal/bgp"
	"repro/internal/detect"
)

// The operator-contract conformance suite. Every registered operator
// (the analysis.Operator implementations the pipeline composes) must
// satisfy four properties the engine relies on:
//
//	(a) merging over any split of the observation stream produces the
//	    same state as a sequential pass (parallel shards, federation);
//	(b) Merge is associative across three-way splits (merge trees);
//	(c) Snapshot is a deep copy — neither side sees the other's
//	    subsequent observations (copy-on-snapshot in the online path);
//	(d) the wire codec round-trips: Marshal → Unmarshal → Marshal is
//	    byte-identical (federation snapshots are state fingerprints).
//
// State equality is compared through MarshalBinary, whose canonical
// (sorted) encodings are exactly the fingerprint property (d) asserts.

// handle wraps one operator instance behind the uniform surface the
// conformance properties drive. self holds the concrete aggregator for
// the merge type assertion.
type handle struct {
	self      any
	feed      func(i int)
	merge     func(o *handle)
	snapshot  func() *handle
	marshal   func() ([]byte, error)
	unmarshal func(data []byte) (*handle, error)
}

// operatorCase is one registered operator plus its deterministic
// observation stream. Stream lengths stay well below every bounded
// structure's capacity (BoundedSet, TopCounter, the per-event AS caps),
// where the aggregates are exact and split-invariant.
type operatorCase struct {
	name   string
	stream int
	fresh  func() *handle
}

func conformanceBase() time.Time {
	return time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
}

// conformanceIndex builds a small event structure for the operators
// that attribute against one: two prefixes, three episodes.
func conformanceIndex() (*events.Index, time.Time) {
	base := conformanceBase()
	end := base.Add(48 * time.Hour)
	p24 := bgp.MakePrefix(0x0a000000, 24) // 10.0.0.0/24
	p32 := bgp.MakePrefix(0x0a000007, 32) // 10.0.0.7/32
	ups := []analysis.ControlUpdate{
		{Time: base.Add(1 * time.Hour), Peer: 65001, Prefix: p24, Announce: true, OriginAS: 65100},
		{Time: base.Add(2 * time.Hour), Peer: 65001, Prefix: p24, Announce: false, OriginAS: 65100},
		{Time: base.Add(3 * time.Hour), Peer: 65001, Prefix: p32, Announce: true, OriginAS: 65100},
		{Time: base.Add(4 * time.Hour), Peer: 65001, Prefix: p32, Announce: false, OriginAS: 65100},
		{Time: base.Add(30 * time.Hour), Peer: 65002, Prefix: p32, Announce: true, OriginAS: 65101},
		{Time: base.Add(31 * time.Hour), Peer: 65002, Prefix: p32, Announce: false, OriginAS: 65101},
	}
	analysis.SortUpdates(ups)
	evs := events.Merge(ups, events.DefaultDelta, end)
	return events.NewIndex(evs, end), end
}

func dropstatsCase() operatorCase {
	var wrap func(a *dropstats.Aggregator) *handle
	wrap = func(a *dropstats.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			a.Add(i%5, uint8(22+i%11), uint32(64500+i%4), i%3 == 0, int64(1+i%4), int64(40+16*(i%7)))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*dropstats.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := dropstats.New()
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "dropstats", stream: 64, fresh: func() *handle { return wrap(dropstats.New()) }}
}

func anomalyCase() operatorCase {
	base := conformanceBase()
	var wrap func(a *anomaly.Aggregator) *handle
	wrap = func(a *anomaly.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			prefix := bgp.MakePrefix(0x0a000000+uint32(i%2)<<8, 24)
			t := base.Add(time.Duration(i%9) * 5 * time.Minute)
			a.Add(prefix, t, 0xc0a80000+uint32(i%6), uint16(1024+i), uint16(i%5), uint8(6+11*(i%2)), int64(1+i%3))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*anomaly.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := anomaly.New()
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "anomaly", stream: 48, fresh: func() *handle { return wrap(anomaly.New()) }}
}

func protomixCase() operatorCase {
	var wrap func(a *protomix.Aggregator) *handle
	wrap = func(a *protomix.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			proto := []uint8{6, 17, 1, 17}[i%4]
			srcPort := uint16([]int{123, 53, 80, 11211}[i%4])
			a.Add(i%4, proto, 0xac100000+uint32(i%8), srcPort, int64(1+i%5), uint32(65100+i%3), uint32(64500+i%3))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*protomix.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := protomix.New()
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "protomix", stream: 56, fresh: func() *handle { return wrap(protomix.New()) }}
}

func hostsCase() operatorCase {
	var wrap func(a *hosts.Aggregator) *handle
	wrap = func(a *hosts.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			ip := 0x0a000001 + uint32(i%3)
			day := int32(i % 23)
			if i%2 == 0 {
				a.AddIncoming(ip, day, uint16(40000+i%9), uint16(443+i%3), 6, int64(1+i%2))
			} else {
				a.AddOutgoing(ip, day, uint16(443+i%3), uint16(50000+i%9), 6, 1)
			}
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*hosts.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := hosts.New()
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "hosts", stream: 72, fresh: func() *handle { return wrap(hosts.New()) }}
}

func timealignCase() operatorCase {
	ix, _ := conformanceIndex()
	base := conformanceBase()
	var wrap func(a *timealign.Aggregator) *handle
	wrap = func(a *timealign.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			// Drops near the three episodes, some outside any episode.
			hour := []time.Duration{1, 3, 30, 10}[i%4]
			t := base.Add(hour*time.Hour + time.Duration(i%7)*13*time.Second)
			a.AddDropped(0x0a000000+uint32(i%12), t)
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*timealign.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := timealign.New(ix)
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "timealign", stream: 40, fresh: func() *handle { return wrap(timealign.New(ix)) }}
}

// conformanceProfiles is the fixed server population the collateral
// aggregator filters against.
func conformanceProfiles() []hosts.Profile {
	return []hosts.Profile{
		{IP: 0x0a000001, Kind: hosts.KindServer, TopPorts: []uint32{6<<16 | 443, 6<<16 | 80}},
		{IP: 0x0a000002, Kind: hosts.KindServer, TopPorts: []uint32{17<<16 | 53}},
		{IP: 0x0a000003, Kind: hosts.KindClient, TopPorts: []uint32{6<<16 | 443}},
	}
}

func collateralCase() operatorCase {
	var wrap func(a *collateral.Aggregator) *handle
	wrap = func(a *collateral.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			ip := 0x0a000001 + uint32(i%4)
			port := uint16([]int{443, 80, 53, 8080}[i%4])
			proto := uint8(6)
			if i%4 == 2 {
				proto = 17
			}
			a.Add(i%3, ip, port, proto, i%2 == 0, int64(1+i%3))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*collateral.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := collateral.New(nil)
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{
		name:   "collateral",
		stream: 60,
		fresh:  func() *handle { return wrap(collateral.New(conformanceProfiles())) },
	}
}

func pendingCase() operatorCase {
	var wrap func(p *collateral.Pending) *handle
	wrap = func(p *collateral.Pending) *handle {
		h := &handle{self: p}
		h.feed = func(i int) {
			p.Add(i%5, 0x0a000001+uint32(i%6), uint16(1+i%9), uint8(6+11*(i%2)), i%3 == 0, int64(1+i%4))
		}
		h.merge = func(o *handle) { p.Merge(o.self.(*collateral.Pending)) }
		h.marshal = p.MarshalBinary
		h.snapshot = func() *handle { return wrap(p.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := collateral.NewPending()
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "collateral-pending", stream: 64, fresh: func() *handle { return wrap(collateral.NewPending()) }}
}

func mitigationCase() operatorCase {
	var wrap func(a *mitigation.Aggregator) *handle
	wrap = func(a *mitigation.Aggregator) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			prefix := bgp.MakePrefix(0x0a000000+uint32(i%3)<<8, []uint8{24, 32, 25}[i%3])
			phase := mitigation.Phase(i % 2)
			// Alternate amplification source ports (NTP, DNS) with plain
			// ports so both the attack and legitimate cells fill.
			proto := []uint8{17, 17, 6, 17}[i%4]
			srcPort := uint16([]int{123, 53, 443, 40000}[i%4])
			a.Add(prefix, phase, proto, srcPort, i%3 != 0, int64(1+i%4), int64(80+120*(i%5)))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*mitigation.Aggregator)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := mitigation.New()
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "mitigation", stream: 60, fresh: func() *handle { return wrap(mitigation.New()) }}
}

func detectRateCase() operatorCase {
	base := conformanceBase()
	// Geometry matching the detector defaults at a smaller horizon; the
	// stream spans more than the horizon so eviction is part of the
	// conformance surface.
	const slot, retention = time.Minute, 40 * time.Minute
	var wrap func(a *detect.Rate) *handle
	wrap = func(a *detect.Rate) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			t := base.Add(time.Duration(i%60)*time.Minute + time.Duration(i%5)*11*time.Second)
			a.Observe(0x0a000001+uint32(i%4), t, int64(1+i%4), int64(64+100*(i%6)))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*detect.Rate)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := detect.NewRate(slot, retention)
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "detect-rate", stream: 64, fresh: func() *handle {
		return wrap(detect.NewRate(slot, retention))
	}}
}

func detectVectorsCase() operatorCase {
	base := conformanceBase()
	const slot, retention = time.Minute, 40 * time.Minute
	var wrap func(a *detect.Vectors) *handle
	wrap = func(a *detect.Vectors) *handle {
		h := &handle{self: a}
		h.feed = func(i int) {
			t := base.Add(time.Duration(i%60) * time.Minute)
			proto := []uint8{17, 17, 6, 17}[i%4]
			port := uint16([]int{123, 11211, 80, 53}[i%4])
			a.Observe(0x0a000001+uint32(i%4), t, proto, port, int64(1+i%3))
		}
		h.merge = func(o *handle) { a.Merge(o.self.(*detect.Vectors)) }
		h.marshal = a.MarshalBinary
		h.snapshot = func() *handle { return wrap(a.Snapshot()) }
		h.unmarshal = func(data []byte) (*handle, error) {
			d := detect.NewVectors(slot, retention)
			if err := d.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return wrap(d), nil
		}
		return h
	}
	return operatorCase{name: "detect-vectors", stream: 56, fresh: func() *handle {
		return wrap(detect.NewVectors(slot, retention))
	}}
}

func operatorCases() []operatorCase {
	return []operatorCase{
		dropstatsCase(),
		anomalyCase(),
		protomixCase(),
		hostsCase(),
		timealignCase(),
		collateralCase(),
		pendingCase(),
		mitigationCase(),
		detectRateCase(),
		detectVectorsCase(),
	}
}

func mustMarshal(t *testing.T, h *handle) []byte {
	t.Helper()
	data, err := h.marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// feedRange feeds observations [lo, hi) of the deterministic stream.
func feedRange(h *handle, lo, hi int) {
	for i := lo; i < hi; i++ {
		h.feed(i)
	}
}

// TestOperatorMergeSplitParity: property (a). testing/quick draws the
// split points; every split of the stream, merged, must fingerprint
// identically to the sequential pass.
func TestOperatorMergeSplitParity(t *testing.T) {
	for _, c := range operatorCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := c.fresh()
			feedRange(seq, 0, c.stream)
			want := mustMarshal(t, seq)

			prop := func(split uint16) bool {
				k := int(split) % (c.stream + 1)
				a, b := c.fresh(), c.fresh()
				feedRange(a, 0, k)
				feedRange(b, k, c.stream)
				a.merge(b)
				got, err := a.marshal()
				return err == nil && bytes.Equal(got, want)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Errorf("split merge diverges from sequential: %v", err)
			}
		})
	}
}

// TestOperatorMergeAssociativity: property (b). For quick-drawn cut
// points i <= j, ((P1+P2)+P3) and (P1+(P2+P3)) must both fingerprint
// identically to the sequential pass.
func TestOperatorMergeAssociativity(t *testing.T) {
	for _, c := range operatorCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := c.fresh()
			feedRange(seq, 0, c.stream)
			want := mustMarshal(t, seq)

			parts := func(i, j int) (*handle, *handle, *handle) {
				p1, p2, p3 := c.fresh(), c.fresh(), c.fresh()
				feedRange(p1, 0, i)
				feedRange(p2, i, j)
				feedRange(p3, j, c.stream)
				return p1, p2, p3
			}
			prop := func(x, y uint16) bool {
				i := int(x) % (c.stream + 1)
				j := i + int(y)%(c.stream-i+1)

				l1, l2, l3 := parts(i, j)
				l1.merge(l2)
				l1.merge(l3)
				left, err := l1.marshal()
				if err != nil || !bytes.Equal(left, want) {
					return false
				}
				r1, r2, r3 := parts(i, j)
				r2.merge(r3)
				r1.merge(r2)
				right, err := r1.marshal()
				return err == nil && bytes.Equal(right, want)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Errorf("three-way merge not associative: %v", err)
			}
		})
	}
}

// TestOperatorSnapshotIsolation: property (c). A snapshot taken halfway
// must be unaffected by further observations on the original, and
// observations on the snapshot must not leak back.
func TestOperatorSnapshotIsolation(t *testing.T) {
	for _, c := range operatorCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			half := c.stream / 2

			a := c.fresh()
			feedRange(a, 0, half)
			atHalf := mustMarshal(t, a)

			snap := a.snapshot()
			if got := mustMarshal(t, snap); !bytes.Equal(got, atHalf) {
				t.Fatal("snapshot does not fingerprint like its origin")
			}
			feedRange(a, half, c.stream)
			if got := mustMarshal(t, snap); !bytes.Equal(got, atHalf) {
				t.Error("observations on the original leaked into the snapshot")
			}

			b := c.fresh()
			feedRange(b, 0, half)
			keep := b.snapshot()
			feedRange(b, half, c.stream) // mutate through the snapshot's sibling
			full := mustMarshal(t, b)
			feedRange(keep, half, c.stream)
			if got := mustMarshal(t, keep); !bytes.Equal(got, full) {
				t.Error("snapshot fed the remaining stream diverges from the sequential pass")
			}
			seq := c.fresh()
			feedRange(seq, 0, c.stream)
			if got := mustMarshal(t, seq); !bytes.Equal(got, full) {
				t.Error("original diverged after its snapshot observed independently")
			}
		})
	}
}

// TestOperatorWireRoundTrip: property (d). Marshal → Unmarshal →
// Marshal must be a byte-level fixed point, and the decoded state must
// snapshot into the same fingerprint.
func TestOperatorWireRoundTrip(t *testing.T) {
	for _, c := range operatorCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, n := range []int{0, 1, c.stream / 2, c.stream} {
				a := c.fresh()
				feedRange(a, 0, n)
				data := mustMarshal(t, a)

				dec, err := a.unmarshal(data)
				if err != nil {
					t.Fatalf("unmarshal after %d observations: %v", n, err)
				}
				if got := mustMarshal(t, dec); !bytes.Equal(got, data) {
					t.Errorf("re-marshal after %d observations is not a fixed point", n)
				}
				if snap := dec.snapshot(); snap != nil {
					if got := mustMarshal(t, snap); !bytes.Equal(got, data) {
						t.Errorf("decoded snapshot after %d observations diverges", n)
					}
				}
			}

			// Corrupt inputs must error, never panic: truncations of a
			// valid encoding and a version bump.
			a := c.fresh()
			feedRange(a, 0, c.stream)
			data := mustMarshal(t, a)
			for cut := 0; cut < len(data); cut++ {
				if _, err := a.unmarshal(data[:cut]); err == nil {
					t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(data))
				}
			}
			bumped := append([]byte(nil), data...)
			bumped[0]++
			if _, err := a.unmarshal(bumped); err == nil {
				t.Error("future codec version decoded without error")
			}
		})
	}
}
