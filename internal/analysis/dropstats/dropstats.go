// Package dropstats measures how effectively announced blackholes
// actually discard traffic (paper §4.2, Figs 5-8): drop rates by prefix
// length, the per-blackhole drop-rate distribution, and the behaviour of
// the top traffic sources toward host (/32) blackholes.
//
// The aggregator consumes records that fall inside *active* blackhole
// episodes (announced and not withdrawn); the caller performs that
// attribution. Dropped means the record's destination MAC was the
// blackhole MAC.
package dropstats

import (
	"sort"

	"repro/internal/peeringdb"
	"repro/internal/stats"
)

// Counter is a dropped/forwarded tally.
type Counter struct {
	DroppedPkts, ForwardedPkts   int64
	DroppedBytes, ForwardedBytes int64
}

// TotalPkts returns dropped plus forwarded packets.
func (c *Counter) TotalPkts() int64 { return c.DroppedPkts + c.ForwardedPkts }

// TotalBytes returns dropped plus forwarded bytes.
func (c *Counter) TotalBytes() int64 { return c.DroppedBytes + c.ForwardedBytes }

// DropRatePkts returns the packet drop share (0 when no traffic).
func (c *Counter) DropRatePkts() float64 {
	t := c.TotalPkts()
	if t == 0 {
		return 0
	}
	return float64(c.DroppedPkts) / float64(t)
}

// DropRateBytes returns the byte drop share (0 when no traffic).
func (c *Counter) DropRateBytes() float64 {
	t := c.TotalBytes()
	if t == 0 {
		return 0
	}
	return float64(c.DroppedBytes) / float64(t)
}

func (c *Counter) merge(o *Counter) {
	c.DroppedPkts += o.DroppedPkts
	c.ForwardedPkts += o.ForwardedPkts
	c.DroppedBytes += o.DroppedBytes
	c.ForwardedBytes += o.ForwardedBytes
}

func (c *Counter) add(dropped bool, pkts, bytes int64) {
	if dropped {
		c.DroppedPkts += pkts
		c.DroppedBytes += bytes
	} else {
		c.ForwardedPkts += pkts
		c.ForwardedBytes += bytes
	}
}

// Aggregator accumulates drop statistics from the streaming pass.
type Aggregator struct {
	byLen    [33]Counter
	byEvent  map[int]*eventCounter
	bySource map[uint32]*Counter // ingress member -> /32 counter

	// Run memos: attributed records arrive in long runs sharing the
	// event and ingress member, so the map probes resolve once per run.
	lastEventID int
	lastEvent   *eventCounter
	lastMember  uint32
	lastSource  *Counter
}

type eventCounter struct {
	prefixLen uint8
	c         Counter
}

// New returns an empty aggregator.
func New() *Aggregator {
	return &Aggregator{
		byEvent:  make(map[int]*eventCounter),
		bySource: make(map[uint32]*Counter),
	}
}

// Add records one sampled packet observed while a blackhole of the given
// prefix length was active for its destination. srcMember is the ingress
// (handover) member; eventID attributes the sample to a merged RTBH event.
func (a *Aggregator) Add(eventID int, prefixLen uint8, srcMember uint32, dropped bool, pkts, bytes int64) {
	if prefixLen > 32 {
		return
	}
	a.byLen[prefixLen].add(dropped, pkts, bytes)

	ec := a.lastEvent
	if ec == nil || a.lastEventID != eventID {
		ec = a.byEvent[eventID]
		if ec == nil {
			ec = &eventCounter{prefixLen: prefixLen}
			a.byEvent[eventID] = ec
		}
		a.lastEventID, a.lastEvent = eventID, ec
	}
	ec.c.add(dropped, pkts, bytes)

	if prefixLen == 32 && srcMember != 0 {
		sc := a.lastSource
		if sc == nil || a.lastMember != srcMember {
			sc = a.bySource[srcMember]
			if sc == nil {
				sc = &Counter{}
				a.bySource[srcMember] = sc
			}
			a.lastMember, a.lastSource = srcMember, sc
		}
		sc.add(dropped, pkts, bytes)
	}
}

// Merge folds o's tallies into a; counters are summed, per-event and
// per-source maps union-merged. Merging is commutative and associative,
// so shard aggregators combine into the exact state a single sequential
// aggregator would hold. o must not be used afterwards: a may adopt its
// internal structures.
func (a *Aggregator) Merge(o *Aggregator) {
	for l := range o.byLen {
		a.byLen[l].merge(&o.byLen[l])
	}
	for id, oc := range o.byEvent {
		if ec := a.byEvent[id]; ec != nil {
			ec.c.merge(&oc.c)
		} else {
			a.byEvent[id] = oc
		}
	}
	for m, oc := range o.bySource {
		if sc := a.bySource[m]; sc != nil {
			sc.merge(oc)
		} else {
			a.bySource[m] = oc
		}
	}
	// Adoption may have replaced memoized entries.
	a.lastEvent, a.lastSource = nil, nil
}

// Snapshot returns an independent deep copy of the aggregator; further
// Adds on either side do not affect the other (Operator contract in
// internal/analysis).
func (a *Aggregator) Snapshot() *Aggregator {
	s := New()
	s.byLen = a.byLen
	for id, ec := range a.byEvent {
		cp := *ec
		s.byEvent[id] = &cp
	}
	for m, c := range a.bySource {
		cp := *c
		s.bySource[m] = &cp
	}
	return s
}

// LengthStat is one row of Fig 5.
type LengthStat struct {
	PrefixLen uint8
	Counter
	// TrafficSharePkts is this length's share of all blackhole traffic
	// (the opacity dimension of Fig 5).
	TrafficSharePkts float64
}

// ByLength returns the Fig 5 rows for lengths with any traffic, ascending.
func (a *Aggregator) ByLength() []LengthStat {
	var total int64
	for l := range a.byLen {
		total += a.byLen[l].TotalPkts()
	}
	var out []LengthStat
	for l := range a.byLen {
		c := a.byLen[l]
		if c.TotalPkts() == 0 {
			continue
		}
		s := LengthStat{PrefixLen: uint8(l), Counter: c}
		if total > 0 {
			s.TrafficSharePkts = float64(c.TotalPkts()) / float64(total)
		}
		out = append(out, s)
	}
	return out
}

// AverageDropRate returns the packet and byte drop shares across all
// blackholed traffic (the dashed lines of Fig 5).
func (a *Aggregator) AverageDropRate() (pkts, bytes float64) {
	var c Counter
	for l := range a.byLen {
		c.DroppedPkts += a.byLen[l].DroppedPkts
		c.ForwardedPkts += a.byLen[l].ForwardedPkts
		c.DroppedBytes += a.byLen[l].DroppedBytes
		c.ForwardedBytes += a.byLen[l].ForwardedBytes
	}
	return c.DropRatePkts(), c.DropRateBytes()
}

// DropRateCDF returns the per-event packet drop rates for blackholes of
// the given prefix length (Fig 6), sorted ascending. Events with fewer
// than minPkts samples are skipped to avoid quantizing the CDF at tiny
// denominators.
func (a *Aggregator) DropRateCDF(prefixLen uint8, minPkts int64) *stats.ECDF {
	var rates []float64
	for _, ec := range a.byEvent {
		if ec.prefixLen != prefixLen || ec.c.TotalPkts() < minPkts {
			continue
		}
		rates = append(rates, ec.c.DropRatePkts())
	}
	return stats.NewECDF(rates)
}

// SourceBehaviour is one row of Fig 7: a traffic source's reaction to /32
// blackhole routes.
type SourceBehaviour struct {
	Member uint32
	Counter
}

// TopSources returns the n members contributing the most traffic toward
// /32 blackholes, ordered by total packets descending (Fig 7).
func (a *Aggregator) TopSources(n int) []SourceBehaviour {
	out := make([]SourceBehaviour, 0, len(a.bySource))
	for m, c := range a.bySource {
		out = append(out, SourceBehaviour{Member: m, Counter: *c})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].TotalPkts(), out[j].TotalPkts()
		if ti != tj {
			return ti > tj
		}
		return out[i].Member < out[j].Member
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// SourceClasses summarizes Fig 7's headline: of the top n sources, how
// many drop >99% (acceptors), forward >99% (rejectors), and behave
// inconsistently.
type SourceClasses struct {
	Acceptors, Rejectors, Inconsistent int
	// TopShare is the share of all /32-blackhole traffic the top n carry.
	TopShare float64
}

// ClassifyTopSources computes the Fig 7 summary over the top n sources.
func (a *Aggregator) ClassifyTopSources(n int) SourceClasses {
	top := a.TopSources(n)
	var res SourceClasses
	var topPkts, allPkts int64
	for _, c := range a.bySource {
		allPkts += c.TotalPkts()
	}
	for _, s := range top {
		topPkts += s.TotalPkts()
		switch r := s.DropRatePkts(); {
		case r > 0.99:
			res.Acceptors++
		case r < 0.01:
			res.Rejectors++
		default:
			res.Inconsistent++
		}
	}
	if allPkts > 0 {
		res.TopShare = float64(topPkts) / float64(allPkts)
	}
	return res
}

// TopSourceTypes returns the PeeringDB organization-type distribution of
// the top n sources (Fig 8), split by acceptance behaviour.
type TopSourceTypes struct {
	// All counts all top-n sources by type; NonAcceptors counts only
	// those dropping less than 99%.
	All          map[peeringdb.OrgType]int
	NonAcceptors map[peeringdb.OrgType]int
}

// TypesOfTopSources joins the top sources against the registry.
func (a *Aggregator) TypesOfTopSources(n int, pdb *peeringdb.Registry) TopSourceTypes {
	res := TopSourceTypes{
		All:          make(map[peeringdb.OrgType]int),
		NonAcceptors: make(map[peeringdb.OrgType]int),
	}
	for _, s := range a.TopSources(n) {
		typ := pdb.TypeOf(s.Member)
		res.All[typ]++
		if s.DropRatePkts() <= 0.99 {
			res.NonAcceptors[typ]++
		}
	}
	return res
}

// Events returns the number of events with attributed traffic.
func (a *Aggregator) Events() int { return len(a.byEvent) }

// Totals returns the summed dropped/forwarded tallies across all prefix
// lengths — the numbers a metrics snapshot reconciles against the Fig 5
// rows (ByLength sums to exactly these counters).
func (a *Aggregator) Totals() Counter {
	var c Counter
	for l := range a.byLen {
		c.merge(&a.byLen[l])
	}
	return c
}
