package dropstats

import (
	"math"
	"testing"

	"repro/internal/peeringdb"
)

func TestCounterRates(t *testing.T) {
	c := Counter{DroppedPkts: 30, ForwardedPkts: 70, DroppedBytes: 440, ForwardedBytes: 560}
	if r := c.DropRatePkts(); math.Abs(r-0.3) > 1e-12 {
		t.Fatalf("pkt rate = %v", r)
	}
	if r := c.DropRateBytes(); math.Abs(r-0.44) > 1e-12 {
		t.Fatalf("byte rate = %v", r)
	}
	var empty Counter
	if empty.DropRatePkts() != 0 || empty.DropRateBytes() != 0 {
		t.Fatal("empty counter rates nonzero")
	}
}

func TestByLengthAndAverages(t *testing.T) {
	a := New()
	// /32: half dropped. /24: all dropped.
	for i := 0; i < 50; i++ {
		a.Add(1, 32, 100, true, 1, 500)
		a.Add(1, 32, 100, false, 1, 500)
	}
	for i := 0; i < 10; i++ {
		a.Add(2, 24, 100, true, 1, 500)
	}
	rows := a.ByLength()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PrefixLen != 24 || rows[0].DropRatePkts() != 1 {
		t.Fatalf("row /24 = %+v", rows[0])
	}
	if rows[1].PrefixLen != 32 || math.Abs(rows[1].DropRatePkts()-0.5) > 1e-12 {
		t.Fatalf("row /32 = %+v", rows[1])
	}
	// /32 carries 100/110 of the traffic.
	if math.Abs(rows[1].TrafficSharePkts-100.0/110) > 1e-12 {
		t.Fatalf("share = %v", rows[1].TrafficSharePkts)
	}
	p, b := a.AverageDropRate()
	if math.Abs(p-60.0/110) > 1e-12 || math.Abs(b-60.0/110) > 1e-12 {
		t.Fatalf("averages = %v %v", p, b)
	}
}

func TestDropRateCDFPerEvent(t *testing.T) {
	a := New()
	// Three /32 events with drop rates 0, 0.5, 1.
	for i := 0; i < 10; i++ {
		a.Add(1, 32, 100, false, 1, 100)
		a.Add(2, 32, 100, i%2 == 0, 1, 100)
		a.Add(3, 32, 100, true, 1, 100)
	}
	// One tiny event excluded by minPkts.
	a.Add(4, 32, 100, true, 1, 100)

	cdf := a.DropRateCDF(32, 5)
	if cdf.Len() != 3 {
		t.Fatalf("CDF size = %d, want 3", cdf.Len())
	}
	if med := cdf.Quantile(0.5); math.Abs(med-0.5) > 1e-12 {
		t.Fatalf("median = %v", med)
	}
	if a.DropRateCDF(24, 1).Len() != 0 {
		t.Fatal("/24 CDF should be empty")
	}
	if a.Events() != 4 {
		t.Fatalf("events = %d", a.Events())
	}
}

func TestTopSourcesOrderingAndClasses(t *testing.T) {
	a := New()
	// Member 100: acceptor (drops all), heavy.
	for i := 0; i < 1000; i++ {
		a.Add(1, 32, 100, true, 1, 100)
	}
	// Member 200: rejector, medium.
	for i := 0; i < 500; i++ {
		a.Add(1, 32, 200, false, 1, 100)
	}
	// Member 300: inconsistent 50/50, light.
	for i := 0; i < 100; i++ {
		a.Add(1, 32, 300, i%2 == 0, 1, 100)
	}
	// Non-/32 traffic must not appear in source stats.
	a.Add(2, 24, 400, true, 100000, 100)

	top := a.TopSources(10)
	if len(top) != 3 {
		t.Fatalf("sources = %d", len(top))
	}
	if top[0].Member != 100 || top[1].Member != 200 || top[2].Member != 300 {
		t.Fatalf("order = %v", top)
	}
	cls := a.ClassifyTopSources(10)
	if cls.Acceptors != 1 || cls.Rejectors != 1 || cls.Inconsistent != 1 {
		t.Fatalf("classes = %+v", cls)
	}
	if cls.TopShare != 1 {
		t.Fatalf("top share = %v", cls.TopShare)
	}
	// Top-2 only.
	top = a.TopSources(2)
	if len(top) != 2 {
		t.Fatalf("top-2 = %d", len(top))
	}
}

func TestTypesOfTopSources(t *testing.T) {
	a := New()
	for i := 0; i < 10; i++ {
		a.Add(1, 32, 100, false, 1, 100) // NSP rejector
		a.Add(1, 32, 200, true, 1, 100)  // Content acceptor
	}
	pdb := peeringdb.New()
	pdb.Add(peeringdb.Network{ASN: 100, Type: peeringdb.TypeNSP})
	pdb.Add(peeringdb.Network{ASN: 200, Type: peeringdb.TypeContent})

	tt := a.TypesOfTopSources(10, pdb)
	if tt.All[peeringdb.TypeNSP] != 1 || tt.All[peeringdb.TypeContent] != 1 {
		t.Fatalf("all = %v", tt.All)
	}
	if tt.NonAcceptors[peeringdb.TypeNSP] != 1 || tt.NonAcceptors[peeringdb.TypeContent] != 0 {
		t.Fatalf("non-acceptors = %v", tt.NonAcceptors)
	}
}

func TestAddIgnoresInvalidLength(t *testing.T) {
	a := New()
	a.Add(1, 40, 100, true, 1, 1)
	if len(a.ByLength()) != 0 {
		t.Fatal("invalid length recorded")
	}
}
