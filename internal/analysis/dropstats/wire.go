package dropstats

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
)

// wireVersion is the dropstats snapshot codec version.
const wireVersion = 1

func encodeCounter(w *analysis.WireWriter, c *Counter) {
	w.Varint(c.DroppedPkts)
	w.Varint(c.ForwardedPkts)
	w.Varint(c.DroppedBytes)
	w.Varint(c.ForwardedBytes)
}

func decodeCounter(r *analysis.WireReader, c *Counter) {
	c.DroppedPkts = r.Varint()
	c.ForwardedPkts = r.Varint()
	c.DroppedBytes = r.Varint()
	c.ForwardedBytes = r.Varint()
}

// MarshalBinary encodes the aggregator canonically: the per-length
// table, then the per-event counters sorted by event ID, then the
// per-source counters sorted by member ASN.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(wireVersion)
	for l := range a.byLen {
		encodeCounter(w, &a.byLen[l])
	}
	ids := make([]int, 0, len(a.byEvent))
	for id := range a.byEvent {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		ec := a.byEvent[id]
		w.Uvarint(uint64(id))
		w.Byte(ec.prefixLen)
		encodeCounter(w, &ec.c)
	}
	members := make([]uint32, 0, len(a.bySource))
	for m := range a.bySource {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	w.Uvarint(uint64(len(members)))
	for _, m := range members {
		w.Uvarint(uint64(m))
		encodeCounter(w, a.bySource[m])
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded
// snapshot. On error the aggregator is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(wireVersion)
	var byLen [33]Counter
	for l := range byLen {
		decodeCounter(r, &byLen[l])
	}
	nEv := r.Count(6) // id + prefixLen + four counters
	byEvent := make(map[int]*eventCounter, nEv)
	for i := 0; i < nEv; i++ {
		id := r.Int()
		ec := &eventCounter{prefixLen: r.Byte()}
		decodeCounter(r, &ec.c)
		byEvent[id] = ec
	}
	nSrc := r.Count(5) // member + four counters
	bySource := make(map[uint32]*Counter, nSrc)
	for i := 0; i < nSrc; i++ {
		m := r.U32()
		c := &Counter{}
		decodeCounter(r, c)
		bySource[m] = c
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("dropstats: %w", err)
	}
	a.byLen = byLen
	a.byEvent = byEvent
	a.bySource = bySource
	return nil
}

// RemapEvents rewrites the per-event keys through m (old ID -> new ID),
// summing counters that land on the same new ID. Every present event
// must be mapped; a missing mapping is an error because keeping a stale
// ID could silently collide with a different event in the new space.
func (a *Aggregator) RemapEvents(m map[int]int) error {
	out := make(map[int]*eventCounter, len(a.byEvent))
	for id, ec := range a.byEvent {
		nid, ok := m[id]
		if !ok {
			return fmt.Errorf("dropstats: no mapping for event %d", id)
		}
		if cur := out[nid]; cur != nil {
			cur.c.merge(&ec.c)
		} else {
			out[nid] = ec
		}
	}
	a.byEvent = out
	return nil
}

// EventStat is one event's drop tally, exposed for the federation's
// cross-IXP views and, via Report.EventDrops, for the looking-glass
// serving layer's per-event efficacy view.
type EventStat struct {
	ID        int
	PrefixLen uint8
	Counter
}

// EventStats returns the per-event counters sorted by event ID.
func (a *Aggregator) EventStats() []EventStat {
	out := make([]EventStat, 0, len(a.byEvent))
	for id, ec := range a.byEvent {
		out = append(out, EventStat{ID: id, PrefixLen: ec.prefixLen, Counter: ec.c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
