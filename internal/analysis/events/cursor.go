package events

import (
	"time"

	"repro/internal/bgp"
)

// Candidate is one blackhole prefix covering a cursor's current address
// together with its start-sorted merged-event list. Candidates are held
// longest prefix first — the order the Index methods scan in.
type Candidate struct {
	Prefix bgp.Prefix
	Events []*Event
	// spans carries the same events with nanosecond-resolved bounds for
	// the cursor's time-dependent scans.
	spans []eventSpan
}

// Cursor is a single-address memo over an Index. The flow stream has
// strong address locality — the records of one injected traffic batch
// arrive back to back, all sharing endpoints — so resolving the
// per-length prefix-map probes once per run of identical addresses and
// replaying the cached candidate lists for the time-dependent queries
// removes nearly all map hashing from the streaming pass. Every query
// answers exactly like the Index method of the same name: the index is
// immutable after construction, so a cached resolution can only go
// stale through Rebind, which drops the memo.
//
// A cursor is single-goroutine state; every pipeline shard owns its
// own pair (destination- and source-keyed).
type Cursor struct {
	ix    *Index
	valid bool
	ip    uint32
	cands []Candidate
}

// NewCursor returns a cursor over ix with an empty memo.
func NewCursor(ix *Index) *Cursor { return &Cursor{ix: ix} }

// Rebind points the cursor at a rebuilt index and drops the memo.
func (c *Cursor) Rebind(ix *Index) {
	c.ix = ix
	c.valid = false
}

// seek resolves the candidate lists covering ip, reusing the memo when
// the previous query asked about the same address.
func (c *Cursor) seek(ip uint32) {
	if c.valid && c.ip == ip {
		return
	}
	c.valid, c.ip = true, ip
	c.cands = c.cands[:0]
	for _, l := range c.ix.lengths {
		p := bgp.MakePrefix(ip, l)
		if lst, ok := c.ix.byPrefix[pkey(p)]; ok {
			c.cands = append(c.cands, Candidate{Prefix: p, Events: lst, spans: c.ix.spans[pkey(p)]})
		}
	}
}

// Candidates returns the blackhole prefixes covering ip, longest first,
// with their event lists. The slice is the cursor's memo: valid only
// until the next cursor call, callers must not retain or modify it.
func (c *Cursor) Candidates(ip uint32) []Candidate {
	c.seek(ip)
	return c.cands
}

// EverBlackholed answers Index.EverBlackholed through the memo.
func (c *Cursor) EverBlackholed(ip uint32) (bgp.Prefix, bool) {
	c.seek(ip)
	if len(c.cands) == 0 {
		return bgp.Prefix{}, false
	}
	return c.cands[0].Prefix, true
}

// Lookup answers Index.Lookup through the memo: the longest prefix with
// an active episode wins; otherwise the longest with a covering merged
// window.
func (c *Cursor) Lookup(ip uint32, t time.Time) Match {
	c.seek(ip)
	if len(c.cands) == 0 {
		return Match{}
	}
	tn := t.UnixNano()
	var m Match
	for i := range c.cands {
		cand := &c.cands[i]
		for j := range cand.spans {
			sp := &cand.spans[j]
			if tn < sp.start {
				break // spans sorted by start; later events start later
			}
			if tn > sp.end {
				continue
			}
			for _, ep := range sp.eps {
				if tn >= ep.ann && tn < ep.wd {
					return Match{Event: sp.ev, Active: true, Prefix: cand.Prefix}
				}
			}
			if m.Event == nil {
				m = Match{Event: sp.ev, Prefix: cand.Prefix}
			}
		}
	}
	return m
}

// Interesting answers Index.Interesting through the memo: whether (ip,
// t) falls inside any event's analysis range — the pre-window plus the
// merged event window — returning the matched (longest) prefix.
func (c *Cursor) Interesting(ip uint32, t time.Time) (bgp.Prefix, bool) {
	c.seek(ip)
	if len(c.cands) == 0 {
		return bgp.Prefix{}, false
	}
	tn := t.UnixNano()
	pre := int64(PreWindow)
	for i := range c.cands {
		cand := &c.cands[i]
		for j := range cand.spans {
			sp := &cand.spans[j]
			if tn < sp.start-pre {
				break
			}
			if tn <= sp.end {
				return cand.Prefix, true
			}
		}
	}
	return bgp.Prefix{}, false
}
