// Package events reconstructs RTBH events from the control-plane update
// stream, implementing §5.1 of the paper: consecutive announce/withdraw
// cycles of the same blackhole whose gaps do not exceed a merge threshold
// delta belong to one event (operators withdraw and re-announce blackholes
// to probe whether the attack is still ongoing, Fig 9). The package also
// provides the delta sweep behind Fig 10 and the interval index the
// data-plane pass uses to attribute flow records to events.
package events

import (
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// DefaultDelta is the merge threshold the paper settles on: 10 minutes,
// consistent with the detection-to-trigger delays reported in related
// work.
const DefaultDelta = 10 * time.Minute

// PreWindow is the look-back range searched for traffic anomalies before
// an event (§5.2: 72 hours).
const PreWindow = 72 * time.Hour

// Episode is one contiguous announce..withdraw interval. A zero Withdraw
// means the route was still active at the end of the measurement period.
type Episode struct {
	Announce time.Time
	Withdraw time.Time
}

// Event is one merged RTBH event.
type Event struct {
	ID       int
	Prefix   bgp.Prefix
	Peer     uint32
	OriginAS uint32
	Episodes []Episode
	// Announcements counts the BGP announcements merged into the event.
	Announcements int
	// Excluded is the union of peers excluded via targeting communities
	// across the event's announcements (nil when untargeted).
	Excluded map[uint32]bool
}

// Start returns the first announcement time.
func (e *Event) Start() time.Time { return e.Episodes[0].Announce }

// End returns the event's final withdraw, or periodEnd if the route was
// still active then.
func (e *Event) End(periodEnd time.Time) time.Time {
	last := e.Episodes[len(e.Episodes)-1]
	if last.Withdraw.IsZero() {
		return periodEnd
	}
	return last.Withdraw
}

// OpenEnded reports whether the route was active at the period end.
func (e *Event) OpenEnded() bool {
	return e.Episodes[len(e.Episodes)-1].Withdraw.IsZero()
}

// Duration returns End - Start.
func (e *Event) Duration(periodEnd time.Time) time.Duration {
	return e.End(periodEnd).Sub(e.Start())
}

// ActiveAt reports whether some episode covers t.
func (e *Event) ActiveAt(t time.Time, periodEnd time.Time) bool {
	for _, ep := range e.Episodes {
		wd := ep.Withdraw
		if wd.IsZero() {
			wd = periodEnd
		}
		if !t.Before(ep.Announce) && t.Before(wd) {
			return true
		}
	}
	return false
}

// streamKey identifies one operator's blackhole stream.
type streamKey struct {
	prefix bgp.Prefix
	peer   uint32
}

// Merge groups the update stream into events using merge threshold delta.
// Updates must be time-sorted (ParseMRT guarantees this). Withdrawals
// without a preceding announcement are ignored, as are repeated
// announcements of an already-active route (they refresh attributes but
// open no new episode).
func Merge(updates []analysis.ControlUpdate, delta time.Duration, periodEnd time.Time) []*Event {
	type openState struct {
		event  *Event
		lastWd time.Time // zero while the route is active
	}
	open := make(map[streamKey]*openState)
	var all []*Event

	for i := range updates {
		u := &updates[i]
		key := streamKey{prefix: u.Prefix, peer: u.Peer}
		st := open[key]

		if u.Announce {
			excl := excludedPeers(u.Communities)
			switch {
			case st == nil || (!st.lastWd.IsZero() && u.Time.Sub(st.lastWd) > delta):
				// New event (first sighting, or the gap exceeds delta).
				e := &Event{
					Prefix:        u.Prefix,
					Peer:          u.Peer,
					OriginAS:      u.OriginAS,
					Episodes:      []Episode{{Announce: u.Time}},
					Announcements: 1,
					Excluded:      excl,
				}
				all = append(all, e)
				open[key] = &openState{event: e}
			case !st.lastWd.IsZero():
				// Same event: new episode after a short gap.
				st.event.Episodes = append(st.event.Episodes, Episode{Announce: u.Time})
				st.event.Announcements++
				st.lastWd = time.Time{}
				mergeExcluded(st.event, excl)
			default:
				// Re-announcement of an active route.
				st.event.Announcements++
				mergeExcluded(st.event, excl)
			}
		} else if st != nil && st.lastWd.IsZero() {
			ep := &st.event.Episodes[len(st.event.Episodes)-1]
			ep.Withdraw = u.Time
			st.lastWd = u.Time
		}
	}

	// Stable sort over the first-announce order: appending updates to the
	// stream can only append events whose Start is at or past the previous
	// maximum timestamp, so the IDs of events that started earlier never
	// renumber as a live stream grows — the online analyzer's sealed
	// per-event aggregates rely on this (DESIGN.md, "Incremental
	// analysis").
	sort.SliceStable(all, func(i, j int) bool {
		if !all[i].Start().Equal(all[j].Start()) {
			return all[i].Start().Before(all[j].Start())
		}
		if all[i].Prefix.Addr != all[j].Prefix.Addr {
			return all[i].Prefix.Addr < all[j].Prefix.Addr
		}
		return all[i].Peer < all[j].Peer
	})
	for i, e := range all {
		e.ID = i
	}
	return all
}

func mergeExcluded(e *Event, excl map[uint32]bool) {
	if len(excl) == 0 {
		return
	}
	if e.Excluded == nil {
		e.Excluded = excl
		return
	}
	for p := range excl {
		e.Excluded[p] = true
	}
}

// excludedPeers derives the audience restriction from the targeting
// communities: 0:peer excludes a peer; allow-list mode (0:rs or rs:peer)
// is also folded into an exclusion set against the full peer population
// by the visibility analysis, which knows the population; here only the
// explicit excludes are extracted.
func excludedPeers(cs bgp.Communities) map[uint32]bool {
	var out map[uint32]bool
	for _, c := range cs {
		if c == bgp.Blackhole || c == bgp.NoExport || c == bgp.NoAdvertise {
			continue
		}
		if c.ASN() == 0 && c.Value() != 0 {
			if out == nil {
				out = make(map[uint32]bool)
			}
			out[uint32(c.Value())] = true
		}
	}
	return out
}

// SweepPoint is one result of the delta sweep behind Fig 10.
type SweepPoint struct {
	Delta time.Duration
	// Events is the number of merged events at this delta.
	Events int
	// Fraction is events divided by total RTBH announcements.
	Fraction float64
}

// Sweep evaluates Merge over the given thresholds; it also returns the
// lower bound (delta = infinity), where the event count equals the number
// of distinct blackhole streams.
func Sweep(updates []analysis.ControlUpdate, deltas []time.Duration, periodEnd time.Time) (points []SweepPoint, lowerBound float64) {
	ann := 0
	streams := make(map[streamKey]bool)
	for i := range updates {
		if updates[i].Announce {
			ann++
			streams[streamKey{prefix: updates[i].Prefix, peer: updates[i].Peer}] = true
		}
	}
	if ann == 0 {
		return nil, 0
	}
	for _, d := range deltas {
		evs := Merge(updates, d, periodEnd)
		points = append(points, SweepPoint{
			Delta:    d,
			Events:   len(evs),
			Fraction: float64(len(evs)) / float64(ann),
		})
	}
	return points, float64(len(streams)) / float64(ann)
}
