package events

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

var (
	prefixA = bgp.MustParsePrefix("203.0.113.5/32")
	prefixB = bgp.MustParsePrefix("198.51.100.0/24")
	t0      = time.Date(2018, 10, 1, 12, 0, 0, 0, time.UTC)
	pEnd    = time.Date(2019, 1, 11, 0, 0, 0, 0, time.UTC)
)

func upd(t time.Time, peer uint32, p bgp.Prefix, announce bool) analysis.ControlUpdate {
	u := analysis.ControlUpdate{Time: t, Peer: peer, Prefix: p, Announce: announce}
	if announce {
		u.OriginAS = 777
		u.Communities = bgp.Communities{bgp.Blackhole}
	}
	return u
}

func TestMergeShortGapsIntoOneEvent(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0, 100, prefixA, true),
		upd(t0.Add(5*time.Minute), 100, prefixA, false),
		upd(t0.Add(7*time.Minute), 100, prefixA, true), // 2-min gap -> same event
		upd(t0.Add(15*time.Minute), 100, prefixA, false),
	}
	evs := Merge(us, DefaultDelta, pEnd)
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if len(e.Episodes) != 2 || e.Announcements != 2 {
		t.Fatalf("episodes = %d, announcements = %d", len(e.Episodes), e.Announcements)
	}
	if !e.Start().Equal(t0) {
		t.Fatalf("start = %v", e.Start())
	}
	if !e.End(pEnd).Equal(t0.Add(15 * time.Minute)) {
		t.Fatalf("end = %v", e.End(pEnd))
	}
	if e.OpenEnded() {
		t.Fatal("event marked open-ended")
	}
	if e.OriginAS != 777 {
		t.Fatalf("origin AS = %d", e.OriginAS)
	}
}

func TestMergeLongGapSplitsEvents(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0, 100, prefixA, true),
		upd(t0.Add(5*time.Minute), 100, prefixA, false),
		upd(t0.Add(16*time.Minute), 100, prefixA, true), // 11-min gap -> new event
		upd(t0.Add(30*time.Minute), 100, prefixA, false),
	}
	evs := Merge(us, DefaultDelta, pEnd)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	// With a larger delta they merge.
	evs = Merge(us, 15*time.Minute, pEnd)
	if len(evs) != 1 {
		t.Fatalf("events at delta=15m = %d, want 1", len(evs))
	}
}

func TestMergeSeparatesPeersAndPrefixes(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0, 100, prefixA, true),
		upd(t0.Add(time.Minute), 200, prefixA, true), // other peer, same prefix
		upd(t0.Add(2*time.Minute), 100, prefixB, true),
	}
	evs := Merge(us, DefaultDelta, pEnd)
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
}

func TestMergeOpenEnded(t *testing.T) {
	us := []analysis.ControlUpdate{upd(t0, 100, prefixA, true)}
	evs := Merge(us, DefaultDelta, pEnd)
	if len(evs) != 1 || !evs[0].OpenEnded() {
		t.Fatalf("evs = %+v", evs)
	}
	if !evs[0].End(pEnd).Equal(pEnd) {
		t.Fatalf("open-ended end = %v", evs[0].End(pEnd))
	}
}

func TestMergeIgnoresOrphanWithdrawAndDupAnnounce(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0.Add(-time.Hour), 100, prefixA, false), // orphan withdraw
		upd(t0, 100, prefixA, true),
		upd(t0.Add(time.Minute), 100, prefixA, true), // refresh
		upd(t0.Add(2*time.Minute), 100, prefixA, false),
	}
	evs := Merge(us, DefaultDelta, pEnd)
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if len(evs[0].Episodes) != 1 || evs[0].Announcements != 2 {
		t.Fatalf("episodes=%d ann=%d", len(evs[0].Episodes), evs[0].Announcements)
	}
}

func TestMergeCollectsExcludedPeers(t *testing.T) {
	u := upd(t0, 100, prefixA, true)
	u.Communities = bgp.Communities{bgp.Blackhole, bgp.MakeCommunity(0, 300), bgp.MakeCommunity(0, 400)}
	evs := Merge([]analysis.ControlUpdate{u}, DefaultDelta, pEnd)
	e := evs[0]
	if len(e.Excluded) != 2 || !e.Excluded[300] || !e.Excluded[400] {
		t.Fatalf("excluded = %v", e.Excluded)
	}
}

func TestActiveAtRespectsGaps(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0, 100, prefixA, true),
		upd(t0.Add(5*time.Minute), 100, prefixA, false),
		upd(t0.Add(8*time.Minute), 100, prefixA, true),
	}
	evs := Merge(us, DefaultDelta, pEnd)
	e := evs[0]
	if !e.ActiveAt(t0.Add(2*time.Minute), pEnd) {
		t.Fatal("not active during first episode")
	}
	if e.ActiveAt(t0.Add(6*time.Minute), pEnd) {
		t.Fatal("active during the gap")
	}
	if !e.ActiveAt(t0.Add(20*time.Minute), pEnd) {
		t.Fatal("not active in open-ended tail")
	}
}

func TestSweepMonotonic(t *testing.T) {
	// An on-off stream with gaps of 1..20 minutes.
	var us []analysis.ControlUpdate
	cursor := t0
	for i := 0; i < 20; i++ {
		us = append(us, upd(cursor, 100, prefixA, true))
		cursor = cursor.Add(5 * time.Minute)
		us = append(us, upd(cursor, 100, prefixA, false))
		cursor = cursor.Add(time.Duration(i+1) * time.Minute)
	}
	deltas := []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute}
	points, lower := Sweep(us, deltas, pEnd)
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Events > points[i-1].Events {
			t.Fatalf("event count not monotone: %+v", points)
		}
	}
	// Lower bound: one stream / 20 announcements.
	if lower != 1.0/20 {
		t.Fatalf("lower bound = %v", lower)
	}
	if points[3].Events != 1 {
		t.Fatalf("delta=30m events = %d, want 1", points[3].Events)
	}
	if points[0].Fraction <= points[3].Fraction {
		t.Fatal("fraction must decrease with delta")
	}
}

func TestSweepEmpty(t *testing.T) {
	points, lower := Sweep(nil, []time.Duration{time.Minute}, pEnd)
	if points != nil || lower != 0 {
		t.Fatalf("sweep of empty stream: %v %v", points, lower)
	}
}

func buildIndex(t *testing.T) (*Index, []*Event) {
	t.Helper()
	us := []analysis.ControlUpdate{
		// Event 0: /32, two episodes with a gap.
		upd(t0, 100, prefixA, true),
		upd(t0.Add(5*time.Minute), 100, prefixA, false),
		upd(t0.Add(8*time.Minute), 100, prefixA, true),
		upd(t0.Add(20*time.Minute), 100, prefixA, false),
		// Event 1: covering /24, later.
		upd(t0.Add(2*time.Hour), 200, bgp.MustParsePrefix("203.0.113.0/24"), true),
		upd(t0.Add(3*time.Hour), 200, bgp.MustParsePrefix("203.0.113.0/24"), false),
	}
	evs := Merge(us, DefaultDelta, pEnd)
	if len(evs) != 2 {
		t.Fatalf("setup: events = %d", len(evs))
	}
	return NewIndex(evs, pEnd), evs
}

func TestIndexLookupActiveAndGap(t *testing.T) {
	ix, evs := buildIndex(t)
	ip := prefixA.Addr

	m := ix.Lookup(ip, t0.Add(2*time.Minute))
	if m.Event != evs[0] || !m.Active || m.Prefix != prefixA {
		t.Fatalf("active lookup = %+v", m)
	}
	// During the gap: window matches, not active.
	m = ix.Lookup(ip, t0.Add(6*time.Minute))
	if m.Event != evs[0] || m.Active {
		t.Fatalf("gap lookup = %+v", m)
	}
	// Outside both events.
	m = ix.Lookup(ip, t0.Add(30*time.Hour))
	if m.Event != nil {
		t.Fatalf("quiet-time lookup = %+v", m)
	}
}

func TestIndexLongestPrefixWins(t *testing.T) {
	ix, evs := buildIndex(t)
	ip := prefixA.Addr

	// During the /24 event, the host matches the /24.
	m := ix.Lookup(ip, t0.Add(150*time.Minute))
	if m.Event != evs[1] || !m.Active || m.Prefix.Len != 24 {
		t.Fatalf("/24 lookup = %+v", m)
	}
	// During the /32 gap with... construct: both /32 active window and /24 —
	// not overlapping here, but another host in the /24 matches only /24.
	other := prefixA.Addr + 7
	m = ix.Lookup(other, t0.Add(150*time.Minute))
	if m.Event != evs[1] || !m.Active {
		t.Fatalf("other-host /24 lookup = %+v", m)
	}
	if m2 := ix.Lookup(other, t0.Add(2*time.Minute)); m2.Event != nil {
		t.Fatalf("other host matched /32 event: %+v", m2)
	}
}

func TestIndexEverBlackholed(t *testing.T) {
	ix, _ := buildIndex(t)
	if p, ok := ix.EverBlackholed(prefixA.Addr); !ok || p != prefixA {
		t.Fatalf("EverBlackholed = %v %v", p, ok)
	}
	if p, ok := ix.EverBlackholed(prefixA.Addr + 9); !ok || p.Len != 24 {
		t.Fatalf("covered host = %v %v", p, ok)
	}
	if _, ok := ix.EverBlackholed(0x01020304); ok {
		t.Fatal("unrelated address blackholed")
	}
}

func TestIndexPreEventOf(t *testing.T) {
	ix, evs := buildIndex(t)
	ip := prefixA.Addr

	pre := ix.PreEventOf(nil, ip, t0.Add(-time.Hour))
	if len(pre) != 2 { // within 72h of both events
		t.Fatalf("pre events = %d, want 2", len(pre))
	}
	pre = ix.PreEventOf(nil, ip, t0.Add(-73*time.Hour))
	if len(pre) != 0 {
		t.Fatalf("pre events at -73h = %d", len(pre))
	}
	// Between events: pre-window of event 1 only.
	pre = ix.PreEventOf(nil, ip, t0.Add(time.Hour))
	if len(pre) != 1 || pre[0] != evs[1] {
		t.Fatalf("pre events between = %v", pre)
	}
}

func TestIndexInteresting(t *testing.T) {
	ix, _ := buildIndex(t)
	ip := prefixA.Addr
	if _, ok := ix.Interesting(ip, t0.Add(-time.Hour)); !ok {
		t.Fatal("pre-window not interesting")
	}
	if _, ok := ix.Interesting(ip, t0.Add(2*time.Minute)); !ok {
		t.Fatal("event window not interesting")
	}
	if _, ok := ix.Interesting(ip, t0.Add(-80*time.Hour)); ok {
		t.Fatal("distant past interesting")
	}
	if _, ok := ix.Interesting(0x01020304, t0); ok {
		t.Fatal("unrelated address interesting")
	}
}
