package events

import (
	"sort"
	"time"

	"repro/internal/bgp"
)

// Match is the attribution of one point in time and destination address
// to the event structure.
type Match struct {
	// Event is the event whose merged window [Start, End] covers the
	// query (nil if none). Windows include the short on-off gaps.
	Event *Event
	// Active reports whether an episode (announced, not withdrawn)
	// covers the query — the state that determines packet dropping.
	Active bool
	// Prefix is the matched blackhole prefix (the longest one with an
	// active episode if Active, otherwise the longest with a window).
	Prefix bgp.Prefix
}

// Index answers time+address attribution queries over a set of events.
// Build once with NewIndex, then query from the streaming pass.
type Index struct {
	periodEnd time.Time
	// byPrefix holds the per-prefix event lists sorted by start time.
	byPrefix map[bgp.Prefix][]*Event
	// lengths lists the distinct prefix lengths present, descending, so
	// longest-prefix-match scans only real candidates.
	lengths []uint8
}

// NewIndex builds the attribution index.
func NewIndex(evs []*Event, periodEnd time.Time) *Index {
	ix := &Index{
		periodEnd: periodEnd,
		byPrefix:  make(map[bgp.Prefix][]*Event),
	}
	seen := make(map[uint8]bool)
	for _, e := range evs {
		ix.byPrefix[e.Prefix] = append(ix.byPrefix[e.Prefix], e)
		seen[e.Prefix.Len] = true
	}
	for l := 32; l >= 0; l-- {
		if seen[uint8(l)] {
			ix.lengths = append(ix.lengths, uint8(l))
		}
	}
	for p := range ix.byPrefix {
		lst := ix.byPrefix[p]
		sort.Slice(lst, func(i, j int) bool { return lst[i].Start().Before(lst[j].Start()) })
	}
	return ix
}

// EverBlackholed returns the longest blackhole prefix covering ip, if any
// event ever targeted one.
func (ix *Index) EverBlackholed(ip uint32) (bgp.Prefix, bool) {
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		if _, ok := ix.byPrefix[p]; ok {
			return p, true
		}
	}
	return bgp.Prefix{}, false
}

// Lookup attributes (ip, t): the longest prefix with an active episode
// wins; otherwise the longest with a covering merged window.
func (ix *Index) Lookup(ip uint32, t time.Time) Match {
	var windowMatch Match
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[p]
		if !ok {
			continue
		}
		for _, e := range lst {
			if t.Before(e.Start()) {
				break // list sorted by start; later events start later
			}
			if t.After(e.End(ix.periodEnd)) {
				continue
			}
			if e.ActiveAt(t, ix.periodEnd) {
				return Match{Event: e, Active: true, Prefix: p}
			}
			if windowMatch.Event == nil {
				windowMatch = Match{Event: e, Prefix: p}
			}
		}
	}
	return windowMatch
}

// PreEventOf returns the events whose 72-hour pre-window covers (ip, t),
// appending to dst. A record can precede several events of the same or a
// covering prefix.
func (ix *Index) PreEventOf(dst []*Event, ip uint32, t time.Time) []*Event {
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[p]
		if !ok {
			continue
		}
		for _, e := range lst {
			if !t.Before(e.Start()) {
				continue
			}
			if e.Start().Sub(t) <= PreWindow {
				dst = append(dst, e)
			}
		}
	}
	return dst
}

// Interesting reports whether (ip, t) falls inside any event's analysis
// range — the pre-window plus the merged event window — and returns the
// matched (longest) prefix. The anomaly aggregator uses this to bound its
// slot-feature store.
func (ix *Index) Interesting(ip uint32, t time.Time) (bgp.Prefix, bool) {
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[p]
		if !ok {
			continue
		}
		for _, e := range lst {
			if t.Before(e.Start().Add(-PreWindow)) {
				break
			}
			if !t.After(e.End(ix.periodEnd)) {
				return p, true
			}
		}
	}
	return bgp.Prefix{}, false
}

// Events returns the event lists per prefix (shared; callers must not
// modify).
func (ix *Index) EventsFor(p bgp.Prefix) []*Event { return ix.byPrefix[p] }

// PeriodEnd returns the period end used for open-ended events.
func (ix *Index) PeriodEnd() time.Time { return ix.periodEnd }

// Lengths returns the distinct prefix lengths present, descending.
// Callers must not modify the slice.
func (ix *Index) Lengths() []uint8 { return ix.lengths }
