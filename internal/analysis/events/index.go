package events

import (
	"sort"
	"time"

	"repro/internal/bgp"
)

// Match is the attribution of one point in time and destination address
// to the event structure.
type Match struct {
	// Event is the event whose merged window [Start, End] covers the
	// query (nil if none). Windows include the short on-off gaps.
	Event *Event
	// Active reports whether an episode (announced, not withdrawn)
	// covers the query — the state that determines packet dropping.
	Active bool
	// Prefix is the matched blackhole prefix (the longest one with an
	// active episode if Active, otherwise the longest with a window).
	Prefix bgp.Prefix
}

// Index answers time+address attribution queries over a set of events.
// Build once with NewIndex, then query from the streaming pass.
type Index struct {
	periodEnd time.Time
	// byPrefix holds the per-prefix event lists sorted by start time,
	// keyed by the packed prefix (see pkey).
	byPrefix map[uint64][]*Event
	// spans mirrors byPrefix with the events' window and episode bounds
	// resolved to unix nanoseconds — the representation the Cursor scans:
	// integer comparisons instead of time.Time's wall/monotonic decode,
	// which the streaming pass performs several times per record.
	spans map[uint64][]eventSpan
	// lengths lists the distinct prefix lengths present, descending, so
	// longest-prefix-match scans only real candidates.
	lengths []uint8
}

// episodeSpan is one announce/withdraw interval in unix nanoseconds,
// with an open-ended withdraw resolved to the period end.
type episodeSpan struct{ ann, wd int64 }

// eventSpan is one event's merged window [start, end] in unix
// nanoseconds plus its resolved episodes, ordered like the *Event lists.
type eventSpan struct {
	start, end int64
	ev         *Event
	eps        []episodeSpan
}

// newEventSpan resolves e's bounds against periodEnd. Nanosecond
// comparisons order exactly like time.Time for the in-range wall-clock
// timestamps the archives carry.
func newEventSpan(e *Event, periodEnd time.Time) eventSpan {
	sp := eventSpan{
		start: e.Start().UnixNano(),
		end:   e.End(periodEnd).UnixNano(),
		ev:    e,
		eps:   make([]episodeSpan, len(e.Episodes)),
	}
	for i, ep := range e.Episodes {
		wd := ep.Withdraw
		if wd.IsZero() {
			wd = periodEnd
		}
		sp.eps[i] = episodeSpan{ann: ep.Announce.UnixNano(), wd: wd.UnixNano()}
	}
	return sp
}

// pkey packs a canonical prefix into one integer map key: the masked
// address shifted above the length. uint64 keys take the runtime's
// specialized hash path, which matters here — the attribution maps are
// probed several times per flow record, and the generated struct hash
// for a composite key dominated the pass profile.
func pkey(p bgp.Prefix) uint64 { return uint64(p.Addr)<<8 | uint64(p.Len) }

// NewIndex builds the attribution index.
func NewIndex(evs []*Event, periodEnd time.Time) *Index {
	ix := &Index{
		periodEnd: periodEnd,
		byPrefix:  make(map[uint64][]*Event),
	}
	seen := make(map[uint8]bool)
	for _, e := range evs {
		ix.byPrefix[pkey(e.Prefix)] = append(ix.byPrefix[pkey(e.Prefix)], e)
		seen[e.Prefix.Len] = true
	}
	for l := 32; l >= 0; l-- {
		if seen[uint8(l)] {
			ix.lengths = append(ix.lengths, uint8(l))
		}
	}
	for p := range ix.byPrefix {
		lst := ix.byPrefix[p]
		sort.Slice(lst, func(i, j int) bool { return lst[i].Start().Before(lst[j].Start()) })
	}
	ix.spans = make(map[uint64][]eventSpan, len(ix.byPrefix))
	for p, lst := range ix.byPrefix {
		sps := make([]eventSpan, len(lst))
		for i, e := range lst {
			sps[i] = newEventSpan(e, periodEnd)
		}
		ix.spans[p] = sps
	}
	return ix
}

// EverBlackholed returns the longest blackhole prefix covering ip, if any
// event ever targeted one.
func (ix *Index) EverBlackholed(ip uint32) (bgp.Prefix, bool) {
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		if _, ok := ix.byPrefix[pkey(p)]; ok {
			return p, true
		}
	}
	return bgp.Prefix{}, false
}

// Lookup attributes (ip, t): the longest prefix with an active episode
// wins; otherwise the longest with a covering merged window.
func (ix *Index) Lookup(ip uint32, t time.Time) Match {
	var windowMatch Match
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[pkey(p)]
		if !ok {
			continue
		}
		scanLookup(p, lst, t, ix.periodEnd, &windowMatch)
		if windowMatch.Active {
			return windowMatch
		}
	}
	return windowMatch
}

// scanLookup scans one start-sorted event list for t. An active episode
// match is written to m and reported; otherwise the first (longest-
// prefix, since callers scan longest first) covering window is retained
// in m.
func scanLookup(p bgp.Prefix, lst []*Event, t, periodEnd time.Time, m *Match) {
	for _, e := range lst {
		if t.Before(e.Start()) {
			break // list sorted by start; later events start later
		}
		if t.After(e.End(periodEnd)) {
			continue
		}
		if e.ActiveAt(t, periodEnd) {
			*m = Match{Event: e, Active: true, Prefix: p}
			return
		}
		if m.Event == nil {
			*m = Match{Event: e, Prefix: p}
		}
	}
}

// PreEventOf returns the events whose 72-hour pre-window covers (ip, t),
// appending to dst. A record can precede several events of the same or a
// covering prefix.
func (ix *Index) PreEventOf(dst []*Event, ip uint32, t time.Time) []*Event {
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[pkey(p)]
		if !ok {
			continue
		}
		for _, e := range lst {
			if !t.Before(e.Start()) {
				continue
			}
			if e.Start().Sub(t) <= PreWindow {
				dst = append(dst, e)
			}
		}
	}
	return dst
}

// Interesting reports whether (ip, t) falls inside any event's analysis
// range — the pre-window plus the merged event window — and returns the
// matched (longest) prefix. The anomaly aggregator uses this to bound its
// slot-feature store.
func (ix *Index) Interesting(ip uint32, t time.Time) (bgp.Prefix, bool) {
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[pkey(p)]
		if !ok {
			continue
		}
		if scanInteresting(lst, t, ix.periodEnd) {
			return p, true
		}
	}
	return bgp.Prefix{}, false
}

// scanInteresting reports whether t falls inside any event's analysis
// range (pre-window plus merged window) of one start-sorted list.
func scanInteresting(lst []*Event, t, periodEnd time.Time) bool {
	for _, e := range lst {
		if t.Before(e.Start().Add(-PreWindow)) {
			break
		}
		if !t.After(e.End(periodEnd)) {
			return true
		}
	}
	return false
}

// Events returns the event lists per prefix (shared; callers must not
// modify).
func (ix *Index) EventsFor(p bgp.Prefix) []*Event { return ix.byPrefix[pkey(p)] }

// PeriodEnd returns the period end used for open-ended events.
func (ix *Index) PeriodEnd() time.Time { return ix.periodEnd }

// Lengths returns the distinct prefix lengths present, descending.
// Callers must not modify the slice.
func (ix *Index) Lengths() []uint8 { return ix.lengths }
