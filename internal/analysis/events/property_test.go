package events

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/stats"
)

// randomStream generates a plausible random update stream: a handful of
// (prefix, peer) pairs with interleaved announce/withdraw actions at
// increasing times.
func randomStream(seed uint64, n int) []analysis.ControlUpdate {
	r := stats.NewRNG(seed)
	prefixes := []bgp.Prefix{
		bgp.MustParsePrefix("203.0.113.5/32"),
		bgp.MustParsePrefix("203.0.113.6/32"),
		bgp.MustParsePrefix("203.0.113.0/24"),
	}
	peers := []uint32{100, 200}
	t := time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	var out []analysis.ControlUpdate
	for i := 0; i < n; i++ {
		t = t.Add(time.Duration(10+r.Intn(1200)) * time.Second)
		u := analysis.ControlUpdate{
			Time:     t,
			Peer:     peers[r.Intn(len(peers))],
			Prefix:   prefixes[r.Intn(len(prefixes))],
			Announce: r.Bool(0.55),
		}
		if u.Announce {
			u.Communities = bgp.Communities{bgp.Blackhole}
		}
		out = append(out, u)
	}
	return out
}

func TestMergeInvariantsProperty(t *testing.T) {
	end := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(seed uint64) bool {
		us := randomStream(seed, 150)
		evs := Merge(us, DefaultDelta, end)
		totalAnn := 0
		for i := range us {
			if us[i].Announce {
				totalAnn++
			}
		}
		sumAnn := 0
		for _, e := range evs {
			sumAnn += e.Announcements
			// Episodes strictly ordered, withdraws after announces.
			prev := time.Time{}
			for i, ep := range e.Episodes {
				if !ep.Announce.After(prev) {
					return false
				}
				if ep.Withdraw.IsZero() {
					// Only the last episode may be open.
					if i != len(e.Episodes)-1 {
						return false
					}
					prev = end
				} else {
					if !ep.Withdraw.After(ep.Announce) {
						return false
					}
					prev = ep.Withdraw
				}
			}
			// Event bounds consistent.
			if e.Start().After(e.End(end)) {
				return false
			}
			// Gaps inside one event never exceed delta.
			for i := 1; i < len(e.Episodes); i++ {
				gap := e.Episodes[i].Announce.Sub(e.Episodes[i-1].Withdraw)
				if gap > DefaultDelta {
					return false
				}
			}
		}
		// Every announcement is attributed to exactly one event.
		return sumAnn == totalAnn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMonotoneInDeltaProperty(t *testing.T) {
	end := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(seed uint64) bool {
		us := randomStream(seed, 120)
		prev := -1
		for _, d := range []time.Duration{time.Minute, 5 * time.Minute, 20 * time.Minute, time.Hour} {
			n := len(Merge(us, d, end))
			if prev >= 0 && n > prev {
				return false // larger delta can only merge more
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// naiveLookup is the O(events) reference implementation of Index.Lookup:
// scan every event, prefer active episodes over mere windows, longer
// prefixes over shorter, earlier starts over later.
func naiveLookup(evs []*Event, end time.Time, ip uint32, at time.Time) Match {
	var best Match
	better := func(e *Event, active bool) bool {
		if best.Event == nil {
			return true
		}
		if active != best.Active {
			return active
		}
		if e.Prefix.Len != best.Prefix.Len {
			return e.Prefix.Len > best.Prefix.Len
		}
		return e.Start().Before(best.Event.Start())
	}
	for _, e := range evs {
		if !e.Prefix.Contains(ip) {
			continue
		}
		if at.Before(e.Start()) || at.After(e.End(end)) {
			continue
		}
		active := e.ActiveAt(at, end)
		if better(e, active) {
			best = Match{Event: e, Active: active, Prefix: e.Prefix}
		}
	}
	return best
}

// nestedStream is like randomStream but over nested prefixes of several
// lengths, so longest-prefix-match precedence is actually exercised.
func nestedStream(seed uint64, n int) []analysis.ControlUpdate {
	r := stats.NewRNG(seed)
	prefixes := []bgp.Prefix{
		bgp.MustParsePrefix("203.0.113.5/32"),
		bgp.MustParsePrefix("203.0.113.6/32"),
		bgp.MustParsePrefix("203.0.113.0/26"),
		bgp.MustParsePrefix("203.0.113.0/24"),
		bgp.MustParsePrefix("203.0.0.0/16"),
	}
	peers := []uint32{100, 200, 300}
	t := time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	var out []analysis.ControlUpdate
	for i := 0; i < n; i++ {
		t = t.Add(time.Duration(10+r.Intn(2000)) * time.Second)
		u := analysis.ControlUpdate{
			Time:     t,
			Peer:     peers[r.Intn(len(peers))],
			Prefix:   prefixes[r.Intn(len(prefixes))],
			Announce: r.Bool(0.55),
		}
		if u.Announce {
			u.Communities = bgp.Communities{bgp.Blackhole}
		}
		out = append(out, u)
	}
	return out
}

// TestIndexLookupMatchesNaiveProperty checks the indexed Lookup against
// the naive linear scan over the full Match (event identity, active flag,
// and matched prefix), across nested prefixes and random probe points.
func TestIndexLookupMatchesNaiveProperty(t *testing.T) {
	end := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	base := time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	f := func(seed uint64) bool {
		us := nestedStream(seed, 200)
		evs := Merge(us, DefaultDelta, end)
		ix := NewIndex(evs, end)
		r := stats.NewRNG(seed ^ 0x10de)
		for probe := 0; probe < 200; probe++ {
			ip := bgp.MustParsePrefix("203.0.113.0/24").Addr + uint32(r.Intn(8))
			if r.Bool(0.1) {
				ip = uint32(r.Uint64()) // mostly misses
			}
			at := base.Add(time.Duration(r.Intn(95*24*3600)) * time.Second)
			got, want := ix.Lookup(ip, at), naiveLookup(evs, end, ip, at)
			if got != want {
				t.Logf("seed %d: Lookup(%08x, %v) = %+v, naive = %+v", seed, ip, at, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexLookupConsistentWithEventsProperty(t *testing.T) {
	end := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(seed uint64) bool {
		us := randomStream(seed, 100)
		evs := Merge(us, DefaultDelta, end)
		ix := NewIndex(evs, end)
		r := stats.NewRNG(seed ^ 0xabc)
		// Probe random times against a direct scan.
		for probe := 0; probe < 50; probe++ {
			ip := bgp.MustParsePrefix("203.0.113.5/32").Addr + uint32(r.Intn(3))
			at := time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC).
				Add(time.Duration(r.Intn(60*24*3600)) * time.Second)
			m := ix.Lookup(ip, at)
			// Direct scan: is any event active / windowed at this point?
			anyActive := false
			for _, e := range evs {
				if e.Prefix.Contains(ip) && e.ActiveAt(at, end) {
					anyActive = true
				}
			}
			if anyActive != m.Active {
				return false
			}
			if m.Active && (m.Event == nil || !m.Event.ActiveAt(at, end)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
