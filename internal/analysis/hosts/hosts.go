// Package hosts profiles blackholed addresses from their legitimate
// traffic outside RTBH events (paper §6.1-§6.2): the four port-diversity
// features behind the RadViz projection (Fig 16), the daily top-port
// variation that separates servers from clients (Fig 17), and the
// PeeringDB types of the detected populations (Table 4).
package hosts

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/ip2as"
	"repro/internal/peeringdb"
)

// MinActiveDays is the paper's conservative detection criterion: a host
// qualifies only with incoming and outgoing traffic on at least 20
// distinct days.
const MinActiveDays = 20

// Feature indices of the RadViz projection (§6.1).
const (
	FeatInSrcPorts = iota
	FeatInDstPorts
	FeatOutSrcPorts
	FeatOutDstPorts
	NumFeatures
)

// FeatureNames label the RadViz anchors.
var FeatureNames = [NumFeatures]string{
	"in-src-ports", "in-dst-ports", "out-src-ports", "out-dst-ports",
}

// Kind is the host classification outcome.
type Kind int

// Host classes.
const (
	KindUnclassified Kind = iota
	KindServer
	KindClient
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindClient:
		return "client"
	default:
		return "unclassified"
	}
}

// dayAgg tracks one host-day.
type dayAgg struct {
	hasIn, hasOut bool
	inTop         *analysis.TopCounter // (proto<<16|port) -> packets
}

// hostAgg accumulates one host's legitimate traffic.
type hostAgg struct {
	days map[int32]*dayAgg
	// period-level distinct port sets for the four RadViz features.
	feat [NumFeatures]analysis.BoundedSet
}

// Aggregator builds host profiles from the streaming pass. Feed it only
// records outside RTBH activity (including the 10-minute pre-event
// reaction buffer), for addresses inside ever-blackholed prefixes.
type Aggregator struct {
	hosts map[uint32]*hostAgg
}

// New returns an empty aggregator.
func New() *Aggregator {
	return &Aggregator{hosts: make(map[uint32]*hostAgg)}
}

const featCap = 512

func (a *Aggregator) host(ip uint32) *hostAgg {
	h := a.hosts[ip]
	if h == nil {
		h = &hostAgg{days: make(map[int32]*dayAgg)}
		for i := range h.feat {
			h.feat[i] = *analysis.NewBoundedSet(featCap)
		}
		a.hosts[ip] = h
	}
	return h
}

func (h *hostAgg) day(d int32) *dayAgg {
	da := h.days[d]
	if da == nil {
		da = &dayAgg{inTop: analysis.NewTopCounter(32)}
		h.days[d] = da
	}
	return da
}

// AddIncoming records a sampled packet toward host ip on day d.
func (a *Aggregator) AddIncoming(ip uint32, d int32, srcPort, dstPort uint16, proto uint8, pkts int64) {
	h := a.host(ip)
	da := h.day(d)
	da.hasIn = true
	da.inTop.Add(uint32(proto)<<16|uint32(dstPort), uint64(pkts))
	h.feat[FeatInSrcPorts].Add(uint64(srcPort))
	h.feat[FeatInDstPorts].Add(uint64(dstPort))
}

// AddOutgoing records a sampled packet from host ip on day d.
func (a *Aggregator) AddOutgoing(ip uint32, d int32, srcPort, dstPort uint16, proto uint8, pkts int64) {
	h := a.host(ip)
	h.day(d).hasOut = true
	h.feat[FeatOutSrcPorts].Add(uint64(srcPort))
	h.feat[FeatOutDstPorts].Add(uint64(dstPort))
}

// Merge folds o's host aggregates into a. Hosts present in only one
// aggregator are adopted; colliding hosts union their day maps (OR-ing
// direction flags, merging top-port counters) and merge their feature
// sets. The parallel pipeline shards records by host address so that all
// traffic of one host lands in one shard, making the merged state
// identical to a sequential pass. o must not be used afterwards.
func (a *Aggregator) Merge(o *Aggregator) {
	for ip, oh := range o.hosts {
		h := a.hosts[ip]
		if h == nil {
			a.hosts[ip] = oh
			continue
		}
		for d, oda := range oh.days {
			da := h.days[d]
			if da == nil {
				h.days[d] = oda
				continue
			}
			da.hasIn = da.hasIn || oda.hasIn
			da.hasOut = da.hasOut || oda.hasOut
			da.inTop.Merge(oda.inTop)
		}
		for f := range h.feat {
			h.feat[f].Merge(&oh.feat[f])
		}
	}
}

// Snapshot returns an independent deep copy of the aggregator; further
// Adds on either side do not affect the other (Operator contract in
// internal/analysis).
func (a *Aggregator) Snapshot() *Aggregator {
	s := New()
	for ip, h := range a.hosts {
		ch := &hostAgg{days: make(map[int32]*dayAgg, len(h.days))}
		for d, da := range h.days {
			ch.days[d] = &dayAgg{hasIn: da.hasIn, hasOut: da.hasOut, inTop: da.inTop.Clone()}
		}
		for f := range h.feat {
			ch.feat[f] = h.feat[f].Clone()
		}
		s.hosts[ip] = ch
	}
	return s
}

// Profile is the per-host analysis outcome.
type Profile struct {
	IP uint32
	// ActiveDays counts days with both incoming and outgoing traffic.
	ActiveDays int
	// Features are the four RadViz port-diversity counts.
	Features [NumFeatures]float64
	// TopPorts are the distinct daily top (proto, port) pairs of
	// incoming traffic, encoded proto<<16|port.
	TopPorts []uint32
	// PortVariation is |distinct top ports| / |days with incoming
	// traffic|: ~0 for stable servers, ~1 for clients (§6.2).
	PortVariation float64
	// Kind is the classification (servers at low variation).
	Kind Kind
}

// ClassifyThreshold separates servers (variation below) from clients.
const ClassifyThreshold = 0.5

// Profiles computes per-host outcomes for hosts meeting minActiveDays
// (use MinActiveDays for the paper's criterion), sorted by IP.
func (a *Aggregator) Profiles(minActiveDays int) []Profile {
	return a.ProfilesFunc(minActiveDays, nil)
}

// ProfilesFunc is Profiles restricted to hosts for which keep returns
// true (nil keeps every host). The online analyzer profiles candidate
// hosts speculatively — before knowing whether their prefix will ever be
// blackholed — and applies the ever-blackholed predicate here, at compose
// time, which makes the surviving set identical to what a batch pass
// (which knows the full control stream up front) would have fed.
func (a *Aggregator) ProfilesFunc(minActiveDays int, keep func(ip uint32) bool) []Profile {
	var out []Profile
	for ip, h := range a.hosts {
		if keep != nil && !keep(ip) {
			continue
		}
		p := Profile{IP: ip}
		inDays := 0
		topSet := map[uint32]bool{}
		for _, da := range h.days {
			if da.hasIn {
				inDays++
				if key, _, ok := da.inTop.Top(); ok {
					topSet[key] = true
				}
			}
			if da.hasIn && da.hasOut {
				p.ActiveDays++
			}
		}
		if p.ActiveDays < minActiveDays {
			continue
		}
		for f := range p.Features {
			p.Features[f] = float64(h.feat[f].Count())
		}
		for k := range topSet {
			p.TopPorts = append(p.TopPorts, k)
		}
		sort.Slice(p.TopPorts, func(i, j int) bool { return p.TopPorts[i] < p.TopPorts[j] })
		if inDays > 0 {
			p.PortVariation = float64(len(topSet)) / float64(inDays)
		}
		if p.PortVariation <= ClassifyThreshold {
			p.Kind = KindServer
		} else {
			p.Kind = KindClient
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// Hosts returns the number of distinct profiled addresses (before the
// active-day filter).
func (a *Aggregator) Hosts() int { return len(a.hosts) }

// TypeTable is Table 4: the PeeringDB type distribution of detected
// client and server populations.
type TypeTable struct {
	Clients, Servers int
	ClientTypes      map[peeringdb.OrgType]float64
	ServerTypes      map[peeringdb.OrgType]float64
}

// Types joins profiles against the routing table and PeeringDB.
func Types(profiles []Profile, tbl *ip2as.Table, pdb *peeringdb.Registry) TypeTable {
	res := TypeTable{
		ClientTypes: make(map[peeringdb.OrgType]float64),
		ServerTypes: make(map[peeringdb.OrgType]float64),
	}
	for i := range profiles {
		typ := peeringdb.TypeUnknown
		if asn, ok := tbl.Lookup(profiles[i].IP); ok {
			typ = pdb.TypeOf(asn)
		}
		switch profiles[i].Kind {
		case KindClient:
			res.Clients++
			res.ClientTypes[typ]++
		case KindServer:
			res.Servers++
			res.ServerTypes[typ]++
		}
	}
	for k := range res.ClientTypes {
		res.ClientTypes[k] /= float64(res.Clients)
	}
	for k := range res.ServerTypes {
		res.ServerTypes[k] /= float64(res.Servers)
	}
	return res
}
