package hosts

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/netgen"
	"repro/internal/peeringdb"
	"repro/internal/radviz"
)

const (
	serverIP = 0x0b000001
	clientIP = 0x0c000001
)

// feedServer simulates a stable web server across days.
func feedServer(a *Aggregator, days int) {
	for d := int32(0); d < int32(days); d++ {
		for i := 0; i < 20; i++ {
			// Incoming: ephemeral sources to port 443.
			a.AddIncoming(serverIP, d, uint16(20000+i*7+int(d)), 443, netgen.ProtoTCP, 1)
			// Outgoing: 443 to ephemeral destinations.
			a.AddOutgoing(serverIP, d, 443, uint16(30000+i*11+int(d)), netgen.ProtoTCP, 1)
		}
	}
}

// feedClient simulates a client whose sessions use fresh ephemeral ports
// daily, so its daily top incoming port changes every day.
func feedClient(a *Aggregator, days int) {
	for d := int32(0); d < int32(days); d++ {
		eph := uint16(40000 + d*13)
		for i := 0; i < 10; i++ {
			a.AddOutgoing(clientIP, d, eph, 443, netgen.ProtoTCP, 1)
			a.AddIncoming(clientIP, d, 443, eph, netgen.ProtoTCP, 1)
		}
	}
}

func TestServerClientClassification(t *testing.T) {
	a := New()
	feedServer(a, 30)
	feedClient(a, 30)
	profiles := a.Profiles(MinActiveDays)
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	var server, client *Profile
	for i := range profiles {
		switch profiles[i].IP {
		case serverIP:
			server = &profiles[i]
		case clientIP:
			client = &profiles[i]
		}
	}
	if server == nil || client == nil {
		t.Fatal("profiles missing")
	}
	if server.Kind != KindServer {
		t.Fatalf("server classified as %v (variation %v)", server.Kind, server.PortVariation)
	}
	if client.Kind != KindClient {
		t.Fatalf("client classified as %v (variation %v)", client.Kind, client.PortVariation)
	}
	if server.PortVariation > 0.1 {
		t.Fatalf("server port variation = %v", server.PortVariation)
	}
	if client.PortVariation < 0.9 {
		t.Fatalf("client port variation = %v", client.PortVariation)
	}
	// Server top ports: exactly (TCP, 443).
	if len(server.TopPorts) != 1 || server.TopPorts[0] != uint32(netgen.ProtoTCP)<<16|443 {
		t.Fatalf("server top ports = %v", server.TopPorts)
	}
}

func TestMinActiveDaysFilter(t *testing.T) {
	a := New()
	feedServer(a, 10) // below the 20-day criterion
	if got := a.Profiles(MinActiveDays); len(got) != 0 {
		t.Fatalf("under-observed host detected: %v", got)
	}
	if got := a.Profiles(5); len(got) != 1 {
		t.Fatalf("lenient threshold = %d profiles", len(got))
	}
}

func TestActiveDayNeedsBothDirections(t *testing.T) {
	a := New()
	// Incoming on 25 days, outgoing on none.
	for d := int32(0); d < 25; d++ {
		a.AddIncoming(serverIP, d, 1234, 443, netgen.ProtoTCP, 1)
	}
	if got := a.Profiles(20); len(got) != 0 {
		t.Fatal("incoming-only host qualified")
	}
}

func TestRadVizSeparation(t *testing.T) {
	a := New()
	feedServer(a, 30)
	feedClient(a, 30)
	profiles := a.Profiles(MinActiveDays)
	proj := radviz.New(NumFeatures)
	var serverPt, clientPt radviz.Point
	for _, p := range profiles {
		pt := proj.Project(p.Features[:])
		if p.IP == serverIP {
			serverPt = pt
		} else {
			clientPt = pt
		}
	}
	// Server: diversity in in-src-ports (anchor 0) and out-dst-ports
	// (anchor 3). Client: in-dst-ports (anchor 1) and out-src-ports
	// (anchor 2). They must project to clearly different positions.
	dx := serverPt.X - clientPt.X
	dy := serverPt.Y - clientPt.Y
	if dx*dx+dy*dy < 0.25 {
		t.Fatalf("projections not separated: server %+v client %+v", serverPt, clientPt)
	}
}

func TestTypesJoin(t *testing.T) {
	a := New()
	feedServer(a, 30)
	feedClient(a, 30)
	profiles := a.Profiles(MinActiveDays)

	tbl := ip2as.New()
	tbl.Add(bgp.MakePrefix(serverIP, 24), 5001)
	tbl.Add(bgp.MakePrefix(clientIP, 24), 5002)
	pdb := peeringdb.New()
	pdb.Add(peeringdb.Network{ASN: 5001, Type: peeringdb.TypeContent})
	pdb.Add(peeringdb.Network{ASN: 5002, Type: peeringdb.TypeCableDSL})

	tt := Types(profiles, tbl, pdb)
	if tt.Servers != 1 || tt.Clients != 1 {
		t.Fatalf("table = %+v", tt)
	}
	if tt.ServerTypes[peeringdb.TypeContent] != 1.0 {
		t.Fatalf("server types = %v", tt.ServerTypes)
	}
	if tt.ClientTypes[peeringdb.TypeCableDSL] != 1.0 {
		t.Fatalf("client types = %v", tt.ClientTypes)
	}
}

func TestHostsCounter(t *testing.T) {
	a := New()
	a.AddIncoming(1, 0, 1, 2, 6, 1)
	a.AddOutgoing(1, 0, 1, 2, 6, 1)
	a.AddIncoming(2, 0, 1, 2, 6, 1)
	if a.Hosts() != 2 {
		t.Fatalf("hosts = %d", a.Hosts())
	}
}

func TestWhitelistCoverageServersHighClientsLow(t *testing.T) {
	a := New()
	feedServer(a, 30)
	feedClient(a, 30)
	cov := a.WhitelistCoverage(MinActiveDays)
	if len(cov) != 2 {
		t.Fatalf("coverage entries = %d", len(cov))
	}
	var srv, cli *Coverage
	for i := range cov {
		switch cov[i].IP {
		case serverIP:
			srv = &cov[i]
		case clientIP:
			cli = &cov[i]
		}
	}
	if srv == nil || cli == nil {
		t.Fatal("missing entries")
	}
	// The server's daily top port never changes: full coverage from day 2.
	if srv.Share < 0.95 {
		t.Fatalf("server coverage = %v, want ~1", srv.Share)
	}
	// The client's ephemeral port changes daily: past top ports never
	// cover today's traffic.
	if cli.Share > 0.05 {
		t.Fatalf("client coverage = %v, want ~0", cli.Share)
	}
	if srv.Days < 20 || cli.Days < 20 {
		t.Fatalf("days = %d/%d", srv.Days, cli.Days)
	}
}

func TestWhitelistCoverageFiltersUnderObserved(t *testing.T) {
	a := New()
	feedServer(a, 10)
	if got := a.WhitelistCoverage(MinActiveDays); len(got) != 0 {
		t.Fatalf("under-observed host covered: %v", got)
	}
}
