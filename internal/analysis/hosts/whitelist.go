package hosts

import "sort"

// Whitelist feasibility (paper §7.2): the paper concludes that
// "detection of legitimate traffic patterns and whitelisting of such
// patterns during an attack is not possible due to highly variable
// client traffic". This analysis quantifies that claim: for each
// detected host, how much of a day's incoming traffic lands on
// (protocol, port) pairs already seen as top ports on *earlier* days —
// the coverage an operator's whitelist would achieve during an attack.

// Coverage is one host's whitelist-coverage outcome.
type Coverage struct {
	IP uint32
	// Share is the mean fraction of daily incoming packets that a
	// whitelist built from all previous days' top ports would have
	// passed (first observed day excluded — there is nothing to
	// whitelist from yet).
	Share float64
	// Days is the number of days contributing to the mean.
	Days int
}

// WhitelistCoverage computes per-host whitelist coverage for hosts with
// at least minActiveDays active days (the same criterion as Profiles).
func (a *Aggregator) WhitelistCoverage(minActiveDays int) []Coverage {
	return a.WhitelistCoverageFunc(minActiveDays, nil)
}

// WhitelistCoverageFunc is WhitelistCoverage restricted to hosts for
// which keep returns true (nil keeps every host) — the compose-time
// counterpart of ProfilesFunc for speculatively profiled hosts.
func (a *Aggregator) WhitelistCoverageFunc(minActiveDays int, keep func(ip uint32) bool) []Coverage {
	var out []Coverage
	for ip, h := range a.hosts {
		if keep != nil && !keep(ip) {
			continue
		}
		active := 0
		for _, da := range h.days {
			if da.hasIn && da.hasOut {
				active++
			}
		}
		if active < minActiveDays {
			continue
		}
		days := make([]int32, 0, len(h.days))
		for d, da := range h.days {
			if da.hasIn {
				days = append(days, d)
			}
		}
		if len(days) < 2 {
			continue
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })

		seen := map[uint32]bool{}
		var shareSum float64
		counted := 0
		for i, d := range days {
			da := h.days[d]
			keys, counts := da.inTop.Entries()
			if i > 0 {
				var covered, total uint64
				for j, k := range keys {
					total += counts[j]
					if seen[k] {
						covered += counts[j]
					}
				}
				if total > 0 {
					shareSum += float64(covered) / float64(total)
					counted++
				}
			}
			if key, _, ok := da.inTop.Top(); ok {
				seen[key] = true
			}
		}
		if counted == 0 {
			continue
		}
		out = append(out, Coverage{IP: ip, Share: shareSum / float64(counted), Days: counted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}
