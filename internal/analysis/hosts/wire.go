package hosts

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
)

// wireVersion is the hosts snapshot codec version.
const wireVersion = 1

// MarshalBinary encodes the host aggregates canonically: hosts sorted by
// IP; inside each host the days sorted ascending, each day carrying its
// direction flags and top-port counter, followed by the four feature
// sets.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(wireVersion)
	ips := make([]uint32, 0, len(a.hosts))
	for ip := range a.hosts {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	w.Uvarint(uint64(len(ips)))
	for _, ip := range ips {
		h := a.hosts[ip]
		w.Uvarint(uint64(ip))
		days := make([]int32, 0, len(h.days))
		for d := range h.days {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		w.Uvarint(uint64(len(days)))
		for _, d := range days {
			da := h.days[d]
			w.Varint(int64(d))
			var flags byte
			if da.hasIn {
				flags |= 1
			}
			if da.hasOut {
				flags |= 2
			}
			w.Byte(flags)
			da.inTop.EncodeWire(w)
		}
		for f := range h.feat {
			h.feat[f].EncodeWire(w)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded
// snapshot. On error the aggregator is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(wireVersion)
	// Minimum per host: ip, day count, four minimal feature sets.
	n := r.Count(14)
	hs := make(map[uint32]*hostAgg, n)
	for i := 0; i < n; i++ {
		ip := r.U32()
		nDays := r.Count(4) // day, flags, minimal counter
		h := &hostAgg{days: make(map[int32]*dayAgg, nDays)}
		for j := 0; j < nDays; j++ {
			d := r.Varint()
			if int64(int32(d)) != d {
				return fmt.Errorf("hosts: day index %d out of range", d)
			}
			flags := r.Byte()
			if flags > 3 {
				return fmt.Errorf("hosts: invalid day flags %d", flags)
			}
			da := &dayAgg{
				hasIn:  flags&1 != 0,
				hasOut: flags&2 != 0,
				inTop:  analysis.NewTopCounter(1),
			}
			da.inTop.DecodeWire(r)
			h.days[int32(d)] = da
		}
		for f := range h.feat {
			h.feat[f].DecodeWire(r)
		}
		if r.Err() != nil {
			break
		}
		hs[ip] = h
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("hosts: %w", err)
	}
	a.hosts = hs
	return nil
}

// Filter drops every host for which keep returns false. The federation's
// live path uses this to reduce a speculative candidate population to
// the hosts a batch pass would have profiled before shipping the state.
func (a *Aggregator) Filter(keep func(ip uint32) bool) {
	for ip := range a.hosts {
		if !keep(ip) {
			delete(a.hosts, ip)
		}
	}
}
