// Package load computes the control-plane load of the RTBH service
// (paper §3.2, Fig 3): the number of simultaneously active blackhole
// routes over time, the BGP message rate, and the population of
// announcing peers and origin ASes.
package load

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// Point is one sample of the load time series.
type Point struct {
	Time time.Time
	// Active is the number of blackhole routes active at sample time.
	Active int
	// Messages is the number of RTBH-related BGP messages during the
	// minute ending at Time.
	Messages int
}

// Result is the Fig 3 series plus the summary numbers quoted in §3.2.
type Result struct {
	// Series sampled per minute.
	Series []Point
	// AvgActive and MaxActive summarize the parallel-RTBH count.
	AvgActive float64
	MaxActive int
	// MaxMessagesPerMinute is the peak signaling rate.
	MaxMessagesPerMinute int
	// Peers is the number of distinct announcing members; OriginASes the
	// number of distinct AS_PATH origins.
	Peers      int
	OriginASes int
}

type routeKey struct {
	prefix bgp.Prefix
	peer   uint32
}

// Compute derives the load series from the time-sorted update stream over
// [start, end), sampling once per minute.
func Compute(updates []analysis.ControlUpdate, start, end time.Time) *Result {
	res := &Result{}
	if !end.After(start) {
		return res
	}
	active := make(map[routeKey]bool)
	peers := make(map[uint32]bool)
	origins := make(map[uint32]bool)

	minutes := int(end.Sub(start) / time.Minute)
	res.Series = make([]Point, 0, minutes)

	ui := 0
	msgs := 0
	var sumActive float64
	for m := 0; m < minutes; m++ {
		cut := start.Add(time.Duration(m+1) * time.Minute)
		for ui < len(updates) && updates[ui].Time.Before(cut) {
			u := &updates[ui]
			key := routeKey{prefix: u.Prefix, peer: u.Peer}
			if u.Announce {
				active[key] = true
				peers[u.Peer] = true
				if u.OriginAS != 0 {
					origins[u.OriginAS] = true
				}
			} else {
				delete(active, key)
			}
			msgs++
			ui++
		}
		p := Point{Time: cut, Active: len(active), Messages: msgs}
		msgs = 0
		res.Series = append(res.Series, p)
		sumActive += float64(p.Active)
		if p.Active > res.MaxActive {
			res.MaxActive = p.Active
		}
		if p.Messages > res.MaxMessagesPerMinute {
			res.MaxMessagesPerMinute = p.Messages
		}
	}
	if len(res.Series) > 0 {
		res.AvgActive = sumActive / float64(len(res.Series))
	}
	res.Peers = len(peers)
	res.OriginASes = len(origins)
	return res
}
