package load

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

var (
	pA = bgp.MustParsePrefix("203.0.113.5/32")
	pB = bgp.MustParsePrefix("198.51.100.0/24")
	t0 = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
)

func upd(t time.Time, peer uint32, p bgp.Prefix, announce bool, origin uint32) analysis.ControlUpdate {
	return analysis.ControlUpdate{Time: t, Peer: peer, Prefix: p, Announce: announce, OriginAS: origin}
}

func TestComputeSeries(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0.Add(30*time.Second), 100, pA, true, 777),
		upd(t0.Add(90*time.Second), 200, pB, true, 778),
		upd(t0.Add(5*time.Minute), 100, pA, false, 0),
	}
	res := Compute(us, t0, t0.Add(10*time.Minute))
	if len(res.Series) != 10 {
		t.Fatalf("series length = %d", len(res.Series))
	}
	if res.Series[0].Active != 1 || res.Series[0].Messages != 1 {
		t.Fatalf("minute 0 = %+v", res.Series[0])
	}
	if res.Series[1].Active != 2 {
		t.Fatalf("minute 1 = %+v", res.Series[1])
	}
	if res.Series[5].Active != 1 { // withdraw at 5:00 counted in minute 5
		t.Fatalf("minute 5 = %+v", res.Series[5])
	}
	if res.MaxActive != 2 || res.Peers != 2 || res.OriginASes != 2 {
		t.Fatalf("summary = %+v", res)
	}
	if res.AvgActive <= 1 || res.AvgActive >= 2 {
		t.Fatalf("avg active = %v", res.AvgActive)
	}
	if res.MaxMessagesPerMinute != 1 {
		t.Fatalf("max msgs/min = %d", res.MaxMessagesPerMinute)
	}
}

func TestComputeDuplicateAnnouncementsStable(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0, 100, pA, true, 777),
		upd(t0.Add(time.Second), 100, pA, true, 777), // refresh, not +1
	}
	res := Compute(us, t0, t0.Add(2*time.Minute))
	if res.MaxActive != 1 {
		t.Fatalf("MaxActive = %d, want 1", res.MaxActive)
	}
	if res.MaxMessagesPerMinute != 2 {
		t.Fatalf("msgs = %d", res.MaxMessagesPerMinute)
	}
}

func TestComputeEmptyAndDegenerate(t *testing.T) {
	res := Compute(nil, t0, t0.Add(3*time.Minute))
	if len(res.Series) != 3 || res.MaxActive != 0 {
		t.Fatalf("empty result = %+v", res)
	}
	res = Compute(nil, t0, t0)
	if len(res.Series) != 0 {
		t.Fatal("degenerate period produced samples")
	}
}

func TestComputeSamePrefixTwoPeers(t *testing.T) {
	us := []analysis.ControlUpdate{
		upd(t0, 100, pA, true, 777),
		upd(t0.Add(time.Second), 200, pA, true, 777),
	}
	res := Compute(us, t0, t0.Add(time.Minute))
	// Two routes: the same prefix from two peers.
	if res.MaxActive != 2 {
		t.Fatalf("MaxActive = %d", res.MaxActive)
	}
}
