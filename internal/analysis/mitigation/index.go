package mitigation

import (
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// Window is one FlowSpec mitigation interval: a discard rule installed
// at Start and withdrawn at End (zero End = still installed at the end
// of the measurement period).
type Window struct {
	Prefix     bgp.Prefix
	Rule       *bgp.FlowRule
	Start, End time.Time
	Peer       uint32 // announcing member
}

// Index answers "was a FlowSpec mitigation active for this destination
// at this time" queries, the FlowSpec counterpart of events.Index. Build
// once from the (time-sorted) FlowSpec update stream; the online
// analyzer rebuilds it as the stream grows, which is safe for the same
// reason rebuilding the event index is: a record is only sealed once no
// in-flight update can still cover it.
type Index struct {
	periodEnd time.Time
	byPrefix  map[bgp.Prefix][]Window // sorted by Start
	lengths   []uint8                 // distinct prefix lengths, descending
	windows   int
}

// NewIndex pairs announcements with withdrawals into windows and builds
// the lookup structure. flows must be time-sorted (ParseMRTAll and the
// online analyzer's sort both guarantee this). A withdrawal closes the
// open window of the identical rule (canonical wire encoding) from the
// same peer; re-announcing an open rule and withdrawing an uninstalled
// one are no-ops, mirroring the route server.
func NewIndex(flows []analysis.FlowUpdate, periodEnd time.Time) *Index {
	ix := &Index{
		periodEnd: periodEnd,
		byPrefix:  make(map[bgp.Prefix][]Window),
	}
	type key struct {
		peer uint32
		wire string
	}
	open := make(map[key]int) // -> index into opened
	var opened []Window       // all windows in announce order
	for _, fu := range flows {
		if fu.Rule == nil || !fu.Rule.HasDst {
			continue
		}
		wire, err := bgp.EncodeFlowRule(fu.Rule)
		if err != nil {
			continue
		}
		k := key{peer: fu.Peer, wire: string(wire)}
		if fu.Announce {
			if _, isOpen := open[k]; isOpen {
				continue
			}
			open[k] = len(opened)
			opened = append(opened, Window{
				Prefix: fu.Rule.Dst, Rule: fu.Rule, Start: fu.Time, Peer: fu.Peer,
			})
		} else if i, isOpen := open[k]; isOpen {
			opened[i].End = fu.Time
			delete(open, k)
		}
	}

	seen := make(map[uint8]bool)
	for _, w := range opened {
		ix.byPrefix[w.Prefix] = append(ix.byPrefix[w.Prefix], w)
		seen[w.Prefix.Len] = true
		ix.windows++
	}
	for l := 32; l >= 0; l-- {
		if seen[uint8(l)] {
			ix.lengths = append(ix.lengths, uint8(l))
		}
	}
	for p := range ix.byPrefix {
		lst := ix.byPrefix[p]
		sort.Slice(lst, func(i, j int) bool { return lst[i].Start.Before(lst[j].Start) })
	}
	return ix
}

// Lookup returns the longest prefix with a FlowSpec window covering
// (ip, t). Windows are half-open [Start, End); an open-ended window
// covers through the period end.
func (ix *Index) Lookup(ip uint32, t time.Time) (bgp.Prefix, bool) {
	if ix == nil || len(ix.byPrefix) == 0 {
		return bgp.Prefix{}, false
	}
	for _, l := range ix.lengths {
		p := bgp.MakePrefix(ip, l)
		lst, ok := ix.byPrefix[p]
		if !ok {
			continue
		}
		for _, w := range lst {
			if t.Before(w.Start) {
				break // sorted by start
			}
			if w.End.IsZero() {
				if !t.After(ix.periodEnd) {
					return p, true
				}
				continue
			}
			if t.Before(w.End) {
				return p, true
			}
		}
	}
	return bgp.Prefix{}, false
}

// Windows returns the number of mitigation windows indexed.
func (ix *Index) Windows() int {
	if ix == nil {
		return 0
	}
	return ix.windows
}
