// Package mitigation measures fine-grained (FlowSpec) mitigation against
// RTBH on the same traffic — the paper's Table 5 question turned into a
// real experiment: per mitigation type, how much attack traffic is
// discarded and how much legitimate traffic dies with it.
//
// The aggregator consumes records destined to a mitigated prefix; the
// pipeline attributes each record to a phase (an active RTBH episode or
// an installed FlowSpec window, the latter winning when both cover the
// record) and classifies it as attack or legitimate by the reflection
// signature: UDP with a known amplification service source port
// (netgen.IsAmplificationPort, the same catalog the protocol-mix
// analysis uses). Dropped means the record's destination MAC was the
// blackhole MAC — under RTBH because the whole prefix is discarded,
// under FlowSpec because a discard rule matched the packet header.
package mitigation

import (
	"sort"

	"repro/internal/bgp"
	"repro/internal/netgen"
)

// Phase is the mitigation mechanism a record was observed under.
type Phase uint8

const (
	// PhaseRTBH: an RTBH episode (announced, not withdrawn) covered the
	// destination.
	PhaseRTBH Phase = iota
	// PhaseFlowSpec: an installed FlowSpec discard window covered the
	// destination.
	PhaseFlowSpec
	numPhases
)

// String names the phase as the reports render it.
func (p Phase) String() string {
	switch p {
	case PhaseRTBH:
		return "rtbh"
	case PhaseFlowSpec:
		return "flowspec"
	default:
		return "unknown"
	}
}

// Counter is a dropped/forwarded tally.
type Counter struct {
	DroppedPkts, ForwardedPkts   int64
	DroppedBytes, ForwardedBytes int64
}

// TotalPkts returns dropped plus forwarded packets.
func (c *Counter) TotalPkts() int64 { return c.DroppedPkts + c.ForwardedPkts }

// DropRatePkts returns the packet drop share (0 when no traffic).
func (c *Counter) DropRatePkts() float64 {
	t := c.TotalPkts()
	if t == 0 {
		return 0
	}
	return float64(c.DroppedPkts) / float64(t)
}

func (c *Counter) add(dropped bool, pkts, bytes int64) {
	if dropped {
		c.DroppedPkts += pkts
		c.DroppedBytes += bytes
	} else {
		c.ForwardedPkts += pkts
		c.ForwardedBytes += bytes
	}
}

func (c *Counter) merge(o *Counter) {
	c.DroppedPkts += o.DroppedPkts
	c.ForwardedPkts += o.ForwardedPkts
	c.DroppedBytes += o.DroppedBytes
	c.ForwardedBytes += o.ForwardedBytes
}

// cells is one mitigated prefix's tally: per phase, attack and
// legitimate traffic separately.
type cells struct {
	attack [numPhases]Counter
	legit  [numPhases]Counter
}

func (cs *cells) merge(o *cells) {
	for p := range cs.attack {
		cs.attack[p].merge(&o.attack[p])
		cs.legit[p].merge(&o.legit[p])
	}
}

// Aggregator accumulates the mitigation comparison from the streaming
// pass, keyed by the mitigated destination prefix. Prefix keying (rather
// than event IDs) keeps the operator independent of the RTBH event
// numbering — FlowSpec-only mitigations never appear in the merged RTBH
// event structure at all.
type Aggregator struct {
	byPrefix map[bgp.Prefix]*cells

	// lastPrefix/lastCells memoize the most recent Add: records under a
	// mitigation arrive in long same-prefix runs, so the composite-key
	// map probe resolves once per run.
	lastPrefix bgp.Prefix
	lastCells  *cells
}

// New returns an empty aggregator.
func New() *Aggregator {
	return &Aggregator{byPrefix: make(map[bgp.Prefix]*cells)}
}

// Add records one sampled packet observed under an active mitigation of
// the given phase for prefix. proto and srcPort classify it as attack
// (reflected amplification traffic) or legitimate; dropped is the
// blackhole-MAC outcome.
func (a *Aggregator) Add(prefix bgp.Prefix, phase Phase, proto uint8, srcPort uint16, dropped bool, pkts, bytes int64) {
	if phase >= numPhases {
		return
	}
	cs := a.lastCells
	if cs == nil || a.lastPrefix != prefix {
		cs = a.byPrefix[prefix]
		if cs == nil {
			cs = &cells{}
			a.byPrefix[prefix] = cs
		}
		a.lastPrefix, a.lastCells = prefix, cs
	}
	if netgen.IsAmplificationPort(proto, srcPort) {
		cs.attack[phase].add(dropped, pkts, bytes)
	} else {
		cs.legit[phase].add(dropped, pkts, bytes)
	}
}

// Merge folds o's tallies into a (commutative and associative; shard
// aggregators combine into exactly the sequential state). o must not be
// used afterwards: a may adopt its internal structures.
func (a *Aggregator) Merge(o *Aggregator) {
	for p, oc := range o.byPrefix {
		if cs := a.byPrefix[p]; cs != nil {
			cs.merge(oc)
		} else {
			a.byPrefix[p] = oc
		}
	}
	// Adoption may have replaced the memoized entry.
	a.lastCells = nil
}

// Snapshot returns an independent deep copy of the aggregator (Operator
// contract in internal/analysis).
func (a *Aggregator) Snapshot() *Aggregator {
	s := New()
	for p, cs := range a.byPrefix {
		cp := *cs
		s.byPrefix[p] = &cp
	}
	return s
}

// Prefixes returns the number of mitigated prefixes with traffic.
func (a *Aggregator) Prefixes() int { return len(a.byPrefix) }

// PhaseStat is one mitigation type's aggregate outcome — one row of the
// reproduced Table 5.
type PhaseStat struct {
	Phase  Phase
	Attack Counter // reflected amplification traffic
	Legit  Counter // everything else toward the mitigated prefix
	// Prefixes counts mitigated prefixes with any traffic in this phase.
	Prefixes int
}

// PrefixStat is the per-victim-prefix detail behind the aggregate rows.
type PrefixStat struct {
	Prefix bgp.Prefix
	Attack [2]Counter // indexed by Phase
	Legit  [2]Counter
}

// Result is the composed mitigation comparison.
type Result struct {
	// Rows are the Table 5 aggregate rows, indexed by Phase.
	Rows [2]PhaseStat
	// ByPrefix is the per-prefix detail, sorted by (addr, len).
	ByPrefix []PrefixStat
}

// Measured reports whether any mitigated traffic was observed at all.
func (r *Result) Measured() bool {
	for i := range r.Rows {
		if r.Rows[i].Attack.TotalPkts()+r.Rows[i].Legit.TotalPkts() > 0 {
			return true
		}
	}
	return false
}

// Compose derives the Table 5 result from the accumulated state.
func (a *Aggregator) Compose() *Result {
	res := &Result{}
	for i := range res.Rows {
		res.Rows[i].Phase = Phase(i)
	}
	for _, p := range sortedPrefixes(a.byPrefix) {
		cs := a.byPrefix[p]
		ps := PrefixStat{Prefix: p}
		for ph := 0; ph < int(numPhases); ph++ {
			ps.Attack[ph] = cs.attack[ph]
			ps.Legit[ph] = cs.legit[ph]
			res.Rows[ph].Attack.merge(&cs.attack[ph])
			res.Rows[ph].Legit.merge(&cs.legit[ph])
			if cs.attack[ph].TotalPkts()+cs.legit[ph].TotalPkts() > 0 {
				res.Rows[ph].Prefixes++
			}
		}
		res.ByPrefix = append(res.ByPrefix, ps)
	}
	return res
}

// sortedPrefixes returns the map keys in canonical (addr, len) order.
func sortedPrefixes(m map[bgp.Prefix]*cells) []bgp.Prefix {
	out := make([]bgp.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}
