package mitigation

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// wireVersion is the mitigation snapshot codec version.
const wireVersion = 1

func encodeCounter(w *analysis.WireWriter, c *Counter) {
	w.Varint(c.DroppedPkts)
	w.Varint(c.ForwardedPkts)
	w.Varint(c.DroppedBytes)
	w.Varint(c.ForwardedBytes)
}

func decodeCounter(r *analysis.WireReader, c *Counter) {
	c.DroppedPkts = r.Varint()
	c.ForwardedPkts = r.Varint()
	c.DroppedBytes = r.Varint()
	c.ForwardedBytes = r.Varint()
}

// MarshalBinary encodes the aggregator canonically: per-prefix cells
// sorted by (addr, len), each holding the per-phase attack and
// legitimate counters.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(wireVersion)
	prefixes := sortedPrefixes(a.byPrefix)
	w.Uvarint(uint64(len(prefixes)))
	for _, p := range prefixes {
		cs := a.byPrefix[p]
		w.Uvarint(uint64(p.Addr))
		w.Byte(p.Len)
		for ph := 0; ph < int(numPhases); ph++ {
			encodeCounter(w, &cs.attack[ph])
			encodeCounter(w, &cs.legit[ph])
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded
// snapshot. On error the aggregator is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(wireVersion)
	n := r.Count(2 + 8*int(numPhases)) // addr + len + 2x4 varints per phase
	byPrefix := make(map[bgp.Prefix]*cells, n)
	for i := 0; i < n; i++ {
		addr := r.U32()
		length := r.Byte()
		if length > 32 {
			return fmt.Errorf("mitigation: prefix length %d", length)
		}
		cs := &cells{}
		for ph := 0; ph < int(numPhases); ph++ {
			decodeCounter(r, &cs.attack[ph])
			decodeCounter(r, &cs.legit[ph])
		}
		byPrefix[bgp.MakePrefix(addr, length)] = cs
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("mitigation: %w", err)
	}
	a.byPrefix = byPrefix
	return nil
}
