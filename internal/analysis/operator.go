package analysis

// Operator is the incremental-operator contract shared by every streaming
// analysis stage (dropstats, anomaly, protomix, hosts, timealign, and the
// collateral pending store). An operator accumulates observations through
// its stage-specific Observe methods (Add, AddDropped, AddIncoming, ...),
// supports the three uniform lifecycle operations below, and derives its
// figures from the accumulated state only when asked:
//
//   - Observe (stage-specific signature): fold one flow observation into
//     the compact aggregate state. O(1) amortized per record; never
//     retains the raw record.
//   - Merge: fold another operator's state into this one. The sharded
//     parallel pipeline merges per-worker operators whose key populations
//     are disjoint by shard routing, which makes Merge exact; the online
//     path never merges overlapping operators — it snapshots and replays
//     instead (see Snapshot).
//   - Snapshot: return an independent deep copy of the state. The
//     original may continue observing concurrently-arriving records; the
//     copy is immutable input for report composition. Cost is
//     proportional to the compact state, not to the records observed.
//
// The control-plane stages (events, load, visibility, the Fig 10 sweep)
// deliberately do not implement this contract: they are pure functions of
// the retained control-update stream, which is several orders of
// magnitude smaller than the flow stream, and recomputing them at
// snapshot time is both cheap and trivially byte-identical to batch (see
// DESIGN.md, "Incremental analysis").
type Operator[T any] interface {
	Merge(T)
	Snapshot() T
}
