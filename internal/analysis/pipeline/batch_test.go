package pipeline

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/analysis/events"
	"repro/internal/ipfix"
)

// chunkBatches packs recs into static record batches of the given size.
// Each batch holds one permanent reference so the runner's retain/release
// cycles never return it to the pool.
func chunkBatches(recs []ipfix.FlowRecord, size int) []*ipfix.RecordBatch {
	var batches []*ipfix.RecordBatch
	for i := 0; i < len(recs); i += size {
		j := i + size
		if j > len(recs) {
			j = len(recs)
		}
		b := &ipfix.RecordBatch{Recs: recs[i:j]}
		b.Retain()
		batches = append(batches, b)
	}
	return batches
}

func batchSource(batches []*ipfix.RecordBatch) BatchSource {
	return func(fn ipfix.BatchSink) error {
		for _, b := range batches {
			if err := fn(b); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestObserveBatchParity pins the batch contract to the per-record one:
// ObserveBatch over a chunked stream must leave the exact state Observe
// leaves, and the zero-copy parallel dispatch (RunBatches) must merge to
// that same state at every worker count. This is the aggregator-level
// face of the byte-identical-reports guarantee the root-package golden
// and parity suites pin end to end.
func TestObserveBatchParity(t *testing.T) {
	recs := parityStream(30000)
	batches := chunkBatches(recs, 512)

	seq, err := New(testMeta(), parityUpdates(), events.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		seq.Observe(&recs[i])
	}
	ref := snap(seq)
	if ref.Attributed == 0 || ref.Dropped == 0 || len(ref.Profiles) == 0 {
		t.Fatalf("fixture too thin: %+v", ref.Cleaning)
	}

	t.Run("sequential", func(t *testing.T) {
		p, err := New(testMeta(), parityUpdates(), events.DefaultDelta)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			p.ObserveBatch(b)
		}
		snap(p).mustEqual(t, ref, "ObserveBatch")
	})

	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pp, err := NewParallel(testMeta(), parityUpdates(), events.DefaultDelta, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := pp.RunBatches(batchSource(batches)); err != nil {
				t.Fatal(err)
			}
			snap(pp.Pipeline()).mustEqual(t, ref, fmt.Sprintf("workers=%d", workers))
		})
	}
}

// TestObserveBatchAllocs gates the steady-state allocation rate of the
// batch observation path: once the operator state for a stream exists
// (maps populated, bounded structures saturated, memo cursors warm),
// re-observing the same records must allocate essentially nothing per
// record. First-pass allocations are state growth — proportional to
// distinct cells, not to records — and are excluded by the warm-up pass.
func TestObserveBatchAllocs(t *testing.T) {
	recs := parityStream(30000)
	batches := chunkBatches(recs, 512)

	p, err := New(testMeta(), parityUpdates(), events.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	observe := func() {
		for _, b := range batches {
			p.ObserveBatch(b)
		}
	}
	observe() // warm-up: grow all keyed state once

	perRun := testing.AllocsPerRun(3, observe)
	perRecord := perRun / float64(len(recs))
	t.Logf("allocs/record (warm) = %.4f (%.0f allocs over %d records)",
		perRecord, perRun, len(recs))
	// The only allowed steady-state allocations are the amortized growth
	// of the time-alignment interval arrays, which keep extending across
	// passes; everything else must be allocation-free.
	if perRecord > 0.01 {
		t.Fatalf("warm batch path allocates %.4f allocs/record, want ~0 (<= 0.01)", perRecord)
	}
}
