package pipeline

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/analysis/events"
	"repro/internal/analysis/mitigation"
)

// seedStates builds a spread of valid MarshalState encodings to seed
// the fuzzer: an empty pipeline, a populated speculative one, and the
// same state finalized — so mutations start from every codec branch
// (zero counts, pair tallies present/absent, populated operator blobs).
func seedStates(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(p *Pipeline) {
		data, err := p.MarshalState()
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, data)
	}

	empty, err := New(testMeta(), testUpdates(), events.DefaultDelta)
	if err != nil {
		f.Fatal(err)
	}
	add(empty)

	populated, err := New(testMeta(), testUpdates(), events.DefaultDelta)
	if err != nil {
		f.Fatal(err)
	}
	populated.speculative = true
	populated.Observe(rec(t0.Add(10*time.Minute), memberMAC200, blackholeMAC,
		0x50000001, victim.Addr, 389, 44444, 17))
	populated.Observe(rec(t0.Add(11*time.Minute), memberMAC200, memberMAC100,
		0x50000002, victim.Addr, 389, 44445, 17))
	populated.Observe(rec(t0.Add(12*time.Minute), memberMAC100, memberMAC200,
		victim.Addr, 0x50000001, 44444, 389, 17))
	// Populate the mitigation blob too, so the seventh snapshot section
	// starts from a non-empty encoding as well.
	populated.Mit.Add(victim, mitigation.PhaseRTBH, 17, 389, true, 3, 1500)
	populated.Mit.Add(victim, mitigation.PhaseFlowSpec, 6, 443, false, 2, 900)
	add(populated)

	populated.Finalize()
	add(populated)
	return seeds
}

// FuzzOperatorSnapshotRoundTrip fuzzes the pipeline state codec — the
// payload federation snapshots carry. Arbitrary input (truncations,
// version skew, corrupted counts and blob lengths) must either decode
// or error: never panic, and never over-allocate on a hostile count.
// Whenever a blob does decode, re-encoding it must be a byte-level
// fixed point — the codec is the state fingerprint federation parity
// relies on.
func FuzzOperatorSnapshotRoundTrip(f *testing.F) {
	for _, seed := range seedStates(f) {
		f.Add(seed)
		if len(seed) > 0 {
			f.Add(seed[:len(seed)/2]) // truncation
			skew := append([]byte(nil), seed...)
			skew[0]++ // version skew
			f.Add(skew)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalState(nil, data)
		if err != nil {
			return
		}
		out, err := p.MarshalState()
		if err != nil {
			t.Fatalf("re-marshal of decoded state failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode is not a fixed point: in %d bytes, out %d bytes", len(data), len(out))
		}
		// A decoded snapshot must still behave like an operator source:
		// folding it into a fresh decode of itself doubles nothing it
		// should not — exercised here only for panics, the merge parity
		// itself is the conformance suite's job.
		q, err := UnmarshalState(nil, data)
		if err != nil {
			t.Fatalf("second decode of accepted input failed: %v", err)
		}
		p.Fold(q)
		if _, err := p.MarshalState(); err != nil {
			t.Fatalf("marshal after fold failed: %v", err)
		}
	})
}
