// Parallel execution of the single-pass analysis: flow records fan out in
// batches to N workers, each owning a private shard of every operator;
// after the pass the shards Merge into the exact state the sequential
// pipeline would have produced.
//
// Determinism argument. Every piece of order-sensitive operator state is
// keyed by an address inside a blackholed prefix: anomaly slots by the
// matched prefix, protocol mixes and drop counters by the event (and
// thus its prefix), host profiles by the host address, pending collateral
// cells by the event's prefix. Records are partitioned by the top minLen
// bits of the relevant address, where minLen is the shortest blackhole
// prefix length present — so every address inside any one blackholed
// prefix maps to the same shard, and all records feeding one keyed
// aggregate arrive at one shard in stream order. Shard-local state is
// therefore bit-identical to the sequential operator's state for those
// keys, and Merge is a disjoint map union plus commutative counter sums.
// Records touching destination-keyed and source-keyed state are
// dispatched to both owning shards with a role mask, counted once by the
// destination role. The mitigation tallies are pure commutative sums
// keyed by the mitigated prefix, so they are exact under any partition —
// including FlowSpec-only prefixes absent from the blackhole index that
// decides the partition.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/mitigation"
	"repro/internal/ipfix"
	"repro/internal/obs"
)

// DefaultBatchSize is the number of records per dispatch batch; batching
// amortizes channel synchronization over ~200KB of records.
const DefaultBatchSize = 4096

// Source streams flow records to fn, exactly like Dataset.EachFlow.
type Source func(fn func(*ipfix.FlowRecord) error) error

// roles a record plays in its shard: destination-keyed processing
// (counters, drop/proto/anomaly/align/incoming-host/pending state) and
// source-keyed processing (outgoing-host state).
const (
	roleDst = 1 << iota
	roleSrc
)

type batchEntry struct {
	rec  ipfix.FlowRecord
	role uint8
}

// Parallel runs the single-pass analysis across worker-owned operator
// shards. Build with NewParallel, then Run, and read results from
// Pipeline().
type Parallel struct {
	workers   int
	batchSize int
	// shift positions the shard key at the top minLen bits of an address.
	shift uint
	// merged accumulates the combined state; shards hold per-worker state.
	merged *Pipeline
	shards []*Pipeline

	// obs is the optional instrumentation installed by Instrument.
	obs *parallelObs

	pool sync.Pool
}

// parallelObs is the parallel runner's instrumentation: per-shard record
// counters (incremented by the worker goroutines, hence atomic obs
// counters), per-operator merge timers, and a merge counter.
type parallelObs struct {
	shardRecords []*obs.Counter
	mergeTimers  MergeTimers
	merges       obs.Counter
}

// Instrument registers the runner's metrics: the merged pipeline's
// counters (pipeline.*, dropstats.*), one records counter per shard
// (pipeline.shard.NN.records, counting every record role the shard
// processed), the per-operator shard-merge timers (pipeline.merge.*),
// and pipeline.merges, the number of shard merges performed. Call before
// Run.
func (pp *Parallel) Instrument(reg *obs.Registry) {
	pp.merged.RegisterMetrics(reg)
	po := &parallelObs{}
	for i := range pp.shards {
		po.shardRecords = append(po.shardRecords, reg.Counter(fmt.Sprintf("pipeline.shard.%02d.records", i)))
	}
	reg.RegisterTimer("pipeline.merge.drop", &po.mergeTimers.Drop)
	reg.RegisterTimer("pipeline.merge.anomaly", &po.mergeTimers.Anomaly)
	reg.RegisterTimer("pipeline.merge.proto", &po.mergeTimers.Proto)
	reg.RegisterTimer("pipeline.merge.hosts", &po.mergeTimers.Hosts)
	reg.RegisterTimer("pipeline.merge.align", &po.mergeTimers.Align)
	reg.RegisterTimer("pipeline.merge.collateral", &po.mergeTimers.Collateral)
	reg.RegisterTimer("pipeline.merge.mitigation", &po.mergeTimers.Mitigation)
	reg.RegisterCounter("pipeline.merges", &po.merges)
	reg.GaugeFunc("pipeline.workers", func() int64 { return int64(pp.workers) })
	pp.obs = po
}

// NewParallel builds a parallel pipeline with the given worker count
// (<= 0 selects runtime.GOMAXPROCS). workers == 1 is valid and useful to
// exercise the batching path; for the plain sequential pipeline use New.
func NewParallel(meta *analysis.Metadata, updates []analysis.ControlUpdate, delta time.Duration, workers int) (*Parallel, error) {
	p, err := New(meta, updates, delta)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pp := &Parallel{
		workers:   workers,
		batchSize: DefaultBatchSize,
		merged:    p,
	}
	if ls := p.Index.Lengths(); len(ls) > 0 {
		pp.shift = uint(32 - ls[len(ls)-1])
	}
	for i := 0; i < workers; i++ {
		pp.shards = append(pp.shards, p.newShard())
	}
	return pp, nil
}

// Workers returns the number of worker shards.
func (pp *Parallel) Workers() int { return pp.workers }

// BindFlow points the merged pipeline and every shard at the FlowSpec
// mitigation view. Call before Run.
func (pp *Parallel) BindFlow(ix *mitigation.Index) {
	pp.merged.BindFlow(ix)
	for _, sh := range pp.shards {
		sh.BindFlow(ix)
	}
}

// Pipeline returns the merged pipeline. Its operators are complete once
// Run returned.
func (pp *Parallel) Pipeline() *Pipeline { return pp.merged }

// shardOf maps an address to its owning shard. Addresses inside the same
// blackholed prefix always collapse to the same key (see the package
// comment), so all state for one prefix/event/host is shard-local.
func (pp *Parallel) shardOf(ip uint32) int {
	key := uint64(ip >> pp.shift)
	// splitmix64 finalizer: spreads adjacent prefixes across shards.
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return int(key % uint64(pp.workers))
}

// Run streams src through the shards and merges the operator state into
// the merged pipeline.
func (pp *Parallel) Run(src Source) error {
	if err := pp.run(src); err != nil {
		return err
	}
	var tm *MergeTimers
	if pp.obs != nil {
		tm = &pp.obs.mergeTimers
	}
	for _, sh := range pp.shards {
		pp.merged.merge(sh, tm)
		if pp.obs != nil {
			pp.obs.merges.Inc()
		}
	}
	// Shards are consumed: replace their operators so a later misuse
	// cannot double-count into adopted structures.
	for i, sh := range pp.shards {
		pp.shards[i] = sh.newShard()
	}
	return nil
}

// run streams records into per-shard batch channels and waits for the
// workers to drain them. Per-shard record order equals stream order,
// which the determinism argument relies on.
func (pp *Parallel) run(src Source) error {
	chans := make([]chan []batchEntry, pp.workers)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan []batchEntry, 4)
		wg.Add(1)
		var recCount *obs.Counter
		if pp.obs != nil {
			recCount = pp.obs.shardRecords[i]
		}
		go func(sh *Pipeline, ch <-chan []batchEntry) {
			defer wg.Done()
			for batch := range ch {
				for j := range batch {
					e := &batch[j]
					if e.role&roleDst != 0 {
						sh.observeDst(&e.rec)
					}
					if e.role&roleSrc != 0 {
						sh.observeSrc(&e.rec)
					}
				}
				if recCount != nil {
					recCount.Add(int64(len(batch)))
				}
				pp.pool.Put(batch[:0]) //nolint:staticcheck // slice reuse
			}
		}(pp.shards[i], chans[i])
	}

	pending := make([][]batchEntry, pp.workers)
	newBatch := func() []batchEntry {
		if b, ok := pp.pool.Get().([]batchEntry); ok {
			return b
		}
		return make([]batchEntry, 0, pp.batchSize)
	}
	push := func(shard int, rec *ipfix.FlowRecord, role uint8) {
		b := pending[shard]
		if b == nil {
			b = newBatch()
		}
		b = append(b, batchEntry{rec: *rec, role: role})
		if len(b) >= pp.batchSize {
			chans[shard] <- b
			b = nil
		}
		pending[shard] = b
	}

	err := src(func(rec *ipfix.FlowRecord) error {
		sd := pp.shardOf(rec.DstIP)
		if ss := pp.shardOf(rec.SrcIP); ss != sd {
			push(sd, rec, roleDst)
			push(ss, rec, roleSrc)
		} else {
			push(sd, rec, roleDst|roleSrc)
		}
		return nil
	})
	for i, b := range pending {
		if len(b) > 0 {
			chans[i] <- b
		}
		close(chans[i])
	}
	wg.Wait()
	return err
}
