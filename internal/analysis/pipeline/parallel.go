// Parallel execution of the single-pass analysis: flow records fan out in
// batches to N workers, each owning a private shard of every operator;
// after the pass the shards Merge into the exact state the sequential
// pipeline would have produced.
//
// Determinism argument. Every piece of order-sensitive operator state is
// keyed by an address inside a blackholed prefix: anomaly slots by the
// matched prefix, protocol mixes and drop counters by the event (and
// thus its prefix), host profiles by the host address, pending collateral
// cells by the event's prefix. Records are partitioned by the top minLen
// bits of the relevant address, where minLen is the shortest blackhole
// prefix length present — so every address inside any one blackholed
// prefix maps to the same shard, and all records feeding one keyed
// aggregate arrive at one shard in stream order. Shard-local state is
// therefore bit-identical to the sequential operator's state for those
// keys, and Merge is a disjoint map union plus commutative counter sums.
// Records touching destination-keyed and source-keyed state are
// dispatched to both owning shards with a role mask, counted once by the
// destination role. The mitigation tallies are pure commutative sums
// keyed by the mitigated prefix, so they are exact under any partition —
// including FlowSpec-only prefixes absent from the blackhole index that
// decides the partition.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/mitigation"
	"repro/internal/ipfix"
	"repro/internal/obs"
)

// DefaultBatchSize is the number of records per dispatch batch; batching
// amortizes channel synchronization over ~200KB of records.
const DefaultBatchSize = 4096

// Source streams flow records to fn, exactly like Dataset.EachFlow.
type Source func(fn func(*ipfix.FlowRecord) error) error

// BatchSource streams pooled record batches to fn, exactly like
// Dataset.EachFlowBatch. The runner retains each batch (per the
// ipfix.RecordBatch contract) until every shard has processed its
// records, so records are dispatched zero-copy.
type BatchSource func(fn ipfix.BatchSink) error

// Shard keys pack a record's index in its batch with the roles the
// record plays at the receiving shard: destination-keyed processing
// (counters, drop/proto/anomaly/align/incoming-host/pending state) and
// source-keyed processing (outgoing-host state).
const (
	keyDst   = 1 << 30
	keySrc   = 1 << 31
	keyIndex = keyDst - 1
)

// shardChunk hands one shared (retained) batch to a shard with the
// packed keys of the records it owns, in stream order.
type shardChunk struct {
	batch *ipfix.RecordBatch
	keys  []uint32
}

// Parallel runs the single-pass analysis across worker-owned operator
// shards. Build with NewParallel, then Run, and read results from
// Pipeline().
type Parallel struct {
	workers   int
	batchSize int
	// shift positions the shard key at the top minLen bits of an address.
	shift uint
	// merged accumulates the combined state; shards hold per-worker state.
	merged *Pipeline
	shards []*Pipeline

	// obs is the optional instrumentation installed by Instrument.
	obs *parallelObs

	// pool recycles the per-shard key slices of the dispatch path.
	pool sync.Pool
}

// parallelObs is the parallel runner's instrumentation: per-shard record
// counters (incremented by the worker goroutines, hence atomic obs
// counters), per-operator merge timers, and a merge counter.
type parallelObs struct {
	shardRecords []*obs.Counter
	mergeTimers  MergeTimers
	merges       obs.Counter
}

// Instrument registers the runner's metrics: the merged pipeline's
// counters (pipeline.*, dropstats.*), one records counter per shard
// (pipeline.shard.NN.records, counting every record role the shard
// processed), the per-operator shard-merge timers (pipeline.merge.*),
// and pipeline.merges, the number of shard merges performed. Call before
// Run.
func (pp *Parallel) Instrument(reg *obs.Registry) {
	pp.merged.RegisterMetrics(reg)
	po := &parallelObs{}
	for i := range pp.shards {
		po.shardRecords = append(po.shardRecords, reg.Counter(fmt.Sprintf("pipeline.shard.%02d.records", i)))
	}
	reg.RegisterTimer("pipeline.merge.drop", &po.mergeTimers.Drop)
	reg.RegisterTimer("pipeline.merge.anomaly", &po.mergeTimers.Anomaly)
	reg.RegisterTimer("pipeline.merge.proto", &po.mergeTimers.Proto)
	reg.RegisterTimer("pipeline.merge.hosts", &po.mergeTimers.Hosts)
	reg.RegisterTimer("pipeline.merge.align", &po.mergeTimers.Align)
	reg.RegisterTimer("pipeline.merge.collateral", &po.mergeTimers.Collateral)
	reg.RegisterTimer("pipeline.merge.mitigation", &po.mergeTimers.Mitigation)
	reg.RegisterCounter("pipeline.merges", &po.merges)
	reg.GaugeFunc("pipeline.workers", func() int64 { return int64(pp.workers) })
	pp.obs = po
}

// NewParallel builds a parallel pipeline with the given worker count
// (<= 0 selects runtime.GOMAXPROCS). workers == 1 is valid and useful to
// exercise the batching path; for the plain sequential pipeline use New.
func NewParallel(meta *analysis.Metadata, updates []analysis.ControlUpdate, delta time.Duration, workers int) (*Parallel, error) {
	p, err := New(meta, updates, delta)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pp := &Parallel{
		workers:   workers,
		batchSize: DefaultBatchSize,
		merged:    p,
	}
	if ls := p.Index.Lengths(); len(ls) > 0 {
		pp.shift = uint(32 - ls[len(ls)-1])
	}
	for i := 0; i < workers; i++ {
		pp.shards = append(pp.shards, p.newShard())
	}
	return pp, nil
}

// Workers returns the number of worker shards.
func (pp *Parallel) Workers() int { return pp.workers }

// BindFlow points the merged pipeline and every shard at the FlowSpec
// mitigation view. Call before Run.
func (pp *Parallel) BindFlow(ix *mitigation.Index) {
	pp.merged.BindFlow(ix)
	for _, sh := range pp.shards {
		sh.BindFlow(ix)
	}
}

// Pipeline returns the merged pipeline. Its operators are complete once
// Run returned.
func (pp *Parallel) Pipeline() *Pipeline { return pp.merged }

// shardOf maps an address to its owning shard. Addresses inside the same
// blackholed prefix always collapse to the same key (see the package
// comment), so all state for one prefix/event/host is shard-local.
func (pp *Parallel) shardOf(ip uint32) int {
	key := uint64(ip >> pp.shift)
	// splitmix64 finalizer: spreads adjacent prefixes across shards.
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return int(key % uint64(pp.workers))
}

// Run streams per-record src through the shards. The records are packed
// into pooled batches (one copy, as any record source must materialize
// them somewhere) and handed to the zero-copy batch path.
func (pp *Parallel) Run(src Source) error {
	return pp.RunBatches(func(fn ipfix.BatchSink) error {
		b := ipfix.GetBatch()
		err := src(func(rec *ipfix.FlowRecord) error {
			b.Recs = append(b.Recs, *rec)
			if len(b.Recs) >= pp.batchSize {
				if err := fn(b); err != nil {
					return err
				}
				b.Release()
				b = ipfix.GetBatch()
			}
			return nil
		})
		if err == nil && len(b.Recs) > 0 {
			err = fn(b)
		}
		b.Release()
		return err
	})
}

// RunBatches streams src through the shards and merges the operator
// state into the merged pipeline. Batches are shared with the workers by
// reference — each shard receives the packed indices of the records it
// owns and the batch is released once every owning shard is done — so
// no record is copied on the way to its operators.
func (pp *Parallel) RunBatches(src BatchSource) error {
	if err := pp.runBatches(src); err != nil {
		return err
	}
	var tm *MergeTimers
	if pp.obs != nil {
		tm = &pp.obs.mergeTimers
	}
	for _, sh := range pp.shards {
		pp.merged.merge(sh, tm)
		if pp.obs != nil {
			pp.obs.merges.Inc()
		}
	}
	// Shards are consumed: replace their operators so a later misuse
	// cannot double-count into adopted structures.
	for i, sh := range pp.shards {
		pp.shards[i] = sh.newShard()
	}
	return nil
}

// runBatches dispatches each batch's records to their owning shards and
// waits for the workers to drain. Per-shard record order equals stream
// order (chunks are sent in batch order, keys within a chunk in record
// order), which the determinism argument relies on.
func (pp *Parallel) runBatches(src BatchSource) error {
	chans := make([]chan shardChunk, pp.workers)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan shardChunk, 4)
		wg.Add(1)
		var recCount *obs.Counter
		if pp.obs != nil {
			recCount = pp.obs.shardRecords[i]
		}
		go func(sh *Pipeline, ch <-chan shardChunk) {
			defer wg.Done()
			for ck := range ch {
				recs := ck.batch.Recs
				for _, k := range ck.keys {
					rec := &recs[k&keyIndex]
					if k&keyDst != 0 {
						sh.observeDst(rec)
					}
					if k&keySrc != 0 {
						sh.observeSrc(rec)
					}
				}
				if recCount != nil {
					recCount.Add(int64(len(ck.keys)))
				}
				ck.batch.Release()
				pp.pool.Put(ck.keys[:0]) //nolint:staticcheck // slice reuse
			}
		}(pp.shards[i], chans[i])
	}

	newKeys := func() []uint32 {
		if ks, ok := pp.pool.Get().([]uint32); ok {
			return ks
		}
		return make([]uint32, 0, pp.batchSize)
	}
	scratch := make([][]uint32, pp.workers)
	for i := range scratch {
		scratch[i] = newKeys()
	}

	err := src(func(b *ipfix.RecordBatch) error {
		recs := b.Recs
		if len(recs) == 0 {
			return nil
		}
		if len(recs) > keyIndex {
			return fmt.Errorf("pipeline: batch of %d records exceeds dispatch key space", len(recs))
		}
		for i := range recs {
			sd := pp.shardOf(recs[i].DstIP)
			if ss := pp.shardOf(recs[i].SrcIP); ss != sd {
				scratch[sd] = append(scratch[sd], uint32(i)|keyDst)
				scratch[ss] = append(scratch[ss], uint32(i)|keySrc)
			} else {
				scratch[sd] = append(scratch[sd], uint32(i)|keyDst|keySrc)
			}
		}
		for s, keys := range scratch {
			if len(keys) == 0 {
				continue
			}
			b.Retain()
			chans[s] <- shardChunk{batch: b, keys: keys}
			scratch[s] = newKeys()
		}
		return nil
	})
	for i := range chans {
		close(chans[i])
	}
	wg.Wait()
	return err
}
