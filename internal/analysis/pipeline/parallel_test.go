package pipeline

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/collateral"
	"repro/internal/analysis/dropstats"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/protomix"
	"repro/internal/analysis/timealign"
	"repro/internal/bgp"
	"repro/internal/ipfix"
	"repro/internal/stats"
)

// The parity fixture: several blackholed prefixes of different lengths
// (so the shard key uses a real minLen), repeated episodes, and two
// announcing peers.
var (
	block26 = bgp.MustParsePrefix("203.0.113.64/26")
	net24   = bgp.MustParsePrefix("198.51.100.0/24")
	solo32  = bgp.MustParsePrefix("192.0.2.77/32")
)

type episode struct {
	prefix     bgp.Prefix
	start, end time.Time
}

func parityEpisodes() []episode {
	return []episode{
		{victim, t0, t0.Add(time.Hour)},
		{victim, t0.Add(48 * time.Hour), t0.Add(49 * time.Hour)},
		{block26, t0.Add(2 * time.Hour), t0.Add(3 * time.Hour)},
		{net24, t0.Add(30 * time.Minute), t0.Add(90 * time.Minute)},
		{solo32, t0.Add(24 * time.Hour), t0.Add(25 * time.Hour)},
	}
}

func parityUpdates() []analysis.ControlUpdate {
	var ups []analysis.ControlUpdate
	for i, ep := range parityEpisodes() {
		peer := uint32(100)
		if i%2 == 1 {
			peer = 200
		}
		ups = append(ups,
			analysis.ControlUpdate{Time: ep.start, Peer: peer, Prefix: ep.prefix,
				Announce: true, OriginAS: 777, Communities: bgp.Communities{bgp.Blackhole}},
			analysis.ControlUpdate{Time: ep.end, Peer: peer, Prefix: ep.prefix})
	}
	return ups
}

// blackholedAddr picks a deterministic address inside one of the fixture
// prefixes.
func blackholedAddr(r *stats.RNG) uint32 {
	switch r.Intn(4) {
	case 0:
		return victim.Addr
	case 1:
		return block26.Addr + uint32(r.Intn(64))
	case 2:
		return net24.Addr + uint32(r.Intn(256))
	default:
		return solo32.Addr
	}
}

// parityStream synthesizes a deterministic flow archive covering every
// pipeline path: internal records, dropped and forwarded attack traffic
// during events, pre-event bursts (anomaly window), multi-day legitimate
// traffic in both directions (host profiling), source-blackholed records,
// and unattributable noise.
func parityStream(n int) []ipfix.FlowRecord {
	r := stats.NewRNG(0xD15EA5E)
	meta := testMeta()
	eps := parityEpisodes()
	period := int64(meta.End.Sub(meta.Start))
	ampPorts := []uint16{389, 123, 53, 19, 161}

	recs := make([]ipfix.FlowRecord, 0, n)
	add := func(at time.Time, srcMAC, dstMAC ipfix.MAC, srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) {
		pkts := uint64(1 + r.Intn(20))
		recs = append(recs, ipfix.FlowRecord{
			Start: at, SrcMAC: srcMAC, DstMAC: dstMAC,
			SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort,
			Proto: proto, Packets: pkts, Bytes: 64 * pkts,
		})
	}
	randIP := func() uint32 {
		if r.Bool(0.5) {
			return 0x50000000 + uint32(r.Intn(1<<16)) // inside 80/8 -> AS9000
		}
		return uint32(r.Uint64())
	}
	randTime := func() time.Time { return meta.Start.Add(time.Duration(r.Int63n(period))) }

	for len(recs) < n {
		switch k := r.Intn(100); {
		case k < 5: // internal, cleaned away
			add(randTime(), memberMAC100, internalMAC, randIP(), randIP(), 1, 2, 6)
		case k < 35: // attack traffic during an episode
			ep := eps[r.Intn(len(eps))]
			at := ep.start.Add(time.Duration(r.Int63n(int64(ep.end.Sub(ep.start)))))
			dstMAC := memberMAC100
			if r.Bool(0.6) {
				dstMAC = blackholeMAC
			}
			dst := ep.prefix.Addr
			if bits := 32 - int(ep.prefix.Len); bits > 0 {
				dst += uint32(r.Intn(1 << bits))
			}
			add(at, memberMAC200, dstMAC, randIP(), dst, ampPorts[r.Intn(len(ampPorts))],
				uint16(1024+r.Intn(60000)), 17)
		case k < 55: // pre-event burst inside the anomaly window
			ep := eps[r.Intn(len(eps))]
			at := ep.start.Add(-time.Duration(1+r.Intn(19)) * time.Minute)
			add(at, memberMAC200, memberMAC100, randIP(), ep.prefix.Addr,
				ampPorts[r.Intn(len(ampPorts))], uint16(1024+r.Intn(60000)), 17)
		case k < 75: // legitimate multi-day traffic for host profiling
			host := blackholedAddr(r)
			at := meta.Start.Add(time.Duration(1+r.Intn(12))*24*time.Hour +
				time.Duration(r.Intn(6))*time.Hour)
			if r.Bool(0.5) {
				add(at, memberMAC200, memberMAC100, randIP(), host,
					uint16(20000+r.Intn(30000)), 443, 6)
			} else {
				add(at, memberMAC100, memberMAC200, host, randIP(),
					443, uint16(20000+r.Intn(30000)), 6)
			}
		case k < 85: // source-side blackholed host
			add(randTime(), memberMAC100, memberMAC200, blackholedAddr(r), randIP(),
				uint16(1024+r.Intn(60000)), 80, 6)
		default: // unattributable noise
			add(randTime(), memberMAC100, memberMAC200, randIP(), randIP(),
				uint16(r.Intn(1<<16)), uint16(r.Intn(1<<16)), 6)
		}
	}
	return recs
}

func sliceSource(recs []ipfix.FlowRecord) Source {
	return func(fn func(*ipfix.FlowRecord) error) error {
		for i := range recs {
			if err := fn(&recs[i]); err != nil {
				return err
			}
		}
		return nil
	}
}

// snapshot captures every derived outcome the report reads from a
// pipeline; two pipelines with equal snapshots produce identical reports.
type snapshot struct {
	Total, Internal, Attributed, Dropped int64
	Cleaning                             string

	ByLength          []dropstats.LengthStat
	AvgPkts, AvgBytes float64
	Top               []dropstats.SourceBehaviour
	Classes           dropstats.SourceClasses
	DropEvents        int

	Slots    int
	Verdicts []anomaly.Verdict

	WithData   []int
	Shares     protomix.ProtocolShares
	Filterable []float64
	Origin     protomix.Participation
	Handover   protomix.Participation
	Scale      protomix.AttackScale

	Hosts    int
	Profiles []hosts.Profile

	Align *timealign.Result

	Collateral *collateral.Result
}

func snap(p *Pipeline) snapshot {
	withData := p.Proto.EventsWithData()
	profiles := p.ComposeProfiles(2)
	return snapshot{
		Total: p.TotalRecords, Internal: p.InternalRecords,
		Attributed: p.AttributedRecords, Dropped: p.DroppedRecords,
		Cleaning: p.CleaningSummary(),

		ByLength:   p.Drop.ByLength(),
		Top:        p.Drop.TopSources(50),
		Classes:    p.Drop.ClassifyTopSources(50),
		DropEvents: p.Drop.Events(),

		Slots:    p.Anomaly.Slots(),
		Verdicts: p.Anomaly.Analyze(p.Events, p.Index.PeriodEnd(), anomaly.DefaultThreshold),

		WithData:   withData,
		Shares:     p.Proto.Shares(withData),
		Filterable: p.Proto.FilterableShares(withData),
		Origin:     p.Proto.OriginParticipation(withData),
		Handover:   p.Proto.HandoverParticipation(withData),
		Scale:      p.Proto.Scale(withData),

		Hosts:    p.Hosts.Hosts(),
		Profiles: profiles,

		Align: p.Align.Estimate(50 * time.Millisecond),

		Collateral: p.ComposeCollateral(profiles).Result(),
	}
}

func (s snapshot) mustEqual(t *testing.T, ref snapshot, label string) {
	t.Helper()
	if reflect.DeepEqual(s, ref) {
		return
	}
	rv, ov := reflect.ValueOf(ref), reflect.ValueOf(s)
	for i := 0; i < rv.NumField(); i++ {
		if !reflect.DeepEqual(rv.Field(i).Interface(), ov.Field(i).Interface()) {
			t.Errorf("%s: field %s diverges:\nsequential: %+v\nparallel:   %+v",
				label, rv.Type().Field(i).Name, rv.Field(i).Interface(), ov.Field(i).Interface())
		}
	}
	if !t.Failed() {
		t.Fatalf("%s: snapshots differ in unexported state", label)
	}
}

// TestParallelParity is the determinism guarantee of the sharded runner:
// for every worker count the merged state matches the sequential pipeline
// exactly, down to bounded-structure saturation behaviour.
func TestParallelParity(t *testing.T) {
	recs := parityStream(30000)
	src := sliceSource(recs)

	seq, err := New(testMeta(), parityUpdates(), events.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		seq.Observe(&recs[i])
	}
	ref := snap(seq)
	if len(ref.Profiles) == 0 {
		t.Fatal("fixture produced no host profiles; parity would be vacuous")
	}
	if ref.Attributed == 0 || ref.Dropped == 0 || ref.Slots == 0 || len(ref.WithData) == 0 {
		t.Fatalf("fixture too thin: %+v", ref.Cleaning)
	}

	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pp, err := NewParallel(testMeta(), parityUpdates(), events.DefaultDelta, workers)
			if err != nil {
				t.Fatal(err)
			}
			pp.batchSize = 64 // force many batches per shard
			if err := pp.Run(src); err != nil {
				t.Fatal(err)
			}
			snap(pp.Pipeline()).mustEqual(t, ref, fmt.Sprintf("workers=%d", workers))
		})
	}
}

// TestParallelSourceError verifies a source error aborts the run.
func TestParallelSourceError(t *testing.T) {
	pp, err := NewParallel(testMeta(), parityUpdates(), events.DefaultDelta, 3)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	bad := Source(func(fn func(*ipfix.FlowRecord) error) error { return boom })
	if err := pp.Run(bad); err != boom {
		t.Fatalf("Run err = %v, want boom", err)
	}
}

// TestParallelDefaultsWorkers checks the GOMAXPROCS default.
func TestParallelDefaultsWorkers(t *testing.T) {
	pp, err := NewParallel(testMeta(), parityUpdates(), events.DefaultDelta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS", pp.Workers())
	}
}
