// Package pipeline orchestrates the full data-plane analysis: it joins
// each sampled flow record against the control-plane event structure
// exactly once and dispatches the attributed observation to the
// per-question aggregators (drop statistics, anomaly features, protocol
// mix, host profiles, time alignment, collateral damage).
//
// The pipeline runs in two streaming passes over the flow archive, like
// the paper's own processing: the first pass needs only the control
// plane; the second pass (collateral damage) additionally needs the
// server top-ports detected by the first.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/collateral"
	"repro/internal/analysis/dropstats"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/protomix"
	"repro/internal/analysis/timealign"
	"repro/internal/ipfix"
	"repro/internal/obs"
)

// ReactionBuffer is prepended to each event when selecting legitimate
// traffic for host profiling (§6.1: a 10-minute reaction time during
// which traffic is not classified as legitimate).
const ReactionBuffer = 10 * time.Minute

// Pipeline is the two-pass streaming analyzer.
type Pipeline struct {
	Meta   *analysis.Metadata
	Events []*events.Event
	Index  *events.Index

	Drop    *dropstats.Aggregator
	Anomaly *anomaly.Aggregator
	Proto   *protomix.Aggregator
	Hosts   *hosts.Aggregator
	Align   *timealign.Aggregator

	// Collateral is available after StartPass2.
	Collateral *collateral.Aggregator
	// Profiles are the host profiles computed by FinishPass1.
	Profiles []hosts.Profile

	// Counters of the cleaning and attribution steps (§3.1).
	TotalRecords      int64
	InternalRecords   int64
	AttributedRecords int64
	DroppedRecords    int64
}

// New builds a pipeline: events are merged from the update stream with
// the given threshold (events.DefaultDelta for the paper's 10 minutes).
func New(meta *analysis.Metadata, updates []analysis.ControlUpdate, delta time.Duration) (*Pipeline, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	evs := events.Merge(updates, delta, meta.End)
	ix := events.NewIndex(evs, meta.End)
	return &Pipeline{
		Meta:    meta,
		Events:  evs,
		Index:   ix,
		Drop:    dropstats.New(),
		Anomaly: anomaly.New(),
		Proto:   protomix.New(),
		Hosts:   hosts.New(),
		Align:   timealign.New(ix),
	}, nil
}

// newShard returns a pipeline sharing p's immutable control-plane state
// (metadata, events, attribution index — all read-only during the
// streaming passes) with fresh, empty aggregators.
func (p *Pipeline) newShard() *Pipeline {
	return &Pipeline{
		Meta:    p.Meta,
		Events:  p.Events,
		Index:   p.Index,
		Drop:    dropstats.New(),
		Anomaly: anomaly.New(),
		Proto:   protomix.New(),
		Hosts:   hosts.New(),
		Align:   timealign.New(p.Index),
	}
}

// MergeTimers holds per-aggregator span timers for the shard-merge stage
// of the parallel runner. Each shard merge contributes one span per
// aggregator.
type MergeTimers struct {
	Drop, Anomaly, Proto, Hosts, Align, Collateral obs.Timer
}

// spanned runs fn under t when timing is enabled (t may be nil).
func spanned(t *obs.Timer, fn func()) {
	if t == nil {
		fn()
		return
	}
	sp := t.Start()
	fn()
	sp.End()
}

// mergePass1 folds o's first-pass state into p, timing each aggregator
// merge when tm is non-nil. o must not observe any further records.
func (p *Pipeline) mergePass1(o *Pipeline, tm *MergeTimers) {
	p.TotalRecords += o.TotalRecords
	p.InternalRecords += o.InternalRecords
	p.AttributedRecords += o.AttributedRecords
	p.DroppedRecords += o.DroppedRecords
	var drop, anom, proto, hosts, align *obs.Timer
	if tm != nil {
		drop, anom, proto, hosts, align = &tm.Drop, &tm.Anomaly, &tm.Proto, &tm.Hosts, &tm.Align
	}
	spanned(drop, func() { p.Drop.Merge(o.Drop) })
	spanned(anom, func() { p.Anomaly.Merge(o.Anomaly) })
	spanned(proto, func() { p.Proto.Merge(o.Proto) })
	spanned(hosts, func() { p.Hosts.Merge(o.Hosts) })
	spanned(align, func() { p.Align.Merge(o.Align) })
}

// RegisterMetrics exposes the pipeline's cleaning counters, event and
// profile populations, and the drop-statistics totals under the
// "pipeline." and "dropstats." prefixes. The gauges read pipeline state
// at snapshot time; snapshot after the passes finished. The registered
// values reconcile exactly with the rendered report: records.dropped
// equals the report's DroppedRecords, and the dropstats totals sum the
// Fig 5 rows (see DESIGN.md, "Observability").
func (p *Pipeline) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("pipeline.records.total", func() int64 { return p.TotalRecords })
	reg.GaugeFunc("pipeline.records.internal", func() int64 { return p.InternalRecords })
	reg.GaugeFunc("pipeline.records.attributed", func() int64 { return p.AttributedRecords })
	reg.GaugeFunc("pipeline.records.dropped", func() int64 { return p.DroppedRecords })
	reg.GaugeFunc("pipeline.events", func() int64 { return int64(len(p.Events)) })
	reg.GaugeFunc("pipeline.profiles", func() int64 { return int64(len(p.Profiles)) })
	reg.GaugeFunc("dropstats.events", func() int64 { return int64(p.Drop.Events()) })
	reg.GaugeFunc("dropstats.dropped_pkts", func() int64 { return p.Drop.Totals().DroppedPkts })
	reg.GaugeFunc("dropstats.forwarded_pkts", func() int64 { return p.Drop.Totals().ForwardedPkts })
	reg.GaugeFunc("dropstats.dropped_bytes", func() int64 { return p.Drop.Totals().DroppedBytes })
	reg.GaugeFunc("dropstats.forwarded_bytes", func() int64 { return p.Drop.Totals().ForwardedBytes })
}

// ObservePass1 processes one flow record in the first pass.
//
// The pass is split into a destination-keyed and a source-keyed half so
// that the parallel runner can route each half to the shard owning the
// respective address; run back to back they are exactly the sequential
// first pass.
func (p *Pipeline) ObservePass1(rec *ipfix.FlowRecord) {
	p.observePass1Dst(rec)
	p.observePass1Src(rec)
}

// observePass1Dst handles the cleaning counters and all aggregations
// keyed by the destination address (drop stats, protocol mix, anomaly
// features, time alignment, incoming host traffic).
func (p *Pipeline) observePass1Dst(rec *ipfix.FlowRecord) {
	p.TotalRecords++
	if p.Meta.IsInternal(rec) {
		p.InternalRecords++
		return
	}
	dropped := rec.DstMAC == p.Meta.BlackholeMAC
	if dropped {
		p.DroppedRecords++
		p.Align.AddDropped(rec.DstIP, rec.Start)
	}
	srcMember := p.Meta.MemberOf(rec.SrcMAC)
	pkts := int64(rec.Packets)
	bytes := int64(rec.Bytes)

	_, dstBH := p.Index.EverBlackholed(rec.DstIP)
	_, srcBH := p.Index.EverBlackholed(rec.SrcIP)
	if !dstBH && !srcBH {
		return
	}
	p.AttributedRecords++
	if !dstBH {
		return
	}
	day := int32(analysis.Day(p.Meta.Start, rec.Start))

	m := p.Index.Lookup(rec.DstIP, rec.Start)
	if m.Active {
		p.Drop.Add(m.Event.ID, m.Prefix.Len, srcMember, dropped, pkts, bytes)
	}
	if m.Event != nil {
		originAS, _ := p.Meta.IP2AS.Lookup(rec.SrcIP)
		p.Proto.Add(m.Event.ID, rec.Proto, rec.SrcIP, rec.SrcPort, pkts, originAS, srcMember)
	}
	if prefix, ok := p.Index.Interesting(rec.DstIP, rec.Start); ok {
		p.Anomaly.Add(prefix, rec.Start, rec.SrcIP, rec.SrcPort, rec.DstPort, rec.Proto, pkts)
	}
	if m.Event == nil && p.legitAt(rec.DstIP, rec.Start) {
		p.Hosts.AddIncoming(rec.DstIP, day, rec.SrcPort, rec.DstPort, rec.Proto, pkts)
	}
}

// observePass1Src handles the aggregation keyed by the source address
// (outgoing host traffic). Counters are owned by observePass1Dst so that
// a record dispatched to two shards is counted once.
func (p *Pipeline) observePass1Src(rec *ipfix.FlowRecord) {
	if p.Meta.IsInternal(rec) {
		return
	}
	if _, srcBH := p.Index.EverBlackholed(rec.SrcIP); !srcBH {
		return
	}
	mSrc := p.Index.Lookup(rec.SrcIP, rec.Start)
	if mSrc.Event == nil && p.legitAt(rec.SrcIP, rec.Start) {
		day := int32(analysis.Day(p.Meta.Start, rec.Start))
		p.Hosts.AddOutgoing(rec.SrcIP, day, rec.SrcPort, rec.DstPort, rec.Proto, int64(rec.Packets))
	}
}

// legitAt reports that no event window starts within the reaction buffer
// after t (the caller has already checked that t itself is outside any
// window).
func (p *Pipeline) legitAt(ip uint32, t time.Time) bool {
	m := p.Index.Lookup(ip, t.Add(ReactionBuffer))
	return m.Event == nil
}

// FinishPass1 computes host profiles (the §6 population) and prepares the
// collateral aggregator for the second pass. minActiveDays is the
// detection criterion (hosts.MinActiveDays for the paper's 20).
func (p *Pipeline) FinishPass1(minActiveDays int) {
	p.Profiles = p.Hosts.Profiles(minActiveDays)
	p.Collateral = collateral.New(p.Profiles)
}

// ObservePass2 processes one flow record in the second pass. It panics if
// FinishPass1 has not run — that is a programming error, not bad data.
func (p *Pipeline) ObservePass2(rec *ipfix.FlowRecord) {
	if p.Collateral == nil {
		panic("pipeline: ObservePass2 before FinishPass1")
	}
	if p.Meta.IsInternal(rec) {
		return
	}
	m := p.Index.Lookup(rec.DstIP, rec.Start)
	if m.Event == nil {
		return
	}
	dropped := rec.DstMAC == p.Meta.BlackholeMAC
	p.Collateral.Add(m.Event.ID, rec.DstIP, rec.DstPort, rec.Proto, dropped, int64(rec.Packets))
}

// CleaningSummary describes the §3.1 data-cleaning outcome. With no
// records processed the internal share is reported as "n/a" rather than
// a fabricated 0.0000% — there is no measurement to report.
func (p *Pipeline) CleaningSummary() string {
	if p.TotalRecords == 0 {
		return fmt.Sprintf("records=0 internal=0 (n/a) attributed=%d dropped=%d",
			p.AttributedRecords, p.DroppedRecords)
	}
	return fmt.Sprintf("records=%d internal=%d (%.4f%%) attributed=%d dropped=%d",
		p.TotalRecords, p.InternalRecords,
		100*float64(p.InternalRecords)/float64(p.TotalRecords),
		p.AttributedRecords, p.DroppedRecords)
}
