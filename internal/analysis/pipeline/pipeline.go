// Package pipeline orchestrates the full data-plane analysis: it joins
// each sampled flow record against the control-plane event structure
// exactly once and dispatches the attributed observation to the
// per-question incremental operators (drop statistics, anomaly features,
// protocol mix, host profiles, time alignment, collateral damage).
//
// The pipeline runs in a single streaming pass over the flow archive.
// The collateral-damage question — which historically forced a second
// pass because it needs the server top-ports detected by host profiling —
// is answered from a compact pending store keyed by (event, destination,
// proto/port): whether a packet counts as collateral depends only on
// those coordinates, so tallying during the pass and filtering against
// the top-port sets at compose time is exact (see collateral.Pending).
//
// Every aggregator satisfies the analysis.Operator contract
// (Observe/Merge/Snapshot), which is what lets one engine serve three
// drivers: the sequential batch pass, the sharded parallel runner
// (Merge), and the online analyzer (Snapshot + speculative observation;
// see NewSpeculative and DESIGN.md, "Incremental analysis").
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/collateral"
	"repro/internal/analysis/dropstats"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/mitigation"
	"repro/internal/analysis/protomix"
	"repro/internal/analysis/timealign"
	"repro/internal/ipfix"
	"repro/internal/obs"
)

// Compile-time checks that every streaming stage satisfies the Operator
// contract (internal/analysis).
var (
	_ analysis.Operator[*dropstats.Aggregator]  = (*dropstats.Aggregator)(nil)
	_ analysis.Operator[*anomaly.Aggregator]    = (*anomaly.Aggregator)(nil)
	_ analysis.Operator[*protomix.Aggregator]   = (*protomix.Aggregator)(nil)
	_ analysis.Operator[*hosts.Aggregator]      = (*hosts.Aggregator)(nil)
	_ analysis.Operator[*timealign.Aggregator]  = (*timealign.Aggregator)(nil)
	_ analysis.Operator[*collateral.Aggregator] = (*collateral.Aggregator)(nil)
	_ analysis.Operator[*collateral.Pending]    = (*collateral.Pending)(nil)
	_ analysis.Operator[*mitigation.Aggregator] = (*mitigation.Aggregator)(nil)
)

// ReactionBuffer is prepended to each event when selecting legitimate
// traffic for host profiling (§6.1: a 10-minute reaction time during
// which traffic is not classified as legitimate).
const ReactionBuffer = 10 * time.Minute

// Pipeline is the single-pass streaming analyzer.
type Pipeline struct {
	Meta   *analysis.Metadata
	Events []*events.Event
	Index  *events.Index

	Drop    *dropstats.Aggregator
	Anomaly *anomaly.Aggregator
	Proto   *protomix.Aggregator
	Hosts   *hosts.Aggregator
	Align   *timealign.Aggregator
	// Mit compares FlowSpec against RTBH on the mitigated traffic (the
	// Table 5 experiment); FlowIx is the FlowSpec-window view it
	// attributes against, bound via BindFlow (nil-safe: with no windows
	// the operator stays empty).
	Mit    *mitigation.Aggregator
	FlowIx *mitigation.Index

	// Pending holds the compact during-event tallies that become the
	// collateral-damage result once ComposeCollateral filters them
	// through the detected server top ports.
	Pending *collateral.Pending

	// Counters of the cleaning and attribution steps (§3.1).
	TotalRecords      int64
	InternalRecords   int64
	AttributedRecords int64
	DroppedRecords    int64

	// curDst/curSrc memoize the attribution probes per address run (see
	// events.Cursor): the flow stream arrives in long stretches sharing
	// endpoints, so the prefix-map hashing that dominates a naive pass
	// resolves once per stretch. Destination- and source-keyed queries
	// get separate cursors because both address runs persist
	// independently across records.
	curDst, curSrc *events.Cursor

	// MAC-derived metadata memo (IsInternal and the ingress member):
	// records of one injected batch share both MACs.
	lastSrcMAC, lastDstMAC ipfix.MAC
	lastInternal           bool
	lastMember             uint32
	macValid               bool

	// speculative marks a pipeline observing records before the control
	// stream is complete (the online analyzer). It widens two gates that
	// batch mode can evaluate eagerly because EverBlackholed grows
	// monotonically as updates arrive: host profiling observes every
	// external candidate (filtered by the final predicate at compose
	// time), and records attributable only through a not-yet-announced
	// blackhole are tallied in pairs for FinalAttributed to resolve.
	speculative bool
	// pairs counts records whose destination/source pair was not (yet)
	// ever-blackholed at observation time, keyed dst<<32|src.
	pairs map[uint64]int64

	// profileCount is set by ComposeProfiles for the pipeline.profiles
	// gauge.
	profileCount int64
}

// New builds a batch pipeline: events are merged from the complete update
// stream with the given threshold (events.DefaultDelta for the paper's
// 10 minutes).
func New(meta *analysis.Metadata, updates []analysis.ControlUpdate, delta time.Duration) (*Pipeline, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	evs := events.Merge(updates, delta, meta.End)
	ix := events.NewIndex(evs, meta.End)
	p := newEmpty(meta)
	p.Events = evs
	p.Index = ix
	p.Align = timealign.New(ix)
	p.bindCursors()
	return p, nil
}

// NewSpeculative builds a pipeline for the online analyzer: the control
// stream is still growing, so observation runs in speculative mode (see
// the field comment) against an index the caller advances with Rebind as
// updates arrive.
func NewSpeculative(meta *analysis.Metadata) (*Pipeline, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	p := newEmpty(meta)
	p.speculative = true
	p.pairs = make(map[uint64]int64)
	p.Index = events.NewIndex(nil, meta.End)
	p.Align = timealign.New(p.Index)
	p.bindCursors()
	return p, nil
}

// bindCursors (re)creates the per-address attribution memos over the
// current Index. Call whenever Index is (re)assigned.
func (p *Pipeline) bindCursors() {
	p.curDst = events.NewCursor(p.Index)
	p.curSrc = events.NewCursor(p.Index)
}

func newEmpty(meta *analysis.Metadata) *Pipeline {
	return &Pipeline{
		Meta:    meta,
		Drop:    dropstats.New(),
		Anomaly: anomaly.New(),
		Proto:   protomix.New(),
		Hosts:   hosts.New(),
		Mit:     mitigation.New(),
		Pending: collateral.NewPending(),
	}
}

// Rebind points the pipeline at a rebuilt control-plane view (events plus
// attribution index). Only meaningful for speculative pipelines, whose
// sealed observations stay valid because records are only finalized once
// no new event can still cover them (DESIGN.md, "Incremental analysis").
func (p *Pipeline) Rebind(evs []*events.Event, ix *events.Index) {
	p.Events = evs
	p.Index = ix
	p.Align.Rebind(ix)
	// Fresh cursors rather than Cursor.Rebind: wire-decoded pipelines
	// (UnmarshalState) reach here with no cursors at all.
	p.bindCursors()
}

// BindFlow points the pipeline at the FlowSpec mitigation view. Batch
// drivers bind once before the pass; the online analyzer re-binds as
// FlowSpec updates arrive, which keeps sealed observations valid for the
// same reason Rebind does — a record seals only once no in-flight
// FlowSpec update can still cover its timestamp.
func (p *Pipeline) BindFlow(ix *mitigation.Index) { p.FlowIx = ix }

// Clone returns an independent deep copy of the pipeline's operator state
// (shared immutable control-plane view). The original may continue
// observing; the clone is the copy-on-snapshot input for report
// composition.
func (p *Pipeline) Clone() *Pipeline {
	c := &Pipeline{
		Meta:              p.Meta,
		Events:            p.Events,
		Index:             p.Index,
		Drop:              p.Drop.Snapshot(),
		Anomaly:           p.Anomaly.Snapshot(),
		Proto:             p.Proto.Snapshot(),
		Hosts:             p.Hosts.Snapshot(),
		Align:             p.Align.Snapshot(),
		Mit:               p.Mit.Snapshot(),
		FlowIx:            p.FlowIx,
		Pending:           p.Pending.Snapshot(),
		TotalRecords:      p.TotalRecords,
		InternalRecords:   p.InternalRecords,
		AttributedRecords: p.AttributedRecords,
		DroppedRecords:    p.DroppedRecords,
		speculative:       p.speculative,
	}
	if p.pairs != nil {
		c.pairs = make(map[uint64]int64, len(p.pairs))
		for k, v := range p.pairs {
			c.pairs[k] = v
		}
	}
	c.bindCursors()
	return c
}

// newShard returns a pipeline sharing p's immutable control-plane state
// (metadata, events, attribution index — all read-only during the
// streaming pass) with fresh, empty operators.
func (p *Pipeline) newShard() *Pipeline {
	s := newEmpty(p.Meta)
	s.Events = p.Events
	s.Index = p.Index
	s.FlowIx = p.FlowIx
	s.Align = timealign.New(p.Index)
	s.bindCursors()
	s.speculative = p.speculative
	if p.speculative {
		s.pairs = make(map[uint64]int64)
	}
	return s
}

// MergeTimers holds per-operator span timers for the shard-merge stage of
// the parallel runner. Each shard merge contributes one span per
// operator.
type MergeTimers struct {
	Drop, Anomaly, Proto, Hosts, Align, Collateral, Mitigation obs.Timer
}

// spanned runs fn under t when timing is enabled (t may be nil).
func spanned(t *obs.Timer, fn func()) {
	if t == nil {
		fn()
		return
	}
	sp := t.Start()
	fn()
	sp.End()
}

// merge folds o's state into p, timing each operator merge when tm is
// non-nil. o must not observe any further records.
func (p *Pipeline) merge(o *Pipeline, tm *MergeTimers) {
	p.TotalRecords += o.TotalRecords
	p.InternalRecords += o.InternalRecords
	p.AttributedRecords += o.AttributedRecords
	p.DroppedRecords += o.DroppedRecords
	var drop, anom, proto, hosts, align, coll, mit *obs.Timer
	if tm != nil {
		drop, anom, proto, hosts, align, coll, mit = &tm.Drop, &tm.Anomaly, &tm.Proto, &tm.Hosts, &tm.Align, &tm.Collateral, &tm.Mitigation
	}
	spanned(drop, func() { p.Drop.Merge(o.Drop) })
	spanned(anom, func() { p.Anomaly.Merge(o.Anomaly) })
	spanned(proto, func() { p.Proto.Merge(o.Proto) })
	spanned(hosts, func() { p.Hosts.Merge(o.Hosts) })
	spanned(align, func() { p.Align.Merge(o.Align) })
	spanned(coll, func() { p.Pending.Merge(o.Pending) })
	spanned(mit, func() { p.Mit.Merge(o.Mit) })
	if p.pairs == nil && len(o.pairs) > 0 {
		p.pairs = make(map[uint64]int64, len(o.pairs))
	}
	for k, v := range o.pairs {
		p.pairs[k] += v
	}
}

// RegisterMetrics exposes the pipeline's cleaning counters, event and
// profile populations, and the drop-statistics totals under the
// "pipeline." and "dropstats." prefixes. The gauges read pipeline state
// at snapshot time; snapshot after the pass finished. The registered
// values reconcile exactly with the rendered report: records.dropped
// equals the report's DroppedRecords, and the dropstats totals sum the
// Fig 5 rows (see DESIGN.md, "Observability").
func (p *Pipeline) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("pipeline.records.total", func() int64 { return p.TotalRecords })
	reg.GaugeFunc("pipeline.records.internal", func() int64 { return p.InternalRecords })
	reg.GaugeFunc("pipeline.records.attributed", func() int64 { return p.FinalAttributed() })
	reg.GaugeFunc("pipeline.records.dropped", func() int64 { return p.DroppedRecords })
	reg.GaugeFunc("pipeline.events", func() int64 { return int64(len(p.Events)) })
	reg.GaugeFunc("pipeline.profiles", func() int64 { return p.profileCount })
	reg.GaugeFunc("dropstats.events", func() int64 { return int64(p.Drop.Events()) })
	reg.GaugeFunc("dropstats.dropped_pkts", func() int64 { return p.Drop.Totals().DroppedPkts })
	reg.GaugeFunc("dropstats.forwarded_pkts", func() int64 { return p.Drop.Totals().ForwardedPkts })
	reg.GaugeFunc("dropstats.dropped_bytes", func() int64 { return p.Drop.Totals().DroppedBytes })
	reg.GaugeFunc("dropstats.forwarded_bytes", func() int64 { return p.Drop.Totals().ForwardedBytes })
	reg.GaugeFunc("mitigation.prefixes", func() int64 { return int64(p.Mit.Prefixes()) })
	reg.GaugeFunc("mitigation.windows", func() int64 { return int64(p.FlowIx.Windows()) })
}

// Observe processes one flow record.
//
// The pass is split into a destination-keyed and a source-keyed half so
// that the parallel runner can route each half to the shard owning the
// respective address; run back to back they are exactly the sequential
// pass.
func (p *Pipeline) Observe(rec *ipfix.FlowRecord) {
	p.observeDst(rec)
	p.observeSrc(rec)
}

// ObserveRecords processes a slice of flow records in order through the
// same two halves as Observe — the batch fast path. The per-run memos
// (address cursors, MAC metadata) do the heavy lifting: consecutive
// records overwhelmingly share endpoints, so the per-record map probes
// that dominate a naive pass amortize across each run. State after
// ObserveRecords(recs) is identical to calling Observe on each record.
func (p *Pipeline) ObserveRecords(recs []ipfix.FlowRecord) {
	for i := range recs {
		rec := &recs[i]
		p.observeDst(rec)
		p.observeSrc(rec)
	}
}

// ObserveBatch processes one pooled record batch, borrowed for the
// duration of the call per the ipfix.RecordBatch contract.
func (p *Pipeline) ObserveBatch(b *ipfix.RecordBatch) { p.ObserveRecords(b.Recs) }

// resolveMACs returns the MAC-derived metadata for rec through the
// one-entry memo: whether the record touches an internal system and the
// ingress (source-MAC) member ASN.
func (p *Pipeline) resolveMACs(rec *ipfix.FlowRecord) (internal bool, srcMember uint32) {
	if !p.macValid || rec.SrcMAC != p.lastSrcMAC || rec.DstMAC != p.lastDstMAC {
		p.macValid = true
		p.lastSrcMAC, p.lastDstMAC = rec.SrcMAC, rec.DstMAC
		p.lastInternal = p.Meta.IsInternal(rec)
		p.lastMember = p.Meta.MemberOf(rec.SrcMAC)
	}
	return p.lastInternal, p.lastMember
}

// observeDst handles the cleaning counters and all aggregations keyed by
// the destination address (drop stats, protocol mix, anomaly features,
// time alignment, incoming host traffic, pending collateral tallies).
func (p *Pipeline) observeDst(rec *ipfix.FlowRecord) {
	p.TotalRecords++
	internal, srcMember := p.resolveMACs(rec)
	if internal {
		p.InternalRecords++
		return
	}
	dropped := rec.DstMAC == p.Meta.BlackholeMAC
	if dropped {
		p.DroppedRecords++
		p.Align.AddDropped(rec.DstIP, rec.Start)
	}
	pkts := int64(rec.Packets)
	bytes := int64(rec.Bytes)

	// FlowSpec-phase mitigation tally, evaluated before the RTBH
	// attribution gates: a FlowSpec-only mitigation covers destinations
	// that may never enter the ever-blackholed set at all. When both a
	// FlowSpec window and an RTBH episode cover the record, FlowSpec wins
	// (the rule is more specific than the covering blackhole).
	fsPrefix, fsActive := p.FlowIx.Lookup(rec.DstIP, rec.Start)
	if fsActive {
		p.Mit.Add(fsPrefix, mitigation.PhaseFlowSpec, rec.Proto, rec.SrcPort, dropped, pkts, bytes)
	}

	_, dstBH := p.curDst.EverBlackholed(rec.DstIP)
	_, srcBH := p.curSrc.EverBlackholed(rec.SrcIP)
	if dstBH || srcBH {
		p.AttributedRecords++
	} else if p.speculative {
		// Neither endpoint has been blackholed *yet*; a later
		// announcement can still make this record attributable.
		// EverBlackholed is monotone, so tallying the pair now and
		// resolving it against the final predicate (FinalAttributed)
		// reproduces the batch count exactly.
		p.pairs[uint64(rec.DstIP)<<32|uint64(rec.SrcIP)]++
	}
	if !dstBH && !p.speculative {
		return
	}
	day := int32(analysis.Day(p.Meta.Start, rec.Start))

	m := p.curDst.Lookup(rec.DstIP, rec.Start)
	if dstBH {
		if m.Active {
			p.Drop.Add(m.Event.ID, m.Prefix.Len, srcMember, dropped, pkts, bytes)
			if !fsActive {
				p.Mit.Add(m.Prefix, mitigation.PhaseRTBH, rec.Proto, rec.SrcPort, dropped, pkts, bytes)
			}
		}
		if m.Event != nil {
			originAS, _ := p.Meta.IP2AS.Lookup(rec.SrcIP)
			p.Proto.Add(m.Event.ID, rec.Proto, rec.SrcIP, rec.SrcPort, pkts, originAS, srcMember)
			p.Pending.Add(m.Event.ID, rec.DstIP, rec.DstPort, rec.Proto, dropped, pkts)
		}
		if prefix, ok := p.curDst.Interesting(rec.DstIP, rec.Start); ok {
			p.Anomaly.Add(prefix, rec.Start, rec.SrcIP, rec.SrcPort, rec.DstPort, rec.Proto, pkts)
		}
	}
	// Host profiling. Batch mode knows the final ever-blackholed set up
	// front and only profiles those destinations; speculative mode
	// reaches here for every external candidate and leaves the (by then
	// final) predicate to ComposeProfiles. The event-window gates
	// evaluate identically either way: once a record is old enough to
	// be observed here, no future event can still cover it.
	if m.Event == nil && p.legitAt(p.curDst, rec.DstIP, rec.Start) {
		p.Hosts.AddIncoming(rec.DstIP, day, rec.SrcPort, rec.DstPort, rec.Proto, pkts)
	}
}

// observeSrc handles the aggregation keyed by the source address
// (outgoing host traffic). Counters are owned by observeDst so that a
// record dispatched to two shards is counted once.
func (p *Pipeline) observeSrc(rec *ipfix.FlowRecord) {
	internal, _ := p.resolveMACs(rec)
	if internal {
		return
	}
	if _, srcBH := p.curSrc.EverBlackholed(rec.SrcIP); !srcBH && !p.speculative {
		return
	}
	mSrc := p.curSrc.Lookup(rec.SrcIP, rec.Start)
	if mSrc.Event == nil && p.legitAt(p.curSrc, rec.SrcIP, rec.Start) {
		day := int32(analysis.Day(p.Meta.Start, rec.Start))
		p.Hosts.AddOutgoing(rec.SrcIP, day, rec.SrcPort, rec.DstPort, rec.Proto, int64(rec.Packets))
	}
}

// legitAt reports that no event window starts within the reaction buffer
// after t (the caller has already checked that t itself is outside any
// window). cur is the cursor already seeked to ip's address family of
// queries (destination- or source-keyed).
func (p *Pipeline) legitAt(cur *events.Cursor, ip uint32, t time.Time) bool {
	m := cur.Lookup(ip, t.Add(ReactionBuffer))
	return m.Event == nil
}

// EverBlackholed reports whether ip lies inside a prefix that was
// blackholed at any point of the (currently known) control stream.
func (p *Pipeline) EverBlackholed(ip uint32) bool {
	_, ok := p.Index.EverBlackholed(ip)
	return ok
}

// FinalAttributed returns the attributed-record count under the current
// control-plane view: the eagerly counted records plus the speculative
// pairs whose destination or source has since entered the
// ever-blackholed set. Batch pipelines have no pairs, so this equals
// AttributedRecords.
func (p *Pipeline) FinalAttributed() int64 {
	n := p.AttributedRecords
	for k, v := range p.pairs {
		if p.EverBlackholed(uint32(k>>32)) || p.EverBlackholed(uint32(k)) {
			n += v
		}
	}
	return n
}

// ComposeProfiles computes the host profiles (the §6 population) from the
// accumulated host state. minActiveDays is the detection criterion
// (hosts.MinActiveDays for the paper's 20). Speculative pipelines filter
// their candidate hosts through the ever-blackholed predicate here,
// which is exactly the population a batch pass would have profiled.
func (p *Pipeline) ComposeProfiles(minActiveDays int) []hosts.Profile {
	profiles := p.Hosts.ProfilesFunc(minActiveDays, p.hostKeep())
	p.profileCount = int64(len(profiles))
	return profiles
}

// ComposeWhitelist computes the §7.2 whitelist coverage under the same
// host predicate as ComposeProfiles.
func (p *Pipeline) ComposeWhitelist(minActiveDays int) []hosts.Coverage {
	return p.Hosts.WhitelistCoverageFunc(minActiveDays, p.hostKeep())
}

func (p *Pipeline) hostKeep() func(uint32) bool {
	if !p.speculative {
		return nil
	}
	return p.EverBlackholed
}

// ComposeCollateral builds the collateral-damage aggregator for the
// detected server profiles and materializes the pending during-event
// tallies into it (§6.3, Fig 18).
func (p *Pipeline) ComposeCollateral(profiles []hosts.Profile) *collateral.Aggregator {
	agg := collateral.New(profiles)
	p.Pending.Materialize(agg)
	return agg
}

// PendingCells returns the number of compact per-event tally cells
// currently retained for the collateral question (the
// online.open_event_records gauge).
func (p *Pipeline) PendingCells() int { return p.Pending.Len() }

// CleaningSummary describes the §3.1 data-cleaning outcome. With no
// records processed the internal share is reported as "n/a" rather than
// a fabricated 0.0000% — there is no measurement to report.
func (p *Pipeline) CleaningSummary() string {
	if p.TotalRecords == 0 {
		return fmt.Sprintf("records=0 internal=0 (n/a) attributed=%d dropped=%d",
			p.FinalAttributed(), p.DroppedRecords)
	}
	return fmt.Sprintf("records=%d internal=%d (%.4f%%) attributed=%d dropped=%d",
		p.TotalRecords, p.InternalRecords,
		100*float64(p.InternalRecords)/float64(p.TotalRecords),
		p.FinalAttributed(), p.DroppedRecords)
}
