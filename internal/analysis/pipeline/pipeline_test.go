package pipeline

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/events"
	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/ipfix"
	"repro/internal/peeringdb"
)

const (
	blackholeMAC ipfix.MAC = 0x066666
	internalMAC  ipfix.MAC = 0x060001
	memberMAC100 ipfix.MAC = 0x020100
	memberMAC200 ipfix.MAC = 0x020200
)

var (
	t0     = time.Date(2018, 10, 10, 12, 0, 0, 0, time.UTC)
	victim = bgp.MustParsePrefix("203.0.113.5/32")
)

func testMeta() *analysis.Metadata {
	tbl := ip2as.New()
	tbl.Add(bgp.MustParsePrefix("80.0.0.0/8"), 9000)
	return &analysis.Metadata{
		SamplingRate: 10000,
		Start:        time.Date(2018, 9, 26, 0, 0, 0, 0, time.UTC),
		End:          time.Date(2019, 1, 11, 0, 0, 0, 0, time.UTC),
		MemberByMAC:  map[ipfix.MAC]uint32{memberMAC100: 100, memberMAC200: 200},
		BlackholeMAC: blackholeMAC,
		InternalMACs: map[ipfix.MAC]bool{internalMAC: true},
		IP2AS:        tbl,
		PDB:          peeringdb.New(),
	}
}

func testUpdates() []analysis.ControlUpdate {
	return []analysis.ControlUpdate{
		{Time: t0, Peer: 100, Prefix: victim, Announce: true,
			OriginAS: 777, Communities: bgp.Communities{bgp.Blackhole}},
		{Time: t0.Add(time.Hour), Peer: 100, Prefix: victim},
	}
}

func newPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(testMeta(), testUpdates(), events.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func rec(at time.Time, srcMAC, dstMAC ipfix.MAC, srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) *ipfix.FlowRecord {
	return &ipfix.FlowRecord{
		Start: at, SrcMAC: srcMAC, DstMAC: dstMAC,
		SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort,
		Proto: proto, Packets: 1, Bytes: 500,
	}
}

func TestNewRejectsBadMetadata(t *testing.T) {
	meta := testMeta()
	meta.SamplingRate = 0
	if _, err := New(meta, nil, events.DefaultDelta); err == nil {
		t.Fatal("invalid metadata accepted")
	}
}

func TestInternalRecordsCleaned(t *testing.T) {
	p := newPipeline(t)
	p.Observe(rec(t0, memberMAC100, internalMAC, 1, 2, 3, 4, 6))
	if p.InternalRecords != 1 || p.AttributedRecords != 0 {
		t.Fatalf("counters: %s", p.CleaningSummary())
	}
}

func TestDuringEventAttribution(t *testing.T) {
	p := newPipeline(t)
	// Dropped packet during the active episode.
	p.Observe(rec(t0.Add(10*time.Minute), memberMAC200, blackholeMAC,
		0x50000001, victim.Addr, 389, 44444, 17))
	// Forwarded packet during the active episode.
	p.Observe(rec(t0.Add(11*time.Minute), memberMAC200, memberMAC100,
		0x50000002, victim.Addr, 389, 44445, 17))
	if p.AttributedRecords != 2 || p.DroppedRecords != 1 {
		t.Fatalf("counters: %s", p.CleaningSummary())
	}
	rows := p.Drop.ByLength()
	if len(rows) != 1 || rows[0].PrefixLen != 32 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].DroppedPkts != 1 || rows[0].ForwardedPkts != 1 {
		t.Fatalf("drop counters = %+v", rows[0])
	}
	// Protocol mix captured for the event, with origin AS resolution.
	part := p.Proto.OriginParticipation(p.Proto.EventsWithData())
	if part.ASes != 1 || part.TopAS != 9000 {
		t.Fatalf("participation = %+v", part)
	}
}

func TestUnrelatedTrafficIgnored(t *testing.T) {
	p := newPipeline(t)
	p.Observe(rec(t0, memberMAC100, memberMAC200, 0x01010101, 0x02020202, 1, 2, 6))
	if p.AttributedRecords != 0 || p.TotalRecords != 1 {
		t.Fatalf("counters: %s", p.CleaningSummary())
	}
}

func TestLegitTrafficExcludesReactionBuffer(t *testing.T) {
	p := newPipeline(t)
	// 5 minutes before the event: inside the 10-minute reaction buffer,
	// must NOT count as legitimate host traffic.
	p.Observe(rec(t0.Add(-5*time.Minute), memberMAC200, memberMAC100,
		0x50000001, victim.Addr, 12345, 443, 6))
	// 3 hours before: legitimate.
	p.Observe(rec(t0.Add(-3*time.Hour), memberMAC200, memberMAC100,
		0x50000001, victim.Addr, 12345, 443, 6))
	if p.Hosts.Hosts() != 1 {
		t.Fatalf("hosts = %d", p.Hosts.Hosts())
	}
	// Only one incoming observation should exist; with a 1-day criterion
	// the host still fails (needs both directions), so check the raw
	// aggregator instead.
	profiles := p.Hosts.Profiles(0)
	if len(profiles) != 1 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].Features[1] != 1 { // in-dst-ports: only port 443 once
		t.Fatalf("features = %v", profiles[0].Features)
	}
}

func TestOutgoingTrafficProfiled(t *testing.T) {
	p := newPipeline(t)
	p.Observe(rec(t0.Add(-3*time.Hour), memberMAC100, memberMAC200,
		victim.Addr, 0x50000001, 443, 23456, 6))
	profiles := p.Hosts.Profiles(0)
	if len(profiles) != 1 || profiles[0].IP != victim.Addr {
		t.Fatalf("profiles = %+v", profiles)
	}
}

func TestCollateralSinglePass(t *testing.T) {
	p := newPipeline(t)
	// Build a server profile: incoming+outgoing on stable port 443 for
	// 25 days before the event.
	for d := 0; d < 25; d++ {
		at := p.Meta.Start.Add(time.Duration(d)*24*time.Hour + time.Hour)
		for i := 0; i < 3; i++ {
			p.Observe(rec(at, memberMAC200, memberMAC100,
				0x50000001+uint32(i), victim.Addr, uint16(20000+d*31+i), 443, 6))
			p.Observe(rec(at, memberMAC100, memberMAC200,
				victim.Addr, 0x50000001, 443, uint16(30000+d*17+i), 6))
		}
	}
	// Dropped packet to the top port during the event: a pending cell
	// that must survive the compose-time top-port filter.
	p.Observe(rec(t0.Add(5*time.Minute), memberMAC200, blackholeMAC,
		0x50000009, victim.Addr, 55555, 443, 6))
	// Outside the event: no event window, no pending cell.
	p.Observe(rec(t0.Add(48*time.Hour), memberMAC200, memberMAC100,
		0x50000009, victim.Addr, 55555, 443, 6))

	profiles := p.ComposeProfiles(20)
	if len(profiles) != 1 || profiles[0].Kind.String() != "server" {
		t.Fatalf("profiles = %+v", profiles)
	}
	if p.PendingCells() != 1 {
		t.Fatalf("pending cells = %d, want 1", p.PendingCells())
	}
	res := p.ComposeCollateral(profiles).Result()
	if res.Events != 1 || res.AllPkts[0] != 1 || res.DroppedPkts[0] != 1 {
		t.Fatalf("collateral = %+v", res)
	}
}

func TestCleaningSummaryEmpty(t *testing.T) {
	p := newPipeline(t)
	if got, want := p.CleaningSummary(), "records=0 internal=0 (n/a) attributed=0 dropped=0"; got != want {
		t.Fatalf("empty summary = %q, want %q", got, want)
	}
	// One record makes the share well-defined again.
	p.Observe(rec(t0, memberMAC100, internalMAC, 1, 2, 3, 4, 6))
	if got, want := p.CleaningSummary(), "records=1 internal=1 (100.0000%) attributed=0 dropped=0"; got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}

func TestDroppedRecordFeedsTimeAlign(t *testing.T) {
	p := newPipeline(t)
	p.Observe(rec(t0.Add(time.Minute), memberMAC200, blackholeMAC,
		0x50000001, victim.Addr, 389, 44444, 17))
	res := p.Align.Estimate(100 * time.Millisecond)
	if res.Dropped != 1 || res.BestOverlap != 1 {
		t.Fatalf("align = %+v", res)
	}
}
