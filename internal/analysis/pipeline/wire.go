package pipeline

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/analysis/timealign"
)

// stateWireVersion is the pipeline state codec version. Version 2 added
// the mitigation operator as the seventh snapshot section.
const stateWireVersion = 2

// MarshalState encodes the pipeline's complete flow-derived state: the
// cleaning counters, the speculative pair tallies, and the seven operator
// snapshots, each as a versioned section. The control-plane view
// (events, index) is deliberately absent — it is cheaply rebuilt from
// the update stream, which federation snapshots carry alongside this
// blob, and the decoded pipeline is rebound to it (Rebind).
func (p *Pipeline) MarshalState() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(stateWireVersion)
	w.Varint(p.TotalRecords)
	w.Varint(p.InternalRecords)
	w.Varint(p.AttributedRecords)
	w.Varint(p.DroppedRecords)
	w.Bool(p.speculative)
	keys := make([]uint64, 0, len(p.pairs))
	for k := range p.pairs {
		keys = append(keys, k)
	}
	sorted := analysis.SortedU64(keys)
	w.Uvarint(uint64(len(sorted)))
	for _, k := range sorted {
		w.Uvarint(k)
		w.Varint(p.pairs[k])
	}
	type marshaler interface{ MarshalBinary() ([]byte, error) }
	for _, op := range []marshaler{p.Drop, p.Anomaly, p.Proto, p.Hosts, p.Align, p.Pending, p.Mit} {
		blob, err := op.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalState decodes a pipeline state blob produced by MarshalState.
// The returned pipeline carries no control-plane view: call Rebind with
// the events and index rebuilt from the corresponding update stream
// before composing a report. meta may be nil when only the operator
// state matters (e.g. codec validation); such a pipeline must not
// observe records.
func UnmarshalState(meta *analysis.Metadata, data []byte) (*Pipeline, error) {
	r := analysis.NewWireReader(data)
	r.Version(stateWireVersion)
	p := newEmpty(meta)
	p.Align = &timealign.Aggregator{}
	p.TotalRecords = r.Varint()
	p.InternalRecords = r.Varint()
	p.AttributedRecords = r.Varint()
	p.DroppedRecords = r.Varint()
	p.speculative = r.Bool()
	nPairs := r.Count(2)
	if p.speculative || nPairs > 0 {
		p.pairs = make(map[uint64]int64, nPairs)
	}
	for i := 0; i < nPairs; i++ {
		k := r.Uvarint()
		p.pairs[k] = r.Varint()
	}
	type unmarshaler interface{ UnmarshalBinary([]byte) error }
	for _, op := range []unmarshaler{p.Drop, p.Anomaly, p.Proto, p.Hosts, p.Align, p.Pending, p.Mit} {
		blob := r.Blob()
		if r.Err() != nil {
			break
		}
		if err := op.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	return p, nil
}

// Fold merges o's operator state into p — the exported entry point the
// federation coordinator uses to combine decoded per-IXP pipelines. The
// same contract as the parallel runner's shard merge applies: o must
// not observe any further records.
func (p *Pipeline) Fold(o *Pipeline) { p.merge(o, nil) }

// RemapEvents rewrites every event-keyed operator through m (local
// event ID -> federated event ID). The coordinator derives m by
// aligning each instance's locally merged events with the events merged
// over the union update stream.
func (p *Pipeline) RemapEvents(m map[int]int) error {
	if err := p.Drop.RemapEvents(m); err != nil {
		return err
	}
	if err := p.Proto.RemapEvents(m); err != nil {
		return err
	}
	return p.Pending.RemapEvents(m)
}

// Finalize freezes a speculative pipeline into the equivalent batch
// pipeline under the current — by then final — control-plane view: the
// speculative pair tallies resolve into the attributed-record count and
// the speculative host candidates are filtered to the ever-blackholed
// population, exactly the state a batch pass over the same stream with
// the full control plane known up front would hold. The live federation
// path calls this before shipping a snapshot, so batch and live
// instances ship interchangeable state. No-op on batch pipelines.
func (p *Pipeline) Finalize() {
	if !p.speculative {
		return
	}
	p.AttributedRecords = p.FinalAttributed()
	p.pairs = nil
	p.Hosts.Filter(p.EverBlackholed)
	p.speculative = false
}
