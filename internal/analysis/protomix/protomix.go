// Package protomix analyses the traffic observed during RTBH events
// (paper §5.4-§5.5): the transport protocol distribution, attribution to
// known UDP amplification services (Table 3), the potential of
// fine-grained port-list filtering (Fig 14), and the participation of
// handover and origin ASes in amplification attacks (Fig 15).
package protomix

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/netgen"
)

// maxASesPerEvent bounds the per-event AS sets; real events involve tens
// of ASes, so the bound is far from binding and exists only as a memory
// backstop against pathological inputs.
const maxASesPerEvent = 4096

// eventAgg accumulates one event's during-event traffic.
type eventAgg struct {
	udp, tcp, icmp, other int64
	ampPkts               map[uint16]int64 // amplification source port -> packets
	nonAmpUDP             int64
	srcIPs                analysis.BoundedSet
	originASes            map[uint32]bool
	handoverASes          map[uint32]bool
}

// Aggregator collects per-event protocol statistics from the streaming
// pass. Feed it records that fall inside merged event windows.
type Aggregator struct {
	events map[int]*eventAgg
}

// New returns an empty aggregator.
func New() *Aggregator {
	return &Aggregator{events: make(map[int]*eventAgg)}
}

// Add accumulates one sampled packet observed during eventID's window.
// originAS is the source's origin AS per the routing table (0 when
// unresolvable, e.g. spoofed), handoverAS the ingress member.
func (a *Aggregator) Add(eventID int, proto uint8, srcIP uint32, srcPort uint16, pkts int64, originAS, handoverAS uint32) {
	ea := a.events[eventID]
	if ea == nil {
		ea = &eventAgg{
			ampPkts:      make(map[uint16]int64),
			originASes:   make(map[uint32]bool),
			handoverASes: make(map[uint32]bool),
			srcIPs:       *analysis.NewBoundedSet(4096),
		}
		a.events[eventID] = ea
	}
	switch proto {
	case netgen.ProtoUDP:
		ea.udp += pkts
		if netgen.IsAmplificationPort(proto, srcPort) {
			ea.ampPkts[srcPort] += pkts
			if originAS != 0 && len(ea.originASes) < maxASesPerEvent {
				ea.originASes[originAS] = true
			}
			if handoverAS != 0 && len(ea.handoverASes) < maxASesPerEvent {
				ea.handoverASes[handoverAS] = true
			}
			ea.srcIPs.Add(uint64(srcIP))
		} else {
			ea.nonAmpUDP += pkts
		}
	case netgen.ProtoTCP:
		ea.tcp += pkts
	case netgen.ProtoICMP:
		ea.icmp += pkts
	default:
		ea.other += pkts
	}
}

// Merge folds o's per-event aggregates into a. Events present in only
// one aggregator are adopted; colliding events sum their packet counters,
// union their AS sets (bounded as in Add) and merge their source-IP
// sets. The parallel pipeline shards records so that all samples of one
// event land in one shard, making the merged state identical to a
// sequential pass. o must not be used afterwards.
func (a *Aggregator) Merge(o *Aggregator) {
	for id, oea := range o.events {
		ea := a.events[id]
		if ea == nil {
			a.events[id] = oea
			continue
		}
		ea.udp += oea.udp
		ea.tcp += oea.tcp
		ea.icmp += oea.icmp
		ea.other += oea.other
		ea.nonAmpUDP += oea.nonAmpUDP
		for port, pkts := range oea.ampPkts {
			ea.ampPkts[port] += pkts
		}
		for as := range oea.originASes {
			if len(ea.originASes) >= maxASesPerEvent {
				break
			}
			ea.originASes[as] = true
		}
		for as := range oea.handoverASes {
			if len(ea.handoverASes) >= maxASesPerEvent {
				break
			}
			ea.handoverASes[as] = true
		}
		ea.srcIPs.Merge(&oea.srcIPs)
	}
}

// Snapshot returns an independent deep copy of the aggregator; further
// Adds on either side do not affect the other (Operator contract in
// internal/analysis).
func (a *Aggregator) Snapshot() *Aggregator {
	s := New()
	for id, ea := range a.events {
		cp := &eventAgg{
			udp:          ea.udp,
			tcp:          ea.tcp,
			icmp:         ea.icmp,
			other:        ea.other,
			nonAmpUDP:    ea.nonAmpUDP,
			srcIPs:       ea.srcIPs.Clone(),
			ampPkts:      make(map[uint16]int64, len(ea.ampPkts)),
			originASes:   make(map[uint32]bool, len(ea.originASes)),
			handoverASes: make(map[uint32]bool, len(ea.handoverASes)),
		}
		for port, pkts := range ea.ampPkts {
			cp.ampPkts[port] = pkts
		}
		for as := range ea.originASes {
			cp.originASes[as] = true
		}
		for as := range ea.handoverASes {
			cp.handoverASes[as] = true
		}
		s.events[id] = cp
	}
	return s
}

// ProtocolShares is the §5.4 transport mix over a set of events.
type ProtocolShares struct {
	UDP, TCP, ICMP, Other float64
	Packets               int64
}

// Shares computes the aggregate protocol mix over the given events (the
// paper restricts this to events with a preceding anomaly and data).
func (a *Aggregator) Shares(eventIDs []int) ProtocolShares {
	var udp, tcp, icmp, other int64
	for _, id := range eventIDs {
		if ea := a.events[id]; ea != nil {
			udp += ea.udp
			tcp += ea.tcp
			icmp += ea.icmp
			other += ea.other
		}
	}
	total := udp + tcp + icmp + other
	if total == 0 {
		return ProtocolShares{}
	}
	f := func(v int64) float64 { return float64(v) / float64(total) }
	return ProtocolShares{UDP: f(udp), TCP: f(tcp), ICMP: f(icmp), Other: f(other), Packets: total}
}

// ampProtocolsOf returns the distinct amplification protocols that carry
// a non-negligible share of the event's amplification traffic. minShare
// suppresses stray single samples (the paper conducts the analysis "on a
// per event basis" to avoid outlier bias).
func (ea *eventAgg) ampProtocolsOf(minShare float64) int {
	var total int64
	for _, v := range ea.ampPkts {
		total += v
	}
	if total == 0 {
		return 0
	}
	n := 0
	for _, v := range ea.ampPkts {
		if float64(v) >= minShare*float64(total) {
			n++
		}
	}
	return n
}

// ProtocolCountDist returns the Table 3 distribution: the share of events
// using exactly k distinct amplification protocols, for k = 0..5+ (the
// last bucket aggregates 5 and more).
func (a *Aggregator) ProtocolCountDist(eventIDs []int) (dist [6]float64, counted int) {
	var counts [6]int
	for _, id := range eventIDs {
		ea := a.events[id]
		if ea == nil {
			continue
		}
		k := ea.ampProtocolsOf(0.02)
		if k > 5 {
			k = 5
		}
		counts[k]++
		counted++
	}
	if counted == 0 {
		return dist, 0
	}
	for k := range counts {
		dist[k] = float64(counts[k]) / float64(counted)
	}
	return dist, counted
}

// FilterableShares returns, per event, the share of packets that would be
// dropped by filtering the known amplification port list (Fig 14),
// sorted ascending.
func (a *Aggregator) FilterableShares(eventIDs []int) []float64 {
	var out []float64
	for _, id := range eventIDs {
		ea := a.events[id]
		if ea == nil {
			continue
		}
		var amp int64
		for _, v := range ea.ampPkts {
			amp += v
		}
		total := ea.udp + ea.tcp + ea.icmp + ea.other
		if total == 0 {
			continue
		}
		out = append(out, float64(amp)/float64(total))
	}
	sort.Float64s(out)
	return out
}

// FullyFilterableShare returns the fraction of events whose traffic is
// covered at least 99% by the amplification port list (the paper's "90%
// of the RTBH events could be supported completely").
func (a *Aggregator) FullyFilterableShare(eventIDs []int) float64 {
	shares := a.FilterableShares(eventIDs)
	if len(shares) == 0 {
		return 0
	}
	n := 0
	for _, s := range shares {
		if s >= 0.99 {
			n++
		}
	}
	return float64(n) / float64(len(shares))
}

// Participation is the Fig 15 result for one AS category.
type Participation struct {
	// Shares holds, per participating AS, the fraction of amplification
	// events it took part in, ascending.
	Shares []float64
	// ASes is the number of participating ASes.
	ASes int
	// Top10 is the participation share of the ten most frequent ASes,
	// descending.
	Top10 []float64
	// TopAS is the most frequent AS.
	TopAS uint32
}

// participationOf tallies per-AS event participation.
func participationOf(events map[int]*eventAgg, ids []int, pick func(*eventAgg) map[uint32]bool) Participation {
	perAS := make(map[uint32]int)
	total := 0
	for _, id := range ids {
		ea := events[id]
		if ea == nil {
			continue
		}
		set := pick(ea)
		if len(set) == 0 {
			continue
		}
		total++
		for as := range set {
			perAS[as]++
		}
	}
	var p Participation
	if total == 0 {
		return p
	}
	type kv struct {
		as uint32
		n  int
	}
	all := make([]kv, 0, len(perAS))
	for as, n := range perAS {
		all = append(all, kv{as, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].as < all[j].as
	})
	p.ASes = len(all)
	for i, e := range all {
		share := float64(e.n) / float64(total)
		if i < 10 {
			p.Top10 = append(p.Top10, share)
		}
		p.Shares = append(p.Shares, share)
	}
	if len(all) > 0 {
		p.TopAS = all[0].as
	}
	sort.Float64s(p.Shares)
	return p
}

// OriginParticipation returns Fig 15's origin-AS CDF over the given
// (amplification) events.
func (a *Aggregator) OriginParticipation(eventIDs []int) Participation {
	return participationOf(a.events, eventIDs, func(ea *eventAgg) map[uint32]bool { return ea.originASes })
}

// HandoverParticipation returns Fig 15's handover-AS CDF.
func (a *Aggregator) HandoverParticipation(eventIDs []int) Participation {
	return participationOf(a.events, eventIDs, func(ea *eventAgg) map[uint32]bool { return ea.handoverASes })
}

// AttackScale summarizes the per-event source diversity: mean amplifiers,
// mean origin ASes and mean handover ASes per amplification event.
type AttackScale struct {
	MeanAmplifiers   float64
	MeanOriginASes   float64
	MeanHandoverASes float64
	Events           int
}

// Scale computes AttackScale over events with amplification traffic.
func (a *Aggregator) Scale(eventIDs []int) AttackScale {
	var s AttackScale
	for _, id := range eventIDs {
		ea := a.events[id]
		if ea == nil || len(ea.originASes) == 0 {
			continue
		}
		s.Events++
		s.MeanAmplifiers += float64(ea.srcIPs.Count())
		s.MeanOriginASes += float64(len(ea.originASes))
		s.MeanHandoverASes += float64(len(ea.handoverASes))
	}
	if s.Events > 0 {
		s.MeanAmplifiers /= float64(s.Events)
		s.MeanOriginASes /= float64(s.Events)
		s.MeanHandoverASes /= float64(s.Events)
	}
	return s
}

// EventsWithData returns the IDs with any during-event traffic.
func (a *Aggregator) EventsWithData() []int {
	ids := make([]int, 0, len(a.events))
	for id := range a.events {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
