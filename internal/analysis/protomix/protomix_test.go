package protomix

import (
	"math"
	"testing"

	"repro/internal/netgen"
)

func TestSharesUDPDominant(t *testing.T) {
	a := New()
	for i := 0; i < 995; i++ {
		a.Add(1, netgen.ProtoUDP, uint32(i), 389, 1, 500, 100)
	}
	for i := 0; i < 3; i++ {
		a.Add(1, netgen.ProtoTCP, uint32(i), 40000, 1, 0, 100)
	}
	a.Add(1, netgen.ProtoICMP, 1, 0, 1, 0, 100)
	a.Add(1, 47, 1, 0, 1, 0, 100) // GRE -> other

	s := a.Shares([]int{1})
	if math.Abs(s.UDP-0.995) > 1e-9 || s.Packets != 1000 {
		t.Fatalf("shares = %+v", s)
	}
	if s.TCP <= 0 || s.ICMP <= 0 || s.Other <= 0 {
		t.Fatalf("minor shares zero: %+v", s)
	}
	// Missing events are skipped.
	if s2 := a.Shares([]int{1, 999}); s2.Packets != 1000 {
		t.Fatalf("missing event changed totals: %+v", s2)
	}
}

func TestProtocolCountDist(t *testing.T) {
	a := New()
	// Event 1: two protocols (NTP + DNS).
	for i := 0; i < 100; i++ {
		a.Add(1, netgen.ProtoUDP, uint32(i), 123, 1, 500, 100)
		a.Add(1, netgen.ProtoUDP, uint32(i), 53, 1, 500, 100)
	}
	// Event 2: one protocol plus a single stray packet on another port
	// (the 2% noise floor must suppress it).
	for i := 0; i < 100; i++ {
		a.Add(2, netgen.ProtoUDP, uint32(i), 11211, 1, 500, 100)
	}
	a.Add(2, netgen.ProtoUDP, 7, 19, 1, 500, 100)
	// Event 3: no amplification traffic at all.
	for i := 0; i < 50; i++ {
		a.Add(3, netgen.ProtoUDP, uint32(i), 40000, 1, 0, 100)
	}

	dist, counted := a.ProtocolCountDist([]int{1, 2, 3})
	if counted != 3 {
		t.Fatalf("counted = %d", counted)
	}
	if math.Abs(dist[2]-1.0/3) > 1e-9 || math.Abs(dist[1]-1.0/3) > 1e-9 || math.Abs(dist[0]-1.0/3) > 1e-9 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestFilterableShares(t *testing.T) {
	a := New()
	// Event 1: 100% amplification -> fully filterable.
	for i := 0; i < 100; i++ {
		a.Add(1, netgen.ProtoUDP, uint32(i), 389, 1, 500, 100)
	}
	// Event 2: half random-port UDP.
	for i := 0; i < 50; i++ {
		a.Add(2, netgen.ProtoUDP, uint32(i), 123, 1, 500, 100)
		a.Add(2, netgen.ProtoUDP, uint32(i), 40000, 1, 0, 100)
	}
	shares := a.FilterableShares([]int{1, 2})
	if len(shares) != 2 {
		t.Fatalf("shares = %v", shares)
	}
	if math.Abs(shares[0]-0.5) > 1e-9 || shares[1] != 1.0 {
		t.Fatalf("shares = %v", shares)
	}
	if got := a.FullyFilterableShare([]int{1, 2}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("fully filterable = %v", got)
	}
}

func TestParticipationSkew(t *testing.T) {
	a := New()
	// AS 9000 participates in all 10 events; others once each.
	for ev := 0; ev < 10; ev++ {
		a.Add(ev, netgen.ProtoUDP, uint32(ev*100), 123, 1, 9000, 500)
		a.Add(ev, netgen.ProtoUDP, uint32(ev*100+1), 123, 1, uint32(100+ev), uint32(600+ev))
	}
	p := a.OriginParticipation(a.EventsWithData())
	if p.ASes != 11 {
		t.Fatalf("origin ASes = %d", p.ASes)
	}
	if p.TopAS != 9000 || p.Top10[0] != 1.0 {
		t.Fatalf("top AS = %d share %v", p.TopAS, p.Top10)
	}
	// CDF sorted ascending, last element is the top share.
	if p.Shares[len(p.Shares)-1] != 1.0 || p.Shares[0] != 0.1 {
		t.Fatalf("shares = %v", p.Shares)
	}
	h := a.HandoverParticipation(a.EventsWithData())
	if h.ASes != 11 { // 500 in all events, 600..609 once each
		t.Fatalf("handover ASes = %d", h.ASes)
	}
}

func TestParticipationIgnoresUnresolvedSources(t *testing.T) {
	a := New()
	a.Add(1, netgen.ProtoUDP, 1, 123, 1, 0, 0) // spoofed: no origin, no member
	p := a.OriginParticipation([]int{1})
	if p.ASes != 0 {
		t.Fatalf("unresolved source counted: %+v", p)
	}
}

func TestScale(t *testing.T) {
	a := New()
	for i := 0; i < 300; i++ {
		a.Add(1, netgen.ProtoUDP, uint32(i), 123, 1, uint32(100+i%30), uint32(600+i%10))
	}
	s := a.Scale([]int{1})
	if s.Events != 1 {
		t.Fatalf("events = %d", s.Events)
	}
	if s.MeanAmplifiers < 290 || s.MeanAmplifiers > 310 {
		t.Fatalf("amplifiers = %v", s.MeanAmplifiers)
	}
	if s.MeanOriginASes != 30 || s.MeanHandoverASes != 10 {
		t.Fatalf("scale = %+v", s)
	}
}

func TestEventsWithDataSorted(t *testing.T) {
	a := New()
	a.Add(5, netgen.ProtoUDP, 1, 123, 1, 0, 0)
	a.Add(2, netgen.ProtoUDP, 1, 123, 1, 0, 0)
	ids := a.EventsWithData()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("ids = %v", ids)
	}
}
