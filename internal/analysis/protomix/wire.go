package protomix

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
)

// wireVersion is the protomix snapshot codec version.
const wireVersion = 1

func sortedU32Set(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarshalBinary encodes the per-event aggregates canonically: events
// sorted by ID; inside each event the amplification ports and the AS
// sets are sorted ascending.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(wireVersion)
	ids := make([]int, 0, len(a.events))
	for id := range a.events {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		ea := a.events[id]
		w.Uvarint(uint64(id))
		w.Varint(ea.udp)
		w.Varint(ea.tcp)
		w.Varint(ea.icmp)
		w.Varint(ea.other)
		w.Varint(ea.nonAmpUDP)
		ports := make([]uint16, 0, len(ea.ampPkts))
		for p := range ea.ampPkts {
			ports = append(ports, p)
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		w.Uvarint(uint64(len(ports)))
		for _, p := range ports {
			w.Uvarint(uint64(p))
			w.Varint(ea.ampPkts[p])
		}
		ea.srcIPs.EncodeWire(w)
		for _, set := range [][]uint32{sortedU32Set(ea.originASes), sortedU32Set(ea.handoverASes)} {
			w.Uvarint(uint64(len(set)))
			for _, as := range set {
				w.Uvarint(uint64(as))
			}
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded
// snapshot. On error the aggregator is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(wireVersion)
	// Minimum per event: id, five counters, three counts, one set header.
	n := r.Count(11)
	events := make(map[int]*eventAgg, n)
	for i := 0; i < n; i++ {
		id := r.Int()
		ea := &eventAgg{
			udp:       r.Varint(),
			tcp:       r.Varint(),
			icmp:      r.Varint(),
			other:     r.Varint(),
			nonAmpUDP: r.Varint(),
		}
		nPorts := r.Count(2)
		ea.ampPkts = make(map[uint16]int64, nPorts)
		for j := 0; j < nPorts; j++ {
			p := r.U16()
			ea.ampPkts[p] = r.Varint()
		}
		ea.srcIPs.DecodeWire(r)
		nOrigin := r.Count(1)
		ea.originASes = make(map[uint32]bool, nOrigin)
		for j := 0; j < nOrigin; j++ {
			ea.originASes[r.U32()] = true
		}
		nHandover := r.Count(1)
		ea.handoverASes = make(map[uint32]bool, nHandover)
		for j := 0; j < nHandover; j++ {
			ea.handoverASes[r.U32()] = true
		}
		if r.Err() != nil {
			break
		}
		events[id] = ea
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("protomix: %w", err)
	}
	a.events = events
	return nil
}

// RemapEvents rewrites the per-event keys through m (old ID -> new ID),
// merging aggregates that land on the same new ID. Every present event
// must be mapped.
func (a *Aggregator) RemapEvents(m map[int]int) error {
	out := make(map[int]*eventAgg, len(a.events))
	for id, ea := range a.events {
		nid, ok := m[id]
		if !ok {
			return fmt.Errorf("protomix: no mapping for event %d", id)
		}
		if cur := out[nid]; cur != nil {
			tmp := &Aggregator{events: map[int]*eventAgg{nid: ea}}
			dst := &Aggregator{events: map[int]*eventAgg{nid: cur}}
			dst.Merge(tmp)
		} else {
			out[nid] = ea
		}
	}
	a.events = out
	return nil
}
