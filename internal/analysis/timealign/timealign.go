// Package timealign estimates the clock offset between the control-plane
// and data-plane measurement systems (paper §3.1, Fig 2) by maximum
// likelihood: the candidate offset under which the largest share of
// blackholed (dropped) packets falls inside an active blackhole interval
// recorded on the control plane.
//
// Instead of re-testing every record at every candidate offset, the
// aggregator converts each dropped record into the interval of offsets
// under which it overlaps an active episode; the likelihood curve is then
// a sweep over interval endpoints, O(n log n) overall.
package timealign

import (
	"sort"
	"time"

	"repro/internal/analysis/events"
)

// SearchRange bounds the offsets considered. NTP-synchronized collectors
// disagree by milliseconds to a couple of seconds at worst.
const SearchRange = 2 * time.Second

// Aggregator accumulates dropped-record offset intervals.
type Aggregator struct {
	index *events.Index
	// cur memoizes the covering-prefix resolution per destination run:
	// dropped records arrive in long same-destination stretches, so the
	// per-length prefix-map probes resolve once per stretch.
	cur *events.Cursor
	// starts/ends hold the per-record valid-offset interval bounds in
	// seconds (clipped to the search range). Intervals are merged per
	// record, so each record contributes at most once to any offset.
	starts, ends []float64
	total        int64
	scratch      []span
}

type span struct{ lo, hi float64 }

// New returns an aggregator attributing against ix.
func New(ix *events.Index) *Aggregator {
	return &Aggregator{index: ix, cur: events.NewCursor(ix)}
}

// AddDropped registers one dropped record with destination dstIP observed
// at t (data-plane clock). Episodes of every covering blackhole prefix
// can explain the drop: a host may be blackholed as a /32 at one time and
// as part of a covering /24 at another. Overlapping explanations are
// merged so that the likelihood stays a proper fraction.
func (a *Aggregator) AddDropped(dstIP uint32, t time.Time) {
	a.total++
	a.scratch = a.scratch[:0]
	for _, cand := range a.cur.Candidates(dstIP) {
		a.collect(cand.Events, t)
	}
	if len(a.scratch) == 0 {
		return
	}
	// Insertion sort: the span lists are tiny (episodes overlapping one
	// record's ±2s window) and sort.Slice's closure allocates per call,
	// which at one call per dropped record dominates the pass allocations.
	for i := 1; i < len(a.scratch); i++ {
		for j := i; j > 0 && a.scratch[j].lo < a.scratch[j-1].lo; j-- {
			a.scratch[j], a.scratch[j-1] = a.scratch[j-1], a.scratch[j]
		}
	}
	cur := a.scratch[0]
	for _, s := range a.scratch[1:] {
		if s.lo <= cur.hi {
			if s.hi > cur.hi {
				cur.hi = s.hi
			}
			continue
		}
		a.starts = append(a.starts, cur.lo)
		a.ends = append(a.ends, cur.hi)
		cur = s
	}
	a.starts = append(a.starts, cur.lo)
	a.ends = append(a.ends, cur.hi)
}

func (a *Aggregator) collect(evs []*events.Event, t time.Time) {
	lo := t.Add(-SearchRange)
	hi := t.Add(SearchRange)
	for _, e := range evs {
		if e.Start().After(hi) {
			break
		}
		if e.End(a.index.PeriodEnd()).Before(lo) {
			continue
		}
		for _, ep := range e.Episodes {
			wd := ep.Withdraw
			if wd.IsZero() {
				wd = a.index.PeriodEnd()
			}
			if ep.Announce.After(hi) || wd.Before(lo) {
				continue
			}
			// Offsets delta with t+delta in [announce, wd).
			dLo := ep.Announce.Sub(t).Seconds()
			dHi := wd.Sub(t).Seconds()
			if dLo < -SearchRange.Seconds() {
				dLo = -SearchRange.Seconds()
			}
			// Clip the (exclusive) upper bound slightly beyond the search
			// range so that an interval extending past the range still
			// covers the range's edge grid point.
			if dHi > SearchRange.Seconds() {
				dHi = SearchRange.Seconds() + 1
			}
			if dHi <= dLo {
				continue
			}
			a.scratch = append(a.scratch, span{lo: dLo, hi: dHi})
		}
	}
}

// Merge folds o's per-record offset intervals into a. The intervals of
// each dropped record were merged at Add time, so concatenation is exact
// and order-independent: Estimate sorts the endpoint arrays before the
// sweep, so the merged aggregator yields the same curve a sequential
// aggregator would. o must not be used afterwards.
func (a *Aggregator) Merge(o *Aggregator) {
	a.starts = append(a.starts, o.starts...)
	a.ends = append(a.ends, o.ends...)
	a.total += o.total
}

// Snapshot returns an independent deep copy of the aggregator's interval
// state; the copy shares the (immutable) event index. Further AddDropped
// calls on either side do not affect the other (Operator contract in
// internal/analysis).
func (a *Aggregator) Snapshot() *Aggregator {
	return &Aggregator{
		index:  a.index,
		cur:    events.NewCursor(a.index),
		starts: append([]float64(nil), a.starts...),
		ends:   append([]float64(nil), a.ends...),
		total:  a.total,
	}
}

// Rebind points the aggregator at a rebuilt event index. The online
// analyzer rebuilds the index when new control updates arrive; the
// already-recorded offset intervals stay valid because sealed records are
// only finalized once no event that could cover them can still appear
// (see DESIGN.md, "Incremental analysis").
func (a *Aggregator) Rebind(ix *events.Index) {
	a.index = ix
	if a.cur == nil {
		// Wire-decoded aggregators are built bare and bound here.
		a.cur = events.NewCursor(ix)
		return
	}
	a.cur.Rebind(ix)
}

// Point is one sample of the likelihood curve.
type Point struct {
	Offset  time.Duration
	Overlap float64 // share of dropped records active under this offset
}

// Result is the Fig 2 outcome.
type Result struct {
	Curve       []Point
	BestOffset  time.Duration
	BestOverlap float64
	Dropped     int64
}

// Estimate evaluates the likelihood over a uniform grid of the given step
// and returns the curve and its maximum.
func (a *Aggregator) Estimate(step time.Duration) *Result {
	res := &Result{Dropped: a.total}
	if a.total == 0 || step <= 0 {
		return res
	}
	starts := append([]float64(nil), a.starts...)
	ends := append([]float64(nil), a.ends...)
	sort.Float64s(starts)
	sort.Float64s(ends)

	for off := -SearchRange; off <= SearchRange; off += step {
		d := off.Seconds()
		// Records whose interval contains d: starts <= d < ends.
		nStart := sort.SearchFloat64s(starts, d+1e-12)
		nEnd := sort.SearchFloat64s(ends, d+1e-12)
		count := nStart - nEnd
		p := Point{Offset: off, Overlap: float64(count) / float64(a.total)}
		res.Curve = append(res.Curve, p)
		if p.Overlap > res.BestOverlap {
			res.BestOverlap = p.Overlap
			res.BestOffset = off
		}
	}
	return res
}
