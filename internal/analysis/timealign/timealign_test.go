package timealign

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/events"
	"repro/internal/bgp"
)

var (
	prefix = bgp.MustParsePrefix("203.0.113.5/32")
	t0     = time.Date(2018, 10, 1, 12, 0, 0, 0, time.UTC)
	pEnd   = time.Date(2019, 1, 11, 0, 0, 0, 0, time.UTC)
)

func indexWithEpisode(t *testing.T, announce, withdraw time.Time) *events.Index {
	t.Helper()
	us := []analysis.ControlUpdate{
		{Time: announce, Peer: 100, Prefix: prefix, Announce: true,
			Communities: bgp.Communities{bgp.Blackhole}},
		{Time: withdraw, Peer: 100, Prefix: prefix},
	}
	evs := events.Merge(us, events.DefaultDelta, pEnd)
	return events.NewIndex(evs, pEnd)
}

func TestEstimateRecoversInjectedOffset(t *testing.T) {
	ix := indexWithEpisode(t, t0, t0.Add(10*time.Minute))
	a := New(ix)
	// Data-plane clock runs 40ms behind: data_time = true_time - 40ms,
	// so adding +40ms re-aligns it.
	skew := -40 * time.Millisecond
	for i := 0; i < 1000; i++ {
		trueTime := t0.Add(time.Duration(i) * 500 * time.Millisecond)
		a.AddDropped(prefix.Addr, trueTime.Add(skew))
	}
	res := a.Estimate(10 * time.Millisecond)
	if res.Dropped != 1000 {
		t.Fatalf("dropped = %d", res.Dropped)
	}
	if res.BestOverlap < 0.99 {
		t.Fatalf("best overlap = %v", res.BestOverlap)
	}
	if res.BestOffset < 30*time.Millisecond || res.BestOffset > 50*time.Millisecond {
		t.Fatalf("best offset = %v, want ~+40ms", res.BestOffset)
	}
	// The curve must degrade away from the peak: a 2s offset shifts
	// boundary records out.
	var at2s float64
	for _, p := range res.Curve {
		if p.Offset == 2*time.Second {
			at2s = p.Overlap
		}
	}
	if at2s > res.BestOverlap {
		t.Fatal("curve not peaked")
	}
}

func TestRecordsOutsideIntervalsLowerOverlap(t *testing.T) {
	ix := indexWithEpisode(t, t0, t0.Add(10*time.Minute))
	a := New(ix)
	// 900 inside, 100 dropped long before the episode (bilateral drops).
	for i := 0; i < 900; i++ {
		a.AddDropped(prefix.Addr, t0.Add(time.Duration(i)*300*time.Millisecond))
	}
	for i := 0; i < 100; i++ {
		a.AddDropped(prefix.Addr, t0.Add(-time.Hour))
	}
	res := a.Estimate(50 * time.Millisecond)
	if res.BestOverlap < 0.85 || res.BestOverlap > 0.95 {
		t.Fatalf("overlap = %v, want ~0.9", res.BestOverlap)
	}
}

func TestUnknownPrefixCountsAgainstOverlap(t *testing.T) {
	ix := indexWithEpisode(t, t0, t0.Add(10*time.Minute))
	a := New(ix)
	a.AddDropped(prefix.Addr, t0.Add(time.Minute))
	a.AddDropped(0x01020304, t0.Add(time.Minute)) // never blackholed
	res := a.Estimate(100 * time.Millisecond)
	if res.BestOverlap != 0.5 {
		t.Fatalf("overlap = %v, want 0.5", res.BestOverlap)
	}
}

func TestEmptyAggregator(t *testing.T) {
	ix := indexWithEpisode(t, t0, t0.Add(time.Minute))
	a := New(ix)
	res := a.Estimate(100 * time.Millisecond)
	if res.Dropped != 0 || len(res.Curve) != 0 {
		t.Fatalf("empty result = %+v", res)
	}
	if res := a.Estimate(0); len(res.Curve) != 0 {
		t.Fatal("zero step produced a curve")
	}
}

func TestBoundaryRecordContributesHalfOpenInterval(t *testing.T) {
	ix := indexWithEpisode(t, t0, t0.Add(10*time.Minute))
	a := New(ix)
	// Record exactly at the announce time: valid for delta in [0, ...).
	a.AddDropped(prefix.Addr, t0)
	res := a.Estimate(50 * time.Millisecond)
	var atZero, atMinus float64
	for _, p := range res.Curve {
		switch p.Offset {
		case 0:
			atZero = p.Overlap
		case -time.Second:
			atMinus = p.Overlap
		}
	}
	if atZero != 1 {
		t.Fatalf("overlap at 0 = %v", atZero)
	}
	if atMinus != 0 {
		t.Fatalf("overlap at -1s = %v (record predates episode under that offset)", atMinus)
	}
}

func TestOverlappingExplanationsMergePerRecord(t *testing.T) {
	// Both a /32 and a covering /24 episode explain the same drop; the
	// record must count once, keeping the likelihood a proper fraction.
	us := []analysis.ControlUpdate{
		{Time: t0, Peer: 100, Prefix: prefix, Announce: true,
			Communities: bgp.Communities{bgp.Blackhole}},
		{Time: t0, Peer: 200, Prefix: bgp.MustParsePrefix("203.0.113.0/24"), Announce: true,
			Communities: bgp.Communities{bgp.Blackhole}},
		{Time: t0.Add(10 * time.Minute), Peer: 100, Prefix: prefix},
		{Time: t0.Add(10 * time.Minute), Peer: 200, Prefix: bgp.MustParsePrefix("203.0.113.0/24")},
	}
	evs := events.Merge(us, events.DefaultDelta, pEnd)
	ix := events.NewIndex(evs, pEnd)
	a := New(ix)
	for i := 0; i < 100; i++ {
		a.AddDropped(prefix.Addr, t0.Add(time.Duration(i)*5*time.Second))
	}
	res := a.Estimate(100 * time.Millisecond)
	if res.BestOverlap > 1.0 {
		t.Fatalf("overlap exceeds 1: %v", res.BestOverlap)
	}
	if res.BestOverlap != 1.0 {
		t.Fatalf("overlap = %v, want exactly 1", res.BestOverlap)
	}
}

func TestDisjointExplanationsBothCount(t *testing.T) {
	// A record near the gap between two adjacent episodes gets a valid
	// offset interval from each; the curve must reflect both.
	us := []analysis.ControlUpdate{
		{Time: t0, Peer: 100, Prefix: prefix, Announce: true,
			Communities: bgp.Communities{bgp.Blackhole}},
		{Time: t0.Add(time.Minute), Peer: 100, Prefix: prefix},
		{Time: t0.Add(time.Minute + 3*time.Second), Peer: 100, Prefix: prefix, Announce: true,
			Communities: bgp.Communities{bgp.Blackhole}},
		{Time: t0.Add(2 * time.Minute), Peer: 100, Prefix: prefix},
	}
	evs := events.Merge(us, events.DefaultDelta, pEnd)
	ix := events.NewIndex(evs, pEnd)
	a := New(ix)
	// Record in the middle of the 3s gap: explained under negative
	// offsets by the first episode and under positive offsets by the
	// second.
	a.AddDropped(prefix.Addr, t0.Add(time.Minute+1500*time.Millisecond))
	res := a.Estimate(500 * time.Millisecond)
	var atMinus2, atPlus2, atZero float64
	for _, p := range res.Curve {
		switch p.Offset {
		case -2 * time.Second:
			atMinus2 = p.Overlap
		case 2 * time.Second:
			atPlus2 = p.Overlap
		case 0:
			atZero = p.Overlap
		}
	}
	if atMinus2 != 1 || atPlus2 != 1 {
		t.Fatalf("offsets -2s/+2s = %v/%v, want 1/1", atMinus2, atPlus2)
	}
	if atZero != 0 {
		t.Fatalf("offset 0 = %v, want 0 (record in the gap)", atZero)
	}
}
