package timealign

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
)

// wireVersion is the timealign snapshot codec version.
const wireVersion = 1

// MarshalBinary encodes the interval state canonically: the record
// total, then the interval start and end endpoints each sorted
// ascending. Sorting the two arrays independently is semantics
// preserving — Estimate only ever consumes them sorted — and makes the
// encoding a fingerprint: merged and sequential aggregators over the
// same records encode identically. The event index is not part of the
// payload; rebind the decoded aggregator before further AddDropped
// calls.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(wireVersion)
	w.Varint(a.total)
	for _, vals := range [][]float64{a.starts, a.ends} {
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		w.Uvarint(uint64(len(sorted)))
		for _, v := range sorted {
			w.F64(v)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the aggregator's interval state with the
// decoded snapshot, leaving the index unbound. On error the aggregator
// is left unchanged.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(wireVersion)
	total := r.Varint()
	var arrays [2][]float64
	for i := range arrays {
		n := r.Count(8)
		vals := make([]float64, 0, n)
		for j := 0; j < n; j++ {
			vals = append(vals, r.F64())
		}
		arrays[i] = vals
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("timealign: %w", err)
	}
	if len(arrays[0]) != len(arrays[1]) {
		return fmt.Errorf("timealign: %d starts but %d ends", len(arrays[0]), len(arrays[1]))
	}
	a.total = total
	a.starts = arrays[0]
	a.ends = arrays[1]
	a.index = nil
	a.scratch = nil
	return nil
}
