// Package usecase classifies RTBH events into operational use cases
// (paper §2, Table 1 and §7.3, Fig 19) by combining control-plane shape
// (prefix length, duration, signaling pattern) with the data-plane
// verdicts of the anomaly analysis:
//
//   - infrastructure protection: a DDoS-like anomaly precedes the event,
//   - prefix squatting protection: a covering (<= /24) prefix blackholed
//     for months without traffic,
//   - RTBH zombies: host blackholes with almost no traffic that stay
//     active for weeks — triggered once and forgotten,
//   - other: everything that matches no known pattern (the paper finds a
//     striking ~60% here).
//
// Content blocking (stable /32 with normal traffic and no attack) is
// modeled for completeness; the paper — like this reproduction's default
// scenario — finds no occurrences.
package usecase

import (
	"time"

	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/events"
)

// Class is the inferred use case.
type Class int

// Use-case classes.
const (
	ClassOther Class = iota
	ClassInfrastructureProtection
	ClassSquattingProtection
	ClassZombie
	ClassContentBlocking
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassInfrastructureProtection:
		return "infrastructure-protection"
	case ClassSquattingProtection:
		return "squatting-protection"
	case ClassZombie:
		return "zombie"
	case ClassContentBlocking:
		return "content-blocking"
	default:
		return "other"
	}
}

// Classification thresholds.
const (
	// SquatMinDuration is the minimum lifetime of a squatting-protection
	// blackhole (Table 1: months; we require three weeks to be robust on
	// shorter measurement periods).
	SquatMinDuration = 21 * 24 * time.Hour
	// ZombieMinDuration separates forgotten blackholes from deliberate
	// short mitigations.
	ZombieMinDuration = 7 * 24 * time.Hour
	// ZombieMaxPackets is the §7.3 "fewer than 10 packets" criterion.
	ZombieMaxPackets = 10
	// ContentMinDuration and ContentMinPackets describe stable,
	// long-lived blackholes with ongoing normal traffic.
	ContentMinDuration = 14 * 24 * time.Hour
	ContentMinPackets  = 500
)

// EventClass is the per-event classification result.
type EventClass struct {
	EventID  int
	Class    Class
	Duration time.Duration
}

// Result summarizes Fig 19.
type Result struct {
	PerEvent []EventClass
	Counts   map[Class]int
	Shares   map[Class]float64
	// Durations lists event durations per class (the duration dimension
	// of Fig 19).
	Durations map[Class][]time.Duration
	// SquatPrefixes / SquatASes quantify the squatting population the
	// paper reports as "four ASes and 21 prefixes".
	SquatPrefixes int
	SquatASes     int
	// LowTrafficHostShare is the share of all events that were
	// classified "other" yet are /32 with fewer than 10 packets —
	// zombie-like blackholes too short-lived for the zombie criterion
	// (the §7.3 discussion around the 13%).
	LowTrafficHostShare float64
}

// Classify combines events with their anomaly verdicts (indexed by event
// ID order, as returned by anomaly.Analyze over the same event slice).
func Classify(evs []*events.Event, verdicts []anomaly.Verdict, periodEnd time.Time) *Result {
	res := &Result{
		Counts:    make(map[Class]int),
		Shares:    make(map[Class]float64),
		Durations: make(map[Class][]time.Duration),
	}
	vByID := make(map[int]*anomaly.Verdict, len(verdicts))
	for i := range verdicts {
		vByID[verdicts[i].EventID] = &verdicts[i]
	}
	squatASes := make(map[uint32]bool)
	lowTraffic := 0

	for _, e := range evs {
		dur := e.Duration(periodEnd)
		v := vByID[e.ID]
		class := ClassOther

		hasAnomaly := v != nil && v.Within10Min
		eventPkts := int64(0)
		if v != nil {
			eventPkts = v.EventPackets
		}

		switch {
		case hasAnomaly:
			class = ClassInfrastructureProtection
		case e.Prefix.Len <= 24 && dur >= SquatMinDuration && eventPkts < ZombieMaxPackets:
			class = ClassSquattingProtection
			squatASes[e.OriginAS] = true
			res.SquatPrefixes++
		case e.Prefix.Len == 32 && eventPkts < ZombieMaxPackets &&
			(dur >= ZombieMinDuration || e.OpenEnded()):
			class = ClassZombie
		case e.Prefix.Len == 32 && dur >= ContentMinDuration &&
			eventPkts >= ContentMinPackets && len(e.Episodes) <= 3:
			class = ClassContentBlocking
		}

		if class == ClassOther && e.Prefix.Len == 32 && eventPkts < ZombieMaxPackets {
			lowTraffic++
		}

		res.PerEvent = append(res.PerEvent, EventClass{EventID: e.ID, Class: class, Duration: dur})
		res.Counts[class]++
		res.Durations[class] = append(res.Durations[class], dur)
	}
	if len(evs) > 0 {
		for c, n := range res.Counts {
			res.Shares[c] = float64(n) / float64(len(evs))
		}
		res.LowTrafficHostShare = float64(lowTraffic) / float64(len(evs))
	}
	res.SquatASes = len(squatASes)
	return res
}

// Expectation is one row of the paper's Table 1: the literature-based
// expected characteristics per use case.
type Expectation struct {
	UseCase         string
	Trigger         string
	PrefixLength    string
	ReactionLatency string
	Duration        string
	Traffic         string
	Target          string
}

// Table1 is the paper's Table 1, encoded for the experiment harness.
var Table1 = []Expectation{
	{
		UseCase: "Infrastructure Protection", Trigger: "Automatic Detection and Triggering",
		PrefixLength: "/32", ReactionLatency: "Secs-Mins", Duration: "Mins-Hours",
		Traffic: "Attack", Target: "Server",
	},
	{
		UseCase: "Prefix Squatting Protection", Trigger: "Manual",
		PrefixLength: "<= /24", ReactionLatency: "NA", Duration: "Months",
		Traffic: "Scanning", Target: "None",
	},
	{
		UseCase: "Content Blocking", Trigger: "Manual",
		PrefixLength: "/32", ReactionLatency: "NA", Duration: "Weeks-Months",
		Traffic: "Normal", Target: "Server",
	},
}
