package usecase

import (
	"testing"
	"time"

	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/events"
	"repro/internal/bgp"
)

var (
	t0   = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	pEnd = time.Date(2019, 1, 11, 0, 0, 0, 0, time.UTC)
)

func ev(id int, prefix string, dur time.Duration, open bool) *events.Event {
	e := &events.Event{
		ID:            id,
		Prefix:        bgp.MustParsePrefix(prefix),
		Peer:          100,
		OriginAS:      uint32(1000 + id),
		Announcements: 1,
	}
	ep := events.Episode{Announce: t0}
	if !open {
		ep.Withdraw = t0.Add(dur)
	}
	e.Episodes = []events.Episode{ep}
	return e
}

func TestClassifyInfrastructureProtection(t *testing.T) {
	evs := []*events.Event{ev(0, "203.0.113.5/32", time.Hour, false)}
	vs := []anomaly.Verdict{{EventID: 0, HasPreData: true, Within10Min: true, HasEventData: true, EventPackets: 5000}}
	res := Classify(evs, vs, pEnd)
	if res.Counts[ClassInfrastructureProtection] != 1 {
		t.Fatalf("counts = %v", res.Counts)
	}
	if res.Shares[ClassInfrastructureProtection] != 1.0 {
		t.Fatalf("shares = %v", res.Shares)
	}
}

func TestClassifyZombie(t *testing.T) {
	evs := []*events.Event{
		ev(0, "203.0.113.5/32", 30*24*time.Hour, false), // long, quiet /32
		ev(1, "203.0.113.6/32", 0, true),                // open-ended quiet /32
		ev(2, "203.0.113.7/32", 2*time.Hour, false),     // short quiet: NOT zombie
	}
	vs := []anomaly.Verdict{
		{EventID: 0}, {EventID: 1}, {EventID: 2},
	}
	res := Classify(evs, vs, pEnd)
	if res.Counts[ClassZombie] != 2 {
		t.Fatalf("zombies = %d (%v)", res.Counts[ClassZombie], res.Counts)
	}
	if res.Counts[ClassOther] != 1 {
		t.Fatalf("other = %d", res.Counts[ClassOther])
	}
	// Only the short quiet event stays "other" with <10 packets; the two
	// zombies are already accounted for by their own class.
	if res.LowTrafficHostShare != 1.0/3 {
		t.Fatalf("low traffic share = %v", res.LowTrafficHostShare)
	}
}

func TestClassifySquatting(t *testing.T) {
	e1 := ev(0, "40.0.0.0/22", 60*24*time.Hour, false)
	e2 := ev(1, "40.0.4.0/24", 0, true)
	e2.OriginAS = e1.OriginAS // same AS announces both
	evs := []*events.Event{e1, e2}
	vs := []anomaly.Verdict{{EventID: 0}, {EventID: 1}}
	res := Classify(evs, vs, pEnd)
	if res.Counts[ClassSquattingProtection] != 2 {
		t.Fatalf("squatting = %v", res.Counts)
	}
	if res.SquatPrefixes != 2 || res.SquatASes != 1 {
		t.Fatalf("squat prefixes=%d ases=%d", res.SquatPrefixes, res.SquatASes)
	}
}

func TestClassifyContentBlocking(t *testing.T) {
	evs := []*events.Event{ev(0, "203.0.113.5/32", 30*24*time.Hour, false)}
	vs := []anomaly.Verdict{{EventID: 0, HasPreData: true, HasEventData: true, EventPackets: 10000}}
	res := Classify(evs, vs, pEnd)
	if res.Counts[ClassContentBlocking] != 1 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

func TestClassifySquattingRequiresQuietPrefix(t *testing.T) {
	// A long /24 with lots of traffic is not squatting protection.
	evs := []*events.Event{ev(0, "40.0.0.0/24", 60*24*time.Hour, false)}
	vs := []anomaly.Verdict{{EventID: 0, HasPreData: true, HasEventData: true, EventPackets: 100000}}
	res := Classify(evs, vs, pEnd)
	if res.Counts[ClassSquattingProtection] != 0 {
		t.Fatalf("busy /24 classified as squatting: %v", res.Counts)
	}
}

func TestDurationsRecorded(t *testing.T) {
	evs := []*events.Event{ev(0, "203.0.113.5/32", time.Hour, false)}
	vs := []anomaly.Verdict{{EventID: 0, HasPreData: true, Within10Min: true}}
	res := Classify(evs, vs, pEnd)
	ds := res.Durations[ClassInfrastructureProtection]
	if len(ds) != 1 || ds[0] != time.Hour {
		t.Fatalf("durations = %v", ds)
	}
	if len(res.PerEvent) != 1 || res.PerEvent[0].Class != ClassInfrastructureProtection {
		t.Fatalf("per event = %v", res.PerEvent)
	}
}

func TestTable1Complete(t *testing.T) {
	if len(Table1) != 3 {
		t.Fatalf("Table 1 rows = %d", len(Table1))
	}
	for _, row := range Table1 {
		if row.UseCase == "" || row.PrefixLength == "" || row.Duration == "" {
			t.Fatalf("incomplete row: %+v", row)
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassOther:                    "other",
		ClassInfrastructureProtection: "infrastructure-protection",
		ClassSquattingProtection:      "squatting-protection",
		ClassZombie:                   "zombie",
		ClassContentBlocking:          "content-blocking",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
}
