// Package visibility analyses targeted blackhole announcements (paper
// §4.1, Fig 4): how many of the currently announced blackholes are kept
// invisible from peers via route-server targeting communities. The
// per-peer view is derived purely from the control plane, exactly as the
// paper derives it from the collected BGP communities.
package visibility

import (
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// Point is one sample of the filtered-share quantiles: the fraction of
// announced blackholes not visible to the most-filtered peer (Max), the
// 99th-percentile peer (P99) and the median peer (P50).
type Point struct {
	Time   time.Time
	Active int
	Max    float64
	P99    float64
	P50    float64
}

// Result is the Fig 4 series plus summary maxima.
type Result struct {
	Series []Point
	// PeakMax/PeakP99/PeakP50 are the largest observed values of each
	// quantile across the period (§4.1 quotes 10.8% / 6.2%).
	PeakMax float64
	PeakP99 float64
	PeakP50 float64
	// TargetedShare is the fraction of announcements carrying targeting
	// communities at all.
	TargetedShare float64
}

type routeKey struct {
	prefix bgp.Prefix
	peer   uint32
}

// Compute samples the per-peer hidden-share quantiles every interval over
// [start, end). peers is the member population (the route server's
// clients); updates must be time-sorted.
func Compute(updates []analysis.ControlUpdate, peers []uint32, start, end time.Time, interval time.Duration) *Result {
	res := &Result{}
	if !end.After(start) || len(peers) == 0 || interval <= 0 {
		return res
	}
	peerIdx := make(map[uint32]int, len(peers))
	for i, p := range peers {
		peerIdx[p] = i
	}
	hidden := make([]int, len(peers))  // per-peer count of invisible actives
	exclOf := make(map[routeKey][]int) // active route -> excluded peer indices
	active := make(map[routeKey]bool)

	apply := func(key routeKey, idxs []int, sign int) {
		for _, i := range idxs {
			hidden[i] += sign
		}
	}

	targeted, announcements := 0, 0
	ui := 0
	samples := int(end.Sub(start) / interval)
	scratch := make([]float64, len(peers))
	for s := 0; s < samples; s++ {
		cut := start.Add(time.Duration(s+1) * interval)
		for ui < len(updates) && updates[ui].Time.Before(cut) {
			u := &updates[ui]
			key := routeKey{prefix: u.Prefix, peer: u.Peer}
			if u.Announce {
				announcements++
				var idxs []int
				for _, c := range u.Communities {
					if c.ASN() == 0 && c.Value() != 0 {
						if i, ok := peerIdx[uint32(c.Value())]; ok {
							idxs = append(idxs, i)
						}
					}
				}
				if len(idxs) > 0 {
					targeted++
				}
				if active[key] {
					// Re-announcement replaces the audience.
					apply(key, exclOf[key], -1)
					delete(exclOf, key)
				}
				active[key] = true
				if len(idxs) > 0 {
					exclOf[key] = idxs
					apply(key, idxs, +1)
				}
			} else if active[key] {
				apply(key, exclOf[key], -1)
				delete(exclOf, key)
				delete(active, key)
			}
			ui++
		}

		nActive := len(active)
		p := Point{Time: cut, Active: nActive}
		if nActive > 0 {
			for i, h := range hidden {
				scratch[i] = float64(h) / float64(nActive)
			}
			sorted := append([]float64(nil), scratch...)
			sort.Float64s(sorted)
			p.Max = sorted[len(sorted)-1]
			p.P99 = quantileSorted(sorted, 0.99)
			p.P50 = quantileSorted(sorted, 0.50)
		}
		res.Series = append(res.Series, p)
		if p.Max > res.PeakMax {
			res.PeakMax = p.Max
		}
		if p.P99 > res.PeakP99 {
			res.PeakP99 = p.P99
		}
		if p.P50 > res.PeakP50 {
			res.PeakP50 = p.P50
		}
	}
	if announcements > 0 {
		res.TargetedShare = float64(targeted) / float64(announcements)
	}
	return res
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}
