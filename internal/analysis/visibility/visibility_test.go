package visibility

import (
	"math"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

var t0 = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)

func ann(t time.Time, peer uint32, prefix string, excludes ...uint32) analysis.ControlUpdate {
	cs := bgp.Communities{bgp.Blackhole}
	for _, e := range excludes {
		cs = append(cs, bgp.MakeCommunity(0, uint16(e)))
	}
	return analysis.ControlUpdate{
		Time: t, Peer: peer, Prefix: bgp.MustParsePrefix(prefix),
		Announce: true, Communities: cs,
	}
}

func wd(t time.Time, peer uint32, prefix string) analysis.ControlUpdate {
	return analysis.ControlUpdate{Time: t, Peer: peer, Prefix: bgp.MustParsePrefix(prefix)}
}

func TestUntargetedBlackholesFullyVisible(t *testing.T) {
	peers := []uint32{100, 200, 300, 400}
	us := []analysis.ControlUpdate{
		ann(t0, 100, "203.0.113.5/32"),
		ann(t0.Add(time.Minute), 100, "203.0.113.6/32"),
	}
	res := Compute(us, peers, t0, t0.Add(time.Hour), 10*time.Minute)
	if res.PeakMax != 0 || res.PeakP50 != 0 {
		t.Fatalf("untargeted peaks = %+v", res)
	}
	if res.TargetedShare != 0 {
		t.Fatalf("targeted share = %v", res.TargetedShare)
	}
}

func TestTargetedExclusionCountsForExcludedPeer(t *testing.T) {
	peers := []uint32{100, 200, 300, 400}
	us := []analysis.ControlUpdate{
		ann(t0, 100, "203.0.113.5/32", 300),
		ann(t0.Add(time.Second), 100, "203.0.113.6/32"),
	}
	res := Compute(us, peers, t0, t0.Add(20*time.Minute), 10*time.Minute)
	// Peer 300 misses 1 of 2 actives -> max 0.5; everyone else 0.
	if math.Abs(res.PeakMax-0.5) > 1e-9 {
		t.Fatalf("PeakMax = %v, want 0.5", res.PeakMax)
	}
	if res.PeakP50 != 0 {
		t.Fatalf("PeakP50 = %v, want 0 (median peer unaffected)", res.PeakP50)
	}
	if math.Abs(res.TargetedShare-0.5) > 1e-9 {
		t.Fatalf("TargetedShare = %v", res.TargetedShare)
	}
}

func TestWithdrawRestoresVisibility(t *testing.T) {
	peers := []uint32{100, 200}
	us := []analysis.ControlUpdate{
		ann(t0, 100, "203.0.113.5/32", 200),
		wd(t0.Add(11*time.Minute), 100, "203.0.113.5/32"),
		ann(t0.Add(12*time.Minute), 100, "203.0.113.6/32"),
	}
	res := Compute(us, peers, t0, t0.Add(30*time.Minute), 10*time.Minute)
	if math.Abs(res.Series[0].Max-1.0) > 1e-9 { // only the hidden route active
		t.Fatalf("sample 0 = %+v", res.Series[0])
	}
	last := res.Series[len(res.Series)-1]
	if last.Max != 0 || last.Active != 1 {
		t.Fatalf("final sample = %+v", last)
	}
}

func TestReannouncementReplacesAudience(t *testing.T) {
	peers := []uint32{100, 200, 300}
	us := []analysis.ControlUpdate{
		ann(t0, 100, "203.0.113.5/32", 200),
		// Re-announce without exclusions: 200 sees it again.
		ann(t0.Add(time.Minute), 100, "203.0.113.5/32"),
	}
	res := Compute(us, peers, t0, t0.Add(10*time.Minute), 5*time.Minute)
	if res.Series[0].Max != 0 {
		t.Fatalf("audience not replaced: %+v", res.Series[0])
	}
}

func TestDegenerateInputs(t *testing.T) {
	if res := Compute(nil, nil, t0, t0.Add(time.Hour), time.Minute); len(res.Series) != 0 {
		t.Fatal("no peers should produce no series")
	}
	if res := Compute(nil, []uint32{1}, t0, t0, time.Minute); len(res.Series) != 0 {
		t.Fatal("empty period should produce no series")
	}
}

func TestQuantileSeriesOrdering(t *testing.T) {
	// Max >= P99 >= P50 always.
	peers := make([]uint32, 50)
	for i := range peers {
		peers[i] = uint32(100 + i)
	}
	var us []analysis.ControlUpdate
	for i := 0; i < 30; i++ {
		excl := []uint32{}
		for j := 0; j < i%7; j++ {
			excl = append(excl, peers[(i+j)%len(peers)])
		}
		us = append(us, ann(t0.Add(time.Duration(i)*time.Minute), 100,
			bgp.MakePrefix(0xCB007100+uint32(i), 32).String(), excl...))
	}
	res := Compute(us, peers, t0, t0.Add(time.Hour), 5*time.Minute)
	for _, p := range res.Series {
		if p.Max < p.P99-1e-9 || p.P99 < p.P50-1e-9 {
			t.Fatalf("quantile ordering violated: %+v", p)
		}
	}
}
