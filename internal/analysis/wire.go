package analysis

// Wire codec primitives for the compact operator snapshots that federate
// per-IXP analysis state (see internal/federation). The format is
// deliberately minimal and canonical:
//
//   - integers are unsigned LEB128 varints (signed values zigzag),
//   - floats are the IEEE 754 bit pattern as a fixed 8-byte little-endian
//     word,
//   - collections are a count followed by the elements in a sorted,
//     deterministic order chosen by each operator's Marshal,
//   - every operator payload starts with its own version byte.
//
// Canonical ordering makes Marshal a fingerprint: two operator states
// that are semantically equal (same tallies, same sets) marshal to the
// same bytes regardless of observation or merge order. The conformance
// suite leans on this to compare merged against sequential state, and
// Marshal→Unmarshal→Snapshot→Marshal round-trips byte-identically.
//
// Decoding is defensive: a WireReader never panics on truncated or
// corrupted input and never allocates more than the input length can
// justify (Count caps element counts by the remaining bytes), so the
// codec is safe to expose to fuzzing and untrusted transports.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// WireWriter appends wire-encoded values to a buffer.
type WireWriter struct {
	buf []byte
}

// NewWireWriter returns an empty writer.
func NewWireWriter() *WireWriter { return &WireWriter{} }

// Bytes returns the encoded buffer.
func (w *WireWriter) Bytes() []byte { return w.buf }

// Byte appends one raw byte.
func (w *WireWriter) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends v as an unsigned LEB128 varint.
func (w *WireWriter) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends v zigzag-encoded.
func (w *WireWriter) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Bool appends a strict 0/1 byte.
func (w *WireWriter) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// F64 appends the IEEE 754 bit pattern of v as 8 little-endian bytes.
func (w *WireWriter) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Blob appends a length-prefixed byte section.
func (w *WireWriter) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// WireReader decodes values written by WireWriter. The first decoding
// error sticks: every later read returns a zero value, and Err/Done
// report the failure. Reads never panic and never over-allocate.
type WireReader struct {
	buf []byte
	off int
	err error
}

// NewWireReader returns a reader over data.
func NewWireReader(data []byte) *WireReader { return &WireReader{buf: data} }

// Err returns the first decoding error, if any.
func (r *WireReader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *WireReader) Remaining() int { return len(r.buf) - r.off }

func (r *WireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Done returns the sticky error, or an error if unread bytes remain: a
// canonical payload is consumed exactly.
func (r *WireReader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Byte reads one raw byte.
func (r *WireReader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("wire: truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Version reads one byte and fails unless it equals want.
func (r *WireReader) Version(want byte) {
	if got := r.Byte(); r.err == nil && got != want {
		r.fail("wire: unsupported version %d (want %d)", got, want)
	}
}

// Uvarint reads an unsigned varint.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("wire: truncated or overlong uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *WireReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("wire: truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

// U32 reads a uvarint and range-checks it into uint32.
func (r *WireReader) U32() uint32 {
	v := r.Uvarint()
	if v > math.MaxUint32 {
		r.fail("wire: value %d exceeds uint32", v)
		return 0
	}
	return uint32(v)
}

// U16 reads a uvarint and range-checks it into uint16.
func (r *WireReader) U16() uint16 {
	v := r.Uvarint()
	if v > math.MaxUint16 {
		r.fail("wire: value %d exceeds uint16", v)
		return 0
	}
	return uint16(v)
}

// Int reads a uvarint and range-checks it into a non-negative int.
func (r *WireReader) Int() int {
	v := r.Uvarint()
	if bits.UintSize == 32 && v > math.MaxInt32 {
		r.fail("wire: value %d exceeds int", v)
		return 0
	}
	if v > math.MaxInt64 {
		r.fail("wire: value %d exceeds int", v)
		return 0
	}
	return int(v)
}

// Bool reads a strict 0/1 byte.
func (r *WireReader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("wire: invalid bool byte")
		return false
	}
}

// F64 reads an 8-byte little-endian IEEE 754 value.
func (r *WireReader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("wire: truncated float64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// Count reads an element count and validates it against the remaining
// input: a collection of n elements needs at least n*minElemSize bytes,
// so corrupted counts fail here instead of provoking a huge allocation.
func (r *WireReader) Count(minElemSize int) int {
	if minElemSize < 1 {
		minElemSize = 1
	}
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/minElemSize) {
		r.fail("wire: count %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// Blob reads a length-prefixed section and returns it as a subslice of
// the input (no copy; the caller must not retain it past the input's
// lifetime unless it copies).
func (r *WireReader) Blob() []byte {
	n := r.Count(1)
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// SortedU64 returns a sorted copy of keys, the canonical order for
// serializing set contents.
func SortedU64(keys []uint64) []uint64 {
	out := append([]uint64(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeWire appends the set's canonical encoding: capacity, saturated
// tail, then the recorded keys sorted ascending. Two sets holding the
// same keys encode identically regardless of insertion order.
func (s *BoundedSet) EncodeWire(w *WireWriter) {
	w.Uvarint(uint64(s.cap))
	w.Uvarint(uint64(s.saturated))
	keys := SortedU64(s.keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Uvarint(k)
	}
}

// DecodeWire replaces the set's state with the decoded encoding.
func (s *BoundedSet) DecodeWire(r *WireReader) {
	capacity := r.Int()
	saturated := r.U32()
	n := r.Count(1)
	keys := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, r.Uvarint())
	}
	if r.Err() != nil {
		return
	}
	s.cap = capacity
	s.saturated = saturated
	s.keys = keys
}

// EncodeWire appends the counter's canonical encoding: capacity, then
// (key, count) pairs sorted by key.
func (c *TopCounter) EncodeWire(w *WireWriter) {
	w.Uvarint(uint64(c.cap))
	idx := make([]int, len(c.keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return c.keys[idx[i]] < c.keys[idx[j]] })
	w.Uvarint(uint64(len(idx)))
	for _, i := range idx {
		w.Uvarint(uint64(c.keys[i]))
		w.Uvarint(c.counts[i])
	}
}

// DecodeWire replaces the counter's state with the decoded encoding.
func (c *TopCounter) DecodeWire(r *WireReader) {
	capacity := r.Int()
	n := r.Count(2)
	keys := make([]uint32, 0, n)
	counts := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, r.U32())
		counts = append(counts, r.Uvarint())
	}
	if r.Err() != nil {
		return
	}
	c.cap = capacity
	c.keys = keys
	c.counts = counts
}
