// Package benchgate turns the CI benchmark run from an archive into a
// gate. It parses the `go test -json -bench` stream, extracts the
// headline series the batch path is accountable for (records/s and
// allocs/record), and compares throughput against a checked-in baseline:
// a drop of more than the configured regression budget fails the build.
//
// The baseline intentionally pins the PRE-batch-path throughput (the
// record-at-a-time pipeline measured ~630k records/s on the reference
// machine). The batch path runs 2-2.7x that, so the 20% budget below the
// OLD number is machine-speed slack, while any change that silently
// reverts the batch contract lands at or below the old figure and trips
// the gate even on a slower runner.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurement line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkPipelineParallel/workers=2".
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line ("ns/op", "records/s", "allocs/record", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// testEvent is the subset of the `go test -json` event stream we need.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// ParseGoTestJSON reads a `go test -json` stream and returns every
// benchmark measurement line found in the output events, in order.
//
// Benchmark output arrives split across events: the runner flushes the
// name ("BenchmarkFoo \t") before timing and the measurement fields
// only after, so the two land in separate Output events. Partial lines
// (no trailing newline) are therefore buffered per package/test until
// the line completes.
func ParseGoTestJSON(r io.Reader) ([]Result, error) {
	var out []Result
	partial := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate non-JSON noise (tee'd warnings, build output).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		text := partial[key] + ev.Output
		if !strings.HasSuffix(text, "\n") {
			partial[key] = text
			continue
		}
		delete(partial, key)
		for _, l := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
			if res, ok := parseBenchLine(l); ok {
				out = append(out, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading go test -json stream: %w", err)
	}
	return out, nil
}

// parseBenchLine parses a single benchmark measurement line of the form
//
//	BenchmarkName-8   12   98.7 ns/op   1684012 records/s
//
// returning ok=false for anything else.
func parseBenchLine(s string) (Result, bool) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}

// stripProcs removes the trailing -GOMAXPROCS marker go test appends to
// benchmark names ("BenchmarkFoo/sub-8" -> "BenchmarkFoo/sub").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Baseline is the checked-in throughput contract.
type Baseline struct {
	// MaxRegression is the tolerated fractional throughput drop below
	// each baseline figure (0.20 = fail below 80% of baseline).
	MaxRegression float64 `json:"max_regression"`
	// MaxAllocsPerRecord caps the allocs/record metric wherever a gated
	// benchmark reports it (0 disables the cap).
	MaxAllocsPerRecord float64 `json:"max_allocs_per_record"`
	// RecordsPerSec maps benchmark name -> baseline records/s.
	RecordsPerSec map[string]float64 `json:"records_per_sec"`
}

// ReadBaseline parses a baseline JSON document.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var bl Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&bl); err != nil {
		return Baseline{}, fmt.Errorf("parsing baseline: %w", err)
	}
	if bl.MaxRegression <= 0 || bl.MaxRegression >= 1 {
		return Baseline{}, fmt.Errorf("baseline max_regression must be in (0,1), got %g", bl.MaxRegression)
	}
	if len(bl.RecordsPerSec) == 0 {
		return Baseline{}, fmt.Errorf("baseline gates no benchmarks (records_per_sec is empty)")
	}
	return bl, nil
}

// Check compares the parsed results against the baseline and returns one
// human-readable failure per violated gate (empty = pass). A gated
// benchmark that is missing from the run is a failure: a silently
// deleted benchmark must not green the gate.
func Check(results []Result, bl Baseline) []string {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		if _, dup := byName[r.Name]; !dup {
			byName[r.Name] = r
		}
	}
	names := make([]string, 0, len(bl.RecordsPerSec))
	for name := range bl.RecordsPerSec {
		names = append(names, name)
	}
	sort.Strings(names)
	var fails []string
	for _, name := range names {
		base := bl.RecordsPerSec[name]
		res, ok := byName[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: gated benchmark missing from the run", name))
			continue
		}
		got, ok := res.Metrics["records/s"]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: no records/s metric reported", name))
			continue
		}
		if floor := base * (1 - bl.MaxRegression); got < floor {
			fails = append(fails, fmt.Sprintf("%s: %.0f records/s is below the regression floor %.0f (baseline %.0f, budget %g%%)",
				name, got, floor, base, bl.MaxRegression*100))
		}
		if bl.MaxAllocsPerRecord > 0 {
			if allocs, ok := res.Metrics["allocs/record"]; ok && allocs > bl.MaxAllocsPerRecord {
				fails = append(fails, fmt.Sprintf("%s: %.2f allocs/record exceeds the cap %.2f",
					name, allocs, bl.MaxAllocsPerRecord))
			}
		}
	}
	return fails
}

// Headline filters the results to the batch-path accountability series:
// every benchmark that reports records/s or allocs/record.
func Headline(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if _, ok := r.Metrics["records/s"]; ok {
			out = append(out, r)
			continue
		}
		if _, ok := r.Metrics["allocs/record"]; ok {
			out = append(out, r)
		}
	}
	return out
}

// WriteHeadline renders the headline series as a stable JSON array.
func WriteHeadline(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Headline(results))
}
