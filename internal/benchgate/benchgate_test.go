package benchgate

import (
	"strings"
	"testing"
)

// stream builds a go test -json stream from raw benchmark output lines.
func stream(lines ...string) string {
	var sb strings.Builder
	sb.WriteString(`{"Action":"start","Package":"repro"}` + "\n")
	for _, l := range lines {
		sb.WriteString(`{"Action":"output","Package":"repro","Output":"` + l + `\n"}` + "\n")
	}
	sb.WriteString(`{"Action":"pass","Package":"repro"}` + "\n")
	return sb.String()
}

func TestParseGoTestJSON(t *testing.T) {
	in := stream(
		"goos: linux",
		"BenchmarkPipelineSequential-8   2   500000 ns/op   1684012 records/s   1.01 allocs/record",
		"BenchmarkPipelineParallel/workers=2-8   1   700000 ns/op   1330000 records/s   1.20 allocs/record",
		"BenchmarkFig2TimeOffset-8   3   1234 ns/op",
		"PASS",
	)
	results, err := ParseGoTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	seq := results[0]
	if seq.Name != "BenchmarkPipelineSequential" {
		t.Errorf("name = %q, want procs suffix stripped", seq.Name)
	}
	if seq.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", seq.Iterations)
	}
	if got := seq.Metrics["records/s"]; got != 1684012 {
		t.Errorf("records/s = %g, want 1684012", got)
	}
	if results[1].Name != "BenchmarkPipelineParallel/workers=2" {
		t.Errorf("subbench name = %q", results[1].Name)
	}
	if got := results[2].Metrics["ns/op"]; got != 1234 {
		t.Errorf("ns/op = %g, want 1234", got)
	}
}

// TestParseReassemblesSplitLines covers the real go test -json shape:
// the runner flushes the benchmark name before timing, so the name and
// the measurement arrive in separate Output events.
func TestParseReassemblesSplitLines(t *testing.T) {
	in := `{"Action":"output","Package":"repro","Test":"BenchmarkPipelineSequential","Output":"BenchmarkPipelineSequential\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkPipelineSequential","Output":"BenchmarkPipelineSequential \t"}
{"Action":"output","Package":"other","Test":"BenchmarkOther","Output":"BenchmarkOther-8   1   5 ns/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkPipelineSequential","Output":"       1\t 259651831 ns/op\t         1.010 allocs/record\t   1279271 records/s\n"}
`
	results, err := ParseGoTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	if results[0].Name != "BenchmarkOther" {
		t.Errorf("interleaved package result = %q, want BenchmarkOther", results[0].Name)
	}
	seq := results[1]
	if seq.Name != "BenchmarkPipelineSequential" {
		t.Fatalf("reassembled name = %q", seq.Name)
	}
	if got := seq.Metrics["records/s"]; got != 1279271 {
		t.Errorf("records/s = %g, want 1279271", got)
	}
	if got := seq.Metrics["allocs/record"]; got != 1.010 {
		t.Errorf("allocs/record = %g, want 1.01", got)
	}
}

func TestParseToleratesNoise(t *testing.T) {
	in := "not json at all\n" + stream("BenchmarkX-4   1   10 ns/op") + "{broken\n"
	results, err := ParseGoTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkX" {
		t.Fatalf("results = %+v, want just BenchmarkX", results)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":            "BenchmarkFoo",
		"BenchmarkFoo/workers=2-16": "BenchmarkFoo/workers=2",
		"BenchmarkFoo":              "BenchmarkFoo",
		"BenchmarkFoo-x8":           "BenchmarkFoo-x8",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func baseline() Baseline {
	return Baseline{
		MaxRegression:      0.20,
		MaxAllocsPerRecord: 8,
		RecordsPerSec: map[string]float64{
			"BenchmarkPipelineSequential": 630000,
		},
	}
}

func seqResult(recsPerSec, allocs float64) Result {
	return Result{
		Name:       "BenchmarkPipelineSequential",
		Iterations: 1,
		Metrics:    map[string]float64{"records/s": recsPerSec, "allocs/record": allocs},
	}
}

func TestCheckPassesAboveFloor(t *testing.T) {
	// 20% budget below 630k = 504k floor; both the batch-path figure and
	// a modest machine slowdown must pass.
	for _, v := range []float64{1684012, 630000, 505000} {
		if fails := Check([]Result{seqResult(v, 1.0)}, baseline()); len(fails) != 0 {
			t.Errorf("records/s=%g should pass, got %v", v, fails)
		}
	}
}

func TestCheckFailsBelowFloor(t *testing.T) {
	fails := Check([]Result{seqResult(500000, 1.0)}, baseline())
	if len(fails) != 1 || !strings.Contains(fails[0], "regression floor") {
		t.Fatalf("want one regression failure, got %v", fails)
	}
}

func TestCheckFailsOnAllocs(t *testing.T) {
	fails := Check([]Result{seqResult(1684012, 9.5)}, baseline())
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/record") {
		t.Fatalf("want one allocs failure, got %v", fails)
	}
}

func TestCheckFailsOnMissingBenchmark(t *testing.T) {
	fails := Check(nil, baseline())
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("want one missing-benchmark failure, got %v", fails)
	}
}

func TestReadBaselineRejectsBadBudget(t *testing.T) {
	for _, doc := range []string{
		`{"max_regression":0,"records_per_sec":{"B":1}}`,
		`{"max_regression":1.5,"records_per_sec":{"B":1}}`,
		`{"max_regression":0.2,"records_per_sec":{}}`,
		`{"max_regression":0.2,"records_per_sec":{"B":1},"unknown_knob":true}`,
	} {
		if _, err := ReadBaseline(strings.NewReader(doc)); err == nil {
			t.Errorf("baseline %s should be rejected", doc)
		}
	}
}

func TestHeadlineFilters(t *testing.T) {
	results := []Result{
		seqResult(1e6, 1),
		{Name: "BenchmarkFig2TimeOffset", Iterations: 1, Metrics: map[string]float64{"ns/op": 12}},
	}
	head := Headline(results)
	if len(head) != 1 || head[0].Name != "BenchmarkPipelineSequential" {
		t.Fatalf("headline = %+v, want just the pipeline series", head)
	}
}
