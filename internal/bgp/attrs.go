package bgp

import (
	"encoding/binary"
	"fmt"
)

// Path attribute type codes (RFC 4271 §5, RFC 1997).
const (
	AttrOrigin      = 1
	AttrASPath      = 2
	AttrNextHop     = 3
	AttrMED         = 4
	AttrLocalPref   = 5
	AttrCommunities = 8
)

// Origin values for the ORIGIN attribute.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	segASSet      = 1
	segASSequence = 2
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLength  = 0x10
)

// PathAttrs carries the decoded path attributes of an UPDATE. Only the
// attributes that matter for a route-server RTBH deployment are modeled;
// unknown optional-transitive attributes are preserved opaquely so that a
// decode/encode round trip is lossless.
type PathAttrs struct {
	Origin       uint8
	ASPath       []uint32 // AS_SEQUENCE, 4-byte ASNs, leftmost = neighbor
	NextHop      uint32   // IPv4 next hop, host byte order
	MED          uint32
	HasMED       bool
	LocalPref    uint32
	HasLocalPref bool
	Communities  Communities

	// Unknown holds unrecognized attributes verbatim (flags, type, value)
	// in arrival order.
	Unknown []RawAttr
}

// RawAttr is an undecoded path attribute.
type RawAttr struct {
	Flags byte
	Type  byte
	Value []byte
}

// Clone returns a deep copy of the attributes.
func (a *PathAttrs) Clone() PathAttrs {
	out := *a
	out.ASPath = append([]uint32(nil), a.ASPath...)
	out.Communities = a.Communities.Clone()
	if a.Unknown != nil {
		out.Unknown = make([]RawAttr, len(a.Unknown))
		for i, u := range a.Unknown {
			out.Unknown[i] = RawAttr{Flags: u.Flags, Type: u.Type, Value: append([]byte(nil), u.Value...)}
		}
	}
	return out
}

// OriginAS returns the rightmost AS of the AS_PATH (the route's origin),
// or 0 for an empty path (locally originated at the peer).
func (a *PathAttrs) OriginAS() uint32 {
	if len(a.ASPath) == 0 {
		return 0
	}
	return a.ASPath[len(a.ASPath)-1]
}

// appendAttr writes one attribute with correct flags/extended-length. The
// extended-length bit is recomputed from the value size: a stale bit from
// a caller (e.g. a preserved unknown attribute originally encoded with a
// needless two-byte length) would corrupt the header.
func appendAttr(dst []byte, flags, typ byte, value []byte) []byte {
	if len(value) > 255 {
		dst = append(dst, flags|flagExtLength, typ, byte(len(value)>>8), byte(len(value)))
	} else {
		dst = append(dst, flags&^flagExtLength, typ, byte(len(value)))
	}
	return append(dst, value...)
}

// encode serializes the attributes in canonical (ascending type) order.
func (a *PathAttrs) encode(dst []byte) []byte {
	// ORIGIN (well-known mandatory)
	dst = appendAttr(dst, flagTransitive, AttrOrigin, []byte{a.Origin})

	// AS_PATH (well-known mandatory); AS_SEQUENCE segments of up to 255
	// ASNs each (a segment's count field is one byte), 4-byte ASNs. Paths
	// longer than 255 hops split into consecutive segments, which decode
	// back to the same flattened path.
	path := make([]byte, 0, 2+4*len(a.ASPath))
	for rest := a.ASPath; len(rest) > 0; {
		seg := rest
		if len(seg) > 255 {
			seg = seg[:255]
		}
		rest = rest[len(seg):]
		path = append(path, segASSequence, byte(len(seg)))
		for _, asn := range seg {
			path = binary.BigEndian.AppendUint32(path, asn)
		}
	}
	dst = appendAttr(dst, flagTransitive, AttrASPath, path)

	// NEXT_HOP (well-known mandatory)
	nh := binary.BigEndian.AppendUint32(nil, a.NextHop)
	dst = appendAttr(dst, flagTransitive, AttrNextHop, nh)

	if a.HasMED {
		dst = appendAttr(dst, flagOptional, AttrMED, binary.BigEndian.AppendUint32(nil, a.MED))
	}
	if a.HasLocalPref {
		dst = appendAttr(dst, flagTransitive, AttrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref))
	}
	if len(a.Communities) > 0 {
		cv := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			cv = binary.BigEndian.AppendUint32(cv, uint32(c))
		}
		dst = appendAttr(dst, flagOptional|flagTransitive, AttrCommunities, cv)
	}
	for _, u := range a.Unknown {
		dst = appendAttr(dst, u.Flags, u.Type, u.Value)
	}
	return dst
}

// decodePathAttrs parses the path-attribute block of an UPDATE.
func decodePathAttrs(b []byte) (PathAttrs, error) {
	var a PathAttrs
	for len(b) > 0 {
		if len(b) < 3 {
			return a, fmt.Errorf("bgp: truncated path attribute header")
		}
		flags, typ := b[0], b[1]
		var alen, hdr int
		if flags&flagExtLength != 0 {
			if len(b) < 4 {
				return a, fmt.Errorf("bgp: truncated extended-length attribute")
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			hdr = 4
		} else {
			alen = int(b[2])
			hdr = 3
		}
		if len(b) < hdr+alen {
			return a, fmt.Errorf("bgp: attribute %d length %d exceeds remaining %d bytes", typ, alen, len(b)-hdr)
		}
		val := b[hdr : hdr+alen]
		b = b[hdr+alen:]

		switch typ {
		case AttrOrigin:
			if alen != 1 {
				return a, fmt.Errorf("bgp: ORIGIN length %d", alen)
			}
			if val[0] > OriginIncomplete {
				return a, fmt.Errorf("bgp: invalid ORIGIN %d", val[0])
			}
			a.Origin = val[0]
		case AttrASPath:
			path, err := decodeASPath(val)
			if err != nil {
				return a, err
			}
			a.ASPath = path
		case AttrNextHop:
			if alen != 4 {
				return a, fmt.Errorf("bgp: NEXT_HOP length %d", alen)
			}
			a.NextHop = binary.BigEndian.Uint32(val)
		case AttrMED:
			if alen != 4 {
				return a, fmt.Errorf("bgp: MED length %d", alen)
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case AttrLocalPref:
			if alen != 4 {
				return a, fmt.Errorf("bgp: LOCAL_PREF length %d", alen)
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocalPref = true
		case AttrCommunities:
			if alen%4 != 0 {
				return a, fmt.Errorf("bgp: COMMUNITIES length %d not a multiple of 4", alen)
			}
			cs := make(Communities, 0, alen/4)
			for i := 0; i < alen; i += 4 {
				cs = append(cs, Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
			a.Communities = cs
		default:
			// Store canonical flags: extended length is a wire-encoding
			// detail recomputed on encode, not an attribute property.
			a.Unknown = append(a.Unknown, RawAttr{
				Flags: flags &^ flagExtLength, Type: typ, Value: append([]byte(nil), val...),
			})
		}
	}
	return a, nil
}

func decodeASPath(b []byte) ([]uint32, error) {
	var path []uint32
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment header")
		}
		segType, count := b[0], int(b[1])
		if segType != segASSequence && segType != segASSet {
			return nil, fmt.Errorf("bgp: unknown AS_PATH segment type %d", segType)
		}
		if len(b) < 2+4*count {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment (want %d ASNs)", count)
		}
		for i := 0; i < count; i++ {
			path = append(path, binary.BigEndian.Uint32(b[2+4*i:]))
		}
		b = b[2+4*count:]
	}
	return path, nil
}
