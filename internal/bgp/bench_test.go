package bgp

import "testing"

// BenchmarkEncodeUpdate measures RTBH announcement serialization.
func BenchmarkEncodeUpdate(b *testing.B) {
	u := sampleUpdateForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeUpdate(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeUpdate measures the collector-side parse path.
func BenchmarkDecodeUpdate(b *testing.B) {
	enc, err := EncodeUpdate(sampleUpdateForBench())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeMessage(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func sampleUpdateForBench() *Update {
	return &Update{
		Attrs: PathAttrs{
			Origin:      OriginIGP,
			ASPath:      []uint32{64500, 65550},
			NextHop:     0xc0000242,
			Communities: Communities{Blackhole, NoExport, MakeCommunity(0, 1234)},
		},
		NLRI: []Prefix{MustParsePrefix("203.0.113.5/32")},
	}
}

// BenchmarkPrefixLookup measures the map-key hot path.
func BenchmarkPrefixContains(b *testing.B) {
	p := MustParsePrefix("203.0.113.0/24")
	hit := 0
	for i := 0; i < b.N; i++ {
		if p.Contains(0xcb007100 + uint32(i)&0xff) {
			hit++
		}
	}
	_ = hit
}
