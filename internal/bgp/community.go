package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// Community is an RFC 1997 standard community: a 32-bit value conventionally
// written as "asn:value" where asn is the upper and value the lower 16 bits.
type Community uint32

// MakeCommunity builds a community from its two 16-bit halves.
func MakeCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the upper 16 bits (the namespace AS).
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the lower 16 bits.
func (c Community) Value() uint16 { return uint16(c) }

// Well-known communities relevant to blackholing deployments.
const (
	// Blackhole is the RFC 7999 BLACKHOLE community (65535:666). A route
	// tagged with it requests that neighbors discard traffic destined to
	// the announced prefix.
	Blackhole Community = 0xFFFF029A // 65535:666

	// NoExport (RFC 1997) keeps the route inside the receiving AS. RFC
	// 7999 recommends attaching it alongside BLACKHOLE.
	NoExport Community = 0xFFFFFF01 // 65535:65281

	// NoAdvertise (RFC 1997) forbids any re-advertisement.
	NoAdvertise Community = 0xFFFFFF02 // 65535:65282
)

// String renders the conventional "asn:value" form.
func (c Community) String() string {
	return strconv.Itoa(int(c.ASN())) + ":" + strconv.Itoa(int(c.Value()))
}

// ParseCommunity parses the "asn:value" form.
func ParseCommunity(s string) (Community, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, fmt.Errorf("bgp: invalid community %q (want asn:value)", s)
	}
	asn, err := strconv.ParseUint(s[:i], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: invalid community ASN in %q", s)
	}
	val, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: invalid community value in %q", s)
	}
	return MakeCommunity(uint16(asn), uint16(val)), nil
}

// Communities is an ordered community list as carried in the COMMUNITIES
// path attribute.
type Communities []Community

// Contains reports whether c appears in the list.
func (cs Communities) Contains(c Community) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// HasBlackhole reports whether the route is tagged with RFC 7999 BLACKHOLE.
func (cs Communities) HasBlackhole() bool { return cs.Contains(Blackhole) }

// Clone returns an independent copy.
func (cs Communities) Clone() Communities {
	if cs == nil {
		return nil
	}
	out := make(Communities, len(cs))
	copy(out, cs)
	return out
}

// String renders a space-separated list, e.g. "65535:666 0:64500".
func (cs Communities) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}
