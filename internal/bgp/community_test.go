package bgp

import (
	"testing"
	"testing/quick"
)

func TestBlackholeCommunityValue(t *testing.T) {
	// RFC 7999 assigns 65535:666.
	if Blackhole.ASN() != 65535 || Blackhole.Value() != 666 {
		t.Fatalf("BLACKHOLE = %s", Blackhole)
	}
	if Blackhole.String() != "65535:666" {
		t.Fatalf("String = %q", Blackhole.String())
	}
}

func TestMakeCommunityRoundTripProperty(t *testing.T) {
	f := func(asn, value uint16) bool {
		c := MakeCommunity(asn, value)
		return c.ASN() == asn && c.Value() == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseCommunity(t *testing.T) {
	c, err := ParseCommunity("64500:666")
	if err != nil {
		t.Fatal(err)
	}
	if c.ASN() != 64500 || c.Value() != 666 {
		t.Fatalf("got %s", c)
	}
	for _, bad := range []string{"", "64500", ":", "70000:1", "1:70000", "a:b"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParseCommunityStringRoundTrip(t *testing.T) {
	f := func(asn, value uint16) bool {
		c := MakeCommunity(asn, value)
		got, err := ParseCommunity(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommunitiesContains(t *testing.T) {
	cs := Communities{Blackhole, MakeCommunity(0, 64501)}
	if !cs.HasBlackhole() {
		t.Fatal("HasBlackhole = false")
	}
	if !cs.Contains(MakeCommunity(0, 64501)) {
		t.Fatal("Contains known member = false")
	}
	if cs.Contains(NoExport) {
		t.Fatal("Contains absent member = true")
	}
	var empty Communities
	if empty.HasBlackhole() {
		t.Fatal("empty list has blackhole")
	}
}

func TestCommunitiesClone(t *testing.T) {
	cs := Communities{Blackhole, NoExport}
	c2 := cs.Clone()
	c2[0] = 0
	if cs[0] != Blackhole {
		t.Fatal("Clone shares backing array")
	}
	if Communities(nil).Clone() != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestCommunitiesString(t *testing.T) {
	cs := Communities{Blackhole, MakeCommunity(64500, 1)}
	if got := cs.String(); got != "65535:666 64500:1" {
		t.Fatalf("String = %q", got)
	}
}
