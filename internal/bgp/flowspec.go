package bgp

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file implements the subset of BGP Flow Specification (RFC 8955)
// that the paper discusses as the fine-grained alternative to RTBH
// (§1, §5.5): matching on destination prefix, IP protocol and transport
// ports, with the traffic-rate-0 ("discard") action carried as an
// extended community. FlowSpec NLRI travels in MP_REACH_NLRI /
// MP_UNREACH_NLRI attributes with AFI 1 (IPv4), SAFI 133.

// FlowSpec component types (RFC 8955 §4.2).
const (
	FSDstPrefix = 1
	FSSrcPrefix = 2
	FSIPProto   = 3
	FSPort      = 4
	FSDstPort   = 5
	FSSrcPort   = 6
)

// AFI/SAFI for IPv4 FlowSpec.
const (
	AFIIPv4       = 1
	SAFIFlowSpec  = 133
	AttrMPReach   = 14
	AttrMPUnreach = 15
	AttrExtComms  = 16
)

// TrafficRateDiscard is the extended community requesting rate 0 —
// discard all matching traffic (RFC 8955 §7.1, type 0x8006).
var TrafficRateDiscard = ExtCommunity{0x80, 0x06, 0, 0, 0, 0, 0, 0}

// ExtCommunity is one 8-byte BGP extended community.
type ExtCommunity [8]byte

// IsTrafficRate reports whether the community is a traffic-rate action;
// rate is the embedded float32 bytes (0 = discard).
func (e ExtCommunity) IsTrafficRate() (rate float32, ok bool) {
	if e[0] != 0x80 || e[1] != 0x06 {
		return 0, false
	}
	bits := binary.BigEndian.Uint32(e[4:8])
	return math.Float32frombits(bits), true
}

// FlowRule is a decoded FlowSpec rule. Zero-valued match fields are
// wildcards. Ports and protocols match if the packet value equals any
// listed value (the RFC's OR across equality operators).
type FlowRule struct {
	// Dst is the destination prefix (required in this deployment: the
	// route server validates that the rule protects the peer's space).
	Dst Prefix
	// HasDst reports whether Dst is present.
	HasDst bool
	// Protos lists matched IP protocols (empty = any).
	Protos []uint8
	// DstPorts and SrcPorts list matched transport ports (empty = any).
	DstPorts []uint16
	SrcPorts []uint16
}

// Matches reports whether a packet matches the rule.
func (r *FlowRule) Matches(dstIP uint32, proto uint8, srcPort, dstPort uint16) bool {
	if r.HasDst && !r.Dst.Contains(dstIP) {
		return false
	}
	if len(r.Protos) > 0 && !containsU8(r.Protos, proto) {
		return false
	}
	if len(r.DstPorts) > 0 && !containsU16(r.DstPorts, dstPort) {
		return false
	}
	if len(r.SrcPorts) > 0 && !containsU16(r.SrcPorts, srcPort) {
		return false
	}
	return true
}

func containsU8(xs []uint8, v uint8) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsU16(xs []uint16, v uint16) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// String renders a compact human-readable form.
func (r *FlowRule) String() string {
	var parts []string
	if r.HasDst {
		parts = append(parts, "dst "+r.Dst.String())
	}
	if len(r.Protos) > 0 {
		ps := make([]string, len(r.Protos))
		for i, p := range r.Protos {
			ps[i] = strconv.Itoa(int(p))
		}
		parts = append(parts, "proto "+strings.Join(ps, ","))
	}
	if len(r.SrcPorts) > 0 {
		parts = append(parts, "src-port "+joinPorts(r.SrcPorts))
	}
	if len(r.DstPorts) > 0 {
		parts = append(parts, "dst-port "+joinPorts(r.DstPorts))
	}
	if len(parts) == 0 {
		return "match any"
	}
	return strings.Join(parts, " ")
}

func joinPorts(ps []uint16) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = strconv.Itoa(int(p))
	}
	return strings.Join(ss, ",")
}

// numeric-operator byte layout (RFC 8955 §4.2.1.1):
// bit 0: end-of-list, bit 1: AND, bits 2-3: value length (1<<n bytes),
// bit 6: lt, bit 7 (LSB): eq. We emit equality operators OR-ed together.
const (
	opEndOfList = 0x80
	opLen1      = 0x00
	opLen2      = 0x10
	opEq        = 0x01
)

// EncodeFlowRule serializes the rule as FlowSpec NLRI (length-prefixed
// component list).
func EncodeFlowRule(r *FlowRule) ([]byte, error) {
	var body []byte
	if r.HasDst {
		if !r.Dst.IsValid() {
			return nil, fmt.Errorf("bgp: flowspec with invalid prefix %v", r.Dst)
		}
		body = append(body, FSDstPrefix)
		body = appendNLRI(body, r.Dst)
	}
	appendValues8 := func(typ byte, vals []uint8) {
		if len(vals) == 0 {
			return
		}
		body = append(body, typ)
		for i, v := range vals {
			op := byte(opLen1 | opEq)
			if i == len(vals)-1 {
				op |= opEndOfList
			}
			body = append(body, op, v)
		}
	}
	appendValues16 := func(typ byte, vals []uint16) {
		if len(vals) == 0 {
			return
		}
		body = append(body, typ)
		for i, v := range vals {
			op := byte(opLen2 | opEq)
			if i == len(vals)-1 {
				op |= opEndOfList
			}
			body = append(body, op, byte(v>>8), byte(v))
		}
	}
	appendValues8(FSIPProto, r.Protos)
	appendValues16(FSDstPort, r.DstPorts)
	appendValues16(FSSrcPort, r.SrcPorts)

	if len(body) == 0 {
		return nil, fmt.Errorf("bgp: empty flowspec rule")
	}
	if len(body) >= 0xf0 {
		return nil, fmt.Errorf("bgp: flowspec rule too long (%d bytes)", len(body))
	}
	return append([]byte{byte(len(body))}, body...), nil
}

// DecodeFlowRule parses one FlowSpec NLRI entry, returning the rule and
// bytes consumed.
func DecodeFlowRule(b []byte) (*FlowRule, int, error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("bgp: empty flowspec NLRI")
	}
	length := int(b[0])
	if length >= 0xf0 {
		return nil, 0, fmt.Errorf("bgp: extended flowspec length not supported")
	}
	if len(b) < 1+length {
		return nil, 0, fmt.Errorf("bgp: truncated flowspec NLRI (want %d bytes)", length)
	}
	body := b[1 : 1+length]
	rule := &FlowRule{}
	lastType := byte(0)
	for len(body) > 0 {
		typ := body[0]
		if typ <= lastType {
			return nil, 0, fmt.Errorf("bgp: flowspec components out of order (type %d after %d)", typ, lastType)
		}
		lastType = typ
		body = body[1:]
		switch typ {
		case FSDstPrefix, FSSrcPrefix:
			p, n, err := decodeNLRI(body)
			if err != nil {
				return nil, 0, fmt.Errorf("bgp: flowspec prefix: %w", err)
			}
			if typ == FSDstPrefix {
				rule.Dst, rule.HasDst = p, true
			}
			// Source prefixes are parsed but not retained: this
			// deployment matches reflected attacks by port, not source.
			body = body[n:]
		case FSIPProto, FSPort, FSDstPort, FSSrcPort:
			for {
				if len(body) < 1 {
					return nil, 0, fmt.Errorf("bgp: truncated flowspec operator")
				}
				op := body[0]
				vlen := 1 << ((op >> 4) & 0x3)
				if len(body) < 1+vlen {
					return nil, 0, fmt.Errorf("bgp: truncated flowspec value")
				}
				if op&opEq == 0 {
					return nil, 0, fmt.Errorf("bgp: only equality flowspec operators supported")
				}
				var v uint64
				for i := 0; i < vlen; i++ {
					v = v<<8 | uint64(body[1+i])
				}
				switch typ {
				case FSIPProto:
					rule.Protos = append(rule.Protos, uint8(v))
				case FSDstPort, FSPort:
					rule.DstPorts = append(rule.DstPorts, uint16(v))
				case FSSrcPort:
					rule.SrcPorts = append(rule.SrcPorts, uint16(v))
				}
				body = body[1+vlen:]
				if op&opEndOfList != 0 {
					break
				}
			}
		default:
			return nil, 0, fmt.Errorf("bgp: unsupported flowspec component type %d", typ)
		}
	}
	return rule, 1 + length, nil
}

// FlowSpecUpdate is a decoded FlowSpec BGP UPDATE: announced and
// withdrawn rules plus the action communities.
type FlowSpecUpdate struct {
	Announced []*FlowRule
	Withdrawn []*FlowRule
	ExtComms  []ExtCommunity
}

// Discards reports whether the update carries the traffic-rate-0 action.
func (u *FlowSpecUpdate) Discards() bool {
	for _, e := range u.ExtComms {
		if rate, ok := e.IsTrafficRate(); ok && rate == 0 {
			return true
		}
	}
	return false
}

// EncodeFlowSpecUpdate serializes the update as a BGP UPDATE with
// MP_REACH_NLRI / MP_UNREACH_NLRI attributes.
func EncodeFlowSpecUpdate(u *FlowSpecUpdate) ([]byte, error) {
	b := appendHeader(make([]byte, 0, 128), MsgUpdate)
	b = append(b, 0, 0) // no IPv4-unicast withdrawals

	aStart := len(b)
	b = append(b, 0, 0) // attribute length placeholder

	if len(u.Withdrawn) > 0 {
		var nlri []byte
		for _, r := range u.Withdrawn {
			enc, err := EncodeFlowRule(r)
			if err != nil {
				return nil, err
			}
			nlri = append(nlri, enc...)
		}
		val := make([]byte, 0, 3+len(nlri))
		val = binary.BigEndian.AppendUint16(val, AFIIPv4)
		val = append(val, SAFIFlowSpec)
		val = append(val, nlri...)
		b = appendAttr(b, flagOptional, AttrMPUnreach, val)
	}
	if len(u.Announced) > 0 {
		var nlri []byte
		for _, r := range u.Announced {
			enc, err := EncodeFlowRule(r)
			if err != nil {
				return nil, err
			}
			nlri = append(nlri, enc...)
		}
		// MP_REACH: AFI, SAFI, next-hop length 0 (RFC 8955 §5), reserved.
		val := make([]byte, 0, 5+len(nlri))
		val = binary.BigEndian.AppendUint16(val, AFIIPv4)
		val = append(val, SAFIFlowSpec, 0, 0)
		val = append(val, nlri...)
		b = appendAttr(b, flagOptional, AttrMPReach, val)
		// ORIGIN and AS_PATH are mandatory once any NLRI is reachable.
		b = appendAttr(b, flagTransitive, AttrOrigin, []byte{OriginIGP})
		b = appendAttr(b, flagTransitive, AttrASPath, nil)
	}
	if len(u.ExtComms) > 0 {
		var val []byte
		for _, e := range u.ExtComms {
			val = append(val, e[:]...)
		}
		b = appendAttr(b, flagOptional|flagTransitive, AttrExtComms, val)
	}
	binary.BigEndian.PutUint16(b[aStart:], uint16(len(b)-aStart-2))
	return patchLength(b)
}

// DecodeFlowSpecUpdate parses a BGP message as a FlowSpec update. ok is
// false when the message is an UPDATE without FlowSpec attributes.
func DecodeFlowSpecUpdate(msg []byte) (*FlowSpecUpdate, bool, error) {
	typ, decoded, _, err := DecodeMessage(msg)
	if err != nil {
		return nil, false, err
	}
	if typ != MsgUpdate {
		return nil, false, nil
	}
	return FlowSpecFromUpdate(decoded.(*Update))
}

// UpdateFromFlowSpec wraps a FlowSpec update as a plain *Update whose
// opaque attributes carry the MP_REACH/MP_UNREACH payload. The result
// travels through every UPDATE path — EncodeUpdate, the live BGP
// sessions, the MRT archive — and FlowSpecFromUpdate recovers it on the
// far side, so FlowSpec needs no parallel transport.
func UpdateFromFlowSpec(u *FlowSpecUpdate) (*Update, error) {
	out := &Update{}
	if len(u.Withdrawn) > 0 {
		var nlri []byte
		for _, r := range u.Withdrawn {
			enc, err := EncodeFlowRule(r)
			if err != nil {
				return nil, err
			}
			nlri = append(nlri, enc...)
		}
		val := make([]byte, 0, 3+len(nlri))
		val = binary.BigEndian.AppendUint16(val, AFIIPv4)
		val = append(val, SAFIFlowSpec)
		val = append(val, nlri...)
		out.Attrs.Unknown = append(out.Attrs.Unknown, RawAttr{Flags: flagOptional, Type: AttrMPUnreach, Value: val})
	}
	if len(u.Announced) > 0 {
		var nlri []byte
		for _, r := range u.Announced {
			enc, err := EncodeFlowRule(r)
			if err != nil {
				return nil, err
			}
			nlri = append(nlri, enc...)
		}
		val := make([]byte, 0, 5+len(nlri))
		val = binary.BigEndian.AppendUint16(val, AFIIPv4)
		val = append(val, SAFIFlowSpec, 0, 0) // zero-length next hop (RFC 8955 §5)
		val = append(val, nlri...)
		out.Attrs.Unknown = append(out.Attrs.Unknown, RawAttr{Flags: flagOptional, Type: AttrMPReach, Value: val})
	}
	if len(out.Attrs.Unknown) == 0 {
		return nil, fmt.Errorf("bgp: flowspec update with no rules")
	}
	if len(u.ExtComms) > 0 {
		var val []byte
		for _, e := range u.ExtComms {
			val = append(val, e[:]...)
		}
		out.Attrs.Unknown = append(out.Attrs.Unknown, RawAttr{Flags: flagOptional | flagTransitive, Type: AttrExtComms, Value: val})
	}
	return out, nil
}

// FlowSpecFromUpdate extracts the FlowSpec content of a decoded UPDATE:
// the MP_REACH/MP_UNREACH attributes with AFI 1 / SAFI 133 plus the
// extended-community actions. ok is false when the update carries no
// FlowSpec attributes (a regular IPv4-unicast update).
func FlowSpecFromUpdate(upd *Update) (*FlowSpecUpdate, bool, error) {
	out := &FlowSpecUpdate{}
	found := false
	for _, raw := range upd.Attrs.Unknown {
		switch raw.Type {
		case AttrMPReach:
			if len(raw.Value) < 5 || binary.BigEndian.Uint16(raw.Value) != AFIIPv4 || raw.Value[2] != SAFIFlowSpec {
				continue
			}
			nhLen := int(raw.Value[3])
			if len(raw.Value) < 5+nhLen {
				return nil, false, fmt.Errorf("bgp: truncated MP_REACH next hop")
			}
			body := raw.Value[5+nhLen:]
			for len(body) > 0 {
				r, n, err := DecodeFlowRule(body)
				if err != nil {
					return nil, false, err
				}
				out.Announced = append(out.Announced, r)
				body = body[n:]
			}
			found = true
		case AttrMPUnreach:
			if len(raw.Value) < 3 || binary.BigEndian.Uint16(raw.Value) != AFIIPv4 || raw.Value[2] != SAFIFlowSpec {
				continue
			}
			body := raw.Value[3:]
			for len(body) > 0 {
				r, n, err := DecodeFlowRule(body)
				if err != nil {
					return nil, false, err
				}
				out.Withdrawn = append(out.Withdrawn, r)
				body = body[n:]
			}
			found = true
		case AttrExtComms:
			if len(raw.Value)%8 != 0 {
				return nil, false, fmt.Errorf("bgp: extended communities length %d", len(raw.Value))
			}
			for i := 0; i+8 <= len(raw.Value); i += 8 {
				var e ExtCommunity
				copy(e[:], raw.Value[i:i+8])
				out.ExtComms = append(out.ExtComms, e)
			}
		}
	}
	if !found {
		return nil, false, nil
	}
	return out, true, nil
}
