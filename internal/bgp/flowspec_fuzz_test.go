package bgp

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedFlowRules covers the encoder's component shapes: dst-prefix
// only, protocols, ports on each side, and everything at once.
func fuzzSeedFlowRules() []*FlowRule {
	return []*FlowRule{
		{Dst: MustParsePrefix("203.0.113.5/32"), HasDst: true},
		{Dst: MustParsePrefix("198.51.100.0/24"), HasDst: true, Protos: []uint8{17}},
		{Protos: []uint8{6, 17}, DstPorts: []uint16{123, 11211}},
		{SrcPorts: []uint16{53}},
		{
			Dst: MustParsePrefix("192.0.2.0/25"), HasDst: true,
			Protos: []uint8{17}, DstPorts: []uint16{389, 1900}, SrcPorts: []uint16{123},
		},
	}
}

// normalizeFlowRule collapses wire-indistinguishable struct states (nil
// vs empty slices, the prefix value of an absent destination) so that
// DeepEqual compares only what the NLRI encoding can represent.
func normalizeFlowRule(r *FlowRule) FlowRule {
	out := *r
	if !out.HasDst {
		out.Dst = Prefix{}
	}
	if len(out.Protos) == 0 {
		out.Protos = nil
	}
	if len(out.DstPorts) == 0 {
		out.DstPorts = nil
	}
	if len(out.SrcPorts) == 0 {
		out.SrcPorts = nil
	}
	return out
}

// encodedFlowRuleLen predicts EncodeFlowRule's body length for a decoded
// rule: the fuzz oracle for when re-encoding may legitimately fail. The
// decoder keeps shapes the encoder cannot emit back — a source-prefix-only
// rule decodes to an empty rule, and wide-operator or FSPort components
// re-encode longer than they arrived — so failure is allowed exactly when
// the body is empty or overflows the RFC 8955 short-length form.
func encodedFlowRuleLen(r *FlowRule) int {
	n := 0
	if r.HasDst {
		n += 2 + (int(r.Dst.Len)+7)/8 // type + prefix len + prefix bytes
	}
	if len(r.Protos) > 0 {
		n += 1 + 2*len(r.Protos) // type + (op, value) pairs
	}
	if len(r.DstPorts) > 0 {
		n += 1 + 3*len(r.DstPorts)
	}
	if len(r.SrcPorts) > 0 {
		n += 1 + 3*len(r.SrcPorts)
	}
	return n
}

// FuzzFlowSpecRoundTrip feeds arbitrary bytes to the FlowSpec NLRI
// parser (and, for panic coverage, the whole-message parser) and demands
// that any accepted rule converges: decode -> encode -> decode is
// semantically stable, the canonical encoding is a fixed point, and the
// rule survives a full MP_REACH/MP_UNREACH UPDATE round trip.
func FuzzFlowSpecRoundTrip(f *testing.F) {
	for _, r := range fuzzSeedFlowRules() {
		enc, err := EncodeFlowRule(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	// Full encoded UPDATEs seed the message-level parser.
	rules := fuzzSeedFlowRules()
	for _, u := range []*FlowSpecUpdate{
		{Announced: rules[:2], ExtComms: []ExtCommunity{TrafficRateDiscard}},
		{Withdrawn: rules[2:4]},
	} {
		msg, err := EncodeFlowSpecUpdate(u)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(msg)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{4, 2, 1, 2, 3})    // out-of-order components
	f.Add([]byte{3, 3, 0x91, 0xFF}) // truncated wide operator value

	f.Fuzz(func(t *testing.T, b []byte) {
		// The message-level parser must never panic, whatever the bytes.
		_, _, _ = DecodeFlowSpecUpdate(b)

		r, n, err := DecodeFlowRule(b)
		if err != nil {
			return
		}
		if n < 1 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		enc, err := EncodeFlowRule(r)
		if err != nil {
			if l := encodedFlowRuleLen(r); l != 0 && l < 0xf0 {
				t.Fatalf("re-encode of %d-byte representable rule failed: %v", l, err)
			}
			return
		}
		r2, n2, err := DecodeFlowRule(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if nr, nr2 := normalizeFlowRule(r), normalizeFlowRule(r2); !reflect.DeepEqual(nr, nr2) {
			t.Fatalf("round trip changed the rule:\nfirst:  %+v\nsecond: %+v", nr, nr2)
		}
		enc2, err := EncodeFlowRule(r2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\nfirst:  %x\nsecond: %x", enc, enc2)
		}

		// The accepted rule must also survive a full UPDATE round trip on
		// both the announce and withdraw paths.
		u := &FlowSpecUpdate{
			Announced: []*FlowRule{r2},
			Withdrawn: []*FlowRule{r2},
			ExtComms:  []ExtCommunity{TrafficRateDiscard},
		}
		msg, err := EncodeFlowSpecUpdate(u)
		if err != nil {
			t.Fatalf("update encode failed: %v", err)
		}
		u2, ok, err := DecodeFlowSpecUpdate(msg)
		if err != nil || !ok {
			t.Fatalf("update re-decode: ok=%v err=%v", ok, err)
		}
		if len(u2.Announced) != 1 || len(u2.Withdrawn) != 1 || len(u2.ExtComms) != 1 {
			t.Fatalf("update round trip changed shape: %d announced, %d withdrawn, %d ext comms",
				len(u2.Announced), len(u2.Withdrawn), len(u2.ExtComms))
		}
		if got := normalizeFlowRule(u2.Announced[0]); !reflect.DeepEqual(got, normalizeFlowRule(r2)) {
			t.Fatalf("announce path changed the rule: %+v", got)
		}
		if got := normalizeFlowRule(u2.Withdrawn[0]); !reflect.DeepEqual(got, normalizeFlowRule(r2)) {
			t.Fatalf("withdraw path changed the rule: %+v", got)
		}
		if u2.ExtComms[0] != TrafficRateDiscard || !u2.Discards() {
			t.Fatalf("discard action lost: %v", u2.ExtComms)
		}
		msg2, err := EncodeFlowSpecUpdate(u2)
		if err != nil {
			t.Fatalf("second update encode failed: %v", err)
		}
		if !bytes.Equal(msg, msg2) {
			t.Fatalf("update encoding is not a fixed point:\nfirst:  %x\nsecond: %x", msg, msg2)
		}
	})
}
