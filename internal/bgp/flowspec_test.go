package bgp

import (
	"testing"
	"testing/quick"
)

func sampleRule() *FlowRule {
	return &FlowRule{
		Dst:      MustParsePrefix("203.0.113.5/32"),
		HasDst:   true,
		Protos:   []uint8{17},
		SrcPorts: []uint16{123, 389, 11211},
	}
}

func TestFlowRuleRoundTrip(t *testing.T) {
	enc, err := EncodeFlowRule(sampleRule())
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeFlowRule(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	want := sampleRule()
	if !got.HasDst || got.Dst != want.Dst {
		t.Fatalf("dst = %+v", got)
	}
	if len(got.Protos) != 1 || got.Protos[0] != 17 {
		t.Fatalf("protos = %v", got.Protos)
	}
	if len(got.SrcPorts) != 3 || got.SrcPorts[2] != 11211 {
		t.Fatalf("src ports = %v", got.SrcPorts)
	}
}

func TestFlowRuleRoundTripProperty(t *testing.T) {
	f := func(addr uint32, lenRaw uint8, proto uint8, ports []uint16) bool {
		if len(ports) > 12 {
			ports = ports[:12]
		}
		r := &FlowRule{
			Dst: MakePrefix(addr, lenRaw%33), HasDst: true,
			Protos: []uint8{proto}, DstPorts: ports,
		}
		enc, err := EncodeFlowRule(r)
		if err != nil {
			return false
		}
		got, n, err := DecodeFlowRule(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if got.Dst != r.Dst || len(got.DstPorts) != len(ports) {
			return false
		}
		for i := range ports {
			if got.DstPorts[i] != ports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowRuleMatches(t *testing.T) {
	r := sampleRule()
	dst := r.Dst.Addr
	if !r.Matches(dst, 17, 123, 40000) {
		t.Fatal("NTP reflection packet not matched")
	}
	if r.Matches(dst, 17, 53, 40000) {
		t.Fatal("non-listed source port matched")
	}
	if r.Matches(dst, 6, 123, 40000) {
		t.Fatal("TCP matched a UDP-only rule")
	}
	if r.Matches(dst+1, 17, 123, 40000) {
		t.Fatal("other destination matched")
	}
	// Wildcard rule matches everything.
	any := &FlowRule{}
	if !any.Matches(1, 6, 2, 3) {
		t.Fatal("wildcard rule did not match")
	}
}

func TestFlowRuleValidation(t *testing.T) {
	if _, err := EncodeFlowRule(&FlowRule{}); err == nil {
		t.Fatal("empty rule encoded")
	}
	big := &FlowRule{DstPorts: make([]uint16, 100)}
	for i := range big.DstPorts {
		big.DstPorts[i] = uint16(i + 1)
	}
	if _, err := EncodeFlowRule(big); err == nil {
		t.Fatal("oversized rule encoded")
	}
}

func TestDecodeFlowRuleRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{5, 1, 32},          // truncated prefix
		{3, 3, 0x00, 17},    // operator without end-of-list, then EOF
		{3, 5, 0x91, 1},     // 2-byte value declared, 1 byte present
		{2, 9, 0x81},        // unknown component type
		{4, 3, 0x81, 17, 3}, // component types out of order (3 then 3)
		{3, 3, 0x80, 17},    // non-equality operator
	}
	for i, b := range cases {
		if _, _, err := DecodeFlowRule(b); err == nil {
			t.Errorf("case %d accepted: %v", i, b)
		}
	}
}

func TestFlowSpecUpdateRoundTrip(t *testing.T) {
	u := &FlowSpecUpdate{
		Announced: []*FlowRule{sampleRule()},
		Withdrawn: []*FlowRule{{Dst: MustParsePrefix("198.51.100.7/32"), HasDst: true}},
		ExtComms:  []ExtCommunity{TrafficRateDiscard},
	}
	enc, err := EncodeFlowSpecUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := DecodeFlowSpecUpdate(enc)
	if err != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, err)
	}
	if len(got.Announced) != 1 || len(got.Withdrawn) != 1 {
		t.Fatalf("rules = %d/%d", len(got.Announced), len(got.Withdrawn))
	}
	if got.Announced[0].Dst != sampleRule().Dst {
		t.Fatalf("announced = %+v", got.Announced[0])
	}
	if !got.Discards() {
		t.Fatal("discard action lost")
	}
}

// TestFlowSpecAsUpdateRoundTrip pins the piggyback path the route-server
// control plane uses: wrap rules as a plain *Update, push it through the
// canonical UPDATE codec (the live sessions and the MRT archive), and
// recover the rules on the far side.
func TestFlowSpecAsUpdateRoundTrip(t *testing.T) {
	u := &FlowSpecUpdate{
		Announced: []*FlowRule{sampleRule()},
		Withdrawn: []*FlowRule{{Dst: MustParsePrefix("198.51.100.7/32"), HasDst: true}},
		ExtComms:  []ExtCommunity{TrafficRateDiscard},
	}
	wrapped, err := UpdateFromFlowSpec(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrapped.NLRI) != 0 || len(wrapped.Withdrawn) != 0 {
		t.Fatalf("flowspec update leaked IPv4 NLRI: %+v", wrapped)
	}
	enc, err := EncodeUpdate(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	_, msg, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := FlowSpecFromUpdate(msg.(*Update))
	if err != nil || !ok {
		t.Fatalf("recover: ok=%v err=%v", ok, err)
	}
	if len(got.Announced) != 1 || len(got.Withdrawn) != 1 || !got.Discards() {
		t.Fatalf("recovered = %+v", got)
	}
	if got.Announced[0].Dst != sampleRule().Dst || len(got.Announced[0].SrcPorts) != 3 {
		t.Fatalf("announced rule = %+v", got.Announced[0])
	}
	// Re-encoding the decoded update must be a fixed point: the archive
	// bytes are identical no matter how many codec hops the update took.
	enc2, err := EncodeUpdate(msg.(*Update))
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("re-encode of a flowspec-carrying update is not a fixed point")
	}
	if _, err := UpdateFromFlowSpec(&FlowSpecUpdate{ExtComms: []ExtCommunity{TrafficRateDiscard}}); err == nil {
		t.Fatal("rule-less flowspec update wrapped")
	}
}

func TestDecodeFlowSpecUpdateIgnoresPlainUpdates(t *testing.T) {
	enc, err := EncodeUpdate(&Update{
		Attrs: PathAttrs{ASPath: []uint32{1}, NextHop: 1, Communities: Communities{Blackhole}},
		NLRI:  []Prefix{MustParsePrefix("203.0.113.5/32")},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := DecodeFlowSpecUpdate(enc)
	if err != nil || ok {
		t.Fatalf("plain update classified as flowspec: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := DecodeFlowSpecUpdate(EncodeKeepalive()); ok {
		t.Fatal("keepalive classified as flowspec")
	}
}

func TestTrafficRateCommunity(t *testing.T) {
	rate, ok := TrafficRateDiscard.IsTrafficRate()
	if !ok || rate != 0 {
		t.Fatalf("discard = %v, %v", rate, ok)
	}
	var other ExtCommunity
	if _, ok := other.IsTrafficRate(); ok {
		t.Fatal("zero community is a traffic rate")
	}
}

func TestFlowRuleString(t *testing.T) {
	s := sampleRule().String()
	for _, want := range []string{"dst 203.0.113.5/32", "proto 17", "src-port 123,389,11211"} {
		if !containsStr(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if (&FlowRule{}).String() != "match any" {
		t.Fatal("wildcard string wrong")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
