package bgp

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedUpdates are hand-picked UPDATEs whose encoded bodies seed the
// round-trip fuzzer (besides the checked-in corpus under testdata/fuzz):
// announce, withdraw-only, every optional attribute, an unknown attribute,
// and a >255-hop AS_PATH that needs segment splitting.
func fuzzSeedUpdates() []*Update {
	longPath := make([]uint32, 300)
	for i := range longPath {
		longPath[i] = uint32(65000 + i)
	}
	return []*Update{
		{
			NLRI:  []Prefix{MustParsePrefix("203.0.113.5/32")},
			Attrs: PathAttrs{ASPath: []uint32{64500, 64501}, NextHop: 0x0A000001, Communities: Communities{Blackhole}},
		},
		{Withdrawn: []Prefix{MustParsePrefix("198.51.100.0/24")}},
		{
			NLRI: []Prefix{MustParsePrefix("192.0.2.0/25"), MustParsePrefix("10.0.0.0/8")},
			Attrs: PathAttrs{
				Origin: OriginIncomplete, ASPath: []uint32{64500}, NextHop: 1,
				MED: 7, HasMED: true, LocalPref: 200, HasLocalPref: true,
				Communities: Communities{0x029A0000, Blackhole},
				Unknown:     []RawAttr{{Flags: flagOptional | flagTransitive, Type: 32, Value: bytes.Repeat([]byte{0xAB}, 300)}},
			},
		},
		{
			NLRI:  []Prefix{MustParsePrefix("0.0.0.0/0")},
			Attrs: PathAttrs{ASPath: longPath, NextHop: 2},
		},
		// A FlowSpec discard carried as opaque MP attributes in an UPDATE
		// without IPv4 NLRI (the route-server control-plane shape).
		func() *Update {
			u, err := UpdateFromFlowSpec(&FlowSpecUpdate{
				Announced: []*FlowRule{{
					Dst: MustParsePrefix("203.0.113.5/32"), HasDst: true,
					Protos: []uint8{17}, SrcPorts: []uint16{123, 11211},
				}},
				ExtComms: []ExtCommunity{TrafficRateDiscard},
			})
			if err != nil {
				panic(err)
			}
			return u
		}(),
	}
}

// normalizeUpdate maps an Update onto its canonical form: the parts of the
// struct that the wire format cannot represent distinctly (attributes of a
// withdraw-only message, nil vs empty slices) collapse so that DeepEqual
// compares only wire-meaningful state.
func normalizeUpdate(u *Update) Update {
	out := *u
	if len(out.NLRI) == 0 && len(out.Attrs.Unknown) == 0 {
		// An UPDATE without announcements carries no path attributes —
		// unless opaque attributes (multiprotocol payloads) are present,
		// which the encoder preserves even without IPv4 NLRI.
		out.Attrs = PathAttrs{}
	}
	if len(out.Attrs.ASPath) == 0 {
		out.Attrs.ASPath = nil
	}
	if len(out.Attrs.Communities) == 0 {
		out.Attrs.Communities = nil
	}
	if len(out.Attrs.Unknown) == 0 {
		out.Attrs.Unknown = nil
	}
	return out
}

// FuzzUpdateRoundTrip feeds arbitrary bytes to the UPDATE body parser and
// demands that anything it accepts survives encode -> decode unchanged,
// and that the canonical encoding is a fixed point. Encoding may reject a
// decoded update only for exceeding the 4096-byte message cap (fuzz bodies
// are not length-capped; real ones are).
func FuzzUpdateRoundTrip(f *testing.F) {
	for _, u := range fuzzSeedUpdates() {
		enc, err := EncodeUpdate(u)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc[19:]) // seed with the body, header stripped
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		u, err := DecodeUpdate(body)
		if err != nil {
			return
		}
		enc, err := EncodeUpdate(u)
		if err != nil {
			if len(body) <= maxMsgLen-headerLen {
				t.Fatalf("re-encode of %d-byte accepted body failed: %v", len(body), err)
			}
			return
		}
		typ, msg, n, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if typ != MsgUpdate || n != len(enc) {
			t.Fatalf("re-decode: type %d, consumed %d of %d", typ, n, len(enc))
		}
		u2 := msg.(*Update)
		if nu, nu2 := normalizeUpdate(u), normalizeUpdate(u2); !reflect.DeepEqual(nu, nu2) {
			t.Fatalf("round trip changed the update:\nfirst:  %+v\nsecond: %+v", nu, nu2)
		}
		enc2, err := EncodeUpdate(u2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\nfirst:  %x\nsecond: %x", enc, enc2)
		}
	})
}
