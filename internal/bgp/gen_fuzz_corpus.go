//go:build ignore

// Regenerates the FuzzUpdateRoundTrip seed corpus:
//
//	go run gen_fuzz_corpus.go
//
// The corpus covers the interesting encoder/decoder shapes: plain
// announcements, withdraw-only messages, every optional attribute, unknown
// attributes with and without extended length, multi-segment AS paths, and
// a few deliberately malformed bodies.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bgp"
)

func main() {
	longPath := make([]uint32, 300)
	for i := range longPath {
		longPath[i] = uint32(65000 + i)
	}
	updates := []*bgp.Update{
		{
			NLRI:  []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
			Attrs: bgp.PathAttrs{ASPath: []uint32{64500, 64501}, NextHop: 0x0A000001, Communities: bgp.Communities{bgp.Blackhole}},
		},
		{Withdrawn: []bgp.Prefix{bgp.MustParsePrefix("198.51.100.0/24"), bgp.MustParsePrefix("192.0.2.77/32")}},
		{
			NLRI: []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/25"), bgp.MustParsePrefix("10.0.0.0/8")},
			Attrs: bgp.PathAttrs{
				Origin: bgp.OriginIncomplete, ASPath: []uint32{64500}, NextHop: 1,
				MED: 7, HasMED: true, LocalPref: 200, HasLocalPref: true,
				Communities: bgp.Communities{0x029A0000, bgp.Blackhole},
				Unknown: []bgp.RawAttr{
					{Flags: 0xC0, Type: 32, Value: []byte{1, 2, 3, 4}},
					{Flags: 0xC0, Type: 33, Value: make([]byte, 300)},
				},
			},
		},
		{
			NLRI:  []bgp.Prefix{bgp.MustParsePrefix("0.0.0.0/0")},
			Attrs: bgp.PathAttrs{ASPath: longPath, NextHop: 2},
		},
	}

	var bodies [][]byte
	for _, u := range updates {
		enc, err := bgp.EncodeUpdate(u)
		if err != nil {
			panic(err)
		}
		bodies = append(bodies, enc[19:])
	}
	bodies = append(bodies,
		[]byte{},                       // too short
		[]byte{0, 0, 0, 0},             // empty withdrawn + empty attrs
		[]byte{0, 4, 32, 1, 2},         // truncated withdrawn NLRI
		[]byte{0, 0, 0, 3, 0x40, 2, 0}, // empty AS_PATH, no NLRI
	)

	dir := filepath.Join("testdata", "fuzz", "FuzzUpdateRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for i, b := range bodies {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", len(bodies), dir)
}
