//go:build ignore

// Regenerates the FuzzUpdateRoundTrip and FuzzFlowSpecRoundTrip seed
// corpora:
//
//	go run gen_fuzz_corpus.go
//
// The UPDATE corpus covers the interesting encoder/decoder shapes: plain
// announcements, withdraw-only messages, every optional attribute, unknown
// attributes with and without extended length, multi-segment AS paths, and
// a few deliberately malformed bodies. The FlowSpec corpus covers each
// component type, full MP_REACH/MP_UNREACH messages, wide-operator and
// FSPort forms the encoder never emits, and malformed component lists.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bgp"
)

func main() {
	longPath := make([]uint32, 300)
	for i := range longPath {
		longPath[i] = uint32(65000 + i)
	}
	updates := []*bgp.Update{
		{
			NLRI:  []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
			Attrs: bgp.PathAttrs{ASPath: []uint32{64500, 64501}, NextHop: 0x0A000001, Communities: bgp.Communities{bgp.Blackhole}},
		},
		{Withdrawn: []bgp.Prefix{bgp.MustParsePrefix("198.51.100.0/24"), bgp.MustParsePrefix("192.0.2.77/32")}},
		{
			NLRI: []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/25"), bgp.MustParsePrefix("10.0.0.0/8")},
			Attrs: bgp.PathAttrs{
				Origin: bgp.OriginIncomplete, ASPath: []uint32{64500}, NextHop: 1,
				MED: 7, HasMED: true, LocalPref: 200, HasLocalPref: true,
				Communities: bgp.Communities{0x029A0000, bgp.Blackhole},
				Unknown: []bgp.RawAttr{
					{Flags: 0xC0, Type: 32, Value: []byte{1, 2, 3, 4}},
					{Flags: 0xC0, Type: 33, Value: make([]byte, 300)},
				},
			},
		},
		{
			NLRI:  []bgp.Prefix{bgp.MustParsePrefix("0.0.0.0/0")},
			Attrs: bgp.PathAttrs{ASPath: longPath, NextHop: 2},
		},
	}

	var bodies [][]byte
	for _, u := range updates {
		enc, err := bgp.EncodeUpdate(u)
		if err != nil {
			panic(err)
		}
		bodies = append(bodies, enc[19:])
	}
	bodies = append(bodies,
		[]byte{},                       // too short
		[]byte{0, 0, 0, 0},             // empty withdrawn + empty attrs
		[]byte{0, 4, 32, 1, 2},         // truncated withdrawn NLRI
		[]byte{0, 0, 0, 3, 0x40, 2, 0}, // empty AS_PATH, no NLRI
	)

	writeCorpus("FuzzUpdateRoundTrip", bodies)
	writeCorpus("FuzzFlowSpecRoundTrip", flowSpecSeeds())
}

// flowSpecSeeds builds the FuzzFlowSpecRoundTrip corpus: encoded NLRI
// entries, full FlowSpec UPDATEs, decoder-only operator forms, and
// malformed component lists.
func flowSpecSeeds() [][]byte {
	rules := []*bgp.FlowRule{
		{Dst: bgp.MustParsePrefix("203.0.113.5/32"), HasDst: true},
		{Dst: bgp.MustParsePrefix("198.51.100.0/24"), HasDst: true, Protos: []uint8{17}},
		{Protos: []uint8{6, 17}, DstPorts: []uint16{123, 11211}},
		{SrcPorts: []uint16{53}},
		{
			Dst: bgp.MustParsePrefix("192.0.2.0/25"), HasDst: true,
			Protos: []uint8{17}, DstPorts: []uint16{389, 1900}, SrcPorts: []uint16{123},
		},
	}
	var seeds [][]byte
	for _, r := range rules {
		enc, err := bgp.EncodeFlowRule(r)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, enc)
	}
	for _, u := range []*bgp.FlowSpecUpdate{
		{Announced: rules[:2], ExtComms: []bgp.ExtCommunity{bgp.TrafficRateDiscard}},
		{Withdrawn: rules[2:4]},
	} {
		msg, err := bgp.EncodeFlowSpecUpdate(u)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, msg)
	}
	return append(seeds,
		// Shapes the decoder accepts but the encoder never emits.
		[]byte{5, 2, 24, 198, 51, 100},          // src prefix only -> empty rule
		[]byte{4, 4, 0x91, 0x01, 0x00},          // FSPort, wide operator
		[]byte{6, 3, 0xA1, 0x00, 0x00, 0x00, 6}, // 4-byte proto value, truncates
		// Malformed component lists.
		[]byte{},
		[]byte{0},
		[]byte{4, 2, 1, 2, 3},    // out-of-order components
		[]byte{3, 3, 0x91, 0xFF}, // truncated wide operator value
		[]byte{2, 7, 0x81},       // unsupported component type
	)
}

// writeCorpus writes one seed file per input under testdata/fuzz/<target>.
func writeCorpus(target string, seeds [][]byte) {
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for i, b := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", len(seeds), dir)
}
