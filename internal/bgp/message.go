package bgp

import (
	"encoding/binary"
	"fmt"
)

// Message type codes (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Wire-format size constraints (RFC 4271).
const (
	headerLen  = 19   // 16-byte marker + 2-byte length + 1-byte type
	maxMsgLen  = 4096 // maximum BGP message size without extended-message cap.
	minMsgLen  = headerLen
	openMinLen = headerLen + 10
)

// Update is a decoded BGP UPDATE message: withdrawn prefixes, path
// attributes, and announced prefixes (NLRI). Either list may be empty;
// an UPDATE with only withdrawals carries no attributes.
type Update struct {
	Withdrawn []Prefix
	Attrs     PathAttrs
	NLRI      []Prefix
}

// IsWithdrawOnly reports whether the message withdraws routes without
// announcing any.
func (u *Update) IsWithdrawOnly() bool {
	return len(u.NLRI) == 0 && len(u.Withdrawn) > 0
}

// Open is a minimal decoded OPEN message, sufficient for the route-server
// session handshake in the simulator.
type Open struct {
	Version  uint8
	ASN      uint16 // AS_TRANS (23456) when the real ASN needs 4 bytes
	HoldTime uint16
	RouterID uint32
}

// Notification is a decoded NOTIFICATION message.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// marker is the all-ones 16-byte header marker required by RFC 4271 for
// sessions without authentication.
var marker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

func appendHeader(dst []byte, msgType byte) []byte {
	dst = append(dst, marker[:]...)
	dst = append(dst, 0, 0) // length placeholder
	return append(dst, msgType)
}

func patchLength(b []byte) ([]byte, error) {
	if len(b) > maxMsgLen {
		return nil, fmt.Errorf("bgp: message length %d exceeds %d", len(b), maxMsgLen)
	}
	binary.BigEndian.PutUint16(b[16:18], uint16(len(b)))
	return b, nil
}

// EncodeUpdate serializes u into RFC 4271 wire format.
func EncodeUpdate(u *Update) ([]byte, error) {
	b := appendHeader(make([]byte, 0, 128), MsgUpdate)

	// Withdrawn routes.
	wStart := len(b)
	b = append(b, 0, 0) // withdrawn length placeholder
	for _, p := range u.Withdrawn {
		if !p.IsValid() {
			return nil, fmt.Errorf("bgp: invalid withdrawn prefix %v", p)
		}
		b = appendNLRI(b, p)
	}
	binary.BigEndian.PutUint16(b[wStart:], uint16(len(b)-wStart-2))

	// Path attributes. An UPDATE that only withdraws IPv4-unicast routes
	// must not carry any — unless opaque attributes are present, which is
	// how multiprotocol payloads (FlowSpec MP_REACH/MP_UNREACH) travel in
	// an UPDATE without IPv4 NLRI.
	aStart := len(b)
	b = append(b, 0, 0) // attribute length placeholder
	if len(u.NLRI) > 0 || len(u.Attrs.Unknown) > 0 {
		b = u.Attrs.encode(b)
	}
	binary.BigEndian.PutUint16(b[aStart:], uint16(len(b)-aStart-2))

	for _, p := range u.NLRI {
		if !p.IsValid() {
			return nil, fmt.Errorf("bgp: invalid NLRI prefix %v", p)
		}
		b = appendNLRI(b, p)
	}
	return patchLength(b)
}

// DecodeUpdate parses the body of an UPDATE (the bytes after the common
// header). Use DecodeMessage for full messages.
func DecodeUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("bgp: UPDATE body too short (%d bytes)", len(body))
	}
	u := &Update{}

	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	if 2+wLen > len(body) {
		return nil, fmt.Errorf("bgp: withdrawn length %d exceeds body", wLen)
	}
	wb := body[2 : 2+wLen]
	for len(wb) > 0 {
		p, n, err := decodeNLRI(wb)
		if err != nil {
			return nil, fmt.Errorf("bgp: withdrawn routes: %w", err)
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wb = wb[n:]
	}

	rest := body[2+wLen:]
	if len(rest) < 2 {
		return nil, fmt.Errorf("bgp: UPDATE missing attribute length")
	}
	aLen := int(binary.BigEndian.Uint16(rest[0:2]))
	if 2+aLen > len(rest) {
		return nil, fmt.Errorf("bgp: attribute length %d exceeds body", aLen)
	}
	if aLen > 0 {
		attrs, err := decodePathAttrs(rest[2 : 2+aLen])
		if err != nil {
			return nil, err
		}
		u.Attrs = attrs
	}

	nb := rest[2+aLen:]
	for len(nb) > 0 {
		p, n, err := decodeNLRI(nb)
		if err != nil {
			return nil, fmt.Errorf("bgp: NLRI: %w", err)
		}
		u.NLRI = append(u.NLRI, p)
		nb = nb[n:]
	}
	if len(u.NLRI) > 0 && len(u.Attrs.ASPath) == 0 && u.Attrs.NextHop == 0 {
		return nil, fmt.Errorf("bgp: UPDATE announces routes without mandatory attributes")
	}
	return u, nil
}

// EncodeOpen serializes an OPEN message.
func EncodeOpen(o *Open) ([]byte, error) {
	b := appendHeader(make([]byte, 0, 32), MsgOpen)
	b = append(b, o.Version)
	b = binary.BigEndian.AppendUint16(b, o.ASN)
	b = binary.BigEndian.AppendUint16(b, o.HoldTime)
	b = binary.BigEndian.AppendUint32(b, o.RouterID)
	b = append(b, 0) // no optional parameters
	return patchLength(b)
}

// EncodeKeepalive serializes a KEEPALIVE message.
func EncodeKeepalive() []byte {
	b := appendHeader(make([]byte, 0, headerLen), MsgKeepalive)
	b, _ = patchLength(b)
	return b
}

// EncodeNotification serializes a NOTIFICATION message.
func EncodeNotification(n *Notification) ([]byte, error) {
	b := appendHeader(make([]byte, 0, 32), MsgNotification)
	b = append(b, n.Code, n.Subcode)
	b = append(b, n.Data...)
	return patchLength(b)
}

// DecodeMessage parses one complete BGP message from b and returns the
// message type, the decoded message (*Update, *Open, *Notification, or nil
// for KEEPALIVE), and the total bytes consumed.
func DecodeMessage(b []byte) (msgType byte, msg any, n int, err error) {
	if len(b) < headerLen {
		return 0, nil, 0, fmt.Errorf("bgp: short header (%d bytes)", len(b))
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xff {
			return 0, nil, 0, fmt.Errorf("bgp: bad marker at byte %d", i)
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	msgType = b[18]
	if length < minMsgLen || length > maxMsgLen {
		return 0, nil, 0, fmt.Errorf("bgp: invalid message length %d", length)
	}
	if len(b) < length {
		return 0, nil, 0, fmt.Errorf("bgp: truncated message (have %d, want %d)", len(b), length)
	}
	body := b[headerLen:length]
	switch msgType {
	case MsgUpdate:
		u, err := DecodeUpdate(body)
		if err != nil {
			return msgType, nil, 0, err
		}
		return msgType, u, length, nil
	case MsgOpen:
		if len(body) < 10 {
			return msgType, nil, 0, fmt.Errorf("bgp: OPEN body too short")
		}
		o := &Open{
			Version:  body[0],
			ASN:      binary.BigEndian.Uint16(body[1:3]),
			HoldTime: binary.BigEndian.Uint16(body[3:5]),
			RouterID: binary.BigEndian.Uint32(body[5:9]),
		}
		return msgType, o, length, nil
	case MsgKeepalive:
		if length != headerLen {
			return msgType, nil, 0, fmt.Errorf("bgp: KEEPALIVE with body")
		}
		return msgType, nil, length, nil
	case MsgNotification:
		if len(body) < 2 {
			return msgType, nil, 0, fmt.Errorf("bgp: NOTIFICATION body too short")
		}
		nt := &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}
		return msgType, nt, length, nil
	default:
		return msgType, nil, 0, fmt.Errorf("bgp: unknown message type %d", msgType)
	}
}
