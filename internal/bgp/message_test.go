package bgp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleUpdate() *Update {
	return &Update{
		Withdrawn: []Prefix{MustParsePrefix("198.51.100.0/24")},
		Attrs: PathAttrs{
			Origin:      OriginIGP,
			ASPath:      []uint32{64500, 65550, 4200000001},
			NextHop:     0xc0000201,
			Communities: Communities{Blackhole, MakeCommunity(64500, 64501), NoExport},
		},
		NLRI: []Prefix{MustParsePrefix("203.0.113.5/32"), MustParsePrefix("203.0.112.0/22")},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := sampleUpdate()
	enc, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	typ, msg, n, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgUpdate || n != len(enc) {
		t.Fatalf("type=%d n=%d len=%d", typ, n, len(enc))
	}
	got := msg.(*Update)
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Fatalf("withdrawn mismatch: %v", got.Withdrawn)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Fatalf("NLRI mismatch: %v", got.NLRI)
	}
	if got.Attrs.Origin != OriginIGP {
		t.Fatalf("origin = %d", got.Attrs.Origin)
	}
	if len(got.Attrs.ASPath) != 3 || got.Attrs.ASPath[2] != 4200000001 {
		t.Fatalf("as path = %v", got.Attrs.ASPath)
	}
	if got.Attrs.NextHop != u.Attrs.NextHop {
		t.Fatalf("next hop = %#x", got.Attrs.NextHop)
	}
	if !got.Attrs.Communities.HasBlackhole() {
		t.Fatal("BLACKHOLE community lost")
	}
	if got.Attrs.OriginAS() != 4200000001 {
		t.Fatalf("origin AS = %d", got.Attrs.OriginAS())
	}
}

func TestWithdrawOnlyUpdate(t *testing.T) {
	u := &Update{Withdrawn: []Prefix{MustParsePrefix("203.0.113.5/32")}}
	if !u.IsWithdrawOnly() {
		t.Fatal("IsWithdrawOnly = false")
	}
	enc, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	_, msg, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Update)
	if !got.IsWithdrawOnly() || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Fatalf("round trip lost withdraw: %+v", got)
	}
}

func TestUpdateWithMEDAndLocalPref(t *testing.T) {
	u := sampleUpdate()
	u.Attrs.HasMED = true
	u.Attrs.MED = 77
	u.Attrs.HasLocalPref = true
	u.Attrs.LocalPref = 200
	enc, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	_, msg, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Update)
	if !got.Attrs.HasMED || got.Attrs.MED != 77 {
		t.Fatalf("MED lost: %+v", got.Attrs)
	}
	if !got.Attrs.HasLocalPref || got.Attrs.LocalPref != 200 {
		t.Fatalf("LOCAL_PREF lost: %+v", got.Attrs)
	}
}

func TestUnknownAttrPreserved(t *testing.T) {
	u := sampleUpdate()
	u.Attrs.Unknown = []RawAttr{{Flags: flagOptional | flagTransitive, Type: 42, Value: []byte{1, 2, 3}}}
	enc, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	_, msg, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Update)
	if len(got.Attrs.Unknown) != 1 || got.Attrs.Unknown[0].Type != 42 ||
		!bytes.Equal(got.Attrs.Unknown[0].Value, []byte{1, 2, 3}) {
		t.Fatalf("unknown attribute not preserved: %+v", got.Attrs.Unknown)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: 4, ASN: 23456, HoldTime: 90, RouterID: 0x0a000001}
	enc, err := EncodeOpen(o)
	if err != nil {
		t.Fatal(err)
	}
	typ, msg, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgOpen {
		t.Fatalf("type = %d", typ)
	}
	got := msg.(*Open)
	if *got != *o {
		t.Fatalf("got %+v want %+v", got, o)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	enc := EncodeKeepalive()
	typ, msg, n, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgKeepalive || msg != nil || n != headerLen {
		t.Fatalf("typ=%d msg=%v n=%d", typ, msg, n)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	nt := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	enc, err := EncodeNotification(nt)
	if err != nil {
		t.Fatal(err)
	}
	_, msg, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Notification)
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeRejectsBadMarker(t *testing.T) {
	enc := EncodeKeepalive()
	enc[3] = 0
	if _, _, _, err := DecodeMessage(enc); err == nil {
		t.Fatal("bad marker accepted")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	enc, _ := EncodeUpdate(sampleUpdate())
	for cut := 1; cut < len(enc); cut += 7 {
		if _, _, _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsBadLengths(t *testing.T) {
	enc := EncodeKeepalive()
	enc[16], enc[17] = 0, 5 // length 5 < minimum
	if _, _, _, err := DecodeMessage(enc); err == nil {
		t.Fatal("undersized length accepted")
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	enc := EncodeKeepalive()
	enc[18] = 99
	if _, _, _, err := DecodeMessage(enc); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

func TestDecodeUpdateRejectsMissingMandatoryAttrs(t *testing.T) {
	// An UPDATE with NLRI but a zero attribute block is invalid.
	body := []byte{0, 0, 0, 0, 32, 203, 0, 113, 5}
	if _, err := DecodeUpdate(body); err == nil {
		t.Fatal("UPDATE without mandatory attributes accepted")
	}
}

func TestDecodeUpdateRejectsOverflowingAttrLength(t *testing.T) {
	body := []byte{0, 0, 0, 200}
	if _, err := DecodeUpdate(body); err == nil {
		t.Fatal("attribute length overflow accepted")
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(addr uint32, lenRaw uint8, asns []uint32, comms []uint32, nextHop uint32) bool {
		if len(asns) == 0 {
			asns = []uint32{64500}
		}
		if len(asns) > 50 {
			asns = asns[:50]
		}
		cs := make(Communities, 0, len(comms))
		for _, c := range comms {
			cs = append(cs, Community(c))
		}
		u := &Update{
			Attrs: PathAttrs{
				Origin:      OriginIncomplete,
				ASPath:      asns,
				NextHop:     nextHop,
				Communities: cs,
			},
			NLRI: []Prefix{MakePrefix(addr, lenRaw%33)},
		}
		if nextHop == 0 && len(asns) == 0 {
			return true // indistinguishable from missing mandatory attrs
		}
		enc, err := EncodeUpdate(u)
		if err != nil {
			return false
		}
		_, msg, n, err := DecodeMessage(enc)
		if err != nil || n != len(enc) {
			return false
		}
		got := msg.(*Update)
		if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
			return false
		}
		if len(got.Attrs.ASPath) != len(asns) {
			return false
		}
		for i := range asns {
			if got.Attrs.ASPath[i] != asns[i] {
				return false
			}
		}
		if len(got.Attrs.Communities) != len(cs) {
			return false
		}
		for i := range cs {
			if got.Attrs.Communities[i] != cs[i] {
				return false
			}
		}
		return got.Attrs.NextHop == nextHop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathAttrsClone(t *testing.T) {
	u := sampleUpdate()
	c := u.Attrs.Clone()
	c.ASPath[0] = 1
	c.Communities[0] = 0
	if u.Attrs.ASPath[0] == 1 || u.Attrs.Communities[0] == 0 {
		t.Fatal("Clone shares backing arrays")
	}
}
