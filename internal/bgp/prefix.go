// Package bgp implements the subset of the Border Gateway Protocol needed
// to operate and observe an IXP blackholing (RTBH) service: IPv4 prefixes
// and NLRI encoding, standard communities including the well-known
// BLACKHOLE community (RFC 7999), path attributes, and the RFC 4271 wire
// format for OPEN, UPDATE, KEEPALIVE and NOTIFICATION messages.
//
// The paper under reproduction studies IPv4 exclusively (>98% of RTBH
// events at the vantage point), so this package is IPv4-only by design.
// AS numbers are 4-byte throughout, as negotiated on modern route-server
// sessions; AS_PATH is encoded with 4-byte ASNs (RFC 6793 "NEW" speaker).
package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 prefix in compact, comparable form. It is valid as a
// map key, which the route server and the analysis pipeline rely on.
//
// Addr holds the network address in host byte order with all bits below
// the prefix length cleared; Canonical constructors guarantee this
// invariant so that equal prefixes compare equal.
type Prefix struct {
	Addr uint32 // network address, masked
	Len  uint8  // prefix length, 0..32
}

// MakePrefix masks addr to length and returns the canonical prefix.
// It panics if length exceeds 32; lengths are operator input and a value
// above 32 indicates a programming error, not a runtime condition.
func MakePrefix(addr uint32, length uint8) Prefix {
	if length > 32 {
		panic("bgp: prefix length > 32")
	}
	return Prefix{Addr: addr & mask(length), Len: length}
}

// HostPrefix returns the /32 prefix for a single IPv4 address.
func HostPrefix(addr uint32) Prefix { return Prefix{Addr: addr, Len: 32} }

func mask(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// Mask returns the netmask of the prefix as a uint32.
func (p Prefix) Mask() uint32 { return mask(p.Len) }

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&p.Mask() == p.Addr
}

// ContainsPrefix reports whether q is equal to or more specific than p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// NumAddresses returns the number of addresses covered by the prefix.
func (p Prefix) NumAddresses() uint64 { return 1 << (32 - p.Len) }

// IsValid reports whether the prefix is canonical (masked, length <= 32).
func (p Prefix) IsValid() bool {
	return p.Len <= 32 && p.Addr&^mask(p.Len) == 0
}

// String formats the prefix in CIDR notation, e.g. "203.0.113.0/24".
func (p Prefix) String() string {
	return FormatAddr(p.Addr) + "/" + strconv.Itoa(int(p.Len))
}

// FormatAddr renders a host-order IPv4 address in dotted-quad notation.
func FormatAddr(a uint32) string {
	var b strings.Builder
	b.Grow(15)
	for i := 3; i >= 0; i-- {
		b.WriteString(strconv.Itoa(int(a >> (8 * i) & 0xff)))
		if i > 0 {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// ParseAddr parses a dotted-quad IPv4 address into host byte order.
func ParseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bgp: invalid IPv4 address %q", s)
	}
	var a uint32
	for _, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("bgp: invalid IPv4 address %q", s)
		}
		a = a<<8 | uint32(v)
	}
	return a, nil
}

// ParsePrefix parses CIDR notation, e.g. "10.0.0.0/8". A bare address is
// treated as a /32, matching operator conventions for blackhole targets.
func ParsePrefix(s string) (Prefix, error) {
	addrPart := s
	length := 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		addrPart = s[:i]
		v, err := strconv.Atoi(s[i+1:])
		if err != nil || v < 0 || v > 32 {
			return Prefix{}, fmt.Errorf("bgp: invalid prefix length in %q", s)
		}
		length = v
	}
	addr, err := ParseAddr(addrPart)
	if err != nil {
		return Prefix{}, err
	}
	return MakePrefix(addr, uint8(length)), nil
}

// MustParsePrefix is ParsePrefix for compile-time-constant inputs in tests
// and examples; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// appendNLRI appends the RFC 4271 NLRI encoding of p (length octet
// followed by ceil(len/8) address octets) to dst.
func appendNLRI(dst []byte, p Prefix) []byte {
	dst = append(dst, p.Len)
	octets := (int(p.Len) + 7) / 8
	for i := 0; i < octets; i++ {
		dst = append(dst, byte(p.Addr>>(24-8*i)))
	}
	return dst
}

// decodeNLRI decodes one NLRI entry from b, returning the prefix and the
// number of bytes consumed.
func decodeNLRI(b []byte) (Prefix, int, error) {
	if len(b) < 1 {
		return Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI")
	}
	length := b[0]
	if length > 32 {
		return Prefix{}, 0, fmt.Errorf("bgp: NLRI prefix length %d > 32", length)
	}
	octets := (int(length) + 7) / 8
	if len(b) < 1+octets {
		return Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI body (want %d octets)", octets)
	}
	var addr uint32
	for i := 0; i < octets; i++ {
		addr |= uint32(b[1+i]) << (24 - 8*i)
	}
	p := Prefix{Addr: addr & mask(length), Len: length}
	if addr != p.Addr {
		return Prefix{}, 0, fmt.Errorf("bgp: NLRI %s has bits set beyond prefix length", p)
	}
	return p, 1 + octets, nil
}
