package bgp

import (
	"testing"
	"testing/quick"
)

func TestParseFormatAddr(t *testing.T) {
	cases := []struct {
		s    string
		want uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"192.0.2.1", 0xc0000201},
		{"10.0.0.1", 0x0a000001},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", c.s, err)
		}
		if got != c.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.s, got, c.want)
		}
		if back := FormatAddr(got); back != c.s {
			t.Errorf("FormatAddr(%#x) = %q, want %q", got, back, c.s)
		}
	}
}

func TestParseAddrRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", s)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("203.0.113.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len != 24 || p.Addr != 0xcb007100 {
		t.Fatalf("got %v", p)
	}
	// Bare address becomes a /32.
	p, err = ParsePrefix("198.51.100.7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len != 32 || p.String() != "198.51.100.7/32" {
		t.Fatalf("got %v", p)
	}
	// Non-canonical input is masked.
	p = MustParsePrefix("10.1.2.3/8")
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("masking failed: %v", p)
	}
}

func TestParsePrefixRejects(t *testing.T) {
	for _, s := range []string{"1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x", "1.2.3/24"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	in, _ := ParseAddr("192.0.2.200")
	out, _ := ParseAddr("192.0.3.1")
	if !p.Contains(in) {
		t.Error("Contains(in-range) = false")
	}
	if p.Contains(out) {
		t.Error("Contains(out-of-range) = true")
	}
	all := MakePrefix(0, 0)
	if !all.Contains(out) {
		t.Error("/0 should contain everything")
	}
	host := HostPrefix(in)
	if !host.Contains(in) || host.Contains(in+1) {
		t.Error("/32 containment wrong")
	}
}

func TestContainsPrefix(t *testing.T) {
	p24 := MustParsePrefix("192.0.2.0/24")
	p25 := MustParsePrefix("192.0.2.128/25")
	p32 := MustParsePrefix("192.0.2.5/32")
	other := MustParsePrefix("198.51.100.0/24")
	if !p24.ContainsPrefix(p25) || !p24.ContainsPrefix(p32) || !p24.ContainsPrefix(p24) {
		t.Error("ContainsPrefix misses covered prefixes")
	}
	if p25.ContainsPrefix(p24) {
		t.Error("more specific cannot contain less specific")
	}
	if p24.ContainsPrefix(other) {
		t.Error("disjoint prefixes reported as nested")
	}
}

func TestNumAddresses(t *testing.T) {
	if n := MustParsePrefix("10.0.0.0/8").NumAddresses(); n != 1<<24 {
		t.Fatalf("/8 has %d addresses", n)
	}
	if n := HostPrefix(1).NumAddresses(); n != 1 {
		t.Fatalf("/32 has %d addresses", n)
	}
	if n := MakePrefix(0, 0).NumAddresses(); n != 1<<32 {
		t.Fatalf("/0 has %d addresses", n)
	}
}

func TestNLRIRoundTripProperty(t *testing.T) {
	f := func(addr uint32, lenRaw uint8) bool {
		p := MakePrefix(addr, lenRaw%33)
		enc := appendNLRI(nil, p)
		got, n, err := decodeNLRI(enc)
		return err == nil && n == len(enc) && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNLRIRejectsTrailingBits(t *testing.T) {
	// /24 with a nonzero 4th... actually /24 encodes 3 octets; craft a /20
	// whose third octet has bits set below the mask.
	b := []byte{20, 192, 0, 0x0f}
	if _, _, err := decodeNLRI(b); err == nil {
		t.Fatal("NLRI with stray host bits accepted")
	}
}

func TestDecodeNLRIErrors(t *testing.T) {
	if _, _, err := decodeNLRI(nil); err == nil {
		t.Error("empty NLRI accepted")
	}
	if _, _, err := decodeNLRI([]byte{33, 0, 0, 0, 0, 0}); err == nil {
		t.Error("prefix length 33 accepted")
	}
	if _, _, err := decodeNLRI([]byte{24, 192, 0}); err == nil {
		t.Error("truncated NLRI accepted")
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(addr uint32, lenRaw uint8) bool {
		p := MakePrefix(addr, lenRaw%33)
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakePrefixPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakePrefix(0, 33)
}
