package bgp

import (
	"testing"

	"repro/internal/stats"
)

// TestDecodeMessageNeverPanics feeds the decoder random bytes and random
// corruptions of valid messages: every input must produce a value or an
// error, never a panic or an out-of-bounds access.
func TestDecodeMessageNeverPanics(t *testing.T) {
	r := stats.NewRNG(0xfeed)
	valid, err := EncodeUpdate(sampleUpdateForBench())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20000; trial++ {
		var buf []byte
		switch trial % 3 {
		case 0: // pure noise
			buf = make([]byte, r.Intn(128))
			for i := range buf {
				buf[i] = byte(r.Uint64())
			}
		case 1: // corrupted valid message
			buf = append([]byte(nil), valid...)
			for k := 0; k < 1+r.Intn(4); k++ {
				buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
			}
		default: // truncated valid message
			buf = append([]byte(nil), valid[:r.Intn(len(valid)+1)]...)
		}
		// Must not panic.
		_, _, _, _ = DecodeMessage(buf)
		_, _, _ = DecodeFlowSpecUpdate(buf)
	}
}

// TestDecodeFlowRuleNeverPanics stresses the FlowSpec NLRI parser.
func TestDecodeFlowRuleNeverPanics(t *testing.T) {
	r := stats.NewRNG(0xf00d)
	for trial := 0; trial < 20000; trial++ {
		buf := make([]byte, r.Intn(64))
		for i := range buf {
			buf[i] = byte(r.Uint64())
		}
		_, _, _ = DecodeFlowRule(buf)
	}
}

// TestDecodeValidAfterInvalid ensures parser state does not leak between
// calls (the decoder is stateless by design; this guards regressions).
func TestDecodeValidAfterInvalid(t *testing.T) {
	valid, _ := EncodeUpdate(sampleUpdateForBench())
	if _, _, _, err := DecodeMessage([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, _, err := DecodeMessage(valid); err != nil {
		t.Fatalf("valid message rejected after garbage: %v", err)
	}
}
