// Package cliutil validates command-line inputs shared by the rtbh
// binaries, turning the usual late, cryptic failures (a negative worker
// count deep in the pipeline, an open() error after minutes of
// simulation) into immediate, actionable messages.
package cliutil

import (
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// CheckWorkers validates a -workers flag: 0 means GOMAXPROCS, positive
// counts are taken literally, negatives are rejected.
func CheckWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", n)
	}
	return nil
}

// CheckDays validates a -days override: 0 keeps the scale default.
func CheckDays(n int) error {
	if n < 0 {
		return fmt.Errorf("-days must be >= 0 (0 keeps the scale default), got %d", n)
	}
	return nil
}

// CheckIXPs validates an -ixps flag: the federation needs at least one
// exchange.
func CheckIXPs(n int) error {
	if n < 1 {
		return fmt.Errorf("-ixps must be >= 1, got %d", n)
	}
	return nil
}

// CheckSnapshotEvery validates an explicitly set -snapshot-every flag:
// the cadence must be a positive duration (omit the flag to disable
// periodic snapshots).
func CheckSnapshotEvery(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-snapshot-every must be a positive duration (omit the flag to disable snapshots), got %v", d)
	}
	return nil
}

// CheckServeAddr validates a -serve listen address: it must be a
// host:port pair net.Listen would accept (an empty host binds every
// interface; the port may be 0 for an ephemeral one).
func CheckServeAddr(addr string) error {
	if addr == "" {
		return fmt.Errorf("-serve requires a listen address (e.g. :8080 or localhost:8080)")
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("-serve address %q is not host:port: %v", addr, err)
	}
	return nil
}

// CheckServeMaxAge validates a -serve-max-age flag: the default snapshot
// TTL must not be negative (0 disables caching — every request takes a
// fresh snapshot).
func CheckServeMaxAge(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-serve-max-age must be >= 0 (0 snapshots on every request), got %v", d)
	}
	return nil
}

// CheckServeHistory validates the rolling-history flags: the capture
// cadence must be positive and the ring must hold at least one entry.
func CheckServeHistory(every time.Duration, depth int) error {
	if every <= 0 {
		return fmt.Errorf("-serve-history must be a positive duration, got %v", every)
	}
	if depth < 1 {
		return fmt.Errorf("-serve-history-depth must be >= 1, got %d", depth)
	}
	return nil
}

// ParseScale interprets a -scale value. The named world sizes (test,
// bench, full) pass through with a traffic scale of 0 (= the documented
// scaled-down magnitudes); a positive number selects the full paper
// world at that traffic-magnitude multiplier, so "-scale 50" is the
// 104-day period at the paper's absolute traffic volumes. The binaries
// couple a numeric scale with an equally coarser 1:N sampling
// denominator — the paper configuration: rate estimates (samples x
// denominator) land at absolute paper magnitudes while the sampled
// record stream, and so the run time, stays at the scale-1 size.
func ParseScale(spec string) (world string, trafficScale float64, err error) {
	switch spec {
	case "test", "bench", "full":
		return spec, 0, nil
	}
	s, perr := strconv.ParseFloat(spec, 64)
	if perr != nil || s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return "", 0, fmt.Errorf("-scale must be test, bench, full, or a positive traffic multiplier (e.g. 50), got %q", spec)
	}
	return "full", s, nil
}

// CheckTrafficScale validates a -traffic-scale override: 0 keeps the
// scale default, positive multipliers are taken literally.
func CheckTrafficScale(s float64) error {
	if s < 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return fmt.Errorf("-traffic-scale must be >= 0 (0 keeps the scale default), got %v", s)
	}
	return nil
}

// CheckDetect validates the -detect-* flags: the attack threshold must
// be a non-negative finite packet rate (0 derives it from the world's
// traffic scale), the detection window a positive duration, and the
// withdraw cooldown non-negative (0 withdraws on the first quiet tick).
func CheckDetect(threshold float64, window, cooldown time.Duration) error {
	if threshold < 0 || math.IsInf(threshold, 0) || math.IsNaN(threshold) {
		return fmt.Errorf("-detect-threshold must be a non-negative packet rate in pps (0 derives it from the traffic scale), got %v", threshold)
	}
	if window <= 0 {
		return fmt.Errorf("-detect-window must be a positive duration, got %v", window)
	}
	if cooldown < 0 {
		return fmt.Errorf("-detect-cooldown must be >= 0 (0 withdraws on the first quiet tick), got %v", cooldown)
	}
	return nil
}

// CheckDatasetDir validates that dir exists and looks like a dataset
// directory (it must contain the given marker file, typically
// metadata.json) before any expensive work starts.
func CheckDatasetDir(dir, marker string) error {
	st, err := os.Stat(dir)
	switch {
	case os.IsNotExist(err):
		return fmt.Errorf("dataset directory %q does not exist (generate one with rtbh-sim -out %s)", dir, dir)
	case err != nil:
		return fmt.Errorf("dataset directory %q: %v", dir, err)
	case !st.IsDir():
		return fmt.Errorf("%q is not a directory", dir)
	}
	if _, err := os.Stat(filepath.Join(dir, marker)); err != nil {
		return fmt.Errorf("%q does not look like a dataset directory: missing %s", dir, marker)
	}
	return nil
}

// CheckRunIDs validates a comma-separated -run list against the known
// experiment ids. "all" selects everything. Unknown ids are rejected
// with the full list of valid ones, before any work starts.
func CheckRunIDs(spec string, known []string) ([]string, error) {
	if spec == "all" {
		return nil, nil
	}
	knownSet := make(map[string]bool, len(known))
	for _, id := range known {
		knownSet[id] = true
	}
	var ids []string
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !knownSet[id] {
			sorted := append([]string(nil), known...)
			sort.Strings(sorted)
			return nil, fmt.Errorf("unknown experiment %q; valid ids: all, %s", id, strings.Join(sorted, ", "))
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-run selects no experiments (try -run all or -list)")
	}
	return ids, nil
}
