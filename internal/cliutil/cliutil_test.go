package cliutil

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCheckWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 64} {
		if err := CheckWorkers(n); err != nil {
			t.Errorf("CheckWorkers(%d) = %v, want nil", n, err)
		}
	}
	if err := CheckWorkers(-1); err == nil {
		t.Error("CheckWorkers(-1) accepted")
	}
}

func TestCheckDays(t *testing.T) {
	if err := CheckDays(0); err != nil {
		t.Errorf("CheckDays(0) = %v", err)
	}
	if err := CheckDays(-7); err == nil {
		t.Error("CheckDays(-7) accepted")
	}
}

func TestCheckIXPs(t *testing.T) {
	for _, n := range []int{1, 2, 16} {
		if err := CheckIXPs(n); err != nil {
			t.Errorf("CheckIXPs(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -3} {
		if err := CheckIXPs(n); err == nil {
			t.Errorf("CheckIXPs(%d) accepted", n)
		}
	}
}

func TestCheckSnapshotEvery(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, time.Second, time.Hour} {
		if err := CheckSnapshotEvery(d); err != nil {
			t.Errorf("CheckSnapshotEvery(%v) = %v, want nil", d, err)
		}
	}
	for _, d := range []time.Duration{0, -time.Second} {
		if err := CheckSnapshotEvery(d); err == nil {
			t.Errorf("CheckSnapshotEvery(%v) accepted", d)
		}
	}
}

func TestCheckServeAddr(t *testing.T) {
	for _, addr := range []string{":8080", "localhost:8080", "127.0.0.1:0", "[::1]:9000"} {
		if err := CheckServeAddr(addr); err != nil {
			t.Errorf("CheckServeAddr(%q) = %v, want nil", addr, err)
		}
	}
	for _, addr := range []string{"", "8080", "localhost", "host:port:extra"} {
		if err := CheckServeAddr(addr); err == nil {
			t.Errorf("CheckServeAddr(%q) accepted", addr)
		}
	}
}

func TestCheckServeMaxAge(t *testing.T) {
	for _, d := range []time.Duration{0, time.Second, 5 * time.Second} {
		if err := CheckServeMaxAge(d); err != nil {
			t.Errorf("CheckServeMaxAge(%v) = %v, want nil", d, err)
		}
	}
	if err := CheckServeMaxAge(-time.Second); err == nil {
		t.Error("CheckServeMaxAge(-1s) accepted")
	}
}

func TestCheckServeHistory(t *testing.T) {
	if err := CheckServeHistory(5*time.Minute, 288); err != nil {
		t.Errorf("CheckServeHistory(5m, 288) = %v, want nil", err)
	}
	for _, c := range []struct {
		every time.Duration
		depth int
	}{{0, 1}, {-time.Minute, 1}, {time.Minute, 0}, {time.Minute, -2}} {
		if err := CheckServeHistory(c.every, c.depth); err == nil {
			t.Errorf("CheckServeHistory(%v, %d) accepted", c.every, c.depth)
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"test", "bench", "full"} {
		world, ts, err := ParseScale(name)
		if err != nil || world != name || ts != 0 {
			t.Errorf("ParseScale(%q) = (%q, %g, %v), want (%q, 0, nil)", name, world, ts, err, name)
		}
	}
	world, ts, err := ParseScale("50")
	if err != nil || world != "full" || ts != 50 {
		t.Errorf(`ParseScale("50") = (%q, %g, %v), want ("full", 50, nil)`, world, ts, err)
	}
	if _, ts, err := ParseScale("2.5"); err != nil || ts != 2.5 {
		t.Errorf(`ParseScale("2.5") = (%g, %v), want 2.5`, ts, err)
	}
	for _, bad := range []string{"", "huge", "0", "-3", "Inf", "NaN"} {
		if _, _, err := ParseScale(bad); err == nil {
			t.Errorf("ParseScale(%q) accepted", bad)
		}
	}
}

func TestCheckTrafficScale(t *testing.T) {
	for _, ok := range []float64{0, 1, 50, 0.1} {
		if err := CheckTrafficScale(ok); err != nil {
			t.Errorf("CheckTrafficScale(%g) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []float64{-1, math.Inf(1), math.NaN()} {
		if err := CheckTrafficScale(bad); err == nil {
			t.Errorf("CheckTrafficScale(%g) accepted", bad)
		}
	}
}

func TestCheckDetect(t *testing.T) {
	if err := CheckDetect(125, 5*time.Minute, 10*time.Minute); err != nil {
		t.Errorf("CheckDetect(defaults) = %v, want nil", err)
	}
	if err := CheckDetect(0.5, time.Second, 0); err != nil {
		t.Errorf("CheckDetect(0.5, 1s, 0) = %v, want nil", err)
	}
	// 0 is the derive-from-traffic-scale sentinel, not an error.
	if err := CheckDetect(0, time.Minute, time.Minute); err != nil {
		t.Errorf("CheckDetect(0, 1m, 1m) = %v, want nil (0 derives the threshold)", err)
	}
	inf := math.Inf(1)
	for _, c := range []struct {
		threshold float64
		window    time.Duration
		cooldown  time.Duration
		wantFlag  string
	}{
		{-10, time.Minute, time.Minute, "-detect-threshold"},
		{inf, time.Minute, time.Minute, "-detect-threshold"},
		{math.NaN(), time.Minute, time.Minute, "-detect-threshold"},
		{125, 0, time.Minute, "-detect-window"},
		{125, -time.Minute, time.Minute, "-detect-window"},
		{125, time.Minute, -time.Second, "-detect-cooldown"},
	} {
		err := CheckDetect(c.threshold, c.window, c.cooldown)
		if err == nil {
			t.Errorf("CheckDetect(%v, %v, %v) accepted", c.threshold, c.window, c.cooldown)
			continue
		}
		if !strings.Contains(err.Error(), c.wantFlag) {
			t.Errorf("CheckDetect(%v, %v, %v) error %q does not name %s",
				c.threshold, c.window, c.cooldown, err, c.wantFlag)
		}
	}
}

func TestCheckDatasetDir(t *testing.T) {
	dir := t.TempDir()

	err := CheckDatasetDir(filepath.Join(dir, "nope"), "metadata.json")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("missing dir: err = %v", err)
	}

	err = CheckDatasetDir(dir, "metadata.json")
	if err == nil || !strings.Contains(err.Error(), "missing metadata.json") {
		t.Errorf("empty dir: err = %v", err)
	}

	file := filepath.Join(dir, "afile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckDatasetDir(file, "metadata.json"); err == nil {
		t.Error("plain file accepted as dataset directory")
	}

	if err := os.WriteFile(filepath.Join(dir, "metadata.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckDatasetDir(dir, "metadata.json"); err != nil {
		t.Errorf("valid dataset dir rejected: %v", err)
	}
}

func TestCheckRunIDs(t *testing.T) {
	known := []string{"fig2", "fig5", "table3"}

	if ids, err := CheckRunIDs("all", known); err != nil || ids != nil {
		t.Errorf("all: ids=%v err=%v", ids, err)
	}
	ids, err := CheckRunIDs(" fig5 ,fig2", known)
	if err != nil || len(ids) != 2 || ids[0] != "fig5" || ids[1] != "fig2" {
		t.Errorf("valid list: ids=%v err=%v", ids, err)
	}
	_, err = CheckRunIDs("fig2,fig99", known)
	if err == nil || !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "fig2, fig5, table3") {
		t.Errorf("unknown id: err = %v", err)
	}
	if _, err := CheckRunIDs(",,", known); err == nil {
		t.Error("empty selection accepted")
	}
}
