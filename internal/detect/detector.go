package detect

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/ipfix"
	"repro/internal/obs"
)

// PeerASN is the detector's route-server session: a first-class
// mitigation peer alongside the member ASes (which start at 1001), in
// the private 16-bit range and distinct from the route server's own
// 64500.
const PeerASN uint32 = 64999

// Defaults for Config zero values. The threshold is calibrated to
// TrafficScale 1: it sits between the scaled-down attack floor (~200 pps
// of original traffic) and the busiest host baseline (single-digit pps —
// see DESIGN.md). Both bounds are traffic magnitudes and grow linearly
// with the dataset's TrafficScale, so the derived threshold does too
// (ThresholdAt): at paper magnitude (scale ~50, attack floor ~10k pps)
// the bar rises to ~6250 pps, preserving the detector's operating point
// between baseline and attack at every scale.
const (
	DefaultThreshold = 125.0
	DefaultWindow    = 5 * time.Minute
	DefaultCooldown  = 10 * time.Minute

	// DefaultRetention comfortably exceeds the longest flow batch the
	// scenario driver injects (quiet-host baseline batches span a full
	// day), so an attack's samples are never evicted by a timestamp
	// from the far side of the same day.
	DefaultRetention = 26 * time.Hour
)

// ThresholdAt derives the detection threshold for a dataset's traffic
// scale: DefaultThreshold at scale 1, scaling linearly with the traffic
// magnitudes it separates (host baselines below, attack rates above).
func ThresholdAt(scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return DefaultThreshold * scale
}

// Config parameterizes a Detector.
type Config struct {
	// Threshold is the estimated inbound packet rate (packets/s of
	// original traffic, i.e. sampled count scaled by SamplingRate) over
	// one window at which a victim is declared under attack. Zero
	// selects DefaultThreshold scaled by TrafficScale (ThresholdAt).
	Threshold float64
	// TrafficScale is the dataset's traffic-magnitude multiplier (see
	// scenario.Config.TrafficScale); zero means 1. It only affects the
	// derived default threshold — an explicit Threshold wins.
	TrafficScale float64
	// Window is the sliding detection window. Zero selects
	// DefaultWindow.
	Window time.Duration
	// Cooldown is how long a victim must stay below half the threshold
	// before the blackhole is withdrawn, measured in driver time
	// against the hottest window seen. Zero selects DefaultCooldown.
	Cooldown time.Duration
	// SamplingRate is the flow sampling denominator (1:N). Required.
	SamplingRate int64
	// BlackholeMAC marks records the fabric dropped; the detector uses
	// it to time the first post-announcement drop. Required for
	// mitigation-latency measurement, zero disables it.
	BlackholeMAC ipfix.MAC
	// Slot is the sketch bucket width. Zero derives Window/5 (clamped
	// to at least a second); it must divide observations meaningfully
	// finer than Window.
	Slot time.Duration
	// Retention is the sketch horizon. Zero selects DefaultRetention.
	Retention time.Duration
}

// withDefaults returns cfg with zero values filled in, or an error for
// nonsensical values.
func (c Config) withDefaults() (Config, error) {
	if c.Threshold == 0 {
		c.Threshold = ThresholdAt(c.TrafficScale)
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Retention == 0 {
		c.Retention = DefaultRetention
	}
	if c.Slot == 0 {
		c.Slot = c.Window / 5
		if c.Slot < time.Second {
			c.Slot = time.Second
		}
	}
	switch {
	case c.Threshold <= 0 || math.IsInf(c.Threshold, 0) || math.IsNaN(c.Threshold):
		return c, fmt.Errorf("detect: Threshold must be a positive finite rate, got %v", c.Threshold)
	case c.Window <= 0:
		return c, fmt.Errorf("detect: Window must be positive, got %v", c.Window)
	case c.Cooldown < 0:
		return c, fmt.Errorf("detect: Cooldown must be >= 0, got %v", c.Cooldown)
	case c.SamplingRate <= 0:
		return c, fmt.Errorf("detect: SamplingRate must be positive, got %d", c.SamplingRate)
	case c.Slot <= 0 || c.Slot > c.Window:
		return c, fmt.Errorf("detect: Slot must be in (0, Window], got %v", c.Slot)
	case c.Retention < 2*c.Window:
		return c, fmt.Errorf("detect: Retention %v is shorter than two windows (%v)", c.Retention, c.Window)
	case int64((c.Retention+c.Slot-1)/c.Slot) > maxRetainSlots:
		return c, fmt.Errorf("detect: Retention/Slot ratio %v/%v exceeds %d slots", c.Retention, c.Slot, maxRetainSlots)
	}
	return c, nil
}

// Detection is one detected attack and its mitigation lifecycle. Times
// tell the latency story end to end: the victim's traffic crossed the
// threshold in the window ending DetectedAt (flow time); the RTBH
// announcement entered the route server at AnnouncedAt (driver time);
// the first fabric drop at or after the announcement carried FirstDropAt
// (flow time); the blackhole was withdrawn at WithdrawnAt.
type Detection struct {
	ID          int
	Victim      uint32
	DetectedAt  time.Time
	RatePPS     float64
	Vectors     []Vector
	AnnouncedAt time.Time
	FirstDropAt time.Time
	WithdrawnAt time.Time
}

// Active reports whether the detection's blackhole is still announced.
func (d *Detection) Active() bool { return d.WithdrawnAt.IsZero() }

// Action is one control-plane instruction the detector wants executed:
// announce (or withdraw) the RTBH route for the victim. The run loop
// drains actions with Tick and originates the corresponding BGP
// updates through the route server.
type Action struct {
	Announce    bool
	Victim      uint32
	Time        time.Time
	DetectionID int
}

// victimState is the per-victim hysteresis.
type victimState struct {
	active bool
	det    int // index into detections; valid once any detection fired
	// hotEnd is the end of the latest window at or above half the
	// threshold (flow time, monotone). Cooldown counts from here.
	hotEnd time.Time
	// clearedEnd consumes windows: after a withdrawal only windows
	// ending strictly later can re-trigger, so one attack's retained
	// samples cannot re-announce in a loop.
	clearedEnd time.Time
}

// detectorMetrics is the optional obs instrumentation ("detect.*").
type detectorMetrics struct {
	records       *obs.Counter
	detections    *obs.Counter
	announcements *obs.Counter
	withdrawals   *obs.Counter
	drops         *obs.Counter
}

// gateInline is the victimGate's inline capacity: buckets tracked in
// fixed arrays before the gate grows a ring. Most destinations are
// scan/one-off targets touching a bucket or two, so the inline form
// keeps the gate map's footprint tiny.
const gateInline = 4

// victimGate is one victim's scan-gate tallies: packets per
// window-width bucket of slots. It starts as a fixed inline array of
// (bucket, tally) pairs — linear-scanned, never evicted; stale entries
// only overcount, which the gate (a sound upper bound) tolerates. Past
// gateInline distinct buckets it upgrades to a ring over the retention
// span. Two live buckets can never collide in the ring (they would be a
// full retention apart), so a mismatched occupant is always dead and
// its tally is simply discarded — the ring needs no sweep at all. Kept
// per victim because records arrive batch-grouped by destination: the
// hot structure stays cache-resident across a batch's run of records.
type victimGate struct {
	sids   [gateInline]int64 // inline bucket ids; minSlot when unused
	stally [gateInline]int64
	used   int32
	ids    []int64 // ring; nil while inline
	tally  []int64
}

func newVictimGate() *victimGate {
	g := &victimGate{}
	for i := range g.sids {
		g.sids[i] = minSlot
	}
	return g
}

// toRing upgrades the gate to ring form of n cells, keeping the newest
// occupant of any colliding cell (the older is necessarily dead).
func (g *victimGate) toRing(n int64) {
	g.ids = make([]int64, n)
	g.tally = make([]int64, n)
	for i := range g.ids {
		g.ids[i] = minSlot
	}
	for k := int32(0); k < g.used; k++ {
		cs := g.sids[k]
		i := ringIdx(cs, n)
		if g.ids[i] == minSlot || g.ids[i] < cs {
			g.ids[i] = cs
			g.tally[i] = g.stally[k]
		}
	}
}

// add folds pkts into bucket cs and returns its tally. n is the ring
// size used on upgrade.
func (g *victimGate) add(cs, pkts, n int64) int64 {
	if g.ids == nil {
		for k := int32(0); k < g.used; k++ {
			if g.sids[k] == cs {
				g.stally[k] += pkts
				return g.stally[k]
			}
		}
		if g.used < gateInline {
			g.sids[g.used] = cs
			g.stally[g.used] = pkts
			g.used++
			return pkts
		}
		g.toRing(n)
	}
	i := ringIdx(cs, n)
	if g.ids[i] != cs {
		g.ids[i] = cs
		g.tally[i] = 0
	}
	g.tally[i] += pkts
	return g.tally[i]
}

// read returns bucket cs's tally, zero when untracked.
func (g *victimGate) read(cs, n int64) int64 {
	if g.ids == nil {
		for k := int32(0); k < g.used; k++ {
			if g.sids[k] == cs {
				return g.stally[k]
			}
		}
		return 0
	}
	i := ringIdx(cs, n)
	if g.ids[i] != cs {
		return 0
	}
	return g.tally[i]
}

// ringIdx maps a (possibly negative) bucket index onto the ring.
func ringIdx(cs, n int64) int64 {
	i := cs % n
	if i < 0 {
		i += n
	}
	return i
}

// Detector is the streaming closed-loop engine. ObserveFlow is safe to
// call from the collector goroutine concurrently with Tick and Status
// from the run loop; all state is guarded by one mutex, and the hot
// path does a map update plus (rarely) a bounded window scan.
type Detector struct {
	mu      sync.Mutex
	cfg     Config
	wslots  int64
	rate    *Rate
	vectors *Vectors
	state   map[uint32]*victimState
	dets    []Detection
	pending []Action
	m       detectorMetrics

	// detectPkts and hotPkts are the sampled-packet sums equivalent to
	// Threshold and Threshold/2 over one window.
	detectPkts float64
	hotPkts    int64

	// gate is the scan gate: per-victim packet tallies over wslots-wide
	// buckets. Every window an observation in slot s can change lies
	// inside the three buckets around s, so when their sum stays under
	// hotPkts no window crossed anything and the scan is skipped — the
	// quiet majority of records never pays more than a ring update.
	// Tallies may overcount evicted fine slots (the gate is an upper
	// bound), which keeps maintenance trivial.
	gate map[uint32]*victimGate
}

// New builds a detector. cfg zero values take the documented defaults;
// nonsense values are an error.
func New(cfg Config) (*Detector, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:     cfg,
		wslots:  int64((cfg.Window + cfg.Slot - 1) / cfg.Slot),
		rate:    NewRate(cfg.Slot, cfg.Retention),
		vectors: NewVectors(cfg.Slot, cfg.Retention),
		state:   make(map[uint32]*victimState),
		gate:    make(map[uint32]*victimGate),
		m: detectorMetrics{
			records:       &obs.Counter{},
			detections:    &obs.Counter{},
			announcements: &obs.Counter{},
			withdrawals:   &obs.Counter{},
			drops:         &obs.Counter{},
		},
	}
	windowSec := (time.Duration(d.wslots) * cfg.Slot).Seconds()
	d.detectPkts = cfg.Threshold * windowSec / float64(cfg.SamplingRate)
	d.hotPkts = int64(math.Ceil(d.detectPkts / 2))
	if d.hotPkts < 1 {
		d.hotPkts = 1
	}
	return d, nil
}

// Config returns the detector's effective (default-filled)
// configuration.
func (d *Detector) Config() Config { return d.cfg }

// RegisterMetrics registers the detector's counters and gauges
// ("detect.*") on reg.
func (d *Detector) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("detect.records", d.m.records)
	reg.RegisterCounter("detect.detections", d.m.detections)
	reg.RegisterCounter("detect.announcements", d.m.announcements)
	reg.RegisterCounter("detect.withdrawals", d.m.withdrawals)
	reg.RegisterCounter("detect.blackholed_records", d.m.drops)
	reg.GaugeFunc("detect.active", func() int64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return int64(d.activeLocked())
	})
	reg.GaugeFunc("detect.tracked_victims", func() int64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return int64(d.rate.Victims())
	})
	reg.GaugeFunc("detect.pending_actions", func() int64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return int64(len(d.pending))
	})
}

func (d *Detector) activeLocked() int {
	n := 0
	for _, st := range d.state {
		if st.active {
			n++
		}
	}
	return n
}

// ObserveFlow folds one collected record into the sketches and runs the
// detection check for its destination. Call it on every record the
// collector delivers, in arrival order.
func (d *Detector) ObserveFlow(rec *ipfix.FlowRecord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.observeFlowLocked(rec)
}

// ObserveFlowBatch folds one batch of collected records into the
// sketches under a single lock acquisition, leaving the detector in
// exactly the state per-record ObserveFlow calls in the same order
// would. It borrows b per the ipfix.RecordBatch contract.
func (d *Detector) ObserveFlowBatch(b *ipfix.RecordBatch) {
	if b.Len() == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range b.Recs {
		d.observeFlowLocked(&b.Recs[i])
	}
}

func (d *Detector) observeFlowLocked(rec *ipfix.FlowRecord) {
	d.m.records.Inc()
	victim := rec.DstIP
	pkts := int64(rec.Packets)
	d.rate.Observe(victim, rec.Start, pkts, int64(rec.Bytes))

	if d.cfg.BlackholeMAC != 0 && rec.DstMAC == d.cfg.BlackholeMAC {
		d.m.drops.Inc()
		d.noteDropLocked(victim, rec.Start)
	}

	// The scan gate. Every window this record can change ends in
	// [s, s+wslots), and those windows' slots all lie inside the three
	// coarse buckets around s; their combined tally bounds every such
	// window sum from above. Under hotPkts nothing crossed either
	// threshold, so the quiet majority of records skips both the window
	// scan and the vector sketch. Vectors therefore only tallies records
	// from hot regions — the handful of quiet packets preceding the gate
	// opening are absent from a detection's vector shares, which is fine
	// for naming the dominant amplification services.
	s := d.rate.slotOf(rec.Start)
	if s < d.rate.horizon() {
		// Dead on arrival: the rate sketch dropped it, so no window sum
		// changed. Keeping it out of the gate also preserves the ring's
		// no-live-collision invariant.
		return
	}
	cs := floorDiv(s, d.wslots)
	g := d.gate[victim]
	if g == nil {
		g = newVictimGate()
		d.gate[victim] = g
	}
	n := d.coarseRetain()
	if g.add(cs, pkts, n)+g.read(cs-1, n)+g.read(cs+1, n) < d.hotPkts {
		return
	}
	if st := d.state[victim]; st != nil && st.active &&
		!st.hotEnd.IsZero() && s+d.wslots <= d.rate.slotOf(st.hotEnd) {
		// Mitigation is already active and every window this record
		// touches ends at or before the hysteresis frontier: the scan
		// could neither advance the cooldown (hotEnd is a monotone max)
		// nor fire again (active blocks detections), so the record is
		// fully absorbed by the rate tallies. The bulk of an attack's
		// records arrive here once its blackhole is up.
		return
	}
	d.vectors.Observe(victim, rec.Start, rec.Proto, rec.SrcPort, pkts)
	d.scanVictimLocked(victim, s)
}

// floorDiv is integer division rounding toward negative infinity, so
// slot→bucket mapping stays consistent for pre-1970 timestamps.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// coarseRetain is the gate ring size: the retention horizon in
// window-width buckets, plus slack so two live buckets can never share
// a ring cell.
func (d *Detector) coarseRetain() int64 {
	return d.rate.retain/d.wslots + 2
}

// scanVictimLocked examines the windows the observation in slot s can
// have changed (only those — windows not containing s had their chance
// when their own records arrived), updating hysteresis and firing a
// detection if a fresh window crosses the threshold.
func (d *Detector) scanVictimLocked(victim uint32, s int64) {
	st := d.state[victim]
	var (
		bestEnd  int64
		bestPkts int64
		hotEnd   int64
		hasBest  bool
		hasHot   bool
	)
	clearedEnd := int64(math.MinInt64)
	if st != nil && !st.clearedEnd.IsZero() {
		clearedEnd = d.rate.slotOf(st.clearedEnd) // SlotEnd(s) maps back to slot s+1's start; see below
	}
	d.rate.WindowsAt(victim, s, d.wslots, func(endSlot, pkts int64) {
		if pkts >= d.hotPkts && (!hasHot || endSlot > hotEnd) {
			hotEnd, hasHot = endSlot, true
		}
		if float64(pkts) >= d.detectPkts && endSlot >= clearedEnd &&
			(!hasBest || pkts > bestPkts) {
			bestEnd, bestPkts, hasBest = endSlot, pkts, true
		}
	})
	if hasHot {
		if st == nil {
			st = &victimState{det: -1}
			d.state[victim] = st
		}
		if t := d.rate.SlotEnd(hotEnd); t.After(st.hotEnd) {
			st.hotEnd = t
		}
	}
	if st == nil || st.active || !hasBest {
		return
	}
	windowSec := (time.Duration(d.wslots) * d.cfg.Slot).Seconds()
	det := Detection{
		ID:         len(d.dets),
		Victim:     victim,
		DetectedAt: d.rate.SlotEnd(bestEnd),
		RatePPS:    float64(bestPkts) * float64(d.cfg.SamplingRate) / windowSec,
		Vectors:    d.vectors.Top(victim, bestEnd, d.wslots, 3),
	}
	st.active = true
	st.det = det.ID
	d.dets = append(d.dets, det)
	d.pending = append(d.pending, Action{
		Announce: true, Victim: victim, Time: det.DetectedAt, DetectionID: det.ID,
	})
	d.m.detections.Inc()
}

// noteDropLocked records the first fabric drop at or after the victim's
// current announcement. Flow timestamps arrive out of order, so an
// earlier qualifying drop may show up later and replaces the stamp.
func (d *Detector) noteDropLocked(victim uint32, t time.Time) {
	st := d.state[victim]
	if st == nil || st.det < 0 {
		return
	}
	det := &d.dets[st.det]
	if det.AnnouncedAt.IsZero() || t.Before(det.AnnouncedAt) {
		return
	}
	if det.FirstDropAt.IsZero() || t.Before(det.FirstDropAt) {
		det.FirstDropAt = t
	}
}

// Tick advances the hysteresis to driver time `now` and drains the
// pending control-plane actions: announcements queued by detections
// since the last Tick (stamped with `now` as their announcement time),
// then withdrawals for victims whose cooldown expired. Call it from the
// run loop right before dispatching control traffic; the returned
// actions are in deterministic order (queue order, then withdrawals by
// victim address).
func (d *Detector) Tick(now time.Time) []Action {
	d.mu.Lock()
	defer d.mu.Unlock()
	acts := d.pending
	d.pending = nil
	for i := range acts {
		if acts[i].Announce {
			acts[i].Time = now
			d.dets[acts[i].DetectionID].AnnouncedAt = now
			d.m.announcements.Inc()
		}
	}
	var expired []uint32
	for victim, st := range d.state {
		if st.active && now.Sub(st.hotEnd) >= d.cfg.Cooldown {
			expired = append(expired, victim)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, victim := range expired {
		st := d.state[victim]
		st.active = false
		st.clearedEnd = st.hotEnd
		d.dets[st.det].WithdrawnAt = now
		acts = append(acts, Action{
			Announce: false, Victim: victim, Time: now, DetectionID: st.det,
		})
		d.m.withdrawals.Inc()
	}
	return acts
}

// Status is a consistent copy of the detector's externally visible
// state, for the /api/detections endpoint and post-run summaries.
type Status struct {
	ThresholdPPS float64
	Window       time.Duration
	Cooldown     time.Duration
	Slot         time.Duration
	Records      int64
	Tracked      int
	Active       int
	Pending      int
	Detections   []Detection
}

// Status returns a snapshot of the detection log and counters. The
// returned slice is a copy the caller may retain.
func (d *Detector) Status() *Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &Status{
		ThresholdPPS: d.cfg.Threshold,
		Window:       d.cfg.Window,
		Cooldown:     d.cfg.Cooldown,
		Slot:         d.cfg.Slot,
		Tracked:      d.rate.Victims(),
		Active:       d.activeLocked(),
		Pending:      len(d.pending),
		Detections:   make([]Detection, len(d.dets)),
	}
	st.Records = d.m.records.Value()
	copy(st.Detections, d.dets)
	for i := range st.Detections {
		st.Detections[i].Vectors = append([]Vector(nil), st.Detections[i].Vectors...)
	}
	return st
}
