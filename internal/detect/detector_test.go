package detect

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ipfix"
)

const testBlackholeMAC ipfix.MAC = 0x06_00_00_00_06_66

func testConfig() Config {
	return Config{
		Threshold:    125,
		Window:       5 * time.Minute,
		Cooldown:     10 * time.Minute,
		SamplingRate: 10000,
		BlackholeMAC: testBlackholeMAC,
	}
}

func flowRec(victim uint32, t time.Time, proto uint8, srcPort uint16) *ipfix.FlowRecord {
	return &ipfix.FlowRecord{
		Start: t, SrcIP: 0x0a000001, DstIP: victim,
		SrcPort: srcPort, DstPort: 1234, Proto: proto,
		Packets: 1, Bytes: 1000,
	}
}

// TestDetectorLifecycle drives one synthetic attack through the whole
// loop: quiet baseline (no detection), a burst over the threshold
// (detection + announce action), a blackholed record (first-drop
// stamp), cooldown expiry (withdraw action).
func TestDetectorLifecycle(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

	// Baseline: one sampled packet per half hour (≈5 pps estimated at
	// 1:10000) is far under every bar.
	for i := 0; i < 10; i++ {
		d.ObserveFlow(flowRec(0xC0A80001, base.Add(time.Duration(i)*30*time.Minute), 6, 443))
	}
	if acts := d.Tick(base.Add(10 * time.Minute)); len(acts) != 0 {
		t.Fatalf("baseline produced actions: %+v", acts)
	}

	// Burst: 8 sampled packets inside one window is ~267 pps estimated
	// at 1:10000, over the 125 pps threshold.
	victim := uint32(0xC0A80002)
	for i := 0; i < 8; i++ {
		d.ObserveFlow(flowRec(victim, base.Add(10*time.Minute+time.Duration(i)*30*time.Second), 17, 123))
	}
	acts := d.Tick(base.Add(15 * time.Minute))
	if len(acts) != 1 || !acts[0].Announce || acts[0].Victim != victim {
		t.Fatalf("want one announce for %x, got %+v", victim, acts)
	}
	st := d.Status()
	if len(st.Detections) != 1 || st.Active != 1 {
		t.Fatalf("status after detection: %+v", st)
	}
	det := st.Detections[0]
	if det.RatePPS < 125 {
		t.Fatalf("detection rate %v under threshold", det.RatePPS)
	}
	if len(det.Vectors) == 0 || det.Vectors[0].SrcPort != 123 || det.Vectors[0].Proto != 17 {
		t.Fatalf("detection vectors %+v do not name udp/123", det.Vectors)
	}
	if !det.AnnouncedAt.Equal(base.Add(15 * time.Minute)) {
		t.Fatalf("announced at %v, want the Tick instant", det.AnnouncedAt)
	}

	// A blackholed record before the announcement must not stamp the
	// drop; one after it must.
	early := flowRec(victim, det.AnnouncedAt.Add(-time.Minute), 17, 123)
	early.DstMAC = testBlackholeMAC
	d.ObserveFlow(early)
	if got := d.Status().Detections[0]; !got.FirstDropAt.IsZero() {
		t.Fatalf("pre-announcement drop stamped FirstDropAt=%v", got.FirstDropAt)
	}
	dropT := det.AnnouncedAt.Add(30 * time.Second)
	drop := flowRec(victim, dropT, 17, 123)
	drop.DstMAC = testBlackholeMAC
	d.ObserveFlow(drop)
	if got := d.Status().Detections[0]; !got.FirstDropAt.Equal(dropT) {
		t.Fatalf("FirstDropAt=%v, want %v", got.FirstDropAt, dropT)
	}

	// No withdraw while the cooldown has not expired relative to the
	// hottest window.
	if acts := d.Tick(base.Add(20 * time.Minute)); len(acts) != 0 {
		t.Fatalf("premature actions: %+v", acts)
	}
	// Far past the cooldown the blackhole comes down.
	acts = d.Tick(base.Add(40 * time.Minute))
	if len(acts) != 1 || acts[0].Announce || acts[0].Victim != victim {
		t.Fatalf("want one withdraw for %x, got %+v", victim, acts)
	}
	st = d.Status()
	if st.Active != 0 || st.Detections[0].Active() {
		t.Fatalf("status after withdraw: %+v", st)
	}

	// The same retained samples must not re-trigger...
	d.ObserveFlow(flowRec(victim, base.Add(14*time.Minute), 17, 123))
	if acts := d.Tick(base.Add(41 * time.Minute)); len(acts) != 0 {
		t.Fatalf("stale window re-triggered: %+v", acts)
	}
	// ...but a genuinely new burst must.
	for i := 0; i < 8; i++ {
		d.ObserveFlow(flowRec(victim, base.Add(60*time.Minute+time.Duration(i)*30*time.Second), 17, 123))
	}
	acts = d.Tick(base.Add(65 * time.Minute))
	if len(acts) != 1 || !acts[0].Announce || acts[0].DetectionID != 1 {
		t.Fatalf("want a second announce, got %+v", acts)
	}
}

// TestDetectorEvaluate scores a synthetic detection log against ground
// truth.
func TestDetectorEvaluate(t *testing.T) {
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	truth := []TruthAttack{
		{EventID: 1, Victim: 10, Start: base, End: base.Add(30 * time.Minute), PPS: 1000},
		{EventID: 2, Victim: 20, Start: base.Add(time.Hour), End: base.Add(90 * time.Minute), PPS: 500},
	}
	dets := []Detection{
		{ID: 0, Victim: 10, DetectedAt: base.Add(4 * time.Minute),
			AnnouncedAt: base.Add(5 * time.Minute), FirstDropAt: base.Add(6 * time.Minute)},
		{ID: 1, Victim: 99, DetectedAt: base.Add(10 * time.Minute)}, // false positive
	}
	ev := Evaluate(dets, truth, 5*time.Minute)
	if ev.TruePositives != 1 || ev.FalsePositives != 1 || ev.DetectedAtk != 1 {
		t.Fatalf("eval %+v", ev)
	}
	if ev.Precision != 0.5 || ev.Recall != 0.5 {
		t.Fatalf("precision %v recall %v", ev.Precision, ev.Recall)
	}
	a := ev.PerAttack[0]
	if !a.Detected || a.DetectLatency != 4*time.Minute || a.AnnounceLatency != 5*time.Minute ||
		!a.HasDrop || a.DropLatency != 6*time.Minute {
		t.Fatalf("attack outcome %+v", a)
	}
	if ev.PerAttack[1].Detected {
		t.Fatalf("attack 2 wrongly detected: %+v", ev.PerAttack[1])
	}
	out := ev.Render()
	if !strings.Contains(out, "precision 0.500") || !strings.Contains(out, "MISSED") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestConfigValidation rejects nonsense configurations.
func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Threshold: -1, SamplingRate: 1},
		{Window: -time.Minute, SamplingRate: 1},
		{Cooldown: -time.Second, SamplingRate: 1},
		{SamplingRate: 0},
		{SamplingRate: 1, Slot: time.Hour, Window: time.Minute},
		{SamplingRate: 1, Retention: time.Minute, Window: time.Hour},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: config %+v accepted", i, c)
		}
	}
	if _, err := New(Config{SamplingRate: 10000}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
