package detect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
)

// Compile-time checks: the detector's sketches honor the incremental
// operator contract, so they shard, Merge and Snapshot like every
// analysis stage and are covered by the operator conformance suite.
var (
	_ analysis.Operator[*Rate]    = (*Rate)(nil)
	_ analysis.Operator[*Vectors] = (*Vectors)(nil)
)

// TruthAttack is one ground-truth DDoS attack from the scenario
// generator: the victim host address and the attack's real span,
// independent of whether any operator reacted to it.
type TruthAttack struct {
	EventID int
	Victim  uint32
	Start   time.Time
	End     time.Time
	PPS     float64
}

// AttackOutcome scores one ground-truth attack against the detection
// log.
type AttackOutcome struct {
	EventID int
	Victim  uint32
	Start   time.Time
	PPS     float64
	// Duration is the attack's real length.
	Duration time.Duration
	// Detected reports whether at least one detection matched; the
	// latencies below are measured from attack onset using the earliest
	// matching detection and are meaningless when false.
	Detected bool
	// DetectLatency is onset → the end of the triggering window (flow
	// time).
	DetectLatency time.Duration
	// AnnounceLatency is onset → the RTBH announcement entering the
	// route server (driver time).
	AnnounceLatency time.Duration
	// DropLatency is onset → the first fabric drop at or after the
	// announcement; HasDrop reports whether any was observed (an attack
	// can end, or the run drain, before its first sampled drop).
	DropLatency time.Duration
	HasDrop     bool
}

// Eval scores a detection log against the ground truth.
type Eval struct {
	Attacks        int // ground-truth attacks
	Detections     int // detections fired
	TruePositives  int // detections matching some attack
	FalsePositives int // detections matching none
	DetectedAtk    int // attacks with at least one matching detection
	Precision      float64
	Recall         float64
	PerAttack      []AttackOutcome
}

// Evaluate matches detections against ground-truth attacks: a detection
// is a true positive when its victim address equals an attack's victim
// and its window end falls within [Start-slack, End+slack]. slack
// absorbs the window trailing an attack edge (a window that closes just
// after the last attack packet still describes it).
func Evaluate(dets []Detection, truth []TruthAttack, slack time.Duration) *Eval {
	ev := &Eval{Attacks: len(truth), Detections: len(dets)}
	byVictim := make(map[uint32][]int, len(truth))
	for i := range truth {
		byVictim[truth[i].Victim] = append(byVictim[truth[i].Victim], i)
	}
	// earliest matching detection per attack
	first := make(map[int]*Detection, len(truth))
	for i := range dets {
		d := &dets[i]
		matched := false
		for _, ti := range byVictim[d.Victim] {
			t := &truth[ti]
			if d.DetectedAt.Before(t.Start.Add(-slack)) || d.DetectedAt.After(t.End.Add(slack)) {
				continue
			}
			matched = true
			if cur := first[ti]; cur == nil || d.DetectedAt.Before(cur.DetectedAt) {
				first[ti] = d
			}
		}
		if matched {
			ev.TruePositives++
		} else {
			ev.FalsePositives++
		}
	}
	for ti := range truth {
		t := &truth[ti]
		out := AttackOutcome{
			EventID:  t.EventID,
			Victim:   t.Victim,
			Start:    t.Start,
			PPS:      t.PPS,
			Duration: t.End.Sub(t.Start),
		}
		if d := first[ti]; d != nil {
			out.Detected = true
			ev.DetectedAtk++
			out.DetectLatency = d.DetectedAt.Sub(t.Start)
			out.AnnounceLatency = d.AnnouncedAt.Sub(t.Start)
			if !d.FirstDropAt.IsZero() {
				out.DropLatency = d.FirstDropAt.Sub(t.Start)
				out.HasDrop = true
			}
		}
		ev.PerAttack = append(ev.PerAttack, out)
	}
	sort.Slice(ev.PerAttack, func(i, j int) bool {
		return ev.PerAttack[i].Start.Before(ev.PerAttack[j].Start)
	})
	if ev.Detections > 0 {
		ev.Precision = float64(ev.TruePositives) / float64(ev.Detections)
	}
	if ev.Attacks > 0 {
		ev.Recall = float64(ev.DetectedAtk) / float64(ev.Attacks)
	}
	return ev
}

// Render writes a human-readable evaluation table: the headline
// precision/recall line, then one row per attack with its mitigation
// latencies.
func (ev *Eval) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attacks %d detections %d tp %d fp %d precision %.3f recall %.3f\n",
		ev.Attacks, ev.Detections, ev.TruePositives, ev.FalsePositives,
		ev.Precision, ev.Recall)
	for i := range ev.PerAttack {
		a := &ev.PerAttack[i]
		fmt.Fprintf(&b, "  attack ev%-4d %-15s onset %s dur %7s pps %7.0f ",
			a.EventID, ipString(a.Victim), a.Start.UTC().Format("01-02 15:04"),
			a.Duration.Round(time.Second), a.PPS)
		if !a.Detected {
			b.WriteString("MISSED\n")
			continue
		}
		fmt.Fprintf(&b, "detect +%s announce +%s", a.DetectLatency.Round(time.Second),
			a.AnnounceLatency.Round(time.Second))
		if a.HasDrop {
			fmt.Fprintf(&b, " drop +%s", a.DropLatency.Round(time.Second))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
