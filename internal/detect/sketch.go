// Package detect closes the measurement loop: a streaming DRDoS
// detector over the live flow path that originates RTBH announcements
// through the route server when a victim's inbound rate crosses an
// attack threshold, and withdraws them when the attack subsides
// (IXmon-style, Subramani et al. — see DESIGN.md, "Closed-loop
// detection").
//
// The state the detector accumulates is held in two incremental
// operators that satisfy the same Merge/Snapshot/wire-codec contract as
// every analysis stage (internal/analysis, conformance suite): Rate, a
// per-victim slot-bucketed packet counter, and Vectors, the same
// slotting keyed by (proto, source port) so a detection can name the
// amplification vectors behind it.
package detect

import (
	"math"
	"time"
)

// minSlot is the "no slots observed yet" sentinel for maxSlot.
const minSlot = math.MinInt64

// maxRetainSlots bounds the retention horizon in slots. The sketch
// stores each victim as a dense ring over the horizon, so the ratio of
// retention to slot width is a direct per-victim memory commitment; a
// pathological configuration (millisecond slots over a day) is rejected
// instead of silently demanding gigabytes.
const maxRetainSlots = 1 << 20

// rateCell is one (victim, slot) tally.
type rateCell struct {
	pkts  int64
	bytes int64
}

// denseSlots is the sparse→dense upgrade threshold: a victim holding
// more than this many distinct slots graduates from a small map to a
// ring over the whole horizon.
const denseSlots = 32

// victimRate is one victim's retained slots, in one of two
// representations. Scan and one-off traffic produces thousands of
// destinations that only ever see a handful of packets; those stay in a
// small sparse map. A victim with real traffic volume upgrades to a
// dense ring over the retention horizon: slot s lives in cell
// s mod retain, with ids recording which slot occupies each cell
// (minSlot when empty). Two live slots can never collide in the ring —
// they would be a full horizon apart — so a mismatched occupant is
// always dead and is simply discarded on overwrite. The flat
// pointer-free arrays make the per-record hot path two array indexings
// and cost the garbage collector nothing to scan.
//
// pkts is the sum of the resident cells' packet counts; it may
// over-count dead cells that have not been evicted or overwritten yet,
// which is safe for its only use as an upper bound.
type victimRate struct {
	slots   map[int64]rateCell // sparse representation; nil once dense
	ids     []int64            // dense ring; nil while sparse
	cells   []rateCell
	pkts    int64
	maxSlot int64 // newest slot ever observed for this victim
}

func newVictimRate() *victimRate {
	return &victimRate{slots: make(map[int64]rateCell, 4), maxSlot: minSlot}
}

// add folds one cell into slot s. n is the ring size (the sketch's
// retain) and h the current horizon, consulted when the victim crosses
// the dense threshold.
func (v *victimRate) add(s int64, c rateCell, n, h int64) {
	if s > v.maxSlot {
		v.maxSlot = s
	}
	if v.ids == nil {
		old := v.slots[s]
		old.pkts += c.pkts
		old.bytes += c.bytes
		v.slots[s] = old
		v.pkts += c.pkts
		if len(v.slots) > denseSlots {
			v.toDense(n, h)
		}
		return
	}
	i := ringIdx(s, n)
	if v.ids[i] != s {
		// The occupant (if any) is necessarily dead; discard it.
		v.pkts -= v.cells[i].pkts
		v.ids[i] = s
		v.cells[i] = rateCell{}
	}
	v.cells[i].pkts += c.pkts
	v.cells[i].bytes += c.bytes
	v.pkts += c.pkts
}

// toDense rebuilds the victim as a ring, dropping dead slots.
func (v *victimRate) toDense(n, h int64) {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = minSlot
	}
	cells := make([]rateCell, n)
	var pkts int64
	for s, c := range v.slots {
		if s < h {
			continue
		}
		i := ringIdx(s, n)
		ids[i] = s // live slots cannot collide
		cells[i] = c
		pkts += c.pkts
	}
	v.slots, v.ids, v.cells, v.pkts = nil, ids, cells, pkts
}

// cellPkts returns slot s's packets (zero when absent or, in dense
// form, when its ring cell holds another slot).
func (v *victimRate) cellPkts(s, n int64) int64 {
	if v.ids == nil {
		return v.slots[s].pkts
	}
	i := ringIdx(s, n)
	if v.ids[i] != s {
		return 0
	}
	return v.cells[i].pkts
}

// cell returns slot s's full tally, the zero cell when absent.
func (v *victimRate) cell(s, n int64) rateCell {
	if v.ids == nil {
		return v.slots[s]
	}
	i := ringIdx(s, n)
	if v.ids[i] != s {
		return rateCell{}
	}
	return v.cells[i]
}

// eachLive visits every resident cell with slot >= h, in arbitrary
// order.
func (v *victimRate) eachLive(h int64, f func(s int64, c rateCell)) {
	if v.ids == nil {
		for s, c := range v.slots {
			if s >= h {
				f(s, c)
			}
		}
		return
	}
	for i, id := range v.ids {
		if id != minSlot && id >= h {
			f(id, v.cells[i])
		}
	}
}

// Rate is the per-victim sliding rate sketch. Flow timestamps are
// bucketed into fixed slots; only the most recent `retain` slots
// relative to the highest slot ever observed are live. Because both
// eviction and every query are pure functions of (slot width, horizon,
// observation multiset), observation order and merge topology never
// change the sketch's canonical state — which is what the operator
// conformance suite demands.
//
// The flow timeline at an IXP is far from monotone: day-long baseline
// batches put records up to ~24h ahead of the injection clock, so a
// window anchored at the newest timestamp would race past mid-day
// attacks. The horizon therefore retains comfortably more than a day
// (DefaultRetention) and detection queries consider every retained
// window, not just the newest one.
type Rate struct {
	slot    time.Duration
	retain  int64 // live horizon, in slots
	maxSlot int64 // highest slot observed; minSlot when empty
	swept   int64 // maxSlot value at the last eviction sweep
	victims map[uint32]*victimRate
}

// NewRate returns an empty sketch with the given slot width and
// retention horizon. Both must be positive; retention is rounded up to
// whole slots.
func NewRate(slot, retention time.Duration) *Rate {
	if slot <= 0 || retention < slot {
		panic("detect: rate sketch needs 0 < slot <= retention")
	}
	retain := int64((retention + slot - 1) / slot)
	if retain > maxRetainSlots {
		panic("detect: retention/slot ratio exceeds maxRetainSlots")
	}
	return &Rate{
		slot:    slot,
		retain:  retain,
		maxSlot: minSlot,
		swept:   minSlot,
		victims: make(map[uint32]*victimRate),
	}
}

// Slot returns the sketch's slot width.
func (a *Rate) Slot() time.Duration { return a.slot }

// slotOf buckets a timestamp.
func (a *Rate) slotOf(t time.Time) int64 { return t.UnixNano() / int64(a.slot) }

// SlotEnd returns the end instant of slot s (exclusive upper bound of
// the bucket), the timestamp a detection at that slot carries.
func (a *Rate) SlotEnd(s int64) time.Time {
	return time.Unix(0, (s+1)*int64(a.slot))
}

// horizon returns the oldest live slot; slots strictly below it are
// dead. With nothing observed every slot is live.
func (a *Rate) horizon() int64 {
	if a.maxSlot == minSlot {
		return minSlot
	}
	return a.maxSlot - a.retain + 1
}

// Observe folds one sampled flow observation into the sketch.
func (a *Rate) Observe(victim uint32, t time.Time, pkts, bytes int64) {
	s := a.slotOf(t)
	if s > a.maxSlot {
		a.maxSlot = s
		// Amortized eviction: a full sweep only when the horizon has
		// moved a quarter of its span since the last one. Queries and
		// Marshal filter dead slots themselves, so the sweep is purely
		// a memory bound.
		if a.swept == minSlot || a.maxSlot-a.swept >= a.retain/4+1 {
			a.sweep()
		}
	}
	if s < a.horizon() {
		return // dead on arrival: outside the retention horizon
	}
	v := a.victims[victim]
	if v == nil {
		v = newVictimRate()
		a.victims[victim] = v
	}
	v.add(s, rateCell{pkts: pkts, bytes: bytes}, a.retain, a.horizon())
}

// sweep drops victims whose newest slot has been dead for a whole extra
// horizon, bounding the victim map. The grace period matters: the flow
// timeline interleaves day-long batches, so a victim routinely looks
// dead for most of a day before its next batch lands — evicting eagerly
// would rebuild its ring (a fresh zeroed allocation) every day. Dead
// cells inside a surviving victim's ring need no eviction at all:
// queries ignore them and new slots overwrite them in place.
func (a *Rate) sweep() {
	a.swept = a.maxSlot
	if a.maxSlot == minSlot {
		return
	}
	cut := a.horizon() - a.retain
	for victim, v := range a.victims {
		if v.maxSlot < cut {
			delete(a.victims, victim)
		}
	}
}

// RetainedPkts returns an upper bound on the victim's packets within
// the live horizon (dead cells count until overwritten).
func (a *Rate) RetainedPkts(victim uint32) int64 {
	v := a.victims[victim]
	if v == nil {
		return 0
	}
	return v.pkts
}

// Victims returns how many victims currently hold retained state. The
// count may include victims whose every slot is dead: a victim's ring is
// kept through a grace period of one extra horizon so the interleaved
// day-batch timeline does not thrash ring allocations.
func (a *Rate) Victims() int { return len(a.victims) }

// MaxSlot returns the highest slot observed and whether anything has
// been observed at all.
func (a *Rate) MaxSlot() (int64, bool) { return a.maxSlot, a.maxSlot != minSlot }

// ScanWindows visits every candidate sliding window of width `wslots`
// for the victim, in increasing end-slot order. A candidate end is any
// slot within [s, s+wslots) of a live slot s — every window whose sum
// can be locally maximal ends at one of these. visit receives the
// window's end slot and its packet sum over (end-wslots, end].
func (a *Rate) ScanWindows(victim uint32, wslots int64, visit func(endSlot, pkts int64)) {
	v := a.victims[victim]
	if v == nil || wslots <= 0 {
		return
	}
	h := a.horizon()
	var live []int64
	v.eachLive(h, func(s int64, _ rateCell) { live = append(live, s) })
	if len(live) == 0 {
		return
	}
	sortInt64s(live)

	// Two pointers over the sorted live slots: lo..hi-1 are the slots
	// inside the current window (end-wslots, end].
	lo, hi := 0, 0
	var sum int64
	prevEnd := int64(math.MinInt64)
	for i, s := range live {
		for end := s; end < s+wslots; end++ {
			if end <= prevEnd {
				continue
			}
			// A later live slot may generate the same candidate ends;
			// stop at the next live slot so each end is visited once.
			if i+1 < len(live) && end >= live[i+1] {
				break
			}
			for hi < len(live) && live[hi] <= end {
				sum += v.cellPkts(live[hi], a.retain)
				hi++
			}
			for lo < hi && live[lo] <= end-wslots {
				sum -= v.cellPkts(live[lo], a.retain)
				lo++
			}
			visit(end, sum)
			prevEnd = end
		}
	}
}

// WindowsAt visits exactly the window sums an observation in slot s can
// have changed: ends in [s, s+wslots), each summing live slots in
// (end-wslots, end]. It is the detector's per-record hot path — O(wslots)
// map lookups with no allocation, against ScanWindows' walk over every
// retained slot. A dead s (already behind the horizon) visits nothing.
func (a *Rate) WindowsAt(victim uint32, s, wslots int64, visit func(endSlot, pkts int64)) {
	if wslots <= 0 {
		return
	}
	v := a.victims[victim]
	if v == nil {
		return
	}
	h := a.horizon()
	if s < h {
		return
	}
	count := func(slot int64) int64 {
		if slot < h {
			return 0
		}
		return v.cellPkts(slot, a.retain)
	}
	var sum int64
	for x := s - wslots + 1; x <= s; x++ {
		sum += count(x)
	}
	visit(s, sum)
	for end := s + 1; end < s+wslots; end++ {
		sum += count(end) - count(end-wslots)
		visit(end, sum)
	}
}

// Merge folds o's state into a. Both sketches must share slot width and
// horizon (they are construction parameters of one detector); o must
// not be used afterwards.
func (a *Rate) Merge(o *Rate) {
	if o.slot != a.slot || o.retain != a.retain {
		panic("detect: merging rate sketches with different geometry")
	}
	if o.maxSlot > a.maxSlot {
		a.maxSlot = o.maxSlot
	}
	h := a.horizon()
	for victim, ov := range o.victims {
		v := a.victims[victim]
		ov.eachLive(h, func(s int64, c rateCell) {
			if v == nil {
				v = newVictimRate()
				a.victims[victim] = v
			}
			v.add(s, c, a.retain, h)
		})
	}
	a.sweep()
}

// Snapshot returns an independent deep copy holding exactly the live
// slots.
func (a *Rate) Snapshot() *Rate {
	out := NewRate(a.slot, time.Duration(a.retain)*a.slot)
	out.maxSlot = a.maxSlot
	out.swept = a.maxSlot
	h := a.horizon()
	for victim, v := range a.victims {
		var nv *victimRate
		v.eachLive(h, func(s int64, c rateCell) {
			if nv == nil {
				nv = newVictimRate()
				out.victims[victim] = nv
			}
			nv.add(s, c, a.retain, h)
		})
	}
	return out
}
