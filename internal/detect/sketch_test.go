package detect

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// obs is one synthetic observation for the reference model.
type obsRec struct {
	victim uint32
	slot   int64
	pkts   int64
	bytes  int64
	proto  uint8
	port   uint16
}

// genObs draws a bounded random stream: a handful of victims, slots in
// a range wider than the retention horizon so eviction is exercised,
// small packet counts.
func genObs(r *rand.Rand, n int) []obsRec {
	out := make([]obsRec, n)
	for i := range out {
		out[i] = obsRec{
			victim: uint32(r.Intn(4)),
			slot:   int64(r.Intn(300)),
			pkts:   1 + int64(r.Intn(5)),
			bytes:  64 + int64(r.Intn(1000)),
			proto:  uint8(r.Intn(3)),
			port:   uint16(r.Intn(5)),
		}
	}
	return out
}

const (
	testSlot   = time.Minute
	testRetain = 100 * time.Minute // 100 slots
)

// naiveRate is the full-history reference: it retains every raw
// observation and answers window queries by brute force.
type naiveRate struct {
	obs []obsRec
}

func (n *naiveRate) observe(o obsRec) { n.obs = append(n.obs, o) }

func (n *naiveRate) maxSlot() (int64, bool) {
	if len(n.obs) == 0 {
		return 0, false
	}
	m := n.obs[0].slot
	for _, o := range n.obs {
		if o.slot > m {
			m = o.slot
		}
	}
	return m, true
}

// windowPkts sums the victim's live packets in (end-w, end].
func (n *naiveRate) windowPkts(victim uint32, end, w int64) int64 {
	m, ok := n.maxSlot()
	if !ok {
		return 0
	}
	h := m - int64(testRetain/testSlot) + 1
	var sum int64
	for _, o := range n.obs {
		if o.victim != victim || o.slot < h {
			continue
		}
		if o.slot > end-w && o.slot <= end {
			sum += o.pkts
		}
	}
	return sum
}

// maxWindow brute-forces the best window sum over every possible end.
func (n *naiveRate) maxWindow(victim uint32, w int64) int64 {
	m, ok := n.maxSlot()
	if !ok {
		return 0
	}
	lo := m - int64(testRetain/testSlot) + 1 - w
	var best int64
	for end := lo; end <= m+w; end++ {
		if s := n.windowPkts(victim, end, w); s > best {
			best = s
		}
	}
	return best
}

func feedRate(obs []obsRec) *Rate {
	a := NewRate(testSlot, testRetain)
	for _, o := range obs {
		a.Observe(o.victim, slotTime(o.slot), o.pkts, o.bytes)
	}
	return a
}

func slotTime(s int64) time.Time {
	// mid-slot, so bucketing is unambiguous
	return time.Unix(0, s*int64(testSlot)+int64(testSlot/2))
}

// TestRateWindowsMatchNaive checks, over random streams, that every
// window ScanWindows reports matches the brute-force sum at that end,
// and that the scan's best window equals the brute-force maximum over
// every conceivable end (i.e. the candidate-end enumeration is
// sufficient).
func TestRateWindowsMatchNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := genObs(r, 1+r.Intn(120))
		w := int64(1 + r.Intn(8))
		a := feedRate(obs)
		ref := &naiveRate{}
		for _, o := range obs {
			ref.observe(o)
		}
		for victim := uint32(0); victim < 4; victim++ {
			var scanBest int64
			ok := true
			a.ScanWindows(victim, w, func(end, pkts int64) {
				if want := ref.windowPkts(victim, end, w); pkts != want {
					t.Logf("seed %d victim %d w %d end %d: scan %d want %d", seed, victim, w, end, pkts, want)
					ok = false
				}
				if pkts > scanBest {
					scanBest = pkts
				}
			})
			if !ok {
				return false
			}
			if want := ref.maxWindow(victim, w); scanBest != want {
				t.Logf("seed %d victim %d w %d: max %d want %d", seed, victim, w, scanBest, want)
				return false
			}
			// The O(wslots) hot-path scan must agree with the reference at
			// every end it visits, for anchor slots live and dead alike.
			for _, anchor := range []int64{0, 150, 299, int64(r.Intn(300))} {
				a.WindowsAt(victim, anchor, w, func(end, pkts int64) {
					if end < anchor || end >= anchor+w {
						t.Logf("seed %d victim %d w %d: WindowsAt(%d) visited end %d", seed, victim, w, anchor, end)
						ok = false
					}
					if want := ref.windowPkts(victim, end, w); pkts != want {
						t.Logf("seed %d victim %d w %d end %d: WindowsAt %d want %d", seed, victim, w, end, pkts, want)
						ok = false
					}
				})
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRateCanonicalState checks that observation order and merge
// topology never change the sketch's canonical encoding: a shuffled
// feed and a split-merge feed marshal byte-identically to the
// sequential one.
func TestRateCanonicalState(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := genObs(r, 1+r.Intn(120))

		seq, err := feedRate(obs).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		shuffled := append([]obsRec(nil), obs...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shuf, err := feedRate(shuffled).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq, shuf) {
			t.Logf("seed %d: shuffled feed diverged", seed)
			return false
		}

		cut := r.Intn(len(obs) + 1)
		left, right := feedRate(obs[:cut]), feedRate(obs[cut:])
		left.Merge(right)
		merged, err := left.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq, merged) {
			t.Logf("seed %d: split-merge at %d diverged", seed, cut)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestVectorsTopMatchNaive checks the vector sketch's Top against a
// brute-force aggregation of the same window.
func TestVectorsTopMatchNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := genObs(r, 1+r.Intn(120))
		w := int64(1 + r.Intn(8))
		a := NewVectors(testSlot, testRetain)
		for _, o := range obs {
			a.Observe(o.victim, slotTime(o.slot), o.proto, o.port, o.pkts)
		}
		var maxS int64
		for _, o := range obs {
			if o.slot > maxS {
				maxS = o.slot
			}
		}
		h := maxS - int64(testRetain/testSlot) + 1
		for victim := uint32(0); victim < 4; victim++ {
			end := maxS - int64(r.Intn(5))
			agg := map[vectorKey]int64{}
			for _, o := range obs {
				if o.victim == victim && o.slot >= h && o.slot > end-w && o.slot <= end {
					agg[makeVectorKey(o.proto, o.port)] += o.pkts
				}
			}
			want := make([]Vector, 0, len(agg))
			for k, p := range agg {
				want = append(want, Vector{Proto: k.proto(), SrcPort: k.srcPort(), Pkts: p})
			}
			sortVectors(want)
			if len(want) > 3 {
				want = want[:3]
			}
			got := a.Top(victim, end, w, 3)
			if len(got) != len(want) {
				t.Logf("seed %d victim %d: got %v want %v", seed, victim, got, want)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d victim %d: got %v want %v", seed, victim, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRateEviction pins the horizon semantics on a deterministic case:
// a slot more than the retention behind the newest observation is dead
// — excluded from scans and from the canonical encoding.
func TestRateEviction(t *testing.T) {
	a := NewRate(testSlot, testRetain)
	a.Observe(1, slotTime(0), 10, 100)
	a.Observe(1, slotTime(99), 1, 10) // same horizon: slot 0 still live
	var sums []int64
	a.ScanWindows(1, 1, func(end, pkts int64) { sums = append(sums, pkts) })
	if len(sums) != 2 || sums[0] != 10 || sums[1] != 1 {
		t.Fatalf("before eviction: window sums %v", sums)
	}
	a.Observe(1, slotTime(100), 2, 20) // horizon moves to 1: slot 0 dies
	sums = nil
	a.ScanWindows(1, 1, func(end, pkts int64) { sums = append(sums, pkts) })
	if len(sums) != 2 || sums[0] != 1 || sums[1] != 2 {
		t.Fatalf("after eviction: window sums %v", sums)
	}

	// The dead slot must not reach the wire either.
	enc, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRate(testSlot, testRetain)
	fresh.Observe(1, slotTime(99), 1, 10)
	fresh.Observe(1, slotTime(100), 2, 20)
	want, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatal("dead slot leaked into the canonical encoding")
	}
}
