package detect

import "time"

// vectorKey packs (IP protocol, UDP/TCP source port) into one map key.
// For DRDoS the source port names the amplification service (123 NTP,
// 389 CLDAP, 11211 memcached, ...), which is exactly how the paper and
// IXmon label attack vectors.
type vectorKey uint32

func makeVectorKey(proto uint8, srcPort uint16) vectorKey {
	return vectorKey(uint32(proto)<<16 | uint32(srcPort))
}

func (k vectorKey) proto() uint8    { return uint8(k >> 16) }
func (k vectorKey) srcPort() uint16 { return uint16(k) }

// vcell is one (vector key, tally) pair within a slot. Slots hold a
// small unordered slice of these rather than a map: most slots see a
// handful of distinct vectors, and the slice keeps the per-record hot
// path allocation-free after the first append (a fresh map per
// (victim, slot) pair dominated the ingest profile).
type vcell struct {
	key  vectorKey
	pkts int64
}

// addVec folds pkts into the cell slice, merging with an existing key.
func addVec(cells []vcell, key vectorKey, pkts int64) []vcell {
	for i := range cells {
		if cells[i].key == key {
			cells[i].pkts += pkts
			return cells
		}
	}
	return append(cells, vcell{key: key, pkts: pkts})
}

// victimVectors is one victim's retained per-slot vector tallies.
type victimVectors struct {
	slots map[int64][]vcell
}

// Vectors is the companion sketch to Rate: the same slot bucketing and
// retention horizon, keyed by (proto, source port) instead of a plain
// tally, so a detection can report which services reflected the attack.
// The same canonical-state argument applies: eviction and queries
// depend only on the construction geometry and the observation
// multiset, never on arrival or merge order.
type Vectors struct {
	slot    time.Duration
	retain  int64
	maxSlot int64
	swept   int64
	victims map[uint32]*victimVectors
}

// NewVectors returns an empty vector sketch; geometry as in NewRate.
func NewVectors(slot, retention time.Duration) *Vectors {
	if slot <= 0 || retention < slot {
		panic("detect: vector sketch needs 0 < slot <= retention")
	}
	return &Vectors{
		slot:    slot,
		retain:  int64((retention + slot - 1) / slot),
		maxSlot: minSlot,
		swept:   minSlot,
		victims: make(map[uint32]*victimVectors),
	}
}

func (a *Vectors) slotOf(t time.Time) int64 { return t.UnixNano() / int64(a.slot) }

func (a *Vectors) horizon() int64 {
	if a.maxSlot == minSlot {
		return minSlot
	}
	return a.maxSlot - a.retain + 1
}

// Observe folds one sampled flow observation into the sketch.
func (a *Vectors) Observe(victim uint32, t time.Time, proto uint8, srcPort uint16, pkts int64) {
	s := a.slotOf(t)
	if s > a.maxSlot {
		a.maxSlot = s
		if a.swept == minSlot || a.maxSlot-a.swept >= a.retain/4+1 {
			a.sweep()
		}
	}
	if s < a.horizon() {
		return
	}
	v := a.victims[victim]
	if v == nil {
		v = &victimVectors{slots: make(map[int64][]vcell)}
		a.victims[victim] = v
	}
	key := makeVectorKey(proto, srcPort)
	cells := v.slots[s]
	grown := addVec(cells, key, pkts)
	// Store back only when the backing array moved; in-place increments
	// (the common case) need no map write.
	if len(grown) != len(cells) {
		v.slots[s] = grown
	}
}

func (a *Vectors) sweep() {
	h := a.horizon()
	for victim, v := range a.victims {
		for s := range v.slots {
			if s < h {
				delete(v.slots, s)
			}
		}
		if len(v.slots) == 0 {
			delete(a.victims, victim)
		}
	}
	a.swept = a.maxSlot
}

// Vector is one (proto, source port) share of a detection's window.
type Vector struct {
	Proto   uint8  `json:"proto"`
	SrcPort uint16 `json:"src_port"`
	Pkts    int64  `json:"pkts"`
}

// Top aggregates the victim's live slots over (endSlot-wslots, endSlot]
// and returns the n heaviest vectors, ordered by packets descending,
// then key, so the result is deterministic.
func (a *Vectors) Top(victim uint32, endSlot, wslots int64, n int) []Vector {
	v := a.victims[victim]
	if v == nil || n <= 0 {
		return nil
	}
	h := a.horizon()
	agg := make(map[vectorKey]int64)
	for s, cells := range v.slots {
		if s < h || s <= endSlot-wslots || s > endSlot {
			continue
		}
		for _, c := range cells {
			agg[c.key] += c.pkts
		}
	}
	if len(agg) == 0 {
		return nil
	}
	out := make([]Vector, 0, len(agg))
	for k, pkts := range agg {
		out = append(out, Vector{Proto: k.proto(), SrcPort: k.srcPort(), Pkts: pkts})
	}
	sortVectors(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Merge folds o's state into a; geometry must match, o must not be used
// afterwards.
func (a *Vectors) Merge(o *Vectors) {
	if o.slot != a.slot || o.retain != a.retain {
		panic("detect: merging vector sketches with different geometry")
	}
	if o.maxSlot > a.maxSlot {
		a.maxSlot = o.maxSlot
	}
	h := a.horizon()
	for victim, ov := range o.victims {
		v := a.victims[victim]
		for s, ocells := range ov.slots {
			if s < h {
				continue
			}
			if v == nil {
				v = &victimVectors{slots: make(map[int64][]vcell)}
				a.victims[victim] = v
			}
			cells := v.slots[s]
			if cells == nil {
				v.slots[s] = ocells
				continue
			}
			for _, c := range ocells {
				cells = addVec(cells, c.key, c.pkts)
			}
			v.slots[s] = cells
		}
	}
	a.sweep()
}

// Snapshot returns an independent deep copy holding exactly the live
// slots.
func (a *Vectors) Snapshot() *Vectors {
	out := NewVectors(a.slot, time.Duration(a.retain)*a.slot)
	out.maxSlot = a.maxSlot
	out.swept = a.maxSlot
	h := a.horizon()
	for victim, v := range a.victims {
		var nv *victimVectors
		for s, cells := range v.slots {
			if s < h {
				continue
			}
			if nv == nil {
				nv = &victimVectors{slots: make(map[int64][]vcell, len(v.slots))}
				out.victims[victim] = nv
			}
			nv.slots[s] = append([]vcell(nil), cells...)
		}
	}
	return out
}
