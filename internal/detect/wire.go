package detect

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
)

// Wire codec versions for the two detector operator snapshots.
const (
	rateWireVersion    = 1
	vectorsWireVersion = 1
)

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortVectors(s []Vector) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Pkts != s[j].Pkts {
			return s[i].Pkts > s[j].Pkts
		}
		return makeVectorKey(s[i].Proto, s[i].SrcPort) < makeVectorKey(s[j].Proto, s[j].SrcPort)
	})
}

func sortedVictims[T any](m map[uint32]T) []uint32 {
	out := make([]uint32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarshalBinary encodes the sketch canonically: geometry, the max slot,
// then victims sorted by address, each with its live slots sorted.
// Dead slots never reach the wire, so two semantically equal sketches
// marshal identically regardless of sweep timing.
func (a *Rate) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(rateWireVersion)
	w.Varint(int64(a.slot))
	w.Varint(a.retain)
	w.Bool(a.maxSlot != minSlot)
	if a.maxSlot != minSlot {
		w.Varint(a.maxSlot)
	}
	h := a.horizon()
	type encVictim struct {
		victim uint32
		slots  []int64
	}
	enc := make([]encVictim, 0, len(a.victims))
	for _, victim := range sortedVictims(a.victims) {
		v := a.victims[victim]
		var slots []int64
		v.eachLive(h, func(s int64, _ rateCell) { slots = append(slots, s) })
		if len(slots) == 0 {
			continue
		}
		sortInt64s(slots)
		enc = append(enc, encVictim{victim, slots})
	}
	w.Uvarint(uint64(len(enc)))
	for _, ev := range enc {
		w.Uvarint(uint64(ev.victim))
		w.Uvarint(uint64(len(ev.slots)))
		v := a.victims[ev.victim]
		for _, s := range ev.slots {
			c := v.cell(s, a.retain)
			w.Varint(s)
			w.Varint(c.pkts)
			w.Varint(c.bytes)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the sketch's state with the decoded
// snapshot. On error the sketch is left unchanged.
func (a *Rate) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(rateWireVersion)
	slot := r.Varint()
	retain := r.Varint()
	maxSlot := int64(minSlot)
	if r.Bool() {
		maxSlot = r.Varint()
	}
	// Geometry must be validated before victim rings are sized off it.
	if slot <= 0 || retain <= 0 || retain > maxRetainSlots {
		if err := r.Done(); err != nil {
			return fmt.Errorf("detect: rate sketch: %w", err)
		}
		return fmt.Errorf("detect: rate sketch: invalid geometry slot=%d retain=%d", slot, retain)
	}
	h := int64(minSlot)
	if maxSlot != minSlot {
		h = maxSlot - retain + 1
	}
	nVictims := r.Count(3) // victim + slot count + at least one slot triple
	victims := make(map[uint32]*victimRate, nVictims)
	for i := 0; i < nVictims; i++ {
		victim := r.U32()
		nSlots := r.Count(3)
		v := newVictimRate()
		for j := 0; j < nSlots; j++ {
			s := r.Varint()
			c := rateCell{pkts: r.Varint(), bytes: r.Varint()}
			if s < h {
				continue // dead slots never reach a canonical wire; drop them
			}
			if s > maxSlot {
				return fmt.Errorf("detect: rate sketch: slot %d beyond declared max %d", s, maxSlot)
			}
			v.add(s, c, retain, h)
		}
		victims[victim] = v
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("detect: rate sketch: %w", err)
	}
	a.slot = time.Duration(slot)
	a.retain = retain
	a.maxSlot = maxSlot
	a.swept = maxSlot
	a.victims = victims
	return nil
}

// MarshalBinary encodes the vector sketch canonically: geometry, the
// max slot, then victims sorted by address, live slots sorted, vector
// keys sorted.
func (a *Vectors) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(vectorsWireVersion)
	w.Varint(int64(a.slot))
	w.Varint(a.retain)
	w.Bool(a.maxSlot != minSlot)
	if a.maxSlot != minSlot {
		w.Varint(a.maxSlot)
	}
	h := a.horizon()
	type encVictim struct {
		victim uint32
		slots  []int64
	}
	enc := make([]encVictim, 0, len(a.victims))
	for _, victim := range sortedVictims(a.victims) {
		v := a.victims[victim]
		slots := make([]int64, 0, len(v.slots))
		for s := range v.slots {
			if s >= h {
				slots = append(slots, s)
			}
		}
		if len(slots) == 0 {
			continue
		}
		sortInt64s(slots)
		enc = append(enc, encVictim{victim, slots})
	}
	w.Uvarint(uint64(len(enc)))
	for _, ev := range enc {
		w.Uvarint(uint64(ev.victim))
		w.Uvarint(uint64(len(ev.slots)))
		v := a.victims[ev.victim]
		for _, s := range ev.slots {
			cells := append([]vcell(nil), v.slots[s]...)
			sort.Slice(cells, func(i, j int) bool { return cells[i].key < cells[j].key })
			w.Varint(s)
			w.Uvarint(uint64(len(cells)))
			for _, c := range cells {
				w.Uvarint(uint64(c.key))
				w.Varint(c.pkts)
			}
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary replaces the vector sketch's state with the decoded
// snapshot. On error the sketch is left unchanged.
func (a *Vectors) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(vectorsWireVersion)
	slot := r.Varint()
	retain := r.Varint()
	maxSlot := int64(minSlot)
	if r.Bool() {
		maxSlot = r.Varint()
	}
	nVictims := r.Count(4) // victim + slot count + slot + key count
	victims := make(map[uint32]*victimVectors, nVictims)
	for i := 0; i < nVictims; i++ {
		victim := r.U32()
		nSlots := r.Count(2)
		v := &victimVectors{slots: make(map[int64][]vcell, nSlots)}
		for j := 0; j < nSlots; j++ {
			s := r.Varint()
			nKeys := r.Count(2)
			var cells []vcell
			for k := 0; k < nKeys; k++ {
				key := vectorKey(r.U32())
				cells = addVec(cells, key, r.Varint())
			}
			v.slots[s] = cells
		}
		victims[victim] = v
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("detect: vector sketch: %w", err)
	}
	if slot <= 0 || retain <= 0 {
		return fmt.Errorf("detect: vector sketch: invalid geometry slot=%d retain=%d", slot, retain)
	}
	a.slot = time.Duration(slot)
	a.retain = retain
	a.maxSlot = maxSlot
	a.swept = maxSlot
	a.victims = victims
	return nil
}
