package fabric

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ipfix"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

// BenchmarkFabricFlowSpec measures the per-batch injection cost with the
// full rule catalog installed against the no-rules baseline. The batch
// mix alternates matching and non-matching headers so both the early
// NumFlowSpecRules gate (baseline) and the linear precedence scan (rules
// installed) are on the measured path.
func BenchmarkFabricFlowSpec(b *testing.B) {
	for _, bc := range []struct {
		name  string
		rules []*bgp.FlowRule
	}{
		{"no-rules", nil},
		{"catalog-8", fsCatalog()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rs := routeserver.New(rsASN, 1)
			peers := []routeserver.Peer{
				{ASN: 100, Policy: routeserver.DefaultPolicy(),
					Space: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.0/24")}},
				{ASN: 200, Policy: routeserver.Policy{
					Standard: routeserver.AcceptFull, FlowSpec: routeserver.AcceptFull}},
				{ASN: 300, Policy: routeserver.DefaultPolicy()},
			}
			for _, p := range peers {
				if err := rs.AddPeer(p); err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range bc.rules {
				err := rs.ProcessFlowSpec(time.Unix(0, 0), 100, &bgp.FlowSpecUpdate{
					Announced: []*bgp.FlowRule{r},
					ExtComms:  []bgp.ExtCommunity{bgp.TrafficRateDiscard},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			var sink int64
			f, err := New(rs, 100, stats.NewRNG(1), func(b *ipfix.RecordBatch) error {
				sink += int64(b.Len())
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			victim, err := bgp.ParseAddr("203.0.113.5")
			if err != nil {
				b.Fatal(err)
			}
			batches := []Batch{
				// Matching attack traffic: UDP from the NTP source port.
				{IngressAS: 200, EgressAS: 300, SrcIP: 0x08080808, DstIP: victim,
					SrcPort: 123, DstPort: 40000, Proto: 17},
				// Non-matching legitimate traffic to the same host.
				{IngressAS: 200, EgressAS: 300, SrcIP: 0x08080808, DstIP: victim,
					SrcPort: 33333, DstPort: 443, Proto: 6},
				// Traffic outside the protected space entirely.
				{IngressAS: 300, EgressAS: 200, SrcIP: 0x08080808, DstIP: 0xc6336409,
					SrcPort: 33333, DstPort: 80, Proto: 6},
			}
			for i := range batches {
				batches[i].Time = time.Unix(1000, 0)
				batches[i].Duration = time.Second
				batches[i].PacketSize = 468
				batches[i].Packets = 1000
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Inject(&batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
			_ = sink
		})
	}
}
