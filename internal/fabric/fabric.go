// Package fabric simulates the IXP switching platform: member routers
// identified by their MAC addresses on the peering LAN, the special
// non-forwarding blackhole MAC that implements RTBH packet dropping, and
// the member-facing edge sampling that produces the data-plane record
// stream.
//
// Traffic enters the fabric as packet batches (aggregates of packets that
// share headers within a time slot). For each batch the fabric:
//
//  1. consults the route server for the ingress member's forwarding
//     decision toward the destination (drop fraction per that member's
//     accepted blackhole routes),
//  2. samples the batch at 1:N (binomial thinning),
//  3. emits one flow record per sampled packet, with the destination MAC
//     set to the blackhole MAC for dropped packets or the egress member's
//     router MAC otherwise.
//
// Record timestamps carry a configurable clock offset relative to the
// control plane, modeling the NTP skew between measurement systems that
// the paper estimates with a maximum-likelihood fit (Fig 2).
package fabric

import (
	"fmt"
	"time"

	"repro/internal/ipfix"
	"repro/internal/obs"
	"repro/internal/routeserver"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// BlackholeMAC is the layer-2 address that does not forward: packets
// addressed to it are dropped by the switching platform. The locally
// administered unicast prefix 0x06 avoids collisions with member MACs.
const BlackholeMAC ipfix.MAC = 0x06_00_00_00_06_66

// InternalMAC identifies the IXP's internal systems (route server,
// monitoring). The paper removes flows from/to internal devices (0.01% of
// records) before analysis; the simulator emits a small share of such
// flows so the cleaning step has something to clean.
const InternalMAC ipfix.MAC = 0x06_00_00_00_00_01

// MemberMAC derives the deterministic router MAC of a member AS on the
// peering LAN (locally administered, unicast).
func MemberMAC(asn uint32) ipfix.MAC {
	return ipfix.MAC(0x02_00_00_00_00_00 | uint64(asn)&0xffffffff)
}

// Batch is an aggregate of Packets packets sharing the same headers
// (modulo the optional per-packet variation hooks) within a time slot.
type Batch struct {
	// Time is the slot start; sampled packets are timestamped uniformly
	// within [Time, Time+Duration).
	Time     time.Time
	Duration time.Duration
	// IngressAS is the member that hands the traffic into the IXP (the
	// paper's "handover AS"); EgressAS is the member toward the
	// destination.
	IngressAS, EgressAS uint32
	// Packet headers.
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
	// PacketSize is the size of each packet in bytes.
	PacketSize int
	// Packets is the number of packets in the aggregate.
	Packets int64
	// VaryPorts, if non-nil, supplies per-sampled-packet ports (attacks
	// on random or rotating ports; ephemeral client source ports).
	VaryPorts func(r *stats.RNG) (src, dst uint16)
	// VarySrcIP, if non-nil, supplies per-sampled-packet source
	// addresses (reflector pools; spoofed floods).
	VarySrcIP func(r *stats.RNG) uint32
	// Internal marks IXP-internal traffic (destination is an internal
	// system, not a member).
	Internal bool
	// BilateralDropFraction models blackholing agreed outside the route
	// server (private/bilateral RTBH): the ingress member resolves its
	// own blackhole next hop to the blackhole MAC regardless of
	// route-server state. The paper attributes ~5% of dropped bytes to
	// such sources. The effective drop fraction is the maximum of this
	// and the route-server-derived fraction.
	BilateralDropFraction float64
	// Owner is the member AS a federated run anchors the batch to: the
	// batch is observed at whichever IXP that member connects to. For
	// victim-bound traffic this is the victim's peering AS regardless of
	// which member hands the traffic over; for outgoing and scan traffic
	// it is the host's own member. Single-IXP runs ignore it.
	Owner uint32

	// Ground-truth annotations for the per-event mitigation ledger
	// (Table 5). They do not influence forwarding, sampling, or any
	// random draw — only the ledger's bookkeeping.
	//
	// Event is 1 + the scenario's attack-event ID for traffic attributed
	// to an event (the attack itself and the victim's concurrent
	// legitimate traffic); 0 leaves the batch out of the ledger.
	Event int
	// Attack distinguishes attack packets from the victim's legitimate
	// traffic within the event.
	Attack bool
	// Mitigation is the planned mitigation phase covering this batch's
	// slot: none, RTBH, or FlowSpec.
	Mitigation Phase
	// FixedSrcPort marks a VaryPorts hook that randomizes only the
	// destination port (amplification vectors: the reflected traffic
	// keeps the service source port). It lets the ledger evaluate
	// source-port FlowSpec rules at batch granularity.
	FixedSrcPort bool
}

// Phase is the mitigation state a batch's time slot falls under, per the
// scenario's planned windows.
type Phase uint8

const (
	PhaseNone Phase = iota
	PhaseRTBH
	PhaseFlowSpec
	numPhases
)

// String names the phase for reports.
func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseRTBH:
		return "rtbh"
	case PhaseFlowSpec:
		return "flowspec"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// MitCell is one ledger cell: expected-value packet counts over every
// batch of one (event, phase, attack/legit) combination.
type MitCell struct {
	DroppedRTBH int64 // packets blackholed via the coarse RTBH path
	DroppedFS   int64 // packets discarded by a matching FlowSpec rule
	Forwarded   int64
}

// Total returns the packets accounted in the cell.
func (c MitCell) Total() int64 { return c.DroppedRTBH + c.DroppedFS + c.Forwarded }

// EventMitigation is the ground-truth mitigation ledger of one attack
// event: what happened to its attack and legitimate packets under each
// mitigation phase. It is the reference TestMitigationEfficacy scores
// the measured Table 5 against.
type EventMitigation struct {
	Attack [numPhases]MitCell
	Legit  [numPhases]MitCell
}

// Stats aggregates ground-truth counters maintained by the fabric,
// independent of sampling. The experiment harness uses them to validate
// what the sampled analysis recovers, and RegisterMetrics exposes them as
// observability gauges.
type Stats struct {
	Batches        int64 // packet batches injected
	PacketsIn      int64 // total packets offered
	PacketsDropped int64 // packets sent to the blackhole MAC (expected value, rounded per batch)
	BytesIn        int64
	BytesDropped   int64
	RecordsSampled int64
	DroppedSampled int64 // sampled records emitted with the blackhole MAC
}

// Fabric is the switching platform simulation. Not safe for concurrent
// use; the simulator drives it from its single event loop.
type Fabric struct {
	rs      *routeserver.Server
	sampler *sampling.Sampler
	rng     *stats.RNG
	emit    ipfix.BatchSink
	// ClockOffset is added to every data-plane timestamp, modeling NTP
	// skew between the control- and data-plane measurement systems.
	ClockOffset time.Duration

	stats  Stats
	ledger map[int]*EventMitigation
}

// SampleSource bundles the edge sampler and the per-record randomness a
// fabric draws from. A federated run shares one source across its
// per-IXP fabrics, so the interleaved draw sequence — and with it every
// sampled record — matches the single-fabric run over the same batch
// dispatch order exactly.
type SampleSource struct {
	sampler *sampling.Sampler
	rng     *stats.RNG
}

// NewSampleSource derives the sampler and record RNG from rng exactly as
// New does, so a fabric built over the source behaves identically to one
// built directly from rng.
func NewSampleSource(rate int64, rng *stats.RNG) (*SampleSource, error) {
	s, err := sampling.New(rate, rng.Fork(0xfab))
	if err != nil {
		return nil, err
	}
	return &SampleSource{sampler: s, rng: rng.Fork(0x5eed)}, nil
}

// New creates a fabric attached to route server rs, sampling at 1:rate,
// emitting sampled flow records through emit — one RecordBatch per
// injected packet batch, so all records of an emitted batch share their
// headers by construction (modulo the per-packet variation hooks).
func New(rs *routeserver.Server, rate int64, rng *stats.RNG, emit ipfix.BatchSink) (*Fabric, error) {
	src, err := NewSampleSource(rate, rng)
	if err != nil {
		return nil, err
	}
	return NewWithSource(rs, src, emit)
}

// NewWithSource creates a fabric drawing sampling and record randomness
// from src, which may be shared with other fabrics. Shared-source
// fabrics must be driven from a single goroutine.
func NewWithSource(rs *routeserver.Server, src *SampleSource, emit ipfix.BatchSink) (*Fabric, error) {
	if rs == nil {
		return nil, fmt.Errorf("fabric: nil route server")
	}
	if src == nil {
		return nil, fmt.Errorf("fabric: nil sample source")
	}
	if emit == nil {
		return nil, fmt.Errorf("fabric: nil record sink")
	}
	return &Fabric{rs: rs, sampler: src.sampler, rng: src.rng, emit: emit}, nil
}

// Stats returns the ground-truth counters accumulated so far.
func (f *Fabric) Stats() Stats { return f.stats }

// Mitigation returns the per-event mitigation ledger keyed by attack
// event ID (Batch.Event - 1), deep-copied. Cells hold expected-value
// packet counts, the same rounding as Stats.PacketsDropped.
func (f *Fabric) Mitigation() map[int]EventMitigation {
	out := make(map[int]EventMitigation, len(f.ledger))
	for id, em := range f.ledger {
		out[id] = *em
	}
	return out
}

// RegisterMetrics exposes the fabric's ground-truth and sampling counters
// under the "fabric." prefix. The gauges read live fabric state; snapshot
// from the goroutine driving the (single-threaded) fabric, or after the
// run finished. fabric.records_dropped_sampled counts sampled records
// emitted with the blackhole destination MAC — the number the analysis
// pipeline's dropped-record counter must reproduce exactly from the IPFIX
// archive alone.
func (f *Fabric) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("fabric.batches", func() int64 { return f.stats.Batches })
	reg.GaugeFunc("fabric.packets_in", func() int64 { return f.stats.PacketsIn })
	reg.GaugeFunc("fabric.packets_dropped", func() int64 { return f.stats.PacketsDropped })
	reg.GaugeFunc("fabric.bytes_in", func() int64 { return f.stats.BytesIn })
	reg.GaugeFunc("fabric.bytes_dropped", func() int64 { return f.stats.BytesDropped })
	reg.GaugeFunc("fabric.records_sampled", func() int64 { return f.stats.RecordsSampled })
	reg.GaugeFunc("fabric.records_dropped_sampled", func() int64 { return f.stats.DroppedSampled })
}

// Inject offers a packet batch to the fabric. It updates ground-truth
// counters and emits sampled flow records.
func (f *Fabric) Inject(b *Batch) error {
	if b.Packets <= 0 {
		return nil
	}
	if b.PacketSize <= 0 {
		return fmt.Errorf("fabric: batch with packet size %d", b.PacketSize)
	}
	f.stats.Batches++

	dropFrac := 0.0
	if !b.Internal {
		dropFrac = f.rs.DropFraction(b.IngressAS, b.DstIP)
		if b.BilateralDropFraction > dropFrac {
			dropFrac = b.BilateralDropFraction
			if dropFrac > 1 {
				dropFrac = 1
			}
		}
	}

	// Batch-level FlowSpec evaluation: when the ports the installed rules
	// can match on are batch-constant, whether the fine-grained discard
	// bites is a property of the batch, and the expected dropped-packet
	// count is exact. Batches that randomize the source port (ephemeral
	// client ports, random-port floods) are evaluated per sampled record
	// only; their expected FlowSpec contribution is treated as zero, which
	// is what the scenario's service-port discard rules make it.
	// A packet dies to FlowSpec if the ingress member imported a matching
	// rule, or if the egress member authored one: the route server never
	// reflects a rule back to its originator, but the originator's own
	// edge filters with it, so traffic toward the protected prefix is
	// covered no matter which member hands it into the fabric.
	fsMatch := false
	if !b.Internal && f.rs.NumFlowSpecRules() > 0 {
		switch {
		case b.VaryPorts == nil:
			fsMatch = f.rs.MatchFlowSpec(b.IngressAS, b.DstIP, b.Proto, b.SrcPort, b.DstPort) ||
				f.rs.OwnMatchingFlowRule(b.EgressAS, b.DstIP, b.Proto, b.SrcPort, b.DstPort) != nil
		case b.FixedSrcPort:
			// Destination port varies per packet; only a rule that does
			// not constrain it can be decided at batch level.
			r := f.rs.MatchingFlowRule(b.IngressAS, b.DstIP, b.Proto, b.SrcPort, b.DstPort)
			if r == nil {
				r = f.rs.OwnMatchingFlowRule(b.EgressAS, b.DstIP, b.Proto, b.SrcPort, b.DstPort)
			}
			fsMatch = r != nil && len(r.DstPorts) == 0
		}
	}

	f.stats.PacketsIn += b.Packets
	f.stats.BytesIn += b.Packets * int64(b.PacketSize)
	expectedDropped := int64(dropFrac*float64(b.Packets) + 0.5)
	var expectedFS int64
	if fsMatch {
		// FlowSpec discards whatever the RTBH path did not already claim.
		expectedFS = b.Packets - expectedDropped
	}
	f.stats.PacketsDropped += expectedDropped + expectedFS
	f.stats.BytesDropped += (expectedDropped + expectedFS) * int64(b.PacketSize)

	if b.Event > 0 {
		if b.Mitigation >= numPhases {
			return fmt.Errorf("fabric: batch with unknown mitigation phase %d", b.Mitigation)
		}
		if f.ledger == nil {
			f.ledger = make(map[int]*EventMitigation)
		}
		em := f.ledger[b.Event-1]
		if em == nil {
			em = &EventMitigation{}
			f.ledger[b.Event-1] = em
		}
		cell := &em.Legit[b.Mitigation]
		if b.Attack {
			cell = &em.Attack[b.Mitigation]
		}
		cell.DroppedRTBH += expectedDropped
		cell.DroppedFS += expectedFS
		cell.Forwarded += b.Packets - expectedDropped - expectedFS
	}

	n := f.sampler.Sample(b.Packets)
	if n == 0 {
		return nil
	}
	f.stats.RecordsSampled += n

	egressMAC := MemberMAC(b.EgressAS)
	if b.Internal {
		egressMAC = InternalMAC
	}
	hasFlowSpec := f.rs.NumFlowSpecRules() > 0
	dur := b.Duration
	if dur <= 0 {
		dur = time.Nanosecond
	}
	out := ipfix.GetBatch()
	defer out.Release()
	ingressMAC := MemberMAC(b.IngressAS)
	for i := int64(0); i < n; i++ {
		out.Recs = append(out.Recs, ipfix.FlowRecord{
			SrcMAC:  ingressMAC,
			DstMAC:  egressMAC,
			SrcIP:   b.SrcIP,
			DstIP:   b.DstIP,
			SrcPort: b.SrcPort,
			DstPort: b.DstPort,
			Proto:   b.Proto,
			Packets: 1,
			Bytes:   uint64(b.PacketSize),
		})
		rec := &out.Recs[len(out.Recs)-1]
		off := time.Duration(f.rng.Int63n(int64(dur)))
		rec.Start = b.Time.Add(off + f.ClockOffset)
		if b.VaryPorts != nil {
			rec.SrcPort, rec.DstPort = b.VaryPorts(f.rng)
		}
		if b.VarySrcIP != nil {
			rec.SrcIP = b.VarySrcIP(f.rng)
		}
		if !b.Internal {
			switch {
			case f.rng.Bool(dropFrac):
				rec.DstMAC = BlackholeMAC
			case hasFlowSpec && (f.rs.MatchFlowSpec(b.IngressAS, rec.DstIP, rec.Proto, rec.SrcPort, rec.DstPort) ||
				f.rs.OwnMatchingFlowRule(b.EgressAS, rec.DstIP, rec.Proto, rec.SrcPort, rec.DstPort) != nil):
				// Fine-grained discard: only the matching packets die.
				// The expected-value counters already accounted for this
				// at batch level (fsMatch above).
				rec.DstMAC = BlackholeMAC
			}
		}
		if rec.DstMAC == BlackholeMAC {
			f.stats.DroppedSampled++
		}
	}
	if err := f.emit(out); err != nil {
		return fmt.Errorf("fabric: emitting records: %w", err)
	}
	return nil
}
