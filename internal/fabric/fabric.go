// Package fabric simulates the IXP switching platform: member routers
// identified by their MAC addresses on the peering LAN, the special
// non-forwarding blackhole MAC that implements RTBH packet dropping, and
// the member-facing edge sampling that produces the data-plane record
// stream.
//
// Traffic enters the fabric as packet batches (aggregates of packets that
// share headers within a time slot). For each batch the fabric:
//
//  1. consults the route server for the ingress member's forwarding
//     decision toward the destination (drop fraction per that member's
//     accepted blackhole routes),
//  2. samples the batch at 1:N (binomial thinning),
//  3. emits one flow record per sampled packet, with the destination MAC
//     set to the blackhole MAC for dropped packets or the egress member's
//     router MAC otherwise.
//
// Record timestamps carry a configurable clock offset relative to the
// control plane, modeling the NTP skew between measurement systems that
// the paper estimates with a maximum-likelihood fit (Fig 2).
package fabric

import (
	"fmt"
	"time"

	"repro/internal/ipfix"
	"repro/internal/obs"
	"repro/internal/routeserver"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// BlackholeMAC is the layer-2 address that does not forward: packets
// addressed to it are dropped by the switching platform. The locally
// administered unicast prefix 0x06 avoids collisions with member MACs.
const BlackholeMAC ipfix.MAC = 0x06_00_00_00_06_66

// InternalMAC identifies the IXP's internal systems (route server,
// monitoring). The paper removes flows from/to internal devices (0.01% of
// records) before analysis; the simulator emits a small share of such
// flows so the cleaning step has something to clean.
const InternalMAC ipfix.MAC = 0x06_00_00_00_00_01

// MemberMAC derives the deterministic router MAC of a member AS on the
// peering LAN (locally administered, unicast).
func MemberMAC(asn uint32) ipfix.MAC {
	return ipfix.MAC(0x02_00_00_00_00_00 | uint64(asn)&0xffffffff)
}

// Batch is an aggregate of Packets packets sharing the same headers
// (modulo the optional per-packet variation hooks) within a time slot.
type Batch struct {
	// Time is the slot start; sampled packets are timestamped uniformly
	// within [Time, Time+Duration).
	Time     time.Time
	Duration time.Duration
	// IngressAS is the member that hands the traffic into the IXP (the
	// paper's "handover AS"); EgressAS is the member toward the
	// destination.
	IngressAS, EgressAS uint32
	// Packet headers.
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
	// PacketSize is the size of each packet in bytes.
	PacketSize int
	// Packets is the number of packets in the aggregate.
	Packets int64
	// VaryPorts, if non-nil, supplies per-sampled-packet ports (attacks
	// on random or rotating ports; ephemeral client source ports).
	VaryPorts func(r *stats.RNG) (src, dst uint16)
	// VarySrcIP, if non-nil, supplies per-sampled-packet source
	// addresses (reflector pools; spoofed floods).
	VarySrcIP func(r *stats.RNG) uint32
	// Internal marks IXP-internal traffic (destination is an internal
	// system, not a member).
	Internal bool
	// BilateralDropFraction models blackholing agreed outside the route
	// server (private/bilateral RTBH): the ingress member resolves its
	// own blackhole next hop to the blackhole MAC regardless of
	// route-server state. The paper attributes ~5% of dropped bytes to
	// such sources. The effective drop fraction is the maximum of this
	// and the route-server-derived fraction.
	BilateralDropFraction float64
	// Owner is the member AS a federated run anchors the batch to: the
	// batch is observed at whichever IXP that member connects to. For
	// victim-bound traffic this is the victim's peering AS regardless of
	// which member hands the traffic over; for outgoing and scan traffic
	// it is the host's own member. Single-IXP runs ignore it.
	Owner uint32
}

// Stats aggregates ground-truth counters maintained by the fabric,
// independent of sampling. The experiment harness uses them to validate
// what the sampled analysis recovers, and RegisterMetrics exposes them as
// observability gauges.
type Stats struct {
	Batches        int64 // packet batches injected
	PacketsIn      int64 // total packets offered
	PacketsDropped int64 // packets sent to the blackhole MAC (expected value, rounded per batch)
	BytesIn        int64
	BytesDropped   int64
	RecordsSampled int64
	DroppedSampled int64 // sampled records emitted with the blackhole MAC
}

// Fabric is the switching platform simulation. Not safe for concurrent
// use; the simulator drives it from its single event loop.
type Fabric struct {
	rs      *routeserver.Server
	sampler *sampling.Sampler
	rng     *stats.RNG
	emit    func(*ipfix.FlowRecord) error
	// ClockOffset is added to every data-plane timestamp, modeling NTP
	// skew between the control- and data-plane measurement systems.
	ClockOffset time.Duration

	stats Stats
}

// SampleSource bundles the edge sampler and the per-record randomness a
// fabric draws from. A federated run shares one source across its
// per-IXP fabrics, so the interleaved draw sequence — and with it every
// sampled record — matches the single-fabric run over the same batch
// dispatch order exactly.
type SampleSource struct {
	sampler *sampling.Sampler
	rng     *stats.RNG
}

// NewSampleSource derives the sampler and record RNG from rng exactly as
// New does, so a fabric built over the source behaves identically to one
// built directly from rng.
func NewSampleSource(rate int64, rng *stats.RNG) (*SampleSource, error) {
	s, err := sampling.New(rate, rng.Fork(0xfab))
	if err != nil {
		return nil, err
	}
	return &SampleSource{sampler: s, rng: rng.Fork(0x5eed)}, nil
}

// New creates a fabric attached to route server rs, sampling at 1:rate,
// emitting sampled flow records through emit.
func New(rs *routeserver.Server, rate int64, rng *stats.RNG, emit func(*ipfix.FlowRecord) error) (*Fabric, error) {
	src, err := NewSampleSource(rate, rng)
	if err != nil {
		return nil, err
	}
	return NewWithSource(rs, src, emit)
}

// NewWithSource creates a fabric drawing sampling and record randomness
// from src, which may be shared with other fabrics. Shared-source
// fabrics must be driven from a single goroutine.
func NewWithSource(rs *routeserver.Server, src *SampleSource, emit func(*ipfix.FlowRecord) error) (*Fabric, error) {
	if rs == nil {
		return nil, fmt.Errorf("fabric: nil route server")
	}
	if src == nil {
		return nil, fmt.Errorf("fabric: nil sample source")
	}
	if emit == nil {
		return nil, fmt.Errorf("fabric: nil record sink")
	}
	return &Fabric{rs: rs, sampler: src.sampler, rng: src.rng, emit: emit}, nil
}

// Stats returns the ground-truth counters accumulated so far.
func (f *Fabric) Stats() Stats { return f.stats }

// RegisterMetrics exposes the fabric's ground-truth and sampling counters
// under the "fabric." prefix. The gauges read live fabric state; snapshot
// from the goroutine driving the (single-threaded) fabric, or after the
// run finished. fabric.records_dropped_sampled counts sampled records
// emitted with the blackhole destination MAC — the number the analysis
// pipeline's dropped-record counter must reproduce exactly from the IPFIX
// archive alone.
func (f *Fabric) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("fabric.batches", func() int64 { return f.stats.Batches })
	reg.GaugeFunc("fabric.packets_in", func() int64 { return f.stats.PacketsIn })
	reg.GaugeFunc("fabric.packets_dropped", func() int64 { return f.stats.PacketsDropped })
	reg.GaugeFunc("fabric.bytes_in", func() int64 { return f.stats.BytesIn })
	reg.GaugeFunc("fabric.bytes_dropped", func() int64 { return f.stats.BytesDropped })
	reg.GaugeFunc("fabric.records_sampled", func() int64 { return f.stats.RecordsSampled })
	reg.GaugeFunc("fabric.records_dropped_sampled", func() int64 { return f.stats.DroppedSampled })
}

// Inject offers a packet batch to the fabric. It updates ground-truth
// counters and emits sampled flow records.
func (f *Fabric) Inject(b *Batch) error {
	if b.Packets <= 0 {
		return nil
	}
	if b.PacketSize <= 0 {
		return fmt.Errorf("fabric: batch with packet size %d", b.PacketSize)
	}
	f.stats.Batches++

	dropFrac := 0.0
	if !b.Internal {
		dropFrac = f.rs.DropFraction(b.IngressAS, b.DstIP)
		if b.BilateralDropFraction > dropFrac {
			dropFrac = b.BilateralDropFraction
			if dropFrac > 1 {
				dropFrac = 1
			}
		}
	}

	f.stats.PacketsIn += b.Packets
	f.stats.BytesIn += b.Packets * int64(b.PacketSize)
	expectedDropped := int64(dropFrac*float64(b.Packets) + 0.5)
	f.stats.PacketsDropped += expectedDropped
	f.stats.BytesDropped += expectedDropped * int64(b.PacketSize)

	n := f.sampler.Sample(b.Packets)
	if n == 0 {
		return nil
	}
	f.stats.RecordsSampled += n

	egressMAC := MemberMAC(b.EgressAS)
	if b.Internal {
		egressMAC = InternalMAC
	}
	hasFlowSpec := f.rs.NumFlowSpecRules() > 0
	dur := b.Duration
	if dur <= 0 {
		dur = time.Nanosecond
	}
	for i := int64(0); i < n; i++ {
		rec := ipfix.FlowRecord{
			SrcMAC:  MemberMAC(b.IngressAS),
			DstMAC:  egressMAC,
			SrcIP:   b.SrcIP,
			DstIP:   b.DstIP,
			SrcPort: b.SrcPort,
			DstPort: b.DstPort,
			Proto:   b.Proto,
			Packets: 1,
			Bytes:   uint64(b.PacketSize),
		}
		off := time.Duration(f.rng.Int63n(int64(dur)))
		rec.Start = b.Time.Add(off + f.ClockOffset)
		if b.VaryPorts != nil {
			rec.SrcPort, rec.DstPort = b.VaryPorts(f.rng)
		}
		if b.VarySrcIP != nil {
			rec.SrcIP = b.VarySrcIP(f.rng)
		}
		if !b.Internal {
			switch {
			case f.rng.Bool(dropFrac):
				rec.DstMAC = BlackholeMAC
			case hasFlowSpec && f.rs.MatchFlowSpec(b.IngressAS, rec.DstIP, rec.Proto, rec.SrcPort, rec.DstPort):
				// Fine-grained discard: only the matching packets die.
				rec.DstMAC = BlackholeMAC
				f.stats.PacketsDropped++
				f.stats.BytesDropped += int64(b.PacketSize)
			}
		}
		if rec.DstMAC == BlackholeMAC {
			f.stats.DroppedSampled++
		}
		if err := f.emit(&rec); err != nil {
			return fmt.Errorf("fabric: emitting record: %w", err)
		}
	}
	return nil
}
