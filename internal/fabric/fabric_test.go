package fabric

import (
	"math"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ipfix"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

const rsASN = 65500

func setup(t *testing.T, rate int64) (*routeserver.Server, *Fabric, *[]ipfix.FlowRecord) {
	t.Helper()
	rs := routeserver.New(rsASN, 0x0a000001)
	for asn, pol := range map[uint32]routeserver.Policy{
		100: routeserver.BlackholeReadyPolicy(),
		200: routeserver.BlackholeReadyPolicy(),
		300: routeserver.DefaultPolicy(),
		400: {Standard: routeserver.AcceptFull, Host: routeserver.AcceptPartial, HostFraction: 0.5},
	} {
		if err := rs.AddPeer(routeserver.Peer{ASN: asn, IP: 0x0a000000 + asn, Policy: pol}); err != nil {
			t.Fatal(err)
		}
	}
	var recs []ipfix.FlowRecord
	f, err := New(rs, rate, stats.NewRNG(42), func(b *ipfix.RecordBatch) error {
		recs = append(recs, b.Recs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs, f, &recs
}

func announceBlackhole(t *testing.T, rs *routeserver.Server, origin uint32, prefix string) {
	t.Helper()
	_, err := rs.Process(time.Unix(0, 0), origin, &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []uint32{origin},
			NextHop:     1,
			Communities: bgp.Communities{bgp.Blackhole},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix(prefix)},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func victimIP(t *testing.T) uint32 {
	t.Helper()
	a, err := bgp.ParseAddr("203.0.113.5")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func baseBatch(t *testing.T, packets int64) *Batch {
	t.Helper()
	return &Batch{
		Time:       time.Unix(1000, 0),
		Duration:   5 * time.Minute,
		IngressAS:  200,
		EgressAS:   100,
		SrcIP:      0x08080808,
		DstIP:      victimIP(t),
		SrcPort:    123,
		DstPort:    40000,
		Proto:      17,
		PacketSize: 468,
		Packets:    packets,
	}
}

func TestForwardedTrafficGetsEgressMAC(t *testing.T) {
	_, f, recs := setup(t, 1)
	if err := f.Inject(baseBatch(t, 10)); err != nil {
		t.Fatal(err)
	}
	if len(*recs) != 10 {
		t.Fatalf("sampled %d records at rate 1", len(*recs))
	}
	for _, r := range *recs {
		if r.DstMAC != MemberMAC(100) {
			t.Fatalf("DstMAC = %v, want egress member MAC", r.DstMAC)
		}
		if r.SrcMAC != MemberMAC(200) {
			t.Fatalf("SrcMAC = %v, want ingress member MAC", r.SrcMAC)
		}
	}
}

func TestBlackholedTrafficGetsBlackholeMAC(t *testing.T) {
	rs, f, recs := setup(t, 1)
	announceBlackhole(t, rs, 100, "203.0.113.5/32")
	if err := f.Inject(baseBatch(t, 100)); err != nil {
		t.Fatal(err)
	}
	// Ingress 200 has BlackholeReadyPolicy -> everything dropped.
	for _, r := range *recs {
		if r.DstMAC != BlackholeMAC {
			t.Fatalf("DstMAC = %v, want blackhole", r.DstMAC)
		}
	}
	st := f.Stats()
	if st.PacketsDropped != 100 || st.PacketsIn != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRejectingPeerForwardsDespiteBlackhole(t *testing.T) {
	rs, f, recs := setup(t, 1)
	announceBlackhole(t, rs, 100, "203.0.113.5/32")
	b := baseBatch(t, 100)
	b.IngressAS = 300 // default policy rejects /32
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	for _, r := range *recs {
		if r.DstMAC == BlackholeMAC {
			t.Fatal("packet dropped although ingress peer rejects /32 blackholes")
		}
	}
	if st := f.Stats(); st.PacketsDropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPartialAcceptorDropsFraction(t *testing.T) {
	rs, f, recs := setup(t, 1)
	announceBlackhole(t, rs, 100, "203.0.113.5/32")
	b := baseBatch(t, 20000)
	b.IngressAS = 400 // partial 0.5
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, r := range *recs {
		if r.DstMAC == BlackholeMAC {
			dropped++
		}
	}
	frac := float64(dropped) / float64(len(*recs))
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("dropped fraction = %v, want ~0.5", frac)
	}
	if st := f.Stats(); st.PacketsDropped != 10000 {
		t.Fatalf("expected-drop counter = %d", st.PacketsDropped)
	}
}

func TestSamplingRateApplied(t *testing.T) {
	rs, f, recs := setup(t, 100)
	announceBlackhole(t, rs, 100, "203.0.113.5/32")
	if err := f.Inject(baseBatch(t, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	got := float64(len(*recs))
	if math.Abs(got-10000) > 500 {
		t.Fatalf("sampled %v records from 1M at 1:100, want ~10000", got)
	}
	if st := f.Stats(); st.RecordsSampled != int64(len(*recs)) {
		t.Fatalf("RecordsSampled = %d, emitted %d", st.RecordsSampled, len(*recs))
	}
}

func TestClockOffsetApplied(t *testing.T) {
	_, f, recs := setup(t, 1)
	f.ClockOffset = -40 * time.Millisecond
	b := baseBatch(t, 5)
	b.Duration = time.Millisecond
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	for _, r := range *recs {
		d := r.Start.Sub(b.Time)
		if d < -40*time.Millisecond || d > -38*time.Millisecond {
			t.Fatalf("timestamp offset = %v, want about -40ms", d)
		}
	}
}

func TestTimestampsWithinSlot(t *testing.T) {
	_, f, recs := setup(t, 1)
	b := baseBatch(t, 1000)
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	for _, r := range *recs {
		if r.Start.Before(b.Time) || !r.Start.Before(b.Time.Add(b.Duration)) {
			t.Fatalf("timestamp %v outside slot [%v, +%v)", r.Start, b.Time, b.Duration)
		}
	}
}

func TestVaryHooks(t *testing.T) {
	_, f, recs := setup(t, 1)
	b := baseBatch(t, 500)
	b.VaryPorts = func(r *stats.RNG) (uint16, uint16) {
		return uint16(1024 + r.Intn(60000)), 53
	}
	pool := []uint32{1, 2, 3}
	b.VarySrcIP = func(r *stats.RNG) uint32 { return pool[r.Intn(len(pool))] }
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	srcPorts := map[uint16]bool{}
	srcIPs := map[uint32]bool{}
	for _, r := range *recs {
		if r.DstPort != 53 {
			t.Fatalf("DstPort = %d", r.DstPort)
		}
		srcPorts[r.SrcPort] = true
		srcIPs[r.SrcIP] = true
	}
	if len(srcPorts) < 100 {
		t.Fatalf("port variation too low: %d distinct", len(srcPorts))
	}
	if len(srcIPs) != 3 {
		t.Fatalf("source pool = %d distinct IPs, want 3", len(srcIPs))
	}
}

func TestInternalTrafficMarkedAndNeverDropped(t *testing.T) {
	rs, f, recs := setup(t, 1)
	announceBlackhole(t, rs, 100, "203.0.113.5/32")
	b := baseBatch(t, 50)
	b.Internal = true
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	for _, r := range *recs {
		if r.DstMAC != InternalMAC {
			t.Fatalf("DstMAC = %v, want internal MAC", r.DstMAC)
		}
	}
	if st := f.Stats(); st.PacketsDropped != 0 {
		t.Fatalf("internal traffic counted as dropped: %+v", st)
	}
}

func TestInjectValidation(t *testing.T) {
	_, f, recs := setup(t, 1)
	b := baseBatch(t, 10)
	b.PacketSize = 0
	if err := f.Inject(b); err == nil {
		t.Fatal("zero packet size accepted")
	}
	b = baseBatch(t, 0)
	if err := f.Inject(b); err != nil || len(*recs) != 0 {
		t.Fatal("empty batch should be a silent no-op")
	}
}

func TestNewValidation(t *testing.T) {
	rs := routeserver.New(rsASN, 1)
	sink := func(*ipfix.RecordBatch) error { return nil }
	if _, err := New(nil, 10, stats.NewRNG(1), sink); err == nil {
		t.Fatal("nil route server accepted")
	}
	if _, err := New(rs, 10, stats.NewRNG(1), nil); err == nil {
		t.Fatal("nil sink accepted")
	}
	if _, err := New(rs, 0, stats.NewRNG(1), sink); err == nil {
		t.Fatal("rate 0 accepted")
	}
}

func TestMemberMACDeterministicAndDistinct(t *testing.T) {
	if MemberMAC(100) == MemberMAC(200) {
		t.Fatal("member MACs collide")
	}
	if MemberMAC(100) != MemberMAC(100) {
		t.Fatal("member MAC not deterministic")
	}
	if MemberMAC(100) == BlackholeMAC || MemberMAC(100) == InternalMAC {
		t.Fatal("member MAC collides with special MAC")
	}
}

func TestBilateralDropOverridesRouteServer(t *testing.T) {
	_, f, recs := setup(t, 1)
	// No route-server blackhole at all; bilateral agreement drops anyway.
	b := baseBatch(t, 1000)
	b.BilateralDropFraction = 1
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	for _, r := range *recs {
		if r.DstMAC != BlackholeMAC {
			t.Fatal("bilateral blackhole not applied")
		}
	}
	if st := f.Stats(); st.PacketsDropped != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBilateralDropClamped(t *testing.T) {
	_, f, _ := setup(t, 1)
	b := baseBatch(t, 10)
	b.BilateralDropFraction = 5 // clamped to 1
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.PacketsDropped != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlowSpecDropsOnlyMatchingTraffic(t *testing.T) {
	rs, f, recs := setup(t, 1)
	// Victim announces a FlowSpec discard for UDP from NTP's source port;
	// peer 200 must support FlowSpec for the rule to bite.
	err := rs.ProcessFlowSpec(time.Unix(0, 0), 100, &bgp.FlowSpecUpdate{
		Announced: []*bgp.FlowRule{{
			Dst:      bgp.MustParsePrefix("203.0.113.5/32"),
			HasDst:   true,
			Protos:   []uint8{17},
			SrcPorts: []uint16{123},
		}},
		ExtComms: []bgp.ExtCommunity{bgp.TrafficRateDiscard},
	})
	if err != nil {
		t.Fatal(err)
	}
	// setup's peer 200 has no FlowSpec support; re-create with support.
	rs2 := routeserver.New(rsASN, 1)
	rs2.AddPeer(routeserver.Peer{ASN: 100, Policy: routeserver.DefaultPolicy()})
	rs2.AddPeer(routeserver.Peer{ASN: 200, Policy: routeserver.Policy{
		Standard: routeserver.AcceptFull, FlowSpec: routeserver.AcceptFull,
	}})
	var recs2 []ipfix.FlowRecord
	f2, err := New(rs2, 1, stats.NewRNG(7), func(b *ipfix.RecordBatch) error {
		recs2 = append(recs2, b.Recs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = rs2.ProcessFlowSpec(time.Unix(0, 0), 100, &bgp.FlowSpecUpdate{
		Announced: []*bgp.FlowRule{{
			Dst:      bgp.MustParsePrefix("203.0.113.5/32"),
			HasDst:   true,
			Protos:   []uint8{17},
			SrcPorts: []uint16{123},
		}},
		ExtComms: []bgp.ExtCommunity{bgp.TrafficRateDiscard},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Attack traffic (UDP src 123): dropped.
	atk := baseBatch(t, 100)
	if err := f2.Inject(atk); err != nil {
		t.Fatal(err)
	}
	// Legitimate traffic (TCP to 443): forwarded.
	legit := baseBatch(t, 100)
	legit.Proto = 6
	legit.SrcPort = 33333
	legit.DstPort = 443
	if err := f2.Inject(legit); err != nil {
		t.Fatal(err)
	}
	var dropped, forwarded int
	for _, r := range recs2 {
		if r.DstMAC == BlackholeMAC {
			dropped++
			if r.Proto != 17 {
				t.Fatalf("non-UDP packet dropped by flowspec: %+v", r)
			}
		} else {
			forwarded++
		}
	}
	if dropped != 100 || forwarded != 100 {
		t.Fatalf("dropped=%d forwarded=%d, want 100/100", dropped, forwarded)
	}
	if st := f2.Stats(); st.PacketsDropped != 100 {
		t.Fatalf("stats = %+v", st)
	}
	_ = f
	_ = recs
}
