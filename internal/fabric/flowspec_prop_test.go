package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/ipfix"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

// The FlowSpec matching properties. The route server keeps per-peer rule
// lists pre-sorted by precedence so the fabric's hot path is a linear
// scan with early exit; these tests pin that optimized path against a
// naive reference matcher that scans every rule and applies the
// documented precedence (most-specific destination first, canonical wire
// encoding as the tie breaker) from first principles.

// fsCatalog is a fixed set of overlapping discard rules, all protecting
// the 203.0.113.0/24 test space of AS 100. Overlaps are deliberate:
// several /32s on the same host, /25s competing with the covering /24,
// port lists that intersect.
func fsCatalog() []*bgp.FlowRule {
	p := bgp.MustParsePrefix
	return []*bgp.FlowRule{
		{Dst: p("203.0.113.0/24"), HasDst: true},
		{Dst: p("203.0.113.5/32"), HasDst: true, Protos: []uint8{17}},
		{Dst: p("203.0.113.5/32"), HasDst: true, Protos: []uint8{17}, SrcPorts: []uint16{123}},
		{Dst: p("203.0.113.5/32"), HasDst: true, Protos: []uint8{17}, DstPorts: []uint16{40000}},
		{Dst: p("203.0.113.0/25"), HasDst: true, Protos: []uint8{6}, DstPorts: []uint16{443}},
		{Dst: p("203.0.113.5/32"), HasDst: true, SrcPorts: []uint16{53, 123}},
		{Dst: p("203.0.113.128/25"), HasDst: true},
		{Dst: p("203.0.113.7/32"), HasDst: true, Protos: []uint8{17}, SrcPorts: []uint16{11211}},
	}
}

func ruleWire(t *testing.T, r *bgp.FlowRule) string {
	t.Helper()
	w, err := bgp.EncodeFlowRule(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(w)
}

// refMatch is the reference matcher: scan all rules, keep every match,
// pick the winner by (longest destination prefix, smallest canonical
// wire encoding). Nil when nothing matches.
func refMatch(t *testing.T, rules []*bgp.FlowRule, dstIP uint32, proto uint8, srcPort, dstPort uint16) *bgp.FlowRule {
	t.Helper()
	var best *bgp.FlowRule
	var bestWire string
	for _, r := range rules {
		if !r.Matches(dstIP, proto, srcPort, dstPort) {
			continue
		}
		wire := ruleWire(t, r)
		if best == nil || r.Dst.Len > best.Dst.Len ||
			(r.Dst.Len == best.Dst.Len && wire < bestWire) {
			best, bestWire = r, wire
		}
	}
	return best
}

// fsServer builds a route server with AS 100 as the (space-registered)
// originator, AS 200 as a FlowSpec-capable importer and AS 300 as a
// FlowSpec-oblivious member, then announces the given rules from AS 100
// one update at a time in slice order.
func fsServer(t *testing.T, rules []*bgp.FlowRule) *routeserver.Server {
	t.Helper()
	rs := routeserver.New(rsASN, 1)
	peers := []routeserver.Peer{
		{ASN: 100, Policy: routeserver.DefaultPolicy(),
			Space: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.0/24")}},
		{ASN: 200, Policy: routeserver.Policy{
			Standard: routeserver.AcceptFull, FlowSpec: routeserver.AcceptFull}},
		{ASN: 300, Policy: routeserver.DefaultPolicy()},
	}
	for _, p := range peers {
		if err := rs.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rules {
		err := rs.ProcessFlowSpec(time.Unix(0, 0), 100, &bgp.FlowSpecUpdate{
			Announced: []*bgp.FlowRule{r},
			ExtComms:  []bgp.ExtCommunity{bgp.TrafficRateDiscard},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

// wireOrNil fingerprints a matcher result for comparison across servers
// that hold distinct copies of semantically equal rules.
func wireOrNil(t *testing.T, r *bgp.FlowRule) string {
	t.Helper()
	if r == nil {
		return ""
	}
	return ruleWire(t, r)
}

// TestFlowSpecMatchProperty drives testing/quick over rule subsets and
// packet headers: the route server's precedence-ordered matcher, the
// same subset installed in reverse order, and the end-to-end fabric drop
// decision must all agree with the reference matcher.
func TestFlowSpecMatchProperty(t *testing.T) {
	catalog := fsCatalog()
	ips := []string{"203.0.113.5", "203.0.113.7", "203.0.113.77",
		"203.0.113.130", "203.0.113.200", "198.51.100.9"}
	dstIPs := make([]uint32, len(ips))
	for i, s := range ips {
		a, err := bgp.ParseAddr(s)
		if err != nil {
			t.Fatal(err)
		}
		dstIPs[i] = a
	}
	protos := []uint8{17, 6, 1}
	srcPorts := []uint16{123, 53, 11211, 33333}
	dstPorts := []uint16{40000, 443, 80}

	prop := func(mask, ipSel, protoSel, srcSel, dstSel uint8) bool {
		var subset []*bgp.FlowRule
		for i, r := range catalog {
			if mask&(1<<i) != 0 {
				subset = append(subset, r)
			}
		}
		reversed := make([]*bgp.FlowRule, len(subset))
		for i, r := range subset {
			reversed[len(subset)-1-i] = r
		}
		dstIP := dstIPs[int(ipSel)%len(dstIPs)]
		proto := protos[int(protoSel)%len(protos)]
		srcPort := srcPorts[int(srcSel)%len(srcPorts)]
		dstPort := dstPorts[int(dstSel)%len(dstPorts)]

		want := wireOrNil(t, refMatch(t, subset, dstIP, proto, srcPort, dstPort))
		rs := fsServer(t, subset)
		if got := wireOrNil(t, rs.MatchingFlowRule(200, dstIP, proto, srcPort, dstPort)); got != want {
			t.Logf("forward install: got %q want %q", got, want)
			return false
		}
		// Precedence must not depend on announcement order.
		rsRev := fsServer(t, reversed)
		if got := wireOrNil(t, rsRev.MatchingFlowRule(200, dstIP, proto, srcPort, dstPort)); got != want {
			t.Logf("reverse install: got %q want %q", got, want)
			return false
		}
		// The member that never opted into FlowSpec imports nothing.
		if rs.MatchingFlowRule(300, dstIP, proto, srcPort, dstPort) != nil {
			t.Log("FlowSpec-oblivious peer imported a rule")
			return false
		}

		// End to end: a batch through the fabric (ingress 200, egress 300,
		// no RTBH route installed) is blackholed exactly when the
		// reference matcher finds a discard rule.
		var recs []ipfix.FlowRecord
		f, err := New(rs, 1, stats.NewRNG(uint64(mask)+1), func(b *ipfix.RecordBatch) error {
			recs = append(recs, b.Recs...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		b := &Batch{
			Time: time.Unix(1000, 0), Duration: time.Second,
			IngressAS: 200, EgressAS: 300,
			SrcIP: 0x08080808, DstIP: dstIP,
			SrcPort: srcPort, DstPort: dstPort, Proto: proto,
			PacketSize: 468, Packets: 4,
		}
		if err := f.Inject(b); err != nil {
			t.Fatal(err)
		}
		if len(recs) != 4 {
			t.Logf("sampled %d records at rate 1, want 4", len(recs))
			return false
		}
		for _, r := range recs {
			if dropped := r.DstMAC == BlackholeMAC; dropped != (want != "") {
				t.Logf("record dropped=%v, reference match %q", dropped, want)
				return false
			}
		}
		wantDropped := int64(0)
		if want != "" {
			wantDropped = 4
		}
		if st := f.Stats(); st.PacketsDropped != wantDropped {
			t.Logf("PacketsDropped=%d, want %d", st.PacketsDropped, wantDropped)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Errorf("flowspec matcher diverges from reference: %v", err)
	}
}

// TestFlowSpecRulePrecedence pins the precedence order on a deterministic
// table: most-specific destination wins, the canonical wire encoding
// breaks length ties, and the outcome is identical when the rules are
// announced in reverse.
func TestFlowSpecRulePrecedence(t *testing.T) {
	catalog := fsCatalog()
	ip := func(s string) uint32 {
		a, err := bgp.ParseAddr(s)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cases := []struct {
		name                     string
		rules                    []int // catalog indices to install
		dst                      string
		proto                    uint8
		srcPort, dstPort         uint16
		want                     int // winning catalog index, -1 for no match
		wantTieBetween           [2]int
	}{
		{name: "only-covering-slash24", rules: []int{0, 2, 7},
			dst: "203.0.113.77", proto: 17, srcPort: 123, dstPort: 40000, want: 0,
			wantTieBetween: [2]int{-1, -1}},
		{name: "host-rule-beats-slash24", rules: []int{0, 2, 7},
			dst: "203.0.113.5", proto: 17, srcPort: 123, dstPort: 40000, want: 2,
			wantTieBetween: [2]int{-1, -1}},
		{name: "slash25-beats-slash24", rules: []int{0, 1, 4},
			dst: "203.0.113.6", proto: 6, srcPort: 33333, dstPort: 443, want: 4,
			wantTieBetween: [2]int{-1, -1}},
		{name: "upper-slash25", rules: []int{0, 6},
			dst: "203.0.113.130", proto: 6, srcPort: 33333, dstPort: 80, want: 6,
			wantTieBetween: [2]int{-1, -1}},
		{name: "no-match-outside-space", rules: []int{0, 1, 2, 3, 4, 5, 6, 7},
			dst: "198.51.100.9", proto: 17, srcPort: 123, dstPort: 40000, want: -1,
			wantTieBetween: [2]int{-1, -1}},
		{name: "proto-mismatch-falls-back", rules: []int{0, 1},
			dst: "203.0.113.5", proto: 6, srcPort: 33333, dstPort: 80, want: 0,
			wantTieBetween: [2]int{-1, -1}},
		// Two /32s both match: the winner is whichever encodes smaller,
		// asserted explicitly against the canonical encodings.
		{name: "equal-length-wire-tiebreak", rules: []int{1, 5},
			dst: "203.0.113.5", proto: 17, srcPort: 53, dstPort: 80, want: -2,
			wantTieBetween: [2]int{1, 5}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			subset := make([]*bgp.FlowRule, len(tc.rules))
			for i, idx := range tc.rules {
				subset[i] = catalog[idx]
			}
			reversed := make([]*bgp.FlowRule, len(subset))
			for i, r := range subset {
				reversed[len(subset)-1-i] = r
			}
			want := ""
			switch {
			case tc.want >= 0:
				want = ruleWire(t, catalog[tc.want])
			case tc.want == -2:
				a := ruleWire(t, catalog[tc.wantTieBetween[0]])
				b := ruleWire(t, catalog[tc.wantTieBetween[1]])
				want = a
				if b < a {
					want = b
				}
			}
			for _, rules := range [][]*bgp.FlowRule{subset, reversed} {
				rs := fsServer(t, rules)
				got := wireOrNil(t, rs.MatchingFlowRule(200, ip(tc.dst), tc.proto, tc.srcPort, tc.dstPort))
				if got != want {
					t.Errorf("MatchingFlowRule = %q, want %q", got, want)
				}
			}
		})
	}
}

// TestFlowSpecOriginatorEgressEnforced pins the egress half of the
// enforcement model: the route server never reflects a rule back to its
// originator, yet traffic leaving the fabric toward the originator's own
// prefix is filtered by the rule it authored — even when the ingress
// member never imported it.
func TestFlowSpecOriginatorEgressEnforced(t *testing.T) {
	rule := &bgp.FlowRule{
		Dst: bgp.MustParsePrefix("203.0.113.5/32"), HasDst: true,
		Protos: []uint8{17}, SrcPorts: []uint16{123},
	}
	rs := fsServer(t, []*bgp.FlowRule{rule})
	// The originator itself never imports its own rule...
	if rs.MatchingFlowRule(100, ip2(t, "203.0.113.5"), 17, 123, 40000) != nil {
		t.Fatal("rule reflected back to its originator")
	}
	// ...but its own edge matches it.
	if rs.OwnMatchingFlowRule(100, ip2(t, "203.0.113.5"), 17, 123, 40000) == nil {
		t.Fatal("originator's own edge does not match its rule")
	}

	// Ingress 300 has no FlowSpec support; egress 100 is the originator.
	var recs []ipfix.FlowRecord
	f, err := New(rs, 1, stats.NewRNG(11), func(b *ipfix.RecordBatch) error {
		recs = append(recs, b.Recs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b := &Batch{
		Time: time.Unix(1000, 0), Duration: time.Second,
		IngressAS: 300, EgressAS: 100,
		SrcIP: 0x08080808, DstIP: ip2(t, "203.0.113.5"),
		SrcPort: 123, DstPort: 40000, Proto: 17,
		PacketSize: 468, Packets: 10,
	}
	if err := f.Inject(b); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("sampled %d records, want 10", len(recs))
	}
	for _, r := range recs {
		if r.DstMAC != BlackholeMAC {
			t.Fatal("attack packet toward the originator's prefix not discarded at its egress")
		}
	}
	if st := f.Stats(); st.PacketsDropped != 10 {
		t.Fatalf("PacketsDropped = %d, want 10", st.PacketsDropped)
	}
}

func ip2(t *testing.T, s string) uint32 {
	t.Helper()
	a, err := bgp.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
