// Package faultnet is a seeded, fully deterministic impairment layer for
// the live transports: a net.Conn middleware for the BGP-over-TCP
// sessions (byte-level stalls, mid-handshake resets, connection kills)
// and a datagram hook for the IPFIX-over-UDP export path (drops,
// duplicates, reorders, delays, one-way partitions).
//
// Determinism is the design constraint everything else bends around.
// Every fault decision is drawn from a stats.RNG substream keyed by the
// plan seed plus a stable stream label (the peer ASN for TCP, a fixed
// label for UDP), and decisions are indexed by logical position in the
// stream — the j-th UPDATE a peer writes, the a-th dial attempt, the
// i-th exported data datagram — never by wall-clock time. Two runs with
// the same plan seed therefore inject byte-identical fault schedules
// (compare Journal outputs), and the run's observable outcome is
// identical too, because the taxonomy only admits faults whose
// consequences are deterministic:
//
//   - TCP kills happen on message boundaries via an orderly close, so
//     every byte already written is delivered before the FIN; nothing is
//     half-lost. An abortive RST-style reset mid-UPDATE is deliberately
//     excluded: TCP gives no deterministic guarantee about which prefix
//     of in-flight data survives an RST, so its outcome could differ
//     between runs.
//   - TCP resets abort the open exchange instead: half an OPEN is
//     written, then the connection dies. No session existed, so no
//     application data was at risk.
//   - UDP faults are decided per data datagram and executed inline on
//     the (single) export goroutine; loopback UDP preserves send order,
//     so the collector observes the same arrival sequence every run.
//     A reorder is expressed as a deterministic exchange with the next
//     sent datagram rather than a background re-timing.
//
// Every injected fault increments a counter in Metrics (registered under
// "faultnet.*"), so tests can reconcile injected faults against the live
// layer's observed recovery exactly: reconnects against kills, collector
// sequence-gap drops against injected drops plus late reorders.
package faultnet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Profile names a fault mix. Profiles fix the impairment probabilities;
// the plan seed fixes which positions in the streams they hit.
type Profile string

const (
	// ProfileNone installs the wrappers but schedules no faults: every
	// decision point takes the fast inactive path. It exists to measure
	// the overhead of the middleware itself (BenchmarkLiveWithChaos/none).
	ProfileNone Profile = "none"
	// ProfileLossyUDP impairs only the IPFIX export path: random drops,
	// duplicates, reorders and pacing delays.
	ProfileLossyUDP Profile = "lossy-udp"
	// ProfileFlappingTCP impairs only the BGP sessions: connection kills,
	// mid-handshake resets, and byte-level write stalls.
	ProfileFlappingTCP Profile = "flapping-tcp"
	// ProfilePartitionHeal opens one-way export partitions (windows of
	// consecutive datagrams silently blackholed) that heal on their own.
	ProfilePartitionHeal Profile = "partition-heal"
	// ProfileMixed turns everything on at once.
	ProfileMixed Profile = "mixed"
)

// ProfileNames lists the accepted profile names, for CLI usage strings.
func ProfileNames() []string {
	return []string{
		string(ProfileNone), string(ProfileLossyUDP), string(ProfileFlappingTCP),
		string(ProfilePartitionHeal), string(ProfileMixed),
	}
}

// ParseProfile validates a profile name.
func ParseProfile(s string) (Profile, error) {
	for _, n := range ProfileNames() {
		if s == n {
			return Profile(s), nil
		}
	}
	return "", fmt.Errorf("faultnet: unknown chaos profile %q (want one of %s)",
		s, strings.Join(ProfileNames(), ", "))
}

// params are the per-profile impairment probabilities and magnitudes.
// Stall and delay magnitudes are kept orders of magnitude below the BGP
// hold time: a stall that outlived the hold timer would expire the
// session mid-message and lose the half-read UPDATE, which is exactly
// the nondeterministic outcome the taxonomy excludes.
type params struct {
	// TCP, decided per written UPDATE (killPerUpdate, stallPerUpdate)
	// or per dial attempt (resetPerAttempt).
	killPerUpdate   float64
	resetPerAttempt float64
	stallPerUpdate  float64
	stallMin        time.Duration
	stallMax        time.Duration

	// UDP, decided per exported data datagram.
	dropPerDatagram    float64
	dupPerDatagram     float64
	reorderPerDatagram float64
	delayPerDatagram   float64
	delayMin           time.Duration
	delayMax           time.Duration
	partitionStart     float64 // probability a partition opens at this datagram
	partitionMin       int     // window length bounds, in datagrams
	partitionMax       int
}

func (p Profile) params() params {
	var par params
	switch p {
	case ProfileLossyUDP:
		par.dropPerDatagram = 0.08
		par.dupPerDatagram = 0.05
		par.reorderPerDatagram = 0.05
		par.delayPerDatagram = 0.10
		par.delayMin, par.delayMax = 50*time.Microsecond, 500*time.Microsecond
	case ProfileFlappingTCP:
		par.killPerUpdate = 0.06
		par.resetPerAttempt = 0.25
		par.stallPerUpdate = 0.10
		par.stallMin, par.stallMax = 200*time.Microsecond, 2*time.Millisecond
	case ProfilePartitionHeal:
		par.partitionStart = 0.015
		par.partitionMin, par.partitionMax = 8, 40
	case ProfileMixed:
		lossy, flap, part := ProfileLossyUDP.params(), ProfileFlappingTCP.params(), ProfilePartitionHeal.params()
		par = lossy
		par.killPerUpdate = flap.killPerUpdate
		par.resetPerAttempt = flap.resetPerAttempt
		par.stallPerUpdate = flap.stallPerUpdate
		par.stallMin, par.stallMax = flap.stallMin, flap.stallMax
		par.partitionStart = part.partitionStart
		par.partitionMin, par.partitionMax = part.partitionMin, part.partitionMax
	}
	return par
}

// Plan is one run's fault schedule: a seed, a profile, the metrics the
// injections count into, and a journal of every injected fault. A Plan
// may impair any number of TCP sessions plus one UDP export stream; all
// of its methods are safe for concurrent use.
type Plan struct {
	Seed    uint64
	Profile Profile
	// M counts every injected fault; register it on the run's obs
	// registry to reconcile injections against observed recovery.
	M *Metrics

	par params

	mu      sync.Mutex
	tcp     map[uint32]*TCPSchedule
	udp     *UDPSchedule
	journal map[string][]string
}

// NewPlan returns the deterministic fault plan for (seed, profile).
func NewPlan(seed uint64, profile Profile) *Plan {
	return &Plan{
		Seed:    seed,
		Profile: profile,
		M:       NewMetrics(),
		par:     profile.params(),
		tcp:     make(map[uint32]*TCPSchedule),
		journal: make(map[string][]string),
	}
}

// Stream labels for substream derivation. The golden-ratio multiplier
// decorrelates adjacent labels the same way stats.RNG.Fork does.
const (
	streamTCPUpdates  = 1 << 40
	streamTCPAttempts = 2 << 40
	streamUDP         = 3 << 40
)

func (p *Plan) substream(label uint64) *stats.RNG {
	return stats.NewRNG(p.Seed ^ (label * 0x9e3779b97f4a7c15))
}

// TCP returns the fault schedule for one peer's BGP sessions. The
// schedule is created on first use and is deterministic in (seed, peer):
// the set of peers asking, and the order they ask in, does not perturb
// any schedule.
func (p *Plan) TCP(peer uint32) *TCPSchedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.tcp[peer]
	if !ok {
		s = &TCPSchedule{
			plan:   p,
			peer:   peer,
			updRNG: p.substream(streamTCPUpdates + uint64(peer)),
			attRNG: p.substream(streamTCPAttempts + uint64(peer)),
		}
		p.tcp[peer] = s
	}
	return s
}

// UDP returns the fault schedule for the IPFIX export stream.
func (p *Plan) UDP() *UDPSchedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.udp == nil {
		p.udp = &UDPSchedule{plan: p, rng: p.substream(streamUDP)}
	}
	return p.udp
}

// note appends one journal line to the named stream. Lines within a
// stream are appended in injection order, which is deterministic per
// stream (each stream is driven by a single logical writer).
func (p *Plan) note(stream, format string, args ...any) {
	p.mu.Lock()
	p.journal[stream] = append(p.journal[stream], fmt.Sprintf(format, args...))
	p.mu.Unlock()
}

// Journal renders every injected fault, grouped by stream and sorted by
// stream name. Two runs of the same plan seed and profile against the
// same workload produce byte-identical journals — the test suite's
// schedule-determinism oracle.
func (p *Plan) Journal() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	streams := make([]string, 0, len(p.journal))
	for s := range p.journal {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	var b strings.Builder
	for _, s := range streams {
		fmt.Fprintf(&b, "== %s ==\n", s)
		for _, line := range p.journal[s] {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
