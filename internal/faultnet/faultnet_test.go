package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/bgp"
)

// fakeConn records everything written to it.
type fakeConn struct {
	buf    bytes.Buffer
	closed bool
}

func (f *fakeConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (f *fakeConn) Write(b []byte) (int, error)      { return f.buf.Write(b) }
func (f *fakeConn) Close() error                     { f.closed = true; return nil }
func (f *fakeConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (f *fakeConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (f *fakeConn) SetDeadline(time.Time) error      { return nil }
func (f *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (f *fakeConn) SetWriteDeadline(time.Time) error { return nil }

// fakeUpdate builds a distinct, framed BGP UPDATE payload for index i.
func fakeUpdate(i int) []byte {
	body := []byte(fmt.Sprintf("update-%06d", i))
	msg := make([]byte, msgTypeOffset+1+len(body))
	msg[msgTypeOffset] = bgp.MsgUpdate
	copy(msg[msgTypeOffset+1:], body)
	return msg
}

func TestParseProfile(t *testing.T) {
	for _, n := range ProfileNames() {
		p, err := ParseProfile(n)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", n, err)
		}
		if string(p) != n {
			t.Fatalf("ParseProfile(%q) = %q", n, p)
		}
	}
	if _, err := ParseProfile("bogus"); err == nil {
		t.Fatal("ParseProfile(bogus) accepted")
	}
}

// driveTCP pushes n updates through a peer's schedule the way a speaker
// would: re-wrapping a fresh conn and resending whenever the plan kills
// or resets the current one. It returns the per-conn transcripts.
func driveTCP(t *testing.T, plan *Plan, peer uint32, n int) []*fakeConn {
	t.Helper()
	sched := plan.TCP(peer)
	fc := &fakeConn{}
	conns := []*fakeConn{fc}
	conn := sched.Wrap(fc)
	for i := 0; i < n; i++ {
		msg := fakeUpdate(i)
		for {
			wn, err := conn.Write(msg)
			if err == nil {
				if wn != len(msg) {
					t.Fatalf("update %d: short write %d of %d without error", i, wn, len(msg))
				}
				break
			}
			if !errors.Is(err, ErrConnKilled) {
				t.Fatalf("update %d: unexpected error %v", i, err)
			}
			if wn != 0 {
				t.Fatalf("update %d: ErrConnKilled reported %d bytes written", i, wn)
			}
			fc = &fakeConn{}
			conns = append(conns, fc)
			conn = sched.Wrap(fc)
		}
	}
	return conns
}

func TestTCPKillAndResetSemantics(t *testing.T) {
	plan := NewPlan(7, ProfileFlappingTCP)
	const n = 400
	conns := driveTCP(t, plan, 64500, n)

	kills := plan.M.TCPKills.Value()
	resets := plan.M.TCPResets.Value()
	if kills == 0 || resets == 0 {
		t.Fatalf("workload too tame: kills=%d resets=%d", kills, resets)
	}
	// Every replacement conn exists because of exactly one kill or reset.
	if got := int64(len(conns) - 1); got != kills+resets {
		t.Fatalf("reconnects=%d, want kills+resets=%d", got, kills+resets)
	}
	// Loss-freedom: every update was fully written exactly once across
	// all conns (reset truncations only ever leave a strict prefix).
	var all []byte
	for _, c := range conns {
		all = append(all, c.buf.Bytes()...)
	}
	for i := 0; i < n; i++ {
		if got := bytes.Count(all, fakeUpdate(i)); got != 1 {
			t.Fatalf("update %d written %d times, want exactly 1", i, got)
		}
	}
	// A killed conn must have been closed so its FIN flushes the tail.
	closed := 0
	for _, c := range conns[:len(conns)-1] {
		if c.closed {
			closed++
		}
	}
	if int64(closed) != kills+resets {
		t.Fatalf("closed %d dead conns, want %d", closed, kills+resets)
	}
}

func TestTCPWriteAfterKill(t *testing.T) {
	plan := NewPlan(7, ProfileFlappingTCP)
	sched := plan.TCP(64501)
	fc := &fakeConn{}
	conn := sched.Wrap(fc).(*Conn)
	conn.killed = true
	if n, err := conn.Write(fakeUpdate(0)); n != 0 || !errors.Is(err, ErrConnKilled) {
		t.Fatalf("write after kill = (%d, %v), want (0, ErrConnKilled)", n, err)
	}
	if fc.buf.Len() != 0 {
		t.Fatalf("write after kill leaked %d bytes", fc.buf.Len())
	}
}

func TestTCPKeepalivesDoNotPerturbSchedule(t *testing.T) {
	// Two identical workloads, except the second interleaves keepalives
	// between updates: the fault journal must be identical because the
	// schedule is indexed by UPDATE count, not write count.
	run := func(keepalives bool) string {
		plan := NewPlan(11, ProfileFlappingTCP)
		sched := plan.TCP(64499)
		conn := sched.Wrap(&fakeConn{})
		ka := make([]byte, msgTypeOffset+1)
		ka[msgTypeOffset] = bgp.MsgKeepalive
		for i := 0; i < 200; i++ {
			if keepalives {
				if _, err := conn.Write(ka); errors.Is(err, ErrConnKilled) {
					conn = sched.Wrap(&fakeConn{})
					conn.Write(ka) //nolint:errcheck
				}
			}
			msg := fakeUpdate(i)
			for {
				if _, err := conn.Write(msg); err == nil {
					break
				}
				conn = sched.Wrap(&fakeConn{})
			}
		}
		return plan.Journal()
	}
	plain, mixed := run(false), run(true)
	// Keepalives add reconnect attempts after kills (the keepalive write
	// itself may hit the dead conn), so attempt-stream lines may differ;
	// the update-indexed kill/stall schedule must not.
	filter := func(j string) string {
		var keep []string
		for _, line := range bytes.Split([]byte(j), []byte("\n")) {
			if bytes.Contains(line, []byte("update ")) {
				keep = append(keep, string(line))
			}
		}
		var b bytes.Buffer
		for _, l := range keep {
			b.WriteString(l)
			b.WriteByte('\n')
		}
		return b.String()
	}
	if filter(plain) != filter(mixed) {
		t.Fatalf("keepalive interleaving changed the update fault schedule:\n-- without --\n%s\n-- with --\n%s", plain, mixed)
	}
}

// driveUDP pushes n single-record datagrams through the schedule and
// returns the raw transmit transcript, one entry per datagram written.
func driveUDP(t *testing.T, u *UDPSchedule, n int) [][]byte {
	t.Helper()
	var out [][]byte
	write := func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		out = append(out, cp)
		return nil
	}
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		// Reuse the buffer across sends, as the exporter's encoder does:
		// the schedule must copy anything it holds back.
		payload := fmt.Appendf(buf[:0], "datagram-%06d", i)
		if err := u.Send(payload, 1, write); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	if err := u.Flush(write); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return out
}

func TestUDPFateAccounting(t *testing.T) {
	plan := NewPlan(3, ProfileLossyUDP)
	const n = 2000
	out := driveUDP(t, plan.UDP(), n)
	m := plan.M
	for name, c := range map[string]int64{
		"drops":    m.DroppedDatagrams.Value(),
		"dups":     m.Duplicated.Value(),
		"reorders": m.ReorderHolds.Value(),
		"delays":   m.Delayed.Value(),
	} {
		if c == 0 {
			t.Errorf("lossy-udp injected zero %s over %d datagrams", name, n)
		}
	}
	// Conservation: every datagram is transmitted exactly once, except
	// dropped ones (zero times) and duplicated ones (twice). Held
	// datagrams are released late or at flush — still exactly once.
	want := int64(n) - m.DroppedDatagrams.Value() + m.Duplicated.Value()
	if int64(len(out)) != want {
		t.Fatalf("raw transmissions = %d, want %d", len(out), want)
	}
	// Single-record datagrams: record counters mirror datagram counters.
	if m.DroppedRecords.Value() != m.DroppedDatagrams.Value() {
		t.Fatalf("dropped records %d != dropped datagrams %d", m.DroppedRecords.Value(), m.DroppedDatagrams.Value())
	}
	if m.ReorderLateRecords.Value() != m.ReorderLateDatagrams.Value() {
		t.Fatalf("late records %d != late datagrams %d", m.ReorderLateRecords.Value(), m.ReorderLateDatagrams.Value())
	}
	if m.ReorderLateDatagrams.Value() > m.ReorderHolds.Value() {
		t.Fatalf("late releases %d exceed holds %d", m.ReorderLateDatagrams.Value(), m.ReorderHolds.Value())
	}
	if m.PartitionDroppedDatagrams.Value() != 0 || m.Partitions.Value() != 0 {
		t.Fatal("lossy-udp opened a partition")
	}
}

func TestUDPPartitionHeal(t *testing.T) {
	plan := NewPlan(5, ProfilePartitionHeal)
	const n = 3000
	out := driveUDP(t, plan.UDP(), n)
	m := plan.M
	if m.Partitions.Value() == 0 {
		t.Fatalf("no partition opened over %d datagrams", n)
	}
	if m.PartitionDroppedDatagrams.Value() != m.DroppedDatagrams.Value() {
		t.Fatalf("partition drops %d != total drops %d (partition-heal injects nothing else)",
			m.PartitionDroppedDatagrams.Value(), m.DroppedDatagrams.Value())
	}
	if min := m.Partitions.Value() * 8; m.PartitionDroppedDatagrams.Value() < min {
		t.Fatalf("%d partitions dropped only %d datagrams, want >= %d", m.Partitions.Value(), m.PartitionDroppedDatagrams.Value(), min)
	}
	if int64(len(out)) != int64(n)-m.DroppedDatagrams.Value() {
		t.Fatalf("raw transmissions = %d, want %d", len(out), int64(n)-m.DroppedDatagrams.Value())
	}
}

func TestUDPHoldCopiesPayloadAndFlushReleasesInOrder(t *testing.T) {
	plan := NewPlan(1, ProfileLossyUDP)
	u := plan.UDP()
	var out [][]byte
	write := func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		out = append(out, cp)
		return nil
	}
	buf := make([]byte, 64)
	held := -1
	for i := 0; i < 5000 && held < 0; i++ {
		payload := fmt.Appendf(buf[:0], "datagram-%06d", i)
		if err := u.Send(payload, 1, write); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
		if u.held != nil {
			held = i
		}
	}
	if held < 0 {
		t.Fatal("no reorder hold within 5000 datagrams")
	}
	lateBefore := plan.M.ReorderLateDatagrams.Value()
	if err := u.Flush(write); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := string(out[len(out)-1])
	if want := fmt.Sprintf("datagram-%06d", held); got != want {
		t.Fatalf("flushed datagram = %q, want %q (held payload must be copied, not aliased)", got, want)
	}
	if plan.M.ReorderLateDatagrams.Value() != lateBefore {
		t.Fatal("flush-released hold counted as late")
	}
	if u.held != nil {
		t.Fatal("hold survived Flush")
	}
}

func TestScheduleDeterminism(t *testing.T) {
	// Two plans with the same seed, driven through an identical workload,
	// must produce byte-identical journals and raw transcripts; a third
	// plan with a different seed must not.
	runPlan := func(seed uint64) (string, []byte) {
		plan := NewPlan(seed, ProfileMixed)
		conns := driveTCP(t, plan, 64500, 250)
		_ = driveTCP(t, plan, 64501, 250)
		var raw []byte
		for _, c := range conns {
			raw = append(raw, c.buf.Bytes()...)
		}
		for _, d := range driveUDP(t, plan.UDP(), 1500) {
			raw = append(raw, d...)
		}
		return plan.Journal(), raw
	}
	j1, raw1 := runPlan(42)
	j2, raw2 := runPlan(42)
	if j1 != j2 {
		t.Fatalf("same seed, different journals:\n-- run 1 --\n%s\n-- run 2 --\n%s", j1, j2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("same seed, different raw transcripts")
	}
	if j1 == "" {
		t.Fatal("mixed profile injected nothing")
	}
	j3, _ := runPlan(43)
	if j1 == j3 {
		t.Fatal("different seeds produced identical journals")
	}
}

func TestPlanPeerOrderIndependence(t *testing.T) {
	// The order peers first touch the plan must not perturb any
	// schedule: substreams are keyed by (seed, peer), not arrival order.
	journalFor := func(order []uint32) string {
		plan := NewPlan(9, ProfileFlappingTCP)
		for _, p := range order {
			plan.TCP(p)
		}
		for _, p := range order {
			driveTCP(t, plan, p, 120)
		}
		return plan.Journal()
	}
	a := journalFor([]uint32{64500, 64501, 64502})
	b := journalFor([]uint32{64502, 64500, 64501})
	if a != b {
		t.Fatalf("peer arrival order changed schedules:\n-- a --\n%s\n-- b --\n%s", a, b)
	}
}
