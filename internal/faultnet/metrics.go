package faultnet

import "repro/internal/obs"

// Metrics counts every injected fault. Together with the live layer's
// own counters they close the chaos reconciliation equations (see
// DESIGN.md, "Fault injection"):
//
//	live.bgp.reconnects        == faultnet.tcp.kills
//	live.ipfix.dropped_records == faultnet.udp.dropped_records
//	                              + faultnet.udp.reorder_late_records
//	live.ipfix.late_msgs       == faultnet.udp.duplicated
//	                              + faultnet.udp.reorder_late_datagrams
type Metrics struct {
	// TCP session faults.
	TCPKills  obs.Counter // established connections killed on a message boundary
	TCPResets obs.Counter // dial attempts aborted mid-handshake
	TCPStalls obs.Counter // stalled UPDATE writes
	StallNano obs.Counter // total injected stall time, nanoseconds

	// UDP export faults. DroppedRecords/DroppedDatagrams include
	// partition losses; the Partition* counters single that subset out.
	DroppedDatagrams          obs.Counter
	DroppedRecords            obs.Counter
	Duplicated                obs.Counter
	ReorderHolds              obs.Counter // datagrams held back for reordering
	ReorderLateDatagrams      obs.Counter // held datagrams released after a successor (arrive late)
	ReorderLateRecords        obs.Counter
	Delayed                   obs.Counter
	DelayNano                 obs.Counter
	PartitionDroppedDatagrams obs.Counter
	Partitions                obs.Counter // partition windows opened
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// Register exposes every counter on reg under the "faultnet." namespace.
func (m *Metrics) Register(reg *obs.Registry) {
	reg.RegisterCounter("faultnet.tcp.kills", &m.TCPKills)
	reg.RegisterCounter("faultnet.tcp.resets", &m.TCPResets)
	reg.RegisterCounter("faultnet.tcp.stalls", &m.TCPStalls)
	reg.RegisterCounter("faultnet.tcp.stall_nanos", &m.StallNano)
	reg.RegisterCounter("faultnet.udp.dropped_datagrams", &m.DroppedDatagrams)
	reg.RegisterCounter("faultnet.udp.dropped_records", &m.DroppedRecords)
	reg.RegisterCounter("faultnet.udp.duplicated", &m.Duplicated)
	reg.RegisterCounter("faultnet.udp.reorder_holds", &m.ReorderHolds)
	reg.RegisterCounter("faultnet.udp.reorder_late_datagrams", &m.ReorderLateDatagrams)
	reg.RegisterCounter("faultnet.udp.reorder_late_records", &m.ReorderLateRecords)
	reg.RegisterCounter("faultnet.udp.delayed", &m.Delayed)
	reg.RegisterCounter("faultnet.udp.delay_nanos", &m.DelayNano)
	reg.RegisterCounter("faultnet.udp.partition_dropped", &m.PartitionDroppedDatagrams)
	reg.RegisterCounter("faultnet.udp.partitions", &m.Partitions)
}
