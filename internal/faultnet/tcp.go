package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
)

// ErrConnKilled is returned by writes on a connection the fault plan has
// killed. The kill closed the connection cleanly on a message boundary,
// so a write failing with this error wrote nothing: the caller may
// safely resend the same message on the replacement connection without
// risking double delivery.
var ErrConnKilled = errors.New("faultnet: connection killed by fault plan")

// TCPSchedule is the deterministic fault schedule for one peer's BGP
// sessions, shared across that peer's reconnects. Kill and stall
// decisions are indexed by the peer's running UPDATE count (the j-th
// UPDATE the peer ever writes, across all its connections), reset
// decisions by the running dial-attempt count — so the schedule is
// independent of keepalive timing and reconnect latency.
type TCPSchedule struct {
	plan *Plan
	peer uint32

	mu        sync.Mutex
	updRNG    *stats.RNG
	attRNG    *stats.RNG
	updates   int
	attempts  int
	lastReset bool
}

// Wrap installs the middleware on a freshly dialed connection and draws
// the attempt-level decision: whether this attempt's open exchange is
// reset mid-stream. Two consecutive attempts are never both reset, so a
// speaker always makes progress.
func (s *TCPSchedule) Wrap(c net.Conn) net.Conn {
	s.mu.Lock()
	attempt := s.attempts
	s.attempts++
	reset := false
	if p := s.plan.par.resetPerAttempt; p > 0 {
		if s.attRNG.Bool(p) && !s.lastReset {
			reset = true
		}
		s.lastReset = reset
	}
	s.mu.Unlock()
	return &Conn{Conn: c, s: s, attempt: attempt, reset: reset}
}

// Conn is the BGP/TCP impairment middleware. It understands just enough
// BGP framing to recognize whole UPDATE messages (the speaker writes one
// complete message per Write call) and applies the schedule: byte-level
// write stalls, a clean kill after a scheduled UPDATE, or a
// mid-handshake reset that truncates the OPEN.
type Conn struct {
	net.Conn
	s       *TCPSchedule
	attempt int
	reset   bool // abort the next (first) write mid-message
	killed  bool // all further writes fail with ErrConnKilled
}

// BGP message framing: the type byte sits right after the 16-byte marker
// and the 2-byte length (RFC 4271 §4.1).
const msgTypeOffset = 18

func (c *Conn) stream() string { return fmt.Sprintf("tcp/AS%d", c.s.peer) }

// Write applies the schedule to one outbound BGP message.
func (c *Conn) Write(b []byte) (int, error) {
	s := c.s
	s.mu.Lock()
	if c.killed {
		s.mu.Unlock()
		return 0, ErrConnKilled
	}
	if c.reset {
		// Mid-handshake reset: half the message (the OPEN) goes out, then
		// the connection dies. No session was established, so no
		// application data is at risk and the speaker simply retries.
		c.reset = false
		c.killed = true
		s.plan.M.TCPResets.Inc()
		s.plan.note(c.stream(), "attempt %d reset after %d of %d bytes", c.attempt, len(b)/2, len(b))
		s.mu.Unlock()
		if n := len(b) / 2; n > 0 {
			c.Conn.Write(b[:n]) //nolint:errcheck // the connection dies either way
		}
		c.Conn.Close()
		return 0, ErrConnKilled
	}

	par := s.plan.par
	var stall time.Duration
	var kill bool
	if len(b) > msgTypeOffset && b[msgTypeOffset] == bgp.MsgUpdate &&
		(par.killPerUpdate > 0 || par.stallPerUpdate > 0) {
		j := s.updates
		s.updates++
		if par.stallPerUpdate > 0 && s.updRNG.Bool(par.stallPerUpdate) {
			stall = par.stallMin + time.Duration(s.updRNG.Float64()*float64(par.stallMax-par.stallMin))
			s.plan.M.TCPStalls.Inc()
			s.plan.M.StallNano.Add(int64(stall))
			s.plan.note(c.stream(), "update %d stall %s", j, stall)
		}
		if par.killPerUpdate > 0 && s.updRNG.Bool(par.killPerUpdate) {
			kill = true
			c.killed = true
			s.plan.M.TCPKills.Inc()
			s.plan.note(c.stream(), "update %d kill", j)
		}
	}
	s.mu.Unlock()

	if stall > 0 {
		// Byte-level stall: the message crosses the wire in two pieces
		// with the delay in between, so the reader blocks mid-message.
		half := len(b) / 2
		time.Sleep(stall / 2)
		if _, err := c.Conn.Write(b[:half]); err != nil {
			return 0, err
		}
		time.Sleep(stall - stall/2)
		if _, err := c.Conn.Write(b[half:]); err != nil {
			return half, err
		}
	} else if _, err := c.Conn.Write(b); err != nil {
		return 0, err
	}
	if kill {
		// Orderly close: the FIN sequences after the message just
		// written, so the peer reads it in full before seeing EOF. The
		// session dies, the speaker reconnects, nothing is half-lost.
		c.Conn.Close()
	}
	return len(b), nil
}
