package faultnet

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// UDPSchedule is the deterministic fault schedule for the IPFIX export
// stream. Every data datagram the exporter emits passes through Send,
// which assigns it a running index i and draws its fate from the plan's
// UDP substream: delivered, dropped, duplicated, held for reorder,
// delayed, or swallowed by an open partition window. Because decisions
// are indexed by datagram position and executed inline on the export
// goroutine, the arrival sequence at the collector is identical on
// every run of the same plan.
type UDPSchedule struct {
	plan *Plan

	mu  sync.Mutex
	rng *stats.RNG
	idx int // running data-datagram index

	partitionLeft int // datagrams still to swallow in the open window

	// One datagram may be held back for reordering. It is released
	// immediately after the next delivered datagram's raw write, so by
	// construction a hold never survives past the next delivery: if it
	// is still pending at Flush, no raw write happened since the hold
	// (only drops), and releasing it then is an in-order arrival, not a
	// late one.
	held        []byte
	heldRecords int
	heldIdx     int
}

// Send runs one exported data datagram through the schedule. payload is
// the encoded IPFIX message, records the number of flow records it
// carries (used for record-exact drop accounting), and write the raw
// transmit function. payload is copied if it must outlive the call (the
// exporter reuses its encode buffer).
func (u *UDPSchedule) Send(payload []byte, records int, write func([]byte) error) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	par := u.plan.par
	i := u.idx
	u.idx++

	// An open partition window swallows everything, fate draws included:
	// the wire is gone, not merely unkind.
	if u.partitionLeft > 0 {
		u.partitionLeft--
		u.dropLocked(i, records, true)
		return nil
	}
	if par.partitionStart > 0 && u.rng.Bool(par.partitionStart) {
		length := par.partitionMin + u.rng.Intn(par.partitionMax-par.partitionMin+1)
		u.partitionLeft = length - 1
		u.plan.M.Partitions.Inc()
		u.plan.note("udp", "datagram %d opens partition of %d datagrams", i, length)
		u.dropLocked(i, records, true)
		return nil
	}

	// Single cumulative fate draw so each datagram suffers at most one
	// fault; with all probabilities zero (ProfileNone) no variate is
	// consumed and delivery is a straight passthrough.
	pDrop, pDup := par.dropPerDatagram, par.dupPerDatagram
	pReorder, pDelay := par.reorderPerDatagram, par.delayPerDatagram
	if pDrop+pDup+pReorder+pDelay <= 0 {
		return u.deliverLocked(payload, write)
	}
	f := u.rng.Float64()
	switch {
	case f < pDrop:
		u.dropLocked(i, records, false)
		return nil
	case f < pDrop+pDup:
		// Duplicate: the first copy arrives in sequence, the second
		// carries a now-stale sequence number and is counted late by the
		// collector.
		u.plan.M.Duplicated.Inc()
		u.plan.note("udp", "datagram %d duplicated", i)
		if err := u.deliverLocked(payload, write); err != nil {
			return err
		}
		return write(payload)
	case f < pDrop+pDup+pReorder:
		if u.held == nil {
			// Hold a copy; it is released right after the next delivered
			// datagram and therefore arrives exactly one delivery late.
			cp := make([]byte, len(payload))
			copy(cp, payload)
			u.held, u.heldRecords, u.heldIdx = cp, records, i
			u.plan.M.ReorderHolds.Inc()
			u.plan.note("udp", "datagram %d held for reorder (%d records)", i, records)
			return nil
		}
		// Already holding one: delivering this datagram releases it,
		// which is the reorder the draw asked for.
		u.plan.note("udp", "datagram %d delivered past held datagram %d", i, u.heldIdx)
		return u.deliverLocked(payload, write)
	case f < pDrop+pDup+pReorder+pDelay:
		d := par.delayMin + time.Duration(u.rng.Float64()*float64(par.delayMax-par.delayMin))
		u.plan.M.Delayed.Inc()
		u.plan.M.DelayNano.Add(int64(d))
		u.plan.note("udp", "datagram %d delayed %s", i, d)
		time.Sleep(d)
		return u.deliverLocked(payload, write)
	default:
		return u.deliverLocked(payload, write)
	}
}

// Inert reports whether the schedule can never impair a datagram (the
// "none" profile, or a profile with only TCP faults). The exporter keeps
// its batch-mode template cadence for an inert schedule, so the "none"
// profile benchmarks pure wrapper overhead rather than template bloat.
func (u *UDPSchedule) Inert() bool {
	p := u.plan.par
	return p.dropPerDatagram == 0 && p.dupPerDatagram == 0 &&
		p.reorderPerDatagram == 0 && p.delayPerDatagram == 0 &&
		p.partitionStart == 0
}

// Flush releases a pending reorder hold, if any. The exporter calls it
// before its drain-time Sync so a datagram held at the tail is not lost.
// No raw write has happened since the hold (deliverLocked would have
// released it), so this arrival is in sequence: the hold is counted in
// ReorderHolds but not in the late counters.
func (u *UDPSchedule) Flush(write func([]byte) error) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.held == nil {
		return nil
	}
	held, i, records := u.held, u.heldIdx, u.heldRecords
	u.held = nil
	u.plan.note("udp", "datagram %d released in order at flush (%d records)", i, records)
	return write(held)
}

// dropLocked blackholes datagram i and accounts its records.
func (u *UDPSchedule) dropLocked(i, records int, partition bool) {
	u.plan.M.DroppedDatagrams.Inc()
	u.plan.M.DroppedRecords.Add(int64(records))
	if partition {
		u.plan.M.PartitionDroppedDatagrams.Inc()
		u.plan.note("udp", "datagram %d dropped in partition (%d records)", i, records)
	} else {
		u.plan.note("udp", "datagram %d dropped (%d records)", i, records)
	}
}

// deliverLocked transmits payload and then releases any held datagram
// behind it. The held datagram's sequence number predates the one just
// written, so the collector sees it as a late message and has already
// charged its records to the sequence gap — which is what the
// ReorderLate counters reconcile against.
func (u *UDPSchedule) deliverLocked(payload []byte, write func([]byte) error) error {
	err := write(payload)
	if u.held != nil {
		held, i, records := u.held, u.heldIdx, u.heldRecords
		u.held = nil
		u.plan.M.ReorderLateDatagrams.Inc()
		u.plan.M.ReorderLateRecords.Add(int64(records))
		u.plan.note("udp", "datagram %d released late (%d records)", i, records)
		if werr := write(held); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}
