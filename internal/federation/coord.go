package federation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/events"
	"repro/internal/analysis/pipeline"
	"repro/internal/bgp"
	"repro/internal/ipfix"
)

// Coordinator collects per-IXP snapshots and merges them. Offer is safe
// for concurrent use (the TCP transport calls it from accept
// goroutines); Merge reads a consistent copy under the same lock.
type Coordinator struct {
	meta  *analysis.Metadata
	delta time.Duration

	mu    sync.Mutex
	snaps map[int]*Snapshot
}

// NewCoordinator creates a coordinator for exchanges sharing the member
// universe described by meta. delta is the event merge threshold, which
// must match the one the instances analyzed with.
func NewCoordinator(meta *analysis.Metadata, delta time.Duration) *Coordinator {
	return &Coordinator{meta: meta, delta: delta, snaps: make(map[int]*Snapshot)}
}

// Offer records a snapshot. For repeated offerings from the same
// exchange the highest Seq wins, so duplicated or reordered transmits
// converge on the freshest state. Reports whether the snapshot was
// kept.
func (c *Coordinator) Offer(s *Snapshot) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.snaps[s.IXP]; ok && cur.Seq >= s.Seq {
		return false
	}
	c.snaps[s.IXP] = s
	return true
}

// OfferBytes decodes and offers one snapshot frame (the transport
// server's receive path).
func (c *Coordinator) OfferBytes(data []byte) error {
	s := &Snapshot{}
	if err := s.UnmarshalBinary(data); err != nil {
		return err
	}
	c.Offer(s)
	return nil
}

// Snapshots returns the number of exchanges heard from.
func (c *Coordinator) Snapshots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.snaps)
}

// IXPView is one exchange's decoded state within a merge: its own
// control plane, events, and pipeline (local event numbering), plus the
// mapping into the union numbering.
type IXPView struct {
	IXP         int
	Seq         uint64
	ClockOffset time.Duration
	Updates     []analysis.ControlUpdate
	Events      []*events.Event
	Index       *events.Index
	// Pipeline is the exchange's finalized state bound to its local
	// control plane — compose a per-IXP report from it directly.
	Pipeline *pipeline.Pipeline
	// EventToUnion maps local event IDs to union event IDs.
	EventToUnion map[int]int

	unionIDs map[int]bool
}

// LocalRTBH reports whether the union event was signaled at this
// exchange (every event lives at exactly one exchange — its announcing
// member's home).
func (v *IXPView) LocalRTBH(unionEventID int) bool { return v.unionIDs[unionEventID] }

// MergedState is the outcome of a federation merge: the union control
// plane, the folded global pipeline bound to it, and the per-IXP views.
type MergedState struct {
	Meta    *analysis.Metadata
	Updates []analysis.ControlUpdate
	Events  []*events.Event
	Index   *events.Index
	// Pipeline is the global folded state in union event numbering,
	// bound to the union control plane.
	Pipeline *pipeline.Pipeline
	// IXPs lists the per-exchange views, sorted by exchange index.
	IXPs []*IXPView
}

// eventKey identifies an event across numberings: a (prefix, peer)
// stream plus the first-announce instant. Event merging is a pure
// per-stream function of the updates, and every stream's updates live
// wholly at the announcing member's home exchange, so a local event and
// its union counterpart agree on all three.
type eventKey struct {
	prefix bgp.Prefix
	peer   uint32
	start  int64
}

// Merge decodes every offered snapshot, rebuilds the union control
// plane, rewrites local event IDs into the union numbering, and folds
// the per-IXP pipelines into one global pipeline.
func (c *Coordinator) Merge() (*MergedState, error) {
	c.mu.Lock()
	snaps := make([]*Snapshot, 0, len(c.snaps))
	for _, s := range c.snaps {
		snaps = append(snaps, s)
	}
	c.mu.Unlock()
	if len(snaps) == 0 {
		return nil, fmt.Errorf("federation: no snapshots to merge")
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].IXP < snaps[j].IXP })

	var union []analysis.ControlUpdate
	for _, s := range snaps {
		union = append(union, s.Updates...)
	}
	analysis.SortUpdates(union)
	unionEvents := events.Merge(union, c.delta, c.meta.End)
	unionIndex := events.NewIndex(unionEvents, c.meta.End)
	byKey := make(map[eventKey]int, len(unionEvents))
	for _, e := range unionEvents {
		byKey[eventKey{prefix: e.Prefix, peer: e.Peer, start: e.Start().UnixNano()}] = e.ID
	}

	m := &MergedState{
		Meta:    c.meta,
		Updates: union,
		Events:  unionEvents,
		Index:   unionIndex,
	}
	for _, s := range snaps {
		v := &IXPView{
			IXP:         s.IXP,
			Seq:         s.Seq,
			ClockOffset: s.ClockOffset,
			Updates:     s.Updates,
		}
		v.Events = events.Merge(s.Updates, c.delta, c.meta.End)
		v.Index = events.NewIndex(v.Events, c.meta.End)

		p, err := pipeline.UnmarshalState(c.meta, s.State)
		if err != nil {
			return nil, fmt.Errorf("federation: IXP %d: %w", s.IXP, err)
		}
		p.Rebind(v.Events, v.Index)
		// Live instances ship finalized state; tolerate one that did not.
		p.Finalize()
		v.Pipeline = p

		v.EventToUnion = make(map[int]int, len(v.Events))
		v.unionIDs = make(map[int]bool, len(v.Events))
		for _, e := range v.Events {
			uid, ok := byKey[eventKey{prefix: e.Prefix, peer: e.Peer, start: e.Start().UnixNano()}]
			if !ok {
				return nil, fmt.Errorf("federation: IXP %d: local event %d (%s via AS%d) has no union counterpart",
					s.IXP, e.ID, e.Prefix, e.Peer)
			}
			v.EventToUnion[e.ID] = uid
			v.unionIDs[uid] = true
		}

		folded := p.Clone()
		if err := folded.RemapEvents(v.EventToUnion); err != nil {
			return nil, fmt.Errorf("federation: IXP %d: %w", s.IXP, err)
		}
		if m.Pipeline == nil {
			m.Pipeline = folded
		} else {
			m.Pipeline.Fold(folded)
		}
		m.IXPs = append(m.IXPs, v)
	}
	m.Pipeline.Rebind(unionEvents, unionIndex)
	return m, nil
}

// FlowSource re-streams one exchange's sampled flow records. The batch
// path re-opens the IPFIX archive; a live deployment would replay its
// local spool.
type FlowSource func(fn func(*ipfix.FlowRecord) error) error

// IXPEventTraffic is one exchange's during-event traffic for one union
// event.
type IXPEventTraffic struct {
	IXP int
	// DroppedPkts and ForwardedPkts count sampled during-event packets
	// toward the blackholed destination by forwarding outcome.
	DroppedPkts, ForwardedPkts int64
	// LocalRTBH reports whether the event was signaled at this exchange.
	LocalRTBH bool
}

// EventCross is the cross-exchange join of one union event: who saw its
// traffic, who dropped, who kept delivering.
type EventCross struct {
	EventID int
	Prefix  bgp.Prefix
	Peer    uint32
	// IXPs lists exchanges with during-event traffic, sorted by index.
	IXPs []IXPEventTraffic
	// ForeignDelivered is the share of the event's sampled packets
	// delivered at exchanges that never saw its RTBH signal — traffic
	// the blackholing member believed dropped.
	ForeignDelivered float64
}

// CrossView quantifies the federation's blind spot: attack traffic that
// one exchange blackholes while another still delivers it.
type CrossView struct {
	// Events lists per-event joins for events with any during-event
	// traffic, sorted by event ID.
	Events []EventCross
	// LeakedEvents counts events dropped at their signaling exchange
	// while a non-signaling exchange delivered their traffic.
	LeakedEvents int
	// DroppedPkts totals during-event drops at signaling exchanges;
	// ForeignPkts totals during-event deliveries at non-signaling
	// exchanges; ForeignShare is ForeignPkts over their sum.
	DroppedPkts  int64
	ForeignPkts  int64
	ForeignShare float64
}

// Cross re-streams each exchange's flow records against the union event
// structure. sources maps exchange index to its flow stream; exchanges
// without a source are skipped (their column is simply absent).
func (m *MergedState) Cross(sources map[int]FlowSource) (*CrossView, error) {
	type cell struct{ dropped, forwarded int64 }
	perEvent := make(map[int]map[int]*cell) // event ID -> IXP -> counts

	ixps := make([]int, 0, len(sources))
	for i := range sources {
		ixps = append(ixps, i)
	}
	sort.Ints(ixps)
	for _, ixp := range ixps {
		err := sources[ixp](func(rec *ipfix.FlowRecord) error {
			if m.Meta.IsInternal(rec) {
				return nil
			}
			match := m.Index.Lookup(rec.DstIP, rec.Start)
			if match.Event == nil || !match.Active {
				return nil
			}
			byIXP := perEvent[match.Event.ID]
			if byIXP == nil {
				byIXP = make(map[int]*cell)
				perEvent[match.Event.ID] = byIXP
			}
			cl := byIXP[ixp]
			if cl == nil {
				cl = &cell{}
				byIXP[ixp] = cl
			}
			if rec.DstMAC == m.Meta.BlackholeMAC {
				cl.dropped += int64(rec.Packets)
			} else {
				cl.forwarded += int64(rec.Packets)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("federation: cross scan of IXP %d: %w", ixp, err)
		}
	}

	local := make(map[int]func(int) bool, len(m.IXPs)) // IXP -> LocalRTBH
	for _, v := range m.IXPs {
		local[v.IXP] = v.LocalRTBH
	}

	cv := &CrossView{}
	ids := make([]int, 0, len(perEvent))
	for id := range perEvent {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := m.Events[id]
		ec := EventCross{EventID: id, Prefix: e.Prefix, Peer: e.Peer}
		var total, foreign, droppedLocal int64
		leaked := false
		for _, ixp := range ixps {
			cl := perEvent[id][ixp]
			if cl == nil {
				continue
			}
			isLocal := local[ixp] != nil && local[ixp](id)
			ec.IXPs = append(ec.IXPs, IXPEventTraffic{
				IXP: ixp, DroppedPkts: cl.dropped, ForwardedPkts: cl.forwarded,
				LocalRTBH: isLocal,
			})
			total += cl.dropped + cl.forwarded
			if isLocal {
				droppedLocal += cl.dropped
			} else {
				foreign += cl.forwarded
			}
		}
		if total > 0 {
			ec.ForeignDelivered = float64(foreign) / float64(total)
		}
		if droppedLocal > 0 && foreign > 0 {
			leaked = true
		}
		if leaked {
			cv.LeakedEvents++
		}
		cv.DroppedPkts += droppedLocal
		cv.ForeignPkts += foreign
		cv.Events = append(cv.Events, ec)
	}
	if s := cv.DroppedPkts + cv.ForeignPkts; s > 0 {
		cv.ForeignShare = float64(cv.ForeignPkts) / float64(s)
	}
	return cv, nil
}
