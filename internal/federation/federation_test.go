package federation

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

func testSnapshot() *Snapshot {
	base := time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC)
	return &Snapshot{
		IXP:         2,
		Seq:         7,
		ClockOffset: -40 * time.Millisecond,
		Updates: []analysis.ControlUpdate{
			{Time: base, Peer: 65001, Prefix: bgp.MakePrefix(0x0a000007, 32),
				Announce: true, OriginAS: 65100,
				Communities: bgp.Communities{bgp.Blackhole, bgp.Community(0xfde80001)}},
			{Time: base.Add(time.Hour), Peer: 65001, Prefix: bgp.MakePrefix(0x0a000007, 32)},
		},
		State: []byte{1, 2, 3, 4, 5},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("round trip changed the snapshot:\n got %+v\nwant %+v", &got, want)
	}
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("re-marshal is not a byte-level fixed point")
	}

	empty := &Snapshot{IXP: 0, Seq: 1}
	data, err = empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Snapshot
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatalf("empty snapshot does not round-trip: %v", err)
	}
	if dec.IXP != 0 || dec.Seq != 1 || len(dec.Updates) != 0 {
		t.Fatalf("empty snapshot decoded as %+v", &dec)
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	valid, err := testSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a valid frame must be rejected, never panic.
	for cut := 0; cut < len(valid); cut++ {
		var s Snapshot
		if err := s.UnmarshalBinary(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(valid))
		}
	}
	// A future codec version must be rejected.
	skew := append([]byte(nil), valid...)
	skew[0]++
	var s Snapshot
	if err := s.UnmarshalBinary(skew); err == nil {
		t.Error("future snapshot version decoded without error")
	}
	// A corrupted prefix length must error, not panic in MakePrefix.
	bad := testSnapshot()
	bad.Updates[0].Prefix = bgp.Prefix{Addr: 0x0a000000, Len: 48}
	data, err := bad.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UnmarshalBinary(data); err == nil {
		t.Error("prefix length 48 decoded without error")
	}
	// An error decode must leave the snapshot unchanged.
	keep := testSnapshot()
	if err := keep.UnmarshalBinary(valid[:len(valid)/2]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if !reflect.DeepEqual(keep, testSnapshot()) {
		t.Error("failed decode mutated the snapshot")
	}
}

func TestCoordinatorSeqDedup(t *testing.T) {
	c := NewCoordinator(nil, 0)
	s := func(ixp int, seq uint64) *Snapshot { return &Snapshot{IXP: ixp, Seq: seq} }
	if !c.Offer(s(0, 2)) {
		t.Fatal("first offer rejected")
	}
	if c.Offer(s(0, 1)) {
		t.Error("stale Seq accepted over a fresher one")
	}
	if c.Offer(s(0, 2)) {
		t.Error("duplicate Seq accepted")
	}
	if !c.Offer(s(0, 3)) {
		t.Error("fresher Seq rejected")
	}
	if !c.Offer(s(1, 1)) {
		t.Error("first offer for a second exchange rejected")
	}
	if got := c.Snapshots(); got != 2 {
		t.Errorf("heard from %d exchanges, want 2", got)
	}
}

// truncConn fails its first frame write halfway through — the shape of a
// connection cut mid-transmit.
type truncConn struct {
	net.Conn
	fail *bool
}

func (c *truncConn) Write(b []byte) (int, error) {
	if *c.fail {
		*c.fail = false
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, errors.New("injected mid-write cut")
	}
	return c.Conn.Write(b)
}

func TestTransportSendReceive(t *testing.T) {
	c := NewCoordinator(nil, 0)
	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := Send(srv.Addr(), testSnapshot(), nil, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshots(); got != 1 {
		t.Fatalf("coordinator heard from %d exchanges, want 1", got)
	}

	// A cut first transmit must fail that attempt; the retry converges,
	// and the duplicate delivery dedups by Seq.
	fail := true
	wrap := func(conn net.Conn) net.Conn { return &truncConn{Conn: conn, fail: &fail} }
	snap := testSnapshot()
	snap.IXP = 1
	if err := Send(srv.Addr(), snap, wrap, 3); err != nil {
		t.Fatalf("send did not converge past an injected cut: %v", err)
	}
	if err := Send(srv.Addr(), snap, nil, 1); err != nil {
		t.Fatalf("duplicate send failed: %v", err)
	}
	if got := c.Snapshots(); got != 2 {
		t.Fatalf("coordinator heard from %d exchanges, want 2", got)
	}

	// Garbage frames — wrong magic, corrupt payload — are dropped
	// without an ack and without disturbing the collected state.
	for _, garbage := range [][]byte{
		[]byte("not a frame at all"),
		{'F', 'S', 'N', 'P', 0, 0, 0, 3, 0xff, 0xff, 0xff},
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(garbage) //nolint:errcheck
		var ack [1]byte
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond)) //nolint:errcheck
		if _, err := conn.Read(ack[:]); err == nil {
			t.Error("garbage frame was acked")
		}
		conn.Close()
	}
	if got := c.Snapshots(); got != 2 {
		t.Fatalf("garbage frames changed the collected count to %d", got)
	}
}
