// Package federation combines the measurements of several exchanges
// into one federated analysis. Each IXP instance — a batch pass over
// its archive, or a live online analyzer — reduces its observations to
// a compact Snapshot: its control-plane update stream plus the
// pipeline's marshaled operator state. A Coordinator collects the
// snapshots (in process, or over the TCP transport in transport.go),
// rebuilds the union control plane, rewrites every per-IXP event ID
// into the union numbering, and folds the operator states over the
// pipeline Merge contract into one global pipeline — plus per-IXP views
// and a cross-IXP traffic join that no single exchange can see (which
// attacks one exchange blackholed while another kept delivering them).
package federation

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
)

// snapshotWireVersion is the snapshot frame codec version.
const snapshotWireVersion = 1

// Snapshot is one exchange's reduced state offering.
type Snapshot struct {
	// IXP is the exchange index within the federation.
	IXP int
	// Seq orders repeated offerings from the same exchange: the
	// coordinator keeps the highest sequence number and discards the
	// rest, which makes blind retransmits over a lossy transport safe.
	Seq uint64
	// ClockOffset is the exchange's data-plane clock skew, carried for
	// reporting alongside the skew the analysis estimates back.
	ClockOffset time.Duration
	// Updates is the exchange's time-sorted control-plane stream.
	Updates []analysis.ControlUpdate
	// State is the exchange's pipeline state (pipeline.MarshalState).
	State []byte
}

// MarshalBinary encodes the snapshot.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	w := analysis.NewWireWriter()
	w.Byte(snapshotWireVersion)
	w.Uvarint(uint64(s.IXP))
	w.Uvarint(s.Seq)
	w.Varint(int64(s.ClockOffset))
	w.Uvarint(uint64(len(s.Updates)))
	for i := range s.Updates {
		u := &s.Updates[i]
		w.Varint(u.Time.UnixNano())
		w.Uvarint(uint64(u.Peer))
		w.Uvarint(uint64(u.Prefix.Addr))
		w.Byte(u.Prefix.Len)
		w.Bool(u.Announce)
		w.Uvarint(uint64(u.OriginAS))
		w.Uvarint(uint64(len(u.Communities)))
		for _, c := range u.Communities {
			w.Uvarint(uint64(c))
		}
	}
	w.Blob(s.State)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a snapshot frame. On error the snapshot is
// left unchanged; the input slice is not retained.
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	r := analysis.NewWireReader(data)
	r.Version(snapshotWireVersion)
	ixp := r.Int()
	seq := r.Uvarint()
	off := time.Duration(r.Varint())
	// Minimum update: time, peer, addr, len, announce, origin, 0 comms.
	n := r.Count(7)
	updates := make([]analysis.ControlUpdate, 0, n)
	for i := 0; i < n; i++ {
		t := time.Unix(0, r.Varint()).UTC()
		peer := r.U32()
		addr, plen := r.U32(), r.Byte()
		if plen > 32 {
			return fmt.Errorf("federation: snapshot: prefix length %d > 32", plen)
		}
		u := analysis.ControlUpdate{
			Time:     t,
			Peer:     peer,
			Prefix:   bgp.MakePrefix(addr, plen),
			Announce: r.Bool(),
			OriginAS: r.U32(),
		}
		nc := r.Count(1)
		if nc > 0 {
			u.Communities = make(bgp.Communities, 0, nc)
			for j := 0; j < nc; j++ {
				u.Communities = append(u.Communities, bgp.Community(r.U32()))
			}
		}
		if r.Err() != nil {
			break
		}
		updates = append(updates, u)
	}
	state := r.Blob()
	if err := r.Done(); err != nil {
		return fmt.Errorf("federation: snapshot: %w", err)
	}
	s.IXP = ixp
	s.Seq = seq
	s.ClockOffset = off
	s.Updates = updates
	s.State = append([]byte(nil), state...)
	return nil
}
