package federation

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Frame format: 4-byte magic, 4-byte big-endian payload length, payload
// (Snapshot.MarshalBinary). The receiver answers one ack byte after the
// payload decodes and is offered; a sender that never sees the ack —
// the connection died, or either half was cut — simply retransmits,
// which the coordinator's Seq dedup makes idempotent.
var frameMagic = [4]byte{'F', 'S', 'N', 'P'}

const (
	frameAck = 0x06
	// maxFrame bounds the payload a receiver will allocate for.
	maxFrame = 1 << 28
	// ioTimeout bounds every read/write on a transport connection.
	ioTimeout = 10 * time.Second
)

// Server accepts snapshot frames and offers them to a coordinator.
type Server struct {
	ln    net.Listener
	coord *Coordinator
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve listens on addr (e.g. "127.0.0.1:0") and offers every received
// snapshot to coord.
func Serve(addr string, coord *Coordinator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	s := &Server{ln: ln, coord: coord}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight receives.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle receives one frame. Truncated or corrupt frames — chaos cuts
// connections mid-write — are dropped without an ack; the sender
// retransmits.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(ioTimeout)) //nolint:errcheck
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return
	}
	if err := s.coord.OfferBytes(payload); err != nil {
		return
	}
	conn.Write([]byte{frameAck}) //nolint:errcheck
}

// Send transmits one snapshot to addr and waits for the ack, retrying
// up to attempts times. wrap, when non-nil, is installed on each dialed
// connection — the seam for faultnet's deterministic chaos middleware.
// Because the coordinator keeps the highest Seq per exchange, duplicate
// deliveries from retries after a lost ack are harmless.
func Send(addr string, snap *Snapshot, wrap func(net.Conn) net.Conn, attempts int) error {
	payload, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("federation: snapshot of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	copy(frame, frameMagic[:])
	binary.BigEndian.PutUint32(frame[4:], uint32(len(payload)))
	copy(frame[8:], payload)

	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := sendOnce(addr, frame, wrap); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("federation: snapshot for IXP %d not acked after %d attempts: %w",
		snap.IXP, attempts, lastErr)
}

func sendOnce(addr string, frame []byte, wrap func(net.Conn) net.Conn) error {
	conn, err := net.DialTimeout("tcp", addr, ioTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(ioTimeout)) //nolint:errcheck
	c := conn
	if wrap != nil {
		c = wrap(conn)
	}
	if _, err := c.Write(frame); err != nil {
		return err
	}
	var ack [1]byte
	if _, err := io.ReadFull(c, ack[:]); err != nil {
		return err
	}
	if ack[0] != frameAck {
		return fmt.Errorf("federation: unexpected ack byte %#x", ack[0])
	}
	return nil
}
