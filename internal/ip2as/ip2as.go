// Package ip2as provides longest-prefix-match IP-to-origin-AS mapping.
// The paper determines the origin AS of attack sources ("the AS hosting
// the amplifier", §5.5) and of blackholed hosts (§6.2) from routing data;
// this package is that lookup, fed from the simulator's address plan and
// serialized alongside the datasets.
package ip2as

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/bgp"
)

// Entry maps one prefix to its origin AS.
type Entry struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
}

// Table performs longest-prefix-match lookups. Build with Add, then call
// Lookup; Add and Lookup may be interleaved. The zero value is empty and
// usable.
type Table struct {
	byLen   [33]map[bgp.Prefix]uint32
	entries int
}

// New returns an empty table.
func New() *Table { return &Table{} }

// Add inserts prefix -> asn, replacing any existing identical prefix.
func (t *Table) Add(p bgp.Prefix, asn uint32) {
	if t.byLen[p.Len] == nil {
		t.byLen[p.Len] = make(map[bgp.Prefix]uint32)
	}
	if _, dup := t.byLen[p.Len][p]; !dup {
		t.entries++
	}
	t.byLen[p.Len][p] = asn
}

// Lookup returns the origin AS of the longest prefix covering addr, or
// (0, false) when no prefix matches.
func (t *Table) Lookup(addr uint32) (uint32, bool) {
	for length := 32; length >= 0; length-- {
		m := t.byLen[length]
		if len(m) == 0 {
			continue
		}
		if asn, ok := m[bgp.MakePrefix(addr, uint8(length))]; ok {
			return asn, true
		}
	}
	return 0, false
}

// Len returns the number of entries.
func (t *Table) Len() int { return t.entries }

// Entries returns all entries sorted by (address, length).
func (t *Table) Entries() []Entry {
	var keys []bgp.Prefix
	for length := 0; length <= 32; length++ {
		for p := range t.byLen[length] {
			keys = append(keys, p)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Addr != keys[j].Addr {
			return keys[i].Addr < keys[j].Addr
		}
		return keys[i].Len < keys[j].Len
	})
	out := make([]Entry, len(keys))
	for i, p := range keys {
		out[i] = Entry{Prefix: p.String(), ASN: t.byLen[p.Len][p]}
	}
	return out
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Entries())
}

// ReadJSON parses a table written by WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("ip2as: %w", err)
	}
	t := New()
	for _, e := range entries {
		p, err := bgp.ParsePrefix(e.Prefix)
		if err != nil {
			return nil, fmt.Errorf("ip2as: entry %q: %w", e.Prefix, err)
		}
		t.Add(p, e.ASN)
	}
	return t, nil
}
