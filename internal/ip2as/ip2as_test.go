package ip2as

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/bgp"
)

func TestLookupLongestMatchWins(t *testing.T) {
	tb := New()
	tb.Add(bgp.MustParsePrefix("10.0.0.0/8"), 100)
	tb.Add(bgp.MustParsePrefix("10.1.0.0/16"), 200)
	tb.Add(bgp.MustParsePrefix("10.1.2.0/24"), 300)

	addr := func(s string) uint32 {
		a, err := bgp.ParseAddr(s)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cases := []struct {
		ip   string
		want uint32
	}{
		{"10.200.0.1", 100},
		{"10.1.50.1", 200},
		{"10.1.2.3", 300},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(addr(c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d, %v; want %d", c.ip, got, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(addr("192.0.2.1")); ok {
		t.Error("unmapped address resolved")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var tb Table
	if _, ok := tb.Lookup(1); ok {
		t.Fatal("zero table resolved an address")
	}
	tb.Add(bgp.HostPrefix(1), 5)
	if asn, ok := tb.Lookup(1); !ok || asn != 5 {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddReplacesAndCounts(t *testing.T) {
	tb := New()
	p := bgp.MustParsePrefix("10.0.0.0/8")
	tb.Add(p, 1)
	tb.Add(p, 2)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if asn, _ := tb.Lookup(0x0a000001); asn != 2 {
		t.Fatalf("replacement failed: %d", asn)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tb := New()
	tb.Add(bgp.MustParsePrefix("10.0.0.0/8"), 100)
	tb.Add(bgp.MustParsePrefix("203.0.113.0/24"), 64500)
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	if asn, ok := got.Lookup(0xcb007105); !ok || asn != 64500 {
		t.Fatalf("lookup after round trip = %d, %v", asn, ok)
	}
}

func TestReadJSONRejectsBadPrefix(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte(`[{"prefix":"999.0.0.0/8","asn":1}]`))); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`garbage`))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEntriesSorted(t *testing.T) {
	tb := New()
	tb.Add(bgp.MustParsePrefix("203.0.113.0/24"), 3)
	tb.Add(bgp.MustParsePrefix("10.0.0.0/8"), 1)
	tb.Add(bgp.MustParsePrefix("10.0.0.0/16"), 2)
	es := tb.Entries()
	if len(es) != 3 || es[0].ASN != 1 || es[1].ASN != 2 || es[2].ASN != 3 {
		t.Fatalf("Entries = %v", es)
	}
}

func TestLookupConsistencyProperty(t *testing.T) {
	f := func(addr uint32) bool {
		tb := New()
		p16 := bgp.MakePrefix(addr, 16)
		p24 := bgp.MakePrefix(addr, 24)
		tb.Add(p16, 16)
		tb.Add(p24, 24)
		got, ok := tb.Lookup(addr)
		return ok && got == 24 // the /24 always wins for its own address
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
