package ipfix

import (
	"sync"
	"sync/atomic"
)

// RecordBatch is the unit of transfer on the hot record path: a reusable
// slice of FlowRecords with pooled backing storage, produced by the fabric
// sampling stage (one batch per injected traffic batch, so records share
// headers by construction) and by the IPFIX reader (one batch per decoded
// message).
//
// Ownership. A batch obtained from GetBatch carries one reference, held by
// the producer. Sinks receiving a batch borrow it for the duration of the
// call; a sink that needs the records after returning must Retain the
// batch and Release it when done. The producer Releases its reference
// after the sink returns; the last Release resets the batch and returns it
// to the pool, so a full steady-state pass allocates no per-record memory.
type RecordBatch struct {
	Recs []FlowRecord

	refs atomic.Int32
}

// BatchSink consumes one batch of flow records. The callee borrows the
// batch; see the RecordBatch ownership contract.
type BatchSink func(*RecordBatch) error

// defaultBatchCap sizes fresh batch backing arrays to one full IPFIX
// message worth of records, the largest batch the reader produces.
const defaultBatchCap = maxRecordsPerMsg

var batchPool = sync.Pool{
	New: func() any {
		return &RecordBatch{Recs: make([]FlowRecord, 0, defaultBatchCap)}
	},
}

// GetBatch returns an empty batch with one reference held by the caller.
func GetBatch() *RecordBatch {
	b := batchPool.Get().(*RecordBatch)
	b.refs.Store(1)
	return b
}

// Retain adds a reference, allowing the batch to outlive the sink call
// that delivered it. Pair with Release.
func (b *RecordBatch) Retain() { b.refs.Add(1) }

// Release drops one reference. The last release clears the batch and
// returns it to the pool; the caller must not touch it afterwards.
func (b *RecordBatch) Release() {
	if b.refs.Add(-1) == 0 {
		b.Recs = b.Recs[:0]
		batchPool.Put(b)
	}
}

// Append adds one record to the batch.
func (b *RecordBatch) Append(r *FlowRecord) {
	b.Recs = append(b.Recs, *r)
}

// Len returns the number of records in the batch.
func (b *RecordBatch) Len() int { return len(b.Recs) }

// EachRecord adapts a per-record callback to the batch contract: the
// returned sink feeds every record of each batch to fn in order. Useful
// for tests and low-rate consumers that do not need the batch fast path.
func EachRecord(fn func(*FlowRecord) error) BatchSink {
	return func(b *RecordBatch) error {
		for i := range b.Recs {
			if err := fn(&b.Recs[i]); err != nil {
				return err
			}
		}
		return nil
	}
}
