package ipfix

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// BenchmarkWriteRecord measures flow-record export throughput.
func BenchmarkWriteRecord(b *testing.B) {
	w := NewWriter(io.Discard, 1)
	rec := benchRecord()
	b.ReportAllocs()
	b.SetBytes(flowRecordLen)
	for i := 0; i < b.N; i++ {
		if err := w.WriteRecord(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadRecord measures flow-record parse throughput.
func BenchmarkReadRecord(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	rec := benchRecord()
	const n = 100000
	for i := 0; i < n; i++ {
		w.WriteRecord(&rec)
	}
	w.Flush()
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(flowRecordLen)
	b.ResetTimer()
	rd := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		_, err := rd.Next()
		if errors.Is(err, io.EOF) {
			rd = NewReader(bytes.NewReader(data))
			if _, err = rd.Next(); err != nil {
				b.Fatal(err)
			}
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func benchRecord() FlowRecord {
	return FlowRecord{
		Start: time.UnixMilli(1538000000123), SrcMAC: 0x020123, DstMAC: 0x066666,
		SrcIP: 0x50000001, DstIP: 0x28000005, SrcPort: 389, DstPort: 40000,
		Proto: 17, Packets: 1, Bytes: 1400,
	}
}
