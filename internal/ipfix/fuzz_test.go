package ipfix

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedRecords are hand-picked flow records whose encoded streams seed
// the round-trip fuzzer (besides the checked-in corpus under
// testdata/fuzz): an ordinary TCP sample, a blackholed UDP sample, an
// ICMP record with zero ports, zero-value and extreme-value counters, and
// a pre-epoch timestamp that exercises the signed UnixMilli path.
func fuzzSeedRecords() []FlowRecord {
	return []FlowRecord{
		{
			Start:  time.UnixMilli(1537920000123).UTC(),
			SrcMAC: 0x0a0000000001, DstMAC: 0x0a0000000002,
			SrcIP: 0xC6336405, DstIP: 0xCB007105,
			SrcPort: 443, DstPort: 51234, Proto: 6,
			Packets: 1, Bytes: 1500,
		},
		{
			Start:  time.UnixMilli(1537920060000).UTC(),
			SrcMAC: 0x0a0000000003, DstMAC: 0x0600666666, // blackhole-style MAC
			SrcIP: 1, DstIP: 2,
			SrcPort: 123, DstPort: 53, Proto: 17,
			Packets: 1, Bytes: 468,
		},
		{
			Start: time.UnixMilli(0).UTC(),
			Proto: 1, // ICMP, zero ports, zero counters
		},
		{
			Start:  time.UnixMilli(-1000).UTC(), // before the epoch
			SrcMAC: 0xffffffffffff, DstMAC: 0xffffffffffff,
			SrcIP: 0xffffffff, DstIP: 0xffffffff,
			SrcPort: 0xffff, DstPort: 0xffff, Proto: 0xff,
			Packets: 1<<64 - 1, Bytes: 1<<64 - 1,
		},
	}
}

// encodeStream serializes recs into one IPFIX byte stream with the given
// batch size (records per message).
func encodeStream(t testing.TB, recs []FlowRecord, batchSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.BatchSize = batchSize
	for i := range recs {
		if err := w.WriteRecord(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordsEqual compares two flow records field by field. Start is compared
// by UnixMilli, the wire precision; everything else is exact.
func recordsEqual(a, b *FlowRecord) bool {
	return a.Start.UnixMilli() == b.Start.UnixMilli() &&
		a.SrcMAC == b.SrcMAC && a.DstMAC == b.DstMAC &&
		a.SrcIP == b.SrcIP && a.DstIP == b.DstIP &&
		a.SrcPort == b.SrcPort && a.DstPort == b.DstPort &&
		a.Proto == b.Proto &&
		a.Packets == b.Packets && a.Bytes == b.Bytes
}

// FuzzIPFIXRoundTrip feeds arbitrary bytes to the template-driven decoder
// and demands that every record it accepts — even from a stream that
// later turns out to be torn — survives a canonical re-encode and decode
// unchanged, and that the canonical encoding is a fixed point. This
// mirrors FuzzUpdateRoundTrip in internal/bgp for the data plane's wire
// format.
func FuzzIPFIXRoundTrip(f *testing.F) {
	recs := fuzzSeedRecords()
	f.Add(encodeStream(f, recs, 1024)) // single message
	f.Add(encodeStream(f, recs, 1))    // one record per message
	f.Add(encodeStream(f, recs[:1], 2))
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // header-only message
	f.Add([]byte{0, 9, 0, 16})                                      // wrong version

	f.Fuzz(func(t *testing.T, data []byte) {
		// Records decoded before any stream error are valid; the error
		// only ends the stream.
		recs, _ := ReadAll(bytes.NewReader(data))
		if len(recs) == 0 {
			return
		}

		enc := encodeStream(t, recs, 3) // small batches: multi-message output
		recs2, err := ReadAll(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode of canonical stream failed: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if !recordsEqual(&recs[i], &recs2[i]) {
				t.Fatalf("record %d changed:\nfirst:  %+v\nsecond: %+v", i, recs[i], recs2[i])
			}
		}

		enc2 := encodeStream(t, recs2, 3)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point (%d vs %d bytes)", len(enc), len(enc2))
		}
	})
}
