//go:build ignore

// Regenerates the FuzzIPFIXRoundTrip seed corpus:
//
//	go run gen_fuzz_corpus.go
//
// The corpus covers the interesting encoder/decoder shapes: single- and
// multi-message streams, one-record batches (template resent per the
// writer's schedule), extreme field values, a pre-epoch timestamp, and a
// few deliberately malformed streams (bad version, truncated body, data
// set before its template, padding bytes).
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ipfix"
)

func encode(recs []ipfix.FlowRecord, batchSize int) []byte {
	var buf bytes.Buffer
	w := ipfix.NewWriter(&buf, 1)
	w.BatchSize = batchSize
	for i := range recs {
		if err := w.WriteRecord(&recs[i]); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func main() {
	recs := []ipfix.FlowRecord{
		{
			Start:  time.UnixMilli(1537920000123).UTC(),
			SrcMAC: 0x0a0000000001, DstMAC: 0x0a0000000002,
			SrcIP: 0xC6336405, DstIP: 0xCB007105,
			SrcPort: 443, DstPort: 51234, Proto: 6,
			Packets: 1, Bytes: 1500,
		},
		{
			Start:  time.UnixMilli(1537920060000).UTC(),
			SrcMAC: 0x0a0000000003, DstMAC: 0x0600666666,
			SrcIP: 1, DstIP: 2,
			SrcPort: 123, DstPort: 53, Proto: 17,
			Packets: 1, Bytes: 468,
		},
		{Start: time.UnixMilli(0).UTC(), Proto: 1},
		{
			Start:  time.UnixMilli(-1000).UTC(),
			SrcMAC: 0xffffffffffff, DstMAC: 0xffffffffffff,
			SrcIP: 0xffffffff, DstIP: 0xffffffff,
			SrcPort: 0xffff, DstPort: 0xffff, Proto: 0xff,
			Packets: 1<<64 - 1, Bytes: 1<<64 - 1,
		},
	}

	streams := [][]byte{
		encode(recs, 1024),
		encode(recs, 1),
		encode(recs[:2], 2),
	}

	// A valid stream with trailing set padding: take the one-batch stream
	// and append a second message whose data set carries 3 padding bytes.
	padded := append([]byte(nil), encode(recs[:1], 1024)...)
	var msg []byte
	msg = binary.BigEndian.AppendUint16(msg, 10) // version
	msg = append(msg, 0, 0)                      // length placeholder
	msg = binary.BigEndian.AppendUint32(msg, 1537920000)
	msg = binary.BigEndian.AppendUint32(msg, 1) // sequence
	msg = binary.BigEndian.AppendUint32(msg, 1) // domain
	set := encode(recs[1:2], 1024)
	// Extract the data set of the second stream (after its 16-byte header
	// and template set) and re-emit it with padding.
	tmplSetLen := int(binary.BigEndian.Uint16(set[18:20]))
	dataSet := set[16+tmplSetLen:]
	msg = append(msg, dataSet...)
	msg = append(msg, 0, 0, 0) // set padding
	binary.BigEndian.PutUint16(msg[len(msg)-len(dataSet)-3+2:], uint16(len(dataSet)+3))
	binary.BigEndian.PutUint16(msg[2:4], uint16(len(msg)))
	streams = append(streams, append(padded, msg...))

	streams = append(streams,
		[]byte{},
		[]byte{0, 9, 0, 16},                        // unsupported version
		[]byte{0, 10, 0, 15},                       // length below header size
		[]byte{0, 10, 0, 20, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 8}, // data set, unknown template
		[]byte{0, 10, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},             // header-only
	)

	dir := filepath.Join("testdata", "fuzz", "FuzzIPFIXRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for i, b := range streams {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", len(streams), dir)
}
