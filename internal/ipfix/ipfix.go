// Package ipfix implements an RFC 7011 IPFIX encoder and decoder for the
// flow records exported by the IXP's edge samplers: one record per sampled
// packet, carrying layer-2 addresses (which identify the member router and
// the blackhole next hop), the IPv4 five-tuple, and delta counters.
//
// The encoder emits standards-shaped messages — version 10 header, a
// template set describing the record layout with IANA information
// elements, then data sets referencing the template. The decoder is
// template-driven: it learns record layouts from template sets in the
// stream and maps the information elements it knows onto FlowRecord
// fields, skipping unknown elements by their declared length. A stream
// produced by any exporter using the same information elements therefore
// decodes correctly even if field order differs.
package ipfix

import (
	"encoding/binary"
	"fmt"
	"time"
)

// MAC is a 48-bit layer-2 address stored in the low bits of a uint64,
// comparable and usable as a map key.
type MAC uint64

// String renders the conventional colon-separated hex form.
func (m MAC) String() string {
	b := make([]byte, 0, 17)
	for i := 5; i >= 0; i-- {
		v := byte(m >> (8 * i))
		const hexdigits = "0123456789abcdef"
		b = append(b, hexdigits[v>>4], hexdigits[v&0xf])
		if i > 0 {
			b = append(b, ':')
		}
	}
	return string(b)
}

// FlowRecord is the canonical sampled-packet record used throughout the
// repository: produced by the fabric sampler, serialized via this package,
// and consumed by the analysis pipeline.
type FlowRecord struct {
	// Start is the observation timestamp, millisecond precision on the
	// wire (flowStartMilliseconds).
	Start time.Time
	// SrcMAC identifies the ingress member router; DstMAC is either the
	// egress member router or the blackhole MAC when the packet was
	// dropped by the RTBH service.
	SrcMAC, DstMAC MAC
	// SrcIP and DstIP are IPv4 addresses in host byte order.
	SrcIP, DstIP uint32
	// SrcPort and DstPort are transport ports (0 for ICMP).
	SrcPort, DstPort uint16
	// Proto is the IP protocol number (6 TCP, 17 UDP, 1 ICMP, ...).
	Proto uint8
	// Packets and Bytes are the delta counts represented by this sample.
	// With 1:N packet sampling each record represents one sampled packet
	// (Packets == 1) and its size in Bytes.
	Packets, Bytes uint64
}

// IANA information element identifiers used by the template.
const (
	ieOctetDeltaCount       = 1
	iePacketDeltaCount      = 2
	ieProtocolIdentifier    = 4
	ieSourceTransportPort   = 7
	ieSourceIPv4Address     = 8
	ieDestTransportPort     = 11
	ieDestIPv4Address       = 12
	ieSourceMacAddress      = 56
	ieDestMacAddress        = 80
	ieFlowStartMilliseconds = 152
)

// templateField describes one information element in a template.
type templateField struct {
	id     uint16
	length uint16
}

// flowTemplate is the fixed layout the encoder uses.
var flowTemplate = []templateField{
	{ieFlowStartMilliseconds, 8},
	{ieSourceMacAddress, 6},
	{ieDestMacAddress, 6},
	{ieSourceIPv4Address, 4},
	{ieDestIPv4Address, 4},
	{ieSourceTransportPort, 2},
	{ieDestTransportPort, 2},
	{ieProtocolIdentifier, 1},
	{iePacketDeltaCount, 8},
	{ieOctetDeltaCount, 8},
}

// knownElementLen gives the only wire length the decoder accepts for each
// element it maps onto FlowRecord fields (RFC 7011 reduced-size encoding
// is not implemented). Templates declaring other lengths are rejected at
// parse time so template.decode can index field bytes without bounds
// checks per record.
var knownElementLen = func() map[uint16]uint16 {
	m := make(map[uint16]uint16, len(flowTemplate))
	for _, f := range flowTemplate {
		m[f.id] = f.length
	}
	return m
}()

const (
	ipfixVersion     = 10
	templateSetID    = 2
	flowTemplateID   = 256
	msgHeaderLen     = 16
	setHeaderLen     = 4
	flowRecordLen    = 8 + 6 + 6 + 4 + 4 + 2 + 2 + 1 + 8 + 8 // 49 bytes
	maxMsgLen        = 65535
	maxRecordsPerMsg = (maxMsgLen - msgHeaderLen - setHeaderLen) / flowRecordLen
)

func appendMAC(dst []byte, m MAC) []byte {
	return append(dst,
		byte(m>>40), byte(m>>32), byte(m>>24),
		byte(m>>16), byte(m>>8), byte(m))
}

func decodeMAC(b []byte) MAC {
	return MAC(uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5]))
}

// appendRecord appends the wire encoding of r per flowTemplate.
func appendRecord(dst []byte, r *FlowRecord) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Start.UnixMilli()))
	dst = appendMAC(dst, r.SrcMAC)
	dst = appendMAC(dst, r.DstMAC)
	dst = binary.BigEndian.AppendUint32(dst, r.SrcIP)
	dst = binary.BigEndian.AppendUint32(dst, r.DstIP)
	dst = binary.BigEndian.AppendUint16(dst, r.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, r.DstPort)
	dst = append(dst, r.Proto)
	dst = binary.BigEndian.AppendUint64(dst, r.Packets)
	dst = binary.BigEndian.AppendUint64(dst, r.Bytes)
	return dst
}

// template is a decoder-side learned record layout.
type template struct {
	fields    []templateField
	recordLen int
}

func (t *template) decode(b []byte, r *FlowRecord) error {
	off := 0
	for _, f := range t.fields {
		v := b[off : off+int(f.length)]
		switch f.id {
		case ieFlowStartMilliseconds:
			if f.length != 8 {
				return fmt.Errorf("flowStartMilliseconds length %d", f.length)
			}
			r.Start = time.UnixMilli(int64(binary.BigEndian.Uint64(v))).UTC()
		case ieSourceMacAddress:
			if f.length != 6 {
				return fmt.Errorf("sourceMacAddress length %d", f.length)
			}
			r.SrcMAC = decodeMAC(v)
		case ieDestMacAddress:
			if f.length != 6 {
				return fmt.Errorf("destinationMacAddress length %d", f.length)
			}
			r.DstMAC = decodeMAC(v)
		case ieSourceIPv4Address:
			r.SrcIP = binary.BigEndian.Uint32(v)
		case ieDestIPv4Address:
			r.DstIP = binary.BigEndian.Uint32(v)
		case ieSourceTransportPort:
			r.SrcPort = binary.BigEndian.Uint16(v)
		case ieDestTransportPort:
			r.DstPort = binary.BigEndian.Uint16(v)
		case ieProtocolIdentifier:
			r.Proto = v[0]
		case iePacketDeltaCount:
			r.Packets = binary.BigEndian.Uint64(v)
		case ieOctetDeltaCount:
			r.Bytes = binary.BigEndian.Uint64(v)
		default:
			// Unknown elements are skipped by declared length.
		}
		off += int(f.length)
	}
	return nil
}
