package ipfix

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord(i int) FlowRecord {
	return FlowRecord{
		Start:   time.UnixMilli(1538000000000 + int64(i)*37).UTC(),
		SrcMAC:  MAC(0x02abcdef0000 + uint64(i)),
		DstMAC:  MAC(0x06badc0ffee0),
		SrcIP:   0xc0000200 + uint32(i%250),
		DstIP:   0xcb007105,
		SrcPort: uint16(1024 + i),
		DstPort: 123,
		Proto:   17,
		Packets: 1,
		Bytes:   468,
	}
}

func TestRoundTripSingleRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 7)
	rec := sampleRecord(0)
	if err := w.WriteRecord(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records", len(got))
	}
	if got[0] != rec {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[0], rec)
	}
}

func TestRoundTripManyMessages(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 7)
	w.BatchSize = 16 // force many messages, exercising template re-emission
	const n = 10000
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		if err := w.WriteRecord(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i := 0; i < n; i += 997 {
		if got[i] != sampleRecord(i) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8, pkts, octets uint64, macLow uint32) bool {
		rec := FlowRecord{
			Start:   time.UnixMilli(1538000000123).UTC(),
			SrcMAC:  MAC(uint64(macLow)) & 0xffffffffffff,
			DstMAC:  MAC(0x020000000000 | uint64(macLow>>8)),
			SrcIP:   srcIP,
			DstIP:   dstIP,
			SrcPort: srcPort,
			DstPort: dstPort,
			Proto:   proto,
			Packets: pkts,
			Bytes:   octets,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, 1)
		if w.WriteRecord(&rec) != nil || w.Flush() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC(0x0123456789ab)
	if got := m.String(); got != "01:23:45:67:89:ab" {
		t.Fatalf("MAC.String = %q", got)
	}
	if got := MAC(0).String(); got != "00:00:00:00:00:00" {
		t.Fatalf("zero MAC = %q", got)
	}
}

func TestReaderRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	rec := sampleRecord(1)
	w.WriteRecord(&rec)
	w.Flush()
	data := buf.Bytes()
	data[0], data[1] = 0, 9 // NetFlow v9, not IPFIX
	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Fatal("version 9 accepted")
	}
}

func TestReaderRejectsDataBeforeTemplate(t *testing.T) {
	// Craft a message with only a data set for an unknown template.
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint16(b, ipfixVersion)
	b = append(b, 0, 0)
	b = binary.BigEndian.AppendUint32(b, 0) // export time
	b = binary.BigEndian.AppendUint32(b, 0) // seq
	b = binary.BigEndian.AppendUint32(b, 0) // domain
	b = binary.BigEndian.AppendUint16(b, 300)
	b = binary.BigEndian.AppendUint16(b, setHeaderLen+4)
	b = append(b, 1, 2, 3, 4)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	if _, err := ReadAll(bytes.NewReader(b)); err == nil {
		t.Fatal("data set without template accepted")
	}
}

func TestReaderRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	rec := sampleRecord(1)
	w.WriteRecord(&rec)
	w.Flush()
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut += 11 {
		if _, err := ReadAll(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReaderSkipsOptionsTemplateSet(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	rec := sampleRecord(1)
	w.WriteRecord(&rec)
	w.Flush()
	// Append a message containing an options-template set (id 3) which
	// must be skipped, then a normal message.
	var m []byte
	m = binary.BigEndian.AppendUint16(m, ipfixVersion)
	m = append(m, 0, 0)
	m = binary.BigEndian.AppendUint32(m, 0)
	m = binary.BigEndian.AppendUint32(m, 0)
	m = binary.BigEndian.AppendUint32(m, 0)
	m = binary.BigEndian.AppendUint16(m, 3) // options template set
	m = binary.BigEndian.AppendUint16(m, setHeaderLen+4)
	m = append(m, 0, 0, 0, 0)
	binary.BigEndian.PutUint16(m[2:4], uint16(len(m)))
	buf.Write(m)

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records, want 1", len(got))
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v %v", got, err)
	}
}

func TestStreamingReaderInterleavesWithWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 9)
	w.BatchSize = 8
	const n = 100
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		if err := w.WriteRecord(&rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	rd := NewReader(&buf)
	count := 0
	for {
		_, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Fatalf("streamed %d records, want %d", count, n)
	}
}

func TestTemplateWithUnknownElementSkipped(t *testing.T) {
	// Build a stream whose template includes an element we don't know
	// (paddingOctets, id 210, 2 bytes) between known fields. The decoder
	// must skip it by length and still recover the known fields.
	var b []byte
	b = binary.BigEndian.AppendUint16(b, ipfixVersion)
	b = append(b, 0, 0)
	b = binary.BigEndian.AppendUint32(b, 0)
	b = binary.BigEndian.AppendUint32(b, 0)
	b = binary.BigEndian.AppendUint32(b, 0)
	// Template set: id 700 with srcIP, padding(2), dstPort.
	b = binary.BigEndian.AppendUint16(b, templateSetID)
	b = binary.BigEndian.AppendUint16(b, setHeaderLen+4+3*4)
	b = binary.BigEndian.AppendUint16(b, 700)
	b = binary.BigEndian.AppendUint16(b, 3)
	b = binary.BigEndian.AppendUint16(b, ieSourceIPv4Address)
	b = binary.BigEndian.AppendUint16(b, 4)
	b = binary.BigEndian.AppendUint16(b, 210)
	b = binary.BigEndian.AppendUint16(b, 2)
	b = binary.BigEndian.AppendUint16(b, ieDestTransportPort)
	b = binary.BigEndian.AppendUint16(b, 2)
	// Data set: one record.
	b = binary.BigEndian.AppendUint16(b, 700)
	b = binary.BigEndian.AppendUint16(b, setHeaderLen+8)
	b = binary.BigEndian.AppendUint32(b, 0x0a0b0c0d)
	b = append(b, 0xff, 0xff) // padding bytes
	b = binary.BigEndian.AppendUint16(b, 443)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))

	got, err := ReadAll(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SrcIP != 0x0a0b0c0d || got[0].DstPort != 443 {
		t.Fatalf("got %+v", got)
	}
}
