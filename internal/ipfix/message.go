package ipfix

import (
	"encoding/binary"
	"fmt"
)

// MsgHeader is the decoded RFC 7011 §3.1 message header. The collector
// uses SeqNum for per-exporter gap (loss) accounting: SeqNum counts data
// records sent before this message, so the expected next value after a
// message carrying n records is SeqNum+n.
type MsgHeader struct {
	Length     uint16
	ExportTime uint32
	SeqNum     uint32
	Domain     uint32
}

// templateSetLen is the encoded size of the template set emitted by
// MsgEncoder: set header, template record header, one (id, length) pair
// per field.
var templateSetLen = setHeaderLen + 4 + 4*len(flowTemplate)

// MsgEncoder builds standalone IPFIX messages. It owns the export
// sequence number (incremented by the record count of each encoded
// message) and reuses an internal buffer, so a single encoder serializes
// one logical export stream. Both the file Writer and the live UDP
// exporter are built on it.
type MsgEncoder struct {
	domain uint32
	seq    uint32
	buf    []byte
}

// NewMsgEncoder returns an encoder exporting on observation domain id
// domain.
func NewMsgEncoder(domain uint32) *MsgEncoder {
	return &MsgEncoder{domain: domain}
}

// SeqNum returns the sequence number the next encoded message will carry
// (the count of data records encoded so far).
func (e *MsgEncoder) SeqNum() uint32 { return e.seq }

// MaxRecords returns how many flow records fit in a message of at most
// budget bytes, optionally alongside the template set. Used by the UDP
// exporter to pack datagrams under the path MTU.
func MaxRecords(budget int, includeTemplate bool) int {
	budget -= msgHeaderLen + setHeaderLen
	if includeTemplate {
		budget -= templateSetLen
	}
	if budget < 0 {
		return 0
	}
	n := budget / flowRecordLen
	if n > maxRecordsPerMsg {
		n = maxRecordsPerMsg
	}
	return n
}

// Encode builds one IPFIX message containing records (and the template
// set when includeTemplate is set), stamped with exportTime. The returned
// slice is valid until the next Encode call. len(records) must not exceed
// maxRecordsPerMsg (the message length field is 16-bit).
func (e *MsgEncoder) Encode(records []FlowRecord, includeTemplate bool, exportTime uint32) []byte {
	b := e.buf[:0]
	// Message header; length patched below.
	b = binary.BigEndian.AppendUint16(b, ipfixVersion)
	b = append(b, 0, 0) // length placeholder
	b = binary.BigEndian.AppendUint32(b, exportTime)
	b = binary.BigEndian.AppendUint32(b, e.seq)
	b = binary.BigEndian.AppendUint32(b, e.domain)

	if includeTemplate {
		// Template set: set id 2, one template record.
		setStart := len(b)
		b = binary.BigEndian.AppendUint16(b, templateSetID)
		b = append(b, 0, 0) // set length placeholder
		b = binary.BigEndian.AppendUint16(b, flowTemplateID)
		b = binary.BigEndian.AppendUint16(b, uint16(len(flowTemplate)))
		for _, f := range flowTemplate {
			b = binary.BigEndian.AppendUint16(b, f.id)
			b = binary.BigEndian.AppendUint16(b, f.length)
		}
		binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
	}

	if len(records) > 0 {
		setStart := len(b)
		b = binary.BigEndian.AppendUint16(b, flowTemplateID)
		b = append(b, 0, 0)
		for i := range records {
			b = appendRecord(b, &records[i])
		}
		binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
		e.seq += uint32(len(records))
	}

	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	e.buf = b
	return b
}

// MsgDecoder decodes self-contained IPFIX messages — one UDP datagram
// each for the live collector — keeping template state across messages.
// The file Reader shares its set-parsing logic.
type MsgDecoder struct {
	templates map[uint16]*template
}

// NewMsgDecoder returns a decoder with no templates learned yet.
func NewMsgDecoder() *MsgDecoder {
	return &MsgDecoder{templates: make(map[uint16]*template)}
}

// Decode parses one complete message held in b, appends its flow records
// to dst, and returns the extended slice plus the message header. It is
// the datagram-oriented entry point: b must contain exactly one message.
func (d *MsgDecoder) Decode(b []byte, dst []FlowRecord) ([]FlowRecord, MsgHeader, error) {
	var hdr MsgHeader
	if len(b) < msgHeaderLen {
		return dst, hdr, fmt.Errorf("ipfix: short message: %d bytes, header needs %d", len(b), msgHeaderLen)
	}
	version := binary.BigEndian.Uint16(b[0:2])
	if version != ipfixVersion {
		return dst, hdr, fmt.Errorf("ipfix: unsupported version %d", version)
	}
	hdr.Length = binary.BigEndian.Uint16(b[2:4])
	hdr.ExportTime = binary.BigEndian.Uint32(b[4:8])
	hdr.SeqNum = binary.BigEndian.Uint32(b[8:12])
	hdr.Domain = binary.BigEndian.Uint32(b[12:16])
	if int(hdr.Length) != len(b) {
		return dst, hdr, fmt.Errorf("ipfix: message length field %d != datagram size %d", hdr.Length, len(b))
	}
	out, err := d.decodeBody(b[msgHeaderLen:], dst)
	if err != nil {
		err = fmt.Errorf("ipfix: %w", err)
	}
	return out, hdr, err
}

// decodeBody parses the sets in a message body (everything after the
// 16-byte header), appending decoded flow records to dst.
func (d *MsgDecoder) decodeBody(body []byte, dst []FlowRecord) ([]FlowRecord, error) {
	setIndex := 0
	for len(body) > 0 {
		if len(body) < setHeaderLen {
			return dst, fmt.Errorf("set %d: truncated set header (%d trailing bytes)", setIndex, len(body))
		}
		setID := binary.BigEndian.Uint16(body[0:2])
		setLen := int(binary.BigEndian.Uint16(body[2:4]))
		if setLen < setHeaderLen || setLen > len(body) {
			return dst, fmt.Errorf("set %d: invalid set length %d (remaining %d)", setIndex, setLen, len(body))
		}
		content := body[setHeaderLen:setLen]
		var err error
		switch {
		case setID == templateSetID:
			err = d.parseTemplateSet(content)
		case setID >= 256:
			dst, err = d.parseDataSet(setID, content, dst)
		default:
			// Options template sets (id 3) and reserved ids are skipped.
		}
		if err != nil {
			return dst, fmt.Errorf("set %d: %w", setIndex, err)
		}
		body = body[setLen:]
		setIndex++
	}
	return dst, nil
}

func (d *MsgDecoder) parseTemplateSet(b []byte) error {
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b[0:2])
		count := int(binary.BigEndian.Uint16(b[2:4]))
		b = b[4:]
		if id < 256 {
			return fmt.Errorf("template id %d below 256", id)
		}
		if len(b) < 4*count {
			return fmt.Errorf("template %d: truncated record: %d field specs declared, %d bytes left", id, count, len(b))
		}
		t := &template{fields: make([]templateField, 0, count)}
		for i := 0; i < count; i++ {
			fid := binary.BigEndian.Uint16(b[4*i:])
			flen := binary.BigEndian.Uint16(b[4*i+2:])
			if fid&0x8000 != 0 {
				return fmt.Errorf("enterprise-specific element %d not supported", fid&0x7fff)
			}
			if flen == 0xffff {
				return fmt.Errorf("variable-length element %d not supported", fid)
			}
			if want, known := knownElementLen[fid]; known && flen != want {
				return fmt.Errorf("element %d length %d, want %d (reduced-size encoding not supported)", fid, flen, want)
			}
			t.fields = append(t.fields, templateField{id: fid, length: flen})
			t.recordLen += int(flen)
		}
		if t.recordLen == 0 {
			return fmt.Errorf("template %d with zero record length", id)
		}
		d.templates[id] = t
		b = b[4*count:]
	}
	return nil
}

func (d *MsgDecoder) parseDataSet(id uint16, b []byte, dst []FlowRecord) ([]FlowRecord, error) {
	t, ok := d.templates[id]
	if !ok {
		return dst, fmt.Errorf("data set references unknown template %d", id)
	}
	// Trailing bytes shorter than one record are padding (RFC 7011 §3.3.1).
	recIndex := 0
	for len(b) >= t.recordLen {
		var rec FlowRecord
		if err := t.decode(b[:t.recordLen], &rec); err != nil {
			return dst, fmt.Errorf("record %d: %w", recIndex, err)
		}
		dst = append(dst, rec)
		b = b[t.recordLen:]
		recIndex++
	}
	return dst, nil
}
