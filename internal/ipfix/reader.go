package ipfix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Reader decodes an IPFIX stream into FlowRecords. It learns templates
// from template sets as they appear and decodes data sets against them;
// data sets whose template has not been seen yet are an error for file
// streams (unlike UDP export, files carry templates in-band and in order).
//
// Decode errors are wrapped with the zero-based message index and the
// byte offset of that message in the stream, so a corrupt file points at
// the damage rather than a bare io.ErrUnexpectedEOF.
type Reader struct {
	r        *bufio.Reader
	dec      *MsgDecoder
	queue    []FlowRecord
	hdr      [msgHeaderLen]byte
	body     []byte
	offset   int64 // stream offset of the next unread byte
	msgIndex int   // messages fully consumed so far
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		r:   bufio.NewReaderSize(r, 1<<16),
		dec: NewMsgDecoder(),
	}
}

// Next returns the next flow record, or io.EOF at end of stream.
func (rd *Reader) Next() (*FlowRecord, error) {
	for len(rd.queue) == 0 {
		if err := rd.readMessage(); err != nil {
			return nil, err
		}
	}
	rec := rd.queue[0]
	rd.queue = rd.queue[1:]
	return &rec, nil
}

// NextBatch decodes the flow records of the next non-empty message into
// b, replacing its contents, and returns io.EOF at end of stream. The
// caller owns b and may reuse it across calls; backing storage grows once
// to a full message and is then reused, so steady-state decoding does not
// allocate per record.
//
// NextBatch and Next may be interleaved: any records still queued from a
// message partially drained by Next are returned as a batch first.
func (rd *Reader) NextBatch(b *RecordBatch) error {
	for len(rd.queue) == 0 {
		if err := rd.readMessage(); err != nil {
			return err
		}
	}
	b.Recs = append(b.Recs[:0], rd.queue...)
	rd.queue = rd.queue[:0]
	return nil
}

// msgErr decorates a decode error with the index and stream offset of the
// message being read.
func (rd *Reader) msgErr(msgStart int64, err error) error {
	return fmt.Errorf("ipfix: message %d at offset %d: %w", rd.msgIndex, msgStart, err)
}

func (rd *Reader) readMessage() error {
	msgStart := rd.offset
	n, err := io.ReadFull(rd.r, rd.hdr[:])
	rd.offset += int64(n)
	if err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return rd.msgErr(msgStart, fmt.Errorf("truncated message header: %d of %d bytes: %w", n, msgHeaderLen, err))
		}
		return err
	}
	version := binary.BigEndian.Uint16(rd.hdr[0:2])
	if version != ipfixVersion {
		return rd.msgErr(msgStart, fmt.Errorf("unsupported version %d", version))
	}
	length := int(binary.BigEndian.Uint16(rd.hdr[2:4]))
	if length < msgHeaderLen {
		return rd.msgErr(msgStart, fmt.Errorf("message length %d below header size", length))
	}
	bodyLen := length - msgHeaderLen
	if cap(rd.body) < bodyLen {
		rd.body = make([]byte, bodyLen)
	}
	body := rd.body[:bodyLen]
	n, err = io.ReadFull(rd.r, body)
	rd.offset += int64(n)
	if err != nil {
		// A clean EOF here still means truncation: the header promised
		// bodyLen more bytes.
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.ErrUnexpectedEOF
		}
		return rd.msgErr(msgStart, fmt.Errorf("truncated message body: %d of %d bytes: %w", n, bodyLen, err))
	}

	rd.queue, err = rd.dec.decodeBody(body, rd.queue)
	if err != nil {
		return rd.msgErr(msgStart, err)
	}
	rd.msgIndex++
	return nil
}

// ReadAll drains the stream. Intended for tests and small datasets.
func ReadAll(r io.Reader) ([]FlowRecord, error) {
	rd := NewReader(r)
	var out []FlowRecord
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, *rec)
	}
}
