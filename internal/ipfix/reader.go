package ipfix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Reader decodes an IPFIX stream into FlowRecords. It learns templates
// from template sets as they appear and decodes data sets against them;
// data sets whose template has not been seen yet are an error for file
// streams (unlike UDP export, files carry templates in-band and in order).
type Reader struct {
	r         *bufio.Reader
	templates map[uint16]*template
	queue     []FlowRecord
	hdr       [msgHeaderLen]byte
	body      []byte
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		r:         bufio.NewReaderSize(r, 1<<16),
		templates: make(map[uint16]*template),
	}
}

// Next returns the next flow record, or io.EOF at end of stream.
func (rd *Reader) Next() (*FlowRecord, error) {
	for len(rd.queue) == 0 {
		if err := rd.readMessage(); err != nil {
			return nil, err
		}
	}
	rec := rd.queue[0]
	rd.queue = rd.queue[1:]
	return &rec, nil
}

func (rd *Reader) readMessage() error {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("ipfix: truncated message header: %w", err)
		}
		return err
	}
	version := binary.BigEndian.Uint16(rd.hdr[0:2])
	if version != ipfixVersion {
		return fmt.Errorf("ipfix: unsupported version %d", version)
	}
	length := int(binary.BigEndian.Uint16(rd.hdr[2:4]))
	if length < msgHeaderLen {
		return fmt.Errorf("ipfix: message length %d below header size", length)
	}
	bodyLen := length - msgHeaderLen
	if cap(rd.body) < bodyLen {
		rd.body = make([]byte, bodyLen)
	}
	body := rd.body[:bodyLen]
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return fmt.Errorf("ipfix: truncated message body: %w", err)
	}

	for len(body) > 0 {
		if len(body) < setHeaderLen {
			return fmt.Errorf("ipfix: truncated set header")
		}
		setID := binary.BigEndian.Uint16(body[0:2])
		setLen := int(binary.BigEndian.Uint16(body[2:4]))
		if setLen < setHeaderLen || setLen > len(body) {
			return fmt.Errorf("ipfix: invalid set length %d (remaining %d)", setLen, len(body))
		}
		content := body[setHeaderLen:setLen]
		switch {
		case setID == templateSetID:
			if err := rd.parseTemplateSet(content); err != nil {
				return err
			}
		case setID >= 256:
			if err := rd.parseDataSet(setID, content); err != nil {
				return err
			}
		default:
			// Options template sets (id 3) and reserved ids are skipped.
		}
		body = body[setLen:]
	}
	return nil
}

func (rd *Reader) parseTemplateSet(b []byte) error {
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b[0:2])
		count := int(binary.BigEndian.Uint16(b[2:4]))
		b = b[4:]
		if id < 256 {
			return fmt.Errorf("ipfix: template id %d below 256", id)
		}
		if len(b) < 4*count {
			return fmt.Errorf("ipfix: truncated template record")
		}
		t := &template{fields: make([]templateField, 0, count)}
		for i := 0; i < count; i++ {
			fid := binary.BigEndian.Uint16(b[4*i:])
			flen := binary.BigEndian.Uint16(b[4*i+2:])
			if fid&0x8000 != 0 {
				return fmt.Errorf("ipfix: enterprise-specific element %d not supported", fid&0x7fff)
			}
			if flen == 0xffff {
				return fmt.Errorf("ipfix: variable-length element %d not supported", fid)
			}
			if want, known := knownElementLen[fid]; known && flen != want {
				return fmt.Errorf("ipfix: element %d length %d, want %d (reduced-size encoding not supported)", fid, flen, want)
			}
			t.fields = append(t.fields, templateField{id: fid, length: flen})
			t.recordLen += int(flen)
		}
		if t.recordLen == 0 {
			return fmt.Errorf("ipfix: template %d with zero record length", id)
		}
		rd.templates[id] = t
		b = b[4*count:]
	}
	return nil
}

func (rd *Reader) parseDataSet(id uint16, b []byte) error {
	t, ok := rd.templates[id]
	if !ok {
		return fmt.Errorf("ipfix: data set references unknown template %d", id)
	}
	// Trailing bytes shorter than one record are padding (RFC 7011 §3.3.1).
	for len(b) >= t.recordLen {
		var rec FlowRecord
		if err := t.decode(b[:t.recordLen], &rec); err != nil {
			return err
		}
		rd.queue = append(rd.queue, rec)
		b = b[t.recordLen:]
	}
	return nil
}

// ReadAll drains the stream. Intended for tests and small datasets.
func ReadAll(r io.Reader) ([]FlowRecord, error) {
	rd := NewReader(r)
	var out []FlowRecord
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, *rec)
	}
}
