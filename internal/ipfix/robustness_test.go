package ipfix

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// TestReaderNeverPanicsOnCorruption feeds the reader random corruptions
// of a valid stream: every read must return records or an error, never
// panic.
func TestReaderNeverPanicsOnCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.BatchSize = 4
	for i := 0; i < 64; i++ {
		rec := sampleRecord(i)
		if err := w.WriteRecord(&rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	valid := buf.Bytes()

	r := stats.NewRNG(0xc0ffee)
	for trial := 0; trial < 5000; trial++ {
		data := append([]byte(nil), valid...)
		switch trial % 3 {
		case 0:
			for k := 0; k < 1+r.Intn(6); k++ {
				data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
			}
		case 1:
			data = data[:r.Intn(len(data)+1)]
		default:
			data = make([]byte, r.Intn(200))
			for i := range data {
				data[i] = byte(r.Uint64())
			}
		}
		_, _ = ReadAll(bytes.NewReader(data)) // must not panic
	}
}
