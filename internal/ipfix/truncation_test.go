package ipfix

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// ipfixStream encodes records in batches of batch and returns the raw
// bytes plus each message's start offset.
func ipfixStream(t *testing.T, n, batch int) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.BatchSize = batch
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		if err := w.WriteRecord(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var starts []int
	for off := 0; off < len(raw); {
		starts = append(starts, off)
		off += int(binary.BigEndian.Uint16(raw[off+2 : off+4]))
	}
	return raw, starts
}

// TestReaderTruncationErrors cuts a valid stream inside the second
// message and asserts the error names the message index and stream
// offset instead of a bare io.ErrUnexpectedEOF.
func TestReaderTruncationErrors(t *testing.T) {
	valid, starts := ipfixStream(t, 12, 4) // 3 messages of 4 records each
	if len(starts) != 3 {
		t.Fatalf("stream has %d messages, want 3", len(starts))
	}
	second := starts[1]

	cases := []struct {
		name string
		cut  int
		want []string
	}{
		{"mid message header", second + 7, []string{"message 1", "truncated message header", "7 of 16"}},
		{"header only", second + msgHeaderLen, []string{"message 1", "truncated message body", "0 of"}},
		{"mid data record", second + msgHeaderLen + setHeaderLen + flowRecordLen/2, []string{"message 1", "truncated message body"}},
		{"mid final message", len(valid) - 1, []string{"message 2", "truncated message body"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := ReadAll(bytes.NewReader(valid[:tc.cut]))
			if err == nil {
				t.Fatalf("no error for truncation at %d bytes", tc.cut)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("truncation reported as clean EOF: %v", err)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
			wantRecs := 4
			if tc.cut >= starts[2] {
				wantRecs = 8
			}
			if len(recs) != wantRecs {
				t.Errorf("decoded %d records before error, want %d", len(recs), wantRecs)
			}
		})
	}
}

// TestReaderOffsetInError pins the reported offset to the actual message
// boundary.
func TestReaderOffsetInError(t *testing.T) {
	valid, starts := ipfixStream(t, 8, 4)
	_, err := ReadAll(bytes.NewReader(valid[:starts[1]+3]))
	if err == nil {
		t.Fatal("expected error")
	}
	want := fmt.Sprintf("ipfix: message 1 at offset %d:", starts[1])
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
}

// TestReaderSetErrors corrupts set structure (rather than truncating the
// file) and checks the set index is reported.
func TestReaderSetErrors(t *testing.T) {
	t.Run("invalid set length", func(t *testing.T) {
		valid, starts := ipfixStream(t, 8, 4)
		data := append([]byte(nil), valid...)
		// Second message carries a single data set; overstate its length.
		setLenOff := starts[1] + msgHeaderLen + 2
		binary.BigEndian.PutUint16(data[setLenOff:], 0xfff0)
		_, err := ReadAll(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), "set 0: invalid set length") {
			t.Fatalf("err = %v, want set 0 invalid set length", err)
		}
	})
	t.Run("unknown template", func(t *testing.T) {
		valid, starts := ipfixStream(t, 8, 4)
		// Drop the first message (which carries the template set): the
		// second message's data set now references an unlearned template.
		_, err := ReadAll(bytes.NewReader(valid[starts[1]:]))
		if err == nil || !strings.Contains(err.Error(), "unknown template") {
			t.Fatalf("err = %v, want unknown template", err)
		}
	})
}

// TestMsgDecoderDatagramErrors exercises the datagram entry point used by
// the live collector.
func TestMsgDecoderDatagramErrors(t *testing.T) {
	enc := NewMsgEncoder(7)
	recs := []FlowRecord{sampleRecord(0), sampleRecord(1)}
	msg := append([]byte(nil), enc.Encode(recs, true, 1234)...)

	d := NewMsgDecoder()
	out, hdr, err := d.Decode(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || hdr.Domain != 7 || hdr.SeqNum != 0 || hdr.ExportTime != 1234 {
		t.Fatalf("decode = %d records, hdr %+v", len(out), hdr)
	}
	if enc.SeqNum() != 2 {
		t.Fatalf("encoder seq = %d, want 2", enc.SeqNum())
	}

	if _, _, err := d.Decode(msg[:10], nil); err == nil || !strings.Contains(err.Error(), "short message") {
		t.Fatalf("short datagram: err = %v", err)
	}
	if _, _, err := d.Decode(msg[:len(msg)-5], nil); err == nil || !strings.Contains(err.Error(), "datagram size") {
		t.Fatalf("length mismatch: err = %v", err)
	}
	// A fresh decoder has not learned the template: data-only message.
	msg2 := append([]byte(nil), enc.Encode(recs, false, 1234)...)
	if _, _, err := NewMsgDecoder().Decode(msg2, nil); err == nil || !strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("unknown template: err = %v", err)
	}
}

// TestMaxRecords checks the datagram packing bound.
func TestMaxRecords(t *testing.T) {
	if got := MaxRecords(1400, true); got != (1400-msgHeaderLen-setHeaderLen-templateSetLen)/flowRecordLen {
		t.Fatalf("MaxRecords(1400, template) = %d", got)
	}
	withT, without := MaxRecords(1400, true), MaxRecords(1400, false)
	if withT >= without {
		t.Fatalf("template should cost records: %d >= %d", withT, without)
	}
	if MaxRecords(10, true) != 0 {
		t.Fatal("tiny budget should fit zero records")
	}
	if MaxRecords(1<<30, false) != maxRecordsPerMsg {
		t.Fatal("bound must respect 16-bit message length")
	}
}
