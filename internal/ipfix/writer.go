package ipfix

import (
	"bufio"
	"encoding/binary"
	"io"
	"time"
)

// Writer streams FlowRecords as IPFIX messages. The template set is
// emitted in the first message and re-emitted every templateResendEvery
// messages, matching exporter practice for datagram transports and making
// the file stream seekable-in-the-large (a reader starting at most
// templateResendEvery messages in will find a template).
type Writer struct {
	w       *bufio.Writer
	c       io.Closer
	domain  uint32
	seq     uint32
	msgs    int
	pending []FlowRecord
	buf     []byte
	// BatchSize is the number of records accumulated per message.
	// Defaults to 1024; tests may lower it.
	BatchSize int
}

const templateResendEvery = 512

// NewWriter creates a Writer exporting on observation domain id domain.
// If w is an io.Closer, Close closes it.
func NewWriter(w io.Writer, domain uint32) *Writer {
	wr := &Writer{
		w:         bufio.NewWriterSize(w, 1<<16),
		domain:    domain,
		BatchSize: 1024,
	}
	if c, ok := w.(io.Closer); ok {
		wr.c = c
	}
	return wr
}

// WriteRecord queues r for export, flushing a full message when the batch
// fills.
func (w *Writer) WriteRecord(r *FlowRecord) error {
	w.pending = append(w.pending, *r)
	if len(w.pending) >= w.BatchSize || len(w.pending) >= maxRecordsPerMsg {
		return w.emit()
	}
	return nil
}

// Flush writes any pending records and flushes the underlying buffer.
func (w *Writer) Flush() error {
	if len(w.pending) > 0 {
		if err := w.emit(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Close flushes and closes the destination if it is an io.Closer.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// emit writes one IPFIX message containing (optionally) the template set
// and all pending data records.
func (w *Writer) emit() error {
	includeTemplate := w.msgs%templateResendEvery == 0
	w.msgs++

	b := w.buf[:0]
	// Message header; length patched below.
	b = binary.BigEndian.AppendUint16(b, ipfixVersion)
	b = append(b, 0, 0) // length placeholder
	exportTime := uint32(0)
	if len(w.pending) > 0 {
		exportTime = uint32(w.pending[len(w.pending)-1].Start.Unix())
	} else {
		exportTime = uint32(time.Now().Unix())
	}
	b = binary.BigEndian.AppendUint32(b, exportTime)
	b = binary.BigEndian.AppendUint32(b, w.seq)
	b = binary.BigEndian.AppendUint32(b, w.domain)

	if includeTemplate {
		// Template set: set id 2, one template record.
		setStart := len(b)
		b = binary.BigEndian.AppendUint16(b, templateSetID)
		b = append(b, 0, 0) // set length placeholder
		b = binary.BigEndian.AppendUint16(b, flowTemplateID)
		b = binary.BigEndian.AppendUint16(b, uint16(len(flowTemplate)))
		for _, f := range flowTemplate {
			b = binary.BigEndian.AppendUint16(b, f.id)
			b = binary.BigEndian.AppendUint16(b, f.length)
		}
		binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
	}

	if len(w.pending) > 0 {
		setStart := len(b)
		b = binary.BigEndian.AppendUint16(b, flowTemplateID)
		b = append(b, 0, 0)
		for i := range w.pending {
			b = appendRecord(b, &w.pending[i])
		}
		binary.BigEndian.PutUint16(b[setStart+2:], uint16(len(b)-setStart))
		w.seq += uint32(len(w.pending))
		w.pending = w.pending[:0]
	}

	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	w.buf = b
	_, err := w.w.Write(b)
	return err
}
