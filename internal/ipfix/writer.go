package ipfix

import (
	"bufio"
	"io"
	"time"
)

// Writer streams FlowRecords as IPFIX messages. The template set is
// emitted in the first message and re-emitted every templateResendEvery
// messages, matching exporter practice for datagram transports and making
// the file stream seekable-in-the-large (a reader starting at most
// templateResendEvery messages in will find a template).
type Writer struct {
	w       *bufio.Writer
	c       io.Closer
	enc     *MsgEncoder
	msgs    int
	pending []FlowRecord
	// BatchSize is the number of records accumulated per message.
	// Defaults to 1024; tests may lower it.
	BatchSize int
}

const templateResendEvery = 512

// NewWriter creates a Writer exporting on observation domain id domain.
// If w is an io.Closer, Close closes it.
func NewWriter(w io.Writer, domain uint32) *Writer {
	wr := &Writer{
		w:         bufio.NewWriterSize(w, 1<<16),
		enc:       NewMsgEncoder(domain),
		BatchSize: 1024,
	}
	if c, ok := w.(io.Closer); ok {
		wr.c = c
	}
	return wr
}

// WriteRecord queues r for export, flushing a full message when the batch
// fills.
func (w *Writer) WriteRecord(r *FlowRecord) error {
	w.pending = append(w.pending, *r)
	if len(w.pending) >= w.BatchSize || len(w.pending) >= maxRecordsPerMsg {
		return w.emit()
	}
	return nil
}

// WriteBatch queues every record of b for export, emitting full messages
// as the pending buffer fills. It borrows b per the RecordBatch contract.
func (w *Writer) WriteBatch(b *RecordBatch) error {
	recs := b.Recs
	for len(recs) > 0 {
		limit := w.BatchSize
		if limit > maxRecordsPerMsg {
			limit = maxRecordsPerMsg
		}
		room := limit - len(w.pending)
		if room > len(recs) {
			room = len(recs)
		}
		w.pending = append(w.pending, recs[:room]...)
		recs = recs[room:]
		if len(w.pending) >= limit {
			if err := w.emit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes any pending records and flushes the underlying buffer.
func (w *Writer) Flush() error {
	if len(w.pending) > 0 {
		if err := w.emit(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Close flushes and closes the destination if it is an io.Closer.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// emit writes one IPFIX message containing (optionally) the template set
// and all pending data records.
func (w *Writer) emit() error {
	includeTemplate := w.msgs%templateResendEvery == 0
	w.msgs++

	exportTime := uint32(time.Now().Unix())
	if len(w.pending) > 0 {
		exportTime = uint32(w.pending[len(w.pending)-1].Start.Unix())
	}
	b := w.enc.Encode(w.pending, includeTemplate, exportTime)
	w.pending = w.pending[:0]
	_, err := w.w.Write(b)
	return err
}
