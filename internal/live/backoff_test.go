package live

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// TestNextBackoffSchedule walks the backoff ladder attempt by attempt:
// each delay must fall in [base/2, base) where base doubles from
// ReconnectMin and caps at ReconnectMax.
func TestNextBackoffSchedule(t *testing.T) {
	const min, max = 5 * time.Millisecond, 80 * time.Millisecond
	cases := []struct {
		attempt int
		base    time.Duration // un-jittered exponential value
	}{
		{0, 5 * time.Millisecond},
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 40 * time.Millisecond},
		{4, 80 * time.Millisecond},
		{5, 80 * time.Millisecond},  // capped
		{10, 80 * time.Millisecond}, // stays capped, no overflow
		{62, 80 * time.Millisecond}, // would overflow a naive shift
	}
	rng := stats.NewRNG(1)
	for _, tc := range cases {
		// Several draws per attempt: the jitter must stay in bounds for
		// any variate, not just the first.
		for draw := 0; draw < 50; draw++ {
			d := nextBackoff(min, max, tc.attempt, rng)
			if d < tc.base/2 || d >= tc.base {
				t.Fatalf("attempt %d draw %d: backoff %v outside [%v, %v)",
					tc.attempt, draw, d, tc.base/2, tc.base)
			}
		}
	}
}

func TestNextBackoffDeterministicPerSeed(t *testing.T) {
	const min, max = 5 * time.Millisecond, 80 * time.Millisecond
	seq := func(seed uint64) []time.Duration {
		rng := stats.NewRNG(seed)
		out := make([]time.Duration, 12)
		for a := range out {
			out[a] = nextBackoff(min, max, a, rng)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed drew %v then %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 12-draw jitter sequence")
	}
}

func TestNextBackoffDegenerateRange(t *testing.T) {
	// min == max: jitter still applies within [max/2, max); never zero,
	// never above the cap.
	rng := stats.NewRNG(3)
	for a := 0; a < 6; a++ {
		d := nextBackoff(time.Second, time.Second, a, rng)
		if d < 500*time.Millisecond || d >= time.Second {
			t.Fatalf("attempt %d: %v outside [500ms, 1s)", a, d)
		}
	}
}
