package live

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ipfix"
)

// Collector receives IPFIX datagrams on a UDP socket, decodes them, and
// hands every flow record to a sink in arrival order.
//
// Backpressure policy: the socket reader never blocks on the decoder —
// it copies each datagram into a bounded ingest queue and, when the
// queue is full, drops the datagram and counts it (DroppedDatagrams).
// Records lost that way (and any lost by the kernel) surface in
// DroppedRecords through RFC 7011 sequence-number gap accounting: each
// message header carries the count of data records sent before it, so a
// jump beyond the expected value measures exactly how many records never
// arrived.
type Collector struct {
	conn  *net.UDPConn
	sink  ipfix.BatchSink
	m     *Metrics
	queue chan []byte

	dec      *ipfix.MsgDecoder
	expected map[uint32]uint32 // per observation domain: next expected seq
	seen     map[uint32]bool

	mu      sync.Mutex
	sinkErr error
	wg      sync.WaitGroup
	closed  sync.Once
}

// NewCollector starts a collector on conn. queueLen bounds the ingest
// queue (0 means 4096 datagrams). The sink is called from the single
// decode goroutine with one batch per decoded datagram, borrowed per the
// ipfix.RecordBatch contract.
func NewCollector(conn *net.UDPConn, queueLen int, sink ipfix.BatchSink, m *Metrics) *Collector {
	if queueLen <= 0 {
		queueLen = 4096
	}
	if m == nil {
		m = NewMetrics()
	}
	// A large kernel receive buffer keeps loopback loss at zero even
	// when the decoder stalls briefly (GC, sink I/O).
	_ = conn.SetReadBuffer(4 << 20)
	c := &Collector{
		conn:     conn,
		sink:     sink,
		m:        m,
		queue:    make(chan []byte, queueLen),
		dec:      ipfix.NewMsgDecoder(),
		expected: make(map[uint32]uint32),
		seen:     make(map[uint32]bool),
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.decodeLoop()
	return c
}

// readLoop drains the socket as fast as possible; queue-full datagrams
// are shed here, never blocking the socket.
func (c *Collector) readLoop() {
	defer c.wg.Done()
	defer close(c.queue)
	buf := make([]byte, 1<<16)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		dg := make([]byte, n)
		copy(dg, buf[:n])
		select {
		case c.queue <- dg:
		default:
			c.m.DroppedDatagrams.Inc()
		}
	}
}

// decodeLoop decodes queued datagrams and feeds the sink.
func (c *Collector) decodeLoop() {
	defer c.wg.Done()
	batch := ipfix.GetBatch()
	defer batch.Release()
	for dg := range c.queue {
		recs, hdr, err := c.dec.Decode(dg, batch.Recs[:0])
		batch.Recs = recs
		if err != nil {
			c.m.DecodeErrors.Inc()
			continue
		}
		if c.seen[hdr.Domain] {
			want := c.expected[hdr.Domain]
			switch {
			case hdr.SeqNum == want:
			case hdr.SeqNum > want:
				c.m.DroppedRecords.Add(int64(hdr.SeqNum - want))
			default:
				// A reordered late message: its records were already
				// counted as dropped; replaying them now would disorder
				// the archive.
				c.m.LateMsgs.Inc()
				continue
			}
		}
		c.seen[hdr.Domain] = true
		c.expected[hdr.Domain] = hdr.SeqNum + uint32(len(recs))
		c.m.CollectedMsgs.Inc()
		if len(recs) == 0 {
			continue
		}
		if err := c.sink(batch); err != nil {
			c.mu.Lock()
			if c.sinkErr == nil {
				c.sinkErr = err
			}
			c.mu.Unlock()
			return
		}
		c.m.CollectedRecords.Add(int64(len(recs)))
	}
}

// Accounted returns collected + dropped records: the collector's view of
// how much of the export stream it has resolved.
func (c *Collector) Accounted() int64 {
	return c.m.CollectedRecords.Value() + c.m.DroppedRecords.Value()
}

// Drain waits until the collector has accounted for expected records
// (collected or measured as dropped), or until timeout. Call after the
// exporter has flushed; the exporter's record count is the target.
func (c *Collector) Drain(expected int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for c.Accounted() < expected {
		if err := c.err(); err != nil {
			return err
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("live: collector drain timed out: accounted %d of %d records",
				c.Accounted(), expected)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return c.err()
}

func (c *Collector) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// Close stops the read loop, finishes decoding everything queued, and
// returns the first sink error, if any.
func (c *Collector) Close() error {
	c.closed.Do(func() { c.conn.Close() })
	c.wg.Wait()
	return c.err()
}
