package live

import (
	"fmt"
	"net"

	"repro/internal/ipfix"
)

// exporter defaults.
const (
	// DefaultMTU bounds exported datagram size: a conservative path MTU
	// for loopback/LAN export (RFC 7011 §10.3.3 requires staying under
	// it, since IPFIX over UDP must not rely on fragmentation).
	DefaultMTU = 1400
	// templateEvery is how often (in messages) the template set is
	// re-sent. UDP delivery is unreliable, so templates repeat much more
	// often than in the file archive: a collector joining late or losing
	// the first datagram recovers within templateEvery messages.
	templateEvery = 32
)

// Exporter packs flow records into size-bounded IPFIX messages and sends
// each as one UDP datagram, with periodic template resends. Not
// goroutine-safe: the fabric emits records from the single driver
// goroutine.
type Exporter struct {
	conn    net.Conn
	enc     *ipfix.MsgEncoder
	pending []ipfix.FlowRecord
	perMsg  int
	msgs    int
	m       *Metrics
}

// NewExporter returns an exporter for observation domain id domain
// sending on conn (a connected UDP socket). mtu bounds the datagram
// size; 0 means DefaultMTU.
func NewExporter(conn net.Conn, domain uint32, mtu int, m *Metrics) (*Exporter, error) {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	// Reserve template space in every message so capacity is constant;
	// template-less messages just run slightly under the MTU.
	perMsg := ipfix.MaxRecords(mtu, true)
	if perMsg == 0 {
		return nil, fmt.Errorf("live: MTU %d fits no flow records", mtu)
	}
	if m == nil {
		m = NewMetrics()
	}
	return &Exporter{
		conn:   conn,
		enc:    ipfix.NewMsgEncoder(domain),
		perMsg: perMsg,
		m:      m,
	}, nil
}

// Export queues one record, sending a datagram when the message fills.
func (e *Exporter) Export(rec *ipfix.FlowRecord) error {
	e.pending = append(e.pending, *rec)
	if len(e.pending) >= e.perMsg {
		return e.emit()
	}
	return nil
}

// Flush sends any partially filled message.
func (e *Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	return e.emit()
}

func (e *Exporter) emit() error {
	includeTemplate := e.msgs%templateEvery == 0
	e.msgs++
	exportTime := uint32(e.pending[len(e.pending)-1].Start.Unix())
	msg := e.enc.Encode(e.pending, includeTemplate, exportTime)
	n := len(e.pending)
	e.pending = e.pending[:0]
	if _, err := e.conn.Write(msg); err != nil {
		return fmt.Errorf("live: exporting %d flow records: %w", n, err)
	}
	e.m.ExportedRecords.Add(int64(n))
	e.m.ExportedMsgs.Inc()
	return nil
}

// Exported returns the number of records handed to the network so far.
func (e *Exporter) Exported() int64 { return e.m.ExportedRecords.Value() }
