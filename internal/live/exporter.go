package live

import (
	"fmt"
	"net"

	"repro/internal/faultnet"
	"repro/internal/ipfix"
)

// exporter defaults.
const (
	// DefaultMTU bounds exported datagram size: a conservative path MTU
	// for loopback/LAN export (RFC 7011 §10.3.3 requires staying under
	// it, since IPFIX over UDP must not rely on fragmentation).
	DefaultMTU = 1400
	// templateEvery is how often (in messages) the template set is
	// re-sent. UDP delivery is unreliable, so templates repeat much more
	// often than in the file archive: a collector joining late or losing
	// the first datagram recovers within templateEvery messages.
	templateEvery = 32
)

// Exporter packs flow records into size-bounded IPFIX messages and sends
// each as one UDP datagram, with periodic template resends. Not
// goroutine-safe: the fabric emits records from the single driver
// goroutine.
type Exporter struct {
	conn    net.Conn
	enc     *ipfix.MsgEncoder
	pending []ipfix.FlowRecord
	perMsg  int
	msgs    int
	m       *Metrics

	// fault, when set, impairs every data datagram; every is the
	// template resend period (1 under a fault plan, so a dropped
	// template-bearing datagram can never strand later messages
	// undecodable — decode errors would break record-exact drop
	// accounting). lastExport is the last export timestamp emitted, for
	// Sync messages.
	fault      *faultnet.UDPSchedule
	every      int
	lastExport uint32
}

// NewExporter returns an exporter for observation domain id domain
// sending on conn (a connected UDP socket). mtu bounds the datagram
// size; 0 means DefaultMTU.
func NewExporter(conn net.Conn, domain uint32, mtu int, m *Metrics) (*Exporter, error) {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	// Reserve template space in every message so capacity is constant;
	// template-less messages just run slightly under the MTU.
	perMsg := ipfix.MaxRecords(mtu, true)
	if perMsg == 0 {
		return nil, fmt.Errorf("live: MTU %d fits no flow records", mtu)
	}
	if m == nil {
		m = NewMetrics()
	}
	return &Exporter{
		conn:   conn,
		enc:    ipfix.NewMsgEncoder(domain),
		perMsg: perMsg,
		m:      m,
		every:  templateEvery,
	}, nil
}

// SetFault routes every data datagram through the impairment schedule
// and makes every message self-describing (template in each datagram):
// under injected loss a dropped template must never turn later messages
// into decode errors, or sequence-gap accounting would stop being exact.
// It immediately emits one impairment-exempt Sync so the collector pins
// the sequence origin before any fault can strike: otherwise a drop of
// the very first data datagrams would shift the collector's baseline
// and the leading gap could never be accounted.
// An inert schedule (the "none" profile) keeps the batch template
// cadence: no datagram can be lost, so per-message templates would only
// add overhead to what is meant to measure the inactive wrapper.
func (e *Exporter) SetFault(u *faultnet.UDPSchedule) error {
	e.fault = u
	if !u.Inert() {
		e.every = 1
	}
	return e.Sync()
}

// Export queues one record, sending a datagram when the message fills.
func (e *Exporter) Export(rec *ipfix.FlowRecord) error {
	e.pending = append(e.pending, *rec)
	if len(e.pending) >= e.perMsg {
		return e.emit()
	}
	return nil
}

// ExportBatch queues every record of b, sending datagrams as messages
// fill. It borrows b per the ipfix.RecordBatch contract; the datagram
// packing is identical to per-record Export calls in the same order.
func (e *Exporter) ExportBatch(b *ipfix.RecordBatch) error {
	recs := b.Recs
	for len(recs) > 0 {
		room := e.perMsg - len(e.pending)
		if room > len(recs) {
			room = len(recs)
		}
		e.pending = append(e.pending, recs[:room]...)
		recs = recs[room:]
		if len(e.pending) >= e.perMsg {
			if err := e.emit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends any partially filled message.
func (e *Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	return e.emit()
}

// Sync transmits an empty, template-bearing message carrying the current
// sequence number, bypassing the impairment schedule (after releasing
// any datagram it still holds for reordering). A tail drop leaves no
// later message to reveal the sequence gap, so without Sync the
// collector could never account the loss and drain would hang; the
// runner retries Sync while draining under a fault plan.
func (e *Exporter) Sync() error {
	if e.fault != nil {
		if err := e.fault.Flush(e.rawWrite); err != nil {
			return fmt.Errorf("live: sync flush: %w", err)
		}
	}
	if err := e.rawWrite(e.enc.Encode(nil, true, e.lastExport)); err != nil {
		return fmt.Errorf("live: sync: %w", err)
	}
	e.m.SyncMsgs.Inc()
	return nil
}

func (e *Exporter) rawWrite(b []byte) error {
	_, err := e.conn.Write(b)
	return err
}

func (e *Exporter) emit() error {
	includeTemplate := e.msgs%e.every == 0
	e.msgs++
	exportTime := uint32(e.pending[len(e.pending)-1].Start.Unix())
	e.lastExport = exportTime
	msg := e.enc.Encode(e.pending, includeTemplate, exportTime)
	n := len(e.pending)
	e.pending = e.pending[:0]
	if e.fault != nil {
		if err := e.fault.Send(msg, n, e.rawWrite); err != nil {
			return fmt.Errorf("live: exporting %d flow records: %w", n, err)
		}
	} else if _, err := e.conn.Write(msg); err != nil {
		return fmt.Errorf("live: exporting %d flow records: %w", n, err)
	}
	e.m.ExportedRecords.Add(int64(n))
	e.m.ExportedMsgs.Inc()
	return nil
}

// Exported returns the number of records handed to the network so far.
func (e *Exporter) Exported() int64 { return e.m.ExportedRecords.Value() }
