package live

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/faultnet"
	"repro/internal/ipfix"
)

// waitCounter polls until fn returns true or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !fn() {
		if !time.Now().Before(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpeakerSurvivesKills drives updates through a session whose
// connections are killed and reset by a flapping-tcp plan, with the
// sequencer in the loop: every update must be delivered exactly once, in
// dispatch order, and every injected kill must be answered by exactly
// one reconnect.
func TestSpeakerSurvivesKills(t *testing.T) {
	const (
		peer = 64512
		n    = 300
	)
	plan := faultnet.NewPlan(21, faultnet.ProfileFlappingTCP)
	m := NewMetrics()
	var got []bgp.Prefix
	seq := NewSequencer(func(ts time.Time, p uint32, upd *bgp.Update) error {
		got = append(got, upd.NLRI...)
		return nil
	}, m)
	l, err := Listen("127.0.0.1:0", 65500, testSessionConfig(), Hooks{OnUpdate: seq.Arrive}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	cfg := testSessionConfig()
	cfg.Wrap = plan.TCP(peer).Wrap
	sp := Dial(l.Addr(), peer, cfg, m)
	defer sp.Close()

	base := time.Unix(1_600_000_000, 0).UTC()
	for i := 0; i < n; i++ {
		pfx := bgp.Prefix{Addr: 0x0a000000 + uint32(i), Len: 32}
		_, enc := testUpdate(t, pfx, peer)
		seq.Expect(base.Add(time.Duration(i)*time.Second), peer)
		if err := sp.Send(enc); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := seq.Barrier(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	kills := plan.M.TCPKills.Value()
	if kills == 0 || plan.M.TCPResets.Value() == 0 {
		t.Fatalf("plan injected too little: kills=%d resets=%d (pick a hotter seed)",
			kills, plan.M.TCPResets.Value())
	}
	if int64(len(got)) != n {
		t.Fatalf("delivered %d updates, want %d", len(got), n)
	}
	for i, pfx := range got {
		if want := (bgp.Prefix{Addr: 0x0a000000 + uint32(i), Len: 32}); pfx != want {
			t.Fatalf("delivery %d: prefix %v, want %v (order broken across reconnects)", i, pfx, want)
		}
	}
	if sent, delivered := m.UpdatesSent.Value(), m.UpdatesDelivered.Value(); sent != delivered || sent != n {
		t.Fatalf("sent %d, delivered %d, want both %d", sent, delivered, n)
	}
	// The last kill's replacement session may still be handshaking.
	waitFor(t, 10*time.Second, "reconnects to catch up with kills", func() bool {
		return m.Reconnects.Value() >= plan.M.TCPKills.Value()
	})
	if rec := m.Reconnects.Value(); rec != kills {
		t.Fatalf("reconnects=%d, want exactly kills=%d", rec, kills)
	}
}

// TestExporterChaosAccounting streams records through a lossy-udp plan
// and reconciles the collector's sequence-gap accounting against the
// injected faults, record for record.
func TestExporterChaosAccounting(t *testing.T) {
	const n = 20_000
	plan := faultnet.NewPlan(4, faultnet.ProfileLossyUDP)
	m := NewMetrics()
	collected := 0
	exp, col := newLoopbackPair(t, 0, func(b *ipfix.RecordBatch) error {
		collected += b.Len()
		return nil
	}, m)
	if err := exp.SetFault(plan.UDP()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		rec := flowRec(i)
		if err := exp.Export(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tail losses only surface via Sync; retry until the collector has
	// accounted for every exported record.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := exp.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := col.Drain(exp.Exported(), 100*time.Millisecond); err == nil {
			break
		} else if !time.Now().Before(deadline) {
			t.Fatal(err)
		}
	}

	f := plan.M
	if f.DroppedDatagrams.Value() == 0 || f.Duplicated.Value() == 0 || f.ReorderHolds.Value() == 0 {
		t.Fatalf("plan injected too little: drops=%d dups=%d reorders=%d",
			f.DroppedDatagrams.Value(), f.Duplicated.Value(), f.ReorderHolds.Value())
	}
	if m.DecodeErrors.Value() != 0 {
		t.Fatalf("%d decode errors (templates must ride every message under chaos)", m.DecodeErrors.Value())
	}
	if m.DroppedDatagrams.Value() != 0 {
		t.Fatalf("%d datagrams shed at the ingest queue; accounting equations assume none", m.DroppedDatagrams.Value())
	}
	wantDropped := f.DroppedRecords.Value() + f.ReorderLateRecords.Value()
	if got := m.DroppedRecords.Value(); got != wantDropped {
		t.Fatalf("collector accounted %d dropped records, want injected %d (+%d late reorders)",
			got, f.DroppedRecords.Value(), f.ReorderLateRecords.Value())
	}
	wantLate := f.Duplicated.Value() + f.ReorderLateDatagrams.Value()
	if got := m.LateMsgs.Value(); got != wantLate {
		t.Fatalf("collector saw %d late messages, want %d dups + %d late reorders",
			got, f.Duplicated.Value(), f.ReorderLateDatagrams.Value())
	}
	if got, want := int64(collected), int64(n)-wantDropped; got != want {
		t.Fatalf("collected %d records, want %d (%d exported - %d lost)", got, want, n, wantDropped)
	}
	if m.CollectedRecords.Value() != int64(collected) {
		t.Fatalf("CollectedRecords=%d, sink saw %d", m.CollectedRecords.Value(), collected)
	}
}

// TestRunnerChaosDrainPartition exercises the full runner path under
// partition-heal: tail windows of datagrams vanish and only the Sync
// loop lets the drain terminate with exact accounting.
func TestRunnerChaosDrainPartition(t *testing.T) {
	plan := faultnet.NewPlan(5, faultnet.ProfilePartitionHeal)
	m := NewMetrics()
	collected := 0
	exp, col := newLoopbackPair(t, 0, func(b *ipfix.RecordBatch) error {
		collected += b.Len()
		return nil
	}, m)
	if err := exp.SetFault(plan.UDP()); err != nil {
		t.Fatal(err)
	}

	const n = 3000
	for i := 0; i < n; i++ {
		rec := flowRec(i)
		if err := exp.Export(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := exp.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := col.Drain(exp.Exported(), 100*time.Millisecond); err == nil {
			break
		} else if !time.Now().Before(deadline) {
			t.Fatal(err)
		}
	}
	if plan.M.Partitions.Value() == 0 {
		t.Fatal("no partition opened")
	}
	if got, want := m.DroppedRecords.Value(), plan.M.DroppedRecords.Value(); got != want {
		t.Fatalf("accounted %d dropped records, injected %d", got, want)
	}
	if int64(collected)+m.DroppedRecords.Value() != int64(n) {
		t.Fatalf("collected %d + dropped %d != exported %d", collected, m.DroppedRecords.Value(), n)
	}
}
