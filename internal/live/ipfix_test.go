package live

import (
	"net"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ipfix"
)

func flowRec(i int) ipfix.FlowRecord {
	return ipfix.FlowRecord{
		Start:   time.UnixMilli(int64(1_600_000_000_000 + i*37)).UTC(),
		SrcMAC:  ipfix.MAC(0x020000000000 | uint64(i)),
		DstMAC:  ipfix.MAC(0x060000000000 | uint64(i)),
		SrcIP:   0x0a000000 + uint32(i),
		DstIP:   0xc0a80000 + uint32(i),
		SrcPort: uint16(1024 + i%60000),
		DstPort: 443,
		Proto:   17,
		Packets: 1,
		Bytes:   uint64(64 + i%1400),
	}
}

func newLoopbackPair(t *testing.T, queueLen int, sink ipfix.BatchSink, m *Metrics) (*Exporter, *Collector) {
	t.Helper()
	cc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(cc, queueLen, sink, m)
	t.Cleanup(func() { col.Close() })
	ec, err := net.Dial("udp", cc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ec.Close() })
	exp, err := NewExporter(ec, 1, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	return exp, col
}

// TestExportCollectLoopback streams records over a real UDP socket pair
// and asserts lossless, in-order, value-identical collection.
func TestExportCollectLoopback(t *testing.T) {
	const n = 10_000
	m := NewMetrics()
	var got []ipfix.FlowRecord
	exp, col := newLoopbackPair(t, 0, func(b *ipfix.RecordBatch) error {
		got = append(got, b.Recs...)
		return nil
	}, m)

	for i := 0; i < n; i++ {
		rec := flowRec(i)
		if err := exp.Export(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := col.Drain(exp.Exported(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	if m.DroppedRecords.Value() != 0 || m.DroppedDatagrams.Value() != 0 {
		t.Fatalf("loopback dropped: %d records, %d datagrams",
			m.DroppedRecords.Value(), m.DroppedDatagrams.Value())
	}
	if len(got) != n {
		t.Fatalf("collected %d records, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != flowRec(i) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], flowRec(i))
		}
	}
	if m.ExportedMsgs.Value() != m.CollectedMsgs.Value() {
		t.Fatalf("exported %d msgs, collected %d", m.ExportedMsgs.Value(), m.CollectedMsgs.Value())
	}
	// Datagrams stayed under the MTU bound.
	if per := ipfix.MaxRecords(DefaultMTU, true); int64(n+per-1)/int64(per) != m.ExportedMsgs.Value() {
		t.Fatalf("exported_msgs = %d, want ceil(%d/%d)", m.ExportedMsgs.Value(), n, per)
	}
}

// TestCollectorGapAccounting feeds the collector a deliberately gapped
// sequence (a "lost" datagram) and expects the missing records to be
// counted as dropped, making exported == collected + dropped.
func TestCollectorGapAccounting(t *testing.T) {
	m := NewMetrics()
	var got int
	cc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(cc, 0, func(b *ipfix.RecordBatch) error { got += b.Len(); return nil }, m)
	defer col.Close()
	ec, err := net.Dial("udp", cc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()

	enc := ipfix.NewMsgEncoder(1)
	batch := func(k int) []ipfix.FlowRecord {
		out := make([]ipfix.FlowRecord, 5)
		for i := range out {
			out[i] = flowRec(k*5 + i)
		}
		return out
	}
	send := func(b []byte) {
		if _, err := ec.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	send(enc.Encode(batch(0), true, 100))  // seq 0, delivered
	_ = enc.Encode(batch(1), false, 101)   // seq 5, "lost in transit"
	send(enc.Encode(batch(2), false, 102)) // seq 10, delivered

	if err := col.Drain(15, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("sink saw %d records, want 10", got)
	}
	if m.DroppedRecords.Value() != 5 {
		t.Fatalf("dropped_records = %d, want 5", m.DroppedRecords.Value())
	}
	if acc := col.Accounted(); acc != 15 {
		t.Fatalf("accounted = %d, want 15", acc)
	}
}

// TestCollectorLateDatagram replays an already-accounted message and
// expects it to be discarded (processing it would disorder the archive)
// and counted.
func TestCollectorLateDatagram(t *testing.T) {
	m := NewMetrics()
	var got int
	cc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(cc, 0, func(b *ipfix.RecordBatch) error { got += b.Len(); return nil }, m)
	defer col.Close()
	ec, err := net.Dial("udp", cc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()

	enc := ipfix.NewMsgEncoder(1)
	recs := []ipfix.FlowRecord{flowRec(0), flowRec(1)}
	early := append([]byte(nil), enc.Encode(recs, true, 100)...)   // seq 0
	onTime := append([]byte(nil), enc.Encode(recs, false, 101)...) // seq 2

	write := func(b []byte) {
		if _, err := ec.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	write(early)
	write(onTime)
	write(early) // duplicate/late replay of seq 0
	if err := col.Drain(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.LateMsgs.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.LateMsgs.Value() != 1 {
		t.Fatalf("late_msgs = %d, want 1", m.LateMsgs.Value())
	}
	if got != 4 {
		t.Fatalf("sink saw %d records, want 4 (late replay must not re-deliver)", got)
	}
}

// TestExporterMTUTooSmall rejects an MTU that cannot carry a record.
func TestExporterMTUTooSmall(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, err := NewExporter(c1, 1, 30, NewMetrics()); err == nil {
		t.Fatal("expected error for unusable MTU")
	}
}

// TestRunnerEndToEnd drives the whole runner: updates through real BGP
// sessions in sequenced order, flows through UDP, then drain, reconcile,
// shutdown.
func TestRunnerEndToEnd(t *testing.T) {
	type upd struct {
		ts   time.Time
		peer uint32
	}
	var deliveries []upd
	var flows int
	m := NewMetrics()
	r, err := NewRunner(t.Context(), RunnerConfig{Session: testSessionConfig()}, m,
		func(ts time.Time, peer uint32, u *bgp.Update) error {
			deliveries = append(deliveries, upd{ts, peer})
			return nil
		},
		nil,
		func(b *ipfix.RecordBatch) error { flows += b.Len(); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown()

	base := time.Unix(2000, 0)
	peers := []uint32{100, 200, 300, 100, 200, 100}
	for i, p := range peers {
		u, _ := testUpdate(t, bgp.Prefix{Addr: uint32(0x0a000000 + i), Len: 32}, p)
		if err := r.SendUpdate(base.Add(time.Duration(i)*time.Minute), p, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Barrier(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != len(peers) {
		t.Fatalf("delivered %d, want %d", len(deliveries), len(peers))
	}
	for i, d := range deliveries {
		if d.peer != peers[i] || !d.ts.Equal(base.Add(time.Duration(i)*time.Minute)) {
			t.Fatalf("delivery %d = %+v out of order", i, d)
		}
	}

	for i := 0; i < 500; i++ {
		rec := flowRec(i)
		if err := r.ExportFlow(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if flows != 500 {
		t.Fatalf("collected %d flows, want 500", flows)
	}
	if err := r.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
