package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bgp"
)

// Hooks are the listener's callbacks into the route server. They are
// invoked from per-session goroutines; OnUpdate arrivals from different
// peers are concurrent (the Sequencer serializes them).
type Hooks struct {
	// OnUpdate delivers a decoded UPDATE received from peer.
	OnUpdate func(peer uint32, upd *bgp.Update)
	// OnEstablished fires when a peer session reaches Established.
	OnEstablished func(peer uint32)
	// OnPeerDown fires when a session ends. graceful is true for an
	// orderly Cease NOTIFICATION, false for hold-timer expiry or
	// transport failure — the case where a route server flushes the
	// peer's routes.
	OnPeerDown func(peer uint32, graceful bool)
}

// srvConn wraps an accepted connection with a write mutex so the
// keepalive goroutine and close-time NOTIFICATIONs never interleave
// mid-message on the stream.
type srvConn struct {
	net.Conn
	wmu sync.Mutex
}

// writeMsg writes one whole BGP message under the connection's write
// lock.
func (c *srvConn) writeMsg(b []byte, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.SetWriteDeadline(time.Now().Add(timeout))
	_, err := c.Conn.Write(b)
	return err
}

func (c *srvConn) notify(code uint8) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	sendNotification(c.Conn, code)
}

// Listener is the passive (route-server) side of the BGP transport: it
// accepts speaker connections, runs the open exchange, and pumps decoded
// updates into the hooks.
type Listener struct {
	ln    net.Listener
	asn   uint32
	cfg   SessionConfig
	hooks Hooks
	m     *Metrics

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	active map[uint32]chan struct{} // per-peer: closed when that peer's current session fully ends
	closed bool
	wg     sync.WaitGroup
}

// Listen starts a listener for route-server ASN asn on addr (use
// "127.0.0.1:0" for an ephemeral in-process port).
func Listen(addr string, asn uint32, cfg SessionConfig, hooks Hooks, m *Metrics) (*Listener, error) {
	cfg.fill()
	if m == nil {
		m = NewMetrics()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	l := &Listener{
		ln:     ln,
		asn:    asn,
		cfg:    cfg,
		hooks:  hooks,
		m:      m,
		conns:  make(map[*srvConn]struct{}),
		active: make(map[uint32]chan struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's address, suitable for Dial.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := &srvConn{Conn: c}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.serve(conn)
	}
}

func (l *Listener) forget(conn *srvConn) {
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
}

// claimPeer installs this session as the peer's current one, returning
// the predecessor's completion channel (nil if none) and this session's
// own, which the caller must close when fully done.
func (l *Listener) claimPeer(peer uint32) (prev, done chan struct{}) {
	done = make(chan struct{})
	l.mu.Lock()
	prev = l.active[peer]
	l.active[peer] = done
	l.mu.Unlock()
	return prev, done
}

// serve runs one session end to end.
func (l *Listener) serve(conn *srvConn) {
	defer l.wg.Done()
	defer l.forget(conn)
	defer conn.Close()

	peer, r, err := l.handshake(conn)
	if err != nil {
		return // handshake failures are not peer-downs: no session existed
	}

	// Serialize sessions per peer: a replacement session (after an
	// injected kill, say) must not surface its first update while the
	// dead session's kernel-buffered backlog is still being drained, or
	// arrivals would interleave across connections and break the
	// sequencer's per-peer FIFO matching. The predecessor's slot closes
	// only after its OnPeerDown has returned, which also gives the
	// restart guard a deterministic down-before-up ordering. The wait is
	// bounded by the hold time: a truly wedged predecessor expires then.
	prev, done := l.claimPeer(peer)
	defer close(done)
	if prev != nil {
		select {
		case <-prev:
		case <-time.After(l.cfg.HoldTime):
		}
	}

	l.m.SessionsEstablished.Inc()
	if l.hooks.OnEstablished != nil {
		l.hooks.OnEstablished(peer)
	}

	stopKA := make(chan struct{})
	defer close(stopKA)
	l.wg.Add(1)
	go l.keepalives(conn, stopKA)

	graceful := l.readLoop(conn, peer, r)
	l.m.PeerDowns.Inc()
	if l.hooks.OnPeerDown != nil {
		l.hooks.OnPeerDown(peer, graceful)
	}
}

// handshake runs the passive-side open exchange and returns the peer's
// 32-bit ASN (carried in the OPEN RouterID; see encodeOpen).
func (l *Listener) handshake(conn *srvConn) (uint32, *msgReader, error) {
	conn.SetDeadline(time.Now().Add(l.cfg.HoldTime))
	defer conn.SetDeadline(time.Time{})

	r := &msgReader{c: conn}
	typ, msg, err := r.read()
	if err != nil {
		return 0, nil, err
	}
	if typ != bgp.MsgOpen {
		return 0, nil, fmt.Errorf("live: expected OPEN, got message type %d", typ)
	}
	open := msg.(*bgp.Open)
	peer := open.RouterID

	ours, err := encodeOpen(l.asn, l.cfg.holdTimeSecs())
	if err != nil {
		return 0, nil, err
	}
	if err := conn.writeMsg(ours, l.cfg.HoldTime); err != nil {
		return 0, nil, err
	}
	if err := conn.writeMsg(bgp.EncodeKeepalive(), l.cfg.HoldTime); err != nil {
		return 0, nil, err
	}
	typ, _, err = r.read()
	if err != nil {
		return 0, nil, err
	}
	if typ != bgp.MsgKeepalive {
		return 0, nil, fmt.Errorf("live: expected KEEPALIVE, got message type %d", typ)
	}
	return peer, r, nil
}

func (l *Listener) keepalives(conn *srvConn, stop chan struct{}) {
	defer l.wg.Done()
	t := time.NewTicker(l.cfg.keepaliveEvery())
	defer t.Stop()
	ka := bgp.EncodeKeepalive()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if conn.writeMsg(ka, l.cfg.HoldTime) != nil {
				return
			}
		}
	}
}

// readLoop pumps the session until it ends, reporting whether the end
// was an orderly Cease.
func (l *Listener) readLoop(conn *srvConn, peer uint32, r *msgReader) (graceful bool) {
	for {
		conn.SetReadDeadline(time.Now().Add(l.cfg.HoldTime))
		typ, msg, err := r.read()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() && !l.isClosed() {
				l.m.HoldExpiries.Inc()
				conn.notify(notifHoldTimerExpired)
			}
			return false
		}
		switch typ {
		case bgp.MsgKeepalive:
			// Deadline refreshes on the next iteration.
		case bgp.MsgUpdate:
			if l.hooks.OnUpdate != nil {
				l.hooks.OnUpdate(peer, msg.(*bgp.Update))
			}
		case bgp.MsgNotification:
			n := msg.(*bgp.Notification)
			return n.Code == notifCease
		}
	}
}

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Close stops accepting and gracefully ends every live session with a
// Cease NOTIFICATION.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closed = true
	conns := make([]*srvConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()

	err := l.ln.Close()
	for _, c := range conns {
		c.notify(notifCease)
		c.Close()
	}
	l.wg.Wait()
	return err
}
