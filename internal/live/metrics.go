// Package live runs the simulated IXP as networked services inside one
// process: BGP sessions over real TCP connections between the scenario's
// peer speakers and the route server, and IPFIX flow export over UDP from
// the fabric to a collector. A sequencer totally orders update delivery
// by the scenario's logical timestamps, which keeps the control plane —
// and therefore the archived dataset — byte-identical to the offline
// batch path for the same Config and seed.
package live

import "repro/internal/obs"

// Metrics holds the live subsystem's counters. The reconciliation
// invariant checked on shutdown: UpdatesSent == UpdatesDelivered, and
// ExportedRecords == CollectedRecords + DroppedRecords.
type Metrics struct {
	// BGP transport.
	SessionsEstablished obs.Counter
	Reconnects          obs.Counter
	HoldExpiries        obs.Counter
	PeerDowns           obs.Counter
	UpdatesSent         obs.Counter
	UpdatesDelivered    obs.Counter
	// SendRetries counts Speaker.Send resends after an injected
	// connection kill (zero-byte failures only; see Speaker.Send).
	SendRetries obs.Counter
	// Restart-tolerance accounting (see restartGuard): peer-downs whose
	// route flush was deferred, deferred downs cancelled by a reconnect,
	// and deferred downs that expired into a real flush.
	RestartsDeferred  obs.Counter
	RestartsRecovered obs.Counter
	RestartFlushes    obs.Counter

	// IPFIX export/collect.
	ExportedRecords  obs.Counter
	ExportedMsgs     obs.Counter
	CollectedRecords obs.Counter
	CollectedMsgs    obs.Counter
	// DroppedDatagrams counts datagrams shed at the collector's ingest
	// queue (backpressure policy: drop-newest, never block the socket
	// reader). The records they carried surface in DroppedRecords via
	// sequence-number gap accounting on the next accepted message.
	DroppedDatagrams obs.Counter
	DroppedRecords   obs.Counter
	LateMsgs         obs.Counter
	DecodeErrors     obs.Counter
	// SyncMsgs counts empty sequence-sync messages emitted at drain time
	// so that tail drops surface as sequence gaps (see Exporter.Sync).
	SyncMsgs obs.Counter
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// Register exposes every counter on reg under the "live." namespace.
func (m *Metrics) Register(reg *obs.Registry) {
	reg.RegisterCounter("live.bgp.sessions_established", &m.SessionsEstablished)
	reg.RegisterCounter("live.bgp.reconnects", &m.Reconnects)
	reg.RegisterCounter("live.bgp.hold_expiries", &m.HoldExpiries)
	reg.RegisterCounter("live.bgp.peer_downs", &m.PeerDowns)
	reg.RegisterCounter("live.bgp.updates_sent", &m.UpdatesSent)
	reg.RegisterCounter("live.bgp.updates_delivered", &m.UpdatesDelivered)
	reg.RegisterCounter("live.bgp.send_retries", &m.SendRetries)
	reg.RegisterCounter("live.bgp.restarts_deferred", &m.RestartsDeferred)
	reg.RegisterCounter("live.bgp.restarts_recovered", &m.RestartsRecovered)
	reg.RegisterCounter("live.bgp.restart_flushes", &m.RestartFlushes)
	reg.RegisterCounter("live.ipfix.exported_records", &m.ExportedRecords)
	reg.RegisterCounter("live.ipfix.exported_msgs", &m.ExportedMsgs)
	reg.RegisterCounter("live.ipfix.collected_records", &m.CollectedRecords)
	reg.RegisterCounter("live.ipfix.collected_msgs", &m.CollectedMsgs)
	reg.RegisterCounter("live.ipfix.dropped_datagrams", &m.DroppedDatagrams)
	reg.RegisterCounter("live.ipfix.dropped_records", &m.DroppedRecords)
	reg.RegisterCounter("live.ipfix.late_msgs", &m.LateMsgs)
	reg.RegisterCounter("live.ipfix.decode_errors", &m.DecodeErrors)
	reg.RegisterCounter("live.ipfix.sync_msgs", &m.SyncMsgs)
}
