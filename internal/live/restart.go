package live

import (
	"sync"
	"time"
)

// restartGuard gives ungraceful peer-downs a grace period before the
// route server flushes the peer's routes — the moral equivalent of BGP
// graceful restart (RFC 4724): a transport blip whose session comes
// right back should not churn the RIB. Under injected connection kills
// this is what keeps the control plane byte-identical to the batch run:
// the speaker re-establishes within the tolerance, the deferred flush is
// cancelled, and no phantom withdrawals enter the archive.
//
// The guard keeps a per-peer count of established sessions because the
// listener fires OnEstablished and OnPeerDown from different session
// goroutines: after a kill, the replacement session's up event can
// arrive before the dead session's down event. Counting (1→2→1) instead
// of flagging makes both orderings converge on "still up, nothing to
// flush".
type restartGuard struct {
	tolerance time.Duration
	flush     func(peer uint32)
	m         *Metrics

	mu      sync.Mutex
	up      map[uint32]int
	timers  map[uint32]*time.Timer
	stopped bool
}

func newRestartGuard(tolerance time.Duration, flush func(uint32), m *Metrics) *restartGuard {
	return &restartGuard{
		tolerance: tolerance,
		flush:     flush,
		m:         m,
		up:        make(map[uint32]int),
		timers:    make(map[uint32]*time.Timer),
	}
}

// peerUp records a session reaching Established; it cancels any pending
// deferred flush for the peer (the restart recovered in time).
func (g *restartGuard) peerUp(peer uint32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.up[peer]++
	if t, ok := g.timers[peer]; ok {
		t.Stop()
		delete(g.timers, peer)
		g.m.RestartsRecovered.Inc()
	}
}

// peerDown records a session ending. Graceful downs (Cease) never
// flush. An ungraceful down flushes only if no other session for the
// peer is up: immediately when tolerance is zero, else after the
// tolerance unless a reconnect cancels it.
func (g *restartGuard) peerDown(peer uint32, graceful bool) {
	g.mu.Lock()
	g.up[peer]--
	if graceful || g.up[peer] > 0 || g.stopped {
		g.mu.Unlock()
		return
	}
	if g.tolerance <= 0 {
		g.mu.Unlock()
		if g.flush != nil {
			g.flush(peer)
		}
		return
	}
	if _, ok := g.timers[peer]; !ok {
		g.m.RestartsDeferred.Inc()
		g.timers[peer] = time.AfterFunc(g.tolerance, func() { g.expire(peer) })
	}
	g.mu.Unlock()
}

// expire fires a deferred flush whose tolerance ran out.
func (g *restartGuard) expire(peer uint32) {
	g.mu.Lock()
	if _, ok := g.timers[peer]; !ok || g.stopped {
		g.mu.Unlock()
		return
	}
	delete(g.timers, peer)
	g.m.RestartFlushes.Inc()
	g.mu.Unlock()
	if g.flush != nil {
		g.flush(peer)
	}
}

// pending returns the number of peers with a deferred flush in flight.
func (g *restartGuard) pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.timers)
}

// stop cancels all deferred flushes and suppresses future ones; called
// at shutdown, when remaining downs are part of the teardown.
func (g *restartGuard) stop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stopped = true
	for p, t := range g.timers {
		t.Stop()
		delete(g.timers, p)
	}
}
