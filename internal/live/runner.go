package live

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/bgp"
	"repro/internal/faultnet"
	"repro/internal/ipfix"
)

// RunnerConfig tunes the live services.
type RunnerConfig struct {
	// Session configures the BGP session FSM timers.
	Session SessionConfig
	// MTU bounds IPFIX datagram size (0: DefaultMTU).
	MTU int
	// QueueLen bounds the collector ingest queue (0: 4096 datagrams).
	QueueLen int
	// DrainTimeout bounds barriers and the final collector drain
	// (0: 30s).
	DrainTimeout time.Duration
	// Fault, if set, impairs the transports with the plan's seeded
	// schedules: every speaker connection is wrapped and every exported
	// datagram routed through the UDP schedule.
	Fault *faultnet.Plan
	// RestartTolerance is how long an ungraceful peer-down may wait for
	// its session to re-establish before the peer's routes are flushed
	// (0: flush immediately, unless Fault is set, which defaults it to
	// 5s — injected kills always recover, so the flush would only
	// desync the control plane from the batch run).
	RestartTolerance time.Duration
}

func (c *RunnerConfig) fill() {
	c.Session.fill()
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RestartTolerance <= 0 && c.Fault != nil {
		c.RestartTolerance = 5 * time.Second
	}
}

// Runner owns one live run's services: the route server's BGP listener
// fed through a Sequencer, one Speaker per scenario peer (dialed
// lazily), and the IPFIX exporter/collector pair over UDP. All methods
// except Shutdown are driven from the single scenario driver goroutine.
type Runner struct {
	cfg RunnerConfig
	m   *Metrics
	ctx context.Context

	seq       *Sequencer
	listener  *Listener
	speakers  map[uint32]*Speaker
	exporter  *Exporter
	expConn   net.Conn
	collector *Collector
	guard     *restartGuard
}

// NewRunner starts the services on loopback: deliver receives totally
// ordered updates (wire to routeserver.Process), onPeerFlush is invoked
// for ungraceful session loss (wire to routeserver.PeerDown), flowSink
// receives collected flow records in export order, one batch per decoded
// datagram (wire to the archive writer and the online analyzer). ctx
// aborts the run early: SendUpdate and Barrier return ctx.Err() once it
// is cancelled.
func NewRunner(ctx context.Context, cfg RunnerConfig, m *Metrics,
	deliver func(ts time.Time, peer uint32, upd *bgp.Update) error,
	onPeerFlush func(peer uint32),
	flowSink ipfix.BatchSink,
) (*Runner, error) {
	cfg.fill()
	if m == nil {
		m = NewMetrics()
	}
	r := &Runner{cfg: cfg, m: m, ctx: ctx, speakers: make(map[uint32]*Speaker)}
	r.seq = NewSequencer(deliver, m)
	r.guard = newRestartGuard(cfg.RestartTolerance, onPeerFlush, m)

	hooks := Hooks{
		OnUpdate:      r.seq.Arrive,
		OnEstablished: r.guard.peerUp,
		OnPeerDown:    r.guard.peerDown,
	}
	var err error
	r.listener, err = Listen("127.0.0.1:0", 0, cfg.Session, hooks, m)
	if err != nil {
		return nil, err
	}

	cc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		r.listener.Close()
		return nil, fmt.Errorf("live: collector socket: %w", err)
	}
	r.collector = NewCollector(cc, cfg.QueueLen, flowSink, m)

	ec, err := net.Dial("udp", cc.LocalAddr().String())
	if err != nil {
		r.Shutdown()
		return nil, fmt.Errorf("live: exporter socket: %w", err)
	}
	r.expConn = ec
	r.exporter, err = NewExporter(ec, 1, cfg.MTU, m)
	if err != nil {
		r.Shutdown()
		return nil, err
	}
	if cfg.Fault != nil {
		if err := r.exporter.SetFault(cfg.Fault.UDP()); err != nil {
			r.Shutdown()
			return nil, err
		}
	}
	return r, nil
}

// SetRouteServerASN records the ASN the listener announces in its OPENs.
// Purely cosmetic for the wire exchange; may be called before the first
// speaker dials.
func (r *Runner) SetRouteServerASN(asn uint32) { r.listener.asn = asn }

// SendUpdate dispatches one control update: it registers the expectation
// with the sequencer, then sends the canonically encoded UPDATE on the
// peer's session (dialing it first if needed).
func (r *Runner) SendUpdate(ts time.Time, peer uint32, upd *bgp.Update) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	msg, err := bgp.EncodeUpdate(upd)
	if err != nil {
		return err
	}
	sp := r.speakers[peer]
	if sp == nil {
		cfg := r.cfg.Session
		if r.cfg.Fault != nil {
			cfg.Wrap = r.cfg.Fault.TCP(peer).Wrap
		}
		sp = Dial(r.listener.Addr(), peer, cfg, r.m)
		r.speakers[peer] = sp
	}
	r.seq.Expect(ts, peer)
	return sp.Send(msg)
}

// Barrier waits until every dispatched update has been delivered.
func (r *Runner) Barrier() error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	return r.seq.Barrier(r.cfg.DrainTimeout)
}

// ExportFlow hands one sampled flow record to the IPFIX exporter.
func (r *Runner) ExportFlow(rec *ipfix.FlowRecord) error { return r.exporter.Export(rec) }

// ExportFlowBatch hands one batch of sampled flow records to the IPFIX
// exporter; the datagram stream is identical to per-record ExportFlow
// calls in the same order.
func (r *Runner) ExportFlowBatch(b *ipfix.RecordBatch) error { return r.exporter.ExportBatch(b) }

// Drain completes the streams without tearing sessions down: a final
// barrier, an exporter flush, and a wait for the collector to account
// for every exported record. Call once driving is done (or aborted).
//
// Under a fault plan two extra steps make the drain converge. First,
// recovery must complete — every killed session re-established, every
// deferred peer-down cancelled — or shutdown could strand a reconnect
// and break the kills==reconnects reconciliation. Second, a tail drop
// leaves no later datagram to reveal its sequence gap, so the drain
// repeatedly emits impairment-exempt Sync messages carrying the final
// sequence number until the collector has accounted for every record.
func (r *Runner) Drain() error {
	// On an aborted run the barrier may legitimately time out (a send
	// may have failed); drain the flow stream regardless so the archive
	// is consistent with what was delivered.
	err := r.seq.Barrier(r.cfg.DrainTimeout)
	if ferr := r.exporter.Flush(); err == nil {
		err = ferr
	}
	if r.cfg.Fault == nil {
		if derr := r.collector.Drain(r.exporter.Exported(), r.cfg.DrainTimeout); err == nil {
			err = derr
		}
		return err
	}
	deadline := time.Now().Add(r.cfg.DrainTimeout)
	if rerr := r.awaitRecovery(deadline); err == nil {
		err = rerr
	}
	var derr error
	for {
		if derr = r.exporter.Sync(); derr != nil {
			break
		}
		if derr = r.collector.Drain(r.exporter.Exported(), 100*time.Millisecond); derr == nil {
			break
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	if err == nil {
		err = derr
	}
	return err
}

// awaitRecovery blocks until every injected connection kill has been
// answered by a reconnect and no deferred peer-down flush is pending.
func (r *Runner) awaitRecovery(deadline time.Time) error {
	for {
		kills := r.cfg.Fault.M.TCPKills.Value()
		if r.m.Reconnects.Value() >= kills && r.guard.pending() == 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("live: recovery incomplete at drain deadline: %d kills, %d reconnects, %d deferred peer-downs",
				kills, r.m.Reconnects.Value(), r.guard.pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// Reconcile verifies the shutdown invariants: every sent update was
// delivered and every exported record is accounted for as collected or
// dropped.
func (r *Runner) Reconcile() error {
	if err := r.seq.Err(); err != nil {
		return err
	}
	if sent, delivered := r.m.UpdatesSent.Value(), r.m.UpdatesDelivered.Value(); sent != delivered {
		return fmt.Errorf("live: %d updates sent but %d delivered", sent, delivered)
	}
	exported := r.m.ExportedRecords.Value()
	accounted := r.collector.Accounted()
	if exported != accounted {
		return fmt.Errorf("live: %d records exported but %d accounted (collected %d + dropped %d)",
			exported, accounted, r.m.CollectedRecords.Value(), r.m.DroppedRecords.Value())
	}
	return nil
}

// Shutdown closes everything: speakers first (graceful Cease, so the
// route server does not flush their routes), then the listener and the
// collector. Always safe to call, including on partially constructed
// runners and after Drain.
func (r *Runner) Shutdown() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	for _, sp := range r.speakers {
		keep(sp.Close())
	}
	if r.listener != nil {
		keep(r.listener.Close())
	}
	if r.guard != nil {
		r.guard.stop()
	}
	if r.expConn != nil {
		keep(r.expConn.Close())
	}
	if r.collector != nil {
		keep(r.collector.Close())
	}
	return first
}
