package live

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bgp"
)

// Sequencer restores the scenario's total order on updates that arrive
// over per-peer TCP sessions.
//
// The BGP wire format carries neither the scenario's logical timestamp
// nor a global sequence number, so both travel out of band: the driver
// calls Expect — in dispatch order, from a single goroutine — right
// before handing each update to its speaker, registering (global seq,
// logical ts) on a per-peer FIFO. TCP preserves per-peer order, so the
// k-th arrival from a peer matches the k-th expectation registered for
// that peer; the arrival is parked until every earlier global sequence
// number has been delivered, then handed to deliver. Deliveries therefore
// replay the exact dispatch interleaving regardless of how the kernel
// schedules the sessions, which is what keeps the live control plane —
// and the MRT archive the route server writes — byte-identical to the
// batch path.
type Sequencer struct {
	deliver func(ts time.Time, peer uint32, upd *bgp.Update) error
	m       *Metrics

	mu          sync.Mutex
	cond        *sync.Cond
	nextAssign  uint64
	nextDeliver uint64
	exp         map[uint32][]expectation
	parked      map[uint64]parkedUpdate
	err         error
}

type expectation struct {
	seq uint64
	ts  time.Time
}

type parkedUpdate struct {
	ts   time.Time
	peer uint32
	upd  *bgp.Update
}

// NewSequencer returns a sequencer that hands ordered updates to
// deliver. deliver runs with the sequencer's lock held: one delivery at
// a time, in global order.
func NewSequencer(deliver func(ts time.Time, peer uint32, upd *bgp.Update) error, m *Metrics) *Sequencer {
	if m == nil {
		m = NewMetrics()
	}
	s := &Sequencer{
		deliver: deliver,
		m:       m,
		exp:     make(map[uint32][]expectation),
		parked:  make(map[uint64]parkedUpdate),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Expect registers the next dispatched update: peer will send an UPDATE
// that must be delivered with logical timestamp ts, after everything
// registered before it. Call from the single driver goroutine, in
// dispatch order, before the corresponding Send.
func (s *Sequencer) Expect(ts time.Time, peer uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exp[peer] = append(s.exp[peer], expectation{seq: s.nextAssign, ts: ts})
	s.nextAssign++
}

// Arrive matches a decoded update received from peer against the oldest
// outstanding expectation for that peer and delivers it — plus any
// parked successors — once its global turn comes. Safe to call from
// concurrent per-session goroutines.
func (s *Sequencer) Arrive(peer uint32, upd *bgp.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	q := s.exp[peer]
	if len(q) == 0 {
		s.fail(fmt.Errorf("live: update from AS%d without a registered expectation", peer))
		return
	}
	e := q[0]
	s.exp[peer] = q[1:]
	s.parked[e.seq] = parkedUpdate{ts: e.ts, peer: peer, upd: upd}
	s.drainLocked()
}

// drainLocked delivers every parked update whose turn has come.
func (s *Sequencer) drainLocked() {
	for {
		p, ok := s.parked[s.nextDeliver]
		if !ok {
			return
		}
		delete(s.parked, s.nextDeliver)
		if err := s.deliver(p.ts, p.peer, p.upd); err != nil {
			s.fail(fmt.Errorf("live: delivering update %d from AS%d: %w", s.nextDeliver, p.peer, err))
			return
		}
		s.m.UpdatesDelivered.Inc()
		s.nextDeliver++
		s.cond.Broadcast()
	}
}

func (s *Sequencer) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
}

// Pending returns how many registered updates have not been delivered
// yet.
func (s *Sequencer) Pending() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextAssign - s.nextDeliver
}

// Barrier blocks until every update registered so far has been delivered
// (or the deadline passes, or a delivery failed). The driver calls it
// before each fabric injection so the data plane always sees the
// up-to-date control state, exactly as in the batch path.
func (s *Sequencer) Barrier(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for s.err == nil && s.nextDeliver < s.nextAssign {
		if !time.Now().Before(deadline) {
			return fmt.Errorf("live: barrier timed out with %d of %d updates undelivered",
				s.nextAssign-s.nextDeliver, s.nextAssign)
		}
		s.cond.Wait()
	}
	return s.err
}

// Err returns the sticky failure, if any.
func (s *Sequencer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
