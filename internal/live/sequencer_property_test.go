package live

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
)

// TestSequencerTotalOrderProperty is a quick.Check property: for any
// seeded interleaving of per-peer arrival goroutines, the sequencer
// delivers exactly the dispatched updates, in strictly increasing,
// gap-free global dispatch order. The generator derives peer count,
// update count, dispatch pattern, and per-peer arrival pacing from the
// seed, so every quick iteration exercises a different schedule and a
// failure reproduces from its seed alone.
func TestSequencerTotalOrderProperty(t *testing.T) {
	base := time.Unix(1_600_000_000, 0).UTC()
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		peers := 2 + rng.Intn(6)
		n := 20 + rng.Intn(230)

		var got []time.Time
		seq := NewSequencer(func(ts time.Time, peer uint32, upd *bgp.Update) error {
			// deliver runs one at a time, in global order, with the
			// sequencer's lock held; no extra synchronization needed.
			got = append(got, ts)
			return nil
		}, nil)

		// Dispatch: the driver registers expectations in global order;
		// the ts encodes the global sequence so deliveries self-identify.
		perPeer := make([]int, peers)
		for i := 0; i < n; i++ {
			p := rng.Intn(peers)
			seq.Expect(base.Add(time.Duration(i)*time.Second), uint32(p))
			perPeer[p]++
		}

		// Arrival: one goroutine per peer replays that peer's updates in
		// FIFO order (as TCP would), each with its own seeded pacing so
		// the goroutines interleave differently every seed.
		done := make(chan struct{})
		for p := 0; p < peers; p++ {
			go func(p, count int, prng *stats.RNG) {
				defer func() { done <- struct{}{} }()
				for k := 0; k < count; k++ {
					if prng.Bool(0.25) {
						time.Sleep(time.Duration(prng.Intn(200)) * time.Microsecond)
					}
					seq.Arrive(uint32(p), &bgp.Update{})
				}
			}(p, perPeer[p], stats.NewRNG(seed).Fork(uint64(p+1)))
		}
		for p := 0; p < peers; p++ {
			<-done
		}

		if err := seq.Err(); err != nil {
			t.Logf("seed %d: sequencer failed: %v", seed, err)
			return false
		}
		if pending := seq.Pending(); pending != 0 {
			t.Logf("seed %d: %d updates never delivered", seed, pending)
			return false
		}
		if len(got) != n {
			t.Logf("seed %d: delivered %d of %d", seed, len(got), n)
			return false
		}
		for i, ts := range got {
			if want := base.Add(time.Duration(i) * time.Second); !ts.Equal(want) {
				t.Logf("seed %d: delivery %d has ts %v, want %v (order violated)", seed, i, ts, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
