package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
)

// TestSequencerRestoresTotalOrder registers an interleaved expectation
// stream for three peers, then delivers each peer's updates from its own
// goroutine (per-peer order preserved, global order scrambled) and
// checks deliveries replay the registration order with the registered
// timestamps.
func TestSequencerRestoresTotalOrder(t *testing.T) {
	type delivered struct {
		ts   time.Time
		peer uint32
	}
	var got []delivered
	m := NewMetrics()
	s := NewSequencer(func(ts time.Time, peer uint32, upd *bgp.Update) error {
		got = append(got, delivered{ts, peer})
		return nil
	}, m)

	peers := []uint32{100, 200, 300}
	base := time.Unix(1000, 0)
	var want []delivered
	perPeer := make(map[uint32]int)
	for i := 0; i < 300; i++ {
		p := peers[i%len(peers)]
		ts := base.Add(time.Duration(i) * time.Second)
		s.Expect(ts, p)
		want = append(want, delivered{ts, p})
		perPeer[p]++
	}

	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p uint32, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s.Arrive(p, &bgp.Update{})
			}
		}(p, perPeer[p])
	}
	wg.Wait()

	if err := s.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d updates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after barrier", s.Pending())
	}
	if m.UpdatesDelivered.Value() != int64(len(want)) {
		t.Fatalf("updates_delivered = %d, want %d", m.UpdatesDelivered.Value(), len(want))
	}
}

// TestSequencerUnexpectedArrival fails fast on an update nobody
// registered.
func TestSequencerUnexpectedArrival(t *testing.T) {
	s := NewSequencer(func(time.Time, uint32, *bgp.Update) error { return nil }, nil)
	s.Arrive(999, &bgp.Update{})
	if s.Err() == nil {
		t.Fatal("unexpected arrival not flagged")
	}
	if err := s.Barrier(time.Second); err == nil {
		t.Fatal("barrier ignored the sequencer failure")
	}
}

// TestSequencerBarrierTimeout times out when an expected update never
// arrives.
func TestSequencerBarrierTimeout(t *testing.T) {
	s := NewSequencer(func(time.Time, uint32, *bgp.Update) error { return nil }, nil)
	s.Expect(time.Unix(0, 0), 100)
	start := time.Now()
	err := s.Barrier(50 * time.Millisecond)
	if err == nil {
		t.Fatal("barrier returned without the expected delivery")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("barrier severely overshot its timeout")
	}
}

// TestSequencerDeliveryError propagates a route-server failure to the
// driver via Barrier.
func TestSequencerDeliveryError(t *testing.T) {
	s := NewSequencer(func(time.Time, uint32, *bgp.Update) error {
		return fmt.Errorf("route server said no")
	}, nil)
	s.Expect(time.Unix(0, 0), 100)
	s.Arrive(100, &bgp.Update{})
	if err := s.Barrier(time.Second); err == nil {
		t.Fatal("delivery error not surfaced")
	}
}
