package live

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
)

// State is the position of a session in the (simplified) RFC 4271 FSM.
type State int32

const (
	StateIdle State = iota
	StateConnect
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// SessionConfig tunes the session FSM timers.
type SessionConfig struct {
	// HoldTime is the negotiated hold time; a session with no message for
	// this long is torn down with a hold-timer-expired NOTIFICATION
	// (RFC 4271 §6.5). Keepalives go out every HoldTime/3.
	HoldTime time.Duration
	// ReconnectMin/Max bound the speaker's jittered exponential
	// reconnect backoff (see nextBackoff).
	ReconnectMin, ReconnectMax time.Duration
	// Wrap, if set, is installed on every freshly dialed connection
	// before the open exchange. It is the seam the faultnet impairment
	// middleware plugs into; nil means the raw connection is used.
	Wrap func(net.Conn) net.Conn
}

// DefaultSessionConfig returns timers suitable for in-process loopback
// sessions: short enough for tests to exercise expiry, long enough that a
// busy run never falsely expires.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		HoldTime:     30 * time.Second,
		ReconnectMin: 50 * time.Millisecond,
		ReconnectMax: 2 * time.Second,
	}
}

func (c *SessionConfig) fill() {
	if c.HoldTime <= 0 {
		c.HoldTime = DefaultSessionConfig().HoldTime
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = DefaultSessionConfig().ReconnectMin
	}
	if c.ReconnectMax < c.ReconnectMin {
		c.ReconnectMax = c.ReconnectMin
	}
}

func (c SessionConfig) keepaliveEvery() time.Duration { return c.HoldTime / 3 }

// nextBackoff returns the delay before reconnect attempt number attempt
// (zero-based): exponential from min, capped at max, with uniform jitter
// in [d/2, d) so a fleet of speakers knocked over by the same event does
// not reconnect in lockstep (the classic thundering-herd fix; compare
// the fixed ladder this replaced, which synchronized every speaker onto
// the same retry schedule).
func nextBackoff(min, max time.Duration, attempt int, rng *stats.RNG) time.Duration {
	d := min
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(d-half))
}

// holdTimeSecs clamps the hold time for the 16-bit OPEN field.
func (c SessionConfig) holdTimeSecs() uint16 {
	s := int64(c.HoldTime / time.Second)
	if s < 1 {
		s = 1
	}
	if s > 65535 {
		s = 65535
	}
	return uint16(s)
}

// BGP has no framing beyond the message header itself: read the 19-byte
// header off the stream, then the remainder indicated by its length
// field. msgBuf is reused across reads.
type msgReader struct {
	c   net.Conn
	buf []byte
}

// read returns the next complete BGP message, decoded. The raw bytes are
// only valid until the next call.
func (r *msgReader) read() (byte, any, error) {
	const headerLen = 19
	if cap(r.buf) < headerLen {
		r.buf = make([]byte, 4096)
	}
	hdr := r.buf[:headerLen]
	if _, err := io.ReadFull(r.c, hdr); err != nil {
		return 0, nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < headerLen || length > 4096 {
		return 0, nil, fmt.Errorf("live: invalid BGP message length %d", length)
	}
	if cap(r.buf) < length {
		buf := make([]byte, 4096)
		copy(buf, hdr)
		r.buf = buf
	}
	msg := r.buf[:length]
	if _, err := io.ReadFull(r.c, msg[headerLen:]); err != nil {
		return 0, nil, fmt.Errorf("live: truncated BGP message: %w", err)
	}
	typ, decoded, _, err := bgp.DecodeMessage(msg)
	if err != nil {
		return 0, nil, err
	}
	return typ, decoded, nil
}

// encodeOpen builds the OPEN for a 32-bit ASN. The wire OPEN carries a
// 16-bit ASN field; larger ASNs send AS_TRANS there, and either way the
// full 32-bit ASN rides in RouterID (standing in for the AS4 capability,
// which the codec does not implement).
func encodeOpen(asn uint32, holdSecs uint16) ([]byte, error) {
	const asTrans = 23456
	as16 := uint16(asTrans)
	if asn < 1<<16 {
		as16 = uint16(asn)
	}
	return bgp.EncodeOpen(&bgp.Open{
		Version:  4,
		ASN:      as16,
		HoldTime: holdSecs,
		RouterID: asn,
	})
}

// notification codes used by the FSM (RFC 4271 §6).
const (
	notifHoldTimerExpired = 4
	notifCease            = 6
)

func sendNotification(c net.Conn, code uint8) {
	if b, err := bgp.EncodeNotification(&bgp.Notification{Code: code}); err == nil {
		c.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = c.Write(b)
	}
}
