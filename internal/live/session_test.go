package live

import (
	"net"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/routeserver"
)

func testSessionConfig() SessionConfig {
	return SessionConfig{
		HoldTime:     500 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	}
}

func testUpdate(t *testing.T, prefix bgp.Prefix, peer uint32) (*bgp.Update, []byte) {
	t.Helper()
	upd := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []uint32{peer},
			NextHop:     routeserver.BlackholeNextHop,
			Communities: bgp.Communities{bgp.Blackhole},
		},
		NLRI: []bgp.Prefix{prefix},
	}
	enc, err := bgp.EncodeUpdate(upd)
	if err != nil {
		t.Fatal(err)
	}
	return upd, enc
}

type arrival struct {
	peer uint32
	upd  *bgp.Update
}

// TestSessionEstablishAndUpdate covers the happy path end to end: dial,
// open exchange, an UPDATE crossing the session, graceful teardown.
func TestSessionEstablishAndUpdate(t *testing.T) {
	m := NewMetrics()
	updates := make(chan arrival, 16)
	downs := make(chan bool, 16)
	l, err := Listen("127.0.0.1:0", 65500, testSessionConfig(), Hooks{
		OnUpdate:   func(peer uint32, upd *bgp.Update) { updates <- arrival{peer, upd} },
		OnPeerDown: func(peer uint32, graceful bool) { downs <- graceful },
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const peerASN = 70000 // above 16 bits: exercises the RouterID carriage
	sp := Dial(l.Addr(), peerASN, testSessionConfig(), m)
	defer sp.Close()

	prefix := bgp.Prefix{Addr: 0xcb007105, Len: 32}
	want, enc := testUpdate(t, prefix, peerASN)
	if err := sp.Send(enc); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-updates:
		if got.peer != peerASN {
			t.Fatalf("update attributed to AS%d, want AS%d", got.peer, peerASN)
		}
		if len(got.upd.NLRI) != 1 || got.upd.NLRI[0] != prefix {
			t.Fatalf("NLRI = %v, want [%v]", got.upd.NLRI, prefix)
		}
		re, err := bgp.EncodeUpdate(got.upd)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(enc) {
			t.Fatal("update did not survive the wire round-trip byte-identically")
		}
		_ = want
	case <-time.After(5 * time.Second):
		t.Fatal("update never arrived")
	}

	if sp.State() != StateEstablished {
		t.Fatalf("speaker state = %v, want Established", sp.State())
	}
	sp.Close()
	select {
	case graceful := <-downs:
		if !graceful {
			t.Fatal("orderly Cease reported as ungraceful teardown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer-down never fired")
	}
	// One session, counted once by each endpoint.
	if got := m.SessionsEstablished.Value(); got != 2 {
		t.Fatalf("sessions_established = %d, want 2", got)
	}
	if got := m.UpdatesSent.Value(); got != 1 {
		t.Fatalf("updates_sent = %d, want 1", got)
	}
}

// TestListenerHoldTimerExpiry starves a handshaken session of keepalives
// and expects the listener to expire it ungracefully.
func TestListenerHoldTimerExpiry(t *testing.T) {
	m := NewMetrics()
	downs := make(chan bool, 1)
	cfg := SessionConfig{HoldTime: 150 * time.Millisecond, ReconnectMin: time.Hour}
	l, err := Listen("127.0.0.1:0", 65500, cfg, Hooks{
		OnPeerDown: func(peer uint32, graceful bool) { downs <- graceful },
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A bare TCP client that handshakes and then goes silent.
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	open, err := encodeOpen(201, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(open); err != nil {
		t.Fatal(err)
	}
	r := &msgReader{c: conn}
	if typ, _, err := r.read(); err != nil || typ != bgp.MsgOpen {
		t.Fatalf("open exchange: typ %d err %v", typ, err)
	}
	if _, err := conn.Write(bgp.EncodeKeepalive()); err != nil {
		t.Fatal(err)
	}

	select {
	case graceful := <-downs:
		if graceful {
			t.Fatal("hold expiry reported as graceful")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session never expired")
	}
	if m.HoldExpiries.Value() == 0 {
		t.Fatal("hold expiry not counted")
	}
	// The expiring side must have sent the RFC 4271 §6.5 NOTIFICATION.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		typ, msg, err := r.read()
		if err != nil {
			t.Fatalf("no NOTIFICATION before close: %v", err)
		}
		if typ == bgp.MsgKeepalive {
			continue
		}
		if typ != bgp.MsgNotification {
			t.Fatalf("got message type %d, want NOTIFICATION", typ)
		}
		if n := msg.(*bgp.Notification); n.Code != notifHoldTimerExpired {
			t.Fatalf("NOTIFICATION code = %d, want %d", n.Code, notifHoldTimerExpired)
		}
		break
	}
}

// TestSpeakerReconnects kills the server side of an established session
// abruptly and expects the speaker to re-dial with backoff and reach
// Established again on the replacement listener.
func TestSpeakerReconnects(t *testing.T) {
	m := NewMetrics()
	cfg := testSessionConfig()

	established := make(chan uint32, 4)
	l1, err := Listen("127.0.0.1:0", 65500, cfg, Hooks{
		OnEstablished: func(peer uint32) { established <- peer },
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr()

	sp := Dial(addr, 300, cfg, m)
	defer sp.Close()
	select {
	case <-established:
	case <-time.After(5 * time.Second):
		t.Fatal("first session never established")
	}

	// Tear the server down abruptly; the speaker's session dies and its
	// FSM re-enters Connect with backoff.
	l1.Close()
	l2, err := Listen(addr, 65500, cfg, Hooks{
		OnEstablished: func(peer uint32) { established <- peer },
	}, m)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer l2.Close()

	select {
	case peer := <-established:
		if peer != 300 {
			t.Fatalf("reconnected peer = AS%d, want AS300", peer)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("speaker never reconnected")
	}
	if m.Reconnects.Value() == 0 {
		t.Fatal("reconnect not counted")
	}
	// The re-established session still carries updates.
	_, enc := testUpdate(t, bgp.Prefix{Addr: 0xcb007106, Len: 32}, 300)
	if err := sp.Send(enc); err != nil {
		t.Fatalf("send after reconnect: %v", err)
	}
}
