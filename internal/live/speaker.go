package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/faultnet"
	"repro/internal/stats"
)

// Speaker is the active (connecting) side of a BGP session: one scenario
// peer talking to the route server's listener. It owns a background FSM
// goroutine that dials, handshakes, keeps the session alive, and
// reconnects with jittered exponential backoff after failures.
type Speaker struct {
	asn  uint32
	addr string
	cfg  SessionConfig
	m    *Metrics
	rng  *stats.RNG // backoff jitter; per-speaker, seeded by ASN

	mu    sync.Mutex
	cond  *sync.Cond
	state State
	conn  net.Conn
	err   error // sticky fatal error
	done  chan struct{}

	writeMu sync.Mutex
	wg      sync.WaitGroup
}

// Dial starts a speaker for peer ASN asn against the listener at addr.
// The session is established asynchronously; Send blocks until it is.
func Dial(addr string, asn uint32, cfg SessionConfig, m *Metrics) *Speaker {
	cfg.fill()
	if m == nil {
		m = NewMetrics()
	}
	s := &Speaker{
		asn:   asn,
		addr:  addr,
		cfg:   cfg,
		m:     m,
		rng:   stats.NewRNG(0xbac0ff ^ uint64(asn)),
		state: StateIdle,
		done:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.run()
	return s
}

// State returns the current FSM state.
func (s *Speaker) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *Speaker) setState(st State, conn net.Conn) {
	s.mu.Lock()
	s.state = st
	s.conn = conn
	s.cond.Broadcast()
	s.mu.Unlock()
}

// setConn records the in-progress connection so Close can tear it down
// even mid-handshake.
func (s *Speaker) setConn(conn net.Conn) {
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
}

func (s *Speaker) isClosed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// run is the FSM loop: Connect → OpenSent → OpenConfirm → Established,
// back to Connect (after backoff) whenever the session dies.
func (s *Speaker) run() {
	defer s.wg.Done()
	attempt := 0
	established := 0
	for {
		if s.isClosed() {
			s.setState(StateIdle, nil)
			return
		}
		s.setState(StateConnect, nil)
		conn, err := net.DialTimeout("tcp", s.addr, s.cfg.HoldTime)
		if err == nil {
			if s.cfg.Wrap != nil {
				conn = s.cfg.Wrap(conn)
			}
			s.setConn(conn)
			err = s.handshake(conn)
			if err != nil {
				conn.Close()
			}
		}
		if err != nil {
			if s.isClosed() {
				s.setState(StateIdle, nil)
				return
			}
			select {
			case <-s.done:
			case <-time.After(nextBackoff(s.cfg.ReconnectMin, s.cfg.ReconnectMax, attempt, s.rng)):
			}
			attempt++
			continue
		}
		attempt = 0
		if established > 0 {
			s.m.Reconnects.Inc()
		}
		established++
		s.m.SessionsEstablished.Inc()
		s.setState(StateEstablished, conn)

		stopKA := s.startKeepalives(conn)
		s.readLoop(conn)
		close(stopKA)
		conn.Close()
		s.setState(StateIdle, nil)
	}
}

// handshake runs the active-side open exchange on a fresh connection.
func (s *Speaker) handshake(conn net.Conn) error {
	deadline := time.Now().Add(s.cfg.HoldTime)
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})

	open, err := encodeOpen(s.asn, s.cfg.holdTimeSecs())
	if err != nil {
		return err
	}
	if _, err := conn.Write(open); err != nil {
		return fmt.Errorf("live: sending OPEN: %w", err)
	}
	s.setState(StateOpenSent, conn)

	r := &msgReader{c: conn}
	typ, _, err := r.read()
	if err != nil {
		return fmt.Errorf("live: awaiting OPEN: %w", err)
	}
	if typ != bgp.MsgOpen {
		return fmt.Errorf("live: expected OPEN, got message type %d", typ)
	}
	if _, err := conn.Write(bgp.EncodeKeepalive()); err != nil {
		return err
	}
	s.setState(StateOpenConfirm, conn)

	typ, _, err = r.read()
	if err != nil {
		return fmt.Errorf("live: awaiting KEEPALIVE: %w", err)
	}
	if typ != bgp.MsgKeepalive {
		return fmt.Errorf("live: expected KEEPALIVE, got message type %d", typ)
	}
	return nil
}

// startKeepalives sends a KEEPALIVE every HoldTime/3 until the returned
// channel is closed.
func (s *Speaker) startKeepalives(conn net.Conn) chan struct{} {
	stop := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.cfg.keepaliveEvery())
		defer t.Stop()
		ka := bgp.EncodeKeepalive()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if s.write(conn, ka) != nil {
					return
				}
			}
		}
	}()
	return stop
}

// readLoop consumes the session until it dies: keepalives refresh the
// hold timer, a NOTIFICATION or read error ends the session, hold-timer
// expiry sends the RFC 4271 §6.5 NOTIFICATION before closing.
func (s *Speaker) readLoop(conn net.Conn) {
	r := &msgReader{c: conn}
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.HoldTime))
		typ, _, err := r.read()
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() && !s.isClosed() {
				s.m.HoldExpiries.Inc()
				sendNotification(conn, notifHoldTimerExpired)
			}
			return
		}
		switch typ {
		case bgp.MsgKeepalive, bgp.MsgUpdate:
			// Keepalives refresh the deadline; updates from the route
			// server (Adj-RIB-Out announcements) are acknowledged receipt
			// only — scenario peers do not keep a local RIB.
		case bgp.MsgNotification:
			return
		}
	}
}

// write serializes writes (updates from Send, keepalives) on the session.
func (s *Speaker) write(conn net.Conn, b []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.HoldTime))
	_, err := conn.Write(b)
	return err
}

// Send transmits one encoded BGP message on the session, blocking until
// the session is established. An ordinary write error is returned to the
// caller: the message may or may not have reached the peer, so resending
// could double-deliver. The one exception is faultnet.ErrConnKilled,
// which guarantees zero bytes of msg were written — the injected kill
// landed on an earlier message boundary — so Send waits for the FSM to
// establish a replacement session and resends there, preserving
// exactly-once delivery under injected connection kills.
func (s *Speaker) Send(msg []byte) error {
	var failed net.Conn
	for {
		s.mu.Lock()
		for s.err == nil && !s.isClosed() &&
			!(s.state == StateEstablished && s.conn != failed) {
			s.cond.Wait()
		}
		conn, err := s.conn, s.err
		closed := s.isClosed()
		s.mu.Unlock()
		if err != nil {
			return err
		}
		if closed {
			return errors.New("live: speaker closed")
		}
		werr := s.write(conn, msg)
		if werr == nil {
			s.m.UpdatesSent.Inc()
			return nil
		}
		if !errors.Is(werr, faultnet.ErrConnKilled) {
			return fmt.Errorf("live: AS%d send: %w", s.asn, werr)
		}
		s.m.SendRetries.Inc()
		failed = conn
	}
}

// Close gracefully ends the session: a Cease NOTIFICATION, then the
// connection. Safe to call more than once.
func (s *Speaker) Close() error {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	default:
	}
	close(s.done)
	conn := s.conn
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		s.writeMu.Lock()
		sendNotification(conn, notifCease)
		s.writeMu.Unlock()
		// Let the peer read the Cease and close its side first: closing
		// immediately can reset the connection while inbound keepalives
		// sit unread in our receive buffer, and the RST would destroy the
		// in-flight NOTIFICATION — turning this orderly close into what
		// the peer must treat as a transport failure.
		grace := s.cfg.HoldTime
		if grace > time.Second {
			grace = time.Second
		}
		s.waitIdle(grace)
		conn.Close()
	}
	s.wg.Wait()
	return nil
}

// waitIdle blocks until the FSM has left the session (state Idle) or the
// timeout elapses.
func (s *Speaker) waitIdle(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	tm := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer tm.Stop()
	s.mu.Lock()
	for s.state != StateIdle && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	s.mu.Unlock()
}
