package mrt

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/bgp"
)

// fuzzSeedStream builds a small valid MRT stream (UPDATE, KEEPALIVE, and a
// record of a type the reader skips) to seed the fuzzer alongside the
// checked-in corpus under testdata/fuzz.
func fuzzSeedStream(tb testing.TB) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	upd, err := bgp.EncodeUpdate(&bgp.Update{
		NLRI:  []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
		Attrs: bgp.PathAttrs{ASPath: []uint32{64500}, NextHop: 1, Communities: bgp.Communities{bgp.Blackhole}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	at := time.Date(2018, 10, 10, 12, 0, 0, 123456000, time.UTC)
	for _, msg := range [][]byte{upd, bgp.EncodeKeepalive()} {
		if err := w.WriteRecord(&Record{Timestamp: at, PeerAS: 64500, LocalAS: 65535, PeerIP: 0x0A000002, LocalIP: 0x0A000001, Message: msg}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	// An unknown-type record the reader must skip: TABLE_DUMP_V2 (13).
	buf.Write([]byte{0, 0, 0, 0, 0, 13, 0, 4, 0, 0, 0, 2, 0xAA, 0xBB})
	return buf.Bytes()
}

// FuzzMRTRead drives the MRT reader (and the embedded BGP decoder) over
// arbitrary bytes: it must return records or errors, never panic, and
// always terminate. Termination holds structurally — every Next consumes
// at least the 12-byte record header.
func FuzzMRTRead(f *testing.F) {
	seed := fuzzSeedStream(f)
	f.Add(seed)
	f.Add(seed[:13])                         // truncated body
	f.Add([]byte{})                          //
	f.Add(bytes.Repeat([]byte{0xFF}, 40))    // implausible length field
	f.Add(append([]byte(nil), seed[12:]...)) // stream starting mid-record

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for {
			rec, err := rd.Next()
			if err != nil {
				return // io.EOF and parse errors are both acceptable
			}
			// The embedded message must decode or error, never panic.
			if _, _, err := rec.DecodeUpdate(); err != nil {
				continue
			}
		}
	})
}
