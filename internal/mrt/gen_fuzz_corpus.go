//go:build ignore

// Regenerates the FuzzMRTRead seed corpus:
//
//	go run gen_fuzz_corpus.go
//
// The corpus holds a well-formed two-record stream, records the reader
// skips, and truncations at every structural boundary.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bgp"
	"repro/internal/mrt"
)

func main() {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	upd, err := bgp.EncodeUpdate(&bgp.Update{
		NLRI:  []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
		Attrs: bgp.PathAttrs{ASPath: []uint32{64500}, NextHop: 1, Communities: bgp.Communities{bgp.Blackhole}},
	})
	if err != nil {
		panic(err)
	}
	at := time.Date(2018, 10, 10, 12, 0, 0, 123456000, time.UTC)
	for _, msg := range [][]byte{upd, bgp.EncodeKeepalive()} {
		if err := w.WriteRecord(&mrt.Record{Timestamp: at, PeerAS: 64500, LocalAS: 65535, PeerIP: 0x0A000002, LocalIP: 0x0A000001, Message: msg}); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	stream := buf.Bytes()

	seeds := [][]byte{
		stream,
		stream[:12], // header only
		stream[:30], // truncated body
		stream[12:], // starts mid-record
		append([]byte{0, 0, 0, 0, 0, 13, 0, 4, 0, 0, 0, 2, 0xAA, 0xBB}, stream...), // skipped type first
		{0, 0, 0, 0, 0, 17, 0, 4, 0, 0, 0, 2, 0, 0},                                // ET record too short for microseconds
		{0, 0, 0, 0, 0, 16, 0, 4, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0},              // AS4 body too short
		bytes.Repeat([]byte{0xFF}, 40),                                             // implausible length
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzMRTRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for i, b := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d corpus files to %s\n", len(seeds), dir)
}
