// Package mrt implements the MRT routing information export format
// (RFC 6396) for the record types a route-server BGP collector produces:
// BGP4MP_ET records carrying BGP4MP_MESSAGE_AS4 payloads with microsecond
// timestamps.
//
// The simulator archives every BGP message that crosses the route server
// as an MRT stream, and the analysis pipeline consumes that stream — the
// same division of labour as at the IXP under study, where the collector
// and the analysis are separate systems joined by dump files.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bgp"
)

// MRT type and subtype codes (RFC 6396 §4).
const (
	typeBGP4MP   = 16
	typeBGP4MPET = 17 // extended (microsecond) timestamp variant

	subtypeMessageAS4 = 4 // BGP4MP_MESSAGE_AS4
)

// afiIPv4 is the IANA address family identifier for IPv4.
const afiIPv4 = 1

// Record is one BGP4MP_MESSAGE_AS4 record: a timestamped BGP message
// exchanged between a peer and the collector (the route server).
type Record struct {
	// Timestamp of the message at the collector. Stored with microsecond
	// resolution on the wire.
	Timestamp time.Time
	// PeerAS is the AS of the route-server client that sent or received
	// the message.
	PeerAS uint32
	// LocalAS is the route server's AS.
	LocalAS uint32
	// PeerIP and LocalIP are the session endpoint addresses (host order).
	PeerIP, LocalIP uint32
	// Message is the raw BGP message, header included.
	Message []byte
}

// DecodeUpdate decodes the embedded BGP message if it is an UPDATE.
// It returns (nil, false, nil) for other message types (KEEPALIVE etc.).
func (r *Record) DecodeUpdate() (*bgp.Update, bool, error) {
	typ, msg, _, err := bgp.DecodeMessage(r.Message)
	if err != nil {
		return nil, false, err
	}
	if typ != bgp.MsgUpdate {
		return nil, false, nil
	}
	return msg.(*bgp.Update), true, nil
}

// Writer streams MRT records to an io.Writer. Writers buffer internally;
// call Flush (or Close if the destination is an io.Closer) when done.
type Writer struct {
	w   *bufio.Writer
	c   io.Closer
	buf []byte
}

// NewWriter returns a Writer emitting to w. If w is also an io.Closer,
// Close will close it after flushing.
func NewWriter(w io.Writer) *Writer {
	mw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		mw.c = c
	}
	return mw
}

// WriteRecord appends one record to the stream.
func (w *Writer) WriteRecord(r *Record) error {
	if len(r.Message) < 19 {
		return fmt.Errorf("mrt: BGP message too short (%d bytes)", len(r.Message))
	}
	body := 4 + 4 + 2 + 2 + 4 + 4 + len(r.Message) // AS4 message header + payload
	total := 12 + 4 + body                         // MRT header + microseconds + body

	w.buf = w.buf[:0]
	if cap(w.buf) < total {
		w.buf = make([]byte, 0, total)
	}
	b := w.buf
	ts := r.Timestamp
	b = binary.BigEndian.AppendUint32(b, uint32(ts.Unix()))
	b = binary.BigEndian.AppendUint16(b, typeBGP4MPET)
	b = binary.BigEndian.AppendUint16(b, subtypeMessageAS4)
	// For the ET variant the length field covers the microsecond field
	// plus the message body (RFC 6396 §3).
	b = binary.BigEndian.AppendUint32(b, uint32(4+body))
	b = binary.BigEndian.AppendUint32(b, uint32(ts.Nanosecond()/1000))
	b = binary.BigEndian.AppendUint32(b, r.PeerAS)
	b = binary.BigEndian.AppendUint32(b, r.LocalAS)
	b = binary.BigEndian.AppendUint16(b, 0) // interface index
	b = binary.BigEndian.AppendUint16(b, afiIPv4)
	b = binary.BigEndian.AppendUint32(b, r.PeerIP)
	b = binary.BigEndian.AppendUint32(b, r.LocalIP)
	b = append(b, r.Message...)
	w.buf = b

	_, err := w.w.Write(b)
	return err
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Close flushes and, if the destination is an io.Closer, closes it.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// Reader parses an MRT stream produced by Writer (and, more generally,
// any stream of BGP4MP/BGP4MP_ET MESSAGE_AS4 records over IPv4 sessions).
// Records of other types are skipped silently, mirroring how analysis
// tooling treats mixed collector dumps.
// Decode errors are wrapped with the zero-based record index and the byte
// offset of the offending record in the stream, so a truncated or corrupt
// dump points at the damage rather than surfacing a bare
// io.ErrUnexpectedEOF.
type Reader struct {
	r      *bufio.Reader
	hdr    [12]byte
	offset int64 // stream offset of the next unread byte
	index  int   // records (of any type) fully consumed so far
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// recErr decorates a decode error with the index and stream offset of the
// record being read.
func (rd *Reader) recErr(recStart int64, err error) error {
	return fmt.Errorf("mrt: record %d at offset %d: %w", rd.index, recStart, err)
}

// Next returns the next MESSAGE_AS4 record, or io.EOF at end of stream.
func (rd *Reader) Next() (*Record, error) {
	for {
		recStart := rd.offset
		n, err := io.ReadFull(rd.r, rd.hdr[:])
		rd.offset += int64(n)
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, rd.recErr(recStart, fmt.Errorf("truncated record header: %d of %d bytes: %w", n, len(rd.hdr), err))
			}
			return nil, err
		}
		seconds := binary.BigEndian.Uint32(rd.hdr[0:4])
		typ := binary.BigEndian.Uint16(rd.hdr[4:6])
		subtype := binary.BigEndian.Uint16(rd.hdr[6:8])
		length := binary.BigEndian.Uint32(rd.hdr[8:12])
		if length > 1<<20 {
			return nil, rd.recErr(recStart, fmt.Errorf("implausible record length %d", length))
		}
		body := make([]byte, length)
		n, err = io.ReadFull(rd.r, body)
		rd.offset += int64(n)
		if err != nil {
			// A clean EOF here still means truncation: the header promised
			// length more bytes.
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, rd.recErr(recStart, fmt.Errorf("truncated record body: %d of %d bytes: %w", n, length, err))
		}

		isET := typ == typeBGP4MPET
		if (typ != typeBGP4MP && !isET) || subtype != subtypeMessageAS4 {
			rd.index++
			continue // skip record types we do not interpret
		}

		micros := uint32(0)
		if isET {
			if len(body) < 4 {
				return nil, rd.recErr(recStart, errors.New("ET record missing microsecond field"))
			}
			micros = binary.BigEndian.Uint32(body[0:4])
			body = body[4:]
		}
		if len(body) < 20 {
			return nil, rd.recErr(recStart, fmt.Errorf("MESSAGE_AS4 body too short (%d bytes)", len(body)))
		}
		afi := binary.BigEndian.Uint16(body[10:12])
		if afi != afiIPv4 {
			rd.index++
			continue // IPv6 session records are out of scope
		}
		rec := &Record{
			Timestamp: time.Unix(int64(seconds), int64(micros)*1000).UTC(),
			PeerAS:    binary.BigEndian.Uint32(body[0:4]),
			LocalAS:   binary.BigEndian.Uint32(body[4:8]),
			PeerIP:    binary.BigEndian.Uint32(body[12:16]),
			LocalIP:   binary.BigEndian.Uint32(body[16:20]),
			Message:   body[20:],
		}
		if len(rec.Message) < 19 {
			return nil, rd.recErr(recStart, fmt.Errorf("embedded BGP message too short (%d bytes)", len(rec.Message)))
		}
		rd.index++
		return rec, nil
	}
}

// ReadAll drains the stream into a slice. Intended for tests and small
// datasets; the analysis pipeline streams with Next.
func ReadAll(r io.Reader) ([]*Record, error) {
	rd := NewReader(r)
	var out []*Record
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
