package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
)

func testUpdate(t *testing.T) []byte {
	t.Helper()
	enc, err := bgp.EncodeUpdate(&bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []uint32{64500},
			NextHop:     0x0a000001,
			Communities: bgp.Communities{bgp.Blackhole},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.9/32")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Date(2018, 10, 3, 14, 30, 12, 345678000, time.UTC)
	rec := &Record{
		Timestamp: ts,
		PeerAS:    64500,
		LocalAS:   65500,
		PeerIP:    0xc0000201,
		LocalIP:   0xc0000202,
		Message:   testUpdate(t),
	}
	for i := 0; i < 3; i++ {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records, want 3", len(got))
	}
	g := got[0]
	if !g.Timestamp.Equal(ts) {
		t.Fatalf("timestamp %v, want %v (microsecond precision)", g.Timestamp, ts)
	}
	if g.PeerAS != 64500 || g.LocalAS != 65500 || g.PeerIP != rec.PeerIP || g.LocalIP != rec.LocalIP {
		t.Fatalf("session fields mismatch: %+v", g)
	}
	u, isUpdate, err := g.DecodeUpdate()
	if err != nil || !isUpdate {
		t.Fatalf("DecodeUpdate: %v %v", isUpdate, err)
	}
	if !u.Attrs.Communities.HasBlackhole() {
		t.Fatal("blackhole community lost through MRT round trip")
	}
}

func TestTimestampMicrosecondPrecision(t *testing.T) {
	f := func(sec uint32, usecRaw uint32) bool {
		usec := usecRaw % 1000000
		ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
		var buf bytes.Buffer
		w := NewWriter(&buf)
		msg := bgp.EncodeKeepalive()
		if err := w.WriteRecord(&Record{Timestamp: ts, Message: msg}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		return err == nil && len(recs) == 1 && recs[0].Timestamp.Equal(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderSkipsForeignRecordTypes(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a TABLE_DUMP_V2 (type 13) record which must be skipped.
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint32(hdr[0:4], 1538000000)
	binary.BigEndian.PutUint16(hdr[4:6], 13)
	binary.BigEndian.PutUint16(hdr[6:8], 2)
	binary.BigEndian.PutUint32(hdr[8:12], 5)
	buf.Write(hdr)
	buf.Write([]byte{1, 2, 3, 4, 5})

	w := NewWriter(&buf)
	rec := &Record{Timestamp: time.Unix(1538000100, 0), Message: bgp.EncodeKeepalive()}
	if err := w.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1 (foreign type skipped)", len(got))
	}
}

func TestReaderRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteRecord(&Record{Timestamp: time.Unix(0, 0), Message: bgp.EncodeKeepalive()})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3]
	_, err := ReadAll(bytes.NewReader(data))
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated stream not rejected: %v", err)
	}
}

func TestReaderRejectsImplausibleLength(t *testing.T) {
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint16(hdr[4:6], typeBGP4MPET)
	binary.BigEndian.PutUint16(hdr[6:8], subtypeMessageAS4)
	binary.BigEndian.PutUint32(hdr[8:12], 1<<24)
	_, err := ReadAll(bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("giant record length accepted")
	}
}

func TestWriterRejectsShortMessage(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteRecord(&Record{Message: []byte{1, 2, 3}}); err == nil {
		t.Fatal("short BGP message accepted")
	}
}

func TestDecodeUpdateNonUpdate(t *testing.T) {
	rec := &Record{Message: bgp.EncodeKeepalive()}
	u, isUpdate, err := rec.DecodeUpdate()
	if err != nil || isUpdate || u != nil {
		t.Fatalf("keepalive misclassified: %v %v %v", u, isUpdate, err)
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v %v", got, err)
	}
}

func TestManyRecordsStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msg := testUpdate(t)
	const n = 1000
	for i := 0; i < n; i++ {
		err := w.WriteRecord(&Record{
			Timestamp: time.Unix(int64(1538000000+i), int64(i%1000000)*1000),
			PeerAS:    uint32(64000 + i%100),
			Message:   msg,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	rd := NewReader(&buf)
	count := 0
	var prev time.Time
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Timestamp.Before(prev) {
			t.Fatal("timestamps out of order after round trip")
		}
		prev = rec.Timestamp
		count++
	}
	if count != n {
		t.Fatalf("read %d records, want %d", count, n)
	}
}
