package mrt

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
)

// TestReaderNeverPanicsOnCorruption stresses the MRT reader with random
// corruptions, truncations, and pure noise.
func TestReaderNeverPanicsOnCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msg := bgp.EncodeKeepalive()
	for i := 0; i < 32; i++ {
		if err := w.WriteRecord(&Record{Timestamp: time.Unix(int64(i), 0), Message: msg}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	valid := buf.Bytes()

	r := stats.NewRNG(0xdead)
	for trial := 0; trial < 5000; trial++ {
		data := append([]byte(nil), valid...)
		switch trial % 3 {
		case 0:
			for k := 0; k < 1+r.Intn(6); k++ {
				data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
			}
		case 1:
			data = data[:r.Intn(len(data)+1)]
		default:
			data = make([]byte, r.Intn(200))
			for i := range data {
				data[i] = byte(r.Uint64())
			}
		}
		_, _ = ReadAll(bytes.NewReader(data)) // must not panic
	}
}
