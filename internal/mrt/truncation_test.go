package mrt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

// mrtStream encodes n keepalive records and returns the raw bytes plus
// the per-record boundaries (offset of each record start).
func mrtStream(t *testing.T, n int) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	starts := make([]int, 0, n)
	msg := bgp.EncodeKeepalive()
	for i := 0; i < n; i++ {
		starts = append(starts, buf.Len())
		err := w.WriteRecord(&Record{
			Timestamp: time.Unix(int64(1000+i), 0),
			PeerAS:    uint32(100 + i),
			LocalAS:   65500,
			Message:   msg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), starts
}

// TestReaderTruncationErrors cuts a valid stream at characteristic points
// inside the third record and asserts the error names the record index
// and stream offset instead of surfacing a bare io.ErrUnexpectedEOF.
func TestReaderTruncationErrors(t *testing.T) {
	valid, starts := mrtStream(t, 4)
	third := starts[2] // zero-based record 2

	cases := []struct {
		name string
		cut  int    // byte length to keep
		want []string
	}{
		{"mid header", third + 5, []string{"record 2", "truncated record header"}},
		{"header only", third + 12, []string{"record 2", "truncated record body", "0 of"}},
		{"mid timestamp extension", third + 12 + 2, []string{"record 2", "truncated record body"}},
		{"mid BGP message", len(valid) - 3, []string{"record 3", "truncated record body"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := ReadAll(bytes.NewReader(valid[:tc.cut]))
			if err == nil {
				t.Fatalf("no error for truncation at %d bytes", tc.cut)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("truncation reported as clean EOF: %v", err)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
			// The intact prefix must still have been decoded.
			wantRecs := 2
			if tc.cut >= starts[3] {
				wantRecs = 3
			}
			if len(recs) != wantRecs {
				t.Errorf("decoded %d records before error, want %d", len(recs), wantRecs)
			}
		})
	}
}

// TestReaderOffsetInError pins the reported offset to the actual record
// boundary so the message is usable for manual inspection with xxd.
func TestReaderOffsetInError(t *testing.T) {
	valid, starts := mrtStream(t, 3)
	_, err := ReadAll(bytes.NewReader(valid[:starts[1]+7]))
	if err == nil {
		t.Fatal("expected error")
	}
	want := fmt.Sprintf("mrt: record 1 at offset %d:", starts[1])
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
}

// TestReaderCleanEOF makes sure hardening did not turn a well-formed end
// of stream into an error.
func TestReaderCleanEOF(t *testing.T) {
	valid, _ := mrtStream(t, 2)
	recs, err := ReadAll(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("decoded %d records, want 2", len(recs))
	}
}
