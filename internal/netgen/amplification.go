// Package netgen generates the traffic that crosses the simulated IXP:
// volumetric DDoS attacks (UDP amplification on the protocols the paper
// tabulates, TCP SYN floods, random- and rotating-port floods) and
// legitimate baseline traffic with distinct server and client signatures.
//
// All generators emit fabric.Batch values — packet aggregates per time
// slot — and take deterministic RNG streams, so a scenario reproduces
// exactly across runs.
package netgen

import "repro/internal/stats"

// Transport protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// AmpProtocol describes one UDP amplification service, per the paper's
// Table 3 footnote.
type AmpProtocol struct {
	Name string
	Port uint16
	// PacketSize is a typical amplified-response size in bytes.
	PacketSize int
	// Weight is the relative frequency with which attacks use this
	// vector; cLDAP, NTP and DNS dominate (§5.4).
	Weight float64
}

// AmplificationProtocols is the known amplification vector list from the
// paper's Table 3: "QOTD/17, CharGEN/19, DNS/53, TFTP/69, NTP/123,
// NetBIOS/138, SNMPv2/161, LDAP/389, RIPv1/520, SSDP/1900, Game/3659,
// Game/3478, SIP/5060, BitTorrent/6881, Memcache/11211, Game/27005,
// Game/28960, Fragmentation/0".
var AmplificationProtocols = []AmpProtocol{
	{Name: "QOTD", Port: 17, PacketSize: 500, Weight: 0.5},
	{Name: "CharGEN", Port: 19, PacketSize: 1020, Weight: 2},
	{Name: "DNS", Port: 53, PacketSize: 1400, Weight: 18},
	{Name: "TFTP", Port: 69, PacketSize: 500, Weight: 1},
	{Name: "NTP", Port: 123, PacketSize: 468, Weight: 22},
	{Name: "NetBIOS", Port: 138, PacketSize: 400, Weight: 1},
	{Name: "SNMPv2", Port: 161, PacketSize: 900, Weight: 1.5},
	{Name: "cLDAP", Port: 389, PacketSize: 1400, Weight: 26},
	{Name: "RIPv1", Port: 520, PacketSize: 500, Weight: 0.5},
	{Name: "SSDP", Port: 1900, PacketSize: 350, Weight: 6},
	{Name: "Game/3659", Port: 3659, PacketSize: 300, Weight: 1},
	{Name: "Game/3478", Port: 3478, PacketSize: 300, Weight: 1},
	{Name: "SIP", Port: 5060, PacketSize: 600, Weight: 1},
	{Name: "BitTorrent", Port: 6881, PacketSize: 800, Weight: 1.5},
	{Name: "Memcache", Port: 11211, PacketSize: 1400, Weight: 4},
	{Name: "Game/27005", Port: 27005, PacketSize: 300, Weight: 0.5},
	{Name: "Game/28960", Port: 28960, PacketSize: 300, Weight: 0.5},
	{Name: "Fragmentation", Port: 0, PacketSize: 1480, Weight: 2},
}

// ampPortSet indexes AmplificationProtocols by port for O(1) membership.
var ampPortSet = func() map[uint16]bool {
	m := make(map[uint16]bool, len(AmplificationProtocols))
	for _, p := range AmplificationProtocols {
		m[p.Port] = true
	}
	return m
}()

// IsAmplificationPort reports whether a UDP source port belongs to a known
// amplification service. Reflected attack traffic arrives with the
// service port as *source* port (the reflector answers the victim), which
// is what port-list filtering matches on (§5.5, Fig 14).
func IsAmplificationPort(proto uint8, srcPort uint16) bool {
	return proto == ProtoUDP && ampPortSet[srcPort]
}

// AmpProtocolByPort returns the catalog entry for a port.
func AmpProtocolByPort(port uint16) (AmpProtocol, bool) {
	for _, p := range AmplificationProtocols {
		if p.Port == port {
			return p, true
		}
	}
	return AmpProtocol{}, false
}

// PickAmpProtocols selects n distinct amplification protocols with
// popularity-weighted probability. n is clamped to the catalog size.
func PickAmpProtocols(r *stats.RNG, n int) []AmpProtocol {
	if n > len(AmplificationProtocols) {
		n = len(AmplificationProtocols)
	}
	weights := make([]float64, len(AmplificationProtocols))
	for i, p := range AmplificationProtocols {
		weights[i] = p.Weight
	}
	out := make([]AmpProtocol, 0, n)
	for len(out) < n {
		i := r.WeightedChoice(weights)
		if weights[i] == 0 {
			continue
		}
		weights[i] = 0
		out = append(out, AmplificationProtocols[i])
	}
	return out
}

// EphemeralPort draws a client-side ephemeral port (1024-65535).
func EphemeralPort(r *stats.RNG) uint16 {
	return uint16(1024 + r.Intn(64512))
}
