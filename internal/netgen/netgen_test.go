package netgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/stats"
)

func TestAmplificationPortMembership(t *testing.T) {
	// All catalog ports match under UDP.
	for _, p := range AmplificationProtocols {
		if !IsAmplificationPort(ProtoUDP, p.Port) {
			t.Errorf("%s/%d not recognized", p.Name, p.Port)
		}
		// Same port under TCP must not match: the filter is UDP-specific.
		if IsAmplificationPort(ProtoTCP, p.Port) {
			t.Errorf("%s/%d matched under TCP", p.Name, p.Port)
		}
	}
	if IsAmplificationPort(ProtoUDP, 50000) {
		t.Error("ephemeral port matched")
	}
}

func TestAmpProtocolByPort(t *testing.T) {
	p, ok := AmpProtocolByPort(11211)
	if !ok || p.Name != "Memcache" {
		t.Fatalf("Memcache lookup = %+v, %v", p, ok)
	}
	if _, ok := AmpProtocolByPort(9999); ok {
		t.Fatal("unknown port resolved")
	}
}

func TestPickAmpProtocolsDistinct(t *testing.T) {
	r := stats.NewRNG(1)
	for trial := 0; trial < 100; trial++ {
		got := PickAmpProtocols(r, 3)
		if len(got) != 3 {
			t.Fatalf("got %d protocols", len(got))
		}
		seen := map[uint16]bool{}
		for _, p := range got {
			if seen[p.Port] {
				t.Fatalf("duplicate protocol %s", p.Name)
			}
			seen[p.Port] = true
		}
	}
	// Clamped to catalog size.
	if got := PickAmpProtocols(r, 1000); len(got) != len(AmplificationProtocols) {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestPickAmpProtocolsWeighted(t *testing.T) {
	r := stats.NewRNG(2)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[PickAmpProtocols(r, 1)[0].Name]++
	}
	// cLDAP, NTP, DNS dominate per the paper.
	if counts["cLDAP"] < counts["QOTD"] {
		t.Fatalf("cLDAP (%d) should dominate QOTD (%d)", counts["cLDAP"], counts["QOTD"])
	}
}

func TestEphemeralPortRange(t *testing.T) {
	r := stats.NewRNG(3)
	for i := 0; i < 10000; i++ {
		p := EphemeralPort(r)
		if p < 1024 {
			t.Fatalf("ephemeral port %d below 1024", p)
		}
	}
}

func TestAmplificationVectorBatches(t *testing.T) {
	v := &AmplificationVector{
		Protocol: mustProto(t, 389),
		Reflectors: []Reflector{
			{IP: 1, OriginAS: 10, HandoverAS: 100},
			{IP: 2, OriginAS: 10, HandoverAS: 100},
			{IP: 3, OriginAS: 20, HandoverAS: 200},
		},
	}
	r := stats.NewRNG(4)
	batches := v.Batches(nil, time.Unix(0, 0), 5*time.Minute, 1000, 99, 300, r)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want one per handover AS", len(batches))
	}
	var total int64
	for _, b := range batches {
		total += b.Packets
		if b.EgressAS != 300 || b.DstIP != 99 {
			t.Fatalf("victim routing wrong: %+v", b)
		}
		if b.Proto != ProtoUDP {
			t.Fatalf("proto = %d", b.Proto)
		}
		src, dstPort := b.VaryPorts(r)
		if src != 389 {
			t.Fatalf("amplified source port = %d, want 389", src)
		}
		if dstPort < 1024 {
			t.Fatalf("dst port %d not ephemeral", dstPort)
		}
		ip := b.VarySrcIP(r)
		if ip == 0 {
			t.Fatal("reflector IP zero")
		}
	}
	want := int64(1000 * 300)
	if math.Abs(float64(total-want)) > float64(want)/10 {
		t.Fatalf("total packets = %d, want ~%d", total, want)
	}
}

func mustProto(t *testing.T, port uint16) AmpProtocol {
	t.Helper()
	p, ok := AmpProtocolByPort(port)
	if !ok {
		t.Fatalf("no protocol for port %d", port)
	}
	return p
}

func TestAmplificationVectorEmptyPool(t *testing.T) {
	v := &AmplificationVector{Protocol: mustProto(t, 123)}
	if got := v.Batches(nil, time.Unix(0, 0), time.Minute, 1000, 1, 2, stats.NewRNG(1)); got != nil {
		t.Fatalf("empty pool produced batches: %v", got)
	}
}

func TestSYNFloodVector(t *testing.T) {
	v := &SYNFloodVector{Handovers: []uint32{100, 200}, DstPorts: []uint16{80, 443}}
	r := stats.NewRNG(5)
	batches := v.Batches(nil, time.Unix(0, 0), time.Minute, 600, 7, 300, r)
	if len(batches) != 2 {
		t.Fatalf("batches = %d", len(batches))
	}
	for _, b := range batches {
		if b.Proto != ProtoTCP || b.PacketSize != 60 {
			t.Fatalf("not SYN-like: %+v", b)
		}
		_, dst := b.VaryPorts(r)
		if dst != 80 && dst != 443 {
			t.Fatalf("dst port = %d", dst)
		}
		ip := b.VarySrcIP(r)
		if ip < 0x01000000 || ip >= 0xdf000000 {
			t.Fatalf("spoofed source %x outside unicast range", ip)
		}
	}
}

func TestRandomPortVectorAvoidsAmpPorts(t *testing.T) {
	v := &RandomPortUDPVector{Handovers: []uint32{100}}
	r := stats.NewRNG(6)
	batches := v.Batches(nil, time.Unix(0, 0), time.Minute, 100, 1, 2, r)
	if len(batches) != 1 {
		t.Fatalf("batches = %d", len(batches))
	}
	for i := 0; i < 5000; i++ {
		src, _ := batches[0].VaryPorts(r)
		if IsAmplificationPort(ProtoUDP, src) {
			t.Fatalf("random-port vector produced amplification source port %d", src)
		}
	}
}

func TestRotatingPortVectorIncrements(t *testing.T) {
	v := &RotatingPortVector{Handovers: []uint32{100}}
	r := stats.NewRNG(7)
	batches := v.Batches(nil, time.Unix(0, 0), time.Minute, 100, 1, 2, r)
	_, p1 := batches[0].VaryPorts(r)
	_, p2 := batches[0].VaryPorts(r)
	_, p3 := batches[0].VaryPorts(r)
	if p2 != p1+1 || p3 != p2+1 {
		t.Fatalf("ports not rotating: %d %d %d", p1, p2, p3)
	}
}

func TestServerProfileSignature(t *testing.T) {
	s := &ServerProfile{
		IP: 0x0b000001, MemberAS: 500,
		Services:     []Service{{ProtoTCP, 443, 1200, 3}, {ProtoTCP, 80, 1100, 1}},
		DailyPackets: 10000,
	}
	remotes := &RemotePool{Handovers: []uint32{100, 200}, AddrBase: 0x20000000, AddrCount: 1 << 16}
	r := stats.NewRNG(8)
	batches := s.DayBatches(nil, time.Unix(0, 0), remotes, r)
	if len(batches) != 4 {
		t.Fatalf("batches = %d, want 2 per service", len(batches))
	}
	var inPkts, outPkts int64
	for _, b := range batches {
		if b.DstIP == s.IP {
			inPkts += b.Packets
			_, dp := b.VaryPorts(r)
			if dp != 443 && dp != 80 {
				t.Fatalf("incoming dst port %d not a service port", dp)
			}
		} else if b.SrcIP == s.IP {
			outPkts += b.Packets
			sp, _ := b.VaryPorts(r)
			if sp != 443 && sp != 80 {
				t.Fatalf("outgoing src port %d not a service port", sp)
			}
		} else {
			t.Fatalf("batch unrelated to server: %+v", b)
		}
	}
	if inPkts == 0 || outPkts == 0 {
		t.Fatal("one direction missing")
	}
	// Weight split: 443 should carry ~3x the packets of 80.
}

func TestClientProfileSignature(t *testing.T) {
	c := &ClientProfile{IP: 0x0c000001, MemberAS: 500, SessionsPerDay: 10, DailyPackets: 5000}
	remotes := &RemotePool{Handovers: []uint32{100}, AddrBase: 0x20000000, AddrCount: 1 << 16}
	r := stats.NewRNG(9)
	batches := c.DayBatches(nil, time.Unix(0, 0), remotes, r)
	if len(batches) != 20 {
		t.Fatalf("batches = %d, want 2 per session", len(batches))
	}
	ephPorts := map[uint16]bool{}
	for _, b := range batches {
		switch {
		case b.SrcIP == c.IP: // outgoing
			ephPorts[b.SrcPort] = true
		case b.DstIP == c.IP: // incoming
			if b.DstPort < 1024 {
				t.Fatalf("incoming to client on privileged port %d", b.DstPort)
			}
		default:
			t.Fatalf("batch unrelated to client: %+v", b)
		}
	}
	if len(ephPorts) < 5 {
		t.Fatalf("client used only %d distinct ephemeral ports", len(ephPorts))
	}
}

func TestGamingClientUsesGameServices(t *testing.T) {
	c := &ClientProfile{IP: 1, MemberAS: 500, SessionsPerDay: 50, DailyPackets: 500, Gaming: true}
	remotes := &RemotePool{Handovers: []uint32{100}, AddrBase: 2, AddrCount: 10}
	batches := c.DayBatches(nil, time.Unix(0, 0), remotes, stats.NewRNG(10))
	udp := 0
	for _, b := range batches {
		if b.Proto == ProtoUDP {
			udp++
		}
	}
	if udp < len(batches)/2 {
		t.Fatalf("gaming client mostly TCP: %d/%d UDP", udp, len(batches))
	}
}

func TestScanBatches(t *testing.T) {
	remotes := &RemotePool{Handovers: []uint32{100}, AddrBase: 2, AddrCount: 10}
	r := stats.NewRNG(11)
	batches := ScanBatches(nil, time.Unix(0, 0), 1, 500, 100, remotes, r)
	if len(batches) != 1 || batches[0].Proto != ProtoTCP {
		t.Fatalf("batches = %+v", batches)
	}
	if got := ScanBatches(nil, time.Unix(0, 0), 1, 500, 0, remotes, r); got != nil {
		t.Fatal("zero packets produced a batch")
	}
}

func TestDiurnalAveragesToOne(t *testing.T) {
	var sum float64
	n := 0
	for m := 0; m < 24*60; m += 5 {
		sum += Diurnal(time.Date(2018, 10, 1, 0, m, 0, 0, time.UTC).Add(0))
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("diurnal mean = %v", mean)
	}
	low := Diurnal(time.Date(2018, 10, 1, 4, 0, 0, 0, time.UTC))
	high := Diurnal(time.Date(2018, 10, 1, 20, 0, 0, 0, time.UTC))
	if low >= high {
		t.Fatalf("diurnal: 04:00 (%v) not below 20:00 (%v)", low, high)
	}
}

func TestVectorsProduceInjectableBatches(t *testing.T) {
	// Every vector's batches must satisfy the fabric's invariants.
	vs := []Vector{
		&AmplificationVector{Protocol: mustProto(t, 123), Reflectors: []Reflector{{IP: 1, HandoverAS: 100}}},
		&SYNFloodVector{Handovers: []uint32{100}, DstPorts: []uint16{80}},
		&RandomPortUDPVector{Handovers: []uint32{100}},
		&RotatingPortVector{Handovers: []uint32{100}},
	}
	r := stats.NewRNG(12)
	var all []fabric.Batch
	for _, v := range vs {
		all = v.Batches(all, time.Unix(0, 0), time.Minute, 100, 1, 2, r)
	}
	for _, b := range all {
		if b.PacketSize <= 0 || b.Packets <= 0 || b.Duration <= 0 {
			t.Fatalf("invalid batch: %+v", b)
		}
	}
}

func TestRemotePoolDegenerate(t *testing.T) {
	p := &RemotePool{Handovers: []uint32{7}, AddrBase: 100, AddrCount: 0}
	r := stats.NewRNG(20)
	if a := p.Addr(r); a != 100 {
		t.Fatalf("zero-count pool addr = %d, want base", a)
	}
	if h := p.Handover(r); h != 7 {
		t.Fatalf("handover = %d", h)
	}
}

func TestServerProfileDegenerate(t *testing.T) {
	remotes := &RemotePool{Handovers: []uint32{1}, AddrBase: 2, AddrCount: 4}
	r := stats.NewRNG(21)
	empty := &ServerProfile{IP: 1, MemberAS: 2, DailyPackets: 100}
	if got := empty.DayBatches(nil, time.Unix(0, 0), remotes, r); got != nil {
		t.Fatal("no-service profile produced batches")
	}
	zero := &ServerProfile{IP: 1, MemberAS: 2, Services: CommonServices[:1]}
	if got := zero.DayBatches(nil, time.Unix(0, 0), remotes, r); got != nil {
		t.Fatal("zero-volume profile produced batches")
	}
	// Zero weights fall back to uniform.
	flat := &ServerProfile{IP: 1, MemberAS: 2,
		Services:     []Service{{ProtoTCP, 443, 100, 0}, {ProtoTCP, 80, 100, 0}},
		DailyPackets: 1000,
	}
	got := flat.DayBatches(nil, time.Unix(0, 0), remotes, r)
	if len(got) != 4 {
		t.Fatalf("flat-weight batches = %d", len(got))
	}
}

func TestClientProfileDegenerate(t *testing.T) {
	remotes := &RemotePool{Handovers: []uint32{1}, AddrBase: 2, AddrCount: 4}
	r := stats.NewRNG(22)
	c := &ClientProfile{IP: 1, MemberAS: 2, SessionsPerDay: 0, DailyPackets: 100}
	if got := c.DayBatches(nil, time.Unix(0, 0), remotes, r); got != nil {
		t.Fatal("zero-session client produced batches")
	}
	// More sessions than packets: per-session volume floors at 1.
	tiny := &ClientProfile{IP: 1, MemberAS: 2, SessionsPerDay: 10, DailyPackets: 3}
	got := tiny.DayBatches(nil, time.Unix(0, 0), remotes, r)
	for _, b := range got {
		if b.Packets < 1 {
			t.Fatalf("batch with %d packets", b.Packets)
		}
	}
}

func TestVectorsDegenerate(t *testing.T) {
	r := stats.NewRNG(23)
	at := time.Unix(0, 0)
	// Zero pps or zero duration produce nothing.
	amp := &AmplificationVector{Protocol: AmplificationProtocols[0],
		Reflectors: []Reflector{{IP: 1, HandoverAS: 9}}}
	if got := amp.Batches(nil, at, time.Minute, 0, 1, 2, r); got != nil {
		t.Fatal("zero-pps amp vector produced batches")
	}
	syn := &SYNFloodVector{Handovers: []uint32{9}, DstPorts: []uint16{80}}
	if got := syn.Batches(nil, at, 0, 100, 1, 2, r); got != nil {
		t.Fatal("zero-duration SYN vector produced batches")
	}
	if got := (&SYNFloodVector{}).Batches(nil, at, time.Minute, 100, 1, 2, r); got != nil {
		t.Fatal("handover-less SYN vector produced batches")
	}
	if got := (&RandomPortUDPVector{}).Batches(nil, at, time.Minute, 100, 1, 2, r); got != nil {
		t.Fatal("handover-less random vector produced batches")
	}
	if got := (&RotatingPortVector{}).Batches(nil, at, time.Minute, 100, 1, 2, r); got != nil {
		t.Fatal("handover-less rotating vector produced batches")
	}
}

func TestScanBatchesContent(t *testing.T) {
	remotes := &RemotePool{Handovers: []uint32{5}, AddrBase: 10, AddrCount: 100}
	r := stats.NewRNG(24)
	got := ScanBatches(nil, time.Unix(0, 0), 99, 7, 1000, remotes, r)
	if len(got) != 1 {
		t.Fatalf("batches = %d", len(got))
	}
	b := got[0]
	if b.DstIP != 99 || b.EgressAS != 7 || b.IngressAS != 5 || b.Packets != 1000 {
		t.Fatalf("scan batch = %+v", b)
	}
	for i := 0; i < 100; i++ {
		src, _ := b.VaryPorts(r)
		if src < 1024 {
			t.Fatalf("scan source port %d privileged", src)
		}
	}
}
