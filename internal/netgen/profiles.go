package netgen

import (
	"math"
	"time"

	"repro/internal/fabric"
	"repro/internal/stats"
)

// Service is one transport-layer service endpoint (a listening port).
type Service struct {
	Proto      uint8
	Port       uint16
	PacketSize int
	Weight     float64
}

// CommonServices is the catalog of services remote hosts and detected
// servers offer; weights reflect rough traffic-mix popularity.
var CommonServices = []Service{
	{ProtoTCP, 443, 1200, 45},
	{ProtoTCP, 80, 1100, 25},
	{ProtoUDP, 443, 1250, 10}, // QUIC
	{ProtoUDP, 53, 300, 6},
	{ProtoTCP, 22, 500, 2},
	{ProtoTCP, 25, 700, 3},
	{ProtoTCP, 993, 800, 2},
	{ProtoUDP, 27015, 250, 4}, // game server
	{ProtoTCP, 8080, 1000, 3},
}

// RemotePool models the rest of the Internet as seen through the IXP: a
// block of remote addresses reachable via a set of member (handover) ASes.
type RemotePool struct {
	Handovers []uint32
	AddrBase  uint32
	AddrCount uint32
}

// Addr draws a random remote address.
func (p *RemotePool) Addr(r *stats.RNG) uint32 {
	if p.AddrCount == 0 {
		return p.AddrBase
	}
	return p.AddrBase + uint32(r.Int63n(int64(p.AddrCount)))
}

// Handover draws a random handover member.
func (p *RemotePool) Handover(r *stats.RNG) uint32 {
	return p.Handovers[r.Intn(len(p.Handovers))]
}

// ServerProfile is a host with stable listening ports: the legitimate-
// traffic signature the paper's §6 pipeline classifies as "server"
// (near-zero top-port variation, incoming port diversity concentrated on
// source ports).
type ServerProfile struct {
	// IP is the host address; MemberAS the IXP member announcing it.
	IP       uint32
	MemberAS uint32
	// Services are the listening ports, weight-split across the daily
	// volume. One to three entries is typical.
	Services []Service
	// DailyPackets is the mean incoming packet volume per active day;
	// outgoing volume matches (request/response symmetry).
	DailyPackets int64
}

// DayBatches appends the profile's batches for the active day starting at
// dayStart. Traffic spreads over the day via a small number of batches
// with long durations; the sampler thins them into realistic sparse
// samples.
func (s *ServerProfile) DayBatches(dst []fabric.Batch, dayStart time.Time, remotes *RemotePool, r *stats.RNG) []fabric.Batch {
	if len(s.Services) == 0 || s.DailyPackets <= 0 {
		return dst
	}
	weights := make([]float64, len(s.Services))
	for i, svc := range s.Services {
		weights[i] = svc.Weight
		if weights[i] <= 0 {
			weights[i] = 1
		}
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	day := 24 * time.Hour
	for i, svc := range s.Services {
		pkts := int64(float64(s.DailyPackets) * weights[i] / wsum)
		if pkts <= 0 {
			continue
		}
		svc := svc
		// Incoming: many clients, ephemeral source ports, service dst port.
		dst = append(dst, fabric.Batch{
			Time: dayStart, Duration: day,
			IngressAS: remotes.Handover(r), EgressAS: s.MemberAS,
			SrcIP: remotes.Addr(r), DstIP: s.IP,
			SrcPort: EphemeralPort(r), DstPort: svc.Port,
			Proto: svc.Proto, PacketSize: 400,
			Packets: pkts,
			VaryPorts: func(r *stats.RNG) (uint16, uint16) {
				return EphemeralPort(r), svc.Port
			},
			VarySrcIP: func(r *stats.RNG) uint32 { return remotes.Addr(r) },
		})
		// Outgoing: responses from the service port to ephemeral ports.
		dst = append(dst, fabric.Batch{
			Time: dayStart, Duration: day,
			IngressAS: s.MemberAS, EgressAS: remotes.Handover(r),
			SrcIP: s.IP, DstIP: remotes.Addr(r),
			SrcPort: svc.Port, DstPort: EphemeralPort(r),
			Proto: svc.Proto, PacketSize: svc.PacketSize,
			Packets: pkts,
			VaryPorts: func(r *stats.RNG) (uint16, uint16) {
				return svc.Port, EphemeralPort(r)
			},
		})
	}
	return dst
}

// ClientProfile is a host that initiates sessions toward remote services:
// ephemeral source ports outgoing, responses arriving on those ephemeral
// ports — so the daily "top port" of incoming traffic changes from day to
// day, the signature §6.2 uses to classify clients.
type ClientProfile struct {
	IP       uint32
	MemberAS uint32
	// SessionsPerDay is the mean number of distinct sessions per active
	// day; each session uses a fresh ephemeral port.
	SessionsPerDay int
	// DailyPackets is the mean per-direction daily packet volume.
	DailyPackets int64
	// Gaming biases remote services toward game/UDP endpoints, the
	// client population most often DDoSed (§6.2).
	Gaming bool
}

// gameServices are remote endpoints gaming clients talk to.
var gameServices = []Service{
	{ProtoUDP, 27015, 250, 5},
	{ProtoUDP, 3074, 250, 4}, // Xbox Live
	{ProtoUDP, 9308, 250, 2}, // PSN
	{ProtoTCP, 443, 1200, 2},
}

// DayBatches appends the client's batches for one active day.
func (c *ClientProfile) DayBatches(dst []fabric.Batch, dayStart time.Time, remotes *RemotePool, r *stats.RNG) []fabric.Batch {
	sessions := c.SessionsPerDay
	if sessions <= 0 || c.DailyPackets <= 0 {
		return dst
	}
	catalog := CommonServices
	if c.Gaming {
		catalog = gameServices
	}
	weights := make([]float64, len(catalog))
	for i, svc := range catalog {
		weights[i] = svc.Weight
	}
	perSession := c.DailyPackets / int64(sessions)
	if perSession <= 0 {
		perSession = 1
	}
	day := 24 * time.Hour
	for i := 0; i < sessions; i++ {
		svc := catalog[r.WeightedChoice(weights)]
		eph := EphemeralPort(r)
		remote := remotes.Addr(r)
		handover := remotes.Handover(r)
		start := dayStart.Add(time.Duration(r.Int63n(int64(day) * 3 / 4)))
		sdur := day / 8
		// Outgoing requests.
		dst = append(dst, fabric.Batch{
			Time: start, Duration: sdur,
			IngressAS: c.MemberAS, EgressAS: handover,
			SrcIP: c.IP, DstIP: remote,
			SrcPort: eph, DstPort: svc.Port,
			Proto: svc.Proto, PacketSize: 120,
			Packets: perSession,
		})
		// Incoming responses to the session's ephemeral port.
		dst = append(dst, fabric.Batch{
			Time: start, Duration: sdur,
			IngressAS: handover, EgressAS: c.MemberAS,
			SrcIP: remote, DstIP: c.IP,
			SrcPort: svc.Port, DstPort: eph,
			Proto: svc.Proto, PacketSize: svc.PacketSize,
			Packets: perSession,
		})
	}
	return dst
}

// ScanBatches appends Internet background-radiation traffic toward a host:
// low-rate TCP SYN probes to random ports from scattered sources. The
// paper names scans as an incoming-traffic bias for host classification.
func ScanBatches(dst []fabric.Batch, dayStart time.Time, hostIP, memberAS uint32,
	packets int64, remotes *RemotePool, r *stats.RNG) []fabric.Batch {
	if packets <= 0 {
		return dst
	}
	return append(dst, fabric.Batch{
		Time: dayStart, Duration: 24 * time.Hour,
		IngressAS: remotes.Handover(r), EgressAS: memberAS,
		SrcIP: remotes.Addr(r), DstIP: hostIP,
		Proto: ProtoTCP, PacketSize: 60,
		Packets: packets,
		VaryPorts: func(r *stats.RNG) (uint16, uint16) {
			return EphemeralPort(r), uint16(r.Intn(65536))
		},
		VarySrcIP: func(r *stats.RNG) uint32 { return remotes.Addr(r) },
	})
}

// Diurnal returns a traffic multiplier for the hour of day: a smooth
// day/night cycle peaking in the evening, averaging 1.0 across a day.
func Diurnal(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	// Minimum ~0.4 at 04:00, maximum ~1.6 at 20:00 (UTC+1-ish evening).
	phase := (h - 20) / 24 * 2 * math.Pi
	return 1 + 0.6*math.Cos(phase)
}
