package netgen

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/stats"
)

// Reflector is one amplifier host: its address, the AS that originates the
// address space, and the IXP member that hands its traffic into the fabric.
type Reflector struct {
	IP         uint32
	OriginAS   uint32
	HandoverAS uint32
}

// Vector generates the batches of one attack component for one time slot.
// pps is the packet rate allotted to this vector during the slot.
type Vector interface {
	// Batches appends this vector's packet batches for the slot
	// [start, start+dur) at rate pps toward (victimIP, victimAS).
	Batches(dst []fabric.Batch, start time.Time, dur time.Duration, pps float64,
		victimIP, victimAS uint32, r *stats.RNG) []fabric.Batch
}

// AmplificationVector is a UDP reflection/amplification attack using one
// service protocol and a pool of reflectors.
type AmplificationVector struct {
	Protocol   AmpProtocol
	Reflectors []Reflector

	// byHandover groups the pool for batch emission; built lazily.
	byHandover map[uint32][]uint32
	handovers  []uint32
	// weights skew the per-handover traffic split: the amplifier
	// populations behind different networks respond with very different
	// aggregate rates, so one or two handover members usually carry the
	// bulk of an attack. This per-attack skew is what spreads the
	// per-event drop rates across the whole 0..1 range (paper Fig 6).
	weights []float64
	wsum    float64
}

func (v *AmplificationVector) build(r *stats.RNG) {
	if v.byHandover != nil {
		return
	}
	v.byHandover = make(map[uint32][]uint32)
	for _, rf := range v.Reflectors {
		if _, seen := v.byHandover[rf.HandoverAS]; !seen {
			v.handovers = append(v.handovers, rf.HandoverAS)
		}
		v.byHandover[rf.HandoverAS] = append(v.byHandover[rf.HandoverAS], rf.IP)
	}
	v.weights = make([]float64, len(v.handovers))
	for i := range v.weights {
		v.weights[i] = r.Pareto(0.7, 1, 5000)
		v.wsum += v.weights[i]
	}
}

// Batches implements Vector. It emits one batch per handover AS, with the
// per-packet source address drawn from that handover's reflectors and the
// amplification service port as source port. Traffic splits across
// handover members with a heavy-tailed per-attack weighting.
func (v *AmplificationVector) Batches(dst []fabric.Batch, start time.Time, dur time.Duration,
	pps float64, victimIP, victimAS uint32, r *stats.RNG) []fabric.Batch {
	v.build(r)
	if len(v.handovers) == 0 || pps <= 0 {
		return dst
	}
	total := int64(pps * dur.Seconds())
	if total <= 0 {
		return dst
	}
	for i, h := range v.handovers {
		per := int64(float64(total) * v.weights[i] / v.wsum)
		if per == 0 {
			per = 1
		}
		pool := v.byHandover[h]
		dst = append(dst, fabric.Batch{
			Time: start, Duration: dur,
			IngressAS: h, EgressAS: victimAS,
			SrcIP: pool[0], DstIP: victimIP,
			SrcPort: v.Protocol.Port, Proto: ProtoUDP,
			PacketSize: v.Protocol.PacketSize,
			Packets:    per,
			VaryPorts: func(r *stats.RNG) (uint16, uint16) {
				return v.Protocol.Port, EphemeralPort(r)
			},
			// Reflected traffic keeps the service source port; only the
			// destination port varies. Source-port FlowSpec rules can
			// therefore be evaluated per batch.
			FixedSrcPort: true,
			VarySrcIP: func(r *stats.RNG) uint32 {
				return pool[r.Intn(len(pool))]
			},
		})
	}
	return dst
}

// SYNFloodVector is a direct spoofed TCP SYN flood against a small set of
// service ports, entering via a few transit members.
type SYNFloodVector struct {
	Handovers []uint32 // ingress members carrying the flood
	DstPorts  []uint16 // attacked service ports (e.g. 80, 443)
}

// Batches implements Vector.
func (v *SYNFloodVector) Batches(dst []fabric.Batch, start time.Time, dur time.Duration,
	pps float64, victimIP, victimAS uint32, r *stats.RNG) []fabric.Batch {
	if len(v.Handovers) == 0 || len(v.DstPorts) == 0 || pps <= 0 {
		return dst
	}
	total := int64(pps * dur.Seconds())
	if total <= 0 {
		return dst
	}
	per := total / int64(len(v.Handovers))
	if per == 0 {
		per = 1
	}
	ports := v.DstPorts
	for _, h := range v.Handovers {
		dst = append(dst, fabric.Batch{
			Time: start, Duration: dur,
			IngressAS: h, EgressAS: victimAS,
			SrcIP: 0, DstIP: victimIP,
			Proto:      ProtoTCP,
			PacketSize: 60, // SYN-sized
			Packets:    per,
			VaryPorts: func(r *stats.RNG) (uint16, uint16) {
				return EphemeralPort(r), ports[r.Intn(len(ports))]
			},
			// Spoofed sources: uniform over unicast space. These do not
			// resolve in the IP-to-AS table, exactly like real spoofed
			// traffic defeats attribution.
			VarySrcIP: func(r *stats.RNG) uint32 {
				return 0x01000000 + uint32(r.Int63n(0xdf000000-0x01000000))
			},
		})
	}
	return dst
}

// RandomPortUDPVector is a UDP flood with random source and destination
// ports — the attack class port-list filtering cannot mitigate, producing
// the residual ~10% in the paper's Fig 14.
type RandomPortUDPVector struct {
	Handovers []uint32
}

// Batches implements Vector.
func (v *RandomPortUDPVector) Batches(dst []fabric.Batch, start time.Time, dur time.Duration,
	pps float64, victimIP, victimAS uint32, r *stats.RNG) []fabric.Batch {
	if len(v.Handovers) == 0 || pps <= 0 {
		return dst
	}
	total := int64(pps * dur.Seconds())
	if total <= 0 {
		return dst
	}
	per := total / int64(len(v.Handovers))
	if per == 0 {
		per = 1
	}
	for _, h := range v.Handovers {
		dst = append(dst, fabric.Batch{
			Time: start, Duration: dur,
			IngressAS: h, EgressAS: victimAS,
			SrcIP: 0, DstIP: victimIP,
			Proto:      ProtoUDP,
			PacketSize: 512,
			Packets:    per,
			VaryPorts: func(r *stats.RNG) (uint16, uint16) {
				// Avoid known amplification source ports so the event is
				// genuinely unfilterable by the port list.
				for {
					src := EphemeralPort(r)
					if !ampPortSet[src] {
						return src, uint16(r.Intn(65536))
					}
				}
			},
			VarySrcIP: func(r *stats.RNG) uint32 {
				return 0x01000000 + uint32(r.Int63n(0xdf000000-0x01000000))
			},
		})
	}
	return dst
}

// RotatingPortVector walks the destination port space sequentially —
// "increasing port numbers" (§5.5). Source port is a fixed amplification
// port is NOT used; this is a direct flood.
type RotatingPortVector struct {
	Handovers []uint32
	next      uint32
}

// Batches implements Vector.
func (v *RotatingPortVector) Batches(dst []fabric.Batch, start time.Time, dur time.Duration,
	pps float64, victimIP, victimAS uint32, r *stats.RNG) []fabric.Batch {
	if len(v.Handovers) == 0 || pps <= 0 {
		return dst
	}
	total := int64(pps * dur.Seconds())
	if total <= 0 {
		return dst
	}
	per := total / int64(len(v.Handovers))
	if per == 0 {
		per = 1
	}
	for _, h := range v.Handovers {
		dst = append(dst, fabric.Batch{
			Time: start, Duration: dur,
			IngressAS: h, EgressAS: victimAS,
			SrcIP: 0, DstIP: victimIP,
			Proto:      ProtoUDP,
			PacketSize: 512,
			Packets:    per,
			VaryPorts: func(r *stats.RNG) (uint16, uint16) {
				v.next++
				return EphemeralPort(r), uint16(v.next)
			},
			VarySrcIP: func(r *stats.RNG) uint32 {
				return 0x01000000 + uint32(r.Int63n(0xdf000000-0x01000000))
			},
		})
	}
	return dst
}
