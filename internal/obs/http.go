package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"time"
)

// DebugHandler returns the HTTP handler behind StartDebugServer: GET
// /metrics renders the registry's current snapshot as stable JSON (or as
// a text table with ?format=text), and the standard net/http/pprof
// endpoints live under /debug/pprof/. Exposed separately so callers can
// mount the routes on their own server (and tests can exercise them with
// httptest).
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
	// net/http/pprof registers on http.DefaultServeMux.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	return mux
}

// StartDebugServer serves DebugHandler(reg) — /metrics and /debug/pprof/
// — on addr in a background goroutine. It returns once the listener is
// bound, so a caller failing to bind learns about it immediately rather
// than via a lost goroutine error.
func StartDebugServer(addr string, reg *Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: binding debug server: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return nil
}
