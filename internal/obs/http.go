package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"time"
)

// StartDebugServer serves the registry and the Go runtime profiles on
// addr in a background goroutine: GET /metrics renders the current
// snapshot as stable JSON (or as a text table with ?format=text), and the
// standard net/http/pprof endpoints live under /debug/pprof/. It returns
// once the listener is bound, so a caller failing to bind learns about it
// immediately rather than via a lost goroutine error.
func StartDebugServer(addr string, reg *Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: binding debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
	// net/http/pprof registers on http.DefaultServeMux.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return nil
}
