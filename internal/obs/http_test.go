package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugHandlerRoutes pins the debug server's mount paths: the
// metrics snapshot lives at /metrics (JSON by default, text table with
// ?format=text) and the runtime profiles under /debug/pprof/ — both
// must answer 200. CHANGES.md and the -pprof flag docs reference these
// exact paths.
func TestDebugHandlerRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.requests").Add(3)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	cases := []struct {
		path        string
		contentType string
	}{
		{"/metrics", "application/json"},
		{"/metrics?format=text", "text/plain; charset=utf-8"},
		{"/debug/pprof/", "text/html; charset=utf-8"},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatalf("GET %s: %v", c.path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != c.contentType {
			t.Errorf("GET %s: Content-Type %q, want %q", c.path, got, c.contentType)
		}
		resp.Body.Close()
	}

	// The JSON body must be a decodable snapshot carrying the counter.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if got := snap.Counter("test.requests"); got != 3 {
		t.Errorf("test.requests = %d via /metrics, want 3", got)
	}
}

// TestStartDebugServer covers the listener path: a bad address fails
// immediately, a good one serves the same routes.
func TestStartDebugServer(t *testing.T) {
	if err := StartDebugServer("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Fatal("StartDebugServer accepted an unbindable address")
	} else if !strings.Contains(err.Error(), "binding debug server") {
		t.Errorf("unexpected error: %v", err)
	}
}
