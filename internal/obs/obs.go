// Package obs is the repository's observability layer: a small,
// dependency-free metrics subsystem (atomic counters, gauges, fixed-bucket
// histograms, per-stage span timers) plus a registry that renders the
// current state as a human-readable text table or as stable JSON.
//
// The paper's headline numbers all come from counting what each processing
// stage saw and dropped, so every hot path — route server import, fabric
// forwarding, IPFIX sampling, the two analysis passes — maintains obs
// counters that a snapshot can cross-check against the rendered report
// (see DESIGN.md, "Observability"). Counters and gauges are single atomic
// words: incrementing one costs a few nanoseconds and is safe from any
// goroutine, so instrumentation stays on even in the sharded parallel
// pipeline.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; do not copy a Counter after first use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is a programming error and ignored: counters
// only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up and down. The
// zero value is ready to use; do not copy a Gauge after first use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds; values above the last bound land in an implicit overflow
// bucket. Construct with NewHistogram (or Registry.Histogram); the zero
// value observes into the overflow bucket only.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// Bounds are copied; a value v is counted in the first bucket with
// v <= bound.
func NewHistogram(bounds ...int64) *Histogram {
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe counts one observation of v.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if len(h.buckets) == 0 {
		// Zero-value histogram: nothing to index; count and sum only.
		h.count.Add(1)
		h.sum.Add(v)
		return
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the bucket upper bounds and the per-bucket counts (the
// final count is the overflow bucket, bound math.MaxInt64).
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.MaxInt64)
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	if len(counts) == 0 {
		counts = []int64{h.count.Load()}
	}
	return bounds, counts
}

// Timer measures spans of a processing stage: the number of spans, total,
// minimum and maximum duration. The zero value is ready to use; do not
// copy a Timer after first use.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max   atomic.Int64 // nanoseconds
}

// Span is an in-flight timer span started by Timer.Start.
type Span struct {
	t     *Timer
	start time.Time
}

// Start opens a span; call End (usually deferred) to record it.
func (t *Timer) Start() Span { return Span{t: t, start: time.Now()} }

// End records the span's duration and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.t.Observe(d)
	return d
}

// Observe records one span of duration d.
func (t *Timer) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.total.Add(ns)
	// min uses 0 as "unset"; a genuine 0ns span leaves it at 0 either way.
	for {
		cur := t.min.Load()
		if cur != 0 && ns >= cur {
			break
		}
		if t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if ns <= cur {
			break
		}
		if t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// CountSpans returns the number of recorded spans.
func (t *Timer) CountSpans() int64 { return t.count.Load() }

// Total returns the summed duration of all spans.
func (t *Timer) Total() time.Duration { return time.Duration(t.total.Load()) }

// Min returns the shortest recorded span (0 when none).
func (t *Timer) Min() time.Duration { return time.Duration(t.min.Load()) }

// Max returns the longest recorded span (0 when none).
func (t *Timer) Max() time.Duration { return time.Duration(t.max.Load()) }
