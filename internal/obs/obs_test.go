package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per || g.Value() != workers*per {
		t.Fatalf("counter=%d gauge=%d, want %d", c.Value(), g.Value(), workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{1, 10, 11, 100, 5000, -7} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	wantBounds := []int64{10, 100, 1000, math.MaxInt64}
	wantCounts := []int64{3, 2, 0, 1} // -7,1,10 | 11,100 | — | 5000
	if len(bounds) != len(wantBounds) || len(counts) != len(wantCounts) {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || counts[i] != wantCounts[i] {
			t.Fatalf("bucket %d: bound=%d count=%d, want bound=%d count=%d",
				i, bounds[i], counts[i], wantBounds[i], wantCounts[i])
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000-7 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestTimerSpans(t *testing.T) {
	var tm Timer
	tm.Observe(5 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	tm.Observe(9 * time.Millisecond)
	if tm.CountSpans() != 3 {
		t.Fatalf("spans = %d, want 3", tm.CountSpans())
	}
	if tm.Total() != 16*time.Millisecond {
		t.Fatalf("total = %v", tm.Total())
	}
	if tm.Min() != 2*time.Millisecond || tm.Max() != 9*time.Millisecond {
		t.Fatalf("min=%v max=%v", tm.Min(), tm.Max())
	}

	var tm2 Timer
	sp := tm2.Start()
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if tm2.CountSpans() != 1 || tm2.Total() <= 0 {
		t.Fatalf("spans=%d total=%v", tm2.CountSpans(), tm2.Total())
	}
}

func TestTimerConcurrentMinMax(t *testing.T) {
	var tm Timer
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm.Observe(time.Duration(i) * time.Microsecond)
		}(i)
	}
	wg.Wait()
	if tm.Min() != time.Microsecond || tm.Max() != 64*time.Microsecond {
		t.Fatalf("min=%v max=%v, want 1µs/64µs", tm.Min(), tm.Max())
	}
}

func TestRegistrySnapshotStableJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("z.gauge").Set(-4)
	reg.GaugeFunc("y.fn", func() int64 { return 99 })
	reg.Histogram("h.lat", 10, 100).Observe(50)
	reg.Timer("t.stage").Observe(3 * time.Millisecond)

	snap := reg.Snapshot()
	if snap.Counter("a.count") != 1 || snap.Counter("b.count") != 2 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Gauge("z.gauge") != -4 || snap.Gauge("y.fn") != 99 {
		t.Fatalf("gauges: %+v", snap.Gauges)
	}
	if !snap.Has("h.lat") || !snap.Has("t.stage") || snap.Has("nope") {
		t.Fatal("Has misreports membership")
	}

	var buf1, buf2 bytes.Buffer
	if err := snap.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot JSON is not stable:\n%s\nvs\n%s", buf1.Bytes(), buf2.Bytes())
	}
	// The JSON must parse back into an equivalent snapshot.
	var back Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("b.count") != 2 || back.Gauges["y.fn"] != 99 {
		t.Fatalf("round-tripped snapshot: %+v", back)
	}
	// Counter names serialize in sorted order (stability is key order).
	ai := bytes.Index(buf1.Bytes(), []byte(`"a.count"`))
	bi := bytes.Index(buf1.Bytes(), []byte(`"b.count"`))
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("counter keys not sorted: a@%d b@%d", ai, bi)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fabric.packets_in").Add(1000)
	reg.Gauge("routeserver.rib_routes").Set(7)
	reg.Histogram("pipeline.batch", 8).Observe(3)
	reg.Timer("pipeline.pass1").Observe(time.Second)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter", "fabric.packets_in", "1000",
		"gauge", "routeserver.rib_routes",
		"histogram", "le+inf",
		"timer", "pipeline.pass1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup")
}
