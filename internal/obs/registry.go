package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of metrics. Metric names are dotted
// paths ("routeserver.import.accepted"); a name identifies exactly one
// metric — registering the same name twice panics, as that is always a
// wiring bug. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindTimer
)

type entry struct {
	name    string
	kind    kind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
	timer   *Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", e.name))
	}
	r.entries[e.name] = e
}

// Counter creates and registers a counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, c)
	return c
}

// RegisterCounter registers an existing counter (for instrumented
// subsystems that allocate their counters up front).
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.add(&entry{name: name, kind: kindCounter, counter: c})
}

// Gauge creates and registers a gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, g)
	return g
}

// RegisterGauge registers an existing gauge.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.add(&entry{name: name, kind: kindGauge, gauge: g})
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. fn must be safe to call whenever Snapshot is: the convention in
// this repository is that snapshots are taken after the instrumented run
// completes, so fn may read plain (non-atomic) state of a finished stage.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.add(&entry{name: name, kind: kindGaugeFunc, gaugeFn: fn})
}

// Histogram creates and registers a fixed-bucket histogram under name.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	h := NewHistogram(bounds...)
	r.add(&entry{name: name, kind: kindHistogram, hist: h})
	return h
}

// Timer creates and registers a span timer under name.
func (r *Registry) Timer(name string) *Timer {
	t := &Timer{}
	r.RegisterTimer(name, t)
	return t
}

// RegisterTimer registers an existing timer.
func (r *Registry) RegisterTimer(name string, t *Timer) {
	r.add(&entry{name: name, kind: kindTimer, timer: t})
}

// HistogramValue is the snapshot of one histogram.
type HistogramValue struct {
	// Bounds are the bucket upper bounds; the final bound is
	// math.MaxInt64 (rendered as "+inf").
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// TimerValue is the snapshot of one span timer.
type TimerValue struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// Snapshot is a point-in-time copy of a registry's state, suitable for
// cross-checking against report numbers and for serialization. Counter
// and gauge values live in flat name-keyed maps, so JSON key order (and
// therefore the byte output) is stable: encoding/json sorts map keys.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
	Timers     map[string]TimerValue     `json:"timers,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramValue{},
		Timers:     map[string]TimerValue{},
	}
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.counter.Value()
		case kindGauge:
			s.Gauges[e.name] = e.gauge.Value()
		case kindGaugeFunc:
			s.Gauges[e.name] = e.gaugeFn()
		case kindHistogram:
			bounds, counts := e.hist.Buckets()
			s.Histograms[e.name] = HistogramValue{
				Bounds: bounds, Counts: counts,
				Count: e.hist.Count(), Sum: e.hist.Sum(),
			}
		case kindTimer:
			s.Timers[e.name] = TimerValue{
				Count:   e.timer.CountSpans(),
				TotalNS: int64(e.timer.Total()),
				MinNS:   int64(e.timer.Min()),
				MaxNS:   int64(e.timer.Max()),
			}
		}
	}
	return s
}

// Counter returns the snapshotted counter value (0 when absent; use Has
// to distinguish).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted gauge value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Has reports whether the snapshot contains a metric of any kind under
// name.
func (s Snapshot) Has(name string) bool {
	if _, ok := s.Counters[name]; ok {
		return true
	}
	if _, ok := s.Gauges[name]; ok {
		return true
	}
	if _, ok := s.Histograms[name]; ok {
		return true
	}
	_, ok := s.Timers[name]
	return ok
}

// WriteJSON renders the snapshot as indented JSON with a trailing
// newline. The encoding is stable: map keys serialize in sorted order, so
// two snapshots with equal values produce identical bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteText renders the snapshot as a human-readable table, one metric
// per line, grouped by kind and sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	counters := sortedKeys(s.Counters)
	gauges := sortedKeys(s.Gauges)
	hists := sortedKeys(s.Histograms)
	timers := sortedKeys(s.Timers)
	width := 0
	for _, group := range [][]string{counters, gauges, hists, timers} {
		for _, n := range group {
			if len(n) > width {
				width = len(n)
			}
		}
	}

	for _, n := range counters {
		if _, err := fmt.Fprintf(w, "counter    %-*s %d\n", width, n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range gauges {
		if _, err := fmt.Fprintf(w, "gauge      %-*s %d\n", width, n, s.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range hists {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "histogram  %-*s count=%d sum=%d", width, n, h.Count, h.Sum); err != nil {
			return err
		}
		for i, bound := range h.Bounds {
			label := "+inf"
			if bound != math.MaxInt64 {
				label = fmt.Sprintf("%d", bound)
			}
			if i < len(h.Counts) {
				if _, err := fmt.Fprintf(w, " le%s=%d", label, h.Counts[i]); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range timers {
		t := s.Timers[n]
		if _, err := fmt.Fprintf(w, "timer      %-*s count=%d total=%v min=%v max=%v\n",
			width, n, t.Count,
			time.Duration(t.TotalNS).Round(time.Microsecond),
			time.Duration(t.MinNS).Round(time.Microsecond),
			time.Duration(t.MaxNS).Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
