// Package peeringdb provides a PeeringDB-like registry of autonomous
// systems: organization type and scope per ASN. The paper consults
// PeeringDB to characterize the ASes behind blackholed hosts (Table 4) and
// the top traffic sources toward /32 blackholes (Fig 8).
//
// The registry is synthetic — the real PeeringDB is an online service —
// but carries the same schema and the same coarse marginals, which is all
// the analysis consumes. It serializes to JSON so that simulator output
// directories are self-contained.
package peeringdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// OrgType is the PeeringDB "info_type" organization classification.
type OrgType string

// Organization types as used by the paper's Table 4 and Fig 8.
const (
	TypeNSP        OrgType = "NSP"
	TypeContent    OrgType = "Content"
	TypeCableDSL   OrgType = "Cable/DSL/ISP"
	TypeEnterprise OrgType = "Enterprise"
	TypeEducation  OrgType = "Educational/Research"
	TypeNonProfit  OrgType = "Non-Profit"
	TypeUnknown    OrgType = "Unknown" // AS not present in PeeringDB
)

// Scope is the PeeringDB geographic scope of a network.
type Scope string

// Geographic scopes.
const (
	ScopeGlobal   Scope = "Global"
	ScopeRegional Scope = "Regional"
	ScopeEurope   Scope = "Europe"
	ScopeLocal    Scope = "Local"
	ScopeUnknown  Scope = "Unknown"
)

// Network is one registry entry.
type Network struct {
	ASN  uint32  `json:"asn"`
	Name string  `json:"name"`
	Type OrgType `json:"type"`
	Scp  Scope   `json:"scope"`
}

// Registry maps ASNs to their metadata. The zero value is empty and
// usable; lookups of unregistered ASNs return TypeUnknown/ScopeUnknown,
// mirroring how real analyses treat ASes absent from PeeringDB.
type Registry struct {
	networks map[uint32]Network
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{networks: make(map[uint32]Network)}
}

// Add registers or replaces an entry.
func (r *Registry) Add(n Network) {
	if r.networks == nil {
		r.networks = make(map[uint32]Network)
	}
	r.networks[n.ASN] = n
}

// Lookup returns the entry for asn. Unregistered ASNs yield a synthetic
// entry with TypeUnknown and ok == false.
func (r *Registry) Lookup(asn uint32) (Network, bool) {
	if n, ok := r.networks[asn]; ok {
		return n, true
	}
	return Network{ASN: asn, Type: TypeUnknown, Scp: ScopeUnknown}, false
}

// TypeOf returns the organization type for asn (TypeUnknown if absent).
func (r *Registry) TypeOf(asn uint32) OrgType {
	n, _ := r.Lookup(asn)
	return n.Type
}

// Len returns the number of registered networks.
func (r *Registry) Len() int { return len(r.networks) }

// All returns all entries sorted by ASN.
func (r *Registry) All() []Network {
	out := make([]Network, 0, len(r.networks))
	for _, n := range r.networks {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// TypeDistribution counts entries of asns by organization type. ASNs not
// in the registry count as TypeUnknown. Duplicate ASNs count repeatedly:
// the callers tally host or event populations, not unique networks.
func (r *Registry) TypeDistribution(asns []uint32) map[OrgType]int {
	dist := make(map[OrgType]int)
	for _, asn := range asns {
		dist[r.TypeOf(asn)]++
	}
	return dist
}

// WriteJSON serializes the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.All())
}

// ReadJSON parses a registry written by WriteJSON.
func ReadJSON(rd io.Reader) (*Registry, error) {
	var entries []Network
	if err := json.NewDecoder(rd).Decode(&entries); err != nil {
		return nil, fmt.Errorf("peeringdb: %w", err)
	}
	r := New()
	for _, n := range entries {
		r.Add(n)
	}
	return r, nil
}
