package peeringdb

import (
	"bytes"
	"testing"
)

func TestLookupRegisteredAndUnknown(t *testing.T) {
	r := New()
	r.Add(Network{ASN: 64500, Name: "ExampleNet", Type: TypeNSP, Scp: ScopeGlobal})

	n, ok := r.Lookup(64500)
	if !ok || n.Type != TypeNSP || n.Name != "ExampleNet" {
		t.Fatalf("Lookup registered = %+v, %v", n, ok)
	}
	n, ok = r.Lookup(1)
	if ok || n.Type != TypeUnknown || n.Scp != ScopeUnknown {
		t.Fatalf("Lookup unknown = %+v, %v", n, ok)
	}
	if r.TypeOf(1) != TypeUnknown {
		t.Fatal("TypeOf unknown != Unknown")
	}
}

func TestZeroValueRegistryUsable(t *testing.T) {
	var r Registry
	if _, ok := r.Lookup(5); ok {
		t.Fatal("zero registry claims to know AS 5")
	}
	r.Add(Network{ASN: 5, Type: TypeContent})
	if r.TypeOf(5) != TypeContent {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddReplaces(t *testing.T) {
	r := New()
	r.Add(Network{ASN: 10, Type: TypeContent})
	r.Add(Network{ASN: 10, Type: TypeNSP})
	if r.Len() != 1 || r.TypeOf(10) != TypeNSP {
		t.Fatalf("replace failed: len=%d type=%s", r.Len(), r.TypeOf(10))
	}
}

func TestTypeDistribution(t *testing.T) {
	r := New()
	r.Add(Network{ASN: 1, Type: TypeCableDSL})
	r.Add(Network{ASN: 2, Type: TypeCableDSL})
	r.Add(Network{ASN: 3, Type: TypeContent})
	dist := r.TypeDistribution([]uint32{1, 2, 3, 1, 999})
	if dist[TypeCableDSL] != 3 {
		t.Fatalf("Cable/DSL count = %d, want 3 (duplicates counted)", dist[TypeCableDSL])
	}
	if dist[TypeContent] != 1 || dist[TypeUnknown] != 1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestAllSorted(t *testing.T) {
	r := New()
	for _, asn := range []uint32{30, 10, 20} {
		r.Add(Network{ASN: asn})
	}
	all := r.All()
	if len(all) != 3 || all[0].ASN != 10 || all[2].ASN != 30 {
		t.Fatalf("All = %v", all)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add(Network{ASN: 64500, Name: "A", Type: TypeNSP, Scp: ScopeGlobal})
	r.Add(Network{ASN: 64501, Name: "B", Type: TypeCableDSL, Scp: ScopeLocal})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip lost entries: %d", got.Len())
	}
	n, _ := got.Lookup(64501)
	if n.Type != TypeCableDSL || n.Scp != ScopeLocal || n.Name != "B" {
		t.Fatalf("entry mismatch: %+v", n)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
