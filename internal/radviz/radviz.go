// Package radviz implements the RadViz multidimensional projection
// (Hoffman et al., 1999) used by the paper's Fig 16: N feature anchors
// are spaced uniformly on the unit circle and each data point is placed
// at the feature-weighted average of the anchor positions — points land
// near the anchors whose features dominate them.
package radviz

import "math"

// Point is a projected 2D coordinate inside the unit circle.
type Point struct {
	X, Y float64
}

// Projection holds precomputed anchor positions for N features.
type Projection struct {
	anchors []Point
}

// New creates a projection for n >= 2 features. Anchor 0 sits at angle 0
// (positive X axis); anchors proceed counter-clockwise.
func New(n int) *Projection {
	if n < 2 {
		panic("radviz: need at least 2 anchors")
	}
	p := &Projection{anchors: make([]Point, n)}
	for i := range p.anchors {
		theta := 2 * math.Pi * float64(i) / float64(n)
		p.anchors[i] = Point{X: math.Cos(theta), Y: math.Sin(theta)}
	}
	return p
}

// Anchors returns the anchor positions (shared; do not modify).
func (p *Projection) Anchors() []Point { return p.anchors }

// Project maps a feature vector to its RadViz position. Feature values
// must be non-negative; the projection is invariant under uniform scaling
// of the vector. A zero vector lands at the origin.
func (p *Projection) Project(features []float64) Point {
	if len(features) != len(p.anchors) {
		panic("radviz: feature count does not match anchor count")
	}
	var sum float64
	for _, f := range features {
		if f > 0 {
			sum += f
		}
	}
	if sum == 0 {
		return Point{}
	}
	var out Point
	for i, f := range features {
		if f <= 0 {
			continue
		}
		w := f / sum
		out.X += w * p.anchors[i].X
		out.Y += w * p.anchors[i].Y
	}
	return out
}

// AngleOf returns the polar angle of a projected point in radians in
// [0, 2*pi); useful to test which anchors dominate a point.
func AngleOf(pt Point) float64 {
	a := math.Atan2(pt.Y, pt.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// Radius returns the distance from the origin (0 = perfectly balanced
// features, 1 = a single dominating feature).
func Radius(pt Point) float64 { return math.Hypot(pt.X, pt.Y) }
