package radviz

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAnchorsOnUnitCircle(t *testing.T) {
	p := New(4)
	anchors := p.Anchors()
	if len(anchors) != 4 {
		t.Fatalf("anchors = %d", len(anchors))
	}
	for i, a := range anchors {
		if math.Abs(Radius(a)-1) > 1e-12 {
			t.Fatalf("anchor %d radius = %v", i, Radius(a))
		}
	}
	// Anchor 0 at angle 0, anchor 1 at 90 degrees.
	if math.Abs(anchors[0].X-1) > 1e-12 || math.Abs(anchors[1].Y-1) > 1e-12 {
		t.Fatalf("anchor positions: %v", anchors)
	}
}

func TestSingleFeaturePullsToAnchor(t *testing.T) {
	p := New(4)
	pt := p.Project([]float64{0, 5, 0, 0})
	if math.Abs(pt.X) > 1e-12 || math.Abs(pt.Y-1) > 1e-12 {
		t.Fatalf("pure feature 1 point = %+v", pt)
	}
}

func TestBalancedFeaturesAtOrigin(t *testing.T) {
	p := New(4)
	pt := p.Project([]float64{3, 3, 3, 3})
	if Radius(pt) > 1e-12 {
		t.Fatalf("balanced point = %+v", pt)
	}
}

func TestZeroVectorAtOrigin(t *testing.T) {
	p := New(3)
	pt := p.Project([]float64{0, 0, 0})
	if pt.X != 0 || pt.Y != 0 {
		t.Fatalf("zero vector point = %+v", pt)
	}
}

func TestScaleInvariance(t *testing.T) {
	f := func(a, b, c float64) bool {
		fa, fb, fc := math.Abs(a), math.Abs(b), math.Abs(c)
		if fa+fb+fc == 0 || math.IsNaN(fa+fb+fc) || fa+fb+fc > 1e300 {
			return true // scaling by 7 would overflow; not a projection property
		}
		p := New(3)
		p1 := p.Project([]float64{fa, fb, fc})
		p2 := p.Project([]float64{fa * 7, fb * 7, fc * 7})
		return math.Abs(p1.X-p2.X) < 1e-9 && math.Abs(p1.Y-p2.Y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPointsStayInUnitDisk(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		feats := []float64{math.Abs(a), math.Abs(b), math.Abs(c), math.Abs(d)}
		for _, v := range feats {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return true
			}
		}
		p := New(4)
		return Radius(p.Project(feats)) <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAngleOf(t *testing.T) {
	if a := AngleOf(Point{X: 0, Y: 1}); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Fatalf("angle = %v", a)
	}
	if a := AngleOf(Point{X: 0, Y: -1}); math.Abs(a-3*math.Pi/2) > 1e-12 {
		t.Fatalf("angle = %v", a)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New(1)", func() { New(1) })
	mustPanic("length mismatch", func() { New(3).Project([]float64{1, 2}) })
}
