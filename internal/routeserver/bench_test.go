package routeserver

import (
	"testing"
	"time"

	"repro/internal/bgp"
)

// BenchmarkProcessAnnounceWithdraw measures one RTBH on-off cycle at the
// route server with 200 peers.
func BenchmarkProcessAnnounceWithdraw(b *testing.B) {
	s := New(64500, 1)
	for i := uint32(0); i < 200; i++ {
		pol := DefaultPolicy()
		if i%3 == 0 {
			pol = BlackholeReadyPolicy()
		}
		if err := s.AddPeer(Peer{ASN: 1000 + i, IP: i, Policy: pol}); err != nil {
			b.Fatal(err)
		}
	}
	ann := &bgp.Update{
		Attrs: bgp.PathAttrs{
			ASPath: []uint32{1000}, NextHop: 1,
			Communities: bgp.Communities{bgp.Blackhole},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
	}
	wd := &bgp.Update{Withdrawn: ann.NLRI}
	ts := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Process(ts, 1000, ann); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Process(ts, 1000, wd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDropFraction measures the fabric's forwarding-decision lookup.
func BenchmarkDropFraction(b *testing.B) {
	s := New(64500, 1)
	s.AddPeer(Peer{ASN: 1000, Policy: BlackholeReadyPolicy()})
	s.AddPeer(Peer{ASN: 1001, Policy: BlackholeReadyPolicy()})
	ann := &bgp.Update{
		Attrs: bgp.PathAttrs{
			ASPath: []uint32{1000}, NextHop: 1,
			Communities: bgp.Communities{bgp.Blackhole},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.5/32")},
	}
	if _, err := s.Process(time.Unix(0, 0), 1000, ann); err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += s.DropFraction(1001, 0xcb007105)
	}
	_ = sink
}

// BenchmarkMatchFlowSpec measures the per-packet fine-grained matching
// cost with a realistic installed rule count.
func BenchmarkMatchFlowSpec(b *testing.B) {
	s := New(64500, 1)
	s.AddPeer(Peer{ASN: 1000, Policy: DefaultPolicy()})
	s.AddPeer(Peer{ASN: 1001, Policy: Policy{Standard: AcceptFull, FlowSpec: AcceptFull}})
	for i := 0; i < 50; i++ {
		err := s.ProcessFlowSpec(time.Unix(0, 0), 1000, &bgp.FlowSpecUpdate{
			Announced: []*bgp.FlowRule{{
				Dst:      bgp.MakePrefix(0xcb007100+uint32(i), 32),
				HasDst:   true,
				Protos:   []uint8{17},
				SrcPorts: []uint16{123, 389},
			}},
			ExtComms: []bgp.ExtCommunity{bgp.TrafficRateDiscard},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if s.MatchFlowSpec(1001, 0xcb007100+uint32(i%64), 17, 123, 40000) {
			hits++
		}
	}
	_ = hits
}
