package routeserver

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bgp"
)

// FlowSpec support: the fine-grained alternative to RTBH that the paper
// evaluates the potential of (§5.5) and names among the advanced
// mitigation options (§1). A member announces discard rules (destination
// prefix + protocol/port matches with the traffic-rate-0 action); peers
// whose policy enables FlowSpec install them and drop only matching
// packets, leaving the victim's legitimate traffic untouched.
//
// Validation follows RFC 8955 §6: a rule's destination must lie within
// the announcer's address space. The simulator stands in for the IRR/RPKI
// lookup with Peer.Space, the member's registered originated prefixes; a
// peer with no registered space is exempt (the route server cannot
// validate what nobody registered), which also keeps hand-built test
// servers permissive.
//
// Adoption mirrors reality: Policy.FlowSpec defaults to AcceptNone, so a
// deployment must opt peers in explicitly.

// fsKey identifies an installed rule by origin and its canonical wire
// encoding (two semantically equal rules encode identically).
type fsKey struct {
	origin uint32
	wire   string
}

// fsRoute is an installed FlowSpec discard rule.
type fsRoute struct {
	origin   uint32
	rule     *bgp.FlowRule
	wire     string
	accepted map[uint32]bool
}

// fsEntry is one rule in a peer's installed list, ordered by precedence.
type fsEntry struct {
	rule *bgp.FlowRule
	wire string
}

// fsState lazily extends the Server with FlowSpec tables.
type fsState struct {
	rules map[fsKey]*fsRoute
	// perPeer holds each member's accepted rules for the fabric's
	// per-packet matching, in precedence order (see fsLess).
	perPeer map[uint32][]fsEntry
	// perOrigin holds each member's own announced rules, same order. The
	// route server never reflects a rule back to its originator, but the
	// originator's edge routers filter with the rule they authored — the
	// fabric consults this list for the egress side of a batch.
	perOrigin map[uint32][]fsEntry
}

func (s *Server) fs() *fsState {
	if s.flowspec == nil {
		s.flowspec = &fsState{
			rules:     make(map[fsKey]*fsRoute),
			perPeer:   make(map[uint32][]fsEntry),
			perOrigin: make(map[uint32][]fsEntry),
		}
	}
	return s.flowspec
}

// fsLess orders two installed rules by match precedence: the more
// specific destination wins, ties broken by the canonical wire encoding.
// This is a deterministic stand-in for the RFC 8955 §5.1 ordering that is
// independent of announcement order.
func fsLess(a, b fsEntry) bool {
	if a.rule.Dst.Len != b.rule.Dst.Len {
		return a.rule.Dst.Len > b.rule.Dst.Len
	}
	return a.wire < b.wire
}

// ProcessFlowSpec handles a FlowSpec UPDATE from peerAS: withdrawals
// first, then announcements. Announced discard rules must carry the
// traffic-rate-0 action, a destination prefix, and — when the peer has
// registered address space — a destination inside that space.
func (s *Server) ProcessFlowSpec(ts time.Time, peerAS uint32, upd *bgp.FlowSpecUpdate) error {
	ps, ok := s.peers[peerAS]
	if !ok {
		s.metrics.RejectedUnknownPeer.Inc()
		return fmt.Errorf("routeserver: flowspec update from unknown peer AS%d", peerAS)
	}
	s.msgsProcessed++
	if s.collector != nil {
		raw, err := bgp.EncodeFlowSpecUpdate(upd)
		if err != nil {
			return fmt.Errorf("routeserver: archiving flowspec from AS%d: %w", peerAS, err)
		}
		s.collector(ts, peerAS, ps.peer.IP, raw)
	}
	return s.processFlowSpec(peerAS, upd)
}

// processFlowSpec applies a FlowSpec update that has already been
// archived and attributed to a known peer (both ProcessFlowSpec and the
// Process piggyback path land here).
func (s *Server) processFlowSpec(peerAS uint32, upd *bgp.FlowSpecUpdate) error {
	s.metrics.FlowSpecUpdates.Inc()
	fs := s.fs()
	for _, r := range upd.Withdrawn {
		s.withdrawFlowSpec(peerAS, r)
	}
	if len(upd.Announced) == 0 {
		return nil
	}
	if !upd.Discards() {
		s.metrics.FlowSpecRejectedAction.Inc()
		return fmt.Errorf("routeserver: AS%d announced flowspec without discard action", peerAS)
	}
	space := s.peers[peerAS].peer.Space
	for _, r := range upd.Announced {
		if !r.HasDst {
			s.metrics.FlowSpecRejectedNoDst.Inc()
			return fmt.Errorf("routeserver: AS%d announced flowspec rule without destination prefix", peerAS)
		}
		if !originatorOwns(space, r.Dst) {
			s.metrics.FlowSpecRejectedOrigin.Inc()
			return fmt.Errorf("routeserver: AS%d announced flowspec for %v outside its registered space", peerAS, r.Dst)
		}
		key, err := flowKey(peerAS, r)
		if err != nil {
			return err
		}
		s.metrics.FlowSpecAnnounced.Inc()
		if old, exists := fs.rules[key]; exists {
			s.metrics.FlowSpecReannouncements.Inc()
			s.releaseFlowSpec(old)
		}
		rt := &fsRoute{origin: peerAS, rule: r, wire: key.wire, accepted: make(map[uint32]bool)}
		for _, target := range s.peerOrder {
			if target == peerAS {
				continue
			}
			if s.peers[target].peer.Policy.FlowSpec == AcceptFull {
				s.metrics.FlowSpecImportAccepted.Inc()
				rt.accepted[target] = true
				fs.installEntry(fs.perPeer, target, fsEntry{rule: r, wire: key.wire})
			} else {
				s.metrics.FlowSpecImportRejected.Inc()
			}
		}
		fs.installEntry(fs.perOrigin, peerAS, fsEntry{rule: r, wire: key.wire})
		fs.rules[key] = rt
	}
	return nil
}

// originatorOwns reports whether dst lies within the peer's registered
// space. An empty registry skips validation.
func originatorOwns(space []bgp.Prefix, dst bgp.Prefix) bool {
	if len(space) == 0 {
		return true
	}
	for _, p := range space {
		if p.Len <= dst.Len && p.Contains(dst.Addr) {
			return true
		}
	}
	return false
}

// installEntry inserts e into the peer's list in m keeping precedence order.
func (fs *fsState) installEntry(m map[uint32][]fsEntry, peer uint32, e fsEntry) {
	lst := m[peer]
	i := sort.Search(len(lst), func(i int) bool { return fsLess(e, lst[i]) })
	lst = append(lst, fsEntry{})
	copy(lst[i+1:], lst[i:])
	lst[i] = e
	m[peer] = lst
}

func flowKey(origin uint32, r *bgp.FlowRule) (fsKey, error) {
	wire, err := bgp.EncodeFlowRule(r)
	if err != nil {
		return fsKey{}, fmt.Errorf("routeserver: invalid flowspec rule: %w", err)
	}
	return fsKey{origin: origin, wire: string(wire)}, nil
}

func (s *Server) withdrawFlowSpec(origin uint32, r *bgp.FlowRule) {
	fs := s.fs()
	key, err := flowKey(origin, r)
	if err != nil {
		return
	}
	rt, ok := fs.rules[key]
	if !ok {
		s.metrics.FlowSpecWithdrawnNoop.Inc()
		return
	}
	s.metrics.FlowSpecWithdrawn.Inc()
	s.releaseFlowSpec(rt)
	delete(fs.rules, key)
}

func (s *Server) releaseFlowSpec(rt *fsRoute) {
	fs := s.fs()
	for target := range rt.accepted {
		removeEntry(fs.perPeer, target, rt.rule)
	}
	removeEntry(fs.perOrigin, rt.origin, rt.rule)
}

func removeEntry(m map[uint32][]fsEntry, peer uint32, rule *bgp.FlowRule) {
	lst := m[peer]
	for i := range lst {
		if lst[i].rule == rule {
			m[peer] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// flushFlowSpec withdraws every rule originated by peerAS (session
// teardown), returning how many were flushed.
func (s *Server) flushFlowSpec(peerAS uint32) int {
	if s.flowspec == nil {
		return 0
	}
	var keys []fsKey
	for key := range s.flowspec.rules {
		if key.origin == peerAS {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].wire < keys[j].wire })
	for _, key := range keys {
		s.metrics.FlowSpecWithdrawn.Inc()
		s.releaseFlowSpec(s.flowspec.rules[key])
		delete(s.flowspec.rules, key)
	}
	return len(keys)
}

// MatchFlowSpec reports whether one of peerAS's installed discard rules
// matches the packet.
func (s *Server) MatchFlowSpec(peerAS uint32, dstIP uint32, proto uint8, srcPort, dstPort uint16) bool {
	return s.MatchingFlowRule(peerAS, dstIP, proto, srcPort, dstPort) != nil
}

// MatchingFlowRule returns the highest-precedence installed rule of
// peerAS matching the packet, or nil. Precedence is the fsLess order:
// most-specific destination first, canonical wire encoding as the tie
// breaker.
func (s *Server) MatchingFlowRule(peerAS uint32, dstIP uint32, proto uint8, srcPort, dstPort uint16) *bgp.FlowRule {
	if s.flowspec == nil {
		return nil
	}
	for _, e := range s.flowspec.perPeer[peerAS] {
		if e.rule.Matches(dstIP, proto, srcPort, dstPort) {
			return e.rule
		}
	}
	return nil
}

// OwnMatchingFlowRule returns the highest-precedence rule ORIGINATED by
// peerAS that matches the packet, or nil. The route server never sends a
// rule back to its announcer, but the announcer's own edge filters with
// it; the fabric uses this for the egress member of a batch.
func (s *Server) OwnMatchingFlowRule(peerAS uint32, dstIP uint32, proto uint8, srcPort, dstPort uint16) *bgp.FlowRule {
	if s.flowspec == nil {
		return nil
	}
	for _, e := range s.flowspec.perOrigin[peerAS] {
		if e.rule.Matches(dstIP, proto, srcPort, dstPort) {
			return e.rule
		}
	}
	return nil
}

// NumFlowSpecRules returns the number of installed rules.
func (s *Server) NumFlowSpecRules() int {
	if s.flowspec == nil {
		return 0
	}
	return len(s.flowspec.rules)
}

// ActiveFlowRules returns the installed rules as (origin, rule) pairs in
// deterministic order, with the peers that accepted each.
type FlowAnnouncement struct {
	Origin   uint32
	Rule     *bgp.FlowRule
	Accepted []uint32
}

// ActiveFlowRules lists the installed FlowSpec rules deterministically.
func (s *Server) ActiveFlowRules() []FlowAnnouncement {
	if s.flowspec == nil {
		return nil
	}
	out := make([]FlowAnnouncement, 0, len(s.flowspec.rules))
	keys := make([]fsKey, 0, len(s.flowspec.rules))
	for key := range s.flowspec.rules {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].wire < keys[j].wire
	})
	for _, key := range keys {
		rt := s.flowspec.rules[key]
		ann := FlowAnnouncement{Origin: key.origin, Rule: rt.rule}
		for _, p := range s.peerOrder {
			if rt.accepted[p] {
				ann.Accepted = append(ann.Accepted, p)
			}
		}
		out = append(out, ann)
	}
	return out
}
