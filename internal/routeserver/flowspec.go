package routeserver

import (
	"fmt"
	"time"

	"repro/internal/bgp"
)

// FlowSpec support: the fine-grained alternative to RTBH that the paper
// evaluates the potential of (§5.5) and names among the advanced
// mitigation options (§1). A member announces discard rules (destination
// prefix + protocol/port matches with the traffic-rate-0 action); peers
// whose policy enables FlowSpec install them and drop only matching
// packets, leaving the victim's legitimate traffic untouched.
//
// Adoption mirrors reality: Policy.FlowSpec defaults to AcceptNone, so a
// deployment must opt peers in explicitly.

// fsKey identifies an installed rule by origin and its canonical wire
// encoding (two semantically equal rules encode identically).
type fsKey struct {
	origin uint32
	wire   string
}

// fsRoute is an installed FlowSpec discard rule.
type fsRoute struct {
	rule     *bgp.FlowRule
	accepted map[uint32]bool
}

// fsState lazily extends the Server with FlowSpec tables.
type fsState struct {
	rules map[fsKey]*fsRoute
	// perPeer holds each member's accepted rules for the fabric's
	// per-packet matching.
	perPeer map[uint32][]*bgp.FlowRule
}

func (s *Server) fs() *fsState {
	if s.flowspec == nil {
		s.flowspec = &fsState{
			rules:   make(map[fsKey]*fsRoute),
			perPeer: make(map[uint32][]*bgp.FlowRule),
		}
	}
	return s.flowspec
}

// ProcessFlowSpec handles a FlowSpec UPDATE from peerAS: withdrawals
// first, then announcements. Announced discard rules must carry the
// traffic-rate-0 action and a destination prefix (the route server
// validates that rules target the announcer's space in a real deployment;
// the simulator enforces presence only).
func (s *Server) ProcessFlowSpec(ts time.Time, peerAS uint32, upd *bgp.FlowSpecUpdate) error {
	ps, ok := s.peers[peerAS]
	if !ok {
		return fmt.Errorf("routeserver: flowspec update from unknown peer AS%d", peerAS)
	}
	s.msgsProcessed++
	if s.collector != nil {
		raw, err := bgp.EncodeFlowSpecUpdate(upd)
		if err != nil {
			return fmt.Errorf("routeserver: archiving flowspec from AS%d: %w", peerAS, err)
		}
		s.collector(ts, peerAS, ps.peer.IP, raw)
	}

	fs := s.fs()
	for _, r := range upd.Withdrawn {
		s.withdrawFlowSpec(peerAS, r)
	}
	if len(upd.Announced) == 0 {
		return nil
	}
	if !upd.Discards() {
		return fmt.Errorf("routeserver: AS%d announced flowspec without discard action", peerAS)
	}
	for _, r := range upd.Announced {
		if !r.HasDst {
			return fmt.Errorf("routeserver: AS%d announced flowspec rule without destination prefix", peerAS)
		}
		key, err := flowKey(peerAS, r)
		if err != nil {
			return err
		}
		if old, exists := fs.rules[key]; exists {
			s.releaseFlowSpec(old)
		}
		rt := &fsRoute{rule: r, accepted: make(map[uint32]bool)}
		for _, target := range s.peerOrder {
			if target == peerAS {
				continue
			}
			if s.peers[target].peer.Policy.FlowSpec == AcceptFull {
				rt.accepted[target] = true
				fs.perPeer[target] = append(fs.perPeer[target], r)
			}
		}
		fs.rules[key] = rt
	}
	return nil
}

func flowKey(origin uint32, r *bgp.FlowRule) (fsKey, error) {
	wire, err := bgp.EncodeFlowRule(r)
	if err != nil {
		return fsKey{}, fmt.Errorf("routeserver: invalid flowspec rule: %w", err)
	}
	return fsKey{origin: origin, wire: string(wire)}, nil
}

func (s *Server) withdrawFlowSpec(origin uint32, r *bgp.FlowRule) {
	fs := s.fs()
	key, err := flowKey(origin, r)
	if err != nil {
		return
	}
	if rt, ok := fs.rules[key]; ok {
		s.releaseFlowSpec(rt)
		delete(fs.rules, key)
	}
}

func (s *Server) releaseFlowSpec(rt *fsRoute) {
	fs := s.fs()
	for target := range rt.accepted {
		lst := fs.perPeer[target]
		for i, r := range lst {
			if r == rt.rule {
				fs.perPeer[target] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
}

// MatchFlowSpec reports whether one of peerAS's installed discard rules
// matches the packet.
func (s *Server) MatchFlowSpec(peerAS uint32, dstIP uint32, proto uint8, srcPort, dstPort uint16) bool {
	if s.flowspec == nil {
		return false
	}
	for _, r := range s.flowspec.perPeer[peerAS] {
		if r.Matches(dstIP, proto, srcPort, dstPort) {
			return true
		}
	}
	return false
}

// NumFlowSpecRules returns the number of installed rules.
func (s *Server) NumFlowSpecRules() int {
	if s.flowspec == nil {
		return 0
	}
	return len(s.flowspec.rules)
}
