package routeserver

import (
	"testing"
	"time"

	"repro/internal/bgp"
)

func fsServer(t *testing.T) *Server {
	t.Helper()
	s := New(rsASN, 1)
	pols := map[uint32]Policy{
		100: {Standard: AcceptFull, FlowSpec: AcceptFull},
		200: {Standard: AcceptFull, FlowSpec: AcceptFull},
		300: DefaultPolicy(), // no FlowSpec support
	}
	for asn, pol := range pols {
		if err := s.AddPeer(Peer{ASN: asn, IP: asn, Policy: pol}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func discardRule(prefix string, srcPorts ...uint16) *bgp.FlowRule {
	return &bgp.FlowRule{
		Dst:      bgp.MustParsePrefix(prefix),
		HasDst:   true,
		Protos:   []uint8{17},
		SrcPorts: srcPorts,
	}
}

func announceFS(t *testing.T, s *Server, peer uint32, rules ...*bgp.FlowRule) {
	t.Helper()
	err := s.ProcessFlowSpec(time.Unix(0, 0), peer, &bgp.FlowSpecUpdate{
		Announced: rules,
		ExtComms:  []bgp.ExtCommunity{bgp.TrafficRateDiscard},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlowSpecInstallAndMatch(t *testing.T) {
	s := fsServer(t)
	announceFS(t, s, 100, discardRule("203.0.113.5/32", 123, 389))
	if s.NumFlowSpecRules() != 1 {
		t.Fatalf("rules = %d", s.NumFlowSpecRules())
	}
	victim := bgp.MustParsePrefix("203.0.113.5/32").Addr

	// Supporting peer drops matching reflection traffic...
	if !s.MatchFlowSpec(200, victim, 17, 123, 44444) {
		t.Fatal("NTP reflection not matched at supporting peer")
	}
	// ... but not the victim's legitimate web traffic.
	if s.MatchFlowSpec(200, victim, 6, 33333, 443) {
		t.Fatal("legitimate TCP matched")
	}
	// Peers without FlowSpec support keep forwarding everything.
	if s.MatchFlowSpec(300, victim, 17, 123, 44444) {
		t.Fatal("non-supporting peer matched")
	}
	// The originator does not receive its own rule.
	if s.MatchFlowSpec(100, victim, 17, 123, 44444) {
		t.Fatal("originator matched its own rule")
	}
}

func TestFlowSpecWithdraw(t *testing.T) {
	s := fsServer(t)
	rule := discardRule("203.0.113.5/32", 123)
	announceFS(t, s, 100, rule)
	err := s.ProcessFlowSpec(time.Unix(1, 0), 100, &bgp.FlowSpecUpdate{Withdrawn: []*bgp.FlowRule{rule}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFlowSpecRules() != 0 {
		t.Fatalf("rules after withdraw = %d", s.NumFlowSpecRules())
	}
	victim := bgp.MustParsePrefix("203.0.113.5/32").Addr
	if s.MatchFlowSpec(200, victim, 17, 123, 44444) {
		t.Fatal("withdrawn rule still matches")
	}
}

func TestFlowSpecReannounceReplaces(t *testing.T) {
	s := fsServer(t)
	rule := discardRule("203.0.113.5/32", 123)
	announceFS(t, s, 100, rule)
	announceFS(t, s, 100, rule) // identical wire form: replace, not duplicate
	if s.NumFlowSpecRules() != 1 {
		t.Fatalf("rules = %d", s.NumFlowSpecRules())
	}
	// The per-peer list must not contain duplicates either: withdrawing
	// once must remove the match entirely.
	s.ProcessFlowSpec(time.Unix(1, 0), 100, &bgp.FlowSpecUpdate{Withdrawn: []*bgp.FlowRule{rule}})
	victim := bgp.MustParsePrefix("203.0.113.5/32").Addr
	if s.MatchFlowSpec(200, victim, 17, 123, 44444) {
		t.Fatal("replaced rule left a stale entry")
	}
}

func TestFlowSpecValidation(t *testing.T) {
	s := fsServer(t)
	// Unknown peer.
	err := s.ProcessFlowSpec(time.Unix(0, 0), 999, &bgp.FlowSpecUpdate{})
	if err == nil {
		t.Fatal("unknown peer accepted")
	}
	// Missing discard action.
	err = s.ProcessFlowSpec(time.Unix(0, 0), 100, &bgp.FlowSpecUpdate{
		Announced: []*bgp.FlowRule{discardRule("203.0.113.5/32", 123)},
	})
	if err == nil {
		t.Fatal("announcement without discard action accepted")
	}
	// Missing destination prefix.
	err = s.ProcessFlowSpec(time.Unix(0, 0), 100, &bgp.FlowSpecUpdate{
		Announced: []*bgp.FlowRule{{Protos: []uint8{17}}},
		ExtComms:  []bgp.ExtCommunity{bgp.TrafficRateDiscard},
	})
	if err == nil {
		t.Fatal("rule without destination accepted")
	}
}

func TestFlowSpecCollectorArchivesMessages(t *testing.T) {
	s := fsServer(t)
	var got int
	s.SetCollector(func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
		if _, ok, err := bgp.DecodeFlowSpecUpdate(msg); err != nil || !ok {
			t.Errorf("archived message not a flowspec update: %v", err)
		}
		got++
	})
	announceFS(t, s, 100, discardRule("203.0.113.5/32", 123))
	if got != 1 {
		t.Fatalf("collector calls = %d", got)
	}
}

func TestMatchFlowSpecEmptyServer(t *testing.T) {
	s := fsServer(t)
	if s.MatchFlowSpec(100, 1, 17, 123, 1) {
		t.Fatal("empty server matched")
	}
	if s.NumFlowSpecRules() != 0 {
		t.Fatal("phantom rules")
	}
}
