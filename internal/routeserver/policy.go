// Package routeserver implements an IXP route server with a remotely
// triggered blackholing (RTBH) service, mirroring the deployment the
// paper studies:
//
//   - Members announce routes to the route server over BGP. A route tagged
//     with the RFC 7999 BLACKHOLE community (65535:666) requests that
//     traffic toward the prefix be discarded; the route server rewrites the
//     next hop to the blackhole IP, which resolves to a non-forwarding MAC
//     on the switching fabric.
//   - BGP communities steer propagation: by default a blackhole is
//     announced to every other member, but the originator can restrict the
//     audience ("targeted blackholing", §4.1 of the paper).
//   - Every receiving member applies its own import policy. Default BGP
//     configurations reject prefixes longer than /24, so accepting a /32
//     blackhole requires explicit whitelisting — the operational gap that
//     produces the paper's ~50% drop-rate headline (§4.2).
//
// The route server exposes the per-peer forwarding decision (DropFraction)
// that the switching fabric consults, and archives the member-facing BGP
// message stream through a collector hook.
package routeserver

import "repro/internal/bgp"

// AcceptClass describes how a peer's import policy treats blackhole routes
// of a given prefix-length class.
type AcceptClass int

// Acceptance classes. Partial models multi-router members whose border
// routers are inconsistently configured: a fraction of the member's
// ingress traffic honours the blackhole while the rest forwards — the 13
// "inconsistent" ASes of the paper's Fig 7.
const (
	AcceptNone AcceptClass = iota
	AcceptFull
	AcceptPartial
)

// String implements fmt.Stringer.
func (c AcceptClass) String() string {
	switch c {
	case AcceptNone:
		return "none"
	case AcceptFull:
		return "full"
	case AcceptPartial:
		return "partial"
	default:
		return "invalid"
	}
}

// Policy is a peer's import policy for routes learned from the route
// server, split by the prefix-length classes that matter operationally.
type Policy struct {
	// Standard governs prefixes up to /24 — ordinary BGP announcements
	// that virtually every configuration accepts.
	Standard AcceptClass
	// StandardFraction applies when Standard == AcceptPartial.
	StandardFraction float64
	// Mid governs /25../31 blackhole routes. Operators who whitelist /32
	// blackholes usually forget these, so AcceptNone dominates (§7.1).
	Mid AcceptClass
	// MidFraction applies when Mid == AcceptPartial.
	MidFraction float64
	// Host governs /32 blackhole routes.
	Host AcceptClass
	// HostFraction applies when Host == AcceptPartial.
	HostFraction float64
	// FlowSpec governs fine-grained discard rules (RFC 8955). Adoption
	// at route servers is rare, so the zero value is AcceptNone; only
	// AcceptFull is meaningful for rules (no partial installation).
	FlowSpec AcceptClass
}

// DefaultPolicy is the ubiquitous "nothing longer than /24" router
// default: standard routes accepted, blackhole-length routes rejected.
func DefaultPolicy() Policy {
	return Policy{Standard: AcceptFull, Mid: AcceptNone, Host: AcceptNone}
}

// BlackholeReadyPolicy accepts host blackholes fully but, as commonly
// observed, not the /25../31 range.
func BlackholeReadyPolicy() Policy {
	return Policy{Standard: AcceptFull, Mid: AcceptNone, Host: AcceptFull}
}

// fraction returns the fraction of the peer's ingress traffic that honours
// an installed route with the given prefix length (0 = rejected entirely).
func (p Policy) fraction(prefixLen uint8) float64 {
	var class AcceptClass
	var frac float64
	switch {
	case prefixLen <= 24:
		class, frac = p.Standard, p.StandardFraction
	case prefixLen < 32:
		class, frac = p.Mid, p.MidFraction
	default:
		class, frac = p.Host, p.HostFraction
	}
	switch class {
	case AcceptFull:
		return 1
	case AcceptPartial:
		if frac < 0 {
			return 0
		}
		if frac > 1 {
			return 1
		}
		return frac
	default:
		return 0
	}
}

// Accepts reports whether the policy installs a route of the given length
// at all (fully or partially).
func (p Policy) Accepts(prefixLen uint8) bool { return p.fraction(prefixLen) > 0 }

// communities implementing the route server's targeted-announcement
// scheme. With the route server operating as AS rsASN (16-bit):
//
//	0:peerASN      do not announce to peerASN
//	rsASN:peerASN  announce to peerASN (switches to allow-list mode)
//	0:rsASN        announce to nobody except explicit allows
//
// This is the scheme large European IXPs document for their route servers.
func targetPeers(rsASN uint16, cs bgp.Communities, peers []uint32, origin uint32) map[uint32]bool {
	blockAll := cs.Contains(bgp.MakeCommunity(0, rsASN))
	allowList := map[uint32]bool{}
	haveAllows := false
	for _, c := range cs {
		if c.ASN() == rsASN && c.Value() != rsASN {
			allowList[uint32(c.Value())] = true
			haveAllows = true
		}
	}
	targets := make(map[uint32]bool, len(peers))
	for _, p := range peers {
		if p == origin {
			continue
		}
		switch {
		case blockAll || haveAllows:
			if allowList[p] {
				targets[p] = true
			}
		default:
			targets[p] = true
		}
	}
	// Explicit blocks override everything.
	for _, c := range cs {
		if c.ASN() == 0 && c.Value() != rsASN {
			delete(targets, uint32(c.Value()))
		}
	}
	return targets
}
